package workload

import (
	"fmt"

	"sst/internal/noc"
	"sst/internal/sim"
)

// Skeleton applications: per-rank scripts of compute/send/recv steps
// executed against a network fabric. This is the classic skeleton-app
// proxy — accurate inter-processor communication with synthetic
// computation — used for the injection-bandwidth degradation study. Apps
// are fabric-agnostic: the same scripts run over the fast noc.Network or
// the detailed credit-based noc.DetailedNetwork.

// sopKind enumerates script operations.
type sopKind uint8

const (
	sopCompute sopKind = iota
	sopSend
	sopRecv
)

// sop is one script step.
type sop struct {
	kind  sopKind
	dur   sim.Time // compute
	peer  int      // send dst / recv src
	bytes int      // send size
}

// Script is one rank's program.
type Script struct {
	ops []sop
}

// Compute appends a computation phase of the given duration.
func (s *Script) Compute(d sim.Time) { s.ops = append(s.ops, sop{kind: sopCompute, dur: d}) }

// Send appends a blocking-until-injected send.
func (s *Script) Send(dst, bytes int) {
	s.ops = append(s.ops, sop{kind: sopSend, peer: dst, bytes: bytes})
}

// Recv appends a blocking receive of the next message from src.
func (s *Script) Recv(src int) { s.ops = append(s.ops, sop{kind: sopRecv, peer: src}) }

// Steps returns the script length.
func (s *Script) Steps() int { return len(s.ops) }

// AllReduce appends a dissemination (Bruck) all-reduce of the given payload
// size: ceil(log2 n) rounds of pairwise exchange; works for any rank count.
func (s *Script) AllReduce(rank, n, bytes int) {
	if n <= 1 {
		return
	}
	for k := 1; k < n; k *= 2 {
		dst := (rank + k) % n
		src := (rank - k + n) % n
		s.Send(dst, bytes)
		s.Recv(src)
	}
}

// Barrier is an all-reduce of a minimal payload.
func (s *Script) Barrier(rank, n int) { s.AllReduce(rank, n, 8) }

// rankState executes one rank's script.
type rankState struct {
	app          *App
	id           int
	script       *Script
	pc           int
	waiting      int         // src currently blocked on, or -1
	arrived      map[int]int // unconsumed message count per source
	done         bool
	blockedSince sim.Time
	waitTime     sim.Time
}

// MessagePort is the NIC capability a rank needs: both noc.NIC and
// noc.DetailedNIC satisfy it, so skeleton apps are fidelity-agnostic.
type MessagePort interface {
	Send(dst, size int, payload any, onSent func())
	SetReceiver(fn func(src, size int, payload any))
}

// TimedPort is the checkpoint-friendly send capability: the port reports
// when injection completes instead of calling back, so the app can own the
// completion wake-up as a serializable event (dnoc.NIC implements it).
// Apps prefer it over the callback form whenever the port provides it.
type TimedPort interface {
	SendTimed(dst, size int, payload any) sim.Time
}

// App runs a set of rank scripts over a network. Build the scripts, call
// Start, then run the engine; onDone fires when every rank's script has
// completed.
type App struct {
	name   string
	engine *sim.Engine
	ports  []MessagePort
	ranks  []*rankState
	live   int
	onDone func()
	start  sim.Time
	finish sim.Time
	// wake owns every pending rank wake-up (compute continuations, timed
	// send completions) as checkpointable events; the payload is the rank
	// index to advance.
	wake *sim.EventSet
}

// NewApp wires scripts[i] to network node i of the fast model. len(scripts)
// must not exceed the node count.
func NewApp(engine *sim.Engine, name string, net *noc.Network, scripts []*Script) (*App, error) {
	if len(scripts) > net.Topology().NumNodes() {
		return nil, fmt.Errorf("workload: %d ranks exceed %d nodes", len(scripts), net.Topology().NumNodes())
	}
	ports := make([]MessagePort, len(scripts))
	for i := range scripts {
		ports[i] = net.NIC(i)
	}
	return NewAppOnPorts(engine, name, ports, scripts)
}

// NewAppDetailed wires the scripts over the detailed (credit-based)
// network model instead.
func NewAppDetailed(engine *sim.Engine, name string, net *noc.DetailedNetwork, scripts []*Script) (*App, error) {
	if len(scripts) > net.Topology().NumNodes() {
		return nil, fmt.Errorf("workload: %d ranks exceed %d nodes", len(scripts), net.Topology().NumNodes())
	}
	ports := make([]MessagePort, len(scripts))
	for i := range scripts {
		ports[i] = net.NIC(i)
	}
	return NewAppOnPorts(engine, name, ports, scripts)
}

// NewAppOnPorts wires scripts[i] to ports[i] directly.
func NewAppOnPorts(engine *sim.Engine, name string, ports []MessagePort, scripts []*Script) (*App, error) {
	if len(ports) != len(scripts) {
		return nil, fmt.Errorf("workload: %d ports for %d scripts", len(ports), len(scripts))
	}
	a := &App{name: name, engine: engine, ports: ports}
	a.wake = sim.NewEventSet(engine, "app:"+name, func(pl any) { a.ranks[pl.(int)].advance() })
	for i, s := range scripts {
		r := &rankState{app: a, id: i, script: s, waiting: -1, arrived: make(map[int]int)}
		a.ranks = append(a.ranks, r)
		ports[i].SetReceiver(func(src, size int, payload any) { r.deliver(src) })
	}
	a.live = len(a.ranks)
	if engine.SnapshotsEnabled() {
		engine.RegisterCheckpoint("app:"+name, a)
	}
	return a, nil
}

// Name returns the app name.
func (a *App) Name() string { return a.name }

// Start launches every rank.
func (a *App) Start(onDone func()) {
	a.onDone = onDone
	a.start = a.engine.Now()
	if a.live == 0 {
		a.finish = a.start
		if onDone != nil {
			onDone()
		}
		return
	}
	for _, r := range a.ranks {
		r.advance()
	}
}

// Done reports whether all ranks completed.
func (a *App) Done() bool { return a.live == 0 }

// Elapsed returns wall-clock simulated runtime (valid after completion).
func (a *App) Elapsed() sim.Time { return a.finish - a.start }

// MaxWaitTime returns the largest per-rank blocked-in-recv time, a
// communication-boundedness indicator.
func (a *App) MaxWaitTime() sim.Time {
	var m sim.Time
	for _, r := range a.ranks {
		if r.waitTime > m {
			m = r.waitTime
		}
	}
	return m
}

// deliver records an arrival and unblocks a matching recv.
func (r *rankState) deliver(src int) {
	r.arrived[src]++
	if r.waiting == src {
		r.waiting = -1
		r.waitTime += r.app.engine.Now() - r.blockedSince
		r.advance()
	}
}

// advance runs script steps until blocking or completion.
func (r *rankState) advance() {
	if r.done {
		return
	}
	a := r.app
	for r.pc < len(r.script.ops) {
		op := &r.script.ops[r.pc]
		switch op.kind {
		case sopCompute:
			r.pc++
			a.wake.ScheduleAt(a.engine.Now()+op.dur, sim.PrioLink, r.id)
			return
		case sopSend:
			r.pc++
			if tp, ok := a.ports[r.id].(TimedPort); ok {
				// Timed form: block until injection completes, with
				// the wake-up owned by the app's event set.
				doneAt := tp.SendTimed(op.peer, op.bytes, nil)
				a.wake.ScheduleAt(doneAt, sim.PrioLink, r.id)
				return
			}
			sent := false
			resumed := false
			a.ports[r.id].Send(op.peer, op.bytes, nil, func() {
				sent = true
				if resumed {
					r.advance()
				}
			})
			if !sent {
				// Injection completes later: block until the
				// send buffer frees (blocking-send semantics).
				resumed = true
				return
			}
		case sopRecv:
			if r.arrived[op.peer] > 0 {
				r.arrived[op.peer]--
				r.pc++
				continue
			}
			r.waiting = op.peer
			r.blockedSince = a.engine.Now()
			return
		}
	}
	r.done = true
	a.live--
	if a.live == 0 {
		a.finish = a.engine.Now()
		if a.onDone != nil {
			done := a.onDone
			a.onDone = nil
			done()
		}
	}
}

// --- Application communication profiles (Fig. 9 proxies) ---

// CommProfile parameterizes a proxy's per-timestep communication.
type CommProfile struct {
	Name string
	// Steps is the number of timesteps.
	Steps int
	// ComputePerStep is the per-rank computation between exchanges.
	ComputePerStep sim.Time
	// HaloBytes is the per-neighbor message size (0 disables halo).
	HaloBytes int
	// Neighbors is how many ring neighbors to exchange with.
	Neighbors int
	// SmallMsgs is the count of small latency-bound messages per step.
	SmallMsgs int
	// SmallBytes sizes them.
	SmallBytes int
	// AllReduces per step (8-byte payloads).
	AllReduces int
}

// Scripts expands the profile into per-rank scripts for n ranks arranged in
// a ring (neighbor k of rank r is (r±k) mod n).
func (p CommProfile) Scripts(n int) []*Script {
	scripts := make([]*Script, n)
	for r := 0; r < n; r++ {
		s := &Script{}
		for step := 0; step < p.Steps; step++ {
			if p.ComputePerStep > 0 {
				s.Compute(p.ComputePerStep)
			}
			for k := 1; k <= p.Neighbors; k++ {
				if p.HaloBytes > 0 {
					s.Send((r+k)%n, p.HaloBytes)
					s.Send((r-k+n)%n, p.HaloBytes)
				}
			}
			for k := 1; k <= p.Neighbors; k++ {
				if p.HaloBytes > 0 {
					s.Recv((r - k + n) % n)
					s.Recv((r + k) % n)
				}
			}
			for m := 0; m < p.SmallMsgs; m++ {
				peer := (r + 1 + m%(n-1)) % n
				s.Send(peer, p.SmallBytes)
			}
			for m := 0; m < p.SmallMsgs; m++ {
				// Matching receives: each rank receives the same
				// pattern shifted.
				src := (r - 1 - m%(n-1) + n) % n
				s.Recv(src)
			}
			for ar := 0; ar < p.AllReduces; ar++ {
				s.AllReduce(r, n, 8)
			}
		}
		scripts[r] = s
	}
	return scripts
}

// Fig. 9 application proxies. Message profiles follow the paper's
// characterization: CTH and SAGE send large halo messages each step
// (bandwidth-bound); Charon sends many small messages and reductions
// (latency-bound); xNOBEL sits between, with compute available to overlap.
var (
	CTHProfile = CommProfile{
		Name: "cth", Steps: 20, ComputePerStep: 200 * sim.Microsecond,
		HaloBytes: 2 << 20, Neighbors: 2,
	}
	SAGEProfile = CommProfile{
		Name: "sage", Steps: 20, ComputePerStep: 300 * sim.Microsecond,
		HaloBytes: 1 << 20, Neighbors: 2, AllReduces: 1,
	}
	CharonProfile = CommProfile{
		Name: "charon", Steps: 60, ComputePerStep: 150 * sim.Microsecond,
		SmallMsgs: 24, SmallBytes: 256, AllReduces: 4,
	}
	XNOBELProfile = CommProfile{
		Name: "xnobel", Steps: 20, ComputePerStep: 400 * sim.Microsecond,
		HaloBytes: 256 << 10, Neighbors: 1, AllReduces: 1,
	}
)
