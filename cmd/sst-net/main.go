// Command sst-net runs the network injection-bandwidth degradation study
// (the Fig. 9 experiment): application communication proxies on a simulated
// 3D torus at a series of injection-bandwidth operating points.
//
// Usage:
//
//	sst-net [-nodes 32] [-steps 6] [-fractions 1,0.5,0.25,0.125]
//	        [-format table|json|csv] [-j N] [-metrics-out m.json] [-trace-out t.json]
//	        [-journal net.jsonl] [-resume]
//	        [-cache] [-cache-size 4096] [-cache-policy lru|lfu|fifo|tinylfu]
//	        [-cache-shadow lfu,tinylfu] [-cache-file results.jsonl]
//	sst-net -scaling [-nodes 16] [-ranks 1,2,4,8] [-horizon 2ms]
//	        [-sync all|global,pairwise,speculative,adaptive] [-format ...]
//
// The study's (proxy app, bandwidth fraction) cells are independent
// simulations; -j sets how many run concurrently (default: GOMAXPROCS).
// Tables are identical at any -j. -metrics-out writes both studies'
// per-point host timings as a JSON array; -trace-out writes the
// degradation study's host timeline as a Chrome trace. Ctrl-C drains the
// cells already running, prints whatever completed, and exits 130.
//
// -journal appends every completed cell to an fsync'd JSONL file;
// -resume restores the journal's completed cells instead of re-running
// them, so a killed study continues where it stopped.
//
// -cache memoizes study cells content-addressed by their configuration;
// the degradation and power studies share one cache (and run the same
// grid), so the power study's cells hit instead of simulating twice.
// -cache-file persists results to an fsync'd JSONL file so a later
// invocation warm-starts from them (implies -cache); -cache-shadow runs
// extra eviction policies as metadata-only hit-rate sensors. A one-line
// hit/miss summary prints to stderr; -metrics-out includes the full cache
// and shadow counters.
//
// Exit codes: 0 success, 1 failure, 2 configuration error, 3 study
// completed with failed cells, 130 interrupted (Ctrl-C).
//
// -scaling instead runs the parallel-simulator scaling study (E6): the
// heterogeneous-latency lattice partitioned over each rank count, under
// the sync modes selected by -sync (default all four: the conservative
// global window and topology-aware pairwise horizons, plus the optimistic
// speculative and adaptive modes with their rollback counts), reporting
// wall time and dispatched synchronization windows side by side. It is
// sequential by design (each point times the host), so -j is ignored
// there.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sst/internal/cache"
	"sst/internal/cli"
	"sst/internal/core"
	"sst/internal/obs"
	"sst/internal/par"
	"sst/internal/sim"
)

func main() {
	var (
		nodesFlag   = flag.Int("nodes", 32, "system size (torus nodes)")
		stepsFlag   = flag.Int("steps", 6, "application timesteps")
		fracFlag    = flag.String("fractions", "1,0.5,0.25,0.125", "injection bandwidth fractions")
		formatFlag  = flag.String("format", "table", "output format: table, json or csv")
		csvFlag     = flag.Bool("csv", false, "deprecated: same as -format csv")
		jFlag       = flag.Int("j", 0, "concurrent sweep workers (0 = GOMAXPROCS)")
		metricsOut  = flag.String("metrics-out", "", "write per-point sweep metrics JSON to this file")
		traceOut    = flag.String("trace-out", "", "write a host-timeline Chrome trace of the degradation sweep to this file")
		scalingFlag = flag.Bool("scaling", false, "run the parallel-simulator scaling study instead (E6)")
		ranksFlag   = flag.String("ranks", "1,2,4,8", "rank counts for -scaling")
		horizonFlag = flag.String("horizon", "2ms", "simulated horizon for -scaling")
		syncFlag    = flag.String("sync", "all", "sync modes for -scaling: all, or comma-separated from "+strings.Join(par.SyncModeNames(), ", "))
		journal     = flag.String("journal", "", "journal completed study cells to this JSONL file (fsync'd per cell)")
		resume      = flag.Bool("resume", false, "with -journal: restore completed cells instead of re-running them")

		cacheFlag   = flag.Bool("cache", false, "memoize study cells by config hash (the power study hits on the degradation study's cells)")
		cacheSize   = flag.Int("cache-size", 4096, "result cache capacity in study cells")
		cachePolicy = flag.String("cache-policy", "lru", "eviction policy: fifo, lru, lfu or tinylfu")
		cacheShadow = flag.String("cache-shadow", "", "comma-separated policies to run as metadata-only hit-rate sensors")
		cacheFile   = flag.String("cache-file", "", "persist cached results to this JSONL file and warm-start from it (implies -cache)")
	)
	flag.Parse()
	format, err := core.ParseFormat(*formatFlag)
	if err != nil {
		cli.Exit("sst-net", cli.Configf("%v", err))
	}
	if *csvFlag {
		format = core.FormatCSV
	}
	if *resume && *journal == "" {
		cli.Exit("sst-net", cli.Configf("-resume needs -journal"))
	}
	// Either SIGINT or SIGTERM drains the sweep and flushes journals.
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	if *scalingFlag {
		cli.Exit("sst-net", runScaling(*nodesFlag, *ranksFlag, *horizonFlag, *syncFlag, format, ctx))
	}
	sc, cerr := newSweepCache(*cacheFlag, *cacheSize, *cachePolicy, *cacheShadow, *cacheFile)
	if cerr != nil {
		cli.Exit("sst-net", cli.Configf("%v", cerr))
	}
	opts := core.SweepOptions{
		Workers: *jFlag, Context: ctx,
		Journal: *journal, Resume: *resume, Cache: sc,
	}
	err = run(*nodesFlag, *stepsFlag, *fracFlag, format, opts, *metricsOut, *traceOut)
	if sc != nil {
		printCacheSummary("sst-net", sc)
		if cerr := sc.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	cli.Exit("sst-net", err)
}

// newSweepCache builds the result cache from the -cache* flags; nil when
// caching is off. A -cache-file implies -cache.
func newSweepCache(enabled bool, size int, policy, shadow, file string) (*cache.Cache, error) {
	if !enabled && file == "" {
		return nil, nil
	}
	pol, err := cache.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	shadows, err := cache.ParsePolicies(shadow)
	if err != nil {
		return nil, err
	}
	return core.NewSweepCache(size, pol, shadows, file)
}

// printCacheSummary emits the one-line greppable hit/miss roll-up (plus
// one line per shadow sensor) to stderr.
func printCacheSummary(prog string, sc *cache.Cache) {
	st := sc.Stats()
	fmt.Fprintf(os.Stderr,
		"%s: cache policy=%s entries=%d hits=%d misses=%d hit_rate=%.3f evictions=%d rejected=%d bytes=%d warm_starts=%d\n",
		prog, st.Policy, st.Entries, st.Hits, st.Misses, st.HitRate, st.Evictions, st.Rejected, st.Bytes, st.WarmStarts)
	for _, sh := range st.Shadows {
		fmt.Fprintf(os.Stderr, "%s: cache shadow policy=%s hits=%d misses=%d hit_rate=%.3f\n",
			prog, sh.Policy, sh.Hits, sh.Misses, sh.HitRate)
	}
}

// runScaling drives the E6 parallel-scaling study: the heterogeneous
// lattice over each rank count, with the -sync flag choosing which sync
// modes run side by side (default: all four, conservative and optimistic).
func runScaling(nodes int, ranksFlag, horizonFlag, syncFlag string, format core.Format, ctx context.Context) error {
	var ranks []int
	for _, s := range strings.Split(ranksFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return cli.Configf("bad rank count %q", s)
		}
		ranks = append(ranks, n)
	}
	horizon, err := sim.ParseTime(horizonFlag)
	if err != nil {
		return cli.Configf("bad horizon: %w", err)
	}
	var modes []par.SyncMode
	if syncFlag == "all" || syncFlag == "" {
		for _, name := range par.SyncModeNames() {
			m, _ := par.ParseSyncMode(name)
			modes = append(modes, m)
		}
	} else {
		for _, s := range strings.Split(syncFlag, ",") {
			m, err := par.ParseSyncMode(strings.TrimSpace(s))
			if err != nil {
				return cli.Configf("%v", err)
			}
			modes = append(modes, m)
		}
	}
	res, err := core.ParallelScalingStudyModes(ranks, nodes, horizon, core.SweepOptions{Context: ctx}, modes)
	if err != nil {
		return err
	}
	return core.WriteResults(os.Stdout, format, res)
}

func run(nodes, steps int, fracFlag string, format core.Format, opts core.SweepOptions, metricsOut, traceOut string) error {
	spec := core.JobSpec{Kind: "net", Nodes: nodes, Steps: steps}
	for _, f := range strings.Split(fracFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 || v > 1 {
			return cli.Configf("bad fraction %q", f)
		}
		spec.Fractions = append(spec.Fractions, v)
	}
	// Dispatch both studies through the study registry — the same JobSpec
	// surface the sweep service admits, so the CLI and the service cannot
	// drift on what the net studies mean or accept.
	degStudy, err := core.NewStudy(spec)
	if err != nil {
		return cli.Configf("%v", err)
	}
	spec.Kind = "net-power"
	powStudy, err := core.NewStudy(spec)
	if err != nil {
		return cli.Configf("%v", err)
	}
	// Each study is one sweep, so each gets its own collector (point
	// indices are per-sweep). The journal — and the result cache, which
	// rides in opts.Cache — are shared: both studies run the same grid, so
	// the power study resumes (or hits) off the degradation study's
	// completed cells instead of simulating them twice.
	popts := opts
	if opts.Journal != "" {
		popts.Resume = true
	}
	var dcol, pcol *obs.SweepCollector
	if metricsOut != "" || traceOut != "" {
		dcol, pcol = &obs.SweepCollector{}, &obs.SweepCollector{}
		opts.Metrics, popts.Metrics = dcol, pcol
	}
	// Both studies render whatever cells completed even when some failed
	// or the sweep was interrupted; the error still propagates so the
	// exit code reflects the incomplete run.
	deg, derr := degStudy.Run(opts)
	pow, perr := powStudy.Run(popts)
	var show []core.Result
	for _, r := range []core.Result{deg, pow} {
		if r != nil {
			show = append(show, r)
		}
	}
	if err := core.WriteResults(os.Stdout, format, show...); err != nil {
		return err
	}
	if metricsOut != "" {
		if err := writeFile(metricsOut, func(w io.Writer) error {
			if err := core.WriteResults(w, core.FormatJSON, dcol, pcol); err != nil {
				return err
			}
			if opts.Cache == nil {
				return nil
			}
			rcol := obs.NewCollector()
			rcol.AttachCache(opts.Cache)
			return rcol.Report().WriteJSON(w)
		}); err != nil {
			return err
		}
	}
	if traceOut != "" {
		if err := writeFile(traceOut, dcol.WriteChromeJSON); err != nil {
			return err
		}
	}
	if derr != nil {
		return fmt.Errorf("study incomplete (tables above show completed cells): %w", derr)
	}
	return perr
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
