package cpu

import (
	"sst/internal/frontend"
	"sst/internal/mem"
	"sst/internal/sim"
	"sst/internal/stats"
)

// regInfinity marks a register whose producing load is still in flight.
const regInfinity = ^sim.Cycle(0)

// Superscalar is a W-wide, in-order-issue core with register scoreboarding,
// non-blocking loads (a load queue decouples issue from the memory system)
// and a 2-bit branch predictor. Wider configurations extract more ILP and
// more memory-level parallelism — the behavior the issue-width studies
// sweep.
//
// The model is deliberately not a full out-of-order machine: SST's fast
// processor models trade reorder-buffer fidelity for speed, and the
// design-space conclusions (memory boundedness vs. width, superlinear
// power) do not depend on OoO bookkeeping.
type Superscalar struct {
	cfg    Config
	clock  *sim.Clock
	engine *sim.Engine
	stream frontend.Stream
	memory mem.Device
	pred   *predictor
	st     coreStats

	// Scoreboard: regReady[r] is the cycle r's value becomes available;
	// regTag[r] identifies the newest writer so a stale load completion
	// doesn't release a register a younger instruction owns (WAW).
	regReady [32]sim.Cycle
	regTag   [32]uint64
	nextTag  uint64

	op         frontend.Op
	haveOp     bool
	bubble     sim.Cycle
	loadsOut   int
	storesOut  int
	running    bool
	done       bool
	streamDry  bool
	onDone     func()
	startCycle sim.Cycle
	endCycle   sim.Cycle

	// tickFn/storeDoneFn are bound once so waking the core or completing a
	// store never allocates; loadFree recycles per-load completion slots
	// (bounded by LoadQ), each carrying its own stable callback.
	tickFn      sim.ClockHandler
	storeDoneFn func()
	loadFree    []*loadSlot
}

// loadSlot carries one in-flight load's writeback target. Slots are
// recycled, and fn is created once per slot, so a load costs no closure
// allocation in steady state.
type loadSlot struct {
	c   *Superscalar
	dst uint8
	tag uint64
	fn  func()
}

// NewSuperscalar builds the core. scope may be nil.
func NewSuperscalar(engine *sim.Engine, clock *sim.Clock, cfg Config, stream frontend.Stream, memory mem.Device, scope *stats.Scope) (*Superscalar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Superscalar{
		cfg:    cfg,
		clock:  clock,
		engine: engine,
		stream: stream,
		memory: memory,
		pred:   newPredictor(cfg.PredictorEntries),
		st:     newCoreStats(ensureScope(scope, cfg.Name)),
	}
	c.tickFn = c.tick
	c.storeDoneFn = func() {
		c.storesOut--
		c.wake()
	}
	return c, nil
}

// newLoadSlot takes a recycled slot or makes one with its callback bound.
func (c *Superscalar) newLoadSlot(dst uint8, tag uint64) *loadSlot {
	var s *loadSlot
	if n := len(c.loadFree) - 1; n >= 0 {
		s, c.loadFree[n] = c.loadFree[n], nil
		c.loadFree = c.loadFree[:n]
	} else {
		s = &loadSlot{c: c}
		s.fn = func() { s.c.loadDone(s) }
	}
	s.dst, s.tag = dst, tag
	return s
}

// loadDone retires one in-flight load: writeback (unless a younger writer
// superseded it), slot recycling, and a wake.
func (c *Superscalar) loadDone(s *loadSlot) {
	c.loadsOut--
	if s.dst != 0 && c.regTag[s.dst] == s.tag {
		c.regReady[s.dst] = c.clock.NextCycle() + 1
	}
	c.loadFree = append(c.loadFree, s)
	c.wake()
}

// Name implements sim.Component.
func (c *Superscalar) Name() string { return c.cfg.Name }

// Start arms the core.
func (c *Superscalar) Start(onDone func()) {
	c.onDone = onDone
	c.startCycle = c.clock.NextCycle()
	c.wake()
}

func (c *Superscalar) wake() {
	if c.running || c.done {
		return
	}
	c.running = true
	c.clock.RegisterNamed(c.cfg.Name, c.tickFn)
}

func (c *Superscalar) sleep() bool {
	c.running = false
	c.st.sleeps.Inc()
	return false
}

// ready reports whether register r holds its value by the given cycle.
func (c *Superscalar) ready(r uint8, cycle sim.Cycle) bool {
	return r == 0 || c.regReady[r] <= cycle
}

// setWriter claims register r for a new producer available at readyAt.
func (c *Superscalar) setWriter(r uint8, readyAt sim.Cycle) uint64 {
	if r == 0 {
		return 0
	}
	c.nextTag++
	c.regTag[r] = c.nextTag
	c.regReady[r] = readyAt
	return c.nextTag
}

func (c *Superscalar) tick(cycle sim.Cycle) bool {
	c.st.cycles.Inc()
	if c.bubble > 0 {
		c.bubble--
		c.st.stallBubble.Inc()
		return true
	}
	issued := 0
	blockedOnMem := false
	for issued < c.cfg.Width {
		if !c.haveOp {
			if c.streamDry || !c.stream.Next(&c.op) {
				c.streamDry = true
				break
			}
			c.haveOp = true
		}
		op := &c.op
		// In-order issue: sources must be ready.
		if !c.ready(op.Src1, cycle) || !c.ready(op.Src2, cycle) {
			c.st.stallDep.Inc()
			// If the blocking producer is an in-flight load, the
			// core can sleep; a fixed-latency producer resolves
			// within a few cycles of ticking.
			if (op.Src1 != 0 && c.regReady[op.Src1] == regInfinity) ||
				(op.Src2 != 0 && c.regReady[op.Src2] == regInfinity) {
				blockedOnMem = true
			}
			break
		}
		switch op.Class {
		case frontend.ClassLoad:
			if c.loadsOut >= c.cfg.LoadQ {
				c.st.stallMem.Inc()
				blockedOnMem = true
				goto out
			}
			c.st.loads.Inc()
			c.loadsOut++
			tag := c.setWriter(op.Dst, regInfinity)
			s := c.newLoadSlot(op.Dst, tag)
			c.memory.Access(mem.Read, op.Addr, int(op.Size), s.fn)
		case frontend.ClassStore:
			if c.storesOut >= c.cfg.StoreQ {
				c.st.stallMem.Inc()
				blockedOnMem = true
				goto out
			}
			c.st.stores.Inc()
			c.storesOut++
			c.memory.Access(mem.Write, op.Addr, int(op.Size), c.storeDoneFn)
		case frontend.ClassBranch:
			c.st.branches.Inc()
			if c.pred.mispredicted(op.PC, op.Taken) {
				c.st.mispredicts.Inc()
				c.bubble = c.cfg.BranchPenalty
				c.st.retired.Inc()
				c.haveOp = false
				return true // flush: stop issuing this cycle
			}
		case frontend.ClassFloat:
			c.st.flops.Inc()
			c.setWriter(op.Dst, cycle+c.cfg.FloatLat)
		case frontend.ClassInt:
			c.setWriter(op.Dst, cycle+c.cfg.IntLat)
		}
		c.st.retired.Inc()
		c.haveOp = false
		issued++
	}
out:
	if c.streamDry && !c.haveOp {
		return c.finish(cycle)
	}
	// Sleep when no forward progress is possible until a memory response.
	if issued == 0 && blockedOnMem && (c.loadsOut > 0 || c.storesOut > 0) {
		return c.sleep()
	}
	return true
}

func (c *Superscalar) finish(cycle sim.Cycle) bool {
	if c.loadsOut > 0 || c.storesOut > 0 {
		c.st.stallMem.Inc()
		return c.sleep() // completions wake us to re-check
	}
	c.done = true
	c.running = false
	c.endCycle = cycle
	if c.onDone != nil {
		done := c.onDone
		c.onDone = nil
		done()
	}
	return false
}

// Done reports stream exhaustion and memory drain.
func (c *Superscalar) Done() bool { return c.done }

// Retired returns committed operations.
func (c *Superscalar) Retired() uint64 { return c.st.retired.Count() }

// Cycles returns core cycles from Start to completion.
func (c *Superscalar) Cycles() sim.Cycle {
	if c.done {
		return c.endCycle - c.startCycle
	}
	return c.clock.Cycle() - c.startCycle
}

// IPC returns retired operations per cycle.
func (c *Superscalar) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.Retired()) / float64(cy)
}

// Mispredicts exposes the mispredict count for predictor studies.
func (c *Superscalar) Mispredicts() uint64 { return c.st.mispredicts.Count() }
