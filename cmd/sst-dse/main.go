// Command sst-dse runs the design-space exploration sweeps of the SST
// studies — memory technology × issue width with power and cost axes — and
// prints the Fig. 10/11/12 tables. With -resilience it instead sweeps
// checkpoint intervals against machine MTBF and reports the optimal
// interval next to the Young/Daly closed forms.
//
// Usage:
//
//	sst-dse [-apps hpccg,lulesh] [-techs ddr2-800,ddr3-1333,gddr5-4000]
//	        [-widths 1,2,4,8] [-scale full|small] [-table all|fig10|fig11|fig12]
//	        [-csv] [-j N]
//	sst-dse -resilience [-mtbf 1,4,24] [-ckpt-cost 60] [-restart-cost 120]
//	        [-work 24] [-trials 5] [-fault-seed 1] [-csv] [-j N]
//
// The sweep's design points are independent simulations; -j sets how many
// run concurrently (default: GOMAXPROCS). Tables are identical at any -j,
// and the resilience study is deterministic in -fault-seed. Ctrl-C drains
// the points already running, prints the partial tables, and exits
// nonzero; points that failed or were skipped are listed on stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"sst/internal/core"
	"sst/internal/stats"
)

func main() {
	var (
		appsFlag   = flag.String("apps", "hpccg,lulesh", "comma-separated miniapps")
		techsFlag  = flag.String("techs", "ddr2-800,ddr3-1333,gddr5-4000", "memory technologies")
		widthsFlag = flag.String("widths", "1,2,4,8", "issue widths")
		scaleFlag  = flag.String("scale", "full", "problem scale: full or small")
		tableFlag  = flag.String("table", "all", "which table: all, fig10, fig11, fig12")
		csvFlag    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jFlag      = flag.Int("j", 0, "concurrent sweep workers (0 = GOMAXPROCS)")

		resFlag     = flag.Bool("resilience", false, "run the checkpoint/MTBF resilience study instead of the DSE sweep")
		mtbfFlag    = flag.String("mtbf", "1,4,24", "machine MTBF values to study, hours")
		ckptFlag    = flag.Float64("ckpt-cost", 60, "checkpoint write cost, seconds")
		restartFlag = flag.Float64("restart-cost", 120, "restart cost after a failure, seconds")
		workFlag    = flag.Float64("work", 24, "job useful work, hours")
		trialsFlag  = flag.Int("trials", 5, "seeded runs averaged per study cell")
		seedFlag    = flag.Uint64("fault-seed", 1, "root fault seed (same seed, same tables)")
	)
	flag.Parse()

	// Ctrl-C cancels the sweep context: running design points finish and
	// keep their results, everything not yet started is skipped, and the
	// partial tables are still printed before the nonzero exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	core.SetSweepContext(ctx)

	var err error
	if *resFlag {
		err = runResilience(*mtbfFlag, *ckptFlag, *restartFlag, *workFlag, *trialsFlag, *seedFlag, *csvFlag, *jFlag)
	} else {
		err = run(*appsFlag, *techsFlag, *widthsFlag, *scaleFlag, *tableFlag, *csvFlag, *jFlag)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sst-dse:", err)
		os.Exit(1)
	}
}

func emitTable(t *stats.Table, asCSV bool) {
	if asCSV {
		t.RenderCSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}
	fmt.Println()
}

func run(appsFlag, techsFlag, widthsFlag, scaleFlag, tableFlag string, asCSV bool, workers int) error {
	core.SetSweepWorkers(workers)
	apps := strings.Split(appsFlag, ",")
	techs := strings.Split(techsFlag, ",")
	var widths []int
	for _, w := range strings.Split(widthsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || v <= 0 {
			return fmt.Errorf("bad width %q", w)
		}
		widths = append(widths, v)
	}
	scale := core.Full
	switch scaleFlag {
	case "full":
	case "small":
		scale = core.Small
	default:
		return fmt.Errorf("bad scale %q", scaleFlag)
	}

	grid, err := core.MemTechWidthSweep(apps, techs, widths, scale)
	if grid == nil {
		return err
	}
	emit := func(t *stats.Table) { emitTable(t, asCSV) }
	baseline := techs[0]
	for _, t := range techs {
		if strings.HasPrefix(t, "ddr3") {
			baseline = t
			break
		}
	}
	switch tableFlag {
	case "all":
		emit(core.Fig10Table(grid, apps, techs, widths, baseline))
		emit(core.Fig11Table(grid, apps, techs, widths))
		emit(core.Fig12Table(grid, apps, techs[len(techs)-1], widths))
	case "fig10":
		emit(core.Fig10Table(grid, apps, techs, widths, baseline))
	case "fig11":
		emit(core.Fig11Table(grid, apps, techs, widths))
	case "fig12":
		emit(core.Fig12Table(grid, apps, techs[len(techs)-1], widths))
	default:
		return fmt.Errorf("bad table %q", tableFlag)
	}
	if err != nil {
		failed := grid.Failed()
		for _, p := range failed {
			msg := p.Err.Error()
			if i := strings.IndexByte(msg, '\n'); i >= 0 {
				msg = msg[:i]
			}
			fmt.Fprintf(os.Stderr, "sst-dse: point %s/%s/w%d: %s\n", p.App, p.Tech, p.Width, msg)
		}
		return fmt.Errorf("sweep incomplete: %d of %d points failed (tables above show the rest)",
			len(failed), len(grid.Points))
	}
	return nil
}

func runResilience(mtbfFlag string, ckptS, restartS, workHours float64, trials int, seed uint64, asCSV bool, workers int) error {
	core.SetSweepWorkers(workers)
	var mtbfs []float64
	for _, m := range strings.Split(mtbfFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(m), 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad mtbf %q (hours)", m)
		}
		mtbfs = append(mtbfs, v)
	}
	res, err := core.ResilienceStudy(core.ResilienceConfig{
		MTBFHours:   mtbfs,
		CheckpointS: ckptS,
		RestartS:    restartS,
		WorkHours:   workHours,
		Trials:      trials,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	emitTable(res.Table, asCSV)
	return nil
}
