package sim

import "fmt"

// Port is one endpoint of a Link. Components send payloads out of their own
// port; the payload arrives at the peer port's handler after the link
// latency.
type Port struct {
	name    string
	link    *Link
	peer    *Port
	handler Handler
	prio    Priority
}

// Name returns the port's diagnostic name.
func (p *Port) Name() string { return p.name }

// Link returns the link this port belongs to, or nil when unconnected.
func (p *Port) Link() *Link { return p.link }

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return p.peer }

// Deliver invokes the port's handler directly at the current time. It is
// used by the parallel runtime when draining cross-rank mailboxes; normal
// components use Send on the peer instead.
func (p *Port) Deliver(payload any) {
	if p.handler == nil {
		panic(fmt.Sprintf("sim: port %q has no handler", p.name))
	}
	p.handler(payload)
}

// SetHandler installs the function invoked when a payload arrives at this
// port. It must be set before the peer sends.
func (p *Port) SetHandler(h Handler) { p.handler = h }

// Connected reports whether the port has been wired to a link.
func (p *Port) Connected() bool { return p.link != nil }

// Latency returns the latency of the attached link.
func (p *Port) Latency() Time {
	if p.link == nil {
		return 0
	}
	return p.link.latency
}

// Send delivers payload to the peer port after the link latency.
func (p *Port) Send(payload any) { p.SendDelayed(0, payload) }

// SendDelayed delivers payload to the peer port after the link latency plus
// extra time (modelling serialization or queuing at the sender). extra must
// be non-negative. Time is unsigned, so a caller that computes a negative
// duration (a - b with b > a) wraps to an enormous value; left unchecked it
// would schedule delivery astronomically far in the future — or, after the
// latency addition overflows, into the past, where the engine's causality
// check would only catch it far from the offending component. Wrapped
// values all have the top bit set (a legitimate extra below ~53 days does
// not), so they are rejected here, where the port and link can still be
// named.
func (p *Port) SendDelayed(extra Time, payload any) {
	l := p.link
	if l == nil {
		panic(fmt.Sprintf("sim: send on unconnected port %q", p.name))
	}
	if extra > TimeInfinity/2 {
		panic(fmt.Sprintf("sim: negative send delay %v (wrapped to %d ps) on port %q (link %q)",
			int64(extra), uint64(extra), p.name, l.name))
	}
	delay := l.latency + extra
	if l.intercept != nil {
		var ok bool
		if delay, payload, ok = l.intercept(p, delay, payload); !ok {
			return // dropped by the interceptor
		}
		if delay < l.latency {
			// An interceptor may add delay but never subtract below the
			// link latency: the latency is the parallel runtime's
			// conservative lookahead and shortening it would let a
			// payload outrun the synchronization window.
			delay = l.latency
		}
	}
	if l.deliver != nil {
		l.deliver(p, delay, payload)
		return
	}
	peer := p.peer
	if peer.handler == nil {
		panic(fmt.Sprintf("sim: port %q has no handler (send from %q)", peer.name, p.name))
	}
	if l.inflight != nil {
		l.trackSend(p, delay, payload)
		return
	}
	l.engine.ScheduleLabeled(delay, peer.prio, l.name, peer.handler, payload)
}

// Link is a bidirectional, latency-bearing connection between two ports.
// Nonzero latency is what allows the parallel engine to run the two sides
// in different ranks: the latency is conservative lookahead.
type Link struct {
	name    string
	engine  *Engine
	latency Time
	a, b    Port

	// deliver, when installed by the parallel runtime, routes sends
	// through rank mailboxes instead of the local engine.
	deliver func(from *Port, delay Time, payload any)

	// intercept, when installed (internal/fault), inspects every payload
	// before delivery and may delay, rewrite or drop it. It composes with
	// deliver: interception happens first, on the sending side, so it
	// behaves identically for local and cross-rank links.
	intercept LinkInterceptor

	// inflight, when allocated by trackForSnapshots, records local
	// deliveries still pending by their event sequence so the link can
	// carry them across a checkpoint (see checkpoint.go). Nil unless the
	// engine has snapshots enabled.
	inflight map[uint64]linkEvent
}

// LinkInterceptor inspects a send in flight: it receives the sending port,
// the total delay (link latency plus any sender-added extra) and the
// payload, and returns the possibly-modified delay and payload plus whether
// to deliver at all. Returned delays below the link latency are clamped up
// to it to preserve the parallel runtime's lookahead. Interceptors run on
// the sending side's engine, in deterministic event order.
type LinkInterceptor func(from *Port, delay Time, payload any) (Time, any, bool)

// Connect creates a link with the given latency and returns its two ports.
func Connect(engine *Engine, name string, latency Time) (*Port, *Port) {
	l := &Link{name: name, engine: engine, latency: latency}
	l.a = Port{name: name + ".a", link: l, prio: PrioLink}
	l.b = Port{name: name + ".b", link: l, prio: PrioLink}
	l.a.peer = &l.b
	l.b.peer = &l.a
	return &l.a, &l.b
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Engine returns the engine the link was created on. For cross-rank links
// built by internal/par this is the home rank's engine only; the far side
// runs on a different engine and must not read this one's clock.
func (l *Link) Engine() *Engine { return l.engine }

// Latency returns the link's one-way latency.
func (l *Link) Latency() Time { return l.latency }

// SetDeliver installs a custom delivery function. Used by internal/par to
// route cross-rank traffic; payload delivery order remains deterministic
// because the parallel runtime merges by (time, source rank, sequence).
func (l *Link) SetDeliver(fn func(from *Port, delay Time, payload any)) { l.deliver = fn }

// SetIntercept installs (or, with nil, removes) a fault interceptor. At
// most one interceptor is active per link; internal/fault composes multiple
// fault kinds inside a single interceptor.
func (l *Link) SetIntercept(fn LinkInterceptor) { l.intercept = fn }

// Intercepted reports whether a fault interceptor is installed.
func (l *Link) Intercepted() bool { return l.intercept != nil }

// Interceptor returns the installed interceptor, or nil. Observability
// layers use it to wrap an existing fault interceptor with counters instead
// of displacing it.
func (l *Link) Interceptor() LinkInterceptor { return l.intercept }

// Sized is implemented by payloads that know their wire size; link byte
// counters consult it. Payloads without it count as zero bytes.
type Sized interface {
	// PayloadBytes returns the payload's size on the wire, in bytes.
	PayloadBytes() int
}

// Ports returns the two endpoints of the link.
func (l *Link) Ports() (*Port, *Port) { return &l.a, &l.b }
