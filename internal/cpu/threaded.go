package cpu

import (
	"sst/internal/frontend"
	"sst/internal/mem"
	"sst/internal/sim"
	"sst/internal/stats"
)

// Threaded is a fine-grained multithreaded, PIM-style lightweight core: T
// hardware threads share one scalar issue slot, rotating round-robin among
// ready threads every cycle. A thread that issues a load blocks until the
// data returns while the other threads keep the pipe full — latency
// tolerance through thread-level parallelism instead of caches, the
// processing-in-memory design point the SST poster targets.
type Threaded struct {
	cfg    Config
	clock  *sim.Clock
	engine *sim.Engine
	memory mem.Device
	st     coreStats

	threads    []*hwThread
	rr         int
	running    bool
	done       bool
	onDone     func()
	live       int
	startCycle sim.Cycle
	endCycle   sim.Cycle
}

// hwThread is one hardware context.
type hwThread struct {
	stream    frontend.Stream
	op        frontend.Op
	haveOp    bool
	readyAt   sim.Cycle
	waiting   bool // outstanding load
	storesOut int
	dry       bool
}

// NewThreaded builds the core with one stream per hardware thread.
// scope may be nil.
func NewThreaded(engine *sim.Engine, clock *sim.Clock, cfg Config, streams []frontend.Stream, memory mem.Device, scope *stats.Scope) (*Threaded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Threaded{
		cfg:    cfg,
		clock:  clock,
		engine: engine,
		memory: memory,
		st:     newCoreStats(ensureScope(scope, cfg.Name)),
	}
	for _, s := range streams {
		c.threads = append(c.threads, &hwThread{stream: s})
	}
	c.live = len(c.threads)
	return c, nil
}

// Name implements sim.Component.
func (c *Threaded) Name() string { return c.cfg.Name }

// Threads returns the hardware thread count.
func (c *Threaded) Threads() int { return len(c.threads) }

// Start arms the core.
func (c *Threaded) Start(onDone func()) {
	c.onDone = onDone
	c.startCycle = c.clock.NextCycle()
	if c.live == 0 {
		c.done = true
		c.endCycle = c.startCycle
		onDone()
		return
	}
	c.wake()
}

func (c *Threaded) wake() {
	if c.running || c.done {
		return
	}
	c.running = true
	c.clock.RegisterNamed(c.cfg.Name, c.tick)
}

func (c *Threaded) tick(cycle sim.Cycle) bool {
	c.st.cycles.Inc()
	n := len(c.threads)
	anyBlocked := false
	for i := 0; i < n; i++ {
		t := c.threads[(c.rr+i)%n]
		if t.dry && !t.haveOp {
			continue
		}
		if t.waiting || t.readyAt > cycle {
			anyBlocked = true
			continue
		}
		if !t.haveOp {
			if !t.stream.Next(&t.op) {
				t.dry = true
				if t.storesOut == 0 {
					c.live--
				} else {
					anyBlocked = true
				}
				continue
			}
			t.haveOp = true
		}
		c.rr = (c.rr + i + 1) % n
		c.issue(t, cycle)
		if c.live == 0 {
			return c.finish(cycle)
		}
		return true
	}
	if c.live == 0 {
		return c.finish(cycle)
	}
	if anyBlocked {
		// All remaining threads are waiting on memory or latency;
		// sleep if every block is memory (completions wake us),
		// otherwise keep ticking for the fixed-latency ones.
		allMem := true
		for _, t := range c.threads {
			if t.dry && t.storesOut == 0 {
				continue
			}
			if !t.waiting && t.storesOut == 0 && t.readyAt > cycle {
				allMem = false
				break
			}
		}
		if allMem {
			c.st.stallMem.Inc()
			return c.sleep()
		}
		c.st.stallDep.Inc()
	}
	return true
}

func (c *Threaded) issue(t *hwThread, cycle sim.Cycle) {
	op := &t.op
	t.haveOp = false
	switch op.Class {
	case frontend.ClassLoad:
		c.st.loads.Inc()
		t.waiting = true
		c.memory.Access(mem.Read, op.Addr, int(op.Size), func() {
			t.waiting = false
			t.readyAt = c.clock.NextCycle()
			c.wake()
		})
	case frontend.ClassStore:
		if t.storesOut >= c.cfg.StoreQ {
			// Re-take the op next cycle.
			t.haveOp = true
			t.readyAt = cycle + 1
			c.st.stallMem.Inc()
			return
		}
		c.st.stores.Inc()
		t.storesOut++
		c.memory.Access(mem.Write, op.Addr, int(op.Size), func() {
			t.storesOut--
			if t.dry && t.storesOut == 0 {
				c.live--
				if c.live == 0 {
					c.wake()
				}
			}
		})
		t.readyAt = cycle + 1
	case frontend.ClassBranch:
		c.st.branches.Inc()
		// No speculation: a taken branch costs the redirect penalty.
		if op.Taken {
			t.readyAt = cycle + 2
		} else {
			t.readyAt = cycle + 1
		}
	case frontend.ClassFloat:
		c.st.flops.Inc()
		t.readyAt = cycle + c.cfg.FloatLat
	default:
		t.readyAt = cycle + c.cfg.IntLat
	}
	c.st.retired.Inc()
}

func (c *Threaded) sleep() bool {
	c.running = false
	c.st.sleeps.Inc()
	return false
}

func (c *Threaded) finish(cycle sim.Cycle) bool {
	c.done = true
	c.running = false
	c.endCycle = cycle
	if c.onDone != nil {
		done := c.onDone
		c.onDone = nil
		done()
	}
	return false
}

// Done reports all threads exhausted and drained.
func (c *Threaded) Done() bool { return c.done }

// Retired returns committed operations across all threads.
func (c *Threaded) Retired() uint64 { return c.st.retired.Count() }

// Cycles returns core cycles from Start to completion.
func (c *Threaded) Cycles() sim.Cycle {
	if c.done {
		return c.endCycle - c.startCycle
	}
	return c.clock.Cycle() - c.startCycle
}

// IPC returns retired operations per cycle.
func (c *Threaded) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.Retired()) / float64(cy)
}
