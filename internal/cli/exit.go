// Package cli holds the conventions shared by the sst commands: the exit
// code contract and signal handling. Every command distinguishes a clean
// run, a generic failure, a configuration mistake, a sweep that completed
// with failed points, and an interrupted run, so scripts driving the
// tools (the resume workflow in particular) can branch on what happened.
// SIGINT and SIGTERM are handled identically everywhere: both drain
// in-flight work, flush journals, and land on the 130 contract —
// supervisors (systemd, Kubernetes, the serve-smoke harness) send
// SIGTERM, humans send SIGINT, and neither should lose journaled points.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"sst/internal/core"
	"sst/internal/sim"
)

// Exit codes. Interruption follows the shell convention 128+SIGINT.
const (
	ExitOK          = 0
	ExitFailure     = 1
	ExitConfig      = 2
	ExitPointFailed = 3
	ExitInterrupted = 130
)

// ErrConfig marks configuration mistakes — bad flag values, malformed
// config files — as opposed to a simulation that ran and failed.
var ErrConfig = errors.New("configuration error")

// Configf builds an ErrConfig-wrapping error so Code maps it to
// ExitConfig. Additional %w verbs keep their chains.
func Configf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrConfig}, args...)...)
}

// Code maps a command's terminal error to its exit code. Interruption
// (SIGINT/SIGTERM surface as context cancellation or an interrupted
// engine) takes priority over failed sweep points, which in turn outrank
// generic failure; a timed-out design point is a point failure, not an
// interruption, because its error carries context.DeadlineExceeded rather
// than cancellation. A broken journal (core.ErrJournal) is a generic
// failure — exit 1 — even though it surfaces through a point error: the
// crash-safety layer failing must not look like an unlucky design point.
func Code(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, ErrConfig):
		return ExitConfig
	case errors.Is(err, context.Canceled), errors.Is(err, sim.ErrInterrupted):
		return ExitInterrupted
	case errors.Is(err, core.ErrJournal):
		return ExitFailure
	case errors.Is(err, core.ErrPointFailed):
		return ExitPointFailed
	default:
		return ExitFailure
	}
}

// Exit prints err (when non-nil) prefixed with the command name and exits
// with the matching code.
func Exit(cmd string, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, cmd+":", err)
	}
	os.Exit(Code(err))
}

// OnInterrupt runs stop on the first SIGINT or SIGTERM, so Ctrl-C and a
// supervisor's termination signal both land a simulation at its next poll
// point (engine interrupt, sweep-context cancellation) instead of killing
// the process mid-run. The returned func detaches the handler; a second
// signal then terminates the process normally.
func OnInterrupt(stop func()) func() {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case <-sigc:
			stop()
		case <-done:
		}
	}()
	return func() {
		signal.Stop(sigc)
		close(done)
	}
}

// SignalContext returns a context cancelled by the first SIGINT or
// SIGTERM — the sweep commands pass it as SweepOptions.Context so either
// signal drains the sweep: running points finish and are journaled,
// everything not yet started is skipped, and the partial tables still
// render before the 130 exit. The stop func detaches the handler; a
// second signal then terminates the process normally.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
