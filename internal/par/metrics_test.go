package par

import (
	"testing"

	"sst/internal/sim"
)

// TestMetricsSingleRank exercises the single-rank fast path: metrics must
// still be populated even though no barrier machinery runs.
func TestMetricsSingleRank(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := r.Rank(0).Engine()
	for i := 1; i <= 5; i++ {
		eng.Schedule(sim.Time(i)*sim.Nanosecond, func(any) {}, nil)
	}
	if _, err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.Windows == 0 {
		t.Fatal("no windows recorded")
	}
	if len(m.Ranks) != 1 {
		t.Fatalf("%d rank entries, want 1", len(m.Ranks))
	}
	rk := m.Ranks[0]
	if rk.Events != 5 {
		t.Errorf("rank events = %d, want 5", rk.Events)
	}
	if rk.Windows == 0 {
		t.Error("rank windows = 0")
	}
	if rk.Clock != 5*sim.Nanosecond {
		t.Errorf("rank clock = %v, want 5ns", rk.Clock)
	}
	if m.Imbalance != 1 {
		t.Errorf("single-rank imbalance = %v, want 1", m.Imbalance)
	}
}

// TestMetricsImbalance: an unbalanced two-rank partition must show
// imbalance above 1 and idle windows on the starved rank.
func TestMetricsImbalance(t *testing.T) {
	r, err := NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	// A cross link fixes the lookahead so windows are bounded.
	a, b, err := r.Connect("x", 10*sim.Nanosecond, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.SetHandler(func(any) {})
	b.SetHandler(func(any) {})
	// Rank 0 does all the work; rank 1 idles across many windows.
	e0 := r.Rank(0).Engine()
	for i := 1; i <= 100; i++ {
		e0.Schedule(sim.Time(i)*sim.Nanosecond, func(any) {}, nil)
	}
	if _, err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.Lookahead != 10*sim.Nanosecond {
		t.Errorf("lookahead = %v, want 10ns", m.Lookahead)
	}
	if m.Windows == 0 {
		t.Fatal("no windows recorded")
	}
	if m.Ranks[0].Events != 100 || m.Ranks[1].Events != 0 {
		t.Fatalf("events = %d / %d, want 100 / 0", m.Ranks[0].Events, m.Ranks[1].Events)
	}
	// max/mean with all events on one of two ranks = 2.
	if m.Imbalance != 2 {
		t.Errorf("imbalance = %v, want 2", m.Imbalance)
	}
	if m.Ranks[1].IdleWindows == 0 {
		t.Error("starved rank recorded no idle windows")
	}
	if m.Ranks[1].IdleWindows < m.Ranks[0].IdleWindows {
		t.Errorf("idle windows: rank1 %d < rank0 %d",
			m.Ranks[1].IdleWindows, m.Ranks[0].IdleWindows)
	}
}

// TestMetricsZeroEvents: a runner that never dispatched reports zero
// imbalance rather than NaN.
func TestMetricsZeroEvents(t *testing.T) {
	r, err := NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.Imbalance != 0 {
		t.Errorf("imbalance = %v, want 0", m.Imbalance)
	}
	for _, rk := range m.Ranks {
		if rk.Events != 0 {
			t.Errorf("rank %d events = %d", rk.Rank, rk.Events)
		}
	}
}

// TestMetricsAccumulateAcrossRuns: counters are cumulative over successive
// Run calls, matching the doc contract.
func TestMetricsAccumulateAcrossRuns(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := r.Rank(0).Engine()
	eng.Schedule(sim.Nanosecond, func(any) {}, nil)
	if _, err := r.Run(2 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	first := r.Metrics().Ranks[0].Events
	eng.Schedule(sim.Nanosecond, func(any) {}, nil)
	if _, err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	second := r.Metrics().Ranks[0].Events
	if first != 1 || second != 2 {
		t.Fatalf("events after runs = %d, %d; want 1, 2", first, second)
	}
}
