package stats

import (
	"strings"
	"testing"

	"sst/internal/sim"
)

func TestSamplerManual(t *testing.T) {
	reg := NewRegistry()
	c := reg.Scope("m").Counter("bytes")
	s := NewSampler(reg, "m.bytes")
	c.Add(10)
	if err := s.SampleAt(100); err != nil {
		t.Fatal(err)
	}
	c.Add(30)
	if err := s.SampleAt(200); err != nil {
		t.Fatal(err)
	}
	if s.N() != 2 {
		t.Fatalf("n = %d", s.N())
	}
	tm, row := s.Row(1)
	if tm != 200 || row[0] != 40 {
		t.Fatalf("row 1 = %v %v", tm, row)
	}
	series, err := s.Series("m.bytes")
	if err != nil || len(series) != 2 || series[0] != 10 || series[1] != 40 {
		t.Fatalf("series = %v, %v", series, err)
	}
	deltas, err := s.Deltas("m.bytes")
	if err != nil || deltas[0] != 10 || deltas[1] != 30 {
		t.Fatalf("deltas = %v, %v", deltas, err)
	}
	if _, err := s.Series("nope"); err == nil {
		t.Error("untracked series returned")
	}
	if err := NewSampler(reg, "missing.stat").SampleAt(1); err == nil {
		t.Error("unknown stat sampled")
	}
}

func TestSamplerPeriodic(t *testing.T) {
	reg := NewRegistry()
	c := reg.Scope("m").Counter("events")
	engine := sim.NewEngine()
	// A workload that bumps the counter every ns for 100ns.
	var work sim.Handler
	n := 0
	work = func(any) {
		c.Inc()
		n++
		if n < 100 {
			engine.Schedule(sim.Nanosecond, work, nil)
		}
	}
	engine.Schedule(0, work, nil)
	s := NewSampler(reg, "m.events")
	s.Every(engine, 10*sim.Nanosecond, 8)
	engine.RunAll()
	if s.N() != 8 {
		t.Fatalf("samples = %d, want 8", s.N())
	}
	// Monotonic counter, ~10 events per 10ns period.
	series, _ := s.Series("m.events")
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Fatal("series not monotone")
		}
	}
	deltas, _ := s.Deltas("m.events")
	for i, d := range deltas {
		if d < 9 || d > 12 {
			t.Fatalf("delta[%d] = %v, want ~10", i, d)
		}
	}
	// The sampler must not have kept the queue alive past its budget.
	if engine.Pending() != 0 {
		t.Fatal("sampler left events pending")
	}
}

func TestSamplerCSV(t *testing.T) {
	reg := NewRegistry()
	c := reg.Scope("m").Counter("x")
	s := NewSampler(reg, "m.x")
	c.Add(5)
	s.SampleAt(1000)
	var sb strings.Builder
	s.WriteCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, "time_ps,m.x") || !strings.Contains(out, "1000,5") {
		t.Fatalf("csv:\n%s", out)
	}
	if len(s.Names()) != 1 {
		t.Fatal("names")
	}
}

func TestSamplerZeroBudget(t *testing.T) {
	reg := NewRegistry()
	engine := sim.NewEngine()
	s := NewSampler(reg)
	s.Every(engine, sim.Nanosecond, 0)
	if engine.Pending() != 0 {
		t.Fatal("zero-budget sampler armed")
	}
}
