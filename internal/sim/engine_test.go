package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	rec := func(v int) Handler {
		return func(any) { got = append(got, v) }
	}
	e.Schedule(30, rec(3), nil)
	e.Schedule(10, rec(1), nil)
	e.Schedule(20, rec(2), nil)
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestEngineSameTimePriority(t *testing.T) {
	e := NewEngine()
	var got []string
	e.SchedulePrio(10, PrioLink, func(any) { got = append(got, "link") }, nil)
	e.SchedulePrio(10, PrioClock, func(any) { got = append(got, "clock") }, nil)
	e.SchedulePrio(10, PrioLate, func(any) { got = append(got, "late") }, nil)
	e.RunAll()
	if len(got) != 3 || got[0] != "clock" || got[1] != "link" || got[2] != "late" {
		t.Fatalf("priority order = %v", got)
	}
}

func TestEngineFIFOAtSameTimePrio(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		v := i
		e.Schedule(5, func(any) { got = append(got, v) }, nil)
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("insertion order broken at %d: got %v", i, got[:i+1])
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func(any) { fired++ }, nil)
	e.Schedule(100, func(any) { fired++ }, nil)
	n := e.Run(50)
	if n != 1 || fired != 1 {
		t.Fatalf("Run(50) handled %d events (fired=%d), want 1", n, fired)
	}
	if e.Now() != 50 {
		t.Errorf("Now = %v, want 50 (idle advance to horizon)", e.Now())
	}
	e.Run(200)
	if fired != 2 {
		t.Errorf("second event not fired")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i, func(any) {
			count++
			if count == 3 {
				e.Stop()
			}
		}, nil)
	}
	e.RunAll()
	if count != 3 {
		t.Fatalf("handled %d events after Stop, want 3", count)
	}
	// Run resumes after a Stop.
	e.RunAll()
	if count != 10 {
		t.Fatalf("handled %d events total, want 10", count)
	}
}

func TestEngineScheduleFromHandler(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse Handler
	recurse = func(any) {
		depth++
		if depth < 64 {
			e.Schedule(1, recurse, nil)
		}
	}
	e.Schedule(1, recurse, nil)
	e.RunAll()
	if depth != 64 {
		t.Fatalf("depth = %d, want 64", depth)
	}
	if e.Now() != 64 {
		t.Fatalf("Now = %v, want 64", e.Now())
	}
}

func TestEngineScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func(any) {}, nil)
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt into the past did not panic")
		}
	}()
	e.ScheduleAt(10, PrioLink, func(any) {}, nil)
}

func TestEngineNilHandlerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule with nil handler did not panic")
		}
	}()
	e.Schedule(1, nil, nil)
}

func TestEngineOverflowClamps(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func(any) {}, nil)
	e.RunAll()
	// now == 5; delay near max must clamp, not wrap to the past.
	e.Schedule(TimeInfinity-2, func(any) {}, nil)
	if ev := e.q.Peek(); ev.time != TimeInfinity {
		t.Fatalf("overflowing delay scheduled at %v, want clamp to infinity", ev.time)
	}
}

func TestEnginePayload(t *testing.T) {
	e := NewEngine()
	var got any
	e.Schedule(1, func(p any) { got = p }, 42)
	e.RunAll()
	if got != 42 {
		t.Fatalf("payload = %v, want 42", got)
	}
}

// TestEventQueueProperty checks, for random schedules, that the queue pops
// events in exactly sorted (time, prio, seq) order.
func TestEventQueueProperty(t *testing.T) {
	type key struct {
		t    Time
		prio Priority
		seq  int
	}
	fn := func(times []uint16, prios []int8) bool {
		var q eventQueue
		var keys []key
		for i, tv := range times {
			var p Priority
			if i < len(prios) {
				p = Priority(prios[i])
			}
			q.Push(&event{time: Time(tv), prio: p, seq: uint64(i)})
			keys = append(keys, key{Time(tv), p, i})
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.t != b.t {
				return a.t < b.t
			}
			if a.prio != b.prio {
				return a.prio < b.prio
			}
			return a.seq < b.seq
		})
		for _, k := range keys {
			ev := q.Pop()
			if ev == nil || ev.time != k.t || ev.prio != k.prio || ev.seq != uint64(k.seq) {
				return false
			}
		}
		return q.Pop() == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEngineHandledCount(t *testing.T) {
	e := NewEngine()
	for i := Time(1); i <= 5; i++ {
		e.Schedule(i, func(any) {}, nil)
	}
	if n := e.RunAll(); n != 5 {
		t.Fatalf("RunAll handled %d, want 5", n)
	}
	if e.Handled() != 5 {
		t.Fatalf("Handled() = %d, want 5", e.Handled())
	}
}

// TestEngineSteadyStateZeroAllocs proves the free-list change: once the
// event free list and queue are warm, a schedule→dispatch cycle allocates
// nothing at all.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine()
	h := func(any) {}
	// Warm the free list and the queue's backing array.
	for i := 0; i < 1024; i++ {
		e.Schedule(Time(i), h, nil)
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 256; i++ {
			e.Schedule(Time(i%16)+1, h, nil)
		}
		e.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule→dispatch allocates %.1f objects/run, want 0", allocs)
	}
}

// TestEngineFreeListReuse checks recycled events are fully reinitialized:
// stale payloads or handlers must never leak into later events.
func TestEngineFreeListReuse(t *testing.T) {
	e := NewEngine()
	var got []any
	e.Schedule(1, func(p any) { got = append(got, p) }, "first")
	e.RunAll()
	e.Schedule(1, func(p any) { got = append(got, p) }, nil)
	e.Schedule(2, func(p any) { got = append(got, p) }, 7)
	e.RunAll()
	if len(got) != 3 || got[0] != "first" || got[1] != nil || got[2] != 7 {
		t.Fatalf("recycled events carried wrong payloads: %v", got)
	}
}

func BenchmarkEngineScheduleDispatch(b *testing.B) {
	e := NewEngine()
	h := func(any) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%64), h, nil)
		if e.Pending() > 1024 {
			e.RunAll()
		}
	}
	e.RunAll()
}

func BenchmarkEngineHotLoop(b *testing.B) {
	// Self-rescheduling event: the steady-state cost of one event.
	e := NewEngine()
	n := 0
	var h Handler
	h = func(any) {
		n++
		if n < b.N {
			e.Schedule(1, h, nil)
		}
	}
	e.Schedule(1, h, nil)
	b.ResetTimer()
	b.ReportAllocs()
	e.RunAll()
}
