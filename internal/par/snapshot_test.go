package par

// Kill-at-a-random-barrier tests: the determinism harness's randomized
// topologies are run with snapshots enabled, "crashed" at a seed-derived
// barrier, restored into a freshly built runner, and continued — and every
// signature must be bit-identical to the uninterrupted sequential
// reference, at 1/2/4/8 ranks, under all four sync modes, and across a
// mode switch between snapshot and restore. For the optimistic modes the
// barrier is also a commit proof: Run(barrier) must leave no speculative
// state behind (frontiers at the bound, held sends released), or the
// snapshot itself would be rejected or diverge.

import (
	"bytes"
	"errors"
	"testing"

	"sst/internal/sim"
)

func init() {
	sim.RegisterPayload("par.detToken", detToken{},
		func(e *sim.Encoder, v any) {
			tok := v.(detToken)
			e.U64(tok.id)
			e.I64(int64(tok.hops))
		},
		func(d *sim.Decoder) (any, error) {
			return detToken{id: d.U64(), hops: int(d.I64())}, d.Err()
		})
}

// SaveState makes detNode checkpointable; its pending sends are owned by
// the links (think-time sends are in-flight link deliveries), so the node
// itself carries only its arrival signature.
func (n *detNode) SaveState(enc *sim.Encoder) {
	enc.U64(n.count)
	enc.U64(n.sum)
	enc.Time(n.last)
}

func (n *detNode) LoadState(dec *sim.Decoder) error {
	n.count = dec.U64()
	n.sum = dec.U64()
	n.last = dec.Time()
	return dec.Err()
}

// detInjector owns one rank's token injections as checkpointable events:
// the payload is the injection's index into the topology description, so a
// restored injector re-creates exactly the pending ones.
type detInjector struct {
	name string
	set  *sim.EventSet
}

func (ij *detInjector) Name() string                     { return ij.name }
func (ij *detInjector) SaveState(enc *sim.Encoder)       { ij.set.Save(enc) }
func (ij *detInjector) LoadState(dec *sim.Decoder) error { return ij.set.Load(dec) }
func (ij *detInjector) PendingOwned() int                { return ij.set.PendingOwned() }

// buildDetTopoSnap is buildDetTopo with injections routed through per-rank
// detInjectors instead of raw closures (which no component owns and which a
// snapshot therefore rejects). Relative injection order per engine is
// unchanged, so results match the raw builder bit-for-bit.
func buildDetTopoSnap(t *testing.T, r *Runner, tp detTopo) []*detNode {
	t.Helper()
	nodes := buildDetNodes(t, r, tp)
	nranks := r.NumRanks()
	rankOf := func(i int) int { return i % nranks }
	for rank := 0; rank < nranks; rank++ {
		ij := &detInjector{name: "inject" + itoa(rank)}
		ij.set = sim.NewEventSet(r.Rank(rank).Engine(), ij.name, func(p any) {
			inj := tp.inject[p.(int)]
			nodes[inj.node].recv(detToken{id: inj.id, hops: inj.hops})
		})
		r.Rank(rank).Add(ij)
		for idx, inj := range tp.inject {
			if rankOf(inj.node) == rank {
				ij.set.ScheduleAt(inj.at, sim.PrioLink, idx)
			}
		}
	}
	return nodes
}

// detBarrier derives the seed's "random" crash barrier: arbitrary but
// reproducible, inside the busy phase of most topologies.
func detBarrier(seed int) sim.Time {
	return sim.Time(150+(seed*7919)%1100) * sim.Nanosecond
}

// runDetTopoKillRestore runs a topology to the barrier, snapshots, discards
// the runner, rebuilds, restores under restoreMode, and finishes the run.
// The event total comes from restored Metrics counters — it must equal the
// uninterrupted run's total.
func runDetTopoKillRestore(t *testing.T, tp detTopo, nranks int, snapMode, restoreMode SyncMode, barrier sim.Time) detSig {
	t.Helper()
	r1, err := NewRunner(nranks)
	if err != nil {
		t.Fatal(err)
	}
	r1.SetSyncMode(snapMode)
	r1.EnableSnapshots()
	buildDetTopoSnap(t, r1, tp)
	if _, err := r1.Run(barrier); err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if err := r1.SaveTo(&file); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	// r1 is dead now: the crash. Rebuild and restore.
	r2, err := NewRunner(nranks)
	if err != nil {
		t.Fatal(err)
	}
	r2.SetSyncMode(restoreMode)
	r2.EnableSnapshots()
	nodes := buildDetTopoSnap(t, r2, tp)
	if err := r2.LoadFrom(bytes.NewReader(file.Bytes())); err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if r2.Now() != barrier {
		t.Fatalf("restored base %v, want %v", r2.Now(), barrier)
	}
	if _, err := r2.RunAll(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, rm := range r2.Metrics().Ranks {
		total += rm.Events
	}
	sig := detSig{Total: total, Nodes: make([]nodeSig, len(nodes))}
	for i, nd := range nodes {
		sig.Nodes[i] = nodeSig{Count: nd.count, Sum: nd.sum, Last: nd.last}
	}
	return sig
}

// TestKillRestoreDeterminism is the headline crash-safety property: kill at
// a barrier, restore, continue — bit-identical to the uninterrupted
// sequential reference at every rank count under all four sync modes.
func TestKillRestoreDeterminism(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for s := 0; s < seeds; s++ {
		seed := 9000 + s
		tp := genDetTopo(int64(seed))
		ref := runDetTopo(t, tp, 1, SyncPairwise, 0)
		barrier := detBarrier(seed)
		for _, nranks := range detRankCounts {
			for _, mode := range allSyncModes {
				got := runDetTopoKillRestore(t, tp, nranks, mode, mode, barrier)
				label := "kill-restore seed " + itoa(seed) + " ranks " + itoa(nranks) + " sync " + mode.String()
				diffSig(t, label, got, ref)
			}
		}
	}
}

// TestKillRestoreCrossMode snapshots under one sync mode and restores under
// another: window boundaries — and, for the optimistic modes, rollback
// histories — differ, but the continuation must not. The speculative
// pairings prove a snapshot taken by an optimistic run carries nothing
// speculative, and that an optimistic run can adopt a conservative
// snapshot cold.
func TestKillRestoreCrossMode(t *testing.T) {
	for s := 0; s < 3; s++ {
		seed := 9100 + s
		tp := genDetTopo(int64(seed))
		ref := runDetTopo(t, tp, 1, SyncPairwise, 0)
		barrier := detBarrier(seed)
		for _, nranks := range []int{2, 4, 8} {
			g2p := runDetTopoKillRestore(t, tp, nranks, SyncGlobal, SyncPairwise, barrier)
			diffSig(t, "global→pairwise seed "+itoa(seed)+" ranks "+itoa(nranks), g2p, ref)
			p2g := runDetTopoKillRestore(t, tp, nranks, SyncPairwise, SyncGlobal, barrier)
			diffSig(t, "pairwise→global seed "+itoa(seed)+" ranks "+itoa(nranks), p2g, ref)
			s2p := runDetTopoKillRestore(t, tp, nranks, SyncSpeculative, SyncPairwise, barrier)
			diffSig(t, "speculative→pairwise seed "+itoa(seed)+" ranks "+itoa(nranks), s2p, ref)
			p2s := runDetTopoKillRestore(t, tp, nranks, SyncPairwise, SyncSpeculative, barrier)
			diffSig(t, "pairwise→speculative seed "+itoa(seed)+" ranks "+itoa(nranks), p2s, ref)
			a2g := runDetTopoKillRestore(t, tp, nranks, SyncAdaptive, SyncGlobal, barrier)
			diffSig(t, "adaptive→global seed "+itoa(seed)+" ranks "+itoa(nranks), a2g, ref)
		}
	}
}

// TestSnapshotBuilderNonIntrusive proves the snapshot-owned builder (event
// sets, link tracking) does not perturb results relative to the raw one.
func TestSnapshotBuilderNonIntrusive(t *testing.T) {
	tp := genDetTopo(9000)
	ref := runDetTopo(t, tp, 4, SyncPairwise, 0)
	r, err := NewRunner(4)
	if err != nil {
		t.Fatal(err)
	}
	r.EnableSnapshots()
	nodes := buildDetTopoSnap(t, r, tp)
	total, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	got := detSig{Total: total, Nodes: make([]nodeSig, len(nodes))}
	for i, nd := range nodes {
		got.Nodes[i] = nodeSig{Count: nd.count, Sum: nd.sum, Last: nd.last}
	}
	diffSig(t, "snapshot-enabled builder", got, ref)
}

// TestSnapshotRejectsMidRunState covers the quiescence preconditions: a
// runner that was interrupted mid-run refuses to snapshot.
func TestSnapshotRejectsInterrupted(t *testing.T) {
	tp := genDetTopo(9001)
	r, err := NewRunner(4)
	if err != nil {
		t.Fatal(err)
	}
	r.EnableSnapshots()
	buildDetTopoSnap(t, r, tp)
	// Interrupt from inside the simulation: deterministic, mid-window.
	r.Rank(1).Engine().ScheduleAt(200*sim.Nanosecond, sim.PrioLink, func(any) {
		r.Interrupt()
	}, nil)
	_, err = r.RunAll()
	if !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("err = %v, want sim.ErrInterrupted", err)
	}
	if err := r.Snapshot(sim.NewEncoder()); err == nil {
		t.Fatal("snapshot of an interrupted runner not rejected")
	}
}

// TestInterruptPairwiseMultiRank exercises Engine.Interrupt's cooperative
// stop under pairwise sync across several ranks: the interrupt lands
// mid-window, every rank parks, the run reports sim.ErrInterrupted, and a
// fresh run of the same topology is unaffected.
func TestInterruptPairwiseMultiRank(t *testing.T) {
	tp := genDetTopo(9002)
	ref := runDetTopo(t, tp, 1, SyncPairwise, 0)
	for _, nranks := range []int{2, 4, 8} {
		r, err := NewRunner(nranks)
		if err != nil {
			t.Fatal(err)
		}
		r.SetSyncMode(SyncPairwise)
		nodes := buildDetTopo(t, r, tp)
		r.Rank(nranks-1).Engine().ScheduleAt(300*sim.Nanosecond, sim.PrioLink, func(any) {
			r.Interrupt()
		}, nil)
		if _, err := r.RunAll(); !errors.Is(err, sim.ErrInterrupted) {
			t.Fatalf("ranks %d: err = %v, want sim.ErrInterrupted", nranks, err)
		}
		// The interrupted run stopped early: strictly fewer arrivals than
		// the full reference on at least one node (unless the reference
		// finished before the interrupt time, which these seeds do not).
		var refCount, gotCount uint64
		for i, nd := range nodes {
			refCount += ref.Nodes[i].Count
			gotCount += nd.count
		}
		if gotCount >= refCount {
			t.Fatalf("ranks %d: interrupt did not cut the run short (%d >= %d arrivals)", nranks, gotCount, refCount)
		}
		// A fresh runner over the same topology still matches the reference:
		// interruption poisons nothing beyond the interrupted runner.
		diffSig(t, "post-interrupt rerun ranks "+itoa(nranks),
			runDetTopo(t, tp, nranks, SyncPairwise, 0), ref)
	}
}
