package core

// Arena safety properties. The per-worker PointArena must be invisible in
// results — grids run with arenas are byte-identical to arena-free runs —
// and indestructible under the sweep failure menu: a point that panics or
// times out with the arena's storage still lent out leaves the arena
// Reset-safe for the next point, with no state aliased across points.

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"sst/internal/leakcheck"
	"sst/internal/sim"
)

// TestSweepArenaDeterminism is the headline arena property: the same
// studies, with and without SweepOptions.Arena, at one and many workers,
// under an active RetryPolicy, render byte-identical CSVs — and one pool
// serves consecutive sweeps, like the sweep service reuses it across jobs.
func TestSweepArenaDeterminism(t *testing.T) {
	leakcheck.Check(t)
	apps, techs, widths := []string{"stream", "gups"}, []string{"ddr3-1333"}, []int{1, 2}
	retry := RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, Seed: 7}

	cold, err := MemTechWidthSweep(apps, techs, widths, Small, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	coldCSV := csvOf(t, cold)

	pool := NewArenaPool()
	for _, workers := range []int{1, 4} {
		warm, err := MemTechWidthSweep(apps, techs, widths, Small,
			SweepOptions{Workers: workers, Arena: pool, Retry: retry})
		if err != nil {
			t.Fatal(err)
		}
		if got := csvOf(t, warm); !bytes.Equal(got, coldCSV) {
			t.Errorf("workers=%d: arena grid CSV differs from arena-free run\n got %s\nwant %s",
				workers, got, coldCSV)
		}
		for i := range warm.Points {
			w, c := *warm.Points[i].Result, *cold.Points[i].Result
			w.HostSeconds, c.HostSeconds = 0, 0
			if !reflect.DeepEqual(w, c) {
				t.Errorf("workers=%d: point %d diverged with arena\n got %+v\nwant %+v", workers, i, w, c)
			}
		}
	}
	if made, served := pool.Stats(); made < 1 || served <= made {
		t.Fatalf("pool stats made=%d served=%d, want reuse across the two sweeps", made, served)
	}

	// The net study exercises the RunNetPointCtx lend/harvest path.
	cfg := NetStudyConfig{Nodes: 8, Fractions: []float64{1, 0.5}, Steps: 2}
	netCold, err := NetDegradationStudy(cfg, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	netWarm, err := NetDegradationStudy(cfg, SweepOptions{Workers: 2, Arena: pool, Retry: retry})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := csvOf(t, netWarm), csvOf(t, netCold); !bytes.Equal(got, want) {
		t.Errorf("net study CSV differs with arena\n got %s\nwant %s", got, want)
	}
}

// arenaPointValue runs one synthetic design point the way RunNetPointCtx
// does — fresh engine, arena lent for the duration, harvested at the end
// — and returns a value derived purely from the events it dispatched.
// Any state leaking across points through the arena would change it.
func arenaPointValue(ctx context.Context, i int) uint64 {
	engine := sim.NewEngine()
	if a := arenaFrom(ctx); a != nil {
		a.Events.Lend(engine)
		defer a.Events.Harvest(engine)
	}
	want := uint64(3*i + 5)
	var n uint64
	var step func(any)
	step = func(any) {
		n++
		if n < want {
			engine.Schedule(sim.Nanosecond, step, nil)
		}
	}
	engine.Schedule(0, step, nil)
	engine.RunAll()
	return n
}

// TestSweepArenaSurvivesPanickingPoint: the first attempt of every point
// panics with the arena's storage still lent out (no Harvest runs — the
// worst case the move-semantics design allows). The retry must succeed
// on the same worker arena and every point's value must match a run with
// no arena at all.
func TestSweepArenaSurvivesPanickingPoint(t *testing.T) {
	leakcheck.Check(t)
	const n = 6
	runGrid := func(pool *ArenaPool, failures int) []uint64 {
		t.Helper()
		vals := make([]uint64, n)
		var mu sync.Mutex
		attempts := map[int]int{}
		opts := SweepOptions{
			Workers: 2, Arena: pool,
			Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, Seed: 7},
		}
		errs, err := runPointsDetailed(opts, n, func(ctx context.Context, i int) error {
			if pool != nil && arenaFrom(ctx) == nil {
				t.Error("sweep has an Arena pool but the point context carries none")
			}
			mu.Lock()
			attempts[i]++
			first := attempts[i] == 1
			mu.Unlock()
			if first && failures > 0 {
				// Lend, schedule work, then die without harvesting: the
				// arena stays empty until the pool resets it.
				engine := sim.NewEngine()
				if a := arenaFrom(ctx); a != nil {
					a.Events.Lend(engine)
				}
				engine.Schedule(0, func(any) {}, nil)
				panic(fmt.Sprintf("mid-point wobble on %d", i))
			}
			vals[i] = arenaPointValue(ctx, i)
			return nil
		})
		if err != nil {
			t.Fatalf("flaky arena sweep failed: %v", err)
		}
		for i, e := range errs {
			if e != nil {
				t.Fatalf("point %d: %v", i, e)
			}
		}
		return vals
	}
	want := runGrid(nil, 0) // no arena, no faults: the oracle
	got := runGrid(NewArenaPool(), 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("values diverged after panics on arena workers\n got %v\nwant %v", got, want)
	}
}

// TestSweepArenaSurvivesTimedOutPoint: same property for the timeout
// path — a point cut by PointTimeout keeps the lent storage, and the
// stretched-deadline retry on the same arena still produces the
// arena-free values.
func TestSweepArenaSurvivesTimedOutPoint(t *testing.T) {
	leakcheck.Check(t)
	const n = 4
	pool := NewArenaPool()
	vals := make([]uint64, n)
	var mu sync.Mutex
	attempts := map[int]int{}
	opts := SweepOptions{
		Workers: 1, Arena: pool, PointTimeout: time.Second,
		Retry: RetryPolicy{RetryTimeouts: true, TimeoutScale: 2, Seed: 7},
	}
	errs, err := runPointsDetailed(opts, n, func(ctx context.Context, i int) error {
		mu.Lock()
		attempts[i]++
		first := attempts[i] == 1
		mu.Unlock()
		if first {
			engine := sim.NewEngine()
			if a := arenaFrom(ctx); a != nil {
				a.Events.Lend(engine)
			}
			return fmt.Errorf("wedged with arena lent: %w", context.DeadlineExceeded)
		}
		vals[i] = arenaPointValue(ctx, i)
		return nil
	})
	if err != nil {
		t.Fatalf("timed-out arena sweep failed: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("point %d: %v", i, e)
		}
		if want := uint64(3*i + 5); vals[i] != want {
			t.Fatalf("point %d value %d, want %d", i, vals[i], want)
		}
	}
}

// TestArenaPoolReuse pins the pool mechanics the serve soak rests on:
// one pool hands the same arena back to successive sweeps instead of
// growing, and Put resets the trims.
func TestArenaPoolReuse(t *testing.T) {
	pool := NewArenaPool()
	a := pool.Get()
	if made, _ := pool.Stats(); made != 1 {
		t.Fatalf("made = %d, want 1", made)
	}
	pool.Put(a)
	b := pool.Get()
	if b != a {
		t.Fatal("pool created a new arena while one was free")
	}
	pool.Put(b)
	if made, served := pool.Stats(); made != 1 || served != 2 {
		t.Fatalf("stats made=%d served=%d, want 1 made 2 served", made, served)
	}
	pool.Put(nil) // must be a no-op, the nil-arena release path
	if made, _ := pool.Stats(); made != 1 {
		t.Fatal("Put(nil) changed the pool")
	}
}
