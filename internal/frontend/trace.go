package frontend

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace format: the magic header followed by one variable-length record per
// operation. Each record starts with a tag byte:
//
//	bits [2:0] class
//	bit  3     taken (branches)
//	bit  4     has memory address+size
//	bit  5     has registers
//
// followed (when flagged) by 8-byte little-endian address, 1-byte size, and
// 3 register bytes. PCs are not stored; replay regenerates synthetic PCs.
// The format trades compactness for simplicity — it is a simulation
// artifact, not an interchange format.
const traceMagic = "SSTTRC1\n"

const (
	tagClassMask = 0x07
	tagTaken     = 0x08
	tagHasMem    = 0x10
	tagHasRegs   = 0x20
)

// TraceWriter serializes a stream of Ops.
type TraceWriter struct {
	w     *bufio.Writer
	n     uint64
	wrote bool
}

// NewTraceWriter writes the header lazily on first record.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w)}
}

// Write appends one operation record.
func (t *TraceWriter) Write(op *Op) error {
	if !t.wrote {
		if _, err := t.w.WriteString(traceMagic); err != nil {
			return err
		}
		t.wrote = true
	}
	tag := byte(op.Class) & tagClassMask
	if op.Taken {
		tag |= tagTaken
	}
	hasMem := op.Class == ClassLoad || op.Class == ClassStore
	if hasMem {
		tag |= tagHasMem
	}
	hasRegs := op.Dst != 0 || op.Src1 != 0 || op.Src2 != 0
	if hasRegs {
		tag |= tagHasRegs
	}
	if err := t.w.WriteByte(tag); err != nil {
		return err
	}
	if hasMem {
		var buf [9]byte
		binary.LittleEndian.PutUint64(buf[:8], op.Addr)
		buf[8] = op.Size
		if _, err := t.w.Write(buf[:]); err != nil {
			return err
		}
	}
	if hasRegs {
		if _, err := t.w.Write([]byte{op.Dst, op.Src1, op.Src2}); err != nil {
			return err
		}
	}
	t.n++
	return nil
}

// N returns the number of records written.
func (t *TraceWriter) N() uint64 { return t.n }

// Flush drains buffered output; call it before closing the destination.
func (t *TraceWriter) Flush() error {
	if !t.wrote {
		if _, err := t.w.WriteString(traceMagic); err != nil {
			return err
		}
		t.wrote = true
	}
	return t.w.Flush()
}

// TraceStream replays a recorded trace as a Stream.
type TraceStream struct {
	r      *bufio.Reader
	err    error
	opened bool
	pc     uint64
}

// NewTraceStream reads records from r. Header validation happens on the
// first Next; Err reports malformed input.
func NewTraceStream(r io.Reader) *TraceStream {
	return &TraceStream{r: bufio.NewReader(r)}
}

// Err returns the first decode error (io.EOF is not an error).
func (t *TraceStream) Err() error { return t.err }

// Next implements Stream.
func (t *TraceStream) Next(op *Op) bool {
	if t.err != nil {
		return false
	}
	if !t.opened {
		hdr := make([]byte, len(traceMagic))
		if _, err := io.ReadFull(t.r, hdr); err != nil {
			t.err = fmt.Errorf("frontend: trace header: %w", err)
			return false
		}
		if string(hdr) != traceMagic {
			t.err = fmt.Errorf("frontend: bad trace magic %q", hdr)
			return false
		}
		t.opened = true
	}
	tag, err := t.r.ReadByte()
	if err == io.EOF {
		return false
	}
	if err != nil {
		t.err = err
		return false
	}
	cls := Class(tag & tagClassMask)
	if cls >= numClasses {
		t.err = fmt.Errorf("frontend: bad class %d in trace", cls)
		return false
	}
	t.pc += 4
	*op = Op{Class: cls, Taken: tag&tagTaken != 0, PC: t.pc}
	if tag&tagHasMem != 0 {
		var buf [9]byte
		if _, err := io.ReadFull(t.r, buf[:]); err != nil {
			t.err = fmt.Errorf("frontend: truncated trace record: %w", err)
			return false
		}
		op.Addr = binary.LittleEndian.Uint64(buf[:8])
		op.Size = buf[8]
	}
	if tag&tagHasRegs != 0 {
		var buf [3]byte
		if _, err := io.ReadFull(t.r, buf[:]); err != nil {
			t.err = fmt.Errorf("frontend: truncated trace record: %w", err)
			return false
		}
		op.Dst, op.Src1, op.Src2 = buf[0], buf[1], buf[2]
	}
	return true
}

// TeeStream passes an inner stream through while recording it, so a slow
// execution-driven run can be captured once and replayed cheaply.
type TeeStream struct {
	Inner Stream
	W     *TraceWriter
	err   error
}

// Err returns the first write error.
func (t *TeeStream) Err() error { return t.err }

// Next implements Stream.
func (t *TeeStream) Next(op *Op) bool {
	if !t.Inner.Next(op) {
		return false
	}
	if t.err == nil {
		t.err = t.W.Write(op)
	}
	return true
}
