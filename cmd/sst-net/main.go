// Command sst-net runs the network injection-bandwidth degradation study
// (the Fig. 9 experiment): application communication proxies on a simulated
// 3D torus at a series of injection-bandwidth operating points.
//
// Usage:
//
//	sst-net [-nodes 32] [-steps 6] [-fractions 1,0.5,0.25,0.125]
//	        [-format table|json|csv] [-j N] [-metrics-out m.json] [-trace-out t.json]
//
// The study's (proxy app, bandwidth fraction) cells are independent
// simulations; -j sets how many run concurrently (default: GOMAXPROCS).
// Tables are identical at any -j. -metrics-out writes both studies'
// per-point host timings as a JSON array; -trace-out writes the
// degradation study's host timeline as a Chrome trace. Ctrl-C drains the
// cells already running, prints whatever completed, and exits nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"sst/internal/core"
	"sst/internal/obs"
)

func main() {
	var (
		nodesFlag  = flag.Int("nodes", 32, "system size (torus nodes)")
		stepsFlag  = flag.Int("steps", 6, "application timesteps")
		fracFlag   = flag.String("fractions", "1,0.5,0.25,0.125", "injection bandwidth fractions")
		formatFlag = flag.String("format", "table", "output format: table, json or csv")
		csvFlag    = flag.Bool("csv", false, "deprecated: same as -format csv")
		jFlag      = flag.Int("j", 0, "concurrent sweep workers (0 = GOMAXPROCS)")
		metricsOut = flag.String("metrics-out", "", "write per-point sweep metrics JSON to this file")
		traceOut   = flag.String("trace-out", "", "write a host-timeline Chrome trace of the degradation sweep to this file")
	)
	flag.Parse()
	format, err := core.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sst-net:", err)
		os.Exit(2)
	}
	if *csvFlag {
		format = core.FormatCSV
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(*nodesFlag, *stepsFlag, *fracFlag, format, *jFlag, ctx, *metricsOut, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "sst-net:", err)
		os.Exit(1)
	}
}

func run(nodes, steps int, fracFlag string, format core.Format, workers int, ctx context.Context, metricsOut, traceOut string) error {
	cfg := core.NetStudyConfig{Nodes: nodes, Steps: steps}
	for _, f := range strings.Split(fracFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 || v > 1 {
			return fmt.Errorf("bad fraction %q", f)
		}
		cfg.Fractions = append(cfg.Fractions, v)
	}
	// Each study is one sweep, so each gets its own collector (point
	// indices are per-sweep).
	opts := core.SweepOptions{Workers: workers, Context: ctx}
	popts := opts
	var dcol, pcol *obs.SweepCollector
	if metricsOut != "" || traceOut != "" {
		dcol, pcol = &obs.SweepCollector{}, &obs.SweepCollector{}
		opts.Metrics, popts.Metrics = dcol, pcol
	}
	// Both studies render whatever cells completed even when some failed
	// or the sweep was interrupted; the error still propagates so the
	// exit code reflects the incomplete run.
	deg, derr := core.NetDegradationStudy(cfg, opts)
	pow, perr := core.NetPowerStudy(cfg, popts)
	if err := core.WriteResults(os.Stdout, format, deg, pow); err != nil {
		return err
	}
	if metricsOut != "" {
		if err := writeFile(metricsOut, func(w io.Writer) error {
			return core.WriteResults(w, core.FormatJSON, dcol, pcol)
		}); err != nil {
			return err
		}
	}
	if traceOut != "" {
		if err := writeFile(traceOut, dcol.WriteChromeJSON); err != nil {
			return err
		}
	}
	if derr != nil {
		return fmt.Errorf("study incomplete (tables above show completed cells): %w", derr)
	}
	return perr
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
