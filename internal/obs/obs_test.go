package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sst/internal/cache"
	"sst/internal/core"
	"sst/internal/par"
	"sst/internal/sim"
)

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Event(sim.Time(i), fmt.Sprintf("e%d", i), time.Duration(i))
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// The ring keeps the tail of the run, oldest first.
	for i, s := range spans {
		if want := sim.Time(6 + i); s.At != want {
			t.Fatalf("span %d at %v, want %v (spans: %+v)", i, s.At, want, spans)
		}
	}
}

func TestTracerDefaultCap(t *testing.T) {
	tr := NewTracer(0)
	if got := cap(tr.spans); got != DefaultTraceCap {
		t.Fatalf("default capacity = %d, want %d", got, DefaultTraceCap)
	}
}

func TestTracerChromeJSONParses(t *testing.T) {
	tr := NewTracer(16)
	tr.Event(0, "", time.Microsecond)
	tr.Event(sim.Nanosecond, "cpu.0", 2*time.Microsecond)
	tr.Event(2*sim.Nanosecond, "cpu.0", time.Microsecond)
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace not valid JSON: %v\n%s", err, buf.String())
	}
	var xs, ms int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			xs++
			names[ev.Name] = true
			if ev.Dur < 0 {
				t.Errorf("negative dur: %+v", ev)
			}
		case "M":
			ms++
		}
	}
	if xs != 3 {
		t.Fatalf("%d complete events, want 3", xs)
	}
	// Two labels ("engine" for the blank one, "cpu.0"): two metadata rows.
	if ms != 2 {
		t.Fatalf("%d metadata events, want 2", ms)
	}
	if !names["engine"] || !names["cpu.0"] {
		t.Fatalf("names = %v", names)
	}
}

func TestTracerCSVAndSummary(t *testing.T) {
	tr := NewTracer(16)
	tr.Event(sim.Nanosecond, "mem", time.Microsecond)
	tr.Event(2*sim.Nanosecond, "mem", time.Microsecond)
	tr.Event(3*sim.Nanosecond, "", time.Microsecond)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 || lines[0] != "time_ps,label,host_ns" {
		t.Fatalf("csv = %q", buf.String())
	}
	if lines[1] != "1000,mem,1000" {
		t.Fatalf("row = %q", lines[1])
	}
	sum := tr.Summary()
	if sum.NumRows() != 2 {
		t.Fatalf("summary rows = %d, want 2 (mem + engine)", sum.NumRows())
	}
	if s := sum.String(); !strings.Contains(s, "mem") || !strings.Contains(s, "engine") {
		t.Fatalf("summary missing labels:\n%s", s)
	}
}

// sizedPayload implements sim.Sized.
type sizedPayload struct{ n int }

func (p sizedPayload) PayloadBytes() int { return p.n }

func TestInstrumentLinkCounts(t *testing.T) {
	e := sim.NewEngine()
	a, b := sim.Connect(e, "l0", sim.Nanosecond)
	b.SetHandler(func(any) {})
	st := InstrumentLink(a.Link())
	a.Send(sizedPayload{100})
	a.Send("unsized")
	e.RunAll()
	if st.Name != "l0" || st.Msgs != 2 || st.Bytes != 100 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestInstrumentLinkComposesWithFaults: counters wrap an existing (fault)
// interceptor — drops by the inner interceptor are tallied, not counted as
// traffic, and the message flow keeps working.
func TestInstrumentLinkComposesWithFaults(t *testing.T) {
	e := sim.NewEngine()
	a, b := sim.Connect(e, "l1", sim.Nanosecond)
	var delivered int
	b.SetHandler(func(any) { delivered++ })
	// A fault injector that drops every second message.
	n := 0
	a.Link().SetIntercept(func(from *sim.Port, delay sim.Time, payload any) (sim.Time, any, bool) {
		n++
		return delay, payload, n%2 == 1
	})
	st := InstrumentLink(a.Link())
	for i := 0; i < 6; i++ {
		a.Send(sizedPayload{10})
	}
	e.RunAll()
	if delivered != 3 {
		t.Fatalf("delivered %d, want 3", delivered)
	}
	if st.Msgs != 3 || st.Dropped != 3 || st.Bytes != 30 {
		t.Fatalf("stats = %+v, want 3 msgs / 3 dropped / 30 bytes", st)
	}
}

func TestCollectorReport(t *testing.T) {
	e := sim.NewEngine()
	// Pre-existing events must not be charged to this run.
	e.Schedule(0, func(any) {}, nil)
	e.RunAll()
	a, b := sim.Connect(e, "lk", sim.Nanosecond)
	b.SetHandler(func(any) {})
	col := NewCollector()
	col.Attach(e, a.Link())
	a.Send(sizedPayload{8})
	e.Schedule(sim.Microsecond, func(any) {}, nil)
	e.RunAll()
	rep := col.Report()
	if rep.Engine.Events != 2 {
		t.Fatalf("events = %d, want 2 (delivery + scheduled)", rep.Engine.Events)
	}
	if rep.Engine.PeakQueue < 1 {
		t.Fatalf("peak queue = %d", rep.Engine.PeakQueue)
	}
	if rep.Engine.SimSeconds <= 0 || rep.Engine.HostSeconds <= 0 || rep.Engine.EventsPerSec <= 0 {
		t.Fatalf("rates not populated: %+v", rep.Engine)
	}
	if len(rep.Links) != 1 || rep.Links[0].Msgs != 1 || rep.Links[0].Bytes != 8 {
		t.Fatalf("links = %+v", rep.Links)
	}
	// The report renders and serializes in all three formats.
	if rep.Table().NumRows() == 0 {
		t.Fatal("empty table")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round RunReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if round.Engine.Events != rep.Engine.Events || len(round.Links) != 1 {
		t.Fatalf("round-trip lost data: %+v", round)
	}
	buf.Reset()
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "link.lk.msgs") {
		t.Fatalf("csv missing link rows:\n%s", buf.String())
	}
}

func TestCollectorWithRunner(t *testing.T) {
	r, err := par.NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		eng := r.Rank(i).Engine()
		eng.Schedule(sim.Nanosecond, func(any) {}, nil)
	}
	col := NewCollector()
	col.Attach(r.Rank(0).Engine())
	col.AttachRunner(r)
	if _, err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	rep := col.Report()
	if rep.Par == nil {
		t.Fatal("runner metrics missing")
	}
	if len(rep.Par.Ranks) != 2 || rep.Par.Windows == 0 {
		t.Fatalf("par metrics = %+v", rep.Par)
	}
	if rep.Par.Mode != "pairwise" {
		t.Fatalf("par mode = %q, want the pairwise default", rep.Par.Mode)
	}
	tab := rep.Table()
	var buf2 strings.Builder
	if err := tab.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"par.mode", "par.fast_forwards", "par.rollbacks",
		"par.replayed_events", "par.fallbacks", "par.promotions",
		"par.rank0.skipped_windows", "par.rank0.rollbacks", "par.rank1.lookahead_ps"} {
		if !strings.Contains(buf2.String(), row) {
			t.Fatalf("report table missing %q:\n%s", row, buf2.String())
		}
	}
	var total uint64
	for _, rk := range rep.Par.Ranks {
		total += rk.Events
	}
	if total != 2 {
		t.Fatalf("rank events total %d, want 2", total)
	}
}

func TestSweepCollectorOrderAndTrace(t *testing.T) {
	col := &SweepCollector{}
	base := time.Now()
	// Out-of-order completion, as a real pool produces.
	col.PointDone(core.PointReport{Index: 2, Worker: 1, Start: base.Add(time.Millisecond), Wall: time.Millisecond})
	col.PointDone(core.PointReport{Index: 0, Worker: 0, Start: base, Wall: 2 * time.Millisecond})
	col.PointDone(core.PointReport{Index: 1, Worker: 1, Start: base, Wall: time.Millisecond,
		Err: fmt.Errorf("boom\ndetail")})
	pts := col.Points()
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("points not sorted: %+v", pts)
		}
	}
	tab := col.Table()
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// Multi-line errors are truncated to their first line in the table.
	if s := tab.String(); !strings.Contains(s, "boom") || strings.Contains(s, "detail") {
		t.Fatalf("error cell wrong:\n%s", s)
	}
	var buf bytes.Buffer
	if err := col.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("sweep trace not valid JSON: %v", err)
	}
	var failed bool
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		tids[ev.Tid] = true
		if strings.Contains(ev.Name, "(failed)") {
			failed = true
		}
	}
	if len(tids) != 2 {
		t.Fatalf("worker rows = %d, want 2", len(tids))
	}
	if !failed {
		t.Fatal("failed point not flagged in trace")
	}
	buf.Reset()
	if err := col.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("sweep metrics JSON invalid: %v", err)
	}
}

// TestRunReportCacheShadowZipf drives a Zipf-skewed repeated-grid access
// stream through a sweep result cache carrying two shadow-policy sensors,
// then requires the RunReport JSON to report stats for the live policy AND
// both shadows — the observable contract the -cache-shadow CLI flag rests
// on.
func TestRunReportCacheShadowZipf(t *testing.T) {
	c, err := cache.New(cache.Options{
		Capacity: 32,
		Policy:   cache.LRU,
		Shadows:  []cache.PolicyType{cache.LFU, cache.TinyLFU},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A Zipf-skewed repeated grid: 256 distinct points, heavily reused.
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 1, 255)
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("grid-point-%d", zipf.Uint64())
		if _, ok := c.Get(key); !ok {
			if err := c.Put(key, key, 16); err != nil {
				t.Fatal(err)
			}
		}
	}

	col := NewCollector()
	col.Attach(nil)
	col.AttachCache(c)
	rep := col.Report()
	if rep.Cache == nil {
		t.Fatal("report has no cache stats")
	}
	if rep.Cache.Policy != "lru" || rep.Cache.Hits == 0 || rep.Cache.HitRate <= 0 {
		t.Fatalf("cache stats = %+v", rep.Cache)
	}
	if len(rep.Cache.Shadows) != 2 {
		t.Fatalf("shadow stats for %d policies, want 2", len(rep.Cache.Shadows))
	}

	// The JSON rendering carries every policy by name.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cache struct {
			Policy  string  `json:"policy"`
			HitRate float64 `json:"hit_rate"`
			Shadows []struct {
				Policy  string  `json:"policy"`
				Hits    int64   `json:"hits"`
				HitRate float64 `json:"hit_rate"`
			} `json:"shadows"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	if doc.Cache.Policy != "lru" {
		t.Fatalf("JSON cache policy = %q", doc.Cache.Policy)
	}
	seen := map[string]bool{}
	for _, s := range doc.Cache.Shadows {
		seen[s.Policy] = true
		if s.Hits == 0 || s.HitRate <= 0 {
			t.Errorf("shadow %s reported no hits on a Zipf stream: %+v", s.Policy, s)
		}
	}
	if !seen["lfu"] || !seen["tinylfu"] {
		t.Fatalf("JSON shadows missing a policy: %v", seen)
	}

	// And the table rendering exposes the same rows for the CSV path.
	var csv bytes.Buffer
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cache.hit_rate", "cache.shadow.lfu.hit_rate", "cache.shadow.tinylfu.hit_rate"} {
		if !strings.Contains(csv.String(), want) {
			t.Errorf("csv missing %s:\n%s", want, csv.String())
		}
	}
}

// TestTracerDropped: ring overwrites are counted, never silently
// swallowed — the tracer, its summary title and an attached collector's
// report all say how many spans the cap let go.
func TestTracerDropped(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Event(sim.Time(i), "x", time.Duration(i))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	if got := tr.Total() - tr.Dropped(); got != uint64(len(tr.Spans())) {
		t.Fatalf("Total-Dropped = %d, retained = %d", got, len(tr.Spans()))
	}
	if s := tr.Summary().String(); !strings.Contains(s, "6 oldest dropped") {
		t.Fatalf("summary does not flag the drop:\n%s", s)
	}

	col := NewCollector()
	col.Attach(nil)
	col.AttachTracer(tr)
	rep := col.Report()
	if rep.Trace == nil || rep.Trace.Spans != 10 || rep.Trace.Retained != 4 || rep.Trace.Dropped != 6 {
		t.Fatalf("report trace metrics = %+v", rep.Trace)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"trace.spans", "trace.retained", "trace.dropped"} {
		if !strings.Contains(buf.String(), row) {
			t.Fatalf("report table missing %q:\n%s", row, buf.String())
		}
	}
}

// TestTracerNoDropsWithinCap: a trace that fits its ring reports zero
// drops (the fix must not spook complete traces).
func TestTracerNoDropsWithinCap(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 16; i++ {
		tr.Event(sim.Time(i), "x", 0)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
	if s := tr.Summary().String(); strings.Contains(s, "dropped") {
		t.Fatalf("summary flags drops on a complete trace:\n%s", s)
	}
}

// TestSweepCollectorCap: the per-point report ring is hard-capped — the
// most recent reports survive, evictions are counted, and the table
// title says the view is a tail.
func TestSweepCollectorCap(t *testing.T) {
	col := &SweepCollector{Cap: 3}
	for i := 0; i < 8; i++ {
		col.PointDone(core.PointReport{Index: i, Wall: time.Millisecond})
	}
	if col.Dropped() != 5 {
		t.Fatalf("Dropped = %d, want 5", col.Dropped())
	}
	pts := col.Points()
	if len(pts) != 3 {
		t.Fatalf("retained %d reports, want 3", len(pts))
	}
	for i, p := range pts {
		if want := 5 + i; p.Index != want {
			t.Fatalf("report %d has index %d, want %d (most recent retained)", i, p.Index, want)
		}
	}
	if s := col.Table().String(); !strings.Contains(s, "5 oldest dropped") {
		t.Fatalf("table does not flag the drop:\n%s", s)
	}
}

// TestSweepCollectorDefaultCap: the zero value is still usable and gets
// the documented default capacity.
func TestSweepCollectorDefaultCap(t *testing.T) {
	col := &SweepCollector{}
	col.PointDone(core.PointReport{Index: 0})
	if col.Dropped() != 0 || len(col.Points()) != 1 {
		t.Fatalf("zero-value collector misbehaves: dropped=%d points=%d",
			col.Dropped(), len(col.Points()))
	}
}
