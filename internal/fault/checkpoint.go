package fault

import (
	"fmt"
	"math"

	"sst/internal/sim"
)

// maxSchedulePs caps a single scheduled delay. Exponential failure draws
// have an unbounded tail; a draw beyond ~106 simulated days (half the
// uint64-picosecond range) cannot fire inside any realistic study horizon,
// so clamping it keeps the Time arithmetic from wrapping without visibly
// distorting the distribution.
const maxSchedulePs = float64(sim.TimeInfinity / 2)

// secToTime converts seconds to simulated time with overflow clamping.
func secToTime(s float64) sim.Time {
	ps := s * 1e12
	if math.IsNaN(ps) || ps < 0 {
		return 0
	}
	if ps >= maxSchedulePs {
		return sim.TimeInfinity / 2
	}
	return sim.Time(ps)
}

// timeToSec converts simulated time to seconds.
func timeToSec(t sim.Time) float64 { return float64(t) / 1e12 }

// FailureProcess kills a component at exponentially distributed intervals,
// modelling a machine with a given MTBF. Its randomness comes from the
// stream named "mtbf:"+target name, so adding other injectors to the same
// simulation does not perturb the failure times.
type FailureProcess struct {
	eng     *sim.Engine
	rng     *sim.RNG
	mtbfS   float64
	target  Killable
	record  bool
	trace   Trace
	kills   uint64
	stopped bool
}

// NewFailureProcess arms exponential failures with mean mtbfS seconds
// against target, scheduling on eng. With record set, each kill is logged
// to the process's Trace.
func NewFailureProcess(eng *sim.Engine, target Killable, seed uint64, mtbfS float64, record bool) (*FailureProcess, error) {
	if math.IsNaN(mtbfS) || mtbfS <= 0 {
		return nil, fmt.Errorf("fault: MTBF %v must be positive seconds", mtbfS)
	}
	f := &FailureProcess{
		eng:    eng,
		rng:    NewStream(seed, "mtbf:"+target.Name()),
		mtbfS:  mtbfS,
		target: target,
		record: record,
	}
	f.arm()
	return f, nil
}

// arm schedules the next failure.
func (f *FailureProcess) arm() {
	f.eng.Schedule(secToTime(f.rng.Exp(f.mtbfS)), func(any) {
		if f.stopped {
			return
		}
		f.kills++
		if f.record {
			f.trace = append(f.trace, Event{
				At: f.eng.Now(), Kind: Kill, Target: f.target.Name(), Seq: f.kills,
			})
		}
		f.target.Kill()
		f.arm()
	}, nil)
}

// Stop disarms the process; already-scheduled failures become no-ops.
func (f *FailureProcess) Stop() { f.stopped = true }

// Kills returns how many failures have fired.
func (f *FailureProcess) Kills() uint64 { return f.kills }

// Trace returns the kill log (nil unless record was requested).
func (f *FailureProcess) FaultTrace() Trace { return f.trace }

// CheckpointModel describes an application doing coordinated
// checkpoint/restart on a failing machine: W seconds of useful work, split
// into segments of a chosen interval, each followed by a checkpoint costing
// C seconds; a failure loses the current segment and costs R seconds of
// restart before the segment is retried. All durations are in seconds of
// simulated wallclock.
type CheckpointModel struct {
	// WorkS is the total useful work W.
	WorkS float64
	// CheckpointS is the cost C of writing one checkpoint.
	CheckpointS float64
	// RestartS is the cost R of rebooting and loading the last checkpoint.
	RestartS float64
	// MTBFS is the machine's mean time between failures M.
	MTBFS float64
}

// Validate checks the model parameters.
func (m CheckpointModel) Validate() error {
	check := func(name string, v float64, strict bool) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || (strict && v == 0) {
			return fmt.Errorf("fault: CheckpointModel.%s = %v invalid", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name   string
		v      float64
		strict bool
	}{
		{"WorkS", m.WorkS, true},
		{"CheckpointS", m.CheckpointS, false},
		{"RestartS", m.RestartS, false},
		{"MTBFS", m.MTBFS, true},
	} {
		if err := check(c.name, c.v, c.strict); err != nil {
			return err
		}
	}
	return nil
}

// RunStats summarizes one simulated run.
type RunStats struct {
	// MakespanS is total elapsed time to finish all work, seconds.
	MakespanS float64
	// Failures is the number of machine failures during the run.
	Failures int
	// Checkpoints is the number of checkpoints committed.
	Checkpoints int
	// LostWorkS is time thrown away to failures (partial segments,
	// partial checkpoint writes and interrupted restarts), seconds.
	LostWorkS float64
	// Efficiency is WorkS / MakespanS.
	Efficiency float64
}

// maxSimFailures aborts a run whose machine fails faster than it can ever
// commit a segment (MTBF ≪ interval + C): simulated time would advance but
// work would not, forever.
const maxSimFailures = 200_000

// ckptWorker is the simulated application. It is Killable, so the same
// component works under FailureProcess here and under KillAt in directed
// tests.
type ckptWorker struct {
	eng       *sim.Engine
	m         CheckpointModel
	intervalS float64
	epoch     uint64 // bumped on every kill; cancels in-flight completions
	doneS     float64
	segStart  sim.Time
	stats     RunStats
	err       error
}

func (w *ckptWorker) Name() string { return "ckpt-worker" }

// startSegment begins the next work segment (or stops the engine when all
// work is committed). The engine has no event cancellation, so completions
// carry the epoch at which they were scheduled and evaporate if a kill has
// bumped it since.
func (w *ckptWorker) startSegment() {
	remaining := w.m.WorkS - w.doneS
	if remaining <= 0 {
		w.eng.Stop()
		return
	}
	seg := math.Min(w.intervalS, remaining)
	cost := seg
	ckpt := remaining > w.intervalS // the final segment commits by finishing
	if ckpt {
		cost += w.m.CheckpointS
	}
	epoch := w.epoch
	w.segStart = w.eng.Now()
	w.eng.Schedule(secToTime(cost), func(any) {
		if epoch != w.epoch {
			return // a failure rolled this segment back
		}
		w.doneS += seg
		if ckpt {
			w.stats.Checkpoints++
		}
		w.startSegment()
	}, nil)
}

// Kill loses the in-flight segment (and any partially written checkpoint or
// in-progress restart) and schedules a restart.
func (w *ckptWorker) Kill() {
	w.epoch++
	w.stats.Failures++
	if w.stats.Failures > maxSimFailures {
		w.err = fmt.Errorf("fault: no forward progress after %d failures (MTBF %vs vs segment %vs + checkpoint %vs)",
			w.stats.Failures-1, w.m.MTBFS, w.intervalS, w.m.CheckpointS)
		w.eng.Stop()
		return
	}
	now := w.eng.Now()
	w.stats.LostWorkS += timeToSec(now - w.segStart)
	epoch := w.epoch
	w.segStart = now // a failure during restart loses the restart time too
	w.eng.Schedule(secToTime(w.m.RestartS), func(any) {
		if epoch != w.epoch {
			return
		}
		w.startSegment()
	}, nil)
}

// Simulate runs the model once with the given checkpoint interval and
// fault seed. Same seed, same parameters: identical RunStats, always.
func (m CheckpointModel) Simulate(seed uint64, intervalS float64) (RunStats, error) {
	if err := m.Validate(); err != nil {
		return RunStats{}, err
	}
	if math.IsNaN(intervalS) || intervalS <= 0 {
		return RunStats{}, fmt.Errorf("fault: checkpoint interval %v must be positive seconds", intervalS)
	}
	eng := sim.NewEngine()
	w := &ckptWorker{eng: eng, m: m, intervalS: intervalS}
	w.startSegment()
	fp, err := NewFailureProcess(eng, w, seed, m.MTBFS, false)
	if err != nil {
		return RunStats{}, err
	}
	eng.RunAll()
	fp.Stop()
	w.stats.MakespanS = timeToSec(eng.Now())
	if w.stats.MakespanS > 0 {
		w.stats.Efficiency = w.doneS / w.stats.MakespanS
	}
	return w.stats, w.err
}

// YoungInterval is Young's first-order optimal checkpoint interval
// τ = sqrt(2·C·M) (work between checkpoints, excluding the checkpoint).
func YoungInterval(checkpointS, mtbfS float64) float64 {
	return math.Sqrt(2 * checkpointS * mtbfS)
}

// DalyInterval is Daly's higher-order refinement of Young's formula. For
// C ≥ 2M the machine fails faster than it can checkpoint and the optimum
// degenerates to τ = M.
func DalyInterval(checkpointS, mtbfS float64) float64 {
	if checkpointS >= 2*mtbfS {
		return mtbfS
	}
	x := checkpointS / (2 * mtbfS)
	return math.Sqrt(2*checkpointS*mtbfS)*(1+math.Sqrt(x)/3+x/9) - checkpointS
}

// DalyMakespan is Daly's closed-form expected makespan for work W with
// checkpoint interval τ: M·e^{R/M}·(e^{(τ+C)/M}−1)·W/τ. It is the analytic
// oracle the simulated resilience study is cross-checked against.
func DalyMakespan(workS, checkpointS, restartS, mtbfS, intervalS float64) float64 {
	return mtbfS * math.Exp(restartS/mtbfS) *
		math.Expm1((intervalS+checkpointS)/mtbfS) * workS / intervalS
}
