package core

import (
	"context"
	"strings"
	"testing"

	"sst/internal/config"
)

func resilienceTestConfig() ResilienceConfig {
	return ResilienceConfig{
		MTBFHours:   []float64{1, 4},
		CheckpointS: 60,
		RestartS:    120,
		WorkHours:   3,
		Trials:      5,
		Seed:        2024,
	}
}

// TestResilienceStudyMatchesYoung pins the acceptance criterion: the
// simulated sweep's best checkpoint interval must land within a factor of
// two of the Young closed form (the auto grid's spacing is ~1.4x, so
// agreement means the empirical optimum sits in the theory's bracket), and
// the simulated best makespan must be in the same range as Daly's expected
// makespan.
func TestResilienceStudyMatchesYoung(t *testing.T) {
	res, err := ResilienceStudy(resilienceTestConfig(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.RatioToYoung < 0.5 || row.RatioToYoung > 2.0 {
			t.Errorf("mtbf=%gh: best interval %.0fs vs Young %.0fs (ratio %.2f, want within 2x)",
				row.MTBFHours, row.BestIntervalS, row.YoungS, row.RatioToYoung)
		}
		if ratio := row.BestMakespanS / row.DalyMakespanS; ratio < 0.7 || ratio > 1.3 {
			t.Errorf("mtbf=%gh: best makespan %.0fs vs Daly oracle %.0fs (ratio %.2f)",
				row.MTBFHours, row.BestMakespanS, row.DalyMakespanS, ratio)
		}
		if row.Efficiency <= 0 || row.Efficiency > 1 {
			t.Errorf("mtbf=%gh: efficiency %v out of (0, 1]", row.MTBFHours, row.Efficiency)
		}
	}
	// Longer MTBF must never make the job slower.
	if res.Rows[1].BestMakespanS > res.Rows[0].BestMakespanS {
		t.Errorf("makespan grew with MTBF: %v vs %v",
			res.Rows[1].BestMakespanS, res.Rows[0].BestMakespanS)
	}
}

// TestResilienceStudyWorkerDeterminism verifies the study renders the same
// table byte for byte at any sweep worker count: trial seeds are derived
// from grid indices, never from scheduling.
func TestResilienceStudyWorkerDeterminism(t *testing.T) {
	seq, err := ResilienceStudy(resilienceTestConfig(), SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		conc, err := ResilienceStudy(resilienceTestConfig(), SweepOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := conc.Table().String(), seq.Table().String(); got != want {
			t.Errorf("workers=%d: table differs from sequential run\n got:\n%s\nwant:\n%s",
				workers, got, want)
		}
	}
}

func TestResilienceStudyValidation(t *testing.T) {
	if _, err := ResilienceStudy(ResilienceConfig{}, SweepOptions{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := resilienceTestConfig()
	bad.MTBFHours = []float64{0}
	if _, err := ResilienceStudy(bad, SweepOptions{}); err == nil {
		t.Error("zero MTBF accepted")
	}
	bad = resilienceTestConfig()
	bad.WorkHours = -1
	if _, err := ResilienceStudy(bad, SweepOptions{}); err == nil {
		t.Error("negative work accepted")
	}
}

// TestSweepSurvivesPanickingPoint pins the self-robustness acceptance
// criterion: a design point whose model panics yields a per-point error
// naming the point, and every other point still completes with results.
func TestSweepSurvivesPanickingPoint(t *testing.T) {
	good := SweepMachine("stream", "ddr3-1333", 1, Small)
	// A nil config makes BuildNode dereference it: a genuine panic inside
	// the point, not a returned error.
	out, err := RunMachines([]*config.MachineConfig{good, nil, good}, SweepOptions{Workers: 2})
	if err == nil {
		t.Fatal("panicking point reported no error")
	}
	if !strings.Contains(err.Error(), "point 1") || !strings.Contains(err.Error(), "panic") {
		t.Errorf("error does not attribute the panic to point 1: %v", err)
	}
	if len(out) != 3 || out[0] == nil || out[2] == nil {
		t.Fatalf("surviving points lost their results: %v", out)
	}
	if out[1] != nil {
		t.Error("panicked point fabricated a result")
	}
}

// TestSweepGridSurvivesFailedPoint checks the DSE grid analogue: failed
// points carry Err, the rest of the grid renders.
func TestSweepGridSurvivesFailedPoint(t *testing.T) {
	apps := []string{"stream", "quantum"} // "quantum" is not a workload
	techs := []string{"ddr3-1333"}
	widths := []int{1}
	g, err := MemTechWidthSweep(apps, techs, widths, Small, SweepOptions{Workers: 2})
	if err == nil {
		t.Fatal("unknown workload reported no error")
	}
	if g == nil {
		t.Fatal("partial grid discarded on error")
	}
	failed := g.Failed()
	if len(failed) != 1 || failed[0].App != "quantum" {
		t.Fatalf("Failed() = %+v, want the quantum point", failed)
	}
	p := g.Find("stream", "ddr3-1333", 1)
	if p == nil || p.Result == nil || p.Err != nil {
		t.Fatal("healthy point lost its result")
	}
	// Table renderers must skip the dead cell, not crash on it.
	tab := Fig10Table(g, apps, techs, widths, "ddr3-1333")
	if tab.NumRows() != 1 {
		t.Errorf("Fig10 rows = %d, want 1 (dead cell skipped)", tab.NumRows())
	}
}

// TestSweepContextCancellation: with a cancelled sweep context, not-yet-
// started points are skipped with per-point errors instead of running.
func TestSweepContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := runPoints(SweepOptions{Context: ctx, Workers: 1}, 4, func(i int) error {
		ran++
		return nil
	})
	if err == nil {
		t.Fatal("cancelled sweep reported no error")
	}
	if ran != 0 {
		t.Errorf("%d points ran under a cancelled context", ran)
	}
	for _, want := range []string{"point 0 skipped", "point 3 skipped", "context canceled"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
	// A fresh options value is unaffected by the cancelled sweep.
	if err := runPoints(SweepOptions{}, 2, func(int) error { return nil }); err != nil {
		t.Fatalf("independent sweep blocked by another sweep's context: %v", err)
	}
}
