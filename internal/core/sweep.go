package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sst/internal/cache"
	"sst/internal/config"
	"sst/internal/iofault"
	"sst/internal/sim"
)

// Sweep-level parallelism. Every study in this package is a grid of fully
// independent design points: each point builds its own sim.Engine, its own
// component tree and its own stats.Registry, so points share no mutable
// state and may run on separate goroutines. runPoints fans a sweep's points
// across a bounded worker pool and each worker writes its result back by
// point index, which keeps result ordering — and therefore every rendered
// Fig. 10/11/12 table — bit-identical to a sequential sweep regardless of
// worker count or goroutine scheduling. (The engines themselves stay
// single-threaded; only whole design points are concurrent.)
//
// All knobs travel in a SweepOptions value passed to each study, so two
// sweeps with different worker counts, contexts or metrics sinks can run
// concurrently in one process without stepping on shared state.

// SweepOptions configures one sweep invocation. The zero value is a valid
// default: GOMAXPROCS workers, background context, no metrics.
type SweepOptions struct {
	// Workers is the worker-goroutine count for independent design points;
	// <= 0 means GOMAXPROCS.
	Workers int

	// Context, when non-nil, is consulted between design points.
	// Cancelling it does not abort points already running — each point is a
	// self-contained simulation that finishes and keeps its result — but
	// every point not yet started is skipped with a per-point error, so an
	// interrupted sweep drains quickly and still renders everything it
	// completed.
	Context context.Context

	// Metrics, when non-nil, observes every design point's completion.
	// PointDone is called from worker goroutines, possibly concurrently;
	// implementations must be safe for concurrent use (obs.SweepCollector
	// is).
	Metrics SweepMetrics

	// Journal, when non-empty, is the path of an append-only JSONL journal
	// in which journal-aware studies (MemTechWidthSweep, the network
	// studies) durably record every completed design point. The file is
	// fsync'd per record, so a sweep killed at any instant — including
	// mid-write — can be resumed without repeating finished work.
	Journal string

	// Resume, with Journal set, loads the journal's successfully completed
	// points into the grid instead of re-running them; failed or missing
	// points run normally. A torn final line (crash mid-append) is
	// tolerated and truncated. Without Resume the journal starts fresh.
	Resume bool

	// PointTimeout, when > 0, bounds each design point's wall-clock time:
	// the per-point context passed to the point function expires after it,
	// and context-aware studies interrupt the point's engine so a hung
	// point is marked failed (with its error recorded) instead of wedging
	// a pool worker forever.
	PointTimeout time.Duration

	// Cache, when non-nil, memoizes completed design points content-
	// addressed by their fully-resolved configuration: a repeated or
	// overlapping grid re-simulates only what is new. The cache is safe
	// for concurrent use, so one instance may serve several sweeps (and
	// several workers) at once; a hit is field-for-field identical to a
	// fresh simulation by construction. See internal/cache and
	// RunMachineCached.
	Cache *cache.Cache

	// Retry re-runs transient point failures (recovered panics, and —
	// once, at a stretched deadline — PointTimeout expiries) with
	// seeded-deterministic exponential backoff; a point that exhausts the
	// budget is quarantined: marked Failed with an error wrapping
	// ErrQuarantined. The zero value disables retry. See RetryPolicy.
	Retry RetryPolicy

	// FS, when non-nil, is the host-storage seam every durable artifact of
	// the sweep (today: the journal) is written through; nil means the
	// real filesystem (iofault.Disk). The crash-point harness substitutes
	// an iofault.MemFS to enumerate crashes and inject I/O faults at every
	// write, fsync and rename.
	FS iofault.FS

	// Arena, when non-nil, gives each sweep worker a reusable PointArena
	// for the duration of the sweep: consecutive design points on a worker
	// share one event free list, cache backing pool and kernel batch-buffer
	// pool instead of growing fresh ones per point. Results are
	// bit-identical with or without an arena (the arena only moves scrubbed
	// storage, never state); nil means every point allocates fresh. One
	// pool may serve several sweeps and outlive them all — a resident
	// service passes the same pool to every job.
	Arena *ArenaPool
}

// ErrPointFailed marks a sweep error that stems from at least one failed
// (or timed-out, or skipped) design point, as opposed to the sweep being
// unable to run at all. Commands map it to a distinct exit code.
var ErrPointFailed = errors.New("sweep point failed")

// SweepMetrics receives one report per design point. It is the hook the
// observability layer plugs into instead of another package global.
type SweepMetrics interface {
	PointDone(PointReport)
}

// PointReport describes one completed (or failed, or skipped) design point.
type PointReport struct {
	// Index is the point's position in the sweep's grid order.
	Index int
	// Worker identifies the pool goroutine that ran the point (0-based).
	Worker int
	// Start and Wall are the host-time bounds of the point's execution.
	Start time.Time
	Wall  time.Duration
	// Attempts is how many times the point ran (1 = no retries). Zero for
	// points that never ran (skipped by sweep cancellation).
	Attempts int
	// Err is the point's failure (or skip reason), nil on success.
	Err error
}

// workers resolves the pool size: explicit option or GOMAXPROCS.
func (o SweepOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// context resolves the sweep context: explicit option or background.
func (o SweepOptions) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// fs resolves the host-storage seam: explicit option or the real disk.
func (o SweepOptions) fs() iofault.FS {
	if o.FS != nil {
		return o.FS
	}
	return iofault.Disk
}

// errSkipped marks a point that never ran because the sweep context was
// already dead. Journaling skips these — they carry no outcome — and
// metrics report zero attempts for them.
var errSkipped = errors.New("skipped")

// runPoint runs one design point, converting a panic into a per-point
// error (with the component name when the model used sim.Guard) and
// honouring sweep cancellation. One exploding point must cost exactly one
// grid cell, never the process or the rest of the sweep. With a positive
// timeout the point's context expires after it; context-aware point
// functions (RunMachineCtx, RunNetPointCtx) then interrupt their engine.
// Panic-born errors wrap ErrPanicked so the retry policy can tell the
// transient class from deterministic simulation failures.
func runPoint(ctx context.Context, i int, timeout time.Duration, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if pe, ok := r.(*sim.PanicError); ok {
			err = fmt.Errorf("core: point %d: %w: %w\n%s", i, ErrPanicked, pe, pe.Stack)
			return
		}
		err = fmt.Errorf("core: point %d %w: %v\n%s", i, ErrPanicked, r, debug.Stack())
	}()
	if ctx.Err() != nil {
		return fmt.Errorf("core: point %d %w: %w", i, errSkipped, ctx.Err())
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return fn(ctx, i)
}

// runPoints executes fn(i) for every i in [0, n) on a pool of
// opts.workers() goroutines. Every point runs even when earlier points fail
// or panic; the returned error joins all per-point errors in point order,
// so error text is as deterministic as the results. fn must confine its
// writes to per-index state (and its own locals) — that is what makes the
// fan-out race-free.
func runPoints(opts SweepOptions, n int, fn func(i int) error) error {
	_, err := runPointsDetailed(opts, n, func(_ context.Context, i int) error { return fn(i) })
	return err
}

// runPointsDetailed is runPoints for callers that attach failures to
// individual grid cells: it additionally returns the per-point error slice
// (nil entries for successes), always of length n. The context passed to
// fn is the sweep context, narrowed by opts.PointTimeout when set.
func runPointsDetailed(opts SweepOptions, n int, fn func(ctx context.Context, i int) error) ([]error, error) {
	return runPointsHooked(opts, n, fn, nil)
}

// pointHook observes one executed point — its retry history and final
// error — before metrics see it, and may replace the error. The journal
// layer records the outcome here, so a failed journal write becomes the
// point's failure instead of a silent skip.
type pointHook func(i int, retries []RetryRecord, err error) error

// runPointsHooked is the sweep engine under runPointsDetailed and
// runPointsJournaled: the worker pool, the per-point retry loop, the
// completion hook and the metrics report, in that order.
func runPointsHooked(opts SweepOptions, n int, fn func(ctx context.Context, i int) error, hook pointHook) ([]error, error) {
	if n <= 0 {
		return nil, nil
	}
	ctx := opts.context()
	workers := opts.workers()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	one := func(ctx context.Context, worker, i int) {
		start := time.Now()
		retries, err := runPointRetry(ctx, i, opts, fn)
		if hook != nil {
			err = hook(i, retries, err)
		}
		errs[i] = err
		if opts.Metrics != nil {
			attempts := 1 + len(retries)
			if errors.Is(err, errSkipped) {
				attempts = 0
			}
			opts.Metrics.PointDone(PointReport{
				Index: i, Worker: worker,
				Start: start, Wall: time.Since(start),
				Attempts: attempts,
				Err:      errs[i],
			})
		}
	}
	// Each worker borrows one PointArena for its whole run of points and
	// threads it down through the context; the arena goes back to the pool
	// — reset — when the worker drains. See internal/core/arena.go.
	workerCtx := func() (context.Context, func()) {
		if opts.Arena == nil {
			return ctx, func() {}
		}
		a := opts.Arena.Get()
		return withArena(ctx, a), func() { opts.Arena.Put(a) }
	}
	if workers <= 1 {
		wctx, release := workerCtx()
		for i := 0; i < n; i++ {
			one(wctx, 0, i)
		}
		release()
		return errs, errors.Join(errs...)
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			wctx, release := workerCtx()
			defer release()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				one(wctx, worker, i)
			}
		}(w)
	}
	wg.Wait()
	return errs, errors.Join(errs...)
}

// RunMachines runs independent machine configs across the sweep worker
// pool, returning results in config order. It is the batch counterpart of
// RunMachine for callers (the ablation benchmarks, external drivers) whose
// variants have no data dependencies between them. On error the slice is
// still returned: failed configs leave nil entries, completed ones keep
// their results, and the error joins the per-config failures in order.
func RunMachines(cfgs []*config.MachineConfig, opts SweepOptions) ([]*NodeResult, error) {
	out := make([]*NodeResult, len(cfgs))
	_, err := runPointsDetailed(opts, len(cfgs), func(ctx context.Context, i int) error {
		res, err := runMachinePoint(ctx, opts, cfgs[i])
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	return out, err
}
