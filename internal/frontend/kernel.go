package frontend

// KernelStream turns an instrumented Go function into an operation stream:
// the kernel runs in its own goroutine and emits operations through an
// Emitter; the consumer pulls them batch-by-batch. This is how the miniapp
// proxies in internal/workload drive the timing models with realistic
// address streams without being written in SR1 assembly.
//
// The kernel goroutine is strictly rate-limited by the consumer (bounded
// channel), and Close tears it down if the consumer stops early.
//
// Batch buffers circulate: the consumer returns exhausted batches to the
// producer over the recycle channel, so a stream allocates a handful of
// buffers at startup and then runs allocation-free no matter how many
// operations it emits. With an OpPool attached the buffers also survive the
// stream itself — Close harvests them for the next stream (the sweep
// arena's workload-buffer reuse).
type KernelStream struct {
	out     chan []Op
	stop    chan struct{}
	recycle chan []Op
	cur     []Op
	pos     int
	done    bool
	pool    *OpPool
}

// batchSize balances channel crossings against buffering latency.
const batchSize = 4096

// OpPool recycles op batch buffers across streams. It is not safe for
// concurrent use: a pool belongs to one consumer goroutine (in a sweep, one
// worker's arena), and only stream construction and Close touch it.
type OpPool struct {
	bufs [][]Op
}

// get returns a pooled buffer (length 0) or a fresh one.
func (p *OpPool) get() []Op {
	if n := len(p.bufs) - 1; n >= 0 {
		b := p.bufs[n]
		p.bufs[n] = nil
		p.bufs = p.bufs[:n]
		return b
	}
	return make([]Op, 0, batchSize)
}

// put returns a buffer to the pool.
func (p *OpPool) put(b []Op) {
	if cap(b) == 0 {
		return
	}
	p.bufs = append(p.bufs, b[:0])
}

// Len reports how many buffers the pool holds.
func (p *OpPool) Len() int { return len(p.bufs) }

// Trim drops pooled buffers beyond max, bounding a long-lived pool.
func (p *OpPool) Trim(max int) {
	if max < 0 {
		max = 0
	}
	for i := max; i < len(p.bufs); i++ {
		p.bufs[i] = nil
	}
	if len(p.bufs) > max {
		p.bufs = p.bufs[:max]
	}
}

// Emitter is the kernel-side handle for producing operations.
type Emitter struct {
	batch   []Op
	out     chan<- []Op
	stop    <-chan struct{}
	recycle <-chan []Op
	pc      uint64
	// aborted is set once the consumer has gone away.
	aborted bool
}

// Emit queues one operation. It returns false once the consumer has closed
// the stream; kernels should return promptly when that happens.
func (e *Emitter) Emit(op Op) bool {
	if e.aborted {
		return false
	}
	e.pc += 4
	if op.PC == 0 {
		op.PC = e.pc
	}
	e.batch = append(e.batch, op)
	if len(e.batch) >= batchSize {
		return e.flush()
	}
	return true
}

func (e *Emitter) flush() bool {
	if len(e.batch) == 0 {
		return !e.aborted
	}
	b := e.batch
	// Prefer a buffer the consumer has finished with; allocate only while
	// the circulation is still filling up.
	select {
	case nb := <-e.recycle:
		e.batch = nb
	default:
		e.batch = make([]Op, 0, batchSize)
	}
	select {
	case e.out <- b:
		return true
	case <-e.stop:
		e.aborted = true
		return false
	}
}

// Convenience emitters used heavily by workload kernels.

// Load emits an 8-byte load.
func (e *Emitter) Load(addr uint64) bool {
	return e.Emit(Op{Class: ClassLoad, Addr: addr, Size: 8})
}

// Store emits an 8-byte store.
func (e *Emitter) Store(addr uint64) bool {
	return e.Emit(Op{Class: ClassStore, Addr: addr, Size: 8})
}

// Flops emits n floating-point operations.
func (e *Emitter) Flops(n int) bool {
	for i := 0; i < n; i++ {
		if !e.Emit(Op{Class: ClassFloat}) {
			return false
		}
	}
	return true
}

// Ints emits n integer operations.
func (e *Emitter) Ints(n int) bool {
	for i := 0; i < n; i++ {
		if !e.Emit(Op{Class: ClassInt}) {
			return false
		}
	}
	return true
}

// Branch emits one branch with the given outcome.
func (e *Emitter) Branch(taken bool) bool {
	return e.Emit(Op{Class: ClassBranch, Taken: taken})
}

// NewKernelStream starts fn in a goroutine. fn must return when Emit
// reports false.
func NewKernelStream(fn func(*Emitter)) *KernelStream {
	return NewKernelStreamPool(fn, nil)
}

// NewKernelStreamPool is NewKernelStream drawing its batch buffers from
// pool (nil behaves like NewKernelStream). Close returns the stream's
// buffers to the pool, so consecutive streams on the same goroutine reuse
// one working set.
func NewKernelStreamPool(fn func(*Emitter), pool *OpPool) *KernelStream {
	k := &KernelStream{
		out:     make(chan []Op, 4),
		stop:    make(chan struct{}),
		recycle: make(chan []Op, 8),
		pool:    pool,
	}
	var first []Op
	if pool != nil {
		first = pool.get()
		// Prefill the recycle channel so the producer's startup ramp —
		// before the consumer returns anything — draws pooled buffers
		// instead of allocating its circulation from scratch.
		for i := 0; i < cap(k.recycle) && pool.Len() > 0; i++ {
			k.recycle <- pool.get()
		}
	} else {
		first = make([]Op, 0, batchSize)
	}
	em := &Emitter{
		batch:   first,
		out:     k.out,
		stop:    k.stop,
		recycle: k.recycle,
	}
	go func() {
		defer close(k.out)
		fn(em)
		em.flush()
	}()
	return k
}

// Next implements Stream.
func (k *KernelStream) Next(op *Op) bool {
	if k.done {
		return false
	}
	for k.pos >= len(k.cur) {
		b, ok := <-k.out
		if !ok {
			k.done = true
			return false
		}
		if cap(k.cur) > 0 {
			select {
			case k.recycle <- k.cur[:0]:
			default:
				if k.pool != nil {
					k.pool.put(k.cur)
				}
			}
		}
		k.cur, k.pos = b, 0
	}
	*op = k.cur[k.pos]
	k.pos++
	return true
}

// Close releases the kernel goroutine if the consumer stops early, and
// harvests the stream's batch buffers into its pool. It is idempotent and
// safe after natural exhaustion.
func (k *KernelStream) Close() {
	if k.stop != nil {
		select {
		case <-k.stop:
		default:
			close(k.stop)
		}
		// Drain so the producer's in-flight send unblocks. The producer has
		// exited once out closes, making the recycle channel ours alone.
		for b := range k.out {
			if k.pool != nil {
				k.pool.put(b)
			}
		}
		k.done = true
	}
	if k.pool != nil {
		if cap(k.cur) > 0 {
			k.pool.put(k.cur)
			k.cur = nil
		}
		for {
			select {
			case b := <-k.recycle:
				k.pool.put(b)
			default:
				return
			}
		}
	}
}
