package par

import (
	"errors"
	"strings"
	"testing"
	"time"

	"sst/internal/sim"
)

// TestMetricsEdgeCases drives Metrics() through the states a consumer can
// observe outside the happy path: a runner that never ran, a single rank
// that completed, an interrupted multi-rank run, and a pure fast-forward
// run. Table-driven so each case documents exactly what it pins.
func TestMetricsEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *Runner
		check func(t *testing.T, m RunnerMetrics)
	}{
		{
			name: "zero completed windows",
			build: func(t *testing.T) *Runner {
				r, err := NewRunner(3)
				if err != nil {
					t.Fatal(err)
				}
				return r // Metrics before any Run call
			},
			check: func(t *testing.T, m RunnerMetrics) {
				if m.Windows != 0 || m.FastForwards != 0 {
					t.Errorf("windows=%d fastForwards=%d, want 0/0", m.Windows, m.FastForwards)
				}
				if m.Imbalance != 0 {
					t.Errorf("imbalance = %v, want 0 (not NaN)", m.Imbalance)
				}
				if len(m.Ranks) != 3 {
					t.Fatalf("%d rank entries, want 3", len(m.Ranks))
				}
				for _, rk := range m.Ranks {
					if rk.Events != 0 || rk.Windows != 0 || rk.Clock != 0 || rk.Lookahead != 0 {
						t.Errorf("rank %d not zeroed: %+v", rk.Rank, rk)
					}
				}
			},
		},
		{
			name: "single rank completed",
			build: func(t *testing.T) *Runner {
				r, err := NewRunner(1)
				if err != nil {
					t.Fatal(err)
				}
				r.Rank(0).Engine().Schedule(sim.Nanosecond, func(any) {}, nil)
				if _, err := r.RunAll(); err != nil {
					t.Fatal(err)
				}
				return r
			},
			check: func(t *testing.T, m RunnerMetrics) {
				if m.Mode != "pairwise" {
					t.Errorf("mode = %q, want pairwise (the default)", m.Mode)
				}
				if m.Windows == 0 || m.Ranks[0].Events != 1 {
					t.Errorf("windows=%d events=%d, want >0/1", m.Windows, m.Ranks[0].Events)
				}
				if m.Lookahead != 0 {
					t.Errorf("lookahead = %v, want 0 with no cross links", m.Lookahead)
				}
			},
		},
		{
			name: "interrupted run",
			build: func(t *testing.T) *Runner {
				r, err := NewRunner(2)
				if err != nil {
					t.Fatal(err)
				}
				a, b, err := r.Connect("x", 10*sim.Nanosecond, 0, 1)
				if err != nil {
					t.Fatal(err)
				}
				a.SetHandler(func(any) {})
				b.SetHandler(func(any) {})
				eng := r.Rank(0).Engine()
				var tick func(any)
				tick = func(any) { eng.Schedule(sim.Nanosecond, tick, nil) }
				eng.Schedule(sim.Nanosecond, tick, nil)
				r.Interrupt() // interrupt before the first window completes
				if _, err := r.RunAll(); !errors.Is(err, sim.ErrInterrupted) {
					t.Fatalf("err = %v, want ErrInterrupted", err)
				}
				return r
			},
			check: func(t *testing.T, m RunnerMetrics) {
				// Metrics must stay readable and self-consistent after an
				// interrupted run: the aborted window is not counted.
				if m.Windows != 0 {
					t.Errorf("windows = %d, want 0 (window aborted before commit)", m.Windows)
				}
				if len(m.Ranks) != 2 {
					t.Fatalf("%d rank entries, want 2", len(m.Ranks))
				}
				if m.Lookahead != 10*sim.Nanosecond {
					t.Errorf("lookahead = %v, want 10ns", m.Lookahead)
				}
			},
		},
		{
			// Global sync's fixed window would need ~10M one-nanosecond
			// rounds to reach a single event at 10ms; the idle
			// fast-forward must jump there instead. (Pairwise sync never
			// even gets stuck: its next-event horizons cover the gap.)
			name: "sparse run fast-forwards",
			build: func(t *testing.T) *Runner {
				r, err := NewRunner(2)
				if err != nil {
					t.Fatal(err)
				}
				r.SetSyncMode(SyncGlobal)
				a, b, err := r.Connect("x", sim.Nanosecond, 0, 1)
				if err != nil {
					t.Fatal(err)
				}
				a.SetHandler(func(any) {})
				b.SetHandler(func(any) {})
				r.Rank(0).Engine().Schedule(10*sim.Millisecond, func(any) {}, nil)
				if _, err := r.Run(11 * sim.Millisecond); err != nil {
					t.Fatal(err)
				}
				return r
			},
			check: func(t *testing.T, m RunnerMetrics) {
				if m.FastForwards == 0 {
					t.Error("sparse model recorded no fast-forwards")
				}
				if m.Windows > 100 {
					t.Errorf("windows = %d; fast-forward should keep this tiny", m.Windows)
				}
				for _, rk := range m.Ranks {
					if rk.Lookahead != sim.Nanosecond {
						t.Errorf("rank %d inbound lookahead = %v, want 1ns", rk.Rank, rk.Lookahead)
					}
				}
			},
		},
		{
			// The same sparse model under pairwise sync: the next-event
			// horizons reach the event directly, no window crawl.
			name: "sparse run pairwise stays cheap",
			build: func(t *testing.T) *Runner {
				r, err := NewRunner(2)
				if err != nil {
					t.Fatal(err)
				}
				a, b, err := r.Connect("x", sim.Nanosecond, 0, 1)
				if err != nil {
					t.Fatal(err)
				}
				a.SetHandler(func(any) {})
				b.SetHandler(func(any) {})
				r.Rank(0).Engine().Schedule(10*sim.Millisecond, func(any) {}, nil)
				if _, err := r.Run(11 * sim.Millisecond); err != nil {
					t.Fatal(err)
				}
				return r
			},
			check: func(t *testing.T, m RunnerMetrics) {
				if m.Windows > 100 {
					t.Errorf("windows = %d; next-event horizons should keep this tiny", m.Windows)
				}
				if m.Ranks[0].Events != 1 {
					t.Errorf("events = %d, want 1", m.Ranks[0].Events)
				}
			},
		},
		{
			name: "skip-idle counts skipped windows",
			build: func(t *testing.T) *Runner {
				r, err := NewRunner(2)
				if err != nil {
					t.Fatal(err)
				}
				a, b, err := r.Connect("x", 10*sim.Nanosecond, 0, 1)
				if err != nil {
					t.Fatal(err)
				}
				a.SetHandler(func(any) {})
				b.SetHandler(func(any) {})
				eng := r.Rank(0).Engine()
				for i := 1; i <= 100; i++ {
					eng.Schedule(sim.Time(i)*sim.Nanosecond, func(any) {}, nil)
				}
				if _, err := r.RunAll(); err != nil {
					t.Fatal(err)
				}
				return r
			},
			check: func(t *testing.T, m RunnerMetrics) {
				if m.Ranks[1].SkippedWindows == 0 {
					t.Error("idle rank was dispatched every round; skip-idle is not engaging")
				}
				if m.Ranks[1].SkippedWindows > m.Ranks[1].IdleWindows {
					t.Errorf("skipped (%d) exceeds idle (%d); skipped must be a subset",
						m.Ranks[1].SkippedWindows, m.Ranks[1].IdleWindows)
				}
				if m.Ranks[0].Events != 100 {
					t.Errorf("busy rank events = %d, want 100", m.Ranks[0].Events)
				}
			},
		},
		{
			name: "global mode reported",
			build: func(t *testing.T) *Runner {
				r, err := NewRunner(2)
				if err != nil {
					t.Fatal(err)
				}
				r.SetSyncMode(SyncGlobal)
				return r
			},
			check: func(t *testing.T, m RunnerMetrics) {
				if m.Mode != "global" {
					t.Errorf("mode = %q, want global", m.Mode)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.check(t, tc.build(t).Metrics())
		})
	}
}

// TestStallErrorFormatting pins the stall diagnostic's shape directly:
// operators grep these lines out of logs, so the field spellings are a
// contract. Table-driven over the dispatch/arrival combinations the
// watchdog can observe.
func TestStallErrorFormatting(t *testing.T) {
	build := func(t *testing.T) *Runner {
		r, err := NewRunner(2)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Connect("x", 5*sim.Nanosecond, 0, 1); err != nil {
			t.Fatal(err)
		}
		r.SetWatchdog(123 * time.Millisecond)
		r.ranks[0].base = 20 * sim.Nanosecond
		r.ranks[0].horizon = 25 * sim.Nanosecond
		r.ranks[1].base = 22 * sim.Nanosecond
		r.ranks[1].horizon = 27 * sim.Nanosecond
		return r
	}
	cases := []struct {
		name    string
		active  func(r *Runner) []*rank
		arrived []bool
		want    []string
		notWant []string
	}{
		{
			name:    "all dispatched, none arrived",
			active:  func(r *Runner) []*rank { return r.ranks },
			arrived: []bool{false, false},
			want: []string{
				"no rank completed the window",
				"123ms", "pairwise sync", "lookahead 5ns",
				"rank 0:", "rank 1:",
				"clock=", "pending=", "outbox=", "windows=",
				"base=20ns", "horizon=25ns", "base=22ns", "horizon=27ns",
				"did not respond to interrupt",
			},
			notWant: []string{"skipped"},
		},
		{
			name:    "one skipped, one stuck",
			active:  func(r *Runner) []*rank { return r.ranks[:1] },
			arrived: []bool{false, false},
			want: []string{
				"rank 1:", "(skipped: no work below horizon)",
				"rank 0:", "did not respond to interrupt",
			},
		},
		{
			name:    "stuck rank arrived after interrupt",
			active:  func(r *Runner) []*rank { return r.ranks },
			arrived: []bool{true, true},
			want:    []string{"rank 0:", "rank 1:"},
			notWant: []string{"did not respond to interrupt", "skipped"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := build(t)
			err := r.stallError(tc.active(r), tc.arrived)
			if !errors.Is(err, ErrStalled) {
				t.Fatalf("stallError not wrapped in ErrStalled: %v", err)
			}
			msg := err.Error()
			for _, w := range tc.want {
				if !strings.Contains(msg, w) {
					t.Errorf("diagnostic missing %q:\n%s", w, msg)
				}
			}
			for _, nw := range tc.notWant {
				if strings.Contains(msg, nw) {
					t.Errorf("diagnostic unexpectedly contains %q:\n%s", nw, msg)
				}
			}
		})
	}
}
