package frontend

import "testing"

func sliceOf(class Class, n int) *SliceStream {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Class: class}
	}
	return &SliceStream{Ops: ops}
}

func TestChainStreamPhases(t *testing.T) {
	c := &ChainStream{Streams: []Stream{
		sliceOf(ClassFloat, 3),
		sliceOf(ClassLoad, 2),
	}}
	var got []Class
	var op Op
	for c.Next(&op) {
		got = append(got, op.Class)
	}
	want := []Class{ClassFloat, ClassFloat, ClassFloat, ClassLoad, ClassLoad}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if len(c.Boundaries) != 2 || c.Boundaries[0] != 3 || c.Boundaries[1] != 5 {
		t.Fatalf("boundaries = %v", c.Boundaries)
	}
	if c.Phase() != 2 {
		t.Fatalf("final phase = %d", c.Phase())
	}
}

func TestChainStreamEmptyPhases(t *testing.T) {
	c := &ChainStream{Streams: []Stream{
		sliceOf(ClassInt, 0),
		sliceOf(ClassInt, 2),
		sliceOf(ClassInt, 0),
	}}
	var op Op
	n := 0
	for c.Next(&op) {
		n++
	}
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
}

func TestRepeatStream(t *testing.T) {
	r := &RepeatStream{
		Build: func(i int) Stream {
			// Iteration i contributes i+1 ops.
			return sliceOf(ClassInt, i+1)
		},
		N: 4,
	}
	var op Op
	n := 0
	for r.Next(&op) {
		n++
	}
	if n != 1+2+3+4 {
		t.Fatalf("n = %d, want 10", n)
	}
}

func TestRepeatStreamZero(t *testing.T) {
	r := &RepeatStream{Build: func(int) Stream { return sliceOf(ClassInt, 5) }, N: 0}
	var op Op
	if r.Next(&op) {
		t.Fatal("zero repeats produced ops")
	}
}

func TestInterleaveStreamRoundRobin(t *testing.T) {
	s := &InterleaveStream{Streams: []Stream{
		sliceOf(ClassInt, 3),
		sliceOf(ClassFloat, 3),
	}}
	var got []Class
	var op Op
	for s.Next(&op) {
		got = append(got, op.Class)
	}
	want := []Class{ClassInt, ClassFloat, ClassInt, ClassFloat, ClassInt, ClassFloat}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestInterleaveStreamUnevenAndChunked(t *testing.T) {
	s := &InterleaveStream{
		Streams: []Stream{sliceOf(ClassInt, 5), sliceOf(ClassFloat, 1)},
		Chunk:   2,
	}
	var got []Class
	var op Op
	for s.Next(&op) {
		got = append(got, op.Class)
	}
	if len(got) != 6 {
		t.Fatalf("total = %d", len(got))
	}
	// First two from stream 0, then stream 1 (which dries), rest stream 0.
	if got[0] != ClassInt || got[1] != ClassInt || got[2] != ClassFloat {
		t.Fatalf("chunk order: %v", got)
	}
}

func TestInterleaveStreamAllEmpty(t *testing.T) {
	s := &InterleaveStream{Streams: []Stream{sliceOf(ClassInt, 0), sliceOf(ClassInt, 0)}}
	var op Op
	if s.Next(&op) {
		t.Fatal("empty interleave produced ops")
	}
}
