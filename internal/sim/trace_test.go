package sim

import (
	"strings"
	"testing"
	"time"
)

// recTracer records every span it is handed.
type recTracer struct {
	ats    []Time
	labels []string
	durs   []time.Duration
}

func (r *recTracer) Event(at Time, label string, dur time.Duration) {
	r.ats = append(r.ats, at)
	r.labels = append(r.labels, label)
	r.durs = append(r.durs, dur)
}

func TestTracerObservesDispatches(t *testing.T) {
	e := NewEngine()
	tr := &recTracer{}
	e.SetTracer(tr)
	e.ScheduleLabeled(5*Nanosecond, PrioLink, "widget", func(any) {}, nil)
	e.Schedule(10*Nanosecond, func(any) {}, nil)
	e.RunAll()
	if len(tr.labels) != 2 {
		t.Fatalf("traced %d events, want 2", len(tr.labels))
	}
	if tr.labels[0] != "widget" || tr.ats[0] != 5*Nanosecond {
		t.Fatalf("span 0 = (%v, %q)", tr.ats[0], tr.labels[0])
	}
	if tr.labels[1] != "" {
		t.Fatalf("unlabeled event got label %q", tr.labels[1])
	}
	for i, d := range tr.durs {
		if d < 0 {
			t.Fatalf("span %d has negative host duration %v", i, d)
		}
	}
}

// TestTracerLabelInheritance pins the attribution convention: events
// scheduled from inside a labeled handler inherit that label, so a
// completion deep in a call chain stays attributed to the component that
// started it.
func TestTracerLabelInheritance(t *testing.T) {
	e := NewEngine()
	tr := &recTracer{}
	e.SetTracer(tr)
	e.ScheduleLabeled(0, PrioLink, "cache", func(any) {
		// Inherits "cache".
		e.Schedule(Nanosecond, func(any) {
			e.Schedule(Nanosecond, func(any) {}, nil) // still "cache"
		}, nil)
		// Explicit label overrides inheritance.
		e.ScheduleLabeled(Nanosecond, PrioLink, "dram", func(any) {}, nil)
	}, nil)
	e.RunAll()
	want := map[string]int{"cache": 3, "dram": 1}
	got := map[string]int{}
	for _, l := range tr.labels {
		got[l]++
	}
	for l, n := range want {
		if got[l] != n {
			t.Errorf("label %q: %d spans, want %d (all: %v)", l, got[l], n, got)
		}
	}
}

// TestTracerDisabledRestoresPath checks SetTracer(nil) removes tracing.
func TestTracerDisabledRestoresPath(t *testing.T) {
	e := NewEngine()
	tr := &recTracer{}
	e.SetTracer(tr)
	e.Schedule(0, func(any) {}, nil)
	e.RunAll()
	e.SetTracer(nil)
	e.Schedule(0, func(any) {}, nil)
	e.RunAll()
	if len(tr.labels) != 1 {
		t.Fatalf("traced %d events after removal, want 1", len(tr.labels))
	}
}

// TestClockRegisterNamedAttribution: each named clock handler gets its own
// span per tick, and events it schedules carry its name; anonymous handlers
// fall back to the clock's own label.
func TestClockRegisterNamedAttribution(t *testing.T) {
	e := NewEngine()
	tr := &recTracer{}
	e.SetTracer(tr)
	clk := NewClock(e, 1*GHz)
	var fromCPU string
	ticks := 0
	clk.RegisterNamed("cpu.0", func(c Cycle) bool {
		if ticks == 0 {
			e.Schedule(Nanosecond, func(any) { fromCPU = "ran" }, nil)
		}
		ticks++
		return ticks < 2
	})
	clk.Register(func(c Cycle) bool { return ticks < 2 })
	e.RunAll()
	if fromCPU != "ran" {
		t.Fatal("scheduled event never ran")
	}
	var cpuSpans, clockSpans int
	cpuLabeled := 0
	for _, l := range tr.labels {
		switch {
		case l == "cpu.0":
			cpuSpans++
		case strings.HasPrefix(l, "clock@"):
			clockSpans++
		}
		if l == "cpu.0" {
			cpuLabeled++
		}
	}
	// Two ticks × one named handler, plus the inherited-label event.
	if cpuSpans != 3 {
		t.Errorf("cpu.0 spans = %d, want 3 (2 ticks + 1 inherited event): %v", cpuSpans, tr.labels)
	}
	// The anonymous handler's spans and the tick events themselves carry
	// the clock label.
	if clockSpans == 0 {
		t.Errorf("no clock-labeled spans: %v", tr.labels)
	}
}

// TestLinkDeliveryLabeledWithLinkName: link deliveries are attributed to
// the link, giving traces per-link rows without component cooperation.
func TestLinkDeliveryLabeledWithLinkName(t *testing.T) {
	e := NewEngine()
	tr := &recTracer{}
	e.SetTracer(tr)
	a, b := Connect(e, "noc.x0", Nanosecond)
	b.SetHandler(func(any) {})
	a.Send("m")
	e.RunAll()
	found := false
	for _, l := range tr.labels {
		if l == "noc.x0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no span labeled with the link name: %v", tr.labels)
	}
}

func TestSendDelayedNegativePanics(t *testing.T) {
	e := NewEngine()
	a, b := Connect(e, "l9", Nanosecond)
	b.SetHandler(func(any) {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("negative extra accepted")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		// The message must name the offending port and link so a sweep's
		// per-point panic capture pinpoints the model bug.
		for _, want := range []string{"negative send delay", "l9"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q missing %q", msg, want)
			}
		}
	}()
	// Time is unsigned: a caller's negative computation arrives wrapped.
	var zero Time
	a.SendDelayed(zero-Nanosecond, "bad")
}

func TestPeakPendingHighWater(t *testing.T) {
	e := NewEngine()
	if e.PeakPending() != 0 {
		t.Fatalf("fresh engine peak = %d", e.PeakPending())
	}
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i)*Nanosecond, func(any) {}, nil)
	}
	if e.PeakPending() != 5 {
		t.Fatalf("peak = %d, want 5", e.PeakPending())
	}
	e.RunAll()
	// Draining does not lower the high-water mark.
	if e.PeakPending() != 5 {
		t.Fatalf("peak after drain = %d, want 5", e.PeakPending())
	}
	// A lower subsequent burst does not move it either.
	e.Schedule(Nanosecond, func(any) {}, nil)
	if e.PeakPending() != 5 {
		t.Fatalf("peak after small burst = %d, want 5", e.PeakPending())
	}
	e.RunAll()
}
