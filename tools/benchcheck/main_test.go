package main

// The perf gate's own contract: benchmark lines parse (and echo through),
// a baseline benchmark missing from the run fails, alloc and byte growth
// beyond 1% fails, ns/op noise inside tolerance passes, and benchmarks
// not yet in the baseline are a note, never a failure.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkEngineHotLoop-8   \t12345678\t  85.3 ns/op\t  0 B/op\t  0 allocs/op",
		"BenchmarkSweepWorkers/workers=1-8 \t5\t 200000000 ns/op\t 88568526 B/op\t 1869492 allocs/op",
		"BenchmarkNoMem-4 \t100\t 12.5 ns/op",
		"PASS",
	}, "\n")
	var echo strings.Builder
	got := parse(strings.NewReader(in), &echo)
	if len(got) != 3 {
		t.Fatalf("parsed %d entries, want 3: %v", len(got), got)
	}
	e := got["BenchmarkEngineHotLoop"]
	if e.NsPerOp != 85.3 || e.BytesPerOp != 0 || e.AllocsPerOp != 0 {
		t.Errorf("EngineHotLoop = %+v", e)
	}
	e = got["BenchmarkSweepWorkers/workers=1"]
	if e.NsPerOp != 200000000 || e.AllocsPerOp != 1869492 {
		t.Errorf("SweepWorkers = %+v", e)
	}
	if e := got["BenchmarkNoMem"]; e.NsPerOp != 12.5 || e.BytesPerOp != 0 {
		t.Errorf("NoMem = %+v", e)
	}
	// The raw output passes through untouched for the log.
	if echo.String() != in+"\n" {
		t.Errorf("echo mangled the output:\n%q", echo.String())
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := baseline{Entries: map[string]entry{
		"BenchmarkA": {NsPerOp: 100},
		"BenchmarkB": {NsPerOp: 100},
	}}
	got := map[string]entry{"BenchmarkA": {NsPerOp: 100}}
	var out strings.Builder
	if !compare(base, got, 0.25, &out) {
		t.Fatal("missing benchmark passed the gate")
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkB: in baseline but not run") {
		t.Errorf("missing-benchmark verdict absent:\n%s", out.String())
	}
}

func TestCompareAllocAndByteRegressions(t *testing.T) {
	base := baseline{Entries: map[string]entry{
		"BenchmarkZeroAlloc": {NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkHeavy":     {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 100},
	}}
	// A single new allocation on a zero-alloc baseline fails (1% of 0 is 0).
	got := map[string]entry{
		"BenchmarkZeroAlloc": {NsPerOp: 100, BytesPerOp: 16, AllocsPerOp: 1},
		"BenchmarkHeavy":     {NsPerOp: 100, BytesPerOp: 1005, AllocsPerOp: 100},
	}
	var out strings.Builder
	if !compare(base, got, 0.25, &out) {
		t.Fatal("alloc regression passed the gate")
	}
	s := out.String()
	if !strings.Contains(s, "FAIL BenchmarkZeroAlloc: 1 allocs/op") {
		t.Errorf("alloc verdict absent:\n%s", s)
	}
	if !strings.Contains(s, "FAIL BenchmarkZeroAlloc: 16 B/op") {
		t.Errorf("bytes verdict absent:\n%s", s)
	}
	// Heavy's +0.5% B/op rides inside the 1% amortization slack.
	if strings.Contains(s, "FAIL BenchmarkHeavy") {
		t.Errorf("within-slack growth failed:\n%s", s)
	}
}

func TestCompareNsTolerance(t *testing.T) {
	base := baseline{Entries: map[string]entry{
		"BenchmarkDefault": {NsPerOp: 100},
		"BenchmarkTight":   {NsPerOp: 100, Tolerance: 0.02},
	}}
	// +20% is inside the 25% default but outside the per-entry 2%.
	got := map[string]entry{
		"BenchmarkDefault": {NsPerOp: 120},
		"BenchmarkTight":   {NsPerOp: 120},
	}
	var out strings.Builder
	if !compare(base, got, 0.25, &out) {
		t.Fatal("over-tolerance regression passed the gate")
	}
	s := out.String()
	if !strings.Contains(s, "ok   BenchmarkDefault") {
		t.Errorf("in-tolerance verdict wrong:\n%s", s)
	}
	if !strings.Contains(s, "FAIL BenchmarkTight") {
		t.Errorf("per-entry tolerance not applied:\n%s", s)
	}
	// A faster run always passes.
	out.Reset()
	if compare(base, map[string]entry{
		"BenchmarkDefault": {NsPerOp: 50},
		"BenchmarkTight":   {NsPerOp: 99},
	}, 0.25, &out) {
		t.Fatalf("faster run failed the gate:\n%s", out.String())
	}
}

func TestCompareExtraBenchmarkIsNoteNotFailure(t *testing.T) {
	base := baseline{Entries: map[string]entry{"BenchmarkA": {NsPerOp: 100}}}
	got := map[string]entry{
		"BenchmarkA":   {NsPerOp: 100},
		"BenchmarkNew": {NsPerOp: 5},
	}
	var out strings.Builder
	if compare(base, got, 0.25, &out) {
		t.Fatalf("extra benchmark failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "note: BenchmarkNew not in baseline") {
		t.Errorf("extra-benchmark note absent:\n%s", out.String())
	}
}

// TestBaselineCacheHitSpeedup gates the committed baseline itself: the
// all-hit sweep must stay orders of magnitude below the cold 1-worker
// sweep (>=50x ns/op, >=100x B/op). A baseline regeneration that erodes
// this means the hit path started doing real work.
func TestBaselineCacheHitSpeedup(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	cold, ok := base.Entries["BenchmarkSweepWorkers/workers=1"]
	if !ok {
		t.Fatal("baseline lacks BenchmarkSweepWorkers/workers=1")
	}
	hit, ok := base.Entries["BenchmarkSweepCacheHit"]
	if !ok {
		t.Fatal("baseline lacks BenchmarkSweepCacheHit")
	}
	if hit.NsPerOp*50 > cold.NsPerOp {
		t.Errorf("cache hit %.0f ns/op is less than 50x below cold %.0f", hit.NsPerOp, cold.NsPerOp)
	}
	if hit.BytesPerOp*100 > cold.BytesPerOp {
		t.Errorf("cache hit %.0f B/op is less than 100x below cold %.0f", hit.BytesPerOp, cold.BytesPerOp)
	}
}
