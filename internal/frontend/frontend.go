// Package frontend decouples *what* a processor executes from *how fast* it
// executes — the Structural Simulation Toolkit's front-end/back-end split.
// A front-end produces a Stream of dynamic operations; any timing back-end
// in internal/cpu can consume any Stream:
//
//   - ExecStream:      execution-driven, interpreting SR1 programs
//   - SyntheticStream: stochastic instruction mix with tunable locality
//   - TraceStream:     replay of a recorded binary trace
//   - KernelStream:    instrumented Go kernels (the miniapp drivers)
package frontend

import "fmt"

// Class is the execution class of one dynamic operation.
type Class uint8

const (
	// ClassInt is integer ALU work.
	ClassInt Class = iota
	// ClassFloat is floating-point work.
	ClassFloat
	// ClassLoad reads memory.
	ClassLoad
	// ClassStore writes memory.
	ClassStore
	// ClassBranch may redirect control flow.
	ClassBranch
	// ClassNop consumes an issue slot only.
	ClassNop
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassInt:
		return "int"
	case ClassFloat:
		return "float"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassNop:
		return "nop"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// NumClasses reports how many operation classes exist (for stat arrays).
func NumClasses() int { return int(numClasses) }

// Op is one dynamic instruction delivered to a timing back-end.
//
// Register numbers drive dependence tracking in superscalar back-ends;
// register 0 means "no dependence" (SR1's hardwired zero register has the
// same property, so ExecStream passes registers through unchanged).
type Op struct {
	Class Class
	PC    uint64
	// Addr and Size describe the memory access of loads and stores.
	Addr uint64
	Size uint8
	// Taken is meaningful for ClassBranch.
	Taken bool
	// Dst, Src1, Src2 are architectural register numbers (0 = none).
	Dst, Src1, Src2 uint8
}

// Stream produces dynamic operations. Next fills *op and reports whether an
// operation was produced; false means the stream ended. Streams are not
// safe for concurrent use; each core owns its stream.
type Stream interface {
	Next(op *Op) bool
}

// CountingStream wraps a Stream and counts operations by class.
type CountingStream struct {
	Inner  Stream
	Counts [numClasses]uint64
}

// Next implements Stream.
func (c *CountingStream) Next(op *Op) bool {
	if !c.Inner.Next(op) {
		return false
	}
	c.Counts[op.Class]++
	return true
}

// Total returns the number of operations seen.
func (c *CountingStream) Total() uint64 {
	var t uint64
	for _, n := range c.Counts {
		t += n
	}
	return t
}

// LimitStream truncates a stream after N operations.
type LimitStream struct {
	Inner Stream
	N     uint64
	seen  uint64
}

// Next implements Stream.
func (l *LimitStream) Next(op *Op) bool {
	if l.seen >= l.N {
		return false
	}
	if !l.Inner.Next(op) {
		return false
	}
	l.seen++
	return true
}

// SliceStream replays a fixed slice of operations; mainly for tests.
type SliceStream struct {
	Ops []Op
	pos int
}

// Next implements Stream.
func (s *SliceStream) Next(op *Op) bool {
	if s.pos >= len(s.Ops) {
		return false
	}
	*op = s.Ops[s.pos]
	s.pos++
	return true
}

// Reset rewinds the slice stream.
func (s *SliceStream) Reset() { s.pos = 0 }
