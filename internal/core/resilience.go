package core

import (
	"fmt"
	"math"

	"sst/internal/fault"
	"sst/internal/stats"
)

// ResilienceConfig parameterizes the checkpoint-interval study: how often
// should a machine with a given MTBF checkpoint a long-running job? The
// study sweeps candidate intervals for each MTBF, simulates Trials seeded
// runs per cell with fault.CheckpointModel, and reports the empirically
// best interval next to the Young and Daly closed forms.
type ResilienceConfig struct {
	// MTBFHours lists the machine MTBF values to study, in hours.
	MTBFHours []float64
	// CheckpointS is the cost of writing one checkpoint, seconds.
	CheckpointS float64
	// RestartS is the reboot-and-reload cost after a failure, seconds.
	RestartS float64
	// WorkHours is the job's useful work, in hours.
	WorkHours float64
	// IntervalsS optionally fixes the candidate checkpoint intervals
	// (seconds). Empty means a geometric grid of NumIntervals points
	// centered on the Young interval for each MTBF.
	IntervalsS []float64
	// NumIntervals sizes the automatic grid (default 9).
	NumIntervals int
	// Trials is the number of seeded runs averaged per cell (default 5).
	Trials int
	// Seed is the root fault seed; every cell and trial derives its own
	// stream from it, independent of sweep worker count.
	Seed uint64
}

// ResilienceRow is the study's verdict for one MTBF.
type ResilienceRow struct {
	MTBFHours float64
	// YoungS and DalyS are the closed-form optimal intervals, seconds.
	YoungS, DalyS float64
	// BestIntervalS is the simulated sweep's best candidate interval.
	BestIntervalS float64
	// BestMakespanS is the mean simulated makespan at that interval.
	BestMakespanS float64
	// DalyMakespanS is Daly's expected makespan at the Young interval —
	// the analytic oracle the simulation is cross-checked against.
	DalyMakespanS float64
	// Efficiency is useful work over best makespan.
	Efficiency float64
	// RatioToYoung is BestIntervalS / YoungS; near 1 when simulation and
	// first-order theory agree.
	RatioToYoung float64
}

// ResilienceRowSet carries the per-MTBF verdicts and, via the embedded
// TableResult, the rendered table and JSON/CSV exports.
type ResilienceRowSet struct {
	TableResult
	Rows []ResilienceRow
}

// resilienceCell is one (MTBF, interval) grid cell's aggregate.
type resilienceCell struct {
	meanMakespanS float64
	meanLostS     float64
	failures      int
}

// ResilienceStudy sweeps checkpoint intervals against machine MTBF. Cells
// are independent and run across the sweep worker pool; every trial's seed
// is derived from (Seed, MTBF index, interval index, trial), so the study
// is deterministic for any worker count.
func ResilienceStudy(cfg ResilienceConfig, opts SweepOptions) (*ResilienceRowSet, error) {
	if len(cfg.MTBFHours) == 0 {
		return nil, fmt.Errorf("core: resilience study needs at least one MTBF")
	}
	if cfg.WorkHours <= 0 || math.IsNaN(cfg.WorkHours) || math.IsInf(cfg.WorkHours, 0) {
		return nil, fmt.Errorf("core: resilience study WorkHours = %v invalid", cfg.WorkHours)
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 5
	}
	nIntervals := cfg.NumIntervals
	if nIntervals <= 0 {
		nIntervals = 9
	}
	workS := cfg.WorkHours * 3600

	// Candidate intervals per MTBF: fixed list, or a geometric grid
	// spanning Young/4 .. 4*Young so the U-shaped tradeoff is visible on
	// both sides of the predicted optimum.
	intervals := make([][]float64, len(cfg.MTBFHours))
	for mi, mh := range cfg.MTBFHours {
		if mh <= 0 || math.IsNaN(mh) || math.IsInf(mh, 0) {
			return nil, fmt.Errorf("core: resilience study MTBFHours[%d] = %v invalid", mi, mh)
		}
		if len(cfg.IntervalsS) > 0 {
			intervals[mi] = cfg.IntervalsS
			continue
		}
		young := fault.YoungInterval(cfg.CheckpointS, mh*3600)
		grid := make([]float64, nIntervals)
		for k := range grid {
			exp := 2 * (float64(k)/float64(nIntervals-1) - 0.5) // [-1, 1]
			grid[k] = young * math.Pow(4, exp)
		}
		intervals[mi] = grid
	}

	// Flatten (mtbf, interval) cells for the worker pool.
	type cellKey struct{ mi, ii int }
	var keys []cellKey
	for mi := range cfg.MTBFHours {
		for ii := range intervals[mi] {
			keys = append(keys, cellKey{mi, ii})
		}
	}
	cells := make([]resilienceCell, len(keys))
	err := runPoints(opts, len(keys), func(c int) error {
		k := keys[c]
		m := fault.CheckpointModel{
			WorkS:       workS,
			CheckpointS: cfg.CheckpointS,
			RestartS:    cfg.RestartS,
			MTBFS:       cfg.MTBFHours[k.mi] * 3600,
		}
		tau := intervals[k.mi][k.ii]
		for tr := 0; tr < trials; tr++ {
			seed := fault.StreamSeed(cfg.Seed, fmt.Sprintf("resilience:m%d:i%d:t%d", k.mi, k.ii, tr))
			st, err := m.Simulate(seed, tau)
			if err != nil {
				return fmt.Errorf("core: resilience cell mtbf=%gh interval=%gs trial=%d: %w",
					cfg.MTBFHours[k.mi], tau, tr, err)
			}
			cells[c].meanMakespanS += st.MakespanS / float64(trials)
			cells[c].meanLostS += st.LostWorkS / float64(trials)
			cells[c].failures += st.Failures
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &ResilienceRowSet{
		TableResult: TableResult{Tab: stats.NewTable("Resilience: optimal checkpoint interval vs MTBF",
			"mtbf_h", "young_s", "daly_s", "best_interval_s", "best/young",
			"best_makespan_s", "daly_makespan_s", "efficiency")},
	}
	ci := 0
	for mi, mh := range cfg.MTBFHours {
		mtbfS := mh * 3600
		young := fault.YoungInterval(cfg.CheckpointS, mtbfS)
		row := ResilienceRow{
			MTBFHours:     mh,
			YoungS:        young,
			DalyS:         fault.DalyInterval(cfg.CheckpointS, mtbfS),
			DalyMakespanS: fault.DalyMakespan(workS, cfg.CheckpointS, cfg.RestartS, mtbfS, young),
			BestMakespanS: math.Inf(1),
		}
		for ii := range intervals[mi] {
			cell := cells[ci]
			ci++
			if cell.meanMakespanS < row.BestMakespanS {
				row.BestMakespanS = cell.meanMakespanS
				row.BestIntervalS = intervals[mi][ii]
			}
		}
		row.Efficiency = workS / row.BestMakespanS
		row.RatioToYoung = row.BestIntervalS / row.YoungS
		out.Rows = append(out.Rows, row)
		out.Tab.AddRow(row.MTBFHours, row.YoungS, row.DalyS, row.BestIntervalS,
			row.RatioToYoung, row.BestMakespanS, row.DalyMakespanS, row.Efficiency)
	}
	return out, nil
}
