package cache

// TinyLFU's frequency estimator: a doorkeeper bloom filter in front of a
// count-min sketch of 8-bit counters, with periodic halving so the
// estimate tracks recent popularity instead of all-time counts. The
// doorkeeper absorbs the one-hit wonders (a key's first appearance in a
// sample window only sets bloom bits); only repeat keys reach the sketch,
// which keeps its counters meaningful at small widths.

const (
	// sketchRows is the count-min depth: the estimate is the minimum over
	// this many independently hashed counter rows.
	sketchRows = 4
	// sampleFactor sets the aging window: after capacity×sampleFactor
	// recorded accesses every counter is halved and the doorkeeper reset.
	sampleFactor = 10
	// counterMax caps a counter; with halving this bounds estimates
	// without letting hot keys saturate neighbours via collisions.
	counterMax = 255
)

type sketch struct {
	rows    [sketchRows][]uint8
	door    []uint64 // doorkeeper bloom bitset
	mask    uint64   // row width - 1 (width is a power of two)
	doorLen uint64   // doorkeeper bits
	samples uint64   // recorded accesses since the last reset
	window  uint64   // samples that trigger an aging reset
}

// newSketch sizes the estimator for a cache of the given entry capacity.
func newSketch(capacity int) *sketch {
	if capacity < 16 {
		capacity = 16
	}
	width := uint64(1)
	for width < uint64(capacity)*4 {
		width <<= 1
	}
	s := &sketch{
		mask:    width - 1,
		doorLen: width * 8,
		window:  uint64(capacity) * sampleFactor,
	}
	for i := range s.rows {
		s.rows[i] = make([]uint8, width)
	}
	s.door = make([]uint64, (s.doorLen+63)/64)
	return s
}

// fnv1a is the 64-bit FNV-1a hash — the repo's standard cheap stable hash
// (the fault package seeds its RNG streams the same way).
func fnv1a(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// rowIndex derives the i-th row's counter index from the base hash by
// remixing with an odd constant per row (cheap double hashing).
func (s *sketch) rowIndex(h uint64, i int) uint64 {
	h = h + uint64(i+1)*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h & s.mask
}

// doorBit tests and sets the doorkeeper bit for the hash, reporting
// whether it was already set.
func (s *sketch) doorBit(h uint64) bool {
	b := h % s.doorLen
	word, bit := b/64, uint64(1)<<(b%64)
	seen := s.door[word]&bit != 0
	s.door[word] |= bit
	return seen
}

// record notes one access to key.
func (s *sketch) record(key string) {
	h := fnv1a(key)
	if s.doorBit(h) {
		for i := range s.rows {
			if c := &s.rows[i][s.rowIndex(h, i)]; *c < counterMax {
				*c++
			}
		}
	}
	s.samples++
	if s.samples >= s.window {
		s.age()
	}
}

// estimate returns the key's approximate access count within the current
// aging window (doorkeeper membership counts as one).
func (s *sketch) estimate(key string) uint64 {
	h := fnv1a(key)
	est := uint64(counterMax)
	for i := range s.rows {
		if c := uint64(s.rows[i][s.rowIndex(h, i)]); c < est {
			est = c
		}
	}
	b := h % s.doorLen
	if s.door[b/64]&(uint64(1)<<(b%64)) != 0 {
		est++
	}
	return est
}

// age halves every counter and clears the doorkeeper, so estimates decay
// toward recent behavior instead of accumulating forever.
func (s *sketch) age() {
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			row[j] >>= 1
		}
	}
	for i := range s.door {
		s.door[i] = 0
	}
	s.samples = 0
}
