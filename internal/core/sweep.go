package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"sst/internal/config"
	"sst/internal/sim"
)

// Sweep-level parallelism. Every study in this package is a grid of fully
// independent design points: each point builds its own sim.Engine, its own
// component tree and its own stats.Registry, so points share no mutable
// state and may run on separate goroutines. runPoints fans a sweep's points
// across a bounded worker pool and each worker writes its result back by
// point index, which keeps result ordering — and therefore every rendered
// Fig. 10/11/12 table — bit-identical to a sequential sweep regardless of
// worker count or goroutine scheduling. (The engines themselves stay
// single-threaded; only whole design points are concurrent.)

// sweepWorkers holds the configured pool size; 0 means GOMAXPROCS.
var sweepWorkers atomic.Int64

// SetSweepWorkers fixes the number of worker goroutines sweep drivers use
// for independent design points. n <= 0 restores the default, GOMAXPROCS.
// It applies to sweeps started after the call.
func SetSweepWorkers(n int) {
	if n < 0 {
		n = 0
	}
	sweepWorkers.Store(int64(n))
}

// SweepWorkers reports the worker count the next sweep will use.
func SweepWorkers() int {
	if n := sweepWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// ctxBox wraps the sweep context so sweepCtx always stores one concrete
// type (atomic.Value requires it; context.Context is an interface whose
// dynamic type varies).
type ctxBox struct{ ctx context.Context }

var sweepCtx atomic.Value

// SetSweepContext installs the context sweep pools consult between design
// points. Cancelling it does not abort points already running — each point
// is a self-contained simulation that finishes and keeps its result — but
// every point not yet started is skipped with a per-point error, so an
// interrupted sweep drains quickly and still renders everything it
// completed. Nil restores the background context. Applies to sweeps
// started after the call as well as the not-yet-started points of running
// ones.
func SetSweepContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	sweepCtx.Store(ctxBox{ctx})
}

func sweepContext() context.Context {
	if b, ok := sweepCtx.Load().(ctxBox); ok {
		return b.ctx
	}
	return context.Background()
}

// runPoint runs one design point, converting a panic into a per-point
// error (with the component name when the model used sim.Guard) and
// honouring sweep cancellation. One exploding point must cost exactly one
// grid cell, never the process or the rest of the sweep.
func runPoint(i int, fn func(i int) error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if pe, ok := r.(*sim.PanicError); ok {
			err = fmt.Errorf("core: point %d: %w\n%s", i, pe, pe.Stack)
			return
		}
		err = fmt.Errorf("core: point %d panicked: %v\n%s", i, r, debug.Stack())
	}()
	if ctx := sweepContext(); ctx.Err() != nil {
		return fmt.Errorf("core: point %d skipped: %w", i, ctx.Err())
	}
	return fn(i)
}

// runPoints executes fn(i) for every i in [0, n) on a pool of SweepWorkers
// goroutines. Every point runs even when earlier points fail or panic; the
// returned error joins all per-point errors in point order, so error text
// is as deterministic as the results. fn must confine its writes to
// per-index state (and its own locals) — that is what makes the fan-out
// race-free.
func runPoints(n int, fn func(i int) error) error {
	_, err := runPointsDetailed(n, fn)
	return err
}

// runPointsDetailed is runPoints for callers that attach failures to
// individual grid cells: it additionally returns the per-point error slice
// (nil entries for successes), always of length n.
func runPointsDetailed(n int, fn func(i int) error) ([]error, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := SweepWorkers()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = runPoint(i, fn)
		}
		return errs, errors.Join(errs...)
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runPoint(i, fn)
			}
		}()
	}
	wg.Wait()
	return errs, errors.Join(errs...)
}

// RunMachines runs independent machine configs across the sweep worker
// pool, returning results in config order. It is the batch counterpart of
// RunMachine for callers (the ablation benchmarks, external drivers) whose
// variants have no data dependencies between them. On error the slice is
// still returned: failed configs leave nil entries, completed ones keep
// their results, and the error joins the per-config failures in order.
func RunMachines(cfgs []*config.MachineConfig) ([]*NodeResult, error) {
	out := make([]*NodeResult, len(cfgs))
	err := runPoints(len(cfgs), func(i int) error {
		res, err := RunMachine(cfgs[i])
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	return out, err
}
