package sim

import (
	"fmt"
	"time"
)

// ClockHandler is called once per tick with the current cycle number.
// Returning false unregisters the handler; it may be re-registered later
// with Clock.Register. Components that stall for long periods should
// deregister and re-register rather than spin, which keeps idle components
// free on the event queue.
type ClockHandler func(cycle Cycle) bool

// Clock turns the engine's continuous picosecond timeline into a discrete
// cycle domain at a fixed frequency. Many components may share one clock;
// a tick is a single engine event regardless of how many handlers are
// registered, and handlers run in registration order for determinism.
//
// Cycle-to-time conversion is exact (128-bit intermediate), so a 2.9 GHz
// clock does not drift against a 1333 MHz memory clock over billions of
// cycles.
type Clock struct {
	engine   *Engine
	freq     Hz
	cycle    Cycle
	handlers []ClockHandler
	// labels[i] attributes handlers[i] in traces; "" falls back to the
	// clock's own label.
	labels []string
	armed  bool
	prio   Priority
	label  string

	// tickFn is c.tick bound once at construction. Converting a method
	// value to a Handler allocates; doing it per arm would cost one
	// allocation per cycle on the hottest scheduling path in the system.
	tickFn Handler

	// tickSeq is the engine sequence number of the pending tick event,
	// captured at scheduling time so a restored clock can re-create the
	// tick with identical same-timestamp ordering (see checkpoint.go).
	tickSeq uint64
}

// NewClock creates a clock at freq driven by engine. The clock stays dormant
// until its first handler is registered.
func NewClock(engine *Engine, freq Hz) *Clock {
	if freq == 0 {
		panic("sim: zero-frequency clock")
	}
	c := &Clock{engine: engine, freq: freq, prio: PrioClock,
		label: fmt.Sprintf("clock@%v", freq)}
	c.tickFn = c.tick
	return c
}

// Freq returns the clock frequency.
func (c *Clock) Freq() Hz { return c.freq }

// Cycle returns the number of ticks delivered so far.
func (c *Clock) Cycle() Cycle { return c.cycle }

// Period returns the nominal tick duration (rounded to a picosecond).
func (c *Clock) Period() Time { return c.freq.Period() }

// NextCycle returns the cycle number of the first tick at or after the
// engine's current time. Used by components waking from a stall to convert
// a resume time into a cycle count.
func (c *Clock) NextCycle() Cycle {
	n := c.freq.CyclesIn(c.engine.Now())
	if c.freq.CycleTime(n) < c.engine.Now() {
		n++
	}
	return n
}

// Register adds h to the tick list and arms the clock if it was dormant.
// The first tick delivered to a newly armed clock is the next cycle boundary
// at or after the current time.
func (c *Clock) Register(h ClockHandler) { c.RegisterNamed("", h) }

// RegisterNamed is Register with a trace label: the handler's work (and any
// events it schedules) is attributed to name in traces instead of to the
// shared clock. Components pass their instance name, which is how per-core
// attribution works without the tracer touching component code.
func (c *Clock) RegisterNamed(name string, h ClockHandler) {
	if h == nil {
		panic("sim: Register with nil clock handler")
	}
	c.handlers = append(c.handlers, h)
	c.labels = append(c.labels, name)
	c.arm()
}

func (c *Clock) arm() {
	if c.armed || len(c.handlers) == 0 {
		return
	}
	c.armed = true
	if c.cycle < c.NextCycle() {
		c.cycle = c.NextCycle()
	}
	c.tickSeq = c.engine.seq
	c.engine.ScheduleLabeledAt(c.freq.CycleTime(c.cycle), c.prio, c.label, c.tickFn, nil)
}

// invoke runs one handler with its label as the engine's current label, so
// events the handler schedules inherit the component's attribution; when a
// tracer is active it also emits a per-handler span (the tick event itself
// is one engine event no matter how many handlers share the clock).
func (c *Clock) invoke(h ClockHandler, label string) bool {
	e := c.engine
	if label == "" {
		label = c.label
	}
	prev := e.curLabel
	e.curLabel = label
	var keep bool
	if e.tracer == nil {
		keep = h(c.cycle)
	} else {
		start := time.Now()
		keep = h(c.cycle)
		e.tracer.Event(e.now, label, time.Since(start))
	}
	e.curLabel = prev
	return keep
}

// tick delivers one cycle to every registered handler, dropping handlers
// that return false, then re-arms for the next cycle if any remain.
// Handlers registered from within a tick are preserved but first run on the
// following cycle.
func (c *Clock) tick(any) {
	n := len(c.handlers)
	j := 0
	for i := 0; i < n; i++ {
		h := c.handlers[i]
		if c.invoke(h, c.labels[i]) {
			c.handlers[j] = h
			c.labels[j] = c.labels[i]
			j++
		}
	}
	// Handlers appended during the tick sit at indices >= n; keep them.
	copy(c.labels[j:], c.labels[n:])
	j += copy(c.handlers[j:], c.handlers[n:])
	for i := j; i < len(c.handlers); i++ {
		c.handlers[i] = nil
		c.labels[i] = ""
	}
	c.handlers = c.handlers[:j]
	c.labels = c.labels[:j]
	c.cycle++
	c.armed = false
	if len(c.handlers) > 0 {
		c.armed = true
		c.tickSeq = c.engine.seq
		c.engine.ScheduleLabeledAt(c.freq.CycleTime(c.cycle), c.prio, c.label, c.tickFn, nil)
	}
}
