// Package sim implements the discrete-event simulation kernel at the heart
// of gosst: picosecond-resolution simulated time, a deterministic event
// queue, clocks, and latency-bearing links between components.
//
// The kernel mirrors the structure of the Structural Simulation Toolkit's
// core: components never call each other's timing models directly across
// link boundaries; instead they exchange events over links whose latency is
// known up front. That latency is what the parallel engine (internal/par)
// later exploits as conservative lookahead.
package sim

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Time is a point in (or duration of) simulated time, in picoseconds.
//
// A uint64 of picoseconds covers about 213 days of simulated time, far
// beyond any architectural simulation horizon, while keeping every clock
// arithmetic operation exact and branch-free.
type Time uint64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// TimeInfinity sorts after every reachable simulation time.
const TimeInfinity Time = ^Time(0)

// String renders a Time using the largest unit that keeps the value exact,
// e.g. "3ns", "250ps", "1.5us" is rendered as "1500ns".
func (t Time) String() string {
	switch {
	case t == TimeInfinity:
		return "inf"
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t%Millisecond == 0:
		return fmt.Sprintf("%dms", t/Millisecond)
	case t%Microsecond == 0:
		return fmt.Sprintf("%dus", t/Microsecond)
	case t%Nanosecond == 0:
		return fmt.Sprintf("%dns", t/Nanosecond)
	default:
		return fmt.Sprintf("%dps", uint64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Cycle is a count of clock ticks of some Clock.
type Cycle uint64

// Hz is a clock frequency in cycles per second.
type Hz uint64

// Common frequencies.
const (
	KHz Hz = 1_000
	MHz Hz = 1_000_000
	GHz Hz = 1_000_000_000
)

const picosPerSecond = 1_000_000_000_000

// Period returns the duration of one cycle at frequency f, rounded down to
// a whole picosecond. Use CycleTime for drift-free cycle→time conversion.
func (f Hz) Period() Time {
	if f == 0 {
		return TimeInfinity
	}
	return Time(picosPerSecond / uint64(f))
}

// CycleTime returns the exact time of cycle n at frequency f
// (n * 1e12 / f), computed with a 128-bit intermediate so multi-gigahertz
// clocks do not drift over long simulations.
func (f Hz) CycleTime(n Cycle) Time {
	if f == 0 {
		return TimeInfinity
	}
	hi, lo := bits.Mul64(uint64(n), picosPerSecond)
	if hi >= uint64(f) {
		return TimeInfinity // overflow: beyond representable simulated time
	}
	q, _ := bits.Div64(hi, lo, uint64(f))
	return Time(q)
}

// CyclesIn returns how many whole cycles at frequency f fit in duration d.
func (f Hz) CyclesIn(d Time) Cycle {
	hi, lo := bits.Mul64(uint64(d), uint64(f))
	if hi >= picosPerSecond {
		return Cycle(^uint64(0))
	}
	q, _ := bits.Div64(hi, lo, picosPerSecond)
	return Cycle(q)
}

// String renders the frequency in the largest exact unit.
func (f Hz) String() string {
	switch {
	case f == 0:
		return "0Hz"
	case f%GHz == 0:
		return fmt.Sprintf("%dGHz", f/GHz)
	case f%MHz == 0:
		return fmt.Sprintf("%dMHz", f/MHz)
	case f%KHz == 0:
		return fmt.Sprintf("%dkHz", f/KHz)
	default:
		return fmt.Sprintf("%dHz", uint64(f))
	}
}

// ParseTime parses a duration string such as "10ns", "2.5us", "100ps" or
// "1ms" into a Time. A bare number is interpreted as picoseconds.
func ParseTime(s string) (Time, error) {
	v, unit, err := splitNumUnit(s)
	if err != nil {
		return 0, fmt.Errorf("sim: bad time %q: %w", s, err)
	}
	var scale Time
	switch strings.ToLower(unit) {
	case "", "ps":
		scale = Picosecond
	case "ns":
		scale = Nanosecond
	case "us", "µs":
		scale = Microsecond
	case "ms":
		scale = Millisecond
	case "s":
		scale = Second
	default:
		return 0, fmt.Errorf("sim: bad time %q: unknown unit %q", s, unit)
	}
	return Time(v*float64(scale) + 0.5), nil
}

// ParseHz parses a frequency string such as "2.9GHz", "800MHz" or "1333MHz".
// A bare number is interpreted as Hz.
func ParseHz(s string) (Hz, error) {
	v, unit, err := splitNumUnit(s)
	if err != nil {
		return 0, fmt.Errorf("sim: bad frequency %q: %w", s, err)
	}
	var scale Hz
	switch strings.ToLower(unit) {
	case "", "hz":
		scale = 1
	case "khz":
		scale = KHz
	case "mhz":
		scale = MHz
	case "ghz":
		scale = GHz
	default:
		return 0, fmt.Errorf("sim: bad frequency %q: unknown unit %q", s, unit)
	}
	return Hz(v*float64(scale) + 0.5), nil
}

func splitNumUnit(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if (c >= '0' && c <= '9') || c == '.' {
			break
		}
		i--
	}
	num, unit := s[:i], strings.TrimSpace(s[i:])
	if num == "" {
		return 0, "", fmt.Errorf("missing number")
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, "", err
	}
	if v < 0 {
		return 0, "", fmt.Errorf("negative value")
	}
	return v, unit, nil
}
