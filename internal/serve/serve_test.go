package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"sst/internal/core"
	"sst/internal/leakcheck"
	"sst/internal/sim"
)

// dseSpec is the small reference grid used throughout: 2 apps × 2 techs
// × 2 widths = 8 points, fast at small scale.
func dseSpec() core.JobSpec {
	return core.JobSpec{
		Kind: "dse",
		Apps: []string{"stream", "gups"}, Techs: []string{"ddr3-1333", "gddr5-4000"},
		Widths: []int{1, 2},
	}
}

// directCSV runs spec through the study machinery with no server at all:
// the byte-identity oracle.
func directCSV(t *testing.T, spec core.JobSpec) []byte {
	t.Helper()
	res, err := spec.Run(core.SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.WriteResults(&buf, core.FormatCSV, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startServer builds and starts a Server, draining it at cleanup so the
// leak check sees an empty pool.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		if err := s.Drain(10 * time.Second); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return s
}

// withRunSpec swaps the job-execution seam for the test's fake.
func withRunSpec(t *testing.T, fn func(core.JobSpec, core.SweepOptions) (core.Result, error)) {
	t.Helper()
	orig := runSpec
	runSpec = fn
	t.Cleanup(func() { runSpec = orig })
}

// blockingRunSpec returns a fake that parks jobs until their sweep
// context dies, plus a channel that reports each started job.
func blockingRunSpec(t *testing.T) (started chan string) {
	t.Helper()
	started = make(chan string, 64)
	withRunSpec(t, func(spec core.JobSpec, opts core.SweepOptions) (core.Result, error) {
		started <- spec.Kind
		<-opts.Context.Done()
		return nil, opts.Context.Err()
	})
	return started
}

func waitState(t *testing.T, s *Server, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s (err: %s)", id, st.State, want, st.Err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSubmitToCompletionMatchesDirectRun(t *testing.T) {
	leakcheck.Check(t)
	s := startServer(t, Config{StateDir: t.TempDir(), JobWorkers: 1, PointWorkers: 2})
	st, err := s.Submit("alice", dseSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job in state %s", st.State)
	}
	if st.Points != 8 {
		t.Fatalf("job reports %d points, want 8", st.Points)
	}
	final := waitState(t, s, st.ID, StateDone)
	if final.PointsDone != 8 || final.PointsFailed != 0 {
		t.Fatalf("done job counts %+v", final)
	}
	got, err := os.ReadFile(s.jobs[st.ID].resultPath())
	if err != nil {
		t.Fatal(err)
	}
	if want := directCSV(t, dseSpec()); !bytes.Equal(got, want) {
		t.Fatalf("service result differs from direct run:\n--- serve ---\n%s--- direct ---\n%s", got, want)
	}
}

func TestQueueFullSheds(t *testing.T) {
	leakcheck.Check(t)
	started := blockingRunSpec(t)
	s := startServer(t, Config{StateDir: t.TempDir(), JobWorkers: 1, QueueCapacity: 1})
	// First job occupies the worker, second fills the queue.
	if _, err := s.Submit("a", dseSpec(), 0); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Submit("a", dseSpec(), 0); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit("a", dseSpec(), 0)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit got %v, want ErrQueueFull", err)
	}
	if rep := s.Report(); rep.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", rep.Shed)
	}
}

func TestTenantFairness(t *testing.T) {
	q := newTenantQueue(16)
	push := func(tenant, id string) {
		if !q.push(&job{id: id, tenant: tenant}) {
			t.Fatalf("push %s rejected", id)
		}
	}
	// Tenant A floods first; B and C each submit one.
	push("A", "a1")
	push("A", "a2")
	push("A", "a3")
	push("B", "b1")
	push("C", "c1")
	var got []string
	for j := q.pop(); j != nil; j = q.pop() {
		got = append(got, j.id)
	}
	want := "a1 b1 c1 a2 a3"
	if strings.Join(got, " ") != want {
		t.Fatalf("pop order %v, want %s", got, want)
	}
}

func TestTenantQueueRemove(t *testing.T) {
	q := newTenantQueue(4)
	q.push(&job{id: "a1", tenant: "A"})
	q.push(&job{id: "b1", tenant: "B"})
	q.push(&job{id: "a2", tenant: "A"})
	if !q.remove("a1") {
		t.Fatal("remove a1 failed")
	}
	if q.remove("a1") {
		t.Fatal("double remove succeeded")
	}
	var got []string
	for j := q.pop(); j != nil; j = q.pop() {
		got = append(got, j.id)
	}
	if strings.Join(got, " ") != "a2 b1" && strings.Join(got, " ") != "b1 a2" {
		t.Fatalf("pop after remove = %v", got)
	}
	if q.len() != 0 || q.tenants() != 0 {
		t.Fatalf("queue not empty after drain: len=%d tenants=%d", q.len(), q.tenants())
	}
}

func TestCancelQueuedJob(t *testing.T) {
	leakcheck.Check(t)
	started := blockingRunSpec(t)
	s := startServer(t, Config{StateDir: t.TempDir(), JobWorkers: 1, QueueCapacity: 4})
	if _, err := s.Submit("a", dseSpec(), 0); err != nil {
		t.Fatal(err)
	}
	<-started
	st, err := s.Submit("a", dseSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateCancelled)
	if final.State != StateCancelled {
		t.Fatalf("state %s", final.State)
	}
	// Terminal: survives a restart as cancelled, never re-run.
	if _, err := os.Stat(s.jobs[st.ID].statusPath()); err != nil {
		t.Fatalf("cancelled job has no status.json: %v", err)
	}
	if err := s.Cancel(st.ID); err == nil {
		t.Fatal("cancelling a terminal job succeeded")
	}
}

func TestCancelRunningJob(t *testing.T) {
	leakcheck.Check(t)
	started := blockingRunSpec(t)
	s := startServer(t, Config{StateDir: t.TempDir(), JobWorkers: 1})
	st, err := s.Submit("a", dseSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateCancelled)
	if final.Err == "" {
		t.Fatal("cancelled job carries no reason")
	}
}

func TestJobDeadline(t *testing.T) {
	leakcheck.Check(t)
	blockingRunSpec(t)
	s := startServer(t, Config{StateDir: t.TempDir(), JobWorkers: 1})
	st, err := s.Submit("a", dseSpec(), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateFailed)
	if !strings.Contains(final.Err, "deadline") {
		t.Fatalf("deadline failure reads %q", final.Err)
	}
}

func TestDrainInterruptsAndRestartResumesByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	// Gate the real study behind a start signal so the drain reliably
	// catches the job mid-flight.
	entered := make(chan struct{})
	withRunSpec(t, func(spec core.JobSpec, opts core.SweepOptions) (core.Result, error) {
		close(entered)
		return spec.Run(opts)
	})
	s1, err := New(Config{StateDir: dir, JobWorkers: 1, PointWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	st, err := s1.Submit("alice", dseSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := s1.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	after, err := s1.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.State != StateInterrupted && after.State != StateDone {
		t.Fatalf("post-drain state %s", after.State)
	}
	if after.State == StateInterrupted {
		if _, err := os.Stat(s1.jobs[st.ID].statusPath()); err == nil {
			t.Fatal("interrupted job has a terminal status.json")
		}
	}

	// A new server over the same state directory resumes the job off its
	// journal and converges on the exact bytes a direct run produces.
	withRunSpec(t, func(spec core.JobSpec, opts core.SweepOptions) (core.Result, error) {
		return spec.Run(opts)
	})
	s2 := startServer(t, Config{StateDir: dir, JobWorkers: 1, PointWorkers: 1})
	if after.State == StateInterrupted {
		if got := s2.Report().JobsRecovered; got != 1 {
			t.Fatalf("recovered %d jobs, want 1", got)
		}
	}
	final := waitState(t, s2, st.ID, StateDone)
	if after.State == StateInterrupted && !final.Recovered {
		t.Fatal("resumed job not flagged recovered")
	}
	got, err := os.ReadFile(s2.jobs[st.ID].resultPath())
	if err != nil {
		t.Fatal(err)
	}
	if want := directCSV(t, dseSpec()); !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from direct run:\n--- resumed ---\n%s--- direct ---\n%s", got, want)
	}
}

func TestRecoveryRequeuesUnstartedJob(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	// Server 1 admits but never starts its worker pool — the moral
	// equivalent of a kill -9 between admission and execution.
	s1, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit("alice", dseSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s1.baseCancel() // release resources; no goroutines ever ran

	s2 := startServer(t, Config{StateDir: dir, JobWorkers: 1, PointWorkers: 2})
	if got := s2.Report().JobsRecovered; got != 1 {
		t.Fatalf("recovered %d jobs, want 1", got)
	}
	final := waitState(t, s2, st.ID, StateDone)
	if !final.Recovered {
		t.Fatal("recovered job not flagged")
	}
	if got, want := mustRead(t, s2.jobs[st.ID].resultPath()), directCSV(t, dseSpec()); !bytes.Equal(got, want) {
		t.Fatal("recovered job's result differs from direct run")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestRetryAndQuarantineCounters(t *testing.T) {
	leakcheck.Check(t)
	withRunSpec(t, func(spec core.JobSpec, opts core.SweepOptions) (core.Result, error) {
		// Simulate a sweep that retried one point twice and quarantined
		// another, reporting through the real metrics plumbing.
		opts.Metrics.PointDone(core.PointReport{Index: 0, Attempts: 3})
		opts.Metrics.PointDone(core.PointReport{Index: 1, Attempts: 2,
			Err: fmt.Errorf("%w after 2 attempts: boom", core.ErrQuarantined)})
		opts.Metrics.PointDone(core.PointReport{Index: 2, Attempts: 1})
		return nil, fmt.Errorf("%w: point 1", core.ErrPointFailed)
	})
	s := startServer(t, Config{StateDir: t.TempDir(), JobWorkers: 1})
	st, err := s.Submit("a", dseSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateFailed)
	if final.Retries != 3 || final.Quarantined != 1 || final.PointsDone != 2 || final.PointsFailed != 1 {
		t.Fatalf("counters %+v", final)
	}
	rep := s.Report()
	if rep.Retries != 3 || rep.Quarantined != 1 || rep.PointsDone != 2 || rep.PointsFailed != 1 {
		t.Fatalf("service counters %+v", rep)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	s := startServer(t, Config{StateDir: t.TempDir(), JobWorkers: 1, PointWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(http.DefaultClient.CloseIdleConnections)

	// Liveness and readiness.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}

	// Submit.
	body := `{"tenant":"alice","spec":{"kind":"dse","apps":["stream"],"techs":["ddr3-1333"],"widths":[1,2]}}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	waitState(t, s, st.ID, StateDone)

	// Status, list, result, events, metrics.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.State != StateDone || got.PointsDone != 2 {
		t.Fatalf("GET status %+v", got)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 {
		t.Fatalf("list has %d jobs", len(list))
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(csv, []byte("stream")) {
		t.Fatalf("result = %d:\n%s", resp.StatusCode, csv)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type %q", ct)
	}
	events, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := bytes.Split(bytes.TrimSpace(events), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("events streamed %d lines, want 2:\n%s", len(lines), events)
	}
	for _, line := range lines {
		var ent struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(line, &ent); err != nil || ent.Key == "" {
			t.Fatalf("bad event line %q: %v", line, err)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if rep["points_done"].(float64) != 2 {
		t.Fatalf("metrics %+v", rep)
	}
	if _, ok := rep["reports_dropped"]; !ok {
		t.Fatalf("metrics missing reports_dropped: %+v", rep)
	}

	// Per-job metrics: the capped ring retains this job's two reports.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	jm, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job metrics = %d:\n%s", resp.StatusCode, jm)
	}
	var jdoc struct {
		Rows [][]any `json:"rows"`
	}
	if err := json.Unmarshal(jm, &jdoc); err != nil {
		t.Fatalf("job metrics not JSON: %v\n%s", err, jm)
	}
	if len(jdoc.Rows) != 2 {
		t.Fatalf("job metrics rows = %d, want 2:\n%s", len(jdoc.Rows), jm)
	}

	// Unknown job and invalid spec.
	resp, _ = http.Get(ts.URL + "/v1/jobs/nope")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"spec":{"kind":"warp"}}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec = %d", resp.StatusCode)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	leakcheck.Check(t)
	started := blockingRunSpec(t)
	s := startServer(t, Config{StateDir: t.TempDir(), JobWorkers: 1, QueueCapacity: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	submit := func() *http.Response {
		body := `{"tenant":"burst","spec":{"kind":"dse","apps":["stream"],"techs":["ddr3-1333"],"widths":[1]}}`
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1 := submit()
	r1.Body.Close()
	<-started
	r2 := submit()
	r2.Body.Close()
	r3 := submit()
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit = %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestReadyzDuringDrain(t *testing.T) {
	leakcheck.Check(t)
	s, err := New(Config{StateDir: t.TempDir(), JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	// Liveness stays green: the process is healthy, just not admitting.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d", resp.StatusCode)
	}
	// And admission answers 503.
	if _, err := s.Submit("a", dseSpec(), 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v", err)
	}
}

func TestDrainBudgetExceeded(t *testing.T) {
	// A job that ignores its context (the worst case a buggy model can
	// produce) must not let Drain hang: the budget expires and the error
	// maps to the interrupted exit code.
	release := make(chan struct{})
	withRunSpec(t, func(spec core.JobSpec, opts core.SweepOptions) (core.Result, error) {
		<-release
		return nil, nil
	})
	s, err := New(Config{StateDir: t.TempDir(), JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	if _, err := s.Submit("a", dseSpec(), 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the worker enter the job
	derr := s.Drain(50 * time.Millisecond)
	if derr == nil {
		t.Fatal("drain returned despite wedged job")
	}
	if !errors.Is(derr, sim.ErrInterrupted) {
		t.Fatalf("drain-budget error does not wrap sim.ErrInterrupted: %v", derr)
	}
	close(release)
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("second drain after release: %v", err)
	}
}

// TestJobReportRingCapped: a job producing more point reports than the
// per-job ring holds keeps only the most recent ones, and the evictions
// surface as reports_dropped in the service report instead of being
// silently swallowed.
func TestJobReportRingCapped(t *testing.T) {
	leakcheck.Check(t)
	const over = 7
	withRunSpec(t, func(spec core.JobSpec, opts core.SweepOptions) (core.Result, error) {
		for i := 0; i < jobReportCap+over; i++ {
			opts.Metrics.PointDone(core.PointReport{Index: i, Attempts: 1})
		}
		return nil, nil
	})
	s := startServer(t, Config{StateDir: t.TempDir(), JobWorkers: 1})
	st, err := s.Submit("a", dseSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	rep := s.Report()
	if rep.ReportsDropped != over {
		t.Fatalf("reports_dropped = %d, want %d", rep.ReportsDropped, over)
	}
	// The counters still saw every point; only the retained ring is capped.
	if rep.PointsDone != int64(jobReportCap+over) {
		t.Fatalf("points_done = %d, want %d", rep.PointsDone, jobReportCap+over)
	}
	s.mu.Lock()
	retained := len(s.jobs[st.ID].metrics.Points())
	s.mu.Unlock()
	if retained != jobReportCap {
		t.Fatalf("retained %d reports, want %d", retained, jobReportCap)
	}
}
