package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"sst/internal/cache"
	"sst/internal/par"
	"sst/internal/sim"
	"sst/internal/stats"
)

// EngineMetrics is the engine-level slice of a RunReport.
type EngineMetrics struct {
	// Events is the total number of events dispatched.
	Events uint64 `json:"events"`
	// PeakQueue is the pending-queue high-water mark.
	PeakQueue int `json:"peak_queue"`
	// SimSeconds is the simulated clock at snapshot time.
	SimSeconds float64 `json:"sim_seconds"`
	// HostSeconds is host wall time between Attach and Report.
	HostSeconds float64 `json:"host_seconds"`
	// EventsPerSec is the host-rate Events/HostSeconds (0 when unknown).
	EventsPerSec float64 `json:"events_per_sec"`
}

// TraceMetrics is the tracer's slice of a RunReport: how many spans the
// run produced, how many the ring retained, and how many the cap
// overwrote. Dropped > 0 flags a trace that shows only the run's tail.
type TraceMetrics struct {
	Spans    uint64 `json:"spans"`
	Retained uint64 `json:"retained"`
	Dropped  uint64 `json:"dropped"`
}

// RunReport is one run's metrics roll-up. It satisfies core.Result
// structurally, so CLIs render it with the same table/json/csv machinery
// as study results.
type RunReport struct {
	Engine EngineMetrics      `json:"engine"`
	Trace  *TraceMetrics      `json:"trace,omitempty"`
	Links  []LinkStats        `json:"links,omitempty"`
	Par    *par.RunnerMetrics `json:"par,omitempty"`
	// Cache is the sweep result cache's counter snapshot, including each
	// shadow policy's would-be hit rate.
	Cache *cache.Stats `json:"cache,omitempty"`
}

// Table renders the report as one metric/value table.
func (r *RunReport) Table() *stats.Table {
	t := stats.NewTable("Run metrics", "metric", "value")
	t.AddRow("events", r.Engine.Events)
	t.AddRow("peak_queue", r.Engine.PeakQueue)
	t.AddRow("sim_seconds", r.Engine.SimSeconds)
	t.AddRow("host_seconds", r.Engine.HostSeconds)
	t.AddRow("events_per_sec", r.Engine.EventsPerSec)
	if tr := r.Trace; tr != nil {
		t.AddRow("trace.spans", tr.Spans)
		t.AddRow("trace.retained", tr.Retained)
		t.AddRow("trace.dropped", tr.Dropped)
	}
	for _, l := range r.Links {
		t.AddRow("link."+l.Name+".msgs", l.Msgs)
		t.AddRow("link."+l.Name+".bytes", l.Bytes)
		t.AddRow("link."+l.Name+".dropped", l.Dropped)
	}
	if p := r.Par; p != nil {
		t.AddRow("par.mode", p.Mode)
		t.AddRow("par.windows", p.Windows)
		t.AddRow("par.fast_forwards", p.FastForwards)
		t.AddRow("par.lookahead_ps", uint64(p.Lookahead))
		t.AddRow("par.imbalance", p.Imbalance)
		t.AddRow("par.rollbacks", p.Rollbacks)
		t.AddRow("par.replayed_events", p.Replayed)
		t.AddRow("par.fallbacks", p.Fallbacks)
		t.AddRow("par.promotions", p.Promotions)
		for _, rk := range p.Ranks {
			prefix := fmt.Sprintf("par.rank%d.", rk.Rank)
			t.AddRow(prefix+"events", rk.Events)
			t.AddRow(prefix+"windows", rk.Windows)
			t.AddRow(prefix+"idle_windows", rk.IdleWindows)
			t.AddRow(prefix+"skipped_windows", rk.SkippedWindows)
			t.AddRow(prefix+"lookahead_ps", uint64(rk.Lookahead))
			t.AddRow(prefix+"rollbacks", rk.Rollbacks)
		}
	}
	if cs := r.Cache; cs != nil {
		t.AddRow("cache.policy", cs.Policy)
		t.AddRow("cache.entries", cs.Entries)
		t.AddRow("cache.bytes", cs.Bytes)
		t.AddRow("cache.hits", cs.Hits)
		t.AddRow("cache.misses", cs.Misses)
		t.AddRow("cache.hit_rate", cs.HitRate)
		t.AddRow("cache.evictions", cs.Evictions)
		t.AddRow("cache.rejected", cs.Rejected)
		t.AddRow("cache.warm_starts", cs.WarmStarts)
		if cs.Degraded {
			// Storage under the warm-start file failed mid-run; the cache
			// dropped it and served the sweep from memory alone.
			t.AddRow("cache.degraded", true)
			t.AddRow("cache.append_failures", cs.AppendFailures)
		}
		for _, ss := range cs.Shadows {
			prefix := "cache.shadow." + ss.Policy + "."
			t.AddRow(prefix+"hits", ss.Hits)
			t.AddRow(prefix+"misses", ss.Misses)
			t.AddRow(prefix+"hit_rate", ss.HitRate)
		}
	}
	return t
}

// WriteJSON emits the report as one indented JSON object (typed fields,
// not the table rendering).
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits the metric/value table as CSV.
func (r *RunReport) WriteCSV(w io.Writer) error {
	return r.Table().WriteCSV(w)
}

// Collector snapshots a run's metrics: attach it before running, ask for
// the Report after. It owns the host-time clock and the link counters it
// installed.
type Collector struct {
	engine *sim.Engine
	tracer *Tracer
	links  []*LinkStats
	runner *par.Runner
	cache  *cache.Cache
	start  time.Time
	base   uint64 // events already handled at Attach
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Attach points the collector at an engine, instruments the given links
// with traffic counters (composing with any fault interceptors already
// installed) and starts the host-time clock. Call once, before the run.
func (c *Collector) Attach(engine *sim.Engine, links ...*sim.Link) {
	c.engine = engine
	if engine != nil {
		c.base = engine.Handled()
	}
	for _, l := range links {
		c.links = append(c.links, InstrumentLink(l))
	}
	c.start = time.Now()
}

// AttachTracer additionally records the run's span tracer so the report
// carries its ring counters — total spans, retained spans, and how many
// the cap dropped (a trace that only shows the tail says so).
func (c *Collector) AttachTracer(t *Tracer) { c.tracer = t }

// AttachRunner additionally records a parallel runner whose Metrics are
// folded into the report. The runner's rank engines are not instrumented;
// attach per-rank links explicitly if needed.
func (c *Collector) AttachRunner(r *par.Runner) { c.runner = r }

// AttachCache additionally records a sweep result cache whose counter
// snapshot (hit/miss/eviction/bytes plus per-shadow-policy stats) is
// folded into the report.
func (c *Collector) AttachCache(sc *cache.Cache) { c.cache = sc }

// Report snapshots the metrics. Call it after the run completes (it reads
// engine and runner state that must not be mid-flight).
func (c *Collector) Report() *RunReport {
	rep := &RunReport{}
	if c.engine != nil {
		rep.Engine.Events = c.engine.Handled() - c.base
		rep.Engine.PeakQueue = c.engine.PeakPending()
		rep.Engine.SimSeconds = c.engine.Now().Seconds()
	}
	if !c.start.IsZero() {
		rep.Engine.HostSeconds = time.Since(c.start).Seconds()
	}
	if rep.Engine.HostSeconds > 0 {
		rep.Engine.EventsPerSec = float64(rep.Engine.Events) / rep.Engine.HostSeconds
	}
	if t := c.tracer; t != nil {
		rep.Trace = &TraceMetrics{
			Spans:    t.Total(),
			Retained: t.Total() - t.Dropped(),
			Dropped:  t.Dropped(),
		}
	}
	for _, l := range c.links {
		rep.Links = append(rep.Links, *l)
	}
	if c.runner != nil {
		m := c.runner.Metrics()
		rep.Par = &m
	}
	if c.cache != nil {
		s := c.cache.Stats()
		rep.Cache = &s
	}
	return rep
}
