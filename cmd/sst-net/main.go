// Command sst-net runs the network injection-bandwidth degradation study
// (the Fig. 9 experiment): application communication proxies on a simulated
// 3D torus at a series of injection-bandwidth operating points.
//
// Usage:
//
//	sst-net [-nodes 32] [-steps 6] [-fractions 1,0.5,0.25,0.125] [-csv] [-j N]
//
// The study's (proxy app, bandwidth fraction) cells are independent
// simulations; -j sets how many run concurrently (default: GOMAXPROCS).
// Tables are identical at any -j. Ctrl-C drains the cells already running,
// prints whatever completed, and exits nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"sst/internal/core"
)

func main() {
	var (
		nodesFlag = flag.Int("nodes", 32, "system size (torus nodes)")
		stepsFlag = flag.Int("steps", 6, "application timesteps")
		fracFlag  = flag.String("fractions", "1,0.5,0.25,0.125", "injection bandwidth fractions")
		csvFlag   = flag.Bool("csv", false, "emit CSV")
		jFlag     = flag.Int("j", 0, "concurrent sweep workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	core.SetSweepContext(ctx)
	if err := run(*nodesFlag, *stepsFlag, *fracFlag, *csvFlag, *jFlag); err != nil {
		fmt.Fprintln(os.Stderr, "sst-net:", err)
		os.Exit(1)
	}
}

func run(nodes, steps int, fracFlag string, asCSV bool, workers int) error {
	core.SetSweepWorkers(workers)
	cfg := core.NetStudyConfig{Nodes: nodes, Steps: steps}
	for _, f := range strings.Split(fracFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 || v > 1 {
			return fmt.Errorf("bad fraction %q", f)
		}
		cfg.Fractions = append(cfg.Fractions, v)
	}
	// Both studies render whatever cells completed even when some failed
	// or the sweep was interrupted; the error still propagates so the
	// exit code reflects the incomplete run.
	table, _, derr := core.NetDegradationStudy(cfg)
	ptable, _, perr := core.NetPowerStudy(cfg)
	if asCSV {
		table.RenderCSV(os.Stdout)
		ptable.RenderCSV(os.Stdout)
	} else {
		table.Render(os.Stdout)
		fmt.Println()
		ptable.Render(os.Stdout)
	}
	if derr != nil {
		return fmt.Errorf("study incomplete (tables above show completed cells): %w", derr)
	}
	return perr
}
