package fault

import (
	"fmt"
	"reflect"
	"testing"

	"sst/internal/par"
	"sst/internal/sim"
)

// ringNode forwards an incremented token around a ring and folds every
// arrival (value and arrival time) into a checksum, so any divergence in
// payload content, delivery time or delivery order changes its state.
type ringNode struct {
	name      string
	eng       *sim.Engine
	out       *sim.Port
	count     uint64
	corrupted uint64
	sum       uint64
	dead      bool
}

func (n *ringNode) Name() string { return n.name }

func (n *ringNode) recv(payload any) {
	if n.dead {
		return
	}
	v, ok := payload.(int)
	if !ok {
		n.corrupted++ // a Corrupted wrapper: count it, do not forward
		return
	}
	n.count++
	n.sum = n.sum*1099511628211 ^ (uint64(n.eng.Now()) + uint64(int64(v)))
	n.out.Send(v + 1)
}

type nodeState struct {
	Count, Corrupted, Sum uint64
}

// runFaultyRing builds an nnodes ring partitioned over nranks, injects
// identical seeded faults on every link, runs to a fixed horizon and
// returns per-node state plus the per-link forward-direction fault traces.
func runFaultyRing(t *testing.T, nranks, nnodes int, seed uint64) ([]nodeState, []Trace) {
	return runFaultyRingMode(t, nranks, nnodes, seed, par.SyncPairwise)
}

func runFaultyRingMode(t *testing.T, nranks, nnodes int, seed uint64, mode par.SyncMode) ([]nodeState, []Trace) {
	t.Helper()
	r, err := par.NewRunner(nranks)
	if err != nil {
		t.Fatal(err)
	}
	r.SetSyncMode(mode)
	rankOf := func(i int) int { return i * nranks / nnodes }
	nodes := make([]*ringNode, nnodes)
	for i := range nodes {
		nodes[i] = &ringNode{
			name: "n" + string(rune('0'+i%10)) + string(rune('0'+i/10)),
			eng:  r.Rank(rankOf(i)).Engine(),
		}
		r.Rank(rankOf(i)).Add(nodes[i])
	}
	cfg := LinkFaults{
		DropP:    0.02,
		CorruptP: 0.05,
		DelayP:   0.2,
		MaxDelay: 7 * sim.Nanosecond,
		Record:   true,
	}
	injs := make([]*LinkInjector, nnodes)
	for i := range nodes {
		j := (i + 1) % nnodes
		// Link names depend only on the topology, never on the
		// partitioning: they key the fault streams.
		name := "ring" + nodes[i].name
		a, b, err := r.Connect(name, 10*sim.Nanosecond, rankOf(i), rankOf(j))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].out = a
		b.SetHandler(nodes[j].recv)
		a.SetHandler(func(any) {})
		inj, err := InjectLink(a.Link(), seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Each direction's trace clock must be the clock of the rank
		// that sends on it.
		inj.SetClocks(nodes[i].eng.Now, nodes[j].eng.Now)
		injs[i] = inj
	}
	// Several tokens launched from node 0; drops eventually kill them all,
	// at which point the ring goes globally idle.
	r.Rank(0).Engine().Schedule(0, func(any) {
		for k := 0; k < 8; k++ {
			nodes[0].out.Send(k * 1000)
		}
	}, nil)
	if _, err := r.Run(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	states := make([]nodeState, nnodes)
	for i, n := range nodes {
		states[i] = nodeState{Count: n.count, Corrupted: n.corrupted, Sum: n.sum}
	}
	traces := make([]Trace, nnodes)
	for i, inj := range injs {
		traces[i] = inj.TraceA()
	}
	return states, traces
}

// TestFaultDeterminismAcrossRankCounts is the headline determinism
// guarantee: the same fault seed produces a byte-identical failure trace
// and field-identical component state whether the model runs on 1, 2 or 4
// ranks, under either synchronization mode.
func TestFaultDeterminismAcrossRankCounts(t *testing.T) {
	const nnodes = 12
	refStates, refTraces := runFaultyRing(t, 1, nnodes, 2024)
	var total uint64
	for _, tr := range refTraces {
		total += uint64(len(tr))
	}
	if total == 0 {
		t.Fatal("reference run injected no faults; test is vacuous")
	}
	// Traces compare byte-for-byte: a rendered trace includes every field
	// of every record in order, so even a divergence reflect.DeepEqual
	// might normalize away (e.g. nil vs empty slice) fails loudly.
	refBytes := fmt.Sprintf("%#v", refTraces)
	for _, nranks := range []int{2, 4} {
		for _, mode := range []par.SyncMode{par.SyncGlobal, par.SyncPairwise} {
			states, traces := runFaultyRingMode(t, nranks, nnodes, 2024, mode)
			if !reflect.DeepEqual(states, refStates) {
				t.Errorf("nranks=%d sync=%v: node state diverged from sequential run\n got %+v\nwant %+v",
					nranks, mode, states, refStates)
			}
			if got := fmt.Sprintf("%#v", traces); got != refBytes {
				t.Errorf("nranks=%d sync=%v: fault trace diverged from sequential run byte-for-byte",
					nranks, mode)
			}
		}
	}
	// And a different seed must actually change the outcome.
	other, _ := runFaultyRing(t, 1, nnodes, 2025)
	if reflect.DeepEqual(other, refStates) {
		t.Error("different fault seed produced identical results")
	}
}
