// Package stats is gosst's statistics framework: cheap counters,
// accumulators and histograms that components register into a hierarchical
// registry, plus table/CSV renderers for experiment output.
//
// It mirrors SST's statistics subsystem: every component exposes named
// statistics; harnesses enumerate them after a run rather than each model
// inventing its own reporting.
package stats

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Stat is the common interface over every statistic kind.
type Stat interface {
	// Name returns the statistic's leaf name (unique within a component).
	Name() string
	// Value returns the statistic's primary scalar value.
	Value() float64
	// String renders a human-readable summary.
	String() string
	// Reset returns the statistic to its zero state.
	Reset()
}

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	n    uint64
}

// NewCounter creates a named counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds v.
func (c *Counter) Add(v uint64) { c.n += v }

// Count returns the current count.
func (c *Counter) Count() uint64 { return c.n }

func (c *Counter) Name() string   { return c.name }
func (c *Counter) Value() float64 { return float64(c.n) }
func (c *Counter) Reset()         { c.n = 0 }
func (c *Counter) String() string { return fmt.Sprintf("%s=%d", c.name, c.n) }

// Accumulator tracks sum, mean, variance, min and max of a series of
// observations using Welford's online algorithm.
type Accumulator struct {
	name     string
	n        uint64
	mean, m2 float64
	sum      float64
	min, max float64
}

// NewAccumulator creates a named accumulator.
func NewAccumulator(name string) *Accumulator {
	return &Accumulator{name: name, min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one sample.
func (a *Accumulator) Observe(v float64) {
	a.n++
	a.sum += v
	d := v - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (v - a.mean)
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
}

// N returns the number of samples.
func (a *Accumulator) N() uint64 { return a.n }

// Sum returns the sample sum.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance.
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Stddev returns the sample standard deviation.
func (a *Accumulator) Stddev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest sample (+Inf when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (-Inf when empty).
func (a *Accumulator) Max() float64 { return a.max }

func (a *Accumulator) Name() string   { return a.name }
func (a *Accumulator) Value() float64 { return a.Mean() }
func (a *Accumulator) Reset() {
	*a = Accumulator{name: a.name, min: math.Inf(1), max: math.Inf(-1)}
}

func (a *Accumulator) String() string {
	if a.n == 0 {
		return fmt.Sprintf("%s: no samples", a.name)
	}
	return fmt.Sprintf("%s: n=%d mean=%.4g sd=%.3g min=%.4g max=%.4g",
		a.name, a.n, a.Mean(), a.Stddev(), a.min, a.max)
}

// Histogram is a power-of-two bucketed histogram: bucket i counts samples
// in [2^(i-1), 2^i), with bucket 0 counting zeros and ones. This matches
// the latency distributions architectural simulators care about (wide
// dynamic range, coarse resolution acceptable).
type Histogram struct {
	name    string
	buckets [65]uint64
	acc     Accumulator
}

// NewHistogram creates a named log2 histogram.
func NewHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	h.acc = *NewAccumulator(name)
	return h
}

// Observe records one non-negative sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	h.acc.Observe(float64(v))
}

// N returns the number of samples.
func (h *Histogram) N() uint64 { return h.acc.n }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 { return h.acc.Mean() }

// Max returns the largest sample.
func (h *Histogram) Max() float64 { return h.acc.Max() }

// Bucket returns the count in log2 bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Percentile returns an upper bound on the p-th percentile (0 < p <= 100)
// at bucket resolution.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.acc.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.acc.n)))
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			if i == 0 {
				return 1
			}
			return 1<<uint(i) - 1
		}
	}
	return math.MaxUint64
}

func (h *Histogram) Name() string   { return h.name }
func (h *Histogram) Value() float64 { return h.Mean() }
func (h *Histogram) Reset() {
	h.buckets = [65]uint64{}
	h.acc.Reset()
}

func (h *Histogram) String() string {
	if h.acc.n == 0 {
		return fmt.Sprintf("%s: no samples", h.name)
	}
	return fmt.Sprintf("%s: n=%d mean=%.4g p50<=%d p99<=%d max=%.4g",
		h.name, h.acc.n, h.Mean(), h.Percentile(50), h.Percentile(99), h.acc.Max())
}

// Gauge is a point-in-time value (e.g. occupancy) with a peak watermark.
type Gauge struct {
	name      string
	cur, peak int64
}

// NewGauge creates a named gauge.
func NewGauge(name string) *Gauge { return &Gauge{name: name} }

// Add moves the gauge by delta, tracking the high-water mark.
func (g *Gauge) Add(delta int64) {
	g.cur += delta
	if g.cur > g.peak {
		g.peak = g.cur
	}
}

// Set assigns the gauge directly.
func (g *Gauge) Set(v int64) {
	g.cur = v
	if v > g.peak {
		g.peak = v
	}
}

// Cur returns the current value; Peak the high-water mark.
func (g *Gauge) Cur() int64  { return g.cur }
func (g *Gauge) Peak() int64 { return g.peak }

func (g *Gauge) Name() string   { return g.name }
func (g *Gauge) Value() float64 { return float64(g.cur) }
func (g *Gauge) Reset()         { g.cur, g.peak = 0, 0 }
func (g *Gauge) String() string {
	return fmt.Sprintf("%s=%d (peak %d)", g.name, g.cur, g.peak)
}

// Registry is a hierarchy of statistics, keyed "component.stat". Components
// create a Scope per instance and register their stats there.
type Registry struct {
	stats map[string]Stat
	order []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{stats: make(map[string]Stat)} }

// Scope returns a registration helper that prefixes names with prefix+".".
func (r *Registry) Scope(prefix string) *Scope { return &Scope{r: r, prefix: prefix} }

// Register adds a statistic under the given full name. Duplicate names are
// a wiring bug and panic.
func (r *Registry) Register(full string, s Stat) {
	if _, dup := r.stats[full]; dup {
		panic(fmt.Sprintf("stats: duplicate statistic %q", full))
	}
	r.stats[full] = s
	r.order = append(r.order, full)
}

// Get returns the named statistic, or nil.
func (r *Registry) Get(full string) Stat { return r.stats[full] }

// Counter returns the named statistic as a *Counter, or nil.
func (r *Registry) Counter(full string) *Counter {
	c, _ := r.stats[full].(*Counter)
	return c
}

// Names returns all registered names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.stats))
	for k := range r.stats {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Match returns the names with the given prefix, sorted.
func (r *Registry) Match(prefix string) []string {
	var out []string
	for k := range r.stats {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// ResetAll zeroes every statistic.
func (r *Registry) ResetAll() {
	for _, s := range r.stats {
		s.Reset()
	}
}

// Dump writes "name value" lines for every statistic, sorted by name.
func (r *Registry) Dump(w io.Writer) {
	for _, k := range r.Names() {
		fmt.Fprintf(w, "%-48s %s\n", k, r.stats[k].String())
	}
}

// WriteCSV emits name,value rows sorted by name.
func (r *Registry) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "stat,value")
	for _, k := range r.Names() {
		fmt.Fprintf(w, "%s,%g\n", k, r.stats[k].Value())
	}
}

// Scope registers statistics under a component prefix.
type Scope struct {
	r      *Registry
	prefix string
}

// Prefix returns the scope's prefix.
func (s *Scope) Prefix() string { return s.prefix }

// Counter creates and registers a counter named prefix.name.
func (s *Scope) Counter(name string) *Counter {
	c := NewCounter(name)
	s.r.Register(s.prefix+"."+name, c)
	return c
}

// Accumulator creates and registers an accumulator named prefix.name.
func (s *Scope) Accumulator(name string) *Accumulator {
	a := NewAccumulator(name)
	s.r.Register(s.prefix+"."+name, a)
	return a
}

// Histogram creates and registers a histogram named prefix.name.
func (s *Scope) Histogram(name string) *Histogram {
	h := NewHistogram(name)
	s.r.Register(s.prefix+"."+name, h)
	return h
}

// Gauge creates and registers a gauge named prefix.name.
func (s *Scope) Gauge(name string) *Gauge {
	g := NewGauge(name)
	s.r.Register(s.prefix+"."+name, g)
	return g
}

// Sub returns a nested scope prefix.name.
func (s *Scope) Sub(name string) *Scope {
	return &Scope{r: s.r, prefix: s.prefix + "." + name}
}
