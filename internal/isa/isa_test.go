package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	fn := func(opRaw, rd, rs1, rs2 uint8, immRaw int32) bool {
		op := Opcode(opRaw) % numOpcodes
		in := Instr{Op: op, Rd: rd & 31, Rs1: rs1 & 31, Rs2: rs2 & 31}
		switch op.Format() {
		case FormatNone:
			in.Rd, in.Rs1, in.Rs2 = 0, 0, 0
		case FormatR:
			in.Imm = 0
		case FormatJ:
			in.Rs1, in.Rs2 = 0, 0
			in.Imm = immRaw % (1 << 20)
		case FormatBranch:
			in.Rd = 0
			in.Imm = int32(int16(immRaw))
		default:
			in.Rs2 = 0
			in.Imm = int32(int16(immRaw))
		}
		got, err := Decode(in.Word())
		return err == nil && got == in
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if _, err := Decode(uint32(numOpcodes) << 26); err == nil {
		t.Fatal("invalid opcode decoded")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: NOP}, "nop"},
		{Instr{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: ADDI, Rd: 1, Rs1: 2, Imm: -5}, "addi r1, r2, -5"},
		{Instr{Op: LD, Rd: 4, Rs1: 2, Imm: 16}, "ld r4, 16(r2)"},
		{Instr{Op: BEQ, Rs1: 1, Rs2: 2, Imm: -3}, "beq r1, r2, -3"},
		{Instr{Op: JAL, Rd: 1, Imm: 100}, "jal r1, 100"},
		{Instr{Op: LUI, Rd: 9, Imm: 77}, "lui r9, 77"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string, max uint64) *Machine {
	t.Helper()
	m := NewMachine(mustAssemble(t, src))
	if _, err := m.Run(max); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted() {
		t.Fatalf("program did not halt in %d instructions", max)
	}
	return m
}

func TestAssembleArithmetic(t *testing.T) {
	m := run(t, `
		addi r1, r0, 6
		addi r2, r0, 7
		mul  r3, r1, r2
		sub  r4, r3, r1   # 36
		div  r5, r3, r2   # 6
		rem  r6, r3, r1   # 0
		halt
	`, 100)
	if m.Reg(3) != 42 || m.Reg(4) != 36 || m.Reg(5) != 6 || m.Reg(6) != 0 {
		t.Fatalf("regs: r3=%d r4=%d r5=%d r6=%d", m.Reg(3), m.Reg(4), m.Reg(5), m.Reg(6))
	}
}

func TestAssembleLoopSum(t *testing.T) {
	// Sum 1..10 with a backward branch.
	m := run(t, `
		addi r1, r0, 0    # sum
		addi r2, r0, 1    # i
		addi r3, r0, 11   # limit
	loop:
		add  r1, r1, r2
		addi r2, r2, 1
		blt  r2, r3, loop
		halt
	`, 1000)
	if m.Reg(1) != 55 {
		t.Fatalf("sum = %d, want 55", m.Reg(1))
	}
}

func TestAssembleMemory(t *testing.T) {
	m := run(t, `
		li   r1, 0x1000
		addi r2, r0, 1234
		sd   r2, 0(r1)
		ld   r3, 0(r1)
		sw   r2, 8(r1)
		lw   r4, 8(r1)
		addi r5, r0, -1
		sb   r5, 16(r1)
		lb   r6, 16(r1)
		halt
	`, 100)
	if m.Reg(3) != 1234 || m.Reg(4) != 1234 {
		t.Fatalf("r3=%d r4=%d", m.Reg(3), m.Reg(4))
	}
	if int64(m.Reg(6)) != -1 {
		t.Fatalf("lb sign extension: r6=%d", int64(m.Reg(6)))
	}
}

func TestAssembleDataSection(t *testing.T) {
	m := run(t, `
		li  r1, vec
		ld  r2, 0(r1)
		ld  r3, 8(r1)
		add r4, r2, r3
		halt
		.word vec, 40, 2
	`, 100)
	if m.Reg(4) != 42 {
		t.Fatalf("r4 = %d, want 42", m.Reg(4))
	}
}

func TestAssembleSpace(t *testing.T) {
	p := mustAssemble(t, `
		halt
		.space buf, 64
		.word  after, 7
	`)
	if p.Labels["after"]-p.Labels["buf"] != 64 {
		t.Fatalf("space layout: buf=%#x after=%#x", p.Labels["buf"], p.Labels["after"])
	}
}

func TestAssembleFloat(t *testing.T) {
	m := run(t, `
		addi r1, r0, 3
		cvtif r1, r1, r0
		addi r2, r0, 4
		cvtif r2, r2, r0
		fmul r3, r1, r2     # 12.0
		fadd r4, r3, r1     # 15.0
		fdiv r5, r4, r2     # 3.75
		fslt r6, r1, r2     # 1
		cvtfi r7, r3, r0    # 12
		halt
	`, 100)
	if got := m.FReg(5); got != 3.75 {
		t.Fatalf("fdiv: %v", got)
	}
	if m.Reg(6) != 1 || m.Reg(7) != 12 {
		t.Fatalf("fslt/cvtfi: r6=%d r7=%d", m.Reg(6), m.Reg(7))
	}
}

func TestAssembleFMADD(t *testing.T) {
	m := run(t, `
		addi r1, r0, 2
		cvtif r1, r1, r0
		addi r2, r0, 3
		cvtif r2, r2, r0
		addi r3, r0, 10
		cvtif r3, r3, r0
		fmadd r3, r1, r2   # 10 + 2*3 = 16
		halt
	`, 100)
	if got := m.FReg(3); got != 16 {
		t.Fatalf("fmadd = %v, want 16", got)
	}
}

func TestPseudoInstructions(t *testing.T) {
	m := run(t, `
		li  r1, 0x12345678
		mv  r2, r1
		not r3, r0
		neg r4, r1
		b   over
		addi r5, r0, 99   # skipped
	over:
		halt
	`, 100)
	if m.Reg(1) != 0x12345678 || m.Reg(2) != m.Reg(1) {
		t.Fatalf("li/mv: r1=%#x r2=%#x", m.Reg(1), m.Reg(2))
	}
	if m.Reg(3) != ^uint64(0) {
		t.Fatalf("not: %#x", m.Reg(3))
	}
	if int64(m.Reg(4)) != -0x12345678 {
		t.Fatalf("neg: %d", int64(m.Reg(4)))
	}
	if m.Reg(5) != 0 {
		t.Fatal("b did not skip")
	}
}

func TestLiWide(t *testing.T) {
	m := run(t, `
		li r1, 0x3fffc0000000   # 46-bit value needing the 4-word form
		li r2, -5
		halt
	`, 100)
	if m.Reg(1) != 0x3fffc0000000 {
		t.Fatalf("wide li = %#x", m.Reg(1))
	}
	if int64(m.Reg(2)) != -5 {
		t.Fatalf("negative li = %d", int64(m.Reg(2)))
	}
}

func TestJalAndJalr(t *testing.T) {
	m := run(t, `
		jal  ra, func
		addi r5, r0, 1
		halt
	func:
		addi r6, r0, 2
		jalr r0, ra, 0
	`, 100)
	if m.Reg(5) != 1 || m.Reg(6) != 2 {
		t.Fatalf("call/return: r5=%d r6=%d", m.Reg(5), m.Reg(6))
	}
}

func TestR0IsZero(t *testing.T) {
	m := run(t, `
		addi r0, r0, 5
		add  r1, r0, r0
		halt
	`, 10)
	if m.Reg(0) != 0 || m.Reg(1) != 0 {
		t.Fatalf("r0 = %d, r1 = %d", m.Reg(0), m.Reg(1))
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2, r3",
		"add r1, r2",
		"add r1, r2, r99",
		"addi r1, r0, 99999",
		"beq r1, r2, nowhere",
		"dup: nop\ndup: nop",
		"ld r1, 5",              // absolute beyond labels is fine; bad: not parseable
		".word onlylabel",       // missing value
		".space b, -1",          // bad size
		"li r1, 0x800000000000", // out of li range
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			// "ld r1, 5" is actually legal absolute addressing;
			// skip it.
			if strings.HasPrefix(src, "ld") {
				continue
			}
			t.Errorf("assembled bad source %q", src)
		}
	}
}

func TestDisassemble(t *testing.T) {
	p := mustAssemble(t, "addi r1, r0, 4\nhalt")
	text, err := p.Disassemble()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "addi r1, r0, 4") || !strings.Contains(text, "halt") {
		t.Fatalf("disassembly:\n%s", text)
	}
}

func TestMachineStepInfo(t *testing.T) {
	m := NewMachine(mustAssemble(t, `
		li  r1, 0x2000
		ld  r2, 8(r1)
		beq r0, r0, target
		nop
	target:
		halt
	`))
	var sawLoad, sawBranch bool
	for !m.Halted() {
		info, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if info.NextPC != m.PC {
			t.Fatal("NextPC mismatch")
		}
		switch info.Instr.Op {
		case LD:
			sawLoad = true
			if info.MemAddr != 0x2008 || info.MemSize != 8 {
				t.Fatalf("load info: addr=%#x size=%d", info.MemAddr, info.MemSize)
			}
		case BEQ:
			sawBranch = true
			if !info.Taken {
				t.Fatal("taken branch not flagged")
			}
		}
	}
	if !sawLoad || !sawBranch {
		t.Fatalf("missing step info: load=%v branch=%v", sawLoad, sawBranch)
	}
}

func TestMachineHaltIdempotent(t *testing.T) {
	m := NewMachine(mustAssemble(t, "halt"))
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	ir := m.Instret
	for i := 0; i < 3; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Instret != ir {
		t.Fatal("halted machine kept retiring")
	}
}

func TestMachineFetchOutsideCode(t *testing.T) {
	m := NewMachine(mustAssemble(t, "jalr r0, r0, 4096"))
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err == nil {
		t.Fatal("fetch from data space succeeded")
	}
}

func TestMachineMemoryRoundTrip(t *testing.T) {
	fn := func(addr uint32, val uint64, szRaw uint8) bool {
		m := NewMachine(&Program{})
		sizes := []int{1, 4, 8}
		size := sizes[int(szRaw)%3]
		a := uint64(addr)
		m.Store(a, size, val)
		got := m.Load(a, size)
		mask := uint64(1)<<(8*uint(size)) - 1
		if size == 8 {
			mask = ^uint64(0)
		}
		return got == val&mask
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMachineCrossPageAccess(t *testing.T) {
	m := NewMachine(&Program{})
	addr := uint64(1<<pageBits - 3) // straddles a page boundary
	m.Store(addr, 8, 0x1122334455667788)
	if got := m.Load(addr, 8); got != 0x1122334455667788 {
		t.Fatalf("cross-page load = %#x", got)
	}
}

func TestFloatHelpers(t *testing.T) {
	m := NewMachine(&Program{})
	m.StoreFloat(64, math.Pi)
	if got := m.LoadFloat(64); got != math.Pi {
		t.Fatalf("float round trip = %v", got)
	}
	m.SetFReg(7, 2.5)
	if m.FReg(7) != 2.5 {
		t.Fatal("FReg round trip")
	}
}

func TestDivRemByZero(t *testing.T) {
	m := run(t, `
		addi r1, r0, 9
		div  r2, r1, r0
		rem  r3, r1, r0
		halt
	`, 10)
	if m.Reg(2) != ^uint64(0) || m.Reg(3) != 9 {
		t.Fatalf("div/rem by zero: r2=%#x r3=%d", m.Reg(2), m.Reg(3))
	}
}

func TestShifts(t *testing.T) {
	m := run(t, `
		addi r1, r0, -8
		srai r2, r1, 1     # -4
		srli r3, r1, 60    # high bits
		slli r4, r1, 1     # -16
		halt
	`, 10)
	if int64(m.Reg(2)) != -4 {
		t.Fatalf("srai = %d", int64(m.Reg(2)))
	}
	if m.Reg(3) != 0xf {
		t.Fatalf("srli = %#x", m.Reg(3))
	}
	if int64(m.Reg(4)) != -16 {
		t.Fatalf("slli = %d", int64(m.Reg(4)))
	}
}

func BenchmarkMachineStep(b *testing.B) {
	p, err := Assemble(`
	loop:
		addi r1, r1, 1
		and  r2, r1, r3
		add  r4, r4, r2
		b    loop
	`)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMachine(p)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAssembleDisassembleFixedPoint: disassembly of label-free code is
// itself valid assembly producing identical machine words.
func TestAssembleDisassembleFixedPoint(t *testing.T) {
	src := `
		addi r1, r0, 5
		lui  r2, 18
		ori  r2, r2, 52
		ld   r3, 8(r2)
		sd   r3, 16(r2)
		fadd r4, r3, r1
		beq  r1, r2, 2
		jal  r5, -1
		nop
		halt
	`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	text, err := p1.Disassemble()
	if err != nil {
		t.Fatal(err)
	}
	// Strip the "addr:" prefixes to recover plain assembly.
	var sb strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, ": "); i >= 0 {
			sb.WriteString(line[i+2:])
		}
		sb.WriteString("\n")
	}
	p2, err := Assemble(sb.String())
	if err != nil {
		t.Fatalf("disassembly not reassemblable: %v\n%s", err, sb.String())
	}
	if len(p1.Code) != len(p2.Code) {
		t.Fatalf("code length changed: %d vs %d", len(p1.Code), len(p2.Code))
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Fatalf("word %d: %#x vs %#x", i, p1.Code[i], p2.Code[i])
		}
	}
}
