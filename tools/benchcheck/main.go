// benchcheck gates the perf-critical benchmarks against a committed
// baseline. It reads `go test -bench -benchmem` output on stdin and
// compares each benchmark to BENCH_baseline.json:
//
//	go test -run='^$' -bench='EngineHotLoop$' -benchmem ./internal/sim |
//	    go run ./tools/benchcheck -baseline BENCH_baseline.json
//
// allocs/op and B/op are near-deterministic: they may not exceed the
// baseline by more than 1% — which keeps a zero-alloc baseline exactly
// zero, the real contract — with the 1% absorbing per-iteration
// amortization jitter on allocation-heavy benchmarks. ns/op is host-
// dependent, so it only fails beyond the per-entry tolerance (default
// -tol); a slower CI box should regenerate with -update rather than widen
// tolerances.
//
// Entries may additionally carry absolute hard ceilings (max_bytes_per_op,
// max_allocs_per_op), set with repeated name=value pairs in -max-bytes and
// -max-allocs. A ceiling is the memory-discipline contract for the resident
// sweep service: the run fails the moment B/op or allocs/op exceeds it,
// however the relative baseline has drifted, and -update refuses to commit
// a baseline that is itself above a ceiling.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Tolerance is the allowed fractional ns/op regression for this entry
	// (0.02 = 2%). Zero means use the -tol flag's default.
	Tolerance float64 `json:"tolerance,omitempty"`
	// MaxBytesPerOp and MaxAllocsPerOp are absolute hard ceilings — the
	// memory-discipline contract, set with -max-bytes/-max-allocs. When
	// non-zero, a run above the ceiling fails no matter how the relative
	// baseline has drifted, and -update refuses to commit a baseline
	// above it. Preserved across -update like Tolerance.
	MaxBytesPerOp  float64 `json:"max_bytes_per_op,omitempty"`
	MaxAllocsPerOp float64 `json:"max_allocs_per_op,omitempty"`
}

type baseline struct {
	// Note records how to regenerate the file.
	Note    string           `json:"note"`
	Entries map[string]entry `json:"entries"`
}

// benchLine matches e.g.
//
//	BenchmarkEngineHotLoop-8   12345678   85.3 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// parse reads `go test -bench` output, echoing every line to echo (the
// raw output passes through for the log) and collecting the benchmark
// measurements by name.
func parse(r io.Reader, echo io.Writer) map[string]entry {
	got := map[string]entry{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		f := func(s string) float64 {
			v, _ := strconv.ParseFloat(s, 64)
			return v
		}
		got[m[1]] = entry{NsPerOp: f(m[2]), BytesPerOp: f(m[3]), AllocsPerOp: f(m[4])}
	}
	return got
}

// compare applies the gate: every baseline entry must be present in the
// run (a missing benchmark fails — a renamed or silently-skipped benchmark
// must not pass the gate by absence), allocs/op and B/op may not exceed
// the baseline by more than 1%, and ns/op may not regress beyond the
// entry's tolerance (defTol when the entry sets none). Verdict lines go
// to w; the return value reports whether any entry failed.
func compare(base baseline, got map[string]entry, defTol float64, w io.Writer) bool {
	names := make([]string, 0, len(base.Entries))
	for name := range base.Entries {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		want := base.Entries[name]
		have, ok := got[name]
		if !ok {
			fmt.Fprintf(w, "benchcheck: FAIL %s: in baseline but not run\n", name)
			failed = true
			continue
		}
		if have.AllocsPerOp > want.AllocsPerOp*1.01 {
			fmt.Fprintf(w, "benchcheck: FAIL %s: %.0f allocs/op, baseline %.0f\n",
				name, have.AllocsPerOp, want.AllocsPerOp)
			failed = true
		}
		if have.BytesPerOp > want.BytesPerOp*1.01 {
			fmt.Fprintf(w, "benchcheck: FAIL %s: %.0f B/op, baseline %.0f\n",
				name, have.BytesPerOp, want.BytesPerOp)
			failed = true
		}
		if want.MaxAllocsPerOp > 0 && have.AllocsPerOp > want.MaxAllocsPerOp {
			fmt.Fprintf(w, "benchcheck: FAIL %s: %.0f allocs/op exceeds hard ceiling %.0f\n",
				name, have.AllocsPerOp, want.MaxAllocsPerOp)
			failed = true
		}
		if want.MaxBytesPerOp > 0 && have.BytesPerOp > want.MaxBytesPerOp {
			fmt.Fprintf(w, "benchcheck: FAIL %s: %.0f B/op exceeds hard ceiling %.0f\n",
				name, have.BytesPerOp, want.MaxBytesPerOp)
			failed = true
		}
		t := want.Tolerance
		if t == 0 {
			t = defTol
		}
		if want.NsPerOp > 0 {
			delta := have.NsPerOp/want.NsPerOp - 1
			mark := "ok  "
			if delta > t {
				mark = "FAIL"
				failed = true
			}
			fmt.Fprintf(w, "benchcheck: %s %s: %.1f ns/op vs baseline %.1f (%+.1f%%, tol %.0f%%)\n",
				mark, name, have.NsPerOp, want.NsPerOp, 100*delta, 100*t)
		}
	}
	for name := range got {
		if _, ok := base.Entries[name]; !ok {
			fmt.Fprintf(w, "benchcheck: note: %s not in baseline (add with -update)\n", name)
		}
	}
	return failed
}

// parseCeilings parses a -max-bytes/-max-allocs value: comma-separated
// name=ceiling pairs. Benchmark names themselves contain '='
// (BenchmarkSweepWorkers/workers=4), so the ceiling starts after the
// LAST '=' of each pair.
func parseCeilings(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if s == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		i := strings.LastIndex(pair, "=")
		if i <= 0 || i == len(pair)-1 {
			return nil, fmt.Errorf("bad ceiling %q, want name=value", pair)
		}
		v, err := strconv.ParseFloat(pair[i+1:], 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad ceiling value in %q", pair)
		}
		out[pair[:i]] = v
	}
	return out, nil
}

// applyCeilings writes the flag-supplied hard ceilings into entries,
// overriding any committed ones. A ceiling naming a benchmark that is
// not in entries is an error: a typo must not silently gate nothing.
func applyCeilings(entries map[string]entry, maxBytes, maxAllocs map[string]float64) error {
	for name, v := range maxBytes {
		e, ok := entries[name]
		if !ok {
			return fmt.Errorf("-max-bytes names unknown benchmark %q", name)
		}
		e.MaxBytesPerOp = v
		entries[name] = e
	}
	for name, v := range maxAllocs {
		e, ok := entries[name]
		if !ok {
			return fmt.Errorf("-max-allocs names unknown benchmark %q", name)
		}
		e.MaxAllocsPerOp = v
		entries[name] = e
	}
	return nil
}

// checkCeilings rejects a baseline whose measured values already sit
// above their own ceilings — `-update` must never commit a baseline
// the very next `bench` run would fail.
func checkCeilings(entries map[string]entry, w io.Writer) bool {
	bad := false
	for name, e := range entries {
		if e.MaxBytesPerOp > 0 && e.BytesPerOp > e.MaxBytesPerOp {
			fmt.Fprintf(w, "benchcheck: refusing baseline: %s measured %.0f B/op above its hard ceiling %.0f\n",
				name, e.BytesPerOp, e.MaxBytesPerOp)
			bad = true
		}
		if e.MaxAllocsPerOp > 0 && e.AllocsPerOp > e.MaxAllocsPerOp {
			fmt.Fprintf(w, "benchcheck: refusing baseline: %s measured %.0f allocs/op above its hard ceiling %.0f\n",
				name, e.AllocsPerOp, e.MaxAllocsPerOp)
			bad = true
		}
	}
	return bad
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	tol := flag.Float64("tol", 0.25, "default allowed fractional ns/op regression")
	maxBytesFlag := flag.String("max-bytes", "",
		"comma-separated name=ceiling pairs: absolute B/op hard ceilings (committed by -update)")
	maxAllocsFlag := flag.String("max-allocs", "",
		"comma-separated name=ceiling pairs: absolute allocs/op hard ceilings (committed by -update)")
	flag.Parse()

	maxBytes, err := parseCeilings(*maxBytesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck: -max-bytes:", err)
		os.Exit(1)
	}
	maxAllocs, err := parseCeilings(*maxAllocsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck: -max-allocs:", err)
		os.Exit(1)
	}

	got := parse(os.Stdin, os.Stdout)
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *update {
		// Preserve per-entry tolerances and hard ceilings across
		// regeneration; flag-supplied ceilings override committed ones.
		var old baseline
		if data, err := os.ReadFile(*baselinePath); err == nil {
			_ = json.Unmarshal(data, &old)
		}
		out := baseline{
			Note:    "regenerate with: make bench-baseline",
			Entries: got,
		}
		for name, e := range out.Entries {
			if prev, ok := old.Entries[name]; ok {
				e.Tolerance = prev.Tolerance
				e.MaxBytesPerOp = prev.MaxBytesPerOp
				e.MaxAllocsPerOp = prev.MaxAllocsPerOp
				out.Entries[name] = e
			}
		}
		if err := applyCeilings(out.Entries, maxBytes, maxAllocs); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		if checkCeilings(out.Entries, os.Stderr) {
			os.Exit(1)
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		fmt.Printf("benchcheck: wrote %s (%d entries)\n", *baselinePath, len(got))
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v (run with -update to create)\n", err)
		os.Exit(1)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: bad baseline: %v\n", err)
		os.Exit(1)
	}
	if err := applyCeilings(base.Entries, maxBytes, maxAllocs); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}

	if compare(base, got, *tol, os.Stderr) {
		os.Exit(1)
	}
}
