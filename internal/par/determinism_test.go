package par

import (
	"math/rand"
	"testing"

	"sst/internal/sim"
)

// The randomized-topology determinism harness: property-based tests that
// generate seeded random machine graphs (random fan-outs, latencies, think
// times, and deterministic node-kill "fault injections"), partition them
// over 1/2/4/8 ranks, run them under all four sync modes — conservative
// global and pairwise, optimistic speculative and adaptive — and assert
// the results are bit-identical to the sequential reference. Every random
// draw happens before partitioning and depends only on the seed, never on
// the rank count, the sync mode, or host time — so a failure is always
// reproducible from its seed.

// detToken is the message circulated through a generated topology.
type detToken struct {
	id   uint64
	hops int
}

// detNode folds every arrival into order-insensitive signatures (count,
// commutative checksum over (time, hops, id), last arrival time) and
// forwards the token on an out port chosen from the token's own content,
// until its hop budget runs out or the node's kill time has passed. Both
// the checksum and the routing are deliberately insensitive to the
// relative order of same-timestamp arrivals from different sources: that
// order is the one thing conservative PDES does not define across
// partitionings (it falls to engine insertion order), so a model that
// depended on it would pin an accident of partitioning rather than a
// property of the simulation.
type detNode struct {
	name   string
	eng    *sim.Engine
	outs   []*sim.Port
	think  sim.Time
	killAt sim.Time
	count  uint64
	sum    uint64
	last   sim.Time
}

func (n *detNode) Name() string { return n.name }

// mix64 is the splitmix64 finalizer: a cheap bijective hash so the XOR
// fold reacts to any changed (time, hops, id) triple.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (n *detNode) recv(p any) {
	tok := p.(detToken)
	now := n.eng.Now()
	n.count++
	n.sum ^= mix64(uint64(now)*0x9e3779b97f4a7c15 + uint64(tok.hops)<<32 + tok.id)
	if now > n.last {
		n.last = now
	}
	if now >= n.killAt || tok.hops <= 0 || len(n.outs) == 0 {
		return
	}
	out := n.outs[int(mix64(tok.id+uint64(tok.hops))%uint64(len(n.outs)))]
	out.SendDelayed(n.think, detToken{id: tok.id, hops: tok.hops - 1})
}

// nodeSig is one node's result signature.
type nodeSig struct {
	Count uint64
	Sum   uint64
	Last  sim.Time
}

// detSig is one run's full signature: total events the runner dispatched
// plus every node's arrival signature.
type detSig struct {
	Total uint64
	Nodes []nodeSig
}

// detInjection seeds one token into the generated machine.
type detInjection struct {
	node int
	at   sim.Time
	hops int
	id   uint64
}

// detTopo is a generated machine description. Building it consumes the
// seed's whole random stream up front, so construction per (nranks, mode)
// never touches the RNG again.
type detTopo struct {
	nodes  int
	rings  []sim.Time // ring link i→i+1 latency
	chords [][3]int   // a, b, latency in ns
	think  []sim.Time
	kill   []sim.Time
	inject []detInjection
}

// genDetTopo draws a random topology: a ring backbone (so every rank pair
// is transitively reachable and the lookahead matrix is dense) plus random
// chords with independent latencies, per-node think times, node kill times
// on ~25% of nodes, and a handful of token injections.
func genDetTopo(seed int64) detTopo {
	rng := rand.New(rand.NewSource(seed))
	n := 6 + rng.Intn(10)
	tp := detTopo{nodes: n}
	for i := 0; i < n; i++ {
		tp.rings = append(tp.rings, sim.Time(1+rng.Intn(50))*sim.Nanosecond)
	}
	for c := rng.Intn(n + 1); c > 0; c-- {
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		tp.chords = append(tp.chords, [3]int{a, b, 1 + rng.Intn(80)})
	}
	for i := 0; i < n; i++ {
		tp.think = append(tp.think, sim.Time(rng.Intn(5))*sim.Nanosecond)
	}
	for i := 0; i < n; i++ {
		kill := sim.TimeInfinity
		if rng.Float64() < 0.25 {
			kill = sim.Time(rng.Intn(3000)) * sim.Nanosecond
		}
		tp.kill = append(tp.kill, kill)
	}
	for m := 2 + rng.Intn(6); m > 0; m-- {
		tp.inject = append(tp.inject, detInjection{
			node: rng.Intn(n),
			at:   sim.Time(rng.Intn(100)) * sim.Nanosecond,
			hops: 40 + rng.Intn(160),
			id:   rng.Uint64(),
		})
	}
	return tp
}

// buildDetTopo instantiates a generated topology on a runner, node i on
// rank i mod nranks, with injections scheduled as raw engine events.
func buildDetTopo(t *testing.T, r *Runner, tp detTopo) []*detNode {
	t.Helper()
	nodes := buildDetNodes(t, r, tp)
	for _, inj := range tp.inject {
		inj := inj
		node := nodes[inj.node]
		node.eng.ScheduleAt(inj.at, sim.PrioLink, func(any) {
			node.recv(detToken{id: inj.id, hops: inj.hops})
		}, nil)
	}
	return nodes
}

// buildDetNodes instantiates the nodes and links of a generated topology
// without scheduling its injections; the snapshot tests route those through
// checkpoint-owned event sets instead (see snapshot_test.go).
func buildDetNodes(t *testing.T, r *Runner, tp detTopo) []*detNode {
	t.Helper()
	nranks := r.NumRanks()
	rankOf := func(i int) int { return i % nranks }
	nodes := make([]*detNode, tp.nodes)
	for i := range nodes {
		nodes[i] = &detNode{
			name:   "det" + string(rune('a'+i)),
			eng:    r.Rank(rankOf(i)).Engine(),
			think:  tp.think[i],
			killAt: tp.kill[i],
		}
		r.Rank(rankOf(i)).Add(nodes[i])
	}
	connect := func(name string, a, b int, lat sim.Time) {
		pa, pb, err := r.Connect(name, lat, rankOf(a), rankOf(b))
		if err != nil {
			t.Fatal(err)
		}
		nodes[a].outs = append(nodes[a].outs, pa)
		pb.SetHandler(nodes[b].recv)
		pa.SetHandler(func(any) {})
	}
	for i, lat := range tp.rings {
		connect("ring"+nodes[i].name, i, (i+1)%tp.nodes, lat)
	}
	for k, ch := range tp.chords {
		connect("chord"+string(rune('a'+k)), ch[0], ch[1], sim.Time(ch[2])*sim.Nanosecond)
	}
	return nodes
}

// runDetTopo builds and runs one (seed, nranks, mode) configuration.
// splitAt > 0 additionally stops the run at that time and resumes, to
// prove window bases survive across Run calls. Speculative modes need a
// checkpoint-owned model (rollback restores engine snapshots), so they use
// the snapshot-safe builder, which TestSnapshotBuilderNonIntrusive proves
// bit-equivalent to the raw one.
func runDetTopo(t *testing.T, tp detTopo, nranks int, mode SyncMode, splitAt sim.Time) detSig {
	t.Helper()
	r, err := NewRunner(nranks)
	if err != nil {
		t.Fatal(err)
	}
	r.SetSyncMode(mode)
	var nodes []*detNode
	if mode.Speculative() {
		r.EnableSnapshots()
		nodes = buildDetTopoSnap(t, r, tp)
	} else {
		nodes = buildDetTopo(t, r, tp)
	}
	var total uint64
	if splitAt > 0 {
		n, err := r.Run(splitAt)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	n, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	total += n
	sig := detSig{Total: total, Nodes: make([]nodeSig, len(nodes))}
	for i, nd := range nodes {
		sig.Nodes[i] = nodeSig{Count: nd.count, Sum: nd.sum, Last: nd.last}
	}
	return sig
}

func diffSig(t *testing.T, label string, got, want detSig) {
	t.Helper()
	if got.Total != want.Total {
		t.Errorf("%s: total events %d, sequential reference %d", label, got.Total, want.Total)
	}
	for i := range want.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Errorf("%s: node %d signature %+v, sequential reference %+v",
				label, i, got.Nodes[i], want.Nodes[i])
		}
	}
}

// detSeeds is the harness's topology count: every seed is a distinct
// machine. Fixed seeds keep failures reproducible.
const detSeeds = 30

var detRankCounts = []int{1, 2, 4, 8}

// allSyncModes is every registered mode, conservative and optimistic; the
// harness runs each of them against the sequential reference.
var allSyncModes = []SyncMode{SyncGlobal, SyncPairwise, SyncSpeculative, SyncAdaptive}

// TestRandomTopologyDeterminism is the headline determinism property: for
// every generated topology, every rank count and all four sync modes
// produce results bit-identical to the 1-rank sequential reference — same
// event totals, same per-node arrival counts/checksums, same final clocks.
// For the optimistic modes this is the end-to-end rollback correctness
// proof: any lost, duplicated, or misordered delivery across a
// checkpoint→straggler→rollback→replay cycle would change a node checksum.
func TestRandomTopologyDeterminism(t *testing.T) {
	seeds := detSeeds
	if testing.Short() {
		seeds = 8
	}
	vacuous := 0
	for s := 0; s < seeds; s++ {
		tp := genDetTopo(int64(9000 + s))
		ref := runDetTopo(t, tp, 1, SyncPairwise, 0)
		if ref.Total == 0 {
			vacuous++
			continue
		}
		for _, nranks := range detRankCounts {
			for _, mode := range allSyncModes {
				if nranks == 1 && mode == SyncPairwise {
					continue // this is the reference itself
				}
				got := runDetTopo(t, tp, nranks, mode, 0)
				label := "seed " + itoa(9000+s) + " ranks " + itoa(nranks) + " sync " + mode.String()
				diffSig(t, label, got, ref)
			}
		}
	}
	if vacuous > seeds/4 {
		t.Fatalf("%d/%d generated topologies ran zero events; generator is broken", vacuous, seeds)
	}
}

// TestRandomTopologySplitRunDeterminism re-runs a slice of the topologies
// with the run split at an arbitrary mid-simulation time, proving that
// per-rank bases, staged events, and the fast-forward state all survive
// across Run calls in every mode (for the optimistic modes the split also
// proves a Run boundary fully commits speculation: frontiers meet the
// bound, held sends are released, and the next Run restarts cleanly).
func TestRandomTopologySplitRunDeterminism(t *testing.T) {
	seeds := 8
	for s := 0; s < seeds; s++ {
		tp := genDetTopo(int64(9000 + s))
		ref := runDetTopo(t, tp, 1, SyncPairwise, 0)
		for _, nranks := range detRankCounts {
			for _, mode := range allSyncModes {
				got := runDetTopo(t, tp, nranks, mode, 777*sim.Nanosecond)
				label := "split seed " + itoa(9000+s) + " ranks " + itoa(nranks) + " sync " + mode.String()
				diffSig(t, label, got, ref)
			}
		}
	}
}

// TestRandomTopologySeedSensitivity guards the harness against vacuity:
// different seeds must generate machines with different outcomes.
func TestRandomTopologySeedSensitivity(t *testing.T) {
	a := runDetTopo(t, genDetTopo(9000), 2, SyncPairwise, 0)
	b := runDetTopo(t, genDetTopo(9001), 2, SyncPairwise, 0)
	if a.Total == b.Total && len(a.Nodes) == len(b.Nodes) {
		same := true
		for i := range a.Nodes {
			if a.Nodes[i] != b.Nodes[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 9000 and 9001 produced identical signatures")
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
