package noc

import (
	"fmt"
	"math/bits"
)

// Hypercube is a D-dimensional binary hypercube: 2^D routers, one node
// each, neighbors differ in exactly one address bit. E-cube routing fixes
// differing bits lowest-first, which is deterministic and deadlock-free —
// the classic massively-parallel topology (nCUBE, early Crays).
type Hypercube struct {
	D int
}

// NewHypercube validates the dimension.
func NewHypercube(d int) (*Hypercube, error) {
	if d < 1 || d > 20 {
		return nil, fmt.Errorf("noc: hypercube dimension %d out of range [1,20]", d)
	}
	return &Hypercube{D: d}, nil
}

func (h *Hypercube) Name() string       { return fmt.Sprintf("hypercube-%d", h.D) }
func (h *Hypercube) NumRouters() int    { return 1 << h.D }
func (h *Hypercube) NumNodes() int      { return 1 << h.D }
func (h *Hypercube) RouterOf(n int) int { return n }
func (h *Hypercube) Diameter() int      { return h.D }

func (h *Hypercube) Links() [][2]int {
	var ls [][2]int
	for r := 0; r < h.NumRouters(); r++ {
		for d := 0; d < h.D; d++ {
			peer := r ^ (1 << d)
			if r < peer {
				ls = append(ls, [2]int{r, peer})
			}
		}
	}
	return ls
}

// Route implements e-cube (dimension-order) routing: correct the lowest
// differing bit.
func (h *Hypercube) Route(r, dstNode int) int {
	dst := h.RouterOf(dstNode)
	diff := r ^ dst
	if diff == 0 {
		return -1
	}
	return r ^ (1 << uint(bits.TrailingZeros(uint(diff))))
}

// Butterfly is a k-ary 2-level indirect network approximated in the
// router-graph model: stage-0 switches own the nodes, stage-1 switches
// provide the shuffle; like the fat tree, a destination hash picks the
// middle switch deterministically.
type Butterfly struct {
	// Switches per stage; nodes = Switches * Radix.
	Switches, Radix int
}

// NewButterfly validates the shape.
func NewButterfly(switches, radix int) (*Butterfly, error) {
	if switches <= 0 || radix <= 0 {
		return nil, fmt.Errorf("noc: butterfly %d/%d invalid", switches, radix)
	}
	return &Butterfly{Switches: switches, Radix: radix}, nil
}

func (b *Butterfly) Name() string       { return fmt.Sprintf("butterfly-%ds-%dr", b.Switches, b.Radix) }
func (b *Butterfly) NumRouters() int    { return 2 * b.Switches }
func (b *Butterfly) NumNodes() int      { return b.Switches * b.Radix }
func (b *Butterfly) RouterOf(n int) int { return n / b.Radix }
func (b *Butterfly) Diameter() int      { return 2 }

func (b *Butterfly) Links() [][2]int {
	var ls [][2]int
	for s := 0; s < b.Switches; s++ {
		for m := 0; m < b.Switches; m++ {
			ls = append(ls, [2]int{s, b.Switches + m})
		}
	}
	return ls
}

// Route: up to the hash-selected middle switch, then down.
func (b *Butterfly) Route(r, dstNode int) int {
	dstSwitch := b.RouterOf(dstNode)
	if r < b.Switches {
		if r == dstSwitch {
			return -1
		}
		return b.Switches + dstNode%b.Switches
	}
	return dstSwitch
}
