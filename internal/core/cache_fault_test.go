package core

// ISSUE acceptance: host-storage faults under the cache's warm-start file
// must be invisible to sweep results. A sweep whose cache file tier eats
// ENOSPC or fsync errors mid-run produces a grid field-for-field identical
// to a cache-less sweep, with the degradation visible only in the cache's
// stats — the memoization layer may lose durability, never correctness.

import (
	"bytes"
	"reflect"
	"testing"

	"sst/internal/cache"
	"sst/internal/iofault"
)

func TestCachedSweepSurvivesFileTierFaults(t *testing.T) {
	apps, techs, widths := []string{"stream"}, []string{"ddr3-1333"}, []int{1, 2}
	ref, err := MemTechWidthSweep(apps, techs, widths, Small, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refCSV := csvOf(t, ref)

	// failAt picks which op of the first file-tier append dies: +1 is its
	// write (short, then ENOSPC), +2 its fsync.
	for _, tc := range []struct {
		name   string
		inject error
		failAt int
	}{
		{"enospc-on-write", iofault.ErrNoSpace, 1},
		{"efail-on-fsync", iofault.ErrSyncFailed, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := iofault.NewMemFS(17)
			c, err := cache.New(cache.Options{
				Capacity: 64, Path: "cache.jsonl", Codec: ResultCodec(), FS: m,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			m.FailOp(m.Ops()+tc.failAt, tc.inject)

			got, err := MemTechWidthSweep(apps, techs, widths, Small,
				SweepOptions{Workers: 1, Cache: c})
			if err != nil {
				t.Fatalf("sweep failed because its cache's disk did: %v", err)
			}
			if gotCSV := csvOf(t, got); !bytes.Equal(gotCSV, refCSV) {
				t.Errorf("faulted-cache grid CSV differs from cache-less run\n got %s\nwant %s", gotCSV, refCSV)
			}
			for i := range got.Points {
				g, r := *got.Points[i].Result, *ref.Points[i].Result
				g.HostSeconds, r.HostSeconds = 0, 0
				if !reflect.DeepEqual(g, r) {
					t.Errorf("point %d diverged\n got %+v\nwant %+v", i, g, r)
				}
			}
			st := c.Stats()
			if !st.Degraded || st.AppendFailures == 0 {
				t.Fatalf("degradation invisible in stats: %+v", st)
			}
			// Both points still memoized in RAM: a second pass is all hits.
			if _, err := MemTechWidthSweep(apps, techs, widths, Small,
				SweepOptions{Workers: 1, Cache: c}); err != nil {
				t.Fatal(err)
			}
			if st := c.Stats(); st.Hits != int64(len(widths)) {
				t.Fatalf("degraded cache no longer serves hits: %+v", st)
			}
		})
	}
}
