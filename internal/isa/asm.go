package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled SR1 binary: code at Entry, plus initialized data.
type Program struct {
	// Code is the instruction stream, loaded at address Entry.
	Code []uint32
	// Entry is the load/start address of the code.
	Entry uint64
	// Data maps addresses to initialized 8-byte data words (.word).
	Data map[uint64]uint64
	// Labels records label addresses for debuggers and tests.
	Labels map[string]uint64
}

// register aliases accepted by the assembler.
var regAliases = map[string]uint8{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "fp": 4,
	"a0": 5, "a1": 6, "a2": 7, "a3": 8, "a4": 9, "a5": 10,
	"t0": 11, "t1": 12, "t2": 13, "t3": 14, "t4": 15, "t5": 16,
	"s0": 17, "s1": 18, "s2": 19, "s3": 20, "s4": 21, "s5": 22,
}

func parseReg(tok string) (uint8, error) {
	tok = strings.TrimSpace(tok)
	if r, ok := regAliases[tok]; ok {
		return r, nil
	}
	if strings.HasPrefix(tok, "r") {
		n, err := strconv.Atoi(tok[1:])
		if err == nil && n >= 0 && n < 32 {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", tok)
}

var mnemonics = func() map[string]Opcode {
	m := make(map[string]Opcode, numOpcodes)
	for op := Opcode(0); op < numOpcodes; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// Assemble translates SR1 assembly text into a Program.
//
// Syntax:
//
//	label:                  # define a code label
//	op    rd, rs1, rs2      # per-format operands, see Instr.String
//	ld    rd, off(rs1)
//	beq   rs1, rs2, label   # branch targets may be labels or ints
//	li    rd, value         # pseudo: lui+ori/addi as needed
//	mv    rd, rs            # pseudo: add rd, rs, r0
//	b     label             # pseudo: jal r0, label
//	.org  addr              # set code origin (before first instruction)
//	.word label, value      # place an 8-byte datum at a data label
//	.space label, n         # reserve n zeroed bytes at a data label
//
// Comments run from '#' or ';' to end of line. Data is placed after code,
// 8-byte aligned.
func Assemble(src string) (*Program, error) {
	type pendingInstr struct {
		line   int
		op     Opcode
		args   []string
		pseudo string
	}
	p := &Program{Data: make(map[uint64]uint64), Labels: make(map[string]uint64)}
	var pend []pendingInstr
	type datum struct {
		label string
		words []uint64
		line  int
	}
	var data []datum

	lines := strings.Split(src, "\n")
	pc := uint64(0)
	orgSet := false
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t,") {
				return nil, fmt.Errorf("isa: line %d: bad label %q", ln+1, label)
			}
			if _, dup := p.Labels[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", ln+1, label)
			}
			p.Labels[label] = p.Entry + pc*4
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnem := strings.ToLower(strings.TrimSpace(fields[0]))
		var rest string
		if len(fields) > 1 {
			rest = strings.TrimSpace(fields[1])
		}
		args := splitArgs(rest)
		switch mnem {
		case ".org":
			if len(pend) > 0 || orgSet {
				return nil, fmt.Errorf("isa: line %d: .org must appear once, before code", ln+1)
			}
			v, err := parseInt(args[0])
			if err != nil {
				return nil, fmt.Errorf("isa: line %d: %v", ln+1, err)
			}
			p.Entry = uint64(v)
			orgSet = true
		case ".word":
			if len(args) < 2 {
				return nil, fmt.Errorf("isa: line %d: .word needs label and value(s)", ln+1)
			}
			var words []uint64
			for _, a := range args[1:] {
				v, err := parseInt(a)
				if err != nil {
					return nil, fmt.Errorf("isa: line %d: %v", ln+1, err)
				}
				words = append(words, uint64(v))
			}
			data = append(data, datum{label: args[0], words: words, line: ln + 1})
		case ".space":
			if len(args) != 2 {
				return nil, fmt.Errorf("isa: line %d: .space needs label and size", ln+1)
			}
			n, err := parseInt(args[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("isa: line %d: bad .space size %q", ln+1, args[1])
			}
			data = append(data, datum{label: args[0], words: make([]uint64, (n+7)/8), line: ln + 1})
		case "li", "mv", "b", "not", "neg":
			n := pseudoLen(mnem, args)
			pend = append(pend, pendingInstr{line: ln + 1, pseudo: mnem, args: args})
			pc += uint64(n)
		default:
			op, ok := mnemonics[mnem]
			if !ok {
				return nil, fmt.Errorf("isa: line %d: unknown mnemonic %q", ln+1, mnem)
			}
			pend = append(pend, pendingInstr{line: ln + 1, op: op, args: args})
			pc++
		}
	}

	// Lay out data after code, 64-byte aligned to keep it off the code's
	// cache lines.
	dataBase := p.Entry + pc*4
	dataBase = (dataBase + 63) &^ 63
	for _, d := range data {
		if _, dup := p.Labels[d.label]; dup {
			return nil, fmt.Errorf("isa: line %d: duplicate label %q", d.line, d.label)
		}
		p.Labels[d.label] = dataBase
		for i, w := range d.words {
			p.Data[dataBase+uint64(i*8)] = w
		}
		dataBase += uint64(len(d.words) * 8)
	}

	// Second pass: encode with label resolution.
	addr := p.Entry
	emit := func(in Instr) {
		p.Code = append(p.Code, in.Word())
		addr += 4
	}
	for _, pi := range pend {
		if pi.pseudo != "" {
			if err := expandPseudo(p, pi.pseudo, pi.args, addr, emit); err != nil {
				return nil, fmt.Errorf("isa: line %d: %v", pi.line, err)
			}
			continue
		}
		in, err := encodeOne(p, pi.op, pi.args, addr)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %v", pi.line, err)
		}
		emit(in)
	}
	return p, nil
}

// pseudoLen returns how many real instructions a pseudo expands to. It must
// agree exactly with expandPseudo, or labels after the pseudo would shift
// between passes.
func pseudoLen(mnem string, args []string) int {
	if mnem == "not" {
		return 2
	}
	if mnem != "li" || len(args) != 2 {
		return 1
	}
	v, err := parseInt(args[1])
	if err != nil {
		return 2 // label address: always the lui+ori form
	}
	return liLen(v)
}

func liLen(v int64) int {
	if v >= -32768 && v < 32768 {
		return 1 // addi
	}
	if v >= 0 && v < 1<<32 {
		return 2 // lui + ori (logical immediates zero-extend)
	}
	return 4 // lui + ori + slli + ori for 47-bit values
}

func expandPseudo(p *Program, mnem string, args []string, addr uint64, emit func(Instr)) error {
	switch mnem {
	case "mv":
		if len(args) != 2 {
			return fmt.Errorf("mv needs rd, rs")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		emit(Instr{Op: ADD, Rd: rd, Rs1: rs, Rs2: 0})
		return nil
	case "not":
		if len(args) != 2 {
			return fmt.Errorf("not needs rd, rs")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		// Logical immediates zero-extend, so ~x is built as (0-x)-1.
		emit(Instr{Op: SUB, Rd: rd, Rs1: 0, Rs2: rs})
		emit(Instr{Op: ADDI, Rd: rd, Rs1: rd, Imm: -1})
		return nil
	case "neg":
		if len(args) != 2 {
			return fmt.Errorf("neg needs rd, rs")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		emit(Instr{Op: SUB, Rd: rd, Rs1: 0, Rs2: rs})
		return nil
	case "b":
		if len(args) != 1 {
			return fmt.Errorf("b needs a target")
		}
		off, err := resolveTarget(p, args[0], addr, 21)
		if err != nil {
			return err
		}
		emit(Instr{Op: JAL, Rd: 0, Imm: off})
		return nil
	case "li":
		if len(args) != 2 {
			return fmt.Errorf("li needs rd, value")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		v, err := parseInt(args[1])
		if err != nil {
			// Label address: always the 2-instruction form so pass
			// one's length estimate holds whatever the address is.
			la, ok := p.Labels[args[1]]
			if !ok {
				return fmt.Errorf("li: unknown label %q", args[1])
			}
			if la >= 1<<32 {
				return fmt.Errorf("li: label %q address %d exceeds 32 bits", args[1], la)
			}
			emit(Instr{Op: LUI, Rd: rd, Imm: int32(uint32(la) >> 16)})
			emit(Instr{Op: ORI, Rd: rd, Rs1: rd, Imm: int32(la & 0xffff)})
			return nil
		}
		switch liLen(v) {
		case 1:
			emit(Instr{Op: ADDI, Rd: rd, Rs1: 0, Imm: int32(v)})
		case 2:
			emit(Instr{Op: LUI, Rd: rd, Imm: int32(uint32(v) >> 16)})
			emit(Instr{Op: ORI, Rd: rd, Rs1: rd, Imm: int32(v & 0xffff)})
		default:
			if uint64(v) >= 1<<47 {
				return fmt.Errorf("li: value %d out of 47-bit range", v)
			}
			// lui+ori builds bits [46:15]; slli positions them;
			// the final ori adds bits [14:0].
			hi := v >> 15
			lo := v & 0x7fff
			emit(Instr{Op: LUI, Rd: rd, Imm: int32(uint32(hi) >> 16)})
			emit(Instr{Op: ORI, Rd: rd, Rs1: rd, Imm: int32(hi & 0xffff)})
			emit(Instr{Op: SLLI, Rd: rd, Rs1: rd, Imm: 15})
			emit(Instr{Op: ORI, Rd: rd, Rs1: rd, Imm: int32(lo)})
		}
		return nil
	}
	return fmt.Errorf("unknown pseudo %q", mnem)
}

func encodeOne(p *Program, op Opcode, args []string, addr uint64) (Instr, error) {
	in := Instr{Op: op}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	var err error
	switch op.Format() {
	case FormatNone:
		if err = need(0); err != nil {
			return in, err
		}
	case FormatR:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(args[1]); err != nil {
			return in, err
		}
		if in.Rs2, err = parseReg(args[2]); err != nil {
			return in, err
		}
	case FormatI:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(args[1]); err != nil {
			return in, err
		}
		v, err := parseInt(args[2])
		if err != nil || v < -32768 || v > 32767 {
			return in, fmt.Errorf("bad immediate %q", args[2])
		}
		in.Imm = int32(v)
	case FormatLoad, FormatStore:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		base, off, err := parseMemOperand(p, args[1])
		if err != nil {
			return in, err
		}
		in.Rs1, in.Imm = base, off
	case FormatBranch:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if in.Rs2, err = parseReg(args[1]); err != nil {
			return in, err
		}
		off, err := resolveTarget(p, args[2], addr, 16)
		if err != nil {
			return in, err
		}
		in.Imm = off
	case FormatJ:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		off, err := resolveTarget(p, args[1], addr, 21)
		if err != nil {
			return in, err
		}
		in.Imm = off
	case FormatLUI:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		v, err := parseInt(args[1])
		if err != nil {
			return in, fmt.Errorf("bad immediate %q", args[1])
		}
		in.Imm = int32(v)
	}
	return in, nil
}

// parseMemOperand parses "off(rs1)" or "label" (absolute, base r0 — only
// valid for small addresses).
func parseMemOperand(p *Program, s string) (base uint8, off int32, err error) {
	s = strings.TrimSpace(s)
	i := strings.Index(s, "(")
	if i < 0 {
		if la, ok := p.Labels[s]; ok {
			if la > 32767 {
				return 0, 0, fmt.Errorf("label %q address %d too large for absolute addressing; load it with li", s, la)
			}
			return 0, int32(la), nil
		}
		v, err := parseInt(s)
		if err != nil {
			return 0, 0, fmt.Errorf("bad memory operand %q", s)
		}
		return 0, int32(v), nil
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:i])
	regStr := s[i+1 : len(s)-1]
	base, err = parseReg(regStr)
	if err != nil {
		return 0, 0, err
	}
	if offStr == "" {
		return base, 0, nil
	}
	v, err := parseInt(offStr)
	if err != nil || v < -32768 || v > 32767 {
		return 0, 0, fmt.Errorf("bad offset %q", offStr)
	}
	return base, int32(v), nil
}

// resolveTarget converts a label or literal into a word offset from addr+4's
// predecessor (i.e. target = addr + 4*imm), range-checked to bits.
func resolveTarget(p *Program, tok string, addr uint64, bits uint) (int32, error) {
	var target uint64
	if la, ok := p.Labels[tok]; ok {
		target = la
	} else {
		v, err := parseInt(tok)
		if err != nil {
			return 0, fmt.Errorf("unknown branch target %q", tok)
		}
		// Literal targets are word offsets already.
		return int32(v), nil
	}
	diff := int64(target) - int64(addr)
	if diff%4 != 0 {
		return 0, fmt.Errorf("misaligned branch target %q", tok)
	}
	off := diff / 4
	limit := int64(1) << (bits - 1)
	if off < -limit || off >= limit {
		return 0, fmt.Errorf("branch target %q out of range", tok)
	}
	return int32(off), nil
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	return strconv.ParseInt(s, 0, 64)
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Disassemble renders the program's code section.
func (p *Program) Disassemble() (string, error) {
	var sb strings.Builder
	for i, w := range p.Code {
		in, err := Decode(w)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%#08x: %s\n", p.Entry+uint64(i*4), in)
	}
	return sb.String(), nil
}
