package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sst/internal/leakcheck"
)

// flakyFn fails the first failures attempts of every point by panicking,
// then succeeds. Safe for concurrent workers.
type flakyFn struct {
	mu       sync.Mutex
	failures int
	attempts map[int]int
}

func (f *flakyFn) run(_ context.Context, i int) error {
	f.mu.Lock()
	if f.attempts == nil {
		f.attempts = make(map[int]int)
	}
	f.attempts[i]++
	n := f.attempts[i]
	f.mu.Unlock()
	if n <= f.failures {
		panic(fmt.Sprintf("transient wobble on point %d attempt %d", i, n))
	}
	return nil
}

func (f *flakyFn) count(i int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts[i]
}

// attemptsSink records PointDone attempts per index.
type attemptsSink struct {
	mu sync.Mutex
	by map[int]int
}

func (s *attemptsSink) PointDone(r PointReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.by == nil {
		s.by = make(map[int]int)
	}
	s.by[r.Index] = r.Attempts
}

func TestRetryRecoversFlakyPoint(t *testing.T) {
	leakcheck.Check(t)
	fn := &flakyFn{failures: 2}
	sink := &attemptsSink{}
	opts := SweepOptions{
		Workers: 2, Metrics: sink,
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, Jitter: 0.5, Seed: 7},
	}
	errs, err := runPointsDetailed(opts, 3, fn.run)
	if err != nil {
		t.Fatalf("flaky sweep failed despite retry budget: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			t.Errorf("point %d: %v", i, e)
		}
		if got := fn.count(i); got != 3 {
			t.Errorf("point %d ran %d times, want 3", i, got)
		}
		if got := sink.by[i]; got != 3 {
			t.Errorf("point %d reported %d attempts, want 3", i, got)
		}
	}
}

func TestRetryQuarantinesAfterBudget(t *testing.T) {
	leakcheck.Check(t)
	fn := &flakyFn{failures: 99}
	opts := SweepOptions{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, Seed: 7},
	}
	errs, err := runPointsDetailed(opts, 1, fn.run)
	if err == nil {
		t.Fatal("always-panicking point reported success")
	}
	for _, e := range []error{err, errs[0]} {
		if !errors.Is(e, ErrQuarantined) {
			t.Errorf("error does not wrap ErrQuarantined: %v", e)
		}
		if !errors.Is(e, ErrPanicked) {
			t.Errorf("error does not wrap ErrPanicked: %v", e)
		}
	}
	if got := fn.count(0); got != 3 {
		t.Fatalf("point ran %d times, want exactly the 3-attempt budget", got)
	}
}

func TestRetrySkipsDeterministicFailures(t *testing.T) {
	leakcheck.Check(t)
	runs := 0
	opts := SweepOptions{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 5, Seed: 7},
	}
	boom := errors.New("width 3 is not a power of two")
	errs, err := runPointsDetailed(opts, 1, func(context.Context, int) error {
		runs++
		return boom
	})
	if err == nil || !errors.Is(errs[0], boom) {
		t.Fatalf("deterministic failure lost: %v", err)
	}
	if errors.Is(errs[0], ErrQuarantined) {
		t.Errorf("deterministic failure wrongly quarantined: %v", errs[0])
	}
	if runs != 1 {
		t.Fatalf("deterministic failure ran %d times, want 1 (no retry)", runs)
	}
}

func TestRetryTimeoutGetsStretchedDeadline(t *testing.T) {
	leakcheck.Check(t)
	var mu sync.Mutex
	var budgets []time.Duration
	opts := SweepOptions{
		Workers:      1,
		PointTimeout: time.Second,
		Retry:        RetryPolicy{RetryTimeouts: true, TimeoutScale: 4, Seed: 7},
	}
	_, err := runPointsDetailed(opts, 1, func(ctx context.Context, _ int) error {
		dl, ok := ctx.Deadline()
		if !ok {
			t.Error("point context has no deadline despite PointTimeout")
		}
		mu.Lock()
		budgets = append(budgets, time.Until(dl))
		n := len(budgets)
		mu.Unlock()
		if n == 1 {
			return fmt.Errorf("wedged: %w", context.DeadlineExceeded)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("slow-then-fine point failed: %v", err)
	}
	if len(budgets) != 2 {
		t.Fatalf("point ran %d times, want 2 (one timeout retry)", len(budgets))
	}
	// Scale 4 with a 1s base: the retry's remaining budget must clearly
	// exceed the first attempt's even under scheduling noise.
	if budgets[1] < 2*budgets[0] {
		t.Fatalf("retry deadline %v not stretched over first %v", budgets[1], budgets[0])
	}
}

func TestRetryTimeoutOnlyOnce(t *testing.T) {
	leakcheck.Check(t)
	runs := 0
	opts := SweepOptions{
		Workers:      1,
		PointTimeout: time.Second,
		Retry:        RetryPolicy{MaxAttempts: 5, RetryTimeouts: true, Seed: 7},
	}
	errs, err := runPointsDetailed(opts, 1, func(context.Context, int) error {
		runs++
		return fmt.Errorf("still wedged: %w", context.DeadlineExceeded)
	})
	if err == nil {
		t.Fatal("always-wedged point reported success")
	}
	if runs != 2 {
		t.Fatalf("wedged point ran %d times, want 2 (timeouts get one retry, not the panic budget)", runs)
	}
	if !errors.Is(errs[0], ErrQuarantined) {
		t.Errorf("exhausted timeout retry not quarantined: %v", errs[0])
	}
}

func TestRetryRespectsSweepCancellation(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	runs := 0
	opts := SweepOptions{
		Workers: 1, Context: ctx,
		Retry: RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Hour, Seed: 7},
	}
	errs, err := runPointsDetailed(opts, 1, func(context.Context, int) error {
		runs++
		cancel() // sweep drained mid-point: the hour-long backoff must not run
		panic("transient")
	})
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	if runs != 1 {
		t.Fatalf("cancelled point ran %d times, want 1", runs)
	}
	if !errors.Is(errs[0], ErrPanicked) {
		t.Errorf("original failure lost on cancellation: %v", errs[0])
	}
}

type fixedRNG struct{ v float64 }

func (r fixedRNG) Float64() float64 { return r.v }

func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	mid := fixedRNG{0.5} // jitter factor 1.0
	for _, c := range []struct {
		attempt int
		want    time.Duration
	}{
		{1, 10 * time.Millisecond},
		{2, 20 * time.Millisecond},
		{3, 35 * time.Millisecond}, // capped
		{4, 35 * time.Millisecond},
	} {
		if got := p.backoff(c.attempt, mid); got != c.want {
			t.Errorf("backoff(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
	jit := RetryPolicy{BaseBackoff: 10 * time.Millisecond, Jitter: 0.5}
	lo := jit.backoff(1, fixedRNG{0}) // factor 0.75
	hi := jit.backoff(1, fixedRNG{0.999})
	if lo != 7500*time.Microsecond || hi <= lo {
		t.Errorf("jitter spread [%v, %v] not centred on base", lo, hi)
	}
}

// TestRetryJournalDeterminism pins the byte-identity promise: two runs of
// the same flaky journaled sweep, same seed, produce the same journal
// bytes — retry records, backoff delays and all.
func TestRetryJournalDeterminism(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	journalOf := func(path string) []byte {
		fn := &flakyFn{failures: 2}
		opts := SweepOptions{
			Workers: 1, Journal: path,
			Retry: RetryPolicy{MaxAttempts: 4, BaseBackoff: 5 * time.Microsecond, Jitter: 0.8, Seed: 42},
		}
		pio := pointIO{
			key:  func(i int) string { return fmt.Sprintf("pt/%d", i) },
			save: func(i int) (json.RawMessage, error) { return json.RawMessage(fmt.Sprintf("%d", i*i)), nil },
			load: func(int, json.RawMessage) error { return nil },
		}
		if _, err := runPointsJournaled(opts, 3, pio, fn.run); err != nil {
			t.Fatalf("journaled flaky sweep failed: %v", err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a := journalOf(filepath.Join(dir, "a.jsonl"))
	b := journalOf(filepath.Join(dir, "b.jsonl"))
	if !bytes.Equal(a, b) {
		t.Fatalf("journals differ across identical runs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"retries":[{"attempt":1,`)) {
		t.Fatalf("journal lacks retry records:\n%s", a)
	}
	// The recorded failure text must be the first line only — stack traces
	// carry addresses and goroutine IDs that would break byte-identity.
	for _, line := range bytes.Split(bytes.TrimSpace(a), []byte("\n")) {
		var ent journalEntry
		if err := json.Unmarshal(line, &ent); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		for _, r := range ent.Retries {
			if strings.Contains(r.Err, "goroutine") {
				t.Fatalf("retry record leaked a stack trace: %q", r.Err)
			}
		}
	}
}

// TestRetrySeedChangesBackoffs: different sweep seeds yield different
// jittered schedules, proving the jitter really flows from the seed.
func TestRetrySeedChangesBackoffs(t *testing.T) {
	schedule := func(seed uint64) []int64 {
		fn := &flakyFn{failures: 3}
		opts := SweepOptions{
			Workers: 1,
			Retry:   RetryPolicy{MaxAttempts: 4, BaseBackoff: 10 * time.Microsecond, Jitter: 0.9, Seed: seed},
		}
		var got []int64
		hook := func(_ int, retries []RetryRecord, err error) error {
			for _, r := range retries {
				got = append(got, r.BackoffUS)
			}
			return err
		}
		if _, err := runPointsHooked(opts, 1, fn.run, hook); err != nil {
			t.Fatalf("sweep failed: %v", err)
		}
		return got
	}
	a, b := schedule(1), schedule(2)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("want 3 retry records per run, got %d and %d", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 1 and 2 produced identical backoffs %v — jitter not seed-derived", a)
	}
}
