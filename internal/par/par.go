// Package par is gosst's parallel discrete-event runtime: conservative,
// barrier-synchronized PDES in the Structural Simulation Toolkit mold.
//
// The model graph is partitioned into ranks, each with its own sequential
// sim.Engine running in its own goroutine. Ranks only interact over links,
// and every cross-rank link has a declared nonzero latency, so the minimum
// cross-rank latency is a safe conservative lookahead: all ranks may
// advance through a window of that width without seeing each other's
// events. At each window barrier the runtime exchanges mailboxes, merging
// remote events in (time, source rank, sequence) order so a parallel run is
// bit-for-bit deterministic and independent of goroutine scheduling.
package par

import (
	"fmt"
	"sort"
	"sync"

	"sst/internal/sim"
)

// remoteEvent is one payload crossing a rank boundary.
type remoteEvent struct {
	time    sim.Time
	srcRank int
	seq     uint64
	dst     *sim.Port
	payload any
}

// rank is one partition: an engine plus per-destination outboxes.
type rank struct {
	id       int
	sim      *sim.Simulation
	outboxes [][]remoteEvent // indexed by destination rank
	sendSeq  uint64
	handled  uint64
}

// Runner coordinates the ranks.
type Runner struct {
	ranks      []*rank
	lookahead  sim.Time
	crossLinks int
	now        sim.Time
	running    bool
}

// NewRunner creates nranks empty partitions.
func NewRunner(nranks int) (*Runner, error) {
	if nranks <= 0 {
		return nil, fmt.Errorf("par: need at least one rank")
	}
	r := &Runner{lookahead: sim.TimeInfinity}
	for i := 0; i < nranks; i++ {
		rk := &rank{id: i, sim: sim.New(), outboxes: make([][]remoteEvent, nranks)}
		r.ranks = append(r.ranks, rk)
	}
	return r, nil
}

// NumRanks returns the partition count.
func (r *Runner) NumRanks() int { return len(r.ranks) }

// Rank returns partition i's simulation container; build that rank's
// components against it.
func (r *Runner) Rank(i int) *sim.Simulation { return r.ranks[i].sim }

// Now returns the global window base time.
func (r *Runner) Now() sim.Time { return r.now }

// Lookahead returns the synchronization window (min cross-rank latency).
func (r *Runner) Lookahead() sim.Time {
	if r.crossLinks == 0 {
		return 0
	}
	return r.lookahead
}

// Connect creates a link of the given latency between rankA and rankB,
// returning the port on each side. Same-rank connections are ordinary
// local links; cross-rank connections must have nonzero latency, which
// feeds the runner's lookahead.
func (r *Runner) Connect(name string, latency sim.Time, rankA, rankB int) (*sim.Port, *sim.Port, error) {
	if rankA < 0 || rankA >= len(r.ranks) || rankB < 0 || rankB >= len(r.ranks) {
		return nil, nil, fmt.Errorf("par: link %q connects invalid ranks %d,%d", name, rankA, rankB)
	}
	if rankA == rankB {
		a, b := r.ranks[rankA].sim.Connect(name, latency)
		return a, b, nil
	}
	if latency == 0 {
		return nil, nil, fmt.Errorf("par: cross-rank link %q needs nonzero latency (it is the lookahead)", name)
	}
	// The link object nominally lives on rankA's engine, but delivery is
	// fully intercepted, so the home engine is never used for sends.
	a, b := sim.Connect(r.ranks[rankA].sim.Engine(), name, latency)
	r.crossLinks++
	if latency < r.lookahead {
		r.lookahead = latency
	}
	ra, rb := r.ranks[rankA], r.ranks[rankB]
	a.Link().SetDeliver(func(from *sim.Port, delay sim.Time, payload any) {
		src, dstRank, dstPort := ra, rb.id, b
		if from == b {
			src, dstRank, dstPort = rb, ra.id, a
		}
		src.sendSeq++
		src.outboxes[dstRank] = append(src.outboxes[dstRank], remoteEvent{
			time:    src.sim.Engine().Now() + delay,
			srcRank: src.id,
			seq:     src.sendSeq,
			dst:     dstPort,
			payload: payload,
		})
	})
	return a, b, nil
}

// Run advances the whole model until the given time (or until globally
// idle), returning total events handled. Events scheduled exactly at
// `until` are not processed (windows are half-open), so event counts match
// across rank counts. With one rank Run degenerates to a sequential run
// with no synchronization overhead.
func (r *Runner) Run(until sim.Time) (uint64, error) {
	if len(r.ranks) == 1 && r.crossLinks == 0 {
		end := until
		if end != sim.TimeInfinity {
			end = until - 1
		}
		n := r.ranks[0].sim.Engine().Run(end)
		r.now = until
		if until == sim.TimeInfinity {
			r.now = r.ranks[0].sim.Engine().Now()
		}
		return n, nil
	}
	if r.crossLinks > 0 && (r.lookahead == 0 || r.lookahead == sim.TimeInfinity) {
		return 0, fmt.Errorf("par: no usable lookahead")
	}
	window := r.lookahead
	if r.crossLinks == 0 {
		// Independent ranks: run each to completion in parallel.
		window = until - r.now
		if until == sim.TimeInfinity {
			window = sim.TimeInfinity - 1 - r.now
		}
	}
	// Persistent workers for this Run call: one goroutine per rank,
	// handed a horizon per window. This keeps per-window cost to a pair
	// of channel operations instead of goroutine churn.
	work := make([]chan sim.Time, len(r.ranks))
	var wg sync.WaitGroup
	for i, rk := range r.ranks {
		work[i] = make(chan sim.Time)
		go func(rk *rank, ch <-chan sim.Time) {
			for horizon := range ch {
				if horizon == sim.TimeInfinity {
					rk.handled = rk.sim.Engine().Run(horizon)
				} else {
					rk.handled = rk.sim.Engine().Run(horizon - 1)
				}
				wg.Done()
			}
		}(rk, work[i])
	}
	defer func() {
		for _, ch := range work {
			close(ch)
		}
	}()

	var total uint64
	for {
		horizon := r.now + window
		if horizon > until || horizon < r.now {
			horizon = until
		}
		// Parallel phase: each rank runs its events strictly below
		// the horizon.
		wg.Add(len(r.ranks))
		for i := range r.ranks {
			work[i] <- horizon
		}
		wg.Wait()
		// Exchange phase: merge mailboxes deterministically.
		moved := 0
		for dst := range r.ranks {
			var in []remoteEvent
			for _, src := range r.ranks {
				if len(src.outboxes[dst]) > 0 {
					in = append(in, src.outboxes[dst]...)
					src.outboxes[dst] = src.outboxes[dst][:0]
				}
			}
			if len(in) == 0 {
				continue
			}
			moved += len(in)
			sort.Slice(in, func(i, j int) bool {
				a, b := in[i], in[j]
				if a.time != b.time {
					return a.time < b.time
				}
				if a.srcRank != b.srcRank {
					return a.srcRank < b.srcRank
				}
				return a.seq < b.seq
			})
			eng := r.ranks[dst].sim.Engine()
			for _, ev := range in {
				ev := ev
				eng.ScheduleAt(ev.time, sim.PrioLink, func(any) { ev.dst.Deliver(ev.payload) }, nil)
			}
		}
		for _, rk := range r.ranks {
			total += rk.handled
		}
		r.now = horizon
		// Termination: global idle (no pending events anywhere, nothing
		// exchanged) or the requested time reached.
		if r.now >= until {
			break
		}
		if moved == 0 {
			// Nothing in flight: either globally idle (stop) or
			// fast-forward to the next pending event so sparse
			// models don't crawl window by window.
			next := sim.TimeInfinity
			for _, rk := range r.ranks {
				if t := rk.sim.Engine().NextEventTime(); t < next {
					next = t
				}
			}
			if next == sim.TimeInfinity {
				break
			}
			if next > r.now {
				r.now = next
			}
		}
	}
	return total, nil
}

// RunAll advances until the model is globally idle.
func (r *Runner) RunAll() (uint64, error) { return r.Run(sim.TimeInfinity) }

// Finish runs every rank's component Finish hooks.
func (r *Runner) Finish() {
	for _, rk := range r.ranks {
		rk.sim.Finish()
	}
}
