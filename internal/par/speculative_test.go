package par

// Rollback-storm and replay-correctness tests for the optimistic sync
// modes. The determinism harness (determinism_test.go) proves speculation
// is invisible in the results; the tests here prove the opposite side of
// the contract — that under a hostile workload speculation actually
// happens, stays within its memory budget, keeps making forward progress,
// and that the adaptive governor notices a storm and demotes.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sst/internal/sim"
)

// stormTopo is a deliberately hostile machine for optimistic sync: a
// 4-node all-cross ring (node i on rank i%2, so every ring hop changes
// ranks) at the minimum 1ns latency, zero think time, and a burst of
// staggered token injections so both ranks always have local work to
// mis-execute ahead of a straggler. Lookahead 1ns with DefaultSpecLeap 8
// means every leg outruns the neighbor's sends by ~8ns — a sustained
// rollback storm.
func stormTopo() detTopo {
	tp := detTopo{nodes: 4}
	for i := 0; i < 4; i++ {
		tp.rings = append(tp.rings, 1*sim.Nanosecond)
		tp.think = append(tp.think, 0)
		tp.kill = append(tp.kill, sim.TimeInfinity)
	}
	for i := 0; i < 8; i++ {
		tp.inject = append(tp.inject, detInjection{
			node: i % 4,
			at:   sim.Time(i) * sim.Nanosecond,
			hops: 500,
			id:   0x5707_0000 + uint64(i),
		})
	}
	return tp
}

// runStorm runs the storm topology at 2 ranks under the given mode with
// the snapshot-owned builder (speculation needs checkpointable models) and
// returns the runner for metrics and peak inspection plus the signature.
func runStorm(t *testing.T, mode SyncMode) (*Runner, detSig) {
	t.Helper()
	tp := stormTopo()
	r, err := NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	r.SetSyncMode(mode)
	r.SetWatchdog(10 * time.Second)
	r.EnableSnapshots()
	nodes := buildDetTopoSnap(t, r, tp)
	total, err := r.RunAll()
	if err != nil {
		t.Fatalf("%s storm run: %v", mode, err)
	}
	sig := detSig{Total: total, Nodes: make([]nodeSig, len(nodes))}
	for i, nd := range nodes {
		sig.Nodes[i] = nodeSig{Count: nd.count, Sum: nd.sum, Last: nd.last}
	}
	return r, sig
}

// TestRollbackStorm drives the zero-slack chatty topology under pure
// speculation and asserts the storm actually happened (sustained
// rollbacks), the run still finished correctly (no watchdog trip, results
// bit-identical to the sequential reference), and the speculative memory
// stayed within its configured budget: checkpoint count never exceeded the
// depth cap and the delivered-log high-water mark stayed bounded rather
// than scaling with the run length.
func TestRollbackStorm(t *testing.T) {
	ref := runDetTopo(t, stormTopo(), 1, SyncPairwise, 0)
	r, sig := runStorm(t, SyncSpeculative)
	diffSig(t, "rollback storm (speculative)", sig, ref)

	m := r.Metrics()
	if m.Rollbacks < 20 {
		t.Errorf("storm produced only %d rollbacks; topology no longer provokes speculation", m.Rollbacks)
	}
	if m.Replayed < m.Rollbacks {
		t.Errorf("replayed %d < rollbacks %d: every rollback replays at least one event", m.Replayed, m.Rollbacks)
	}
	if m.Fallbacks != 0 || m.Promotions != 0 {
		t.Errorf("pure speculative mode reported adaptive activity: %d fallbacks, %d promotions", m.Fallbacks, m.Promotions)
	}
	for _, rk := range r.ranks {
		if rk.specPeakCkpts > DefaultSpecDepth {
			t.Errorf("rank %d held %d checkpoints, cap %d", rk.id, rk.specPeakCkpts, DefaultSpecDepth)
		}
		// The delivered log only spans the uncommitted window (≤ depth
		// legs of ≤ leap×lookahead each); at ~8 deliveries/ns that is a
		// few hundred entries. 4096 is an order of magnitude of slack
		// while still catching a log that scales with the ~4000-event run.
		if rk.specPeakLog > 4096 {
			t.Errorf("rank %d delivered-log peak %d: speculative memory is unbounded", rk.id, rk.specPeakLog)
		}
		if rk.rollbacks > 0 && rk.specPeakBytes == 0 {
			t.Errorf("rank %d rolled back %d times with zero checkpoint bytes recorded", rk.id, rk.rollbacks)
		}
	}
}

// TestRollbackStormAdaptive runs the same storm under the adaptive
// governor: it must detect the rollback spike and demote to conservative
// execution within a bounded number of windows (surfacing as at least one
// fallback), finish bit-identical to the reference, and — because it spends
// the storm running conservatively — roll back substantially less than pure
// speculation does.
func TestRollbackStormAdaptive(t *testing.T) {
	ref := runDetTopo(t, stormTopo(), 1, SyncPairwise, 0)
	spec, specSig := runStorm(t, SyncSpeculative)
	diffSig(t, "storm reference (speculative)", specSig, ref)
	adpt, adptSig := runStorm(t, SyncAdaptive)
	diffSig(t, "rollback storm (adaptive)", adptSig, ref)

	sm, am := spec.Metrics(), adpt.Metrics()
	if am.Fallbacks == 0 {
		t.Errorf("adaptive governor never demoted during a storm of %d rollbacks", am.Rollbacks)
	}
	if am.Rollbacks >= sm.Rollbacks {
		t.Errorf("adaptive rolled back %d times, pure speculative %d: demotion bought nothing", am.Rollbacks, sm.Rollbacks)
	}
	// Demotion must engage within the governor's detection latency: a rank
	// cannot accumulate more than one adaptation window's worth of
	// rollbacks per demote-promote cycle, so the per-rank total is bounded
	// by cycles × window rather than by the run length.
	for _, rk := range adpt.ranks {
		cycles := rk.fallbacks + 1 // +1 for the window that first trips
		if max := (cycles + rk.promotions) * adaptWindow; rk.rollbacks > max {
			t.Errorf("rank %d: %d rollbacks across %d demotions — governor reacted too slowly (bound %d)",
				rk.id, rk.rollbacks, rk.fallbacks, max)
		}
	}
}

// TestParseSyncMode pins the mode registry round-trip: every registered
// mode parses back from its String form, aliases work, and garbage is
// rejected with an error that names every valid spelling (the CLI -sync
// flag help is generated from the same registry).
func TestParseSyncMode(t *testing.T) {
	names := SyncModeNames()
	if len(names) != len(allSyncModes) {
		t.Fatalf("SyncModeNames lists %d modes, registry has %d", len(names), len(allSyncModes))
	}
	for _, m := range allSyncModes {
		got, err := ParseSyncMode(m.String())
		if err != nil {
			t.Errorf("ParseSyncMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("ParseSyncMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
	for _, bad := range []string{"", "bogus", "Speculative", "time-warp", "pairwise "} {
		_, err := ParseSyncMode(bad)
		if err == nil {
			t.Errorf("ParseSyncMode(%q) accepted garbage", bad)
			continue
		}
		for _, name := range names {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("ParseSyncMode(%q) error %q does not list valid mode %q", bad, err, name)
			}
		}
	}
	spec := map[SyncMode]bool{SyncSpeculative: true, SyncAdaptive: true}
	for _, m := range allSyncModes {
		if m.Speculative() != spec[m] {
			t.Errorf("%v.Speculative() = %v, want %v", m, m.Speculative(), spec[m])
		}
	}
}

// runSpecFuzz runs one fuzz configuration with the snapshot-owned builder
// and explicit leap/depth knobs (0 keeps the default), returning the
// signature and the nodes for byte-level state comparison.
func runSpecFuzz(t *testing.T, tp detTopo, nranks int, mode SyncMode, leap, depth int) (detSig, []*detNode) {
	t.Helper()
	r, err := NewRunner(nranks)
	if err != nil {
		t.Fatal(err)
	}
	r.SetSyncMode(mode)
	if leap > 0 {
		r.SetSpecLeap(leap)
	}
	if depth > 0 {
		r.SetSpecDepth(depth)
	}
	r.EnableSnapshots()
	nodes := buildDetTopoSnap(t, r, tp)
	total, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	sig := detSig{Total: total, Nodes: make([]nodeSig, len(nodes))}
	for i, nd := range nodes {
		sig.Nodes[i] = nodeSig{Count: nd.count, Sum: nd.sum, Last: nd.last}
	}
	return sig, nodes
}

// FuzzSpeculativeReplay fuzzes the checkpoint→straggler→rollback→replay
// cycle: a seeded random topology is run optimistically with fuzzed leap
// and depth knobs (including the degenerate leap=1/depth=1 corner, which
// checkpoints every leg) and compared against a straight-line conservative
// run of the identical machine — first by order-insensitive signature
// against the sequential reference, then byte-for-byte on every node's
// serialized state against a pairwise run at the same rank count. Any
// delivery lost, duplicated, reordered into visibility, or re-executed
// with different state by the replay path changes the node bytes.
func FuzzSpeculativeReplay(f *testing.F) {
	f.Add(int64(9000), uint8(8), uint8(4), uint8(0))
	f.Add(int64(9001), uint8(1), uint8(1), uint8(1))
	f.Add(int64(9017), uint8(3), uint8(2), uint8(2))
	f.Add(int64(424242), uint8(16), uint8(8), uint8(0x81))
	f.Fuzz(func(t *testing.T, seed int64, leap, depth, sel uint8) {
		nranks := []int{2, 4, 8}[int(sel&0x7f)%3]
		mode := SyncSpeculative
		if sel&0x80 != 0 {
			mode = SyncAdaptive
		}
		tp := genDetTopo(seed)
		ref := runDetTopo(t, tp, 1, SyncPairwise, 0)
		pwSig, pwNodes := runSpecFuzz(t, tp, nranks, SyncPairwise, 0, 0)
		diffSig(t, "fuzz pairwise baseline", pwSig, ref)
		spSig, spNodes := runSpecFuzz(t, tp, nranks, mode,
			1+int(leap)%32, 1+int(depth)%8)
		diffSig(t, "fuzz "+mode.String(), spSig, ref)
		for i := range spNodes {
			a, b := sim.NewEncoder(), sim.NewEncoder()
			spNodes[i].SaveState(a)
			pwNodes[i].SaveState(b)
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("node %d state diverged after replay: % x vs straight-line % x",
					i, a.Bytes(), b.Bytes())
			}
		}
	})
}
