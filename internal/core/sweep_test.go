package core

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"sst/internal/config"
)

func TestSweepWorkersConfig(t *testing.T) {
	defer SetSweepWorkers(0)
	SetSweepWorkers(3)
	if SweepWorkers() != 3 {
		t.Fatalf("SweepWorkers = %d, want 3", SweepWorkers())
	}
	SetSweepWorkers(-5)
	if SweepWorkers() < 1 {
		t.Fatalf("SweepWorkers = %d after reset, want >= 1 (GOMAXPROCS)", SweepWorkers())
	}
}

func TestRunPointsCoversEveryIndexOnce(t *testing.T) {
	defer SetSweepWorkers(0)
	for _, workers := range []int{1, 2, 7} {
		SetSweepWorkers(workers)
		const n = 100
		var hits [n]atomic.Int64
		if err := runPoints(n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: point %d ran %d times", workers, i, got)
			}
		}
	}
	if err := runPoints(0, func(int) error { t.Error("fn called for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunPointsAggregatesErrorsInOrder(t *testing.T) {
	defer SetSweepWorkers(0)
	for _, workers := range []int{1, 4} {
		SetSweepWorkers(workers)
		var ran atomic.Int64
		err := runPoints(10, func(i int) error {
			ran.Add(1)
			if i == 3 || i == 7 {
				return fmt.Errorf("point %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: errors swallowed", workers)
		}
		// Failures must not stop the remaining points.
		if ran.Load() != 10 {
			t.Fatalf("workers=%d: only %d points ran after a failure", workers, ran.Load())
		}
		// Aggregated in point order, so the message is deterministic.
		want := "point 3 failed\npoint 7 failed"
		if err.Error() != want {
			t.Fatalf("workers=%d: error = %q, want %q", workers, err.Error(), want)
		}
	}
}

// TestConcurrentSweepDeterminism asserts the headline safety property of
// the concurrent scheduler: a sweep run on several workers produces a grid
// identical — every NodeResult field of every point — to the same sweep on
// one worker, so the Fig. 10/11/12 tables are byte-identical at any -j.
func TestConcurrentSweepDeterminism(t *testing.T) {
	defer SetSweepWorkers(0)
	apps := []string{"stream", "gups"}
	techs := []string{"ddr3-1333", "gddr5-4000"}
	widths := []int{1, 2}

	SetSweepWorkers(1)
	seq, err := MemTechWidthSweep(apps, techs, widths, Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		SetSweepWorkers(workers)
		conc, err := MemTechWidthSweep(apps, techs, widths, Small)
		if err != nil {
			t.Fatal(err)
		}
		if len(conc.Points) != len(seq.Points) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(conc.Points), len(seq.Points))
		}
		for i := range seq.Points {
			a, b := &seq.Points[i], &conc.Points[i]
			if a.App != b.App || a.Tech != b.Tech || a.Width != b.Width {
				t.Fatalf("workers=%d: point %d is (%s,%s,%d), want (%s,%s,%d)",
					workers, i, b.App, b.Tech, b.Width, a.App, a.Tech, a.Width)
			}
			if !reflect.DeepEqual(*a.Result, *b.Result) {
				t.Errorf("workers=%d: point %d (%s/%s/w%d) diverged:\nseq:  %+v\nconc: %+v",
					workers, i, a.App, a.Tech, a.Width, *a.Result, *b.Result)
			}
		}
		// The rendered tables must match byte for byte.
		seqTab := Fig10Table(seq, apps, techs, widths, "ddr3-1333").String()
		concTab := Fig10Table(conc, apps, techs, widths, "ddr3-1333").String()
		if seqTab != concTab {
			t.Errorf("workers=%d: Fig10 table differs from sequential render", workers)
		}
	}
}

func TestGridFindIndexed(t *testing.T) {
	g := &DSEGrid{}
	for _, app := range []string{"a", "b"} {
		for w := 1; w <= 3; w++ {
			g.Points = append(g.Points, DSEPoint{App: app, Tech: "t", Width: w})
		}
	}
	if p := g.Find("b", "t", 2); p == nil || p.App != "b" || p.Width != 2 {
		t.Fatalf("Find returned %+v", p)
	}
	if g.Find("c", "t", 1) != nil || g.Find("a", "t", 9) != nil {
		t.Fatal("Find fabricated a point")
	}
	// The index must follow appends made after the first lookup.
	g.Points = append(g.Points, DSEPoint{App: "c", Tech: "t", Width: 1})
	if p := g.Find("c", "t", 1); p == nil {
		t.Fatal("Find missed a point appended after indexing")
	}
	// Pointers returned must alias the grid's own points.
	if p := g.Find("a", "t", 1); p != &g.Points[0] {
		t.Fatal("Find returned a copy, not the grid point")
	}
}

func TestRunMachinesBatch(t *testing.T) {
	defer SetSweepWorkers(0)
	SetSweepWorkers(2)
	cfgA := SweepMachine("stream", "ddr3-1333", 1, Small)
	cfgB := SweepMachine("stream", "gddr5-4000", 1, Small)
	results, err := RunMachines([]*config.MachineConfig{cfgA, cfgB})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0] == nil || results[1] == nil {
		t.Fatalf("batch incomplete: %v", results)
	}
	if results[0].Name != cfgA.Name || results[1].Name != cfgB.Name {
		t.Fatalf("batch order broken: %s, %s", results[0].Name, results[1].Name)
	}
	bad := SweepMachine("stream", "ddr3-1333", 1, Small)
	bad.Workload.Kind = "quantum"
	if _, err := RunMachines([]*config.MachineConfig{cfgA, bad}); err == nil {
		t.Fatal("batch error swallowed")
	}
}
