package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sst/internal/cli"
	"sst/internal/core"
	"syscall"
	"time"
)

func TestNetStudySmall(t *testing.T) {
	if err := run(8, 2, "1,0.5", core.FormatTable, core.SweepOptions{}, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(8, 2, "1", core.FormatCSV, core.SweepOptions{Workers: 2}, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestNetStudyObsFiles(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.json")
	if err := run(8, 2, "1,0.5", core.FormatJSON, core.SweepOptions{Workers: 2}, metrics, trace); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{metrics, trace} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s: invalid JSON: %v", path, err)
		}
	}
}

func TestNetScalingStudy(t *testing.T) {
	if err := runScaling(8, "1,2", "100us", "pairwise,speculative", core.FormatTable, context.Background()); err != nil {
		t.Fatal(err)
	}
	err := runScaling(8, "1,x", "100us", "all", core.FormatTable, context.Background())
	if err == nil {
		t.Error("bad rank count accepted")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("bad rank count maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
	err = runScaling(8, "1", "soon", "all", core.FormatTable, context.Background())
	if err == nil {
		t.Error("bad horizon accepted")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("bad horizon maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
	err = runScaling(8, "1", "100us", "warp-speed", core.FormatTable, context.Background())
	if err == nil {
		t.Error("bad sync mode accepted")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("bad sync mode maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
}

func TestNetStudyBadFractions(t *testing.T) {
	err := run(8, 2, "1,zero", core.FormatTable, core.SweepOptions{}, "", "")
	if err == nil {
		t.Error("bad fraction accepted")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("bad fraction maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
	if err := run(8, 2, "2.5", core.FormatTable, core.SweepOptions{}, "", ""); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

// TestNetStudyJournalResume: a journaled study writes one record per cell;
// a resumed run restores them (both studies share the grid, so the journal
// holds each cell once) and reproduces the same tables.
func TestNetStudyJournalResume(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "net.jsonl")
	if err := run(8, 2, "1,0.5", core.FormatCSV, core.SweepOptions{Workers: 2, Journal: journal}, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("journal empty after journaled study")
	}
	// Resume against the complete journal: every cell restores, no
	// simulation re-runs, and the study still succeeds.
	if err := run(8, 2, "1,0.5", core.FormatCSV, core.SweepOptions{Workers: 2, Journal: journal, Resume: true}, "", ""); err != nil {
		t.Fatalf("resume: %v", err)
	}
}

// TestNetStudyInterruptedExitCode: a pre-cancelled context maps to the
// interrupted exit code, not a generic failure.
func TestNetStudyInterruptedExitCode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(8, 2, "1,0.5", core.FormatTable, core.SweepOptions{Workers: 1, Context: ctx}, "", "")
	if err == nil {
		t.Fatal("cancelled study reported success")
	}
	if cli.Code(err) != cli.ExitInterrupted {
		t.Fatalf("cancelled study maps to exit %d, want %d (err: %v)", cli.Code(err), cli.ExitInterrupted, err)
	}
}

// TestNetStudyCacheSharedAcrossStudies: with -cache, the degradation and
// power studies share one cache over the same grid, so the power study's
// cells are served from the degradation study's results — half the
// accesses hit on the very first run, and a rerun is all hits.
func TestNetStudyCacheSharedAcrossStudies(t *testing.T) {
	sc, err := newSweepCache(true, 64, "lru", "lfu", "")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := run(8, 2, "1,0.5", core.FormatCSV, core.SweepOptions{Workers: 2, Cache: sc}, "", ""); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.Misses == 0 || st.Hits != st.Misses {
		t.Fatalf("first run stats %+v, want every degradation miss mirrored by a power hit", st)
	}
	cells := st.Misses
	if err := run(8, 2, "1,0.5", core.FormatCSV, core.SweepOptions{Workers: 2, Cache: sc}, "", ""); err != nil {
		t.Fatal(err)
	}
	st = sc.Stats()
	if st.Misses != cells || st.Hits != 3*cells {
		t.Fatalf("second run stats %+v, want %d hits %d misses (no re-simulation)", st, 3*cells, cells)
	}
}

// TestNetStudyCacheMetricsOut: the -metrics-out JSON carries the cache
// report after the per-point metrics.
func TestNetStudyCacheMetricsOut(t *testing.T) {
	sc, err := newSweepCache(true, 64, "lru", "tinylfu", "")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	metrics := filepath.Join(t.TempDir(), "m.json")
	if err := run(8, 2, "1", core.FormatCSV, core.SweepOptions{Workers: 2, Cache: sc}, metrics, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var points any
	if err := dec.Decode(&points); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	var rep struct {
		Cache *struct {
			Policy  string `json:"policy"`
			Shadows []struct {
				Policy string `json:"policy"`
			} `json:"shadows"`
		} `json:"cache"`
	}
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("metrics JSON cache report: %v", err)
	}
	if rep.Cache == nil || rep.Cache.Policy != "lru" || len(rep.Cache.Shadows) != 1 {
		t.Fatalf("cache report in metrics JSON = %+v", rep.Cache)
	}
}

// TestNetSIGTERMDrains: SIGTERM lands on the same 130 contract as
// SIGINT — the study drains instead of dying mid-cell.
func TestNetSIGTERMDrains(t *testing.T) {
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the signal context")
	}
	err := run(8, 2, "1,0.5", core.FormatTable, core.SweepOptions{Workers: 1, Context: ctx}, "", "")
	if err == nil {
		t.Fatal("study under SIGTERM reported success")
	}
	if cli.Code(err) != cli.ExitInterrupted {
		t.Fatalf("SIGTERM maps to exit %d, want %d (err: %v)", cli.Code(err), cli.ExitInterrupted, err)
	}
}
