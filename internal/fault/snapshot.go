package fault

// Snapshot support: fault injectors carry their RNG streams, census
// counters and recorded traces across an engine checkpoint, so a restored
// run reproduces the remainder of its fault schedule — and its trace —
// byte-for-byte. Pending KillAt events are owned by their KillRecord.

import (
	"fmt"

	"sst/internal/sim"
)

func init() {
	// Corrupted wrappers can be in flight on a tracked link when a snapshot
	// is taken; the inner payload nests through the registry.
	sim.RegisterPayload("fault.Corrupted", Corrupted{},
		func(e *sim.Encoder, v any) {
			sim.EncodePayload(e, v.(Corrupted).Payload)
		},
		func(d *sim.Decoder) (any, error) {
			inner, err := sim.DecodePayload(d)
			return Corrupted{Payload: inner}, err
		})
}

// SaveState writes both directions' injector state. For a cross-rank link
// the far direction's state is saved in the home rank's blob, which is safe
// at a snapshot barrier: every rank is parked, so no direction is mutating.
func (inj *LinkInjector) SaveState(enc *sim.Encoder) {
	inj.a.save(enc)
	inj.b.save(enc)
}

// LoadState restores both directions.
func (inj *LinkInjector) LoadState(dec *sim.Decoder) error {
	if err := inj.a.load(dec); err != nil {
		return err
	}
	return inj.b.load(dec)
}

func (d *linkDir) save(enc *sim.Encoder) {
	d.rng.SaveState(enc)
	enc.U64(d.faults)
	enc.U64(d.sent)
	enc.U64(d.drops)
	enc.U64(d.corrupts)
	enc.U64(d.delays)
	enc.U64(uint64(len(d.trace)))
	for _, ev := range d.trace {
		enc.Time(ev.At)
		enc.U64(uint64(ev.Kind))
		enc.U64(ev.Seq)
	}
}

func (d *linkDir) load(dec *sim.Decoder) error {
	if err := d.rng.LoadState(dec); err != nil {
		return err
	}
	d.faults = dec.U64()
	d.sent = dec.U64()
	d.drops = dec.U64()
	d.corrupts = dec.U64()
	d.delays = dec.U64()
	n := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if n > 0 && !d.record {
		return fmt.Errorf("fault: snapshot of %q has a recorded trace but the rebuilt injector has Record off", d.target)
	}
	d.trace = d.trace[:0]
	for i := uint64(0); i < n; i++ {
		d.trace = append(d.trace, Event{
			At:     dec.Time(),
			Kind:   Kind(dec.U64()),
			Target: d.target,
			Seq:    dec.U64(),
		})
	}
	return dec.Err()
}

// fire executes the scheduled kill.
func (rec *KillRecord) fire(any) {
	rec.Done = true
	rec.kill.Kill()
}

// PendingOwned implements sim.PendingOwner: an unfired kill owns its event.
func (rec *KillRecord) PendingOwned() int {
	if rec.Done {
		return 0
	}
	return 1
}

// SaveState writes the kill's schedule and whether it already fired.
func (rec *KillRecord) SaveState(enc *sim.Encoder) {
	enc.Time(rec.At)
	enc.Bool(rec.Done)
	enc.U64(rec.seq)
}

// LoadState restores the record, re-creating the kill event if it had not
// fired by the snapshot barrier.
func (rec *KillRecord) LoadState(dec *sim.Decoder) error {
	rec.At = dec.Time()
	rec.Done = dec.Bool()
	rec.seq = dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if !rec.Done {
		rec.eng.ScheduleRestoredAt(rec.At, sim.PrioLink, rec.seq, "", rec.fire, nil)
	}
	return nil
}
