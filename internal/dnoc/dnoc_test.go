package dnoc

import (
	"testing"

	"sst/internal/noc"
	"sst/internal/par"
	"sst/internal/sim"
)

// trafficPlan is a deterministic staggered traffic pattern: node i sends
// msgs messages to (i*7+3) mod N at distinct times so no two packets tie on
// a link (tie ordering may legitimately differ between sequential and
// distributed runs; everything else must match exactly).
type send struct {
	at   sim.Time
	src  int
	dst  int
	size int
	id   int
}

func plan(nodes, msgs int) []send {
	var out []send
	id := 0
	for i := 0; i < nodes; i++ {
		for m := 0; m < msgs; m++ {
			out = append(out, send{
				at:   sim.Time(i)*977*sim.Nanosecond + sim.Time(m)*31*sim.Microsecond,
				src:  i,
				dst:  (i*7 + 3) % nodes,
				size: 1000 + 64*i + m,
				id:   id,
			})
			id++
		}
	}
	return out
}

// runSequential executes the plan on a plain noc.Network and returns
// per-message delivery times.
func runSequential(t *testing.T, topo noc.Topology, cfg noc.NetConfig, sends []send) []sim.Time {
	t.Helper()
	engine := sim.NewEngine()
	n, err := noc.NewNetwork(engine, "net", topo, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]sim.Time, len(sends))
	for i := 0; i < topo.NumNodes(); i++ {
		n.NIC(i).SetReceiver(func(src, size int, payload any) {
			out[payload.(int)] = engine.Now()
		})
	}
	for _, s := range sends {
		s := s
		engine.ScheduleAt(s.at, sim.PrioLink, func(any) {
			n.NIC(s.src).Send(s.dst, s.size, s.id, nil)
		}, nil)
	}
	engine.RunAll()
	return out
}

// runDistributed executes the same plan over nranks.
func runDistributed(t *testing.T, topo noc.Topology, cfg noc.NetConfig, sends []send, nranks int) []sim.Time {
	t.Helper()
	runner, err := par.NewRunner(nranks)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(runner, topo, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]sim.Time, len(sends))
	for i := 0; i < topo.NumNodes(); i++ {
		i := i
		eng := runner.Rank(d.RankOfNode(i)).Engine()
		d.NIC(i).SetReceiver(func(src, size int, payload any) {
			out[payload.(int)] = eng.Now()
		})
	}
	for _, s := range sends {
		s := s
		eng := runner.Rank(d.RankOfNode(s.src)).Engine()
		eng.ScheduleAt(s.at, sim.PrioLink, func(any) {
			d.NIC(s.src).Send(s.dst, s.size, s.id, nil)
		}, nil)
	}
	if _, err := runner.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := d.Messages(); got != uint64(len(sends)) {
		t.Fatalf("delivered %d/%d messages", got, len(sends))
	}
	return out
}

func TestDistributedMatchesSequential(t *testing.T) {
	topo, err := noc.NewTorus3D(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noc.DefaultConfig()
	sends := plan(topo.NumNodes(), 4)
	seq := runSequential(t, topo, cfg, sends)
	for _, nranks := range []int{1, 2, 4, 8} {
		dist := runDistributed(t, topo, cfg, sends, nranks)
		for i := range seq {
			if seq[i] == 0 {
				t.Fatalf("sequential message %d undelivered", i)
			}
			if dist[i] != seq[i] {
				t.Fatalf("nranks=%d: message %d delivered at %v distributed vs %v sequential",
					nranks, i, dist[i], seq[i])
			}
		}
	}
}

func TestDistributedDeterminism(t *testing.T) {
	topo, _ := noc.NewTorus3D(4, 2, 1)
	cfg := noc.DefaultConfig()
	sends := plan(topo.NumNodes(), 6)
	a := runDistributed(t, topo, cfg, sends, 4)
	b := runDistributed(t, topo, cfg, sends, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d nondeterministic: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDistributedFatTree(t *testing.T) {
	topo, _ := noc.NewFatTree(4, 4, 4)
	cfg := noc.DefaultConfig()
	sends := plan(topo.NumNodes(), 2)
	seq := runSequential(t, topo, cfg, sends)
	dist := runDistributed(t, topo, cfg, sends, 3)
	for i := range seq {
		if dist[i] != seq[i] {
			t.Fatalf("fat tree message %d: %v vs %v", i, dist[i], seq[i])
		}
	}
}

func TestDistributedValidation(t *testing.T) {
	runner, _ := par.NewRunner(2)
	topo, _ := noc.NewMesh2D(2, 2)
	cfg := noc.DefaultConfig()
	cfg.LinkLatency, cfg.RouterLatency = 0, 0
	if _, err := New(runner, topo, cfg, nil); err == nil {
		t.Error("zero lookahead accepted")
	}
	cfg = noc.DefaultConfig()
	if _, err := New(runner, topo, cfg, func(int) int { return 99 }); err == nil {
		t.Error("invalid partition accepted")
	}
	bad := noc.NetConfig{}
	if _, err := New(runner, topo, bad, nil); err == nil {
		t.Error("invalid net config accepted")
	}
}

func TestDistributedAccessors(t *testing.T) {
	runner, _ := par.NewRunner(2)
	topo, _ := noc.NewMesh2D(4, 1)
	d, err := New(runner, topo, noc.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Topology() != topo {
		t.Error("topology accessor")
	}
	if d.NIC(1).Node() != 1 || d.NIC(1).Rank() != 1 {
		t.Error("nic accessors")
	}
	if d.RankOfNode(2) != 0 {
		t.Errorf("rank of node 2 = %d", d.RankOfNode(2))
	}
	// Loopback send on a live runner.
	got := false
	d.NIC(0).SetReceiver(func(src, size int, payload any) { got = src == 0 })
	runner.Rank(0).Engine().Schedule(0, func(any) {
		d.NIC(0).Send(0, 64, nil, nil)
	}, nil)
	if _, err := runner.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("loopback failed")
	}
	if d.BytesDelivered() != 64 || d.MeanLatencyPs() <= 0 {
		t.Error("stats roll-up")
	}
}
