package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sst/internal/cli"
	"sst/internal/leakcheck"
	"sst/internal/serve"
)

func TestConfigErrors(t *testing.T) {
	if _, err := newSweepCache(true, 64, "clockwork", "", ""); err == nil {
		t.Fatal("bad cache policy accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Missing state dir parent that cannot be created, and a bad listen
	// address, are config mistakes: exit 2, not a crash.
	err := run(ctx, "256.256.256.256:0", serve.Config{StateDir: t.TempDir()}, time.Second)
	if cli.Code(err) != cli.ExitConfig {
		t.Fatalf("bad addr maps to exit %d, want %d (err: %v)", cli.Code(err), cli.ExitConfig, err)
	}
}

// startRun boots run() on a free port and returns the base URL plus the
// channel run's error lands on.
func startRun(t *testing.T, ctx context.Context, cfg serve.Config, drain time.Duration) (string, chan error) {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, "127.0.0.1:0", cfg, drain) }()
	addrPath := filepath.Join(cfg.StateDir, "addr")
	deadline := time.Now().Add(10 * time.Second)
	for {
		raw, err := os.ReadFile(addrPath)
		if err == nil && len(raw) > 0 {
			return "http://" + strings.TrimSpace(string(raw)), errc
		}
		select {
		case rerr := <-errc:
			t.Fatalf("run exited during startup: %v", rerr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSIGTERMDrainsCleanly is the satellite contract end to end: a
// SIGTERM-cancelled context makes run() finish the submitted job's
// journaled state, shut the listener, and return nil — exit 0.
func TestSIGTERMDrainsCleanly(t *testing.T) {
	leakcheck.Check(t)
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	state := t.TempDir()
	url, errc := startRun(t, ctx, serve.Config{StateDir: state, JobWorkers: 1}, 30*time.Second)

	body := `{"tenant":"t","spec":{"kind":"dse","apps":["stream"],"techs":["ddr3-1333"],"widths":[1]}}`
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	// Let the tiny job complete so the drain has a done job to report.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur serve.JobStatus
		json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if cur.State == serve.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case rerr := <-errc:
		if rerr != nil {
			t.Fatalf("drained run returned %v, want nil (exit 0), code %d", rerr, cli.Code(rerr))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
	// The job's result survived the shutdown.
	if _, err := os.Stat(filepath.Join(state, "jobs", st.ID, "result.csv")); err != nil {
		t.Fatalf("result.csv missing after drain: %v", err)
	}
}

// TestDrainBudgetMapsTo130: when ctx dies while a job wedges past the
// budget, run returns the interrupted contract.
func TestDrainBudgetMapsTo130(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	state := t.TempDir()
	url, errc := startRun(t, ctx, serve.Config{
		StateDir: state, JobWorkers: 1,
		// A net job big enough to still be mid-sweep when we cancel.
		PointWorkers: 1,
	}, time.Nanosecond) // budget nobody can meet while a job runs
	body := `{"tenant":"t","spec":{"kind":"net","nodes":16,"steps":4}}`
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	time.Sleep(50 * time.Millisecond) // let the worker enter the sweep
	cancel()
	select {
	case rerr := <-errc:
		// Either the drain beat the nanosecond budget (impossible while a
		// point runs) or we get the 130 contract.
		if rerr != nil && cli.Code(rerr) != cli.ExitInterrupted {
			t.Fatalf("overrun drain maps to exit %d (err: %v)", cli.Code(rerr), rerr)
		}
		if rerr == nil {
			t.Log("job finished inside the budget; drain stayed clean")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run never returned")
	}
	http.DefaultClient.CloseIdleConnections()
}

func TestStateFlagRequiredIsConfigError(t *testing.T) {
	// The -state check lives in main, but the underlying constructor
	// enforces it too; the CLI maps it to exit 2.
	_, err := serve.New(serve.Config{})
	if err == nil {
		t.Fatal("empty state dir accepted")
	}
	if cli.Code(cli.Configf("%v", err)) != cli.ExitConfig {
		t.Fatal("config wrap lost")
	}
}
