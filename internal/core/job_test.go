package core

import (
	"strings"
	"testing"

	"sst/internal/leakcheck"
)

func TestJobSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string // substring of the error; "" = valid
	}{
		{"dse ok", JobSpec{Kind: "dse", Apps: []string{"stream"}, Techs: []string{"ddr3-1333"}, Widths: []int{1, 2}}, ""},
		{"net ok minimal", JobSpec{Kind: "net"}, ""},
		{"missing kind", JobSpec{}, "missing kind"},
		{"unknown kind", JobSpec{Kind: "quantum"}, "unknown kind"},
		{"dse empty axes", JobSpec{Kind: "dse", Apps: []string{"stream"}}, "needs apps"},
		{"dse blank tech", JobSpec{Kind: "dse", Apps: []string{"stream"}, Techs: []string{" "}, Widths: []int{1}}, "blank"},
		{"dse bad width", JobSpec{Kind: "dse", Apps: []string{"stream"}, Techs: []string{"ddr3-1333"}, Widths: []int{0}}, "width"},
		{"dse bad scale", JobSpec{Kind: "dse", Apps: []string{"stream"}, Techs: []string{"ddr3-1333"}, Widths: []int{1}, Scale: "huge"}, "scale"},
		{"net bad fraction", JobSpec{Kind: "net", Fractions: []float64{1.5}}, "fraction"},
		{"net negative", JobSpec{Kind: "net", Nodes: -1}, "negative"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestJobSpecPoints(t *testing.T) {
	dse := JobSpec{Kind: "dse", Apps: []string{"stream", "gups"}, Techs: []string{"ddr3-1333"}, Widths: []int{1, 2, 4}}
	if got := dse.Points(); got != 6 {
		t.Errorf("dse points = %d, want 6", got)
	}
	net := JobSpec{Kind: "net", Fractions: []float64{1, 0.5}}
	if got, profiles := net.Points(), len(netStudyProfiles()); got != 2*profiles {
		t.Errorf("net points = %d, want %d", got, 2*profiles)
	}
	// A minimal net spec resolves to the default study's shape.
	if got := (JobSpec{Kind: "net"}).Points(); got == 0 {
		t.Error("defaulted net spec reports zero points")
	}
}

func TestJobSpecRunDSE(t *testing.T) {
	leakcheck.Check(t)
	spec := JobSpec{Kind: "dse", Apps: []string{"stream"}, Techs: []string{"ddr3-1333"}, Widths: []int{1, 2}}
	res, err := spec.Run(SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result from successful job")
	}
	var sb strings.Builder
	if err := WriteResults(&sb, FormatCSV, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stream") {
		t.Fatalf("result CSV missing app rows:\n%s", sb.String())
	}
}

func TestJobSpecRunNet(t *testing.T) {
	leakcheck.Check(t)
	spec := JobSpec{Kind: "net", Nodes: 8, Steps: 2, Fractions: []float64{1, 0.5}}
	res, err := spec.Run(SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result from successful job")
	}
}

func TestJobSpecRunInvalid(t *testing.T) {
	if _, err := (JobSpec{Kind: "dse"}).Run(SweepOptions{}); err == nil {
		t.Fatal("invalid spec ran")
	}
}
