package main

import (
	"path/filepath"
	"testing"

	"sst/internal/cli"
)

func TestRecordInfoReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.bin")
	if err := record([]string{"-workload", "daxpy", "-n", "64", "-o", trace}); err != nil {
		t.Fatal(err)
	}
	if err := info([]string{"-i", trace}); err != nil {
		t.Fatal(err)
	}
	if err := replay([]string{"-i", trace, "-width", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := replay([]string{"-i", trace, "-l1", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordKernelWithLimit(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "k.bin")
	if err := record([]string{"-workload", "stream", "-n", "256", "-max", "500", "-o", trace}); err != nil {
		t.Fatal(err)
	}
	if err := info([]string{"-i", trace}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordUnknownWorkload(t *testing.T) {
	err := record([]string{"-workload", "doom", "-o", filepath.Join(t.TempDir(), "x.bin")})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if cli.Code(err) != cli.ExitConfig {
		t.Errorf("unknown workload maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
}

func TestInfoMissingFile(t *testing.T) {
	err := info([]string{"-i", "/nonexistent.bin"})
	if err == nil {
		t.Fatal("missing trace accepted")
	}
	if cli.Code(err) != cli.ExitFailure {
		t.Errorf("missing trace maps to exit %d, want %d", cli.Code(err), cli.ExitFailure)
	}
}

func TestReplayBadUnits(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.bin")
	if err := record([]string{"-workload", "daxpy", "-n", "16", "-o", trace}); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-i", trace, "-freq", "fast"},
		{"-i", trace, "-memlat", "soon"},
		{"-i", trace, "-format", "xml"},
	} {
		err := replay(args)
		if err == nil {
			t.Errorf("replay %v accepted", args)
			continue
		}
		if cli.Code(err) != cli.ExitConfig {
			t.Errorf("replay %v maps to exit %d, want %d", args, cli.Code(err), cli.ExitConfig)
		}
	}
}

func TestOpenWorkloadAll(t *testing.T) {
	for _, w := range []string{"daxpy", "dot", "chase", "fib", "hpccg", "lulesh", "stencil", "stream", "gups", "fea", "minimd"} {
		s, closer, err := openWorkload(w, 64)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if s == nil {
			t.Fatalf("%s: nil stream", w)
		}
		if closer != nil {
			closer()
		}
	}
}
