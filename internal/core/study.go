package core

import (
	"fmt"
	"sort"
	"strings"
)

// The study registry. Every sweep study the toolkit can run as a job is
// registered here once — name, validation, defaults, point count and the
// run function — and everything that dispatches studies (JobSpec
// validation and execution, the serve admission path, the sst-dse and
// sst-net CLIs) resolves through this table instead of keeping its own
// switch. Adding a study means adding one entry; the service, the CLIs
// and the error messages that enumerate valid kinds all pick it up.

// Study is one runnable sweep study bound to its parameters: a name for
// reports and registries, and a Run that executes it under SweepOptions —
// journal, resume, retry, cache, arena and cancellation all compose the
// same way for every study. Obtain one with NewStudy.
type Study interface {
	// Name identifies the study (its registry kind).
	Name() string
	// Run executes the study. The Result is non-nil whenever a partial
	// grid exists, even on error, so callers can render what completed.
	Run(opts SweepOptions) (Result, error)
}

// studyDef is one registry entry: the hooks a JobSpec of this kind
// resolves to.
type studyDef struct {
	kind string
	// defaults resolves optional spec fields without mutating the input.
	defaults func(JobSpec) JobSpec
	// validate structurally checks a spec (already defaulted specs pass
	// identically — validation never depends on defaulting).
	validate func(JobSpec) error
	// points reports the defaulted spec's design-point count.
	points func(JobSpec) int
	// run executes the defaulted spec.
	run func(JobSpec, SweepOptions) (Result, error)
}

// studies is the registry, keyed by kind. Registration happens in this
// literal — the set is closed at compile time, so lookups need no lock.
var studies = map[string]*studyDef{
	"dse": {
		kind:     "dse",
		defaults: dseDefaults,
		validate: dseValidate,
		points: func(s JobSpec) int {
			return len(s.Apps) * len(s.Techs) * len(s.Widths)
		},
		run: func(s JobSpec, opts SweepOptions) (Result, error) {
			scale := Small
			if s.Scale == "full" {
				scale = Full
			}
			g, err := MemTechWidthSweep(s.Apps, s.Techs, s.Widths, scale, opts)
			if g == nil {
				return nil, err
			}
			return g, err
		},
	},
	"net": {
		kind:     "net",
		defaults: netDefaults,
		validate: netValidate,
		points: func(s JobSpec) int {
			return len(netStudyProfiles()) * len(s.Fractions)
		},
		run: func(s JobSpec, opts SweepOptions) (Result, error) {
			res, err := NetDegradationStudy(s.netConfig(), opts)
			if res == nil {
				return nil, err
			}
			return res, err
		},
	},
	"net-power": {
		kind:     "net-power",
		defaults: netDefaults,
		validate: netValidate,
		points: func(s JobSpec) int {
			return len(netStudyProfiles()) * len(s.Fractions)
		},
		run: func(s JobSpec, opts SweepOptions) (Result, error) {
			res, err := NetPowerStudy(s.netConfig(), opts)
			if res == nil {
				return nil, err
			}
			return res, err
		},
	},
}

// StudyKinds returns the registered study kinds, sorted — the single
// enumeration behind JobSpec validation errors and service documentation.
func StudyKinds() []string {
	kinds := make([]string, 0, len(studies))
	for k := range studies {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// kindList renders the registry for error messages: "dse, net or net-power".
func kindList() string {
	kinds := StudyKinds()
	if len(kinds) == 1 {
		return kinds[0]
	}
	return strings.Join(kinds[:len(kinds)-1], ", ") + " or " + kinds[len(kinds)-1]
}

// NewStudy resolves a spec against the registry, returning the bound
// study. The spec is validated and defaulted; an unknown or malformed
// spec is rejected here, before anything is persisted or scheduled.
func NewStudy(spec JobSpec) (Study, error) {
	def, err := studyFor(spec.Kind)
	if err != nil {
		return nil, err
	}
	if err := def.validate(spec); err != nil {
		return nil, err
	}
	return &boundStudy{spec: def.defaults(spec), def: def}, nil
}

// studyFor looks a kind up in the registry.
func studyFor(kind string) (*studyDef, error) {
	if kind == "" {
		return nil, fmt.Errorf("core: job spec: missing kind")
	}
	def, ok := studies[kind]
	if !ok {
		return nil, fmt.Errorf("core: job spec: unknown kind %q (want %s)", kind, kindList())
	}
	return def, nil
}

// boundStudy binds a defaulted, validated spec to its registry entry.
type boundStudy struct {
	spec JobSpec
	def  *studyDef
}

func (b *boundStudy) Name() string { return b.def.kind }

func (b *boundStudy) Run(opts SweepOptions) (Result, error) {
	return b.def.run(b.spec, opts)
}

// Points reports the study's design-point count.
func (b *boundStudy) Points() int { return b.def.points(b.spec) }

// Per-kind hooks. These are the former JobSpec switch arms, now owned by
// the registry entries above.

func dseDefaults(s JobSpec) JobSpec {
	if s.Scale == "" {
		s.Scale = "small"
	}
	return s
}

func dseValidate(s JobSpec) error {
	if len(s.Apps) == 0 || len(s.Techs) == 0 || len(s.Widths) == 0 {
		return fmt.Errorf("core: job spec: dse needs apps, techs and widths")
	}
	for _, a := range append(append([]string{}, s.Apps...), s.Techs...) {
		if strings.TrimSpace(a) == "" {
			return fmt.Errorf("core: job spec: blank app or tech name")
		}
	}
	for _, w := range s.Widths {
		if w <= 0 {
			return fmt.Errorf("core: job spec: width %d out of range", w)
		}
	}
	switch s.Scale {
	case "", "small", "full":
	default:
		return fmt.Errorf("core: job spec: scale %q (want small or full)", s.Scale)
	}
	return nil
}

func netDefaults(s JobSpec) JobSpec {
	def := DefaultNetStudy()
	if s.Nodes == 0 {
		s.Nodes = def.Nodes
	}
	if s.Steps == 0 {
		s.Steps = def.Steps
	}
	if len(s.Fractions) == 0 {
		s.Fractions = def.Fractions
	}
	return s
}

func netValidate(s JobSpec) error {
	if s.Nodes < 0 || s.Steps < 0 {
		return fmt.Errorf("core: job spec: negative nodes or steps")
	}
	for _, f := range s.Fractions {
		if f <= 0 || f > 1 {
			return fmt.Errorf("core: job spec: fraction %v out of (0, 1]", f)
		}
	}
	return nil
}

// netConfig assembles the net studies' config from a defaulted spec.
func (s JobSpec) netConfig() NetStudyConfig {
	return NetStudyConfig{Nodes: s.Nodes, Steps: s.Steps, Fractions: s.Fractions}
}
