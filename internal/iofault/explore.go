package iofault

// The crash-point exploration harness (ALICE/CrashMonkey-style): run a
// persistence workload once to learn its operation count, then replay it
// once per operation with a crash scheduled right after that operation,
// materialize every legal post-crash filesystem the model distinguishes,
// and hand each to a per-surface verifier that runs recovery and asserts
// the codebase's one invariant — recovery converges to the uninterrupted
// outcome or fails with a typed error; never a wedge, never silent
// corruption.

import "fmt"

// CrashPoint is one enumerated crash: the filesystem image a restarted
// process would find after the workload's first Op operations, under one
// retention variant, plus whatever error the crashed run itself saw.
type CrashPoint struct {
	// Op is how many of the workload's mutating operations completed
	// before the crash (0 = the workload never reached the disk). The
	// setup's operations are not enumerated; setups that mean to establish
	// durable prior state must fsync it like any other writer.
	Op int
	// Retention is which legal post-crash state Image holds.
	Retention CrashRetention
	// Image is the post-crash filesystem; run recovery against it.
	Image *MemFS
	// WorkloadErr is what the crashed workload returned. Surfaces that
	// fail loudly return an error chaining ErrCrashed; surfaces that
	// degrade gracefully (the cache's in-memory-only mode) may return nil.
	WorkloadErr error
}

func (cp CrashPoint) String() string {
	return fmt.Sprintf("crash after op %d (%s)", cp.Op, cp.Retention)
}

// Explore enumerates every crash point of workload. setup builds the
// starting filesystem (usually empty, sometimes pre-populated with prior
// state); workload drives the persistence code under test; verify runs
// recovery against one post-crash image and returns an error if the
// invariant does not hold. The workload must be deterministic in its
// operation sequence — single sweep worker, fixed seeds — so that "crash
// after op N" names the same state on every run.
//
// Explore returns the number of workload operations enumerated (setup's
// own operations are established state, not crash points — so tests can
// assert the surface was actually exercised) and the first violation.
func Explore(setup func() (*MemFS, error), workload func(m *MemFS) error, verify func(cp CrashPoint) error) (int, error) {
	m, err := setup()
	if err != nil {
		return 0, fmt.Errorf("iofault: explore setup: %w", err)
	}
	base := m.Ops() // setup's own operations are established state, not crash points
	if err := workload(m); err != nil {
		return 0, fmt.Errorf("iofault: fault-free reference run failed: %w", err)
	}
	n := m.Ops()
	if n == base {
		return 0, fmt.Errorf("iofault: workload performed no mutating operations — nothing to explore")
	}
	for i := base; i < n; i++ {
		m, err := setup()
		if err != nil {
			return i, fmt.Errorf("iofault: explore setup (op %d): %w", i, err)
		}
		m.CrashAfter(i)
		werr := workload(m)
		for _, r := range Retentions {
			cp := CrashPoint{Op: i - base, Retention: r, Image: m.CrashImage(r), WorkloadErr: werr}
			if err := verify(cp); err != nil {
				return i, fmt.Errorf("iofault: %v: %w", cp, err)
			}
		}
	}
	return n - base, nil
}
