package core

import (
	"context"
	"fmt"

	"sst/internal/config"
	"sst/internal/stats"
)

// The PIM study — the poster's "exploring novel architectures" headline —
// compares a conventional wide cache-based core against a
// processing-in-memory design point: many fine-grained hardware threads on
// a lightweight scalar pipeline sitting close to a high-bank-parallelism
// memory with no cache hierarchy. The expected shape: PIM wins on
// low-locality workloads (GUPS) by tolerating latency with thread-level
// parallelism, and loses on cache-friendly workloads where the conventional
// machine's SRAM does the work.

// ConventionalMachine is the cache-based reference node.
func ConventionalMachine(app string, scale Scale) *config.MachineConfig {
	m := SweepMachine(app, "ddr3-1333", 4, scale)
	m.Name = fmt.Sprintf("conventional-%s", app)
	return m
}

// PIMMachine is the near-memory design point: a 1 GHz, 16-thread scalar
// core with no caches on the same DRAM technology (near-memory placement is
// modelled by higher bank parallelism and no cache detour).
func PIMMachine(app string, scale Scale) *config.MachineConfig {
	base := SweepMachine(app, "ddr3-1333", 1, scale)
	return &config.MachineConfig{
		Name: fmt.Sprintf("pim-%s", app),
		Node: config.NodeSpec{
			Cores: 1,
			CPU: config.CPUSpec{
				Kind: "threaded", Freq: "1GHz", Threads: 16,
			},
			// No caches: loads go straight at memory.
			Mem: config.MemSpec{Preset: "ddr3-1333", Channels: 4},
		},
		Workload: base.Workload,
	}
}

// PIMStudyResult holds one workload's comparison.
type PIMStudyResult struct {
	App          string
	Conventional *NodeResult
	PIM          *NodeResult
}

// PIMSpeedup returns conventional-runtime / PIM-runtime (>1 means the PIM
// node is faster).
func (r PIMStudyResult) PIMSpeedup() float64 {
	if r.PIM.Seconds == 0 {
		return 0
	}
	return r.Conventional.Seconds / r.PIM.Seconds
}

// PIMResult is the PIM study's Result: the rendered table plus the
// per-workload comparisons behind it.
type PIMResult struct {
	TableResult
	Results []PIMStudyResult
}

// PIMStudy runs the comparison over the given workloads.
func PIMStudy(apps []string, scale Scale, opts SweepOptions) (*PIMResult, error) {
	t := stats.NewTable("PIM vs conventional: exploring a novel architecture",
		"app", "conventional_ms", "pim_ms", "pim_speedup", "conv_l1_hit")
	// Both machines of every app comparison are independent design points:
	// flatten to app-major {conventional, pim} pairs and fan them out.
	flat := make([]*NodeResult, 2*len(apps))
	_, err := runPointsDetailed(opts, len(flat), func(ctx context.Context, i int) error {
		app := apps[i/2]
		cfg, kind := ConventionalMachine(app, scale), "conventional"
		if i%2 == 1 {
			cfg, kind = PIMMachine(app, scale), "pim"
		}
		res, err := runMachinePoint(ctx, opts, cfg)
		if err != nil {
			return fmt.Errorf("core: pim study %s %s: %w", app, kind, err)
		}
		flat[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []PIMStudyResult
	for i, app := range apps {
		r := PIMStudyResult{App: app, Conventional: flat[2*i], PIM: flat[2*i+1]}
		out = append(out, r)
		t.AddRow(app, r.Conventional.Seconds*1e3, r.PIM.Seconds*1e3, r.PIMSpeedup(), r.Conventional.L1HitRate)
	}
	return &PIMResult{TableResult: TableResult{Tab: t}, Results: out}, nil
}
