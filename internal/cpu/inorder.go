package cpu

import (
	"sst/internal/frontend"
	"sst/internal/mem"
	"sst/internal/sim"
	"sst/internal/stats"
)

// InOrder is a scalar, blocking core: one operation per cycle, loads stall
// the pipeline until data returns, stores are posted through a small store
// queue. It is the simplest timing model and the baseline against which
// latency tolerance (caches, multithreading) is measured.
type InOrder struct {
	cfg    Config
	clock  *sim.Clock
	engine *sim.Engine
	stream frontend.Stream
	memory mem.Device
	pred   *predictor
	st     coreStats

	op         frontend.Op
	haveOp     bool
	bubble     sim.Cycle
	waiting    bool // blocked on an outstanding load
	storesOut  int
	running    bool
	done       bool
	onDone     func()
	startCycle sim.Cycle
	endCycle   sim.Cycle
}

// NewInOrder builds the core. scope may be nil.
func NewInOrder(engine *sim.Engine, clock *sim.Clock, cfg Config, stream frontend.Stream, memory mem.Device, scope *stats.Scope) (*InOrder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &InOrder{
		cfg:    cfg,
		clock:  clock,
		engine: engine,
		stream: stream,
		memory: memory,
		pred:   newPredictor(cfg.PredictorEntries),
		st:     newCoreStats(ensureScope(scope, cfg.Name)),
	}
	return c, nil
}

// Name implements sim.Component.
func (c *InOrder) Name() string { return c.cfg.Name }

// Start arms the core.
func (c *InOrder) Start(onDone func()) {
	c.onDone = onDone
	c.startCycle = c.clock.NextCycle()
	c.wake()
}

func (c *InOrder) wake() {
	if c.running || c.done {
		return
	}
	c.running = true
	c.clock.RegisterNamed(c.cfg.Name, c.tick)
}

func (c *InOrder) sleep() bool {
	c.running = false
	c.st.sleeps.Inc()
	return false
}

func (c *InOrder) tick(cycle sim.Cycle) bool {
	c.st.cycles.Inc()
	if c.bubble > 0 {
		c.bubble--
		c.st.stallBubble.Inc()
		return true
	}
	if c.waiting {
		// Spurious tick between wake scheduling and data return.
		c.st.stallMem.Inc()
		return true
	}
	if !c.haveOp {
		if !c.stream.Next(&c.op) {
			return c.finish(cycle)
		}
		c.haveOp = true
	}
	op := &c.op
	switch op.Class {
	case frontend.ClassLoad:
		c.st.loads.Inc()
		c.haveOp = false
		c.waiting = true
		c.st.retired.Inc()
		c.memory.Access(mem.Read, op.Addr, int(op.Size), func() {
			c.waiting = false
			c.wake()
		})
		return c.sleep()
	case frontend.ClassStore:
		if c.storesOut >= c.cfg.StoreQ {
			c.st.stallMem.Inc()
			return true
		}
		c.st.stores.Inc()
		c.storesOut++
		addr, size := op.Addr, int(op.Size)
		c.memory.Access(mem.Write, addr, size, func() { c.storesOut-- })
	case frontend.ClassBranch:
		c.st.branches.Inc()
		if c.pred.mispredicted(op.PC, op.Taken) {
			c.st.mispredicts.Inc()
			c.bubble = c.cfg.BranchPenalty
		}
	case frontend.ClassFloat:
		c.st.flops.Inc()
		c.bubble = c.cfg.FloatLat - 1
	case frontend.ClassInt:
		c.bubble = c.cfg.IntLat - 1
	}
	c.st.retired.Inc()
	c.haveOp = false
	return true
}

func (c *InOrder) finish(cycle sim.Cycle) bool {
	if c.storesOut > 0 {
		// Drain the store queue before declaring completion.
		c.st.stallMem.Inc()
		return true
	}
	c.done = true
	c.running = false
	c.endCycle = cycle
	if c.onDone != nil {
		done := c.onDone
		c.onDone = nil
		done()
	}
	return false
}

// Done reports stream exhaustion.
func (c *InOrder) Done() bool { return c.done }

// Retired returns committed operations.
func (c *InOrder) Retired() uint64 { return c.st.retired.Count() }

// Cycles returns core cycles consumed while running (sleep cycles during
// memory stalls count, since the core was occupied).
func (c *InOrder) Cycles() sim.Cycle {
	if c.done {
		return c.endCycle - c.startCycle
	}
	return c.clock.Cycle() - c.startCycle
}

// IPC returns retired operations per cycle.
func (c *InOrder) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.Retired()) / float64(cy)
}
