package cpu

import (
	"testing"

	"sst/internal/frontend"
	"sst/internal/isa"
	"sst/internal/mem"
	"sst/internal/sim"
	"sst/internal/stats"
)

// rig bundles a simulation, a memory and a stats registry for core tests.
type rig struct {
	engine *sim.Engine
	clock  *sim.Clock
	mem    *mem.SimpleMemory
	reg    *stats.Registry
}

func newRig(t testing.TB, memLatency sim.Time) *rig {
	t.Helper()
	e := sim.NewEngine()
	return &rig{
		engine: e,
		clock:  sim.NewClock(e, 2*sim.GHz),
		mem:    mem.NewSimpleMemory(e, "mem", memLatency, 0, nil),
		reg:    stats.NewRegistry(),
	}
}

func intStream(n int) frontend.Stream {
	ops := make([]frontend.Op, n)
	for i := range ops {
		ops[i] = frontend.Op{Class: frontend.ClassInt, Dst: uint8(1 + i%8)}
	}
	return &frontend.SliceStream{Ops: ops}
}

func runCore(t testing.TB, r *rig, c Core) {
	t.Helper()
	finished := false
	c.Start(func() { finished = true })
	r.engine.RunAll()
	if !finished || !c.Done() {
		t.Fatalf("core %s never finished (done=%v)", c.Name(), c.Done())
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := Config{Name: "c"}
	if err := cfg.Validate(); err == nil {
		t.Error("zero frequency accepted")
	}
	cfg = Config{Name: "c", Freq: sim.GHz, PredictorEntries: 3}
	if err := cfg.Validate(); err == nil {
		t.Error("non-power-of-two predictor accepted")
	}
	cfg = DefaultConfig("c", 4)
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	if cfg.Width != 4 || cfg.LoadQ != 16 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestInOrderIntIPC(t *testing.T) {
	r := newRig(t, 0)
	c, err := NewInOrder(r.engine, r.clock, Config{Name: "c", Freq: 2 * sim.GHz, IntLat: 1}, intStream(1000), r.mem, r.reg.Scope("c"))
	if err != nil {
		t.Fatal(err)
	}
	runCore(t, r, c)
	if c.Retired() != 1000 {
		t.Fatalf("retired = %d", c.Retired())
	}
	if ipc := c.IPC(); ipc < 0.95 || ipc > 1.05 {
		t.Errorf("scalar int IPC = %.3f, want ~1", ipc)
	}
}

func TestInOrderLoadsBlock(t *testing.T) {
	// 100ns memory at 2GHz = 200 cycles per load; blocking core IPC
	// collapses accordingly.
	r := newRig(t, 100*sim.Nanosecond)
	ops := make([]frontend.Op, 100)
	for i := range ops {
		ops[i] = frontend.Op{Class: frontend.ClassLoad, Addr: uint64(i * 64), Size: 8, Dst: 1}
	}
	c, _ := NewInOrder(r.engine, r.clock, Config{Name: "c", Freq: 2 * sim.GHz}, &frontend.SliceStream{Ops: ops}, r.mem, r.reg.Scope("c"))
	runCore(t, r, c)
	if ipc := c.IPC(); ipc > 0.01 {
		t.Errorf("blocking-load IPC = %.4f, expected ~1/200", ipc)
	}
	// The core must sleep during stalls, not spin: the engine should
	// have handled far fewer events than elapsed cycles.
	if c.Cycles() < 100*190 {
		t.Errorf("cycles = %d, want ~20000", c.Cycles())
	}
}

func TestInOrderFloatLatency(t *testing.T) {
	r := newRig(t, 0)
	ops := make([]frontend.Op, 100)
	for i := range ops {
		ops[i] = frontend.Op{Class: frontend.ClassFloat, Dst: 1}
	}
	c, _ := NewInOrder(r.engine, r.clock, Config{Name: "c", Freq: 2 * sim.GHz, FloatLat: 4}, &frontend.SliceStream{Ops: ops}, r.mem, r.reg.Scope("c"))
	runCore(t, r, c)
	if ipc := c.IPC(); ipc < 0.2 || ipc > 0.3 {
		t.Errorf("scalar float IPC = %.3f, want ~0.25", ipc)
	}
}

func TestSuperscalarWidthScaling(t *testing.T) {
	// Independent int ops: IPC should approach the width.
	ipcAt := func(width int) float64 {
		r := newRig(t, 0)
		ops := make([]frontend.Op, 4000)
		for i := range ops {
			// No dependences: distinct destination registers, no
			// sources.
			ops[i] = frontend.Op{Class: frontend.ClassInt, Dst: uint8(1 + i%30)}
		}
		cfg := DefaultConfig("c", width)
		c, err := NewSuperscalar(r.engine, r.clock, cfg, &frontend.SliceStream{Ops: ops}, r.mem, r.reg.Scope("c"))
		if err != nil {
			t.Fatal(err)
		}
		runCore(t, r, c)
		return c.IPC()
	}
	for _, w := range []int{1, 2, 4, 8} {
		ipc := ipcAt(w)
		if ipc < float64(w)*0.9 || ipc > float64(w)*1.05 {
			t.Errorf("width %d: IPC = %.2f, want ~%d", w, ipc, w)
		}
	}
}

func TestSuperscalarDependenceChainSerializes(t *testing.T) {
	r := newRig(t, 0)
	// Each op reads the previous op's destination: IPC pinned to ~1
	// regardless of width.
	ops := make([]frontend.Op, 2000)
	for i := range ops {
		dst := uint8(1 + i%2)
		src := uint8(1 + (i+1)%2)
		ops[i] = frontend.Op{Class: frontend.ClassInt, Dst: dst, Src1: src}
	}
	c, _ := NewSuperscalar(r.engine, r.clock, DefaultConfig("c", 8), &frontend.SliceStream{Ops: ops}, r.mem, r.reg.Scope("c"))
	runCore(t, r, c)
	if ipc := c.IPC(); ipc > 1.1 {
		t.Errorf("dependence chain IPC = %.2f on 8-wide, want ~1", ipc)
	}
}

func TestSuperscalarMemoryLevelParallelism(t *testing.T) {
	// Independent loads with a deep load queue: total time must be far
	// below loads x latency (MLP), unlike the blocking core.
	lat := 100 * sim.Nanosecond
	run := func(width, lq int) sim.Time {
		r := newRig(t, lat)
		ops := make([]frontend.Op, 256)
		for i := range ops {
			ops[i] = frontend.Op{Class: frontend.ClassLoad, Addr: uint64(i * 64), Size: 8, Dst: uint8(1 + i%30)}
		}
		cfg := DefaultConfig("c", width)
		cfg.LoadQ = lq
		c, _ := NewSuperscalar(r.engine, r.clock, cfg, &frontend.SliceStream{Ops: ops}, r.mem, r.reg.Scope("c"))
		runCore(t, r, c)
		return r.engine.Now()
	}
	wide := run(4, 16)
	narrow := run(1, 1)
	if wide*4 > narrow {
		t.Errorf("MLP: 16-deep LQ took %v, 1-deep took %v; want >= 4x gap", wide, narrow)
	}
}

func TestSuperscalarWAWThroughLoads(t *testing.T) {
	// A load writes r1; a younger int op overwrites r1; a consumer of r1
	// must see the int op's (fast) readiness, not wait for the load.
	// With a stale-tag bug the consumer would deadlock or mis-time.
	r := newRig(t, 1*sim.Microsecond)
	ops := []frontend.Op{
		{Class: frontend.ClassLoad, Addr: 0, Size: 8, Dst: 1},
		{Class: frontend.ClassInt, Dst: 1},
		{Class: frontend.ClassInt, Src1: 1, Dst: 2},
		{Class: frontend.ClassInt, Dst: 3},
	}
	c, _ := NewSuperscalar(r.engine, r.clock, DefaultConfig("c", 1), &frontend.SliceStream{Ops: ops}, r.mem, r.reg.Scope("c"))
	runCore(t, r, c)
	if c.Retired() != 4 {
		t.Fatalf("retired = %d", c.Retired())
	}
}

func TestSuperscalarBranchMispredicts(t *testing.T) {
	r := newRig(t, 0)
	// Alternating taken/not-taken at one PC defeats a 2-bit counter.
	ops := make([]frontend.Op, 2000)
	for i := range ops {
		ops[i] = frontend.Op{Class: frontend.ClassBranch, PC: 0x100, Taken: i%2 == 0}
	}
	cfg := DefaultConfig("c", 4)
	c, _ := NewSuperscalar(r.engine, r.clock, cfg, &frontend.SliceStream{Ops: ops}, r.mem, r.reg.Scope("c"))
	runCore(t, r, c)
	if c.Mispredicts() < 500 {
		t.Errorf("mispredicts = %d, expected many on alternating pattern", c.Mispredicts())
	}
	if ipc := c.IPC(); ipc > 0.5 {
		t.Errorf("IPC = %.2f despite heavy mispredicts", ipc)
	}

	// Perfect predictor (0 entries): full speed.
	r2 := newRig(t, 0)
	cfg2 := DefaultConfig("c", 4)
	cfg2.PredictorEntries = 0
	ops2 := make([]frontend.Op, len(ops))
	copy(ops2, ops)
	c2, _ := NewSuperscalar(r2.engine, r2.clock, cfg2, &frontend.SliceStream{Ops: ops2}, r2.mem, nil)
	runCore(t, r2, c2)
	if c2.Mispredicts() != 0 {
		t.Errorf("perfect predictor mispredicted %d times", c2.Mispredicts())
	}
}

func TestSuperscalarExecStreamIntegration(t *testing.T) {
	// End-to-end: assemble a vector-sum program, run it on the
	// superscalar core over a cache over memory; verify both the
	// architectural result and that timing statistics accumulated.
	src := `
		li   r5, 4096       # base
		addi r6, r0, 0      # i
		addi r7, r0, 512    # n
		addi r8, r0, 0      # sum
	loop:
		slli r9, r6, 3
		add  r9, r9, r5
		ld   r10, 0(r9)
		add  r8, r8, r10
		addi r6, r6, 1
		blt  r6, r7, loop
		li   r11, 32768
		sd   r8, 0(r11)
		halt
	`
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := isa.NewMachine(p)
	// Seed the array with 1s.
	for i := 0; i < 512; i++ {
		m.Store(4096+uint64(i*8), 8, 1)
	}
	r := newRig(t, 20*sim.Nanosecond)
	cache, err := mem.NewCache(r.engine, mem.CacheConfig{
		Name: "l1", SizeBytes: 8 << 10, LineBytes: 64, Assoc: 2,
		HitLatency: 1 * sim.Nanosecond, MSHRs: 8, WriteBack: true,
	}, r.mem, r.reg.Scope("l1"))
	if err != nil {
		t.Fatal(err)
	}
	stream := frontend.NewExecStream(m, 0)
	c, err := NewSuperscalar(r.engine, r.clock, DefaultConfig("cpu", 2), stream, cache, r.reg.Scope("cpu"))
	if err != nil {
		t.Fatal(err)
	}
	runCore(t, r, c)
	if stream.Err() != nil {
		t.Fatal(stream.Err())
	}
	if got := m.Load(32768, 8); got != 512 {
		t.Fatalf("program result = %d, want 512", got)
	}
	if c.Retired() < 512*6 {
		t.Errorf("retired = %d, want >= %d", c.Retired(), 512*6)
	}
	if cache.Hits() == 0 || cache.Misses() == 0 {
		t.Errorf("cache untouched: hits=%d misses=%d", cache.Hits(), cache.Misses())
	}
	// 512 sequential 8B loads = 64 lines: misses should be ~64.
	if cache.Misses() > 80 {
		t.Errorf("cache misses = %d, want ~64", cache.Misses())
	}
}

func TestThreadedLatencyTolerance(t *testing.T) {
	// All-load streams against slow memory: 8 threads should overlap
	// latencies and beat 1 thread by several times.
	lat := 200 * sim.Nanosecond
	run := func(threads int) sim.Time {
		r := newRig(t, lat)
		var streams []frontend.Stream
		perThread := 512 / threads
		for ti := 0; ti < threads; ti++ {
			ops := make([]frontend.Op, perThread)
			for i := range ops {
				ops[i] = frontend.Op{Class: frontend.ClassLoad, Addr: uint64((ti*perThread + i) * 64), Size: 8, Dst: 1}
			}
			streams = append(streams, &frontend.SliceStream{Ops: ops})
		}
		cfg := Config{Name: "pim", Freq: sim.GHz, Threads: threads}
		c, err := NewThreaded(r.engine, r.clock, cfg, streams, r.mem, r.reg.Scope("pim"))
		if err != nil {
			t.Fatal(err)
		}
		runCore(t, r, c)
		if c.Retired() != 512 {
			t.Fatalf("retired = %d", c.Retired())
		}
		return r.engine.Now()
	}
	t1 := run(1)
	t8 := run(8)
	if t8*4 > t1 {
		t.Errorf("8 threads took %v vs 1 thread %v; want >= 4x speedup", t8, t1)
	}
}

func TestThreadedRoundRobinFairness(t *testing.T) {
	r := newRig(t, 0)
	mkStream := func(n int) frontend.Stream {
		ops := make([]frontend.Op, n)
		for i := range ops {
			ops[i] = frontend.Op{Class: frontend.ClassInt}
		}
		return &frontend.SliceStream{Ops: ops}
	}
	streams := []frontend.Stream{mkStream(100), mkStream(100), mkStream(100), mkStream(100)}
	cfg := Config{Name: "pim", Freq: sim.GHz, Threads: 4}
	c, _ := NewThreaded(r.engine, r.clock, cfg, streams, r.mem, r.reg.Scope("pim"))
	runCore(t, r, c)
	if c.Retired() != 400 {
		t.Fatalf("retired = %d", c.Retired())
	}
	// One shared issue slot: 400 ops need ~400 cycles.
	if cy := c.Cycles(); cy < 395 || cy > 450 {
		t.Errorf("cycles = %d, want ~400", cy)
	}
}

func TestThreadedStoresDrainBeforeDone(t *testing.T) {
	r := newRig(t, 500*sim.Nanosecond)
	ops := []frontend.Op{{Class: frontend.ClassStore, Addr: 0, Size: 8}}
	cfg := Config{Name: "pim", Freq: sim.GHz, Threads: 1, StoreQ: 2}
	c, _ := NewThreaded(r.engine, r.clock, cfg, []frontend.Stream{&frontend.SliceStream{Ops: ops}}, r.mem, nil)
	runCore(t, r, c)
	if r.engine.Now() < 500*sim.Nanosecond {
		t.Errorf("finished at %v, before the posted store drained", r.engine.Now())
	}
}

func TestThreadedEmptyStreams(t *testing.T) {
	r := newRig(t, 0)
	cfg := Config{Name: "pim", Freq: sim.GHz}
	c, _ := NewThreaded(r.engine, r.clock, cfg, nil, r.mem, nil)
	done := false
	c.Start(func() { done = true })
	r.engine.RunAll()
	if !done {
		t.Fatal("empty core never completed")
	}
}

func TestPredictor(t *testing.T) {
	p := newPredictor(16)
	// Train taken at one PC.
	for i := 0; i < 4; i++ {
		p.mispredicted(0x40, true)
	}
	if p.mispredicted(0x40, true) {
		t.Error("trained predictor mispredicted")
	}
	if !p.mispredicted(0x40, false) {
		t.Error("direction change not mispredicted")
	}
	var nilPred *predictor
	if nilPred.mispredicted(0, true) {
		t.Error("nil (perfect) predictor mispredicted")
	}
}

func TestCoreInterfaceCompliance(t *testing.T) {
	var _ Core = (*InOrder)(nil)
	var _ Core = (*Superscalar)(nil)
	var _ Core = (*Threaded)(nil)
}

func BenchmarkSuperscalarSimSpeed(b *testing.B) {
	r := newRig(b, 50*sim.Nanosecond)
	cfg, err := frontend.Profile("compute", uint64(b.N), 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := frontend.NewSynthetic(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cache, err := mem.NewCache(r.engine, mem.CacheConfig{
		Name: "l1", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4,
		HitLatency: sim.Nanosecond, MSHRs: 8, WriteBack: true,
	}, r.mem, nil)
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewSuperscalar(r.engine, r.clock, DefaultConfig("c", 4), s, cache, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	c.Start(func() {})
	r.engine.RunAll()
}
