package frontend

// KernelStream turns an instrumented Go function into an operation stream:
// the kernel runs in its own goroutine and emits operations through an
// Emitter; the consumer pulls them batch-by-batch. This is how the miniapp
// proxies in internal/workload drive the timing models with realistic
// address streams without being written in SR1 assembly.
//
// The kernel goroutine is strictly rate-limited by the consumer (bounded
// channel), and Close tears it down if the consumer stops early.
type KernelStream struct {
	out  chan []Op
	stop chan struct{}
	cur  []Op
	pos  int
	done bool
}

// batchSize balances channel crossings against buffering latency.
const batchSize = 4096

// Emitter is the kernel-side handle for producing operations.
type Emitter struct {
	batch []Op
	out   chan<- []Op
	stop  <-chan struct{}
	pc    uint64
	// aborted is set once the consumer has gone away.
	aborted bool
}

// Emit queues one operation. It returns false once the consumer has closed
// the stream; kernels should return promptly when that happens.
func (e *Emitter) Emit(op Op) bool {
	if e.aborted {
		return false
	}
	e.pc += 4
	if op.PC == 0 {
		op.PC = e.pc
	}
	e.batch = append(e.batch, op)
	if len(e.batch) >= batchSize {
		return e.flush()
	}
	return true
}

func (e *Emitter) flush() bool {
	if len(e.batch) == 0 {
		return !e.aborted
	}
	b := e.batch
	e.batch = make([]Op, 0, batchSize)
	select {
	case e.out <- b:
		return true
	case <-e.stop:
		e.aborted = true
		return false
	}
}

// Convenience emitters used heavily by workload kernels.

// Load emits an 8-byte load.
func (e *Emitter) Load(addr uint64) bool {
	return e.Emit(Op{Class: ClassLoad, Addr: addr, Size: 8})
}

// Store emits an 8-byte store.
func (e *Emitter) Store(addr uint64) bool {
	return e.Emit(Op{Class: ClassStore, Addr: addr, Size: 8})
}

// Flops emits n floating-point operations.
func (e *Emitter) Flops(n int) bool {
	for i := 0; i < n; i++ {
		if !e.Emit(Op{Class: ClassFloat}) {
			return false
		}
	}
	return true
}

// Ints emits n integer operations.
func (e *Emitter) Ints(n int) bool {
	for i := 0; i < n; i++ {
		if !e.Emit(Op{Class: ClassInt}) {
			return false
		}
	}
	return true
}

// Branch emits one branch with the given outcome.
func (e *Emitter) Branch(taken bool) bool {
	return e.Emit(Op{Class: ClassBranch, Taken: taken})
}

// NewKernelStream starts fn in a goroutine. fn must return when Emit
// reports false.
func NewKernelStream(fn func(*Emitter)) *KernelStream {
	k := &KernelStream{
		out:  make(chan []Op, 4),
		stop: make(chan struct{}),
	}
	em := &Emitter{
		batch: make([]Op, 0, batchSize),
		out:   k.out,
		stop:  k.stop,
	}
	go func() {
		defer close(k.out)
		fn(em)
		em.flush()
	}()
	return k
}

// Next implements Stream.
func (k *KernelStream) Next(op *Op) bool {
	if k.done {
		return false
	}
	for k.pos >= len(k.cur) {
		b, ok := <-k.out
		if !ok {
			k.done = true
			return false
		}
		k.cur, k.pos = b, 0
	}
	*op = k.cur[k.pos]
	k.pos++
	return true
}

// Close releases the kernel goroutine if the consumer stops early. It is
// idempotent and safe after natural exhaustion.
func (k *KernelStream) Close() {
	if k.stop != nil {
		select {
		case <-k.stop:
		default:
			close(k.stop)
		}
		// Drain so the producer's in-flight send unblocks.
		for range k.out {
		}
		k.done = true
	}
}
