package sim

import (
	"fmt"
	"sort"
)

// Component is anything that participates in a simulation. Components wire
// themselves to clocks and links at construction time; the interface exists
// so the Simulation container can enumerate them for setup, teardown and
// statistics.
type Component interface {
	// Name returns the component's unique instance name.
	Name() string
}

// Finisher is implemented by components that need a callback when the
// simulation ends (e.g. to flush statistics).
type Finisher interface {
	Finish()
}

// Simulation owns an engine, its clocks and a set of named components. It
// is the sequential top-level container; internal/par builds the parallel
// equivalent out of several of these.
type Simulation struct {
	engine *Engine
	clocks map[Hz]*Clock
	comps  map[string]Component
	order  []Component // insertion order, for deterministic Finish
	sorted []Component // name-sorted cache for Components; nil after Add
	links  []*Link
}

// New creates an empty simulation at time zero.
func New() *Simulation {
	return &Simulation{
		engine: NewEngine(),
		clocks: make(map[Hz]*Clock),
		comps:  make(map[string]Component),
	}
}

// Engine returns the simulation's event engine.
func (s *Simulation) Engine() *Engine { return s.engine }

// Now returns the current simulated time.
func (s *Simulation) Now() Time { return s.engine.Now() }

// Clock returns the shared clock at the given frequency, creating it on
// first use. Components at the same frequency share one clock so that a
// tick costs one event regardless of component count.
func (s *Simulation) Clock(freq Hz) *Clock {
	c, ok := s.clocks[freq]
	if !ok {
		c = NewClock(s.engine, freq)
		s.clocks[freq] = c
		if s.engine.SnapshotsEnabled() {
			s.engine.RegisterCheckpoint(c.label, c)
		}
	}
	return c
}

// Add registers a component. Names must be unique; collisions are a
// configuration error and panic during model construction.
func (s *Simulation) Add(c Component) {
	name := c.Name()
	if _, dup := s.comps[name]; dup {
		panic(fmt.Sprintf("sim: duplicate component name %q", name))
	}
	s.comps[name] = c
	s.order = append(s.order, c)
	s.sorted = nil
	if ck, ok := c.(Checkpointable); ok && s.engine.SnapshotsEnabled() {
		s.engine.RegisterCheckpoint("comp:"+name, ck)
	}
}

// Component returns the named component, or nil.
func (s *Simulation) Component(name string) Component { return s.comps[name] }

// Components returns all components sorted by name. The sort is computed
// once and cached until the next Add; callers iterate the returned slice
// but must not modify it.
func (s *Simulation) Components() []Component {
	if s.sorted == nil && len(s.comps) > 0 {
		out := make([]Component, 0, len(s.comps))
		for _, c := range s.comps {
			out = append(out, c)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
		s.sorted = out
	}
	return s.sorted
}

// Connect creates a link between two components' ports and records it.
// When the engine has snapshots enabled the link tracks its in-flight
// deliveries and registers as a checkpoint owner.
func (s *Simulation) Connect(name string, latency Time) (*Port, *Port) {
	a, b := Connect(s.engine, name, latency)
	s.links = append(s.links, a.link)
	if s.engine.SnapshotsEnabled() {
		a.link.trackForSnapshots()
		s.engine.RegisterCheckpoint("link:"+name, a.link)
	}
	return a, b
}

// Links returns all links created through the simulation.
func (s *Simulation) Links() []*Link { return s.links }

// Run advances the simulation until the given time, then returns the number
// of events handled.
func (s *Simulation) Run(until Time) uint64 { return s.engine.Run(until) }

// RunAll advances the simulation until no events remain.
func (s *Simulation) RunAll() uint64 { return s.engine.RunAll() }

// Finish invokes Finish on every component that implements Finisher, in the
// order components were added.
func (s *Simulation) Finish() {
	for _, c := range s.order {
		if f, ok := c.(Finisher); ok {
			f.Finish()
		}
	}
}
