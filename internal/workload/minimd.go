package workload

import (
	"fmt"

	"sst/internal/frontend"
	"sst/internal/sim"
)

// MiniMD builds a molecular-dynamics force-computation proxy (the Mantevo
// miniMD pattern): for each atom, walk its neighbor list (sequential index
// loads), gather each neighbor's position (spatially local but irregular),
// compute the Lennard-Jones pair interaction, and accumulate the force.
// The signature workload characteristics: a gather-dominated inner loop
// with moderate arithmetic intensity and neighbor locality that rewards
// caches but defeats simple stride prefetchers.
func MiniMD(atoms, neighbors, iters int, seed uint64) *Kernel {
	n := uint64(atoms)
	k := uint64(neighbors)
	const (
		posBytes   = 24 // x,y,z doubles
		forceBytes = 24
	)
	// Per pair: 1 index load + 3 position loads + ~12 flops; per atom: 3
	// position loads + 3 force stores.
	flops := uint64(iters) * n * k * 12
	bytes := uint64(iters) * n * (k*(8+posBytes) + posBytes + forceBytes)
	run := func(e *frontend.Emitter) {
		rng := sim.NewRNG(seed)
		// Precompute the neighbor lists once (deterministic): neighbor
		// indices cluster around each atom, as spatial sorting gives.
		nbr := make([]uint64, n*k)
		for i := uint64(0); i < n; i++ {
			for j := uint64(0); j < k; j++ {
				// Neighbors within a +/-64-atom window.
				d := int64(rng.Uint64n(129)) - 64
				t := int64(i) + d
				if t < 0 {
					t += int64(n)
				}
				nbr[i*k+j] = uint64(t) % n
			}
		}
		const (
			baseNbrList = 0x6000_0000
			basePos     = 0x6800_0000
			baseForce   = 0x7000_0000
		)
		for it := 0; it < iters; it++ {
			for i := uint64(0); i < n; i++ {
				// Own position.
				for c := uint64(0); c < 3; c++ {
					if !e.Load(basePos + i*posBytes + c*8) {
						return
					}
				}
				for j := uint64(0); j < k; j++ {
					// Neighbor index (streams through the list).
					if !e.Load(baseNbrList + (i*k+j)*8) {
						return
					}
					// Gather the neighbor's position.
					t := nbr[i*k+j]
					for c := uint64(0); c < 3; c++ {
						if !e.Load(basePos + t*posBytes + c*8) {
							return
						}
					}
					// LJ pair force: dx,dy,dz, r2, r6, coefficients.
					if !flopChain(e, 12, 6) {
						return
					}
				}
				// Accumulated force store.
				for c := uint64(0); c < 3; c++ {
					if !e.Store(baseForce + i*forceBytes + c*8) {
						return
					}
				}
				// Loop bookkeeping branch.
				if !e.Branch(i+1 < n) {
					return
				}
			}
		}
	}
	return &Kernel{
		Name:  fmt.Sprintf("minimd-a%d-k%d-i%d", atoms, neighbors, iters),
		Flops: flops, Bytes: bytes, Run: run,
	}
}
