package core

import (
	"fmt"

	"sst/internal/noc"
	"sst/internal/sim"
	"sst/internal/stats"
	"sst/internal/workload"
)

// WeakScalingStudy is the Fig. 5 analogue: weak scaling of Krylov solvers
// to growing rank counts. Each rank's per-iteration compute is fixed (weak
// scaling); what changes with scale is communication — halo exchanges stay
// neighbor-local while the all-reduces in every CG iteration grow with
// log(P) and congest. A multilevel-preconditioned solver variant sends
// ~40% more messages per rank (the study's measured ML overhead), so it
// falls off faster — the study's explanation for why the miniapp tracked
// ILU but not ML.

// SolverProfile describes one solver's per-iteration communication.
type SolverProfile struct {
	Name string
	// HaloBytes per neighbor per iteration; Neighbors counted per side.
	HaloBytes int
	Neighbors int
	// AllReduces per iteration (dot products / norms).
	AllReduces int
	// ExtraSmallMsgs models preconditioner chatter per iteration.
	ExtraSmallMsgs int
	// ComputePerIter is the fixed per-rank computation.
	ComputePerIter sim.Time
}

// CGProfile is an unpreconditioned CG iteration: SpMV halo + 2 reductions.
var CGProfile = SolverProfile{
	Name:      "cg",
	HaloBytes: 64 << 10, Neighbors: 1,
	AllReduces:     2,
	ComputePerIter: 25 * sim.Microsecond,
}

// MLProfile is a multilevel-preconditioned iteration: the coarse-grid
// cycle adds reductions and ~40% more small messages per rank.
var MLProfile = SolverProfile{
	Name:      "ml",
	HaloBytes: 64 << 10, Neighbors: 1,
	AllReduces:     4,
	ExtraSmallMsgs: 12,
	ComputePerIter: 25 * sim.Microsecond,
}

// scripts expands a solver profile for n ranks and iters iterations.
func (p SolverProfile) scripts(n, iters int) []*workload.Script {
	out := make([]*workload.Script, n)
	for r := 0; r < n; r++ {
		s := &workload.Script{}
		for it := 0; it < iters; it++ {
			s.Compute(p.ComputePerIter)
			for k := 1; k <= p.Neighbors; k++ {
				s.Send((r+k)%n, p.HaloBytes)
				s.Send((r-k+n)%n, p.HaloBytes)
			}
			for k := 1; k <= p.Neighbors; k++ {
				s.Recv((r - k + n) % n)
				s.Recv((r + k) % n)
			}
			for m := 0; m < p.ExtraSmallMsgs; m++ {
				s.Send((r+1+m%(n-1))%n, 512)
			}
			for m := 0; m < p.ExtraSmallMsgs; m++ {
				s.Recv((r - 1 - m%(n-1) + n) % n)
			}
			for a := 0; a < p.AllReduces; a++ {
				s.AllReduce(r, n, 8)
			}
		}
		out[r] = s
	}
	return out
}

// runWeakPoint runs one (profile, ranks) cell and returns time/iteration.
func runWeakPoint(p SolverProfile, ranks, iters int) (sim.Time, error) {
	topo, err := torusFor(ranks)
	if err != nil {
		return 0, err
	}
	engine := sim.NewEngine()
	net, err := noc.NewNetwork(engine, "net", topo, noc.DefaultConfig(), nil)
	if err != nil {
		return 0, err
	}
	app, err := workload.NewApp(engine, p.Name, net, p.scripts(ranks, iters))
	if err != nil {
		return 0, err
	}
	app.Start(nil)
	engine.RunAll()
	if !app.Done() {
		return 0, fmt.Errorf("core: weak scaling %s/%d deadlocked", p.Name, ranks)
	}
	return app.Elapsed() / sim.Time(iters), nil
}

// WeakScalingResult is the weak-scaling study's Result: the rendered table
// plus Efficiency[solver] = efficiencies in rank-count order.
type WeakScalingResult struct {
	TableResult
	Efficiency map[string][]float64
}

// WeakScalingStudy runs both solver profiles across the rank counts,
// reporting per-iteration time and weak-scaling efficiency relative to the
// smallest machine.
func WeakScalingStudy(rankCounts []int, iters int, opts SweepOptions) (*WeakScalingResult, error) {
	t := stats.NewTable("Fig 5: relative weak scaling of solvers (CG vs ML-preconditioned)",
		"solver", "ranks", "time_per_iter_ms", "efficiency_vs_smallest")
	eff := map[string][]float64{}
	// Every profile × rank-count cell owns its own engine and network, so
	// the cells fan out across the sweep worker pool.
	profiles := []SolverProfile{CGProfile, MLProfile}
	nr := len(rankCounts)
	flat := make([]sim.Time, len(profiles)*nr)
	err := runPoints(opts, len(flat), func(i int) error {
		p, ranks := profiles[i/nr], rankCounts[i%nr]
		tp, err := cachedTime(opts.Cache, weakPointKey(p, ranks, iters), func() (sim.Time, error) {
			return runWeakPoint(p, ranks, iters)
		})
		if err != nil {
			return err
		}
		flat[i] = tp
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range profiles {
		base := flat[pi*nr]
		for ri, ranks := range rankCounts {
			tp := flat[pi*nr+ri]
			e := float64(base) / float64(tp)
			eff[p.Name] = append(eff[p.Name], e)
			t.AddRow(p.Name, ranks, tp.Seconds()*1e3, e)
		}
	}
	return &WeakScalingResult{TableResult: TableResult{Tab: t}, Efficiency: eff}, nil
}
