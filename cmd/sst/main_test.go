package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sst/internal/cli"
	"sst/internal/core"
	"sst/internal/par"
	"sst/internal/sim"
	"syscall"
	"time"
)

const testMachine = `{
  "name": "cli-test",
  "node": {
    "cpu": {"kind": "superscalar", "freq": "2GHz", "width": 2},
    "l1": {"size": "32KB", "assoc": 4, "hit_lat": 2},
    "memory": {"preset": "ddr3-1333"}
  },
  "workload": {"kind": "stream", "n": 512, "iters": 1}
}`

func TestRunMachineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, []byte(testMachine), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true, obsFlags{}, "", "10us"); err != nil {
		t.Fatal(err)
	}
	tl := filepath.Join(dir, "timeline.csv")
	if err := run(path, true, obsFlags{format: core.FormatCSV}, tl, "1us"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("timeline empty")
	}
}

func TestRunMachineObsOutputs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, []byte(testMachine), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.json")
	ob := obsFlags{traceOut: trace, metricsOut: metrics, format: core.FormatJSON}
	if err := run(path, false, ob, "", "10us"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	labels := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			labels[ev.Name] = true
		}
	}
	// The acceptance bar: spans attributed to the cpu, the memory system
	// and at least one link must all appear.
	for _, want := range []string{"cpu", "dram", "dram.chan"} {
		found := false
		for l := range labels {
			if l == want || len(l) > len(want) && l[:len(want)] == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no trace span labeled %q (have %v)", want, labels)
		}
	}
	data, err = os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Engine struct {
			Events uint64 `json:"events"`
		} `json:"engine"`
		Links []struct {
			Name string `json:"name"`
			Msgs uint64 `json:"msgs"`
		} `json:"links"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if rep.Engine.Events == 0 {
		t.Error("metrics recorded zero events")
	}
	if len(rep.Links) == 0 {
		t.Error("metrics recorded no links")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent.json", false, obsFlags{}, "", "1us"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunBadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte(`{"name":"x"}`), 0o644)
	if err := run(path, false, obsFlags{}, "", "1us"); err == nil {
		t.Fatal("invalid config accepted")
	}
}

const testSystem = `{
  "name": "cli-sys",
  "topology": {"kind": "torus", "x": 2, "y": 2, "z": 2},
  "network": {"link_bw": 3.2e9, "inject_bw": 3.2e9, "link_lat": "100ns", "router_lat": "50ns"},
  "app": "charon",
  "steps": 2
}`

func TestRunSystemFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(testSystem), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSystem(path, obsFlags{}, 1, par.SyncPairwise, snapCfg{}); err != nil {
		t.Fatal(err)
	}
	metrics := filepath.Join(dir, "m.json")
	if err := runSystem(path, obsFlags{metricsOut: metrics}, 1, par.SyncPairwise, snapCfg{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(metrics); err != nil {
		t.Fatal(err)
	}
}

func TestRunSystemParallel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(testSystem), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []par.SyncMode{par.SyncGlobal, par.SyncPairwise} {
		if err := runSystem(path, obsFlags{}, 4, mode, snapCfg{}); err != nil {
			t.Fatalf("sync=%v: %v", mode, err)
		}
	}
	// The parallel run's metrics JSON must carry the runner section.
	metrics := filepath.Join(dir, "mp.json")
	if err := runSystem(path, obsFlags{metricsOut: metrics}, 2, par.SyncPairwise, snapCfg{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"par"`, `"mode": "pairwise"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("parallel metrics missing %s:\n%s", want, data)
		}
	}
}

// TestRunSystemParallelTrace: -trace-out with -par writes one trace file
// per rank, tagged ".rankN" before the extension.
func TestRunSystemParallelTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(testSystem), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "t.json")
	if err := runSystem(path, obsFlags{traceOut: trace}, 2, par.SyncPairwise, snapCfg{}); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		p := filepath.Join(dir, fmt.Sprintf("t.rank%d.json", rank))
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("rank %d trace: %v", rank, err)
		}
		var tr struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &tr); err != nil {
			t.Fatalf("rank %d trace not valid JSON: %v", rank, err)
		}
		if len(tr.TraceEvents) == 0 {
			t.Errorf("rank %d trace recorded no spans", rank)
		}
	}
}

func TestRankPath(t *testing.T) {
	cases := [][2]string{
		{"t.json", "t.rank3.json"},
		{"out/run.csv", "out/run.rank3.csv"},
		{"plain", "plain.rank3"},
		{"a.b/noext", "a.b/noext.rank3"},
	}
	for _, c := range cases {
		if got := rankPath(c[0], 3); got != c[1] {
			t.Errorf("rankPath(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

// TestRunSystemSnapshotRestore: slicing a run into snapshot intervals must
// leave a loadable snapshot, and restoring from a mid-run snapshot must
// reproduce the uninterrupted run's summary (asserted in detail by
// internal/dnoc's tests; here we assert the CLI plumbing completes and the
// snapshot file round-trips).
func TestRunSystemSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(testSystem), 0o644); err != nil {
		t.Fatal(err)
	}
	snapFile := filepath.Join(dir, "run.snap")
	for _, nranks := range []int{1, 2} {
		snap := snapCfg{every: 200 * sim.Microsecond, out: snapFile}
		if err := runSystem(path, obsFlags{}, nranks, par.SyncPairwise, snap); err != nil {
			t.Fatalf("nranks=%d sliced run: %v", nranks, err)
		}
		if _, err := os.Stat(snapFile); err != nil {
			t.Fatalf("nranks=%d: no snapshot written: %v", nranks, err)
		}
		// The final snapshot is the completed state; restoring it and
		// running to completion must succeed and change nothing.
		if err := runSystem(path, obsFlags{}, nranks, par.SyncPairwise,
			snapCfg{restore: snapFile}); err != nil {
			t.Fatalf("nranks=%d restore: %v", nranks, err)
		}
	}
}

func TestRunSystemMissing(t *testing.T) {
	err := runSystem("/nonexistent.json", obsFlags{}, 1, par.SyncPairwise, snapCfg{})
	if err == nil {
		t.Fatal("missing system accepted")
	}
	if cli.Code(err) != cli.ExitConfig {
		t.Fatalf("missing system file maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
}

// TestExitCodes pins the command's exit-code contract: config errors,
// interruption and generic failures are distinguishable to callers.
func TestExitCodes(t *testing.T) {
	if got := cli.Code(nil); got != cli.ExitOK {
		t.Errorf("clean run maps to exit %d", got)
	}
	if got := cli.Code(cli.Configf("bad flag")); got != cli.ExitConfig {
		t.Errorf("config error maps to exit %d, want %d", got, cli.ExitConfig)
	}
	if got := cli.Code(fmt.Errorf("run: %w", sim.ErrInterrupted)); got != cli.ExitInterrupted {
		t.Errorf("interrupted run maps to exit %d, want %d", got, cli.ExitInterrupted)
	}
	if got := cli.Code(fmt.Errorf("deadlocked")); got != cli.ExitFailure {
		t.Errorf("generic failure maps to exit %d, want %d", got, cli.ExitFailure)
	}
}

// TestSIGTERMTriggersInterrupt: cli.OnInterrupt fires on SIGTERM as
// well as SIGINT, so a supervisor's termination signal lands the
// simulation at its next poll point instead of killing the process.
func TestSIGTERMTriggersInterrupt(t *testing.T) {
	fired := make(chan struct{})
	detach := cli.OnInterrupt(func() { close(fired) })
	defer detach()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("OnInterrupt did not fire on SIGTERM")
	}
}
