package main

// The perf gate's own contract: benchmark lines parse (and echo through),
// a baseline benchmark missing from the run fails, alloc and byte growth
// beyond 1% fails, ns/op noise inside tolerance passes, and benchmarks
// not yet in the baseline are a note, never a failure.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkEngineHotLoop-8   \t12345678\t  85.3 ns/op\t  0 B/op\t  0 allocs/op",
		"BenchmarkSweepWorkers/workers=1-8 \t5\t 200000000 ns/op\t 88568526 B/op\t 1869492 allocs/op",
		"BenchmarkNoMem-4 \t100\t 12.5 ns/op",
		"PASS",
	}, "\n")
	var echo strings.Builder
	got := parse(strings.NewReader(in), &echo)
	if len(got) != 3 {
		t.Fatalf("parsed %d entries, want 3: %v", len(got), got)
	}
	e := got["BenchmarkEngineHotLoop"]
	if e.NsPerOp != 85.3 || e.BytesPerOp != 0 || e.AllocsPerOp != 0 {
		t.Errorf("EngineHotLoop = %+v", e)
	}
	e = got["BenchmarkSweepWorkers/workers=1"]
	if e.NsPerOp != 200000000 || e.AllocsPerOp != 1869492 {
		t.Errorf("SweepWorkers = %+v", e)
	}
	if e := got["BenchmarkNoMem"]; e.NsPerOp != 12.5 || e.BytesPerOp != 0 {
		t.Errorf("NoMem = %+v", e)
	}
	// The raw output passes through untouched for the log.
	if echo.String() != in+"\n" {
		t.Errorf("echo mangled the output:\n%q", echo.String())
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := baseline{Entries: map[string]entry{
		"BenchmarkA": {NsPerOp: 100},
		"BenchmarkB": {NsPerOp: 100},
	}}
	got := map[string]entry{"BenchmarkA": {NsPerOp: 100}}
	var out strings.Builder
	if !compare(base, got, 0.25, &out) {
		t.Fatal("missing benchmark passed the gate")
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkB: in baseline but not run") {
		t.Errorf("missing-benchmark verdict absent:\n%s", out.String())
	}
}

func TestCompareAllocAndByteRegressions(t *testing.T) {
	base := baseline{Entries: map[string]entry{
		"BenchmarkZeroAlloc": {NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkHeavy":     {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 100},
	}}
	// A single new allocation on a zero-alloc baseline fails (1% of 0 is 0).
	got := map[string]entry{
		"BenchmarkZeroAlloc": {NsPerOp: 100, BytesPerOp: 16, AllocsPerOp: 1},
		"BenchmarkHeavy":     {NsPerOp: 100, BytesPerOp: 1005, AllocsPerOp: 100},
	}
	var out strings.Builder
	if !compare(base, got, 0.25, &out) {
		t.Fatal("alloc regression passed the gate")
	}
	s := out.String()
	if !strings.Contains(s, "FAIL BenchmarkZeroAlloc: 1 allocs/op") {
		t.Errorf("alloc verdict absent:\n%s", s)
	}
	if !strings.Contains(s, "FAIL BenchmarkZeroAlloc: 16 B/op") {
		t.Errorf("bytes verdict absent:\n%s", s)
	}
	// Heavy's +0.5% B/op rides inside the 1% amortization slack.
	if strings.Contains(s, "FAIL BenchmarkHeavy") {
		t.Errorf("within-slack growth failed:\n%s", s)
	}
}

func TestCompareNsTolerance(t *testing.T) {
	base := baseline{Entries: map[string]entry{
		"BenchmarkDefault": {NsPerOp: 100},
		"BenchmarkTight":   {NsPerOp: 100, Tolerance: 0.02},
	}}
	// +20% is inside the 25% default but outside the per-entry 2%.
	got := map[string]entry{
		"BenchmarkDefault": {NsPerOp: 120},
		"BenchmarkTight":   {NsPerOp: 120},
	}
	var out strings.Builder
	if !compare(base, got, 0.25, &out) {
		t.Fatal("over-tolerance regression passed the gate")
	}
	s := out.String()
	if !strings.Contains(s, "ok   BenchmarkDefault") {
		t.Errorf("in-tolerance verdict wrong:\n%s", s)
	}
	if !strings.Contains(s, "FAIL BenchmarkTight") {
		t.Errorf("per-entry tolerance not applied:\n%s", s)
	}
	// A faster run always passes.
	out.Reset()
	if compare(base, map[string]entry{
		"BenchmarkDefault": {NsPerOp: 50},
		"BenchmarkTight":   {NsPerOp: 99},
	}, 0.25, &out) {
		t.Fatalf("faster run failed the gate:\n%s", out.String())
	}
}

func TestCompareExtraBenchmarkIsNoteNotFailure(t *testing.T) {
	base := baseline{Entries: map[string]entry{"BenchmarkA": {NsPerOp: 100}}}
	got := map[string]entry{
		"BenchmarkA":   {NsPerOp: 100},
		"BenchmarkNew": {NsPerOp: 5},
	}
	var out strings.Builder
	if compare(base, got, 0.25, &out) {
		t.Fatalf("extra benchmark failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "note: BenchmarkNew not in baseline") {
		t.Errorf("extra-benchmark note absent:\n%s", out.String())
	}
}

func TestParseCeilings(t *testing.T) {
	// Benchmark names carry their own '=' — the ceiling is after the last.
	got, err := parseCeilings("BenchmarkSweepWorkers/workers=4=12000000,BenchmarkSweepCacheMiss=9.5e7")
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkSweepWorkers/workers=4"] != 12000000 {
		t.Errorf("subbench ceiling = %v", got)
	}
	if got["BenchmarkSweepCacheMiss"] != 9.5e7 {
		t.Errorf("scientific-notation ceiling = %v", got)
	}
	if m, err := parseCeilings(""); err != nil || len(m) != 0 {
		t.Errorf("empty flag: %v %v", m, err)
	}
	for _, bad := range []string{"=5", "BenchmarkA=", "BenchmarkA=zero", "BenchmarkA=-1", "BenchmarkA"} {
		if _, err := parseCeilings(bad); err == nil {
			t.Errorf("ceiling %q accepted", bad)
		}
	}
}

func TestCompareHardCeilings(t *testing.T) {
	// The run is within the 1% relative slack of its baseline, but above
	// the absolute ceiling: the ceiling must fail it anyway.
	base := baseline{Entries: map[string]entry{
		"BenchmarkWarm": {NsPerOp: 100, BytesPerOp: 20000, AllocsPerOp: 200,
			MaxBytesPerOp: 20050, MaxAllocsPerOp: 201},
	}}
	got := map[string]entry{
		"BenchmarkWarm": {NsPerOp: 100, BytesPerOp: 20100, AllocsPerOp: 202},
	}
	var out strings.Builder
	if !compare(base, got, 0.25, &out) {
		t.Fatal("over-ceiling run passed the gate")
	}
	s := out.String()
	if !strings.Contains(s, "FAIL BenchmarkWarm: 20100 B/op exceeds hard ceiling 20050") {
		t.Errorf("bytes ceiling verdict absent:\n%s", s)
	}
	if !strings.Contains(s, "FAIL BenchmarkWarm: 202 allocs/op exceeds hard ceiling 201") {
		t.Errorf("allocs ceiling verdict absent:\n%s", s)
	}
	// Under the ceiling (and the relative slack) passes; a zero ceiling
	// means no ceiling at all.
	out.Reset()
	if compare(base, map[string]entry{
		"BenchmarkWarm": {NsPerOp: 100, BytesPerOp: 19000, AllocsPerOp: 199},
	}, 0.25, &out) {
		t.Fatalf("under-ceiling run failed:\n%s", out.String())
	}
}

func TestApplyAndCheckCeilings(t *testing.T) {
	entries := map[string]entry{"BenchmarkA": {BytesPerOp: 500, AllocsPerOp: 50}}
	if err := applyCeilings(entries, map[string]float64{"BenchmarkA": 1000},
		map[string]float64{"BenchmarkA": 100}); err != nil {
		t.Fatal(err)
	}
	e := entries["BenchmarkA"]
	if e.MaxBytesPerOp != 1000 || e.MaxAllocsPerOp != 100 {
		t.Fatalf("ceilings not applied: %+v", e)
	}
	// A typo'd name must not silently gate nothing.
	if err := applyCeilings(entries, map[string]float64{"BenchmarkTypo": 1}, nil); err == nil {
		t.Error("unknown -max-bytes benchmark accepted")
	}
	if err := applyCeilings(entries, nil, map[string]float64{"BenchmarkTypo": 1}); err == nil {
		t.Error("unknown -max-allocs benchmark accepted")
	}
	// checkCeilings refuses a baseline already above its own ceiling.
	var out strings.Builder
	if checkCeilings(entries, &out) {
		t.Fatalf("healthy baseline refused:\n%s", out.String())
	}
	entries["BenchmarkA"] = entry{BytesPerOp: 2000, AllocsPerOp: 50, MaxBytesPerOp: 1000}
	if !checkCeilings(entries, &out) {
		t.Fatal("over-ceiling baseline accepted")
	}
	if !strings.Contains(out.String(), "refusing baseline: BenchmarkA measured 2000 B/op") {
		t.Errorf("refusal verdict absent:\n%s", out.String())
	}
}

// TestBaselineCacheHitSpeedup gates the committed baseline itself: the
// all-hit sweep must stay orders of magnitude below the cold all-miss
// sweep (>=50x ns/op, >=100x B/op). The cold reference is the cache-miss
// benchmark — the sweep-workers path now runs on warm arenas and is
// itself orders of magnitude below cold. A baseline regeneration that
// erodes this means the hit path started doing real work.
func TestBaselineCacheHitSpeedup(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	cold, ok := base.Entries["BenchmarkSweepCacheMiss"]
	if !ok {
		t.Fatal("baseline lacks BenchmarkSweepCacheMiss")
	}
	hit, ok := base.Entries["BenchmarkSweepCacheHit"]
	if !ok {
		t.Fatal("baseline lacks BenchmarkSweepCacheHit")
	}
	if hit.NsPerOp*50 > cold.NsPerOp {
		t.Errorf("cache hit %.0f ns/op is less than 50x below cold %.0f", hit.NsPerOp, cold.NsPerOp)
	}
	if hit.BytesPerOp*100 > cold.BytesPerOp {
		t.Errorf("cache hit %.0f B/op is less than 100x below cold %.0f", hit.BytesPerOp, cold.BytesPerOp)
	}
}

// TestBaselineMemoryDiscipline pins the PR's headline acceptance
// criterion into the committed baseline forever: the warm-arena sweep at
// 4 workers must carry hard ceilings at least 5x below the pre-arena
// cold numbers (88,572,996 B/op and 1,869,553 allocs/op at the time the
// arenas landed), and the cold cache-miss sweep must be ceiling-gated so
// the cold path cannot quietly bloat either.
func TestBaselineMemoryDiscipline(t *testing.T) {
	const (
		preArenaBytes  = 88572996.0
		preArenaAllocs = 1869553.0
	)
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	warm, ok := base.Entries["BenchmarkSweepWorkers/workers=4"]
	if !ok {
		t.Fatal("baseline lacks BenchmarkSweepWorkers/workers=4")
	}
	if warm.MaxBytesPerOp <= 0 || warm.MaxAllocsPerOp <= 0 {
		t.Fatalf("workers=4 carries no hard ceilings: %+v", warm)
	}
	if warm.MaxBytesPerOp*5 > preArenaBytes {
		t.Errorf("workers=4 B/op ceiling %.0f is not 5x below the pre-arena %.0f",
			warm.MaxBytesPerOp, preArenaBytes)
	}
	if warm.MaxAllocsPerOp*5 > preArenaAllocs {
		t.Errorf("workers=4 allocs/op ceiling %.0f is not 5x below the pre-arena %.0f",
			warm.MaxAllocsPerOp, preArenaAllocs)
	}
	miss, ok := base.Entries["BenchmarkSweepCacheMiss"]
	if !ok {
		t.Fatal("baseline lacks BenchmarkSweepCacheMiss")
	}
	if miss.MaxBytesPerOp <= 0 || miss.MaxAllocsPerOp <= 0 {
		t.Fatalf("cache-miss sweep carries no hard ceilings: %+v", miss)
	}
}
