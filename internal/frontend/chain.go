package frontend

// ChainStream concatenates streams: when one ends, the next begins. It
// models multi-phase applications (assemble, then solve; compute, then
// communicate) whose phases have distinct statistical signatures — the
// phase structure the miniapp validation studies measure separately.
type ChainStream struct {
	Streams []Stream
	idx     int
	// Boundaries records the op index at which each phase ended, for
	// phase-attributed analysis.
	Boundaries []uint64
	count      uint64
}

// Next implements Stream.
func (c *ChainStream) Next(op *Op) bool {
	for c.idx < len(c.Streams) {
		if c.Streams[c.idx].Next(op) {
			c.count++
			return true
		}
		c.Boundaries = append(c.Boundaries, c.count)
		c.idx++
	}
	return false
}

// Phase returns the index of the stream currently being drawn from.
func (c *ChainStream) Phase() int { return c.idx }

// RepeatStream replays a finite generator N times by rebuilding it from a
// factory — synthetic iteration structure without buffering the stream.
type RepeatStream struct {
	// Build constructs iteration i's stream.
	Build func(i int) Stream
	// N is the iteration count.
	N   int
	i   int
	cur Stream
}

// Next implements Stream.
func (r *RepeatStream) Next(op *Op) bool {
	for {
		if r.cur == nil {
			if r.i >= r.N {
				return false
			}
			r.cur = r.Build(r.i)
			r.i++
		}
		if r.cur.Next(op) {
			return true
		}
		r.cur = nil
	}
}

// InterleaveStream round-robins over several streams, k ops at a time —
// a crude software-pipelining model where independent work from parallel
// loop nests mixes in the dynamic stream.
type InterleaveStream struct {
	Streams []Stream
	// Chunk is how many ops to draw from one stream before rotating
	// (default 1).
	Chunk int
	idx   int
	used  int
	live  []bool
	init  bool
}

// Next implements Stream.
func (s *InterleaveStream) Next(op *Op) bool {
	if !s.init {
		s.live = make([]bool, len(s.Streams))
		for i := range s.live {
			s.live[i] = true
		}
		if s.Chunk <= 0 {
			s.Chunk = 1
		}
		s.init = true
	}
	n := len(s.Streams)
	for tries := 0; tries < n; {
		if !s.live[s.idx] {
			s.idx = (s.idx + 1) % n
			s.used = 0
			tries++
			continue
		}
		if s.Streams[s.idx].Next(op) {
			s.used++
			if s.used >= s.Chunk {
				s.idx = (s.idx + 1) % n
				s.used = 0
			}
			return true
		}
		s.live[s.idx] = false
		s.idx = (s.idx + 1) % n
		s.used = 0
		tries++
	}
	return false
}
