package mem

import (
	"sst/internal/sim"
	"sst/internal/stats"
)

// Directory is a directory-based coherence controller: the scalable
// alternative to the snooping Bus. Where the bus broadcasts every
// transaction to every cache, the directory tracks each line's exact owner
// and sharer set and sends point-to-point messages only where copies
// exist — the message count scales with sharing, not with core count.
//
// Protocol (MESI, full-map directory):
//
//   - read, line owned M/E     → forward to owner, owner downgrades to S
//     and supplies data (dirty data also written back); fill Shared
//   - read, line shared        → fill Shared from below
//   - read, line idle          → fill Exclusive from below
//   - RFO/upgrade              → invalidate exactly the sharer set
//   - owner writeback          → directory entry cleared
//
// Clean evictions are silent (standard): the directory may later send an
// invalidation to a cache that no longer holds the line, which is
// harmless. Same-line transactions are serialized exactly as on the bus.
type Directory struct {
	name   string
	engine *sim.Engine
	lower  Device
	// latency is the one-way requester↔directory message time; snoops
	// (directory↔owner/sharer) pay it again.
	latency sim.Time
	ports   []*DirPort

	entries map[uint64]*dirEntry
	pending map[uint64][]func()

	transactions  *stats.Counter
	snoopsSent    *stats.Counter
	invals        *stats.Counter
	forwards      *stats.Counter
	writebacks    *stats.Counter
	lineConflicts *stats.Counter
}

// dirEntry tracks one line: an exclusive owner port (M/E, -1 if none) and
// a sharer bitmask (S copies).
type dirEntry struct {
	addr    uint64
	owner   int
	sharers uint64
}

// NewDirectory builds a directory controller in front of lower. Up to 64
// ports are supported (full-map bitmask). scope may be nil.
func NewDirectory(engine *sim.Engine, name string, latency sim.Time, lower Device, scope *stats.Scope) *Directory {
	d := &Directory{
		name:    name,
		engine:  engine,
		lower:   lower,
		latency: latency,
		entries: make(map[uint64]*dirEntry),
		pending: make(map[uint64][]func()),
	}
	if scope == nil {
		scope = stats.NewRegistry().Scope(name)
	}
	d.transactions = scope.Counter("transactions")
	d.snoopsSent = scope.Counter("snoops_sent")
	d.invals = scope.Counter("invalidations")
	d.forwards = scope.Counter("forwards")
	d.writebacks = scope.Counter("writebacks")
	d.lineConflicts = scope.Counter("line_conflicts")
	return d
}

// Name returns the controller's instance name.
func (d *Directory) Name() string { return d.name }

// SnoopsSent exposes the point-to-point snoop count (the scalability
// metric the bus-vs-directory ablation compares).
func (d *Directory) SnoopsSent() uint64 { return d.snoopsSent.Count() }

// Port attaches a cache (or nil for a cache-less master).
func (d *Directory) Port(c *Cache) *DirPort {
	if len(d.ports) >= 64 {
		panic("mem: directory supports at most 64 ports")
	}
	p := &DirPort{dir: d, id: len(d.ports), cache: c}
	d.ports = append(d.ports, p)
	return p
}

// acquire/release serialize same-line transactions (see Bus).
func (d *Directory) acquire(addr uint64, body func()) {
	if q, busy := d.pending[addr]; busy {
		d.lineConflicts.Inc()
		d.pending[addr] = append(q, body)
		return
	}
	d.pending[addr] = nil
	body()
}

func (d *Directory) release(addr uint64) {
	q, ok := d.pending[addr]
	if !ok {
		return
	}
	if len(q) == 0 {
		delete(d.pending, addr)
		return
	}
	next := q[0]
	d.pending[addr] = q[1:]
	next()
}

func (d *Directory) entry(addr uint64) *dirEntry {
	e := d.entries[addr]
	if e == nil {
		e = &dirEntry{addr: addr, owner: -1}
		d.entries[addr] = e
	}
	return e
}

// invalidateSharers snoops exactly the recorded copies (except skip) and
// reports whether any was dirty. Sharer snoops run in parallel, so the
// latency cost is one round trip regardless of count.
func (d *Directory) invalidateSharers(e *dirEntry, skip int) (had, dirty bool) {
	visit := func(id int) {
		if id == skip || id < 0 || id >= len(d.ports) {
			return
		}
		c := d.ports[id].cache
		if c == nil {
			return
		}
		d.snoopsSent.Inc()
		h, dr := c.snoopInvalidate(e.addr)
		if h {
			d.invals.Inc()
			had = true
		}
		if dr {
			dirty = true
		}
	}
	if e.owner >= 0 {
		visit(e.owner)
	}
	for id := 0; id < len(d.ports); id++ {
		if e.sharers&(1<<uint(id)) != 0 {
			visit(id)
		}
	}
	e.owner = -1
	e.sharers = 0
	return had, dirty
}

// DirPort is one cache's connection; it implements the same lower-level
// interfaces as BusPort, so caches work unmodified over a directory.
type DirPort struct {
	dir   *Directory
	id    int
	cache *Cache
}

var (
	_ Device        = (*DirPort)(nil)
	_ Fetcher       = (*DirPort)(nil)
	_ Upgrader      = (*DirPort)(nil)
	_ WritebackSink = (*DirPort)(nil)
)

// AttachCache binds a cache built with this port as its lower device.
func (p *DirPort) AttachCache(c *Cache) { p.cache = c }

// Fetch implements Fetcher.
func (p *DirPort) Fetch(op Op, addr uint64, size int, done func(excl bool)) {
	d := p.dir
	d.acquire(addr, func() {
		d.transactions.Inc()
		e := d.entry(addr)
		finish := func(excl bool) {
			done(excl)
			d.release(addr)
		}
		if op == Write {
			// RFO: invalidate the exact copy set.
			_, dirty := d.invalidateSharers(e, p.id)
			e.owner = p.id
			if dirty {
				d.writebacks.Inc()
				d.lower.Access(Write, addr, size, nil)
				// Dirty owner forwards cache-to-cache: requester
				// pays two message hops, no memory read.
				d.forwards.Inc()
				d.engine.Schedule(2*d.latency, func(any) { finish(true) }, nil)
				return
			}
			d.engine.Schedule(d.latency, func(any) {
				d.lower.Access(Read, addr, size, func() {
					d.engine.Schedule(d.latency, func(any) { finish(true) }, nil)
				})
			}, nil)
			return
		}
		// Shared read.
		if e.owner >= 0 && e.owner != p.id {
			// Forward to the owner; it downgrades and supplies.
			oc := d.ports[e.owner].cache
			d.snoopsSent.Inc()
			var dirty bool
			if oc != nil {
				_, dirty = oc.snoopRead(addr)
			}
			e.sharers |= 1 << uint(e.owner)
			e.owner = -1
			e.sharers |= 1 << uint(p.id)
			d.forwards.Inc()
			if dirty {
				d.writebacks.Inc()
				d.lower.Access(Write, addr, size, nil)
			}
			// Three message hops: requester→dir→owner→requester.
			d.engine.Schedule(3*d.latency, func(any) { finish(false) }, nil)
			return
		}
		excl := e.sharers&^(1<<uint(p.id)) == 0 && e.owner < 0
		if excl {
			e.owner = p.id
		} else {
			e.sharers |= 1 << uint(p.id)
		}
		d.engine.Schedule(d.latency, func(any) {
			d.lower.Access(Read, addr, size, func() {
				d.engine.Schedule(d.latency, func(any) { finish(excl) }, nil)
			})
		}, nil)
	})
}

// Upgrade implements Upgrader.
func (p *DirPort) Upgrade(addr uint64, size int, done func()) {
	d := p.dir
	d.acquire(addr, func() {
		d.transactions.Inc()
		e := d.entry(addr)
		d.invalidateSharers(e, p.id)
		e.owner = p.id
		d.engine.Schedule(2*d.latency, func(any) {
			done()
			d.release(addr)
		}, nil)
	})
}

// WriteBack implements WritebackSink: the owner returns dirty data.
func (p *DirPort) WriteBack(addr uint64, size int) {
	d := p.dir
	d.acquire(addr, func() {
		d.transactions.Inc()
		d.writebacks.Inc()
		e := d.entry(addr)
		if e.owner == p.id {
			e.owner = -1
		}
		d.engine.Schedule(d.latency, func(any) {
			d.lower.Access(Write, addr, size, nil)
			d.release(addr)
		}, nil)
	})
}

// Access implements Device for cache-less masters.
func (p *DirPort) Access(op Op, addr uint64, size int, done func()) {
	if op == Read {
		p.Fetch(Read, addr, size, func(bool) {
			if done != nil {
				done()
			}
		})
		return
	}
	d := p.dir
	d.acquire(addr, func() {
		d.transactions.Inc()
		e := d.entry(addr)
		d.invalidateSharers(e, p.id)
		d.engine.Schedule(d.latency, func(any) {
			d.lower.Access(Write, addr, size, func() {
				if done != nil {
					done()
				}
				d.release(addr)
			})
		}, nil)
	})
}
