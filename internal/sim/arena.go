package sim

// EventArena carries an engine's recycled event structs and queue backing
// across engine lifetimes. A sweep worker lends the arena to each design
// point's engine in turn: Lend moves the pooled storage into a fresh
// engine, Harvest takes it back — scrubbed — when the point is done, so
// consecutive points reuse one working set instead of growing a new free
// list from nothing.
//
// Lending is a move, not a share: while an engine holds the storage the
// arena is empty, so a point that dies mid-run can at worst lose the
// pooled events to the garbage collector — it can never leak its state
// into the next point. Harvest clears every handler, payload and label
// reference before the arena accepts an event back.
type EventArena struct {
	free []*event
	qbuf []*event
	// max is the high-water trim: Harvest keeps at most this many events,
	// bounding what a pathological point (huge pending-queue spike) can
	// make every later point carry. Non-positive means DefaultArenaEvents.
	max int
}

// DefaultArenaEvents bounds the retained free list of an EventArena:
// far above any model's steady-state pending count, low enough that a
// resident server's per-worker arenas stay small (~4 MB at 64 B/event).
const DefaultArenaEvents = 1 << 16

// NewEventArena returns an empty arena with the default high-water trim.
func NewEventArena() *EventArena { return &EventArena{max: DefaultArenaEvents} }

// SetMaxEvents overrides the high-water trim; n <= 0 restores the default.
func (a *EventArena) SetMaxEvents(n int) {
	if n <= 0 {
		n = DefaultArenaEvents
	}
	a.max = n
}

// Len reports how many recycled events the arena currently holds.
func (a *EventArena) Len() int { return len(a.free) }

// Lend moves the arena's pooled storage into e. Call once, on a freshly
// constructed engine. The arena is empty until the matching Harvest.
func (a *EventArena) Lend(e *Engine) {
	if len(e.free) > 0 || e.q.Len() > 0 {
		panic("sim: EventArena.Lend on an engine that is already running")
	}
	e.free = a.free
	a.free = nil
	if a.qbuf != nil {
		e.q.a = a.qbuf[:0]
		a.qbuf = nil
	}
}

// Harvest takes the storage back from a finished (or failed) engine:
// events still pending in the queue are scrubbed of their handler, payload
// and label and joined to the free list, the list is trimmed to the
// arena's high-water cap, and the engine is left empty. Safe after an
// interrupted or panicked run — nothing of the run survives but the bare
// structs.
func (a *EventArena) Harvest(e *Engine) {
	for _, ev := range e.q.a {
		ev.fn, ev.payload, ev.label = nil, nil, ""
		e.free = append(e.free, ev)
	}
	max := a.max
	if max <= 0 {
		max = DefaultArenaEvents
	}
	if len(e.free) > max {
		for i := max; i < len(e.free); i++ {
			e.free[i] = nil
		}
		e.free = e.free[:max]
	}
	a.free = e.free
	a.qbuf = e.q.a[:0]
	e.free = nil
	e.q.a = nil
}
