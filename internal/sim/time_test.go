package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{250 * Picosecond, "250ps"},
		{3 * Nanosecond, "3ns"},
		{1500 * Nanosecond, "1500ns"},
		{2 * Microsecond, "2us"},
		{5 * Millisecond, "5ms"},
		{7 * Second, "7s"},
		{TimeInfinity, "inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestHzString(t *testing.T) {
	cases := []struct {
		in   Hz
		want string
	}{
		{0, "0Hz"},
		{2900 * MHz, "2900MHz"},
		{3 * GHz, "3GHz"},
		{1333 * MHz, "1333MHz"},
		{32 * KHz, "32kHz"},
		{7, "7Hz"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Hz(%d).String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestPeriod(t *testing.T) {
	if got := (1 * GHz).Period(); got != Nanosecond {
		t.Errorf("1GHz period = %v, want 1ns", got)
	}
	if got := (2 * GHz).Period(); got != 500*Picosecond {
		t.Errorf("2GHz period = %v, want 500ps", got)
	}
	if got := Hz(0).Period(); got != TimeInfinity {
		t.Errorf("0Hz period = %v, want inf", got)
	}
}

func TestCycleTimeExact(t *testing.T) {
	// At 3 GHz the period is 333.33ps; naive integer-period scheduling
	// drifts by 1ns every 1000 cycles. CycleTime must stay exact.
	f := 3 * GHz
	if got := f.CycleTime(3_000_000_000); got != Second {
		t.Errorf("3e9 cycles at 3GHz = %v, want 1s", got)
	}
	if got := f.CycleTime(3); got != Nanosecond {
		t.Errorf("3 cycles at 3GHz = %v, want 1ns", got)
	}
}

func TestCycleTimeMonotonic(t *testing.T) {
	f := Hz(2_900_000_000) // 2.9 GHz — non-integral period
	prev := Time(0)
	for n := Cycle(1); n < 10_000; n++ {
		cur := f.CycleTime(n)
		if cur < prev {
			t.Fatalf("CycleTime not monotonic at n=%d: %v < %v", n, cur, prev)
		}
		if d := cur - prev; d != 344 && d != 345 {
			t.Fatalf("2.9GHz inter-cycle gap %d at n=%d, want 344 or 345 ps", d, n)
		}
		prev = cur
	}
}

func TestCyclesInInvertsCycleTime(t *testing.T) {
	fn := func(freqRaw uint32, nRaw uint32) bool {
		f := Hz(uint64(freqRaw%4_000_000)*1000 + 1) // up to ~4 GHz
		n := Cycle(nRaw % 1_000_000)
		tm := f.CycleTime(n)
		got := f.CyclesIn(tm)
		// Both conversions floor, so got may undercount n by one, but
		// tm always falls within [CycleTime(got), CycleTime(got+1)] —
		// the invariant Clock.NextCycle depends on.
		return got <= n && f.CycleTime(got) <= tm && f.CycleTime(got+1) >= tm
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want Time
	}{
		{"10ns", 10 * Nanosecond},
		{"2.5us", 2500 * Nanosecond},
		{"100ps", 100 * Picosecond},
		{"1ms", Millisecond},
		{"1s", Second},
		{"42", 42 * Picosecond},
		{" 7 ns ", 7 * Nanosecond},
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if err != nil {
			t.Errorf("ParseTime(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTime(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "ns", "-3ns", "3lightyears"} {
		if _, err := ParseTime(bad); err == nil {
			t.Errorf("ParseTime(%q) succeeded, want error", bad)
		}
	}
}

func TestParseHz(t *testing.T) {
	cases := []struct {
		in   string
		want Hz
	}{
		{"2.9GHz", 2_900_000_000},
		{"800MHz", 800 * MHz},
		{"1333MHz", 1333 * MHz},
		{"100", 100},
		{"32kHz", 32_000},
	}
	for _, c := range cases {
		got, err := ParseHz(c.in)
		if err != nil {
			t.Errorf("ParseHz(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseHz(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseHz("fast"); err == nil {
		t.Error("ParseHz(\"fast\") succeeded, want error")
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Errorf("500ms = %v s, want 0.5", got)
	}
}
