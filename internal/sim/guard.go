package sim

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic captured inside a guarded component handler. It
// carries the component's name so that runtimes catching the panic higher
// up (internal/par's rank workers, internal/core's sweep pool) can say
// *which* component died instead of only where the goroutine unwound.
type PanicError struct {
	// Component is the name passed to Guard.
	Component string
	// Value is the original panic value.
	Value any
	// Stack is the stack at the panic site.
	Stack []byte
}

// Error formats the panic with its component attribution.
func (e *PanicError) Error() string {
	return fmt.Sprintf("component %q panicked: %v", e.Component, e.Value)
}

// Unwrap exposes a wrapped error panic value for errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Guard wraps a handler so that a panic inside it is re-raised as a
// *PanicError naming the component. The wrapper costs one (open-coded)
// defer per invocation and nothing on the non-panicking path, so it is
// cheap enough for per-event handlers; components opt in where attribution
// matters. An already-attributed *PanicError passes through unchanged, so
// nested guards keep the innermost (most precise) name.
func Guard(name string, h Handler) Handler {
	if h == nil {
		panic("sim: Guard with nil handler")
	}
	return func(payload any) {
		defer func() {
			if r := recover(); r != nil {
				if pe, ok := r.(*PanicError); ok {
					panic(pe)
				}
				panic(&PanicError{Component: name, Value: r, Stack: debug.Stack()})
			}
		}()
		h(payload)
	}
}
