package isa

import (
	"fmt"
	"math"
)

// pageBits sizes the machine's sparse memory pages (4 KiB).
const pageBits = 12

// Machine is a functional SR1 interpreter: architectural state only, no
// timing. Timing back-ends replay the Step results against their pipeline
// and memory-hierarchy models.
type Machine struct {
	PC     uint64
	Regs   [32]uint64
	mem    map[uint64]*[1 << pageBits]byte
	code   map[uint64]uint32
	halted bool

	// Instret counts retired instructions.
	Instret uint64
}

// NewMachine loads a program: code words at the entry point and initial
// data words at their labels. The stack pointer (sp, r2) starts at 1 MiB
// below the 256 MiB mark, growing down.
func NewMachine(p *Program) *Machine {
	m := &Machine{
		PC:   p.Entry,
		mem:  make(map[uint64]*[1 << pageBits]byte),
		code: make(map[uint64]uint32, len(p.Code)),
	}
	for i, w := range p.Code {
		m.code[p.Entry+uint64(i*4)] = w
	}
	for addr, val := range p.Data {
		m.Store(addr, 8, val)
	}
	m.Regs[2] = 256 << 20 // sp
	return m
}

// Halted reports whether the program executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// page returns the backing page for addr, allocating on first touch.
func (m *Machine) page(addr uint64) *[1 << pageBits]byte {
	key := addr >> pageBits
	pg := m.mem[key]
	if pg == nil {
		pg = new([1 << pageBits]byte)
		m.mem[key] = pg
	}
	return pg
}

// Load reads size bytes (1, 4 or 8) little-endian at addr.
func (m *Machine) Load(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		pg := m.page(a)
		v |= uint64(pg[a&(1<<pageBits-1)]) << (8 * uint(i))
	}
	return v
}

// Store writes size bytes little-endian at addr.
func (m *Machine) Store(addr uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		pg := m.page(a)
		pg[a&(1<<pageBits-1)] = byte(v >> (8 * uint(i)))
	}
}

// LoadFloat reads a float64 at addr.
func (m *Machine) LoadFloat(addr uint64) float64 {
	return math.Float64frombits(m.Load(addr, 8))
}

// StoreFloat writes a float64 at addr.
func (m *Machine) StoreFloat(addr uint64, f float64) {
	m.Store(addr, 8, math.Float64bits(f))
}

// Reg returns register r; FReg interprets it as float64.
func (m *Machine) Reg(r int) uint64   { return m.Regs[r&31] }
func (m *Machine) FReg(r int) float64 { return math.Float64frombits(m.Regs[r&31]) }
func (m *Machine) SetReg(r int, v uint64) {
	if r&31 != 0 {
		m.Regs[r&31] = v
	}
}

// SetFReg stores a float64 bit pattern into register r.
func (m *Machine) SetFReg(r int, f float64) { m.SetReg(r, math.Float64bits(f)) }

// StepInfo describes one retired instruction for the timing front-end.
type StepInfo struct {
	PC    uint64
	Instr Instr
	// MemAddr/MemSize are set for loads and stores.
	MemAddr uint64
	MemSize int
	// Taken is set for branch-class instructions that redirected the PC.
	Taken bool
	// NextPC is where control went.
	NextPC uint64
}

// Step executes one instruction. It returns an error on invalid opcodes or
// fetch from unassembled addresses; after HALT it keeps returning with
// Halted() true and no state change.
func (m *Machine) Step() (StepInfo, error) {
	info := StepInfo{PC: m.PC}
	if m.halted {
		info.NextPC = m.PC
		return info, nil
	}
	w, ok := m.code[m.PC]
	if !ok {
		return info, fmt.Errorf("isa: fetch from %#x: no code", m.PC)
	}
	in, err := Decode(w)
	if err != nil {
		return info, err
	}
	info.Instr = in
	next := m.PC + 4

	r := &m.Regs
	set := func(rd uint8, v uint64) {
		if rd != 0 {
			r[rd] = v
		}
	}
	imm := int64(in.Imm)
	switch in.Op {
	case NOP:
	case HALT:
		m.halted = true
		next = m.PC
	case ADD:
		set(in.Rd, r[in.Rs1]+r[in.Rs2])
	case SUB:
		set(in.Rd, r[in.Rs1]-r[in.Rs2])
	case MUL:
		set(in.Rd, r[in.Rs1]*r[in.Rs2])
	case DIV:
		if r[in.Rs2] == 0 {
			set(in.Rd, ^uint64(0))
		} else {
			set(in.Rd, uint64(int64(r[in.Rs1])/int64(r[in.Rs2])))
		}
	case REM:
		if r[in.Rs2] == 0 {
			set(in.Rd, r[in.Rs1])
		} else {
			set(in.Rd, uint64(int64(r[in.Rs1])%int64(r[in.Rs2])))
		}
	case AND:
		set(in.Rd, r[in.Rs1]&r[in.Rs2])
	case OR:
		set(in.Rd, r[in.Rs1]|r[in.Rs2])
	case XOR:
		set(in.Rd, r[in.Rs1]^r[in.Rs2])
	case SLL:
		set(in.Rd, r[in.Rs1]<<(r[in.Rs2]&63))
	case SRL:
		set(in.Rd, r[in.Rs1]>>(r[in.Rs2]&63))
	case SRA:
		set(in.Rd, uint64(int64(r[in.Rs1])>>(r[in.Rs2]&63)))
	case SLT:
		set(in.Rd, b2u(int64(r[in.Rs1]) < int64(r[in.Rs2])))
	case SLTU:
		set(in.Rd, b2u(r[in.Rs1] < r[in.Rs2]))
	case ADDI:
		set(in.Rd, r[in.Rs1]+uint64(imm))
	case ANDI:
		set(in.Rd, r[in.Rs1]&uint64(uint16(in.Imm)))
	case ORI:
		set(in.Rd, r[in.Rs1]|uint64(uint16(in.Imm)))
	case XORI:
		set(in.Rd, r[in.Rs1]^uint64(uint16(in.Imm)))
	case SLLI:
		set(in.Rd, r[in.Rs1]<<(uint64(imm)&63))
	case SRLI:
		set(in.Rd, r[in.Rs1]>>(uint64(imm)&63))
	case SRAI:
		set(in.Rd, uint64(int64(r[in.Rs1])>>(uint64(imm)&63)))
	case SLTI:
		set(in.Rd, b2u(int64(r[in.Rs1]) < imm))
	case LUI:
		set(in.Rd, uint64(uint16(in.Imm))<<16)
	case FADD:
		m.SetFReg(int(in.Rd), m.FReg(int(in.Rs1))+m.FReg(int(in.Rs2)))
	case FSUB:
		m.SetFReg(int(in.Rd), m.FReg(int(in.Rs1))-m.FReg(int(in.Rs2)))
	case FMUL:
		m.SetFReg(int(in.Rd), m.FReg(int(in.Rs1))*m.FReg(int(in.Rs2)))
	case FDIV:
		m.SetFReg(int(in.Rd), m.FReg(int(in.Rs1))/m.FReg(int(in.Rs2)))
	case FMADD:
		m.SetFReg(int(in.Rd), m.FReg(int(in.Rd))+m.FReg(int(in.Rs1))*m.FReg(int(in.Rs2)))
	case FSLT:
		set(in.Rd, b2u(m.FReg(int(in.Rs1)) < m.FReg(int(in.Rs2))))
	case CVTIF:
		m.SetFReg(int(in.Rd), float64(int64(r[in.Rs1])))
	case CVTFI:
		set(in.Rd, uint64(int64(m.FReg(int(in.Rs1)))))
	case LD, LW, LB:
		addr := r[in.Rs1] + uint64(imm)
		size := in.Op.MemBytes()
		v := m.Load(addr, size)
		switch in.Op {
		case LW:
			v = uint64(int64(int32(uint32(v))))
		case LB:
			v = uint64(int64(int8(uint8(v))))
		}
		set(in.Rd, v)
		info.MemAddr, info.MemSize = addr, size
	case SD, SW, SB:
		addr := r[in.Rs1] + uint64(imm)
		size := in.Op.MemBytes()
		m.Store(addr, size, r[in.Rd])
		info.MemAddr, info.MemSize = addr, size
	case BEQ:
		if r[in.Rs1] == r[in.Rs2] {
			next = m.PC + uint64(int64(imm)*4)
			info.Taken = true
		}
	case BNE:
		if r[in.Rs1] != r[in.Rs2] {
			next = m.PC + uint64(int64(imm)*4)
			info.Taken = true
		}
	case BLT:
		if int64(r[in.Rs1]) < int64(r[in.Rs2]) {
			next = m.PC + uint64(int64(imm)*4)
			info.Taken = true
		}
	case BGE:
		if int64(r[in.Rs1]) >= int64(r[in.Rs2]) {
			next = m.PC + uint64(int64(imm)*4)
			info.Taken = true
		}
	case JAL:
		set(in.Rd, m.PC+4)
		next = m.PC + uint64(int64(imm)*4)
		info.Taken = true
	case JALR:
		set(in.Rd, m.PC+4)
		next = r[in.Rs1] + uint64(imm)
		info.Taken = true
	default:
		return info, fmt.Errorf("isa: unimplemented opcode %v at %#x", in.Op, m.PC)
	}
	if !m.halted {
		m.Instret++
	}
	m.PC = next
	info.NextPC = next
	return info, nil
}

// Run executes until HALT or maxInstrs retirements; it returns the number
// retired during this call.
func (m *Machine) Run(maxInstrs uint64) (uint64, error) {
	start := m.Instret
	for !m.halted && m.Instret-start < maxInstrs {
		if _, err := m.Step(); err != nil {
			return m.Instret - start, err
		}
	}
	return m.Instret - start, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
