package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	c := NewCounter("hits")
	c.Inc()
	c.Add(4)
	if c.Count() != 5 || c.Value() != 5 {
		t.Fatalf("count = %d", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("reset failed")
	}
	if c.Name() != "hits" {
		t.Fatal("name lost")
	}
}

func TestAccumulatorMoments(t *testing.T) {
	a := NewAccumulator("lat")
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Observe(v)
	}
	if a.N() != 8 {
		t.Fatalf("n = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", a.Mean())
	}
	if got := a.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("var = %v, want %v", got, 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Sum() != 40 {
		t.Fatalf("sum = %v", a.Sum())
	}
}

func TestAccumulatorWelfordMatchesNaive(t *testing.T) {
	fn := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		a := NewAccumulator("x")
		var sum float64
		for _, r := range raw {
			a.Observe(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, r := range raw {
			d := float64(r) - mean
			ss += d * d
		}
		naive := ss / float64(len(raw)-1)
		return math.Abs(a.Var()-naive) <= 1e-6*(1+naive)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	a := NewAccumulator("x")
	if a.Mean() != 0 || a.Var() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	if !strings.Contains(a.String(), "no samples") {
		t.Fatalf("empty String() = %q", a.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("lat")
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1
	h.Observe(2) // bucket 2
	h.Observe(3) // bucket 2
	h.Observe(1000)
	if h.Bucket(0) != 1 || h.Bucket(1) != 1 || h.Bucket(2) != 2 {
		t.Fatalf("buckets = %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2))
	}
	if h.Bucket(10) != 1 { // 1000 is in [512,1024)
		t.Fatalf("bucket(10) = %d", h.Bucket(10))
	}
	if h.N() != 5 {
		t.Fatalf("n = %d", h.N())
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram("x")
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	p50 := h.Percentile(50)
	if p50 < 50 || p50 > 127 {
		t.Fatalf("p50 bound = %d", p50)
	}
	p100 := h.Percentile(100)
	if p100 < 100 {
		t.Fatalf("p100 bound = %d < max sample", p100)
	}
	if NewHistogram("e").Percentile(99) != 0 {
		t.Fatal("empty percentile != 0")
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge("occ")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Cur() != 1 || g.Peak() != 5 {
		t.Fatalf("cur=%d peak=%d", g.Cur(), g.Peak())
	}
	g.Set(10)
	if g.Peak() != 10 {
		t.Fatalf("peak after Set = %d", g.Peak())
	}
	g.Reset()
	if g.Cur() != 0 || g.Peak() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRegistryScopes(t *testing.T) {
	r := NewRegistry()
	cpu := r.Scope("cpu0")
	c := cpu.Counter("instructions")
	l1 := cpu.Sub("l1d")
	h := l1.Counter("hits")
	c.Add(10)
	h.Add(3)
	if r.Get("cpu0.instructions") != c {
		t.Fatal("lookup failed")
	}
	if r.Counter("cpu0.l1d.hits").Count() != 3 {
		t.Fatal("nested scope lookup failed")
	}
	if r.Counter("cpu0.nothere") != nil {
		t.Fatal("missing stat not nil")
	}
	names := r.Match("cpu0.l1d")
	if len(names) != 1 || names[0] != "cpu0.l1d.hits" {
		t.Fatalf("Match = %v", names)
	}
	r.ResetAll()
	if c.Count() != 0 || h.Count() != 0 {
		t.Fatal("ResetAll failed")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("a")
	s.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	s.Counter("x")
}

func TestRegistryDumpAndCSV(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("m")
	s.Counter("a").Add(2)
	s.Accumulator("b").Observe(1.5)
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "m.a") || !strings.Contains(out, "m.b") {
		t.Fatalf("dump missing entries:\n%s", out)
	}
	sb.Reset()
	r.WriteCSV(&sb)
	if !strings.Contains(sb.String(), "m.a,2") {
		t.Fatalf("csv missing row:\n%s", sb.String())
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Fig X", "config", "time", "speedup")
	tb.AddRow("ddr3", 1.5, 1.0)
	tb.AddRow("gddr5", 1.0, 1.5)
	out := tb.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "gddr5") {
		t.Fatalf("render:\n%s", out)
	}
	if tb.NumRows() != 2 || tb.Cell(1, 0) != "gddr5" || tb.Cell(9, 9) != "" {
		t.Fatal("table accessors broken")
	}
	var sb strings.Builder
	tb.RenderCSV(&sb)
	if !strings.Contains(sb.String(), "ddr3,1.5,1") {
		t.Fatalf("csv:\n%s", sb.String())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram("x")
	if !strings.Contains(h.String(), "no samples") {
		t.Fatal("empty histogram string")
	}
	h.Observe(5)
	if !strings.Contains(h.String(), "n=1") {
		t.Fatalf("histogram string = %q", h.String())
	}
}
