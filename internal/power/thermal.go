package power

import (
	"fmt"
	"math"
)

// ThermalParams is a lumped-RC die thermal model with
// leakage–temperature feedback: dynamic power heats the die, heat raises
// leakage exponentially, leakage adds power. SteadyState iterates to the
// fixed point. This is the "accurate temperature modeling is required for
// accurate power and energy modeling due to its effect on leakage current"
// coupling the prediction methodology calls out.
type ThermalParams struct {
	// AmbientC is the heat-sink reference temperature.
	AmbientC float64
	// ResistanceCPerW is the junction-to-ambient thermal resistance.
	ResistanceCPerW float64
	// CapacitanceJPerC is the die+spreader thermal mass (for transients).
	CapacitanceJPerC float64
	// LeakDoubleC is the temperature increase that doubles leakage
	// (typically 10–20 °C for the era's processes).
	LeakDoubleC float64
	// RefC is the temperature at which CoreParams.StaticW is specified.
	RefC float64
	// MaxC is the throttle/assert limit.
	MaxC float64
}

// DefaultThermalParams resembles a mid-2000s desktop package.
func DefaultThermalParams() ThermalParams {
	return ThermalParams{
		AmbientC:         45,
		ResistanceCPerW:  0.6,
		CapacitanceJPerC: 30,
		LeakDoubleC:      15,
		RefC:             65,
		MaxC:             110,
	}
}

// Validate checks ranges.
func (p *ThermalParams) Validate() error {
	if p.ResistanceCPerW <= 0 || p.LeakDoubleC <= 0 {
		return fmt.Errorf("power: thermal resistance and leakage slope must be positive")
	}
	if p.MaxC == 0 {
		p.MaxC = 110
	}
	return nil
}

// LeakageAt scales a leakage power specified at RefC to temperature tC.
func (p ThermalParams) LeakageAt(leakRefW, tC float64) float64 {
	return leakRefW * math.Pow(2, (tC-p.RefC)/p.LeakDoubleC)
}

// ThermalState is a steady-state solution.
type ThermalState struct {
	// TempC is the converged junction temperature.
	TempC float64
	// LeakageW is leakage at that temperature.
	LeakageW float64
	// TotalW is dynamic + leakage.
	TotalW float64
	// Throttled reports the fixed point exceeded MaxC (a real design
	// would throttle; the model reports it for the DSE tables).
	Throttled bool
	// Iterations the solver took.
	Iterations int
}

// SteadyState solves T = ambient + R·(dyn + leak(T)) by fixed-point
// iteration with damping; it converges for any physical configuration
// below thermal runaway and reports runaway as Throttled at MaxC.
func (p ThermalParams) SteadyState(dynamicW, leakRefW float64) ThermalState {
	t := p.AmbientC + p.ResistanceCPerW*dynamicW
	var st ThermalState
	for i := 0; i < 200; i++ {
		leak := p.LeakageAt(leakRefW, t)
		next := p.AmbientC + p.ResistanceCPerW*(dynamicW+leak)
		if next > p.MaxC {
			next = p.MaxC
			st.Throttled = true
		}
		st.Iterations = i + 1
		if math.Abs(next-t) < 1e-6 {
			t = next
			break
		}
		t = t + 0.5*(next-t)
	}
	st.TempC = t
	st.LeakageW = p.LeakageAt(leakRefW, t)
	st.TotalW = dynamicW + st.LeakageW
	if st.Throttled {
		st.TotalW = (p.MaxC - p.AmbientC) / p.ResistanceCPerW
	}
	return st
}

// Transient advances the die temperature from t0C under constant power for
// dt seconds using the RC time constant (for thermal-cycling studies).
func (p ThermalParams) Transient(t0C, powerW, dtSeconds float64) float64 {
	if p.CapacitanceJPerC <= 0 {
		return p.AmbientC + p.ResistanceCPerW*powerW
	}
	tInf := p.AmbientC + p.ResistanceCPerW*powerW
	tau := p.ResistanceCPerW * p.CapacitanceJPerC
	return tInf + (t0C-tInf)*math.Exp(-dtSeconds/tau)
}

// ReliabilityParams converts temperature into failure rates — the
// methodology's reliability objective. Failure rates use the standard FIT
// unit (failures per 10^9 device-hours) with Arrhenius temperature
// acceleration; thermal cycling adds a Coffin–Manson term.
type ReliabilityParams struct {
	// BaseFITPerMM2 is the failure rate density at RefC.
	BaseFITPerMM2 float64
	// ActivationEV is the Arrhenius activation energy (typ. 0.7 eV).
	ActivationEV float64
	// RefC anchors the base rate.
	RefC float64
	// CycleFITPerDeltaC adds FIT per unit area per °C of regular thermal
	// cycling amplitude (Coffin–Manson linearized).
	CycleFITPerDeltaC float64
}

// DefaultReliabilityParams gives plausible mid-2000s numbers.
func DefaultReliabilityParams() ReliabilityParams {
	return ReliabilityParams{
		BaseFITPerMM2:     0.5,
		ActivationEV:      0.7,
		RefC:              55,
		CycleFITPerDeltaC: 0.02,
	}
}

const boltzmannEVPerK = 8.617e-5

// FIT returns the failure rate of areaMM2 of silicon at tC with thermal
// cycles of amplitude cycleDeltaC.
func (r ReliabilityParams) FIT(areaMM2, tC, cycleDeltaC float64) float64 {
	tK := tC + 273.15
	refK := r.RefC + 273.15
	accel := math.Exp(r.ActivationEV / boltzmannEVPerK * (1/refK - 1/tK))
	fit := r.BaseFITPerMM2 * areaMM2 * accel
	fit += r.CycleFITPerDeltaC * areaMM2 * cycleDeltaC
	return fit
}

// MTBFHours converts a FIT rate to mean time between failures.
func MTBFHours(fit float64) float64 {
	if fit <= 0 {
		return math.Inf(1)
	}
	return 1e9 / fit
}

// SystemMTBFHours returns the MTBF of n identical independent nodes — the
// scaling problem ("the sheer number of components threatens overall
// system reliability") the methodology highlights.
func SystemMTBFHours(nodeFIT float64, nodes int) float64 {
	return MTBFHours(nodeFIT * float64(nodes))
}
