package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrInterrupted reports that a run was cut short by Engine.Interrupt (an
// operator Ctrl-C, a watchdog, a cooperating runtime). Callers wrap it so
// errors.Is(err, sim.ErrInterrupted) identifies interruption at any layer.
var ErrInterrupted = errors.New("sim: interrupted")

// interruptMask sets how often the run loop polls the interrupt flag: every
// 64 dispatched events, i.e. every few microseconds of host time, which
// keeps the per-event cost to a masked compare while still bounding the
// latency of Ctrl-C and of the parallel runtime's stall watchdog — even
// when a model is stuck in a zero-delay event loop that never returns to
// the caller.
const interruptMask = 63

// Engine is a sequential discrete-event scheduler. It owns simulated time:
// components schedule work in the future and the engine invokes handlers in
// deterministic (time, priority, insertion) order.
//
// An Engine is not safe for concurrent use; the parallel runtime in
// internal/par gives each rank its own Engine and synchronizes between them.
type Engine struct {
	now     Time
	seq     uint64
	q       eventQueue
	stopped bool

	// handled counts events dispatched since construction.
	handled uint64

	// free recycles event structs to keep the hot loop allocation-free.
	// A plain slice, not a sync.Pool: the Engine is single-threaded by
	// contract (see above), so a pool's atomic Get/Put and per-P caches
	// are pure overhead here, and unlike a pool the free list is never
	// emptied by GC cycles. Its length is bounded by the high-water mark
	// of concurrently pending events.
	free []*event

	// onIdle, if set, is consulted when the local queue empties or the
	// local horizon is reached; the parallel runtime uses it to block for
	// remote events. It returns false when the simulation should stop.
	onIdle func() bool

	// horizon bounds how far this engine may advance before onIdle must
	// be consulted again. TimeInfinity for purely sequential runs.
	horizon Time

	// intr is the only Engine field safe to touch from another goroutine:
	// Interrupt sets it, the run loop polls it every interruptMask+1
	// events. It is sticky until ClearInterrupt so that window-based
	// callers (internal/par) observe it across Run calls.
	intr atomic.Bool

	// peak is the high-water mark of the pending-event queue.
	peak int

	// curLabel is the label of the event being dispatched; events scheduled
	// from inside a handler inherit it, which is how completions deep in a
	// cache/DRAM call chain stay attributed to the component that started
	// them without every Schedule call naming itself.
	curLabel string

	// tracer, when set, observes every dispatched event. Nil in normal
	// runs: the disabled path costs one predictable branch per event.
	tracer Tracer

	// snap, when allocated by EnableSnapshots, holds the checkpoint
	// registry (see checkpoint.go). Nil in normal runs; the dispatch and
	// schedule paths never touch it.
	snap *engineSnap
}

// Tracer observes dispatched events when installed with SetTracer. at is
// the event's simulated time, label the attributed component or link name
// ("" when unattributed), and dur the host time the handler took.
// Implementations must not call back into the engine's scheduling methods
// from Event.
type Tracer interface {
	Event(at Time, label string, dur time.Duration)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{horizon: TimeInfinity}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Handled returns the number of events dispatched so far.
func (e *Engine) Handled() uint64 { return e.handled }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.q.Len() }

// PeakPending returns the high-water mark of the pending-event queue since
// construction — a capacity statistic for run reports. The mark is observed
// at dispatch boundaries rather than on every push: between two pops the
// queue only grows, so its length just before a pop — plus the length at
// this read — is the exact maximum, at no cost to the schedule path.
func (e *Engine) PeakPending() int {
	if n := e.q.Len(); n > e.peak {
		e.peak = n
	}
	return e.peak
}

// SetTracer installs (or, with nil, removes) the event tracer. Tracing
// adds two host-clock reads per event; with no tracer the dispatch path is
// unchanged except for one nil check.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// NextEventTime returns the timestamp of the earliest pending event, or
// TimeInfinity when the queue is empty. The parallel runtime uses it to
// fast-forward across globally idle windows.
func (e *Engine) NextEventTime() Time {
	ev := e.q.Peek()
	if ev == nil {
		return TimeInfinity
	}
	return ev.time
}

// Schedule arranges for fn(payload) to run after delay, with default link
// priority ordering among same-time events.
func (e *Engine) Schedule(delay Time, fn Handler, payload any) {
	e.SchedulePrio(delay, PrioLink, fn, payload)
}

// SchedulePrio arranges for fn(payload) to run after delay at the given
// same-timestamp priority.
func (e *Engine) SchedulePrio(delay Time, prio Priority, fn Handler, payload any) {
	e.ScheduleLabeled(delay, prio, e.curLabel, fn, payload)
}

// ScheduleLabeled is SchedulePrio with an explicit trace label, overriding
// the inherited one. Chokepoints that act on behalf of many components —
// links, clocks, memory devices — use it to seed attribution.
func (e *Engine) ScheduleLabeled(delay Time, prio Priority, label string, fn Handler, payload any) {
	if fn == nil {
		panic("sim: Schedule with nil handler")
	}
	t := e.now + delay
	if t < e.now {
		t = TimeInfinity // overflow clamps to the end of time
	}
	e.push(t, prio, label, fn, payload)
}

// ScheduleAt is SchedulePrio with an absolute timestamp. Scheduling into
// the past is a programming error and panics: it would silently violate
// causality.
func (e *Engine) ScheduleAt(t Time, prio Priority, fn Handler, payload any) {
	e.ScheduleLabeledAt(t, prio, e.curLabel, fn, payload)
}

// ScheduleLabeledAt is ScheduleAt with an explicit trace label.
func (e *Engine) ScheduleLabeledAt(t Time, prio Priority, label string, fn Handler, payload any) {
	if fn == nil {
		panic("sim: ScheduleAt with nil handler")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	e.push(t, prio, label, fn, payload)
}

func (e *Engine) push(t Time, prio Priority, label string, fn Handler, payload any) {
	var ev *event
	if n := len(e.free) - 1; n >= 0 {
		ev = e.free[n]
		e.free[n] = nil
		e.free = e.free[:n]
	} else {
		ev = new(event)
	}
	ev.time, ev.prio, ev.seq, ev.fn, ev.payload = t, prio, e.seq, fn, payload
	if label != "" {
		// Recycled events always arrive with a cleared label, so the
		// unlabeled hot path skips the string store (and its write
		// barrier) entirely.
		ev.label = label
	}
	e.seq++
	e.q.Push(ev)
}

// FreeListLen reports how many recycled event structs the engine holds.
func (e *Engine) FreeListLen() int { return len(e.free) }

// TrimFreeList drops recycled events beyond max, returning how many were
// released to the garbage collector. Long-lived engines (a resident
// service, the parallel runtime's ranks) call it after a load spike so the
// free list tracks the steady-state high-water mark instead of the
// all-time one.
func (e *Engine) TrimFreeList(max int) int {
	if max < 0 {
		max = 0
	}
	dropped := len(e.free) - max
	if dropped <= 0 {
		return 0
	}
	for i := max; i < len(e.free); i++ {
		e.free[i] = nil
	}
	e.free = e.free[:max]
	return dropped
}

// Stop makes the current Run return after the in-flight handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Interrupt asks the engine to stop dispatching as soon as possible. Unlike
// every other Engine method it is safe to call from any goroutine: signal
// handlers and the parallel runtime's stall watchdog use it to unstick a
// run — including a model spinning in a zero-delay event loop. The flag is
// sticky; Run returns immediately until ClearInterrupt.
func (e *Engine) Interrupt() { e.intr.Store(true) }

// Interrupted reports whether Interrupt has been called and not yet
// cleared. Safe from any goroutine.
func (e *Engine) Interrupted() bool { return e.intr.Load() }

// ClearInterrupt re-arms an interrupted engine.
func (e *Engine) ClearInterrupt() { e.intr.Store(false) }

// Stopped reports whether Stop has been called since the last Run.
func (e *Engine) Stopped() bool { return e.stopped }

// setIdleHook installs the parallel runtime's blocking hook. Internal to
// the sim/par pair.
func (e *Engine) setIdleHook(h func() bool) { e.onIdle = h }

// setHorizon bounds event dispatch: events at or beyond t stay queued until
// the horizon is raised. Internal to the sim/par pair.
func (e *Engine) setHorizon(t Time) { e.horizon = t }

// Step dispatches the single earliest event. It reports false when the
// queue is empty or the engine was stopped.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	if n := e.q.Len(); n > e.peak {
		e.peak = n
	}
	ev := e.q.Pop()
	if ev == nil {
		return false
	}
	e.dispatch(ev)
	return true
}

func (e *Engine) dispatch(ev *event) {
	if ev.time < e.now {
		panic(fmt.Sprintf("sim: time ran backwards: %v -> %v", e.now, ev.time))
	}
	e.now = ev.time
	fn, payload := ev.fn, ev.payload
	ev.fn, ev.payload = nil, nil
	e.handled++
	if e.tracer == nil && len(ev.label)|len(e.curLabel) == 0 {
		// Unlabeled untraced dispatch: nothing to save, restore or clear.
		// This is the hot loop; the guard is length arithmetic only — a
		// full string compare would cost a runtime memequal call per
		// event, and the label string is never materialized.
		e.free = append(e.free, ev)
		fn(payload)
		return
	}
	label := ev.label
	ev.label = "" // keep recycled events label-free; see push
	e.free = append(e.free, ev)
	prev := e.curLabel
	e.curLabel = label
	if e.tracer == nil {
		fn(payload)
	} else {
		start := time.Now()
		fn(payload)
		e.tracer.Event(e.now, label, time.Since(start))
	}
	e.curLabel = prev
}

// Run dispatches events until the queue drains, Stop is called, or the next
// event lies strictly after until. It returns the number of events handled
// during this call. On return the engine's clock rests at the time of the
// last handled event (or `until` if the queue drained earlier and `until`
// is finite).
func (e *Engine) Run(until Time) uint64 {
	e.stopped = false
	start := e.handled
	if e.intr.Load() {
		return 0
	}
	for !e.stopped {
		if e.handled&interruptMask == 0 && e.intr.Load() {
			break
		}
		ev := e.q.Peek()
		for ev == nil || ev.time >= e.horizon {
			if e.onIdle == nil || !e.onIdle() {
				goto done
			}
			ev = e.q.Peek()
		}
		if ev.time > until {
			break
		}
		if n := e.q.Len(); n > e.peak {
			e.peak = n
		}
		e.q.Pop()
		e.dispatch(ev)
	}
done:
	if until != TimeInfinity && e.now < until && !e.stopped && !e.intr.Load() {
		e.now = until
	}
	return e.handled - start
}

// RunAll dispatches events until the queue is exhausted or Stop is called.
func (e *Engine) RunAll() uint64 { return e.Run(TimeInfinity) }
