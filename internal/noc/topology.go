// Package noc implements gosst's interconnection-network models: standard
// topologies (2D mesh, 2D/3D torus, two-level fat tree, crossbar),
// deterministic routing, routers and links with serialization and
// contention, and NICs with a configurable injection-bandwidth throttle —
// the knob the network degradation study turns.
//
// The flow-control model is link-level: each directed link is a
// serialization server (bandwidth + latency) with unbounded buffering, the
// standard fast-network abstraction (LogGP-style per hop). It captures
// bandwidth contention, hot links and injection limits; it does not model
// flit-level virtual-channel arbitration, which the studied experiments do
// not depend on.
package noc

import "fmt"

// Topology describes routers, node attachment and deterministic routing.
type Topology interface {
	Name() string
	// NumRouters and NumNodes size the network; nodes are endpoints.
	NumRouters() int
	NumNodes() int
	// RouterOf returns the router a node attaches to.
	RouterOf(node int) int
	// Links enumerates undirected router pairs.
	Links() [][2]int
	// Route returns the next router on the path from router r toward
	// dstNode's router, or -1 when dstNode attaches to r (deliver
	// locally). Routing must be deterministic and loop-free.
	Route(r, dstNode int) int
	// Diameter returns the maximum hop count between any two routers.
	Diameter() int
}

// Mesh2D is a W×H mesh with one node per router and dimension-order (X
// then Y) routing.
type Mesh2D struct {
	W, H int
}

// NewMesh2D validates dimensions.
func NewMesh2D(w, h int) (*Mesh2D, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("noc: mesh dimensions %dx%d invalid", w, h)
	}
	return &Mesh2D{W: w, H: h}, nil
}

func (m *Mesh2D) Name() string       { return fmt.Sprintf("mesh-%dx%d", m.W, m.H) }
func (m *Mesh2D) NumRouters() int    { return m.W * m.H }
func (m *Mesh2D) NumNodes() int      { return m.W * m.H }
func (m *Mesh2D) RouterOf(n int) int { return n }
func (m *Mesh2D) Diameter() int      { return m.W - 1 + m.H - 1 }

func (m *Mesh2D) Links() [][2]int {
	var ls [][2]int
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			id := y*m.W + x
			if x+1 < m.W {
				ls = append(ls, [2]int{id, id + 1})
			}
			if y+1 < m.H {
				ls = append(ls, [2]int{id, id + m.W})
			}
		}
	}
	return ls
}

// Route implements X-then-Y dimension order.
func (m *Mesh2D) Route(r, dstNode int) int {
	dst := m.RouterOf(dstNode)
	if r == dst {
		return -1
	}
	rx, ry := r%m.W, r/m.W
	dx, dy := dst%m.W, dst/m.W
	switch {
	case rx < dx:
		return r + 1
	case rx > dx:
		return r - 1
	case ry < dy:
		return r + m.W
	default:
		return r - m.W
	}
}

// Torus3D is an X×Y×Z torus (set Z=1 for 2D) with one node per router and
// shortest-direction dimension-order routing — the Red Storm/Cray-style
// system interconnect.
type Torus3D struct {
	X, Y, Z int
}

// NewTorus3D validates dimensions.
func NewTorus3D(x, y, z int) (*Torus3D, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return nil, fmt.Errorf("noc: torus dimensions %dx%dx%d invalid", x, y, z)
	}
	return &Torus3D{X: x, Y: y, Z: z}, nil
}

func (t *Torus3D) Name() string       { return fmt.Sprintf("torus-%dx%dx%d", t.X, t.Y, t.Z) }
func (t *Torus3D) NumRouters() int    { return t.X * t.Y * t.Z }
func (t *Torus3D) NumNodes() int      { return t.NumRouters() }
func (t *Torus3D) RouterOf(n int) int { return n }

func (t *Torus3D) Diameter() int { return t.X/2 + t.Y/2 + t.Z/2 }

// Coords splits a router id into its (x, y, z) torus coordinates.
func (t *Torus3D) Coords(r int) (x, y, z int) {
	return r % t.X, r / t.X % t.Y, r / (t.X * t.Y)
}

func (t *Torus3D) id(x, y, z int) int { return z*t.X*t.Y + y*t.X + x }

func (t *Torus3D) Links() [][2]int {
	var ls [][2]int
	add := func(a, b int) {
		if a < b {
			ls = append(ls, [2]int{a, b})
		} else if b < a {
			ls = append(ls, [2]int{b, a})
		}
	}
	seen := map[[2]int]bool{}
	for r := 0; r < t.NumRouters(); r++ {
		x, y, z := t.Coords(r)
		add(r, t.id((x+1)%t.X, y, z))
		add(r, t.id(x, (y+1)%t.Y, z))
		add(r, t.id(x, y, (z+1)%t.Z))
	}
	// Dedup (size-2 rings produce duplicate pairs).
	out := ls[:0]
	for _, l := range ls {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// step moves coordinate c toward d around a ring of size n, taking the
// shorter way (ties go up).
func step(c, d, n int) int {
	if c == d {
		return c
	}
	fwd := (d - c + n) % n
	if fwd <= n-fwd {
		return (c + 1) % n
	}
	return (c - 1 + n) % n
}

// Route implements shortest-way dimension order (X, then Y, then Z).
func (t *Torus3D) Route(r, dstNode int) int {
	dst := t.RouterOf(dstNode)
	if r == dst {
		return -1
	}
	x, y, z := t.Coords(r)
	dx, dy, dz := t.Coords(dst)
	switch {
	case x != dx:
		return t.id(step(x, dx, t.X), y, z)
	case y != dy:
		return t.id(x, step(y, dy, t.Y), z)
	default:
		return t.id(x, y, step(z, dz, t.Z))
	}
}

// FatTree is a two-level fat tree: NumEdge edge switches with NodesPerEdge
// nodes each, and NumCore core switches each connected to every edge
// switch. Up-route selection hashes the destination so a given pair always
// uses the same core (deterministic routing).
type FatTree struct {
	NumEdge, NodesPerEdge, NumCore int
}

// NewFatTree validates shape. Full bisection needs NumCore >= NodesPerEdge.
func NewFatTree(edges, nodesPerEdge, cores int) (*FatTree, error) {
	if edges <= 0 || nodesPerEdge <= 0 || cores <= 0 {
		return nil, fmt.Errorf("noc: fat tree %d/%d/%d invalid", edges, nodesPerEdge, cores)
	}
	return &FatTree{NumEdge: edges, NodesPerEdge: nodesPerEdge, NumCore: cores}, nil
}

func (f *FatTree) Name() string {
	return fmt.Sprintf("fattree-%de-%dn-%dc", f.NumEdge, f.NodesPerEdge, f.NumCore)
}

// Routers: edge switches are 0..NumEdge-1; cores are NumEdge..NumEdge+NumCore-1.
func (f *FatTree) NumRouters() int    { return f.NumEdge + f.NumCore }
func (f *FatTree) NumNodes() int      { return f.NumEdge * f.NodesPerEdge }
func (f *FatTree) RouterOf(n int) int { return n / f.NodesPerEdge }
func (f *FatTree) Diameter() int      { return 2 }

func (f *FatTree) Links() [][2]int {
	var ls [][2]int
	for e := 0; e < f.NumEdge; e++ {
		for c := 0; c < f.NumCore; c++ {
			ls = append(ls, [2]int{e, f.NumEdge + c})
		}
	}
	return ls
}

// Route goes up to a destination-hashed core, then down.
func (f *FatTree) Route(r, dstNode int) int {
	dstEdge := f.RouterOf(dstNode)
	if r < f.NumEdge {
		if r == dstEdge {
			return -1
		}
		return f.NumEdge + dstNode%f.NumCore
	}
	return dstEdge
}

// Crossbar connects every node to a single ideal switch.
type Crossbar struct {
	N int
}

// NewCrossbar validates size.
func NewCrossbar(n int) (*Crossbar, error) {
	if n <= 0 {
		return nil, fmt.Errorf("noc: crossbar size %d invalid", n)
	}
	return &Crossbar{N: n}, nil
}

func (c *Crossbar) Name() string       { return fmt.Sprintf("xbar-%d", c.N) }
func (c *Crossbar) NumRouters() int    { return 1 }
func (c *Crossbar) NumNodes() int      { return c.N }
func (c *Crossbar) RouterOf(n int) int { return 0 }
func (c *Crossbar) Diameter() int      { return 0 }
func (c *Crossbar) Links() [][2]int    { return nil }
func (c *Crossbar) Route(r, dstNode int) int {
	return -1 // everything is local to the one router
}
