// Command sst-asm assembles, disassembles and executes SR1 programs — the
// execution-driven front-end's ISA.
//
// Usage:
//
//	sst-asm [-run] [-max N] [-regs] [-format table|json|csv]
//	        [-trace-out t.json] [-trace-cap N] [-metrics-out m.json] program.s
//
// Without -run the assembled program is disassembled to stdout. With -run
// the program executes functionally (no timing) for at most -max
// instructions and reports the retired count; -regs also dumps nonzero
// registers. -trace-out single-steps the machine and records one span per
// instruction (pseudo-time = instruction index) into a Chrome trace_event
// file; -metrics-out writes {instructions, host_seconds, mips} JSON.
//
// Exit codes: 0 success, 1 failure, 2 configuration error (bad usage,
// format, source file or assembly error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sst/internal/cli"
	"sst/internal/core"
	"sst/internal/isa"
	"sst/internal/obs"
	"sst/internal/sim"
	"sst/internal/stats"
)

func main() {
	var (
		runFlag    = flag.Bool("run", false, "execute the program functionally")
		maxFlag    = flag.Uint64("max", 100_000_000, "instruction budget for -run")
		regsFlag   = flag.Bool("regs", false, "dump nonzero registers after -run")
		formatFlag = flag.String("format", "table", "output format: table, json or csv")
		traceOut   = flag.String("trace-out", "", "write a per-instruction trace (Chrome JSON; CSV if path ends in .csv)")
		traceCap   = flag.Int("trace-cap", 0, "trace ring capacity in spans (0 = default)")
		metricsOut = flag.String("metrics-out", "", "write run metrics JSON to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sst-asm [-run] [-max N] [-regs] [-format f] [-trace-out t] [-metrics-out m] program.s")
		os.Exit(cli.ExitConfig)
	}
	format, err := core.ParseFormat(*formatFlag)
	if err != nil {
		cli.Exit("sst-asm", cli.Configf("%v", err))
	}
	cli.Exit("sst-asm", run(flag.Arg(0), *runFlag, *maxFlag, *regsFlag, format, *traceOut, *traceCap, *metricsOut))
}

func run(path string, execute bool, maxInstrs uint64, dumpRegs bool, format core.Format, traceOut string, traceCap int, metricsOut string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return cli.Configf("%v", err)
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		return cli.Configf("%v", err)
	}
	if !execute {
		text, err := prog.Disassemble()
		if err != nil {
			return err
		}
		fmt.Print(text)
		if len(prog.Labels) > 0 {
			fmt.Println("\nlabels:")
			for name, addr := range prog.Labels {
				fmt.Printf("  %-16s %#x\n", name, addr)
			}
		}
		return nil
	}
	m := isa.NewMachine(prog)
	var (
		n      uint64
		tracer *obs.Tracer
	)
	hostStart := time.Now()
	if traceOut == "" {
		n, err = m.Run(maxInstrs)
		if err != nil {
			return err
		}
	} else {
		// Single-step so each instruction becomes one trace span. The
		// functional machine has no clock, so the span's "time" axis is
		// the instruction index.
		tracer = obs.NewTracer(traceCap)
		for n < maxInstrs && !m.Halted() {
			stepStart := time.Now()
			info, err := m.Step()
			if err != nil {
				return err
			}
			tracer.Event(sim.Time(n), fmt.Sprintf("pc=%#x", info.PC), time.Since(stepStart))
			n++
		}
	}
	hostSecs := time.Since(hostStart).Seconds()
	if tracer != nil {
		write := tracer.WriteChromeJSON
		if strings.HasSuffix(traceOut, ".csv") {
			write = tracer.WriteCSV
		}
		if err := writeFile(traceOut, write); err != nil {
			return err
		}
	}
	mips := 0.0
	if hostSecs > 0 {
		mips = float64(n) / hostSecs / 1e6
	}
	if metricsOut != "" {
		if err := writeFile(metricsOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(struct {
				Instructions uint64  `json:"instructions"`
				HostSeconds  float64 `json:"host_seconds"`
				MIPS         float64 `json:"mips"`
			}{n, hostSecs, mips})
		}); err != nil {
			return err
		}
	}
	status := "halted"
	if !m.Halted() {
		status = "budget exhausted"
	}
	switch format {
	case core.FormatJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Status       string  `json:"status"`
			Instructions uint64  `json:"instructions"`
			PC           uint64  `json:"pc"`
			HostSeconds  float64 `json:"host_seconds"`
			MIPS         float64 `json:"mips"`
		}{status, n, uint64(m.PC), hostSecs, mips}); err != nil {
			return err
		}
	case core.FormatCSV:
		t := stats.NewTable("SR1 run", "metric", "value")
		t.AddRow("status", status)
		t.AddRow("instructions", n)
		t.AddRow("pc", fmt.Sprintf("%#x", m.PC))
		t.AddRow("host_seconds", hostSecs)
		t.AddRow("mips", mips)
		if err := t.WriteCSV(os.Stdout); err != nil {
			return err
		}
	default:
		fmt.Printf("%s after %d instructions (pc=%#x)\n", status, n, m.PC)
	}
	if dumpRegs {
		for r := 1; r < 32; r++ {
			if v := m.Reg(r); v != 0 {
				fmt.Printf("  r%-2d = %#x (%d)\n", r, v, int64(v))
			}
		}
	}
	return nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
