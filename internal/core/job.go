package core

// Job-shaped entry points over the studies. A JobSpec is a study call as
// data: serializable, validatable, and re-runnable, which is exactly what
// a long-running sweep service needs — it persists the spec at admission,
// runs it through the normal SweepOptions machinery (journal, resume,
// retry, cache, timeout), and after a crash re-runs the same spec with
// Resume set to converge on the same result. The CLIs keep calling the
// study functions directly; JobSpec is the scheduler-facing surface.

import (
	"fmt"
	"strings"
)

// JobSpec describes one sweep job. Kind selects the study; the remaining
// fields parameterize it and unused ones are ignored. The zero values of
// optional fields resolve to the study defaults in withDefaults, so a
// minimal spec is a valid job.
type JobSpec struct {
	// Kind is the study family: "dse" (the memory-technology × issue-width
	// grid behind Figs. 10–12) or "net" (the Fig. 9 injection-bandwidth
	// degradation study).
	Kind string `json:"kind"`

	// dse: the grid axes and problem scale ("small" or "full"; default
	// "small" — a service should opt in to the expensive sizes).
	Apps   []string `json:"apps,omitempty"`
	Techs  []string `json:"techs,omitempty"`
	Widths []int    `json:"widths,omitempty"`
	Scale  string   `json:"scale,omitempty"`

	// net: machine size, timestep count and injection-bandwidth operating
	// points; zero values take DefaultNetStudy's shape.
	Nodes     int       `json:"nodes,omitempty"`
	Steps     int       `json:"steps,omitempty"`
	Fractions []float64 `json:"fractions,omitempty"`
}

// withDefaults resolves optional fields to study defaults without
// mutating the receiver — the persisted spec stays exactly what the
// client submitted.
func (s JobSpec) withDefaults() JobSpec {
	switch s.Kind {
	case "dse":
		if s.Scale == "" {
			s.Scale = "small"
		}
	case "net":
		def := DefaultNetStudy()
		if s.Nodes == 0 {
			s.Nodes = def.Nodes
		}
		if s.Steps == 0 {
			s.Steps = def.Steps
		}
		if len(s.Fractions) == 0 {
			s.Fractions = def.Fractions
		}
	}
	return s
}

// Validate checks the spec structurally — unknown kind, empty axes, bad
// scale — so admission can reject a job before persisting it. Semantic
// failures (an app name no frontend implements) surface later as point
// failures, like they do for the CLIs.
func (s JobSpec) Validate() error {
	switch s.Kind {
	case "dse":
		if len(s.Apps) == 0 || len(s.Techs) == 0 || len(s.Widths) == 0 {
			return fmt.Errorf("core: job spec: dse needs apps, techs and widths")
		}
		for _, a := range append(append([]string{}, s.Apps...), s.Techs...) {
			if strings.TrimSpace(a) == "" {
				return fmt.Errorf("core: job spec: blank app or tech name")
			}
		}
		for _, w := range s.Widths {
			if w <= 0 {
				return fmt.Errorf("core: job spec: width %d out of range", w)
			}
		}
		switch s.Scale {
		case "", "small", "full":
		default:
			return fmt.Errorf("core: job spec: scale %q (want small or full)", s.Scale)
		}
	case "net":
		if s.Nodes < 0 || s.Steps < 0 {
			return fmt.Errorf("core: job spec: negative nodes or steps")
		}
		for _, f := range s.Fractions {
			if f <= 0 || f > 1 {
				return fmt.Errorf("core: job spec: fraction %v out of (0, 1]", f)
			}
		}
	case "":
		return fmt.Errorf("core: job spec: missing kind")
	default:
		return fmt.Errorf("core: job spec: unknown kind %q (want dse or net)", s.Kind)
	}
	return nil
}

// Points reports how many design points the job will run, for progress
// and admission accounting.
func (s JobSpec) Points() int {
	s = s.withDefaults()
	switch s.Kind {
	case "dse":
		return len(s.Apps) * len(s.Techs) * len(s.Widths)
	case "net":
		return len(netStudyProfiles()) * len(s.Fractions)
	}
	return 0
}

// Run executes the job under opts — journal, resume, retry, cache and
// cancellation all compose exactly as they do for the CLIs. The returned
// Result is non-nil whenever a partial grid exists, even on error, so a
// scheduler can persist what completed next to the failure.
func (s JobSpec) Run(opts SweepOptions) (Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.withDefaults()
	switch s.Kind {
	case "dse":
		scale := Small
		if s.Scale == "full" {
			scale = Full
		}
		g, err := MemTechWidthSweep(s.Apps, s.Techs, s.Widths, scale, opts)
		if g == nil {
			return nil, err
		}
		return g, err
	case "net":
		res, err := NetDegradationStudy(NetStudyConfig{
			Nodes: s.Nodes, Steps: s.Steps, Fractions: s.Fractions,
		}, opts)
		if res == nil {
			return nil, err
		}
		return res, err
	}
	return nil, fmt.Errorf("core: job spec: unknown kind %q", s.Kind)
}
