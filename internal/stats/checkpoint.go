package stats

// Snapshot support: every statistic kind knows how to serialize its exact
// state with the sim package's deterministic encoder, so components can
// carry their counters across an engine checkpoint (sim.Checkpointable).
// Floats are saved bit-exactly (Welford partial sums included), which is
// what makes a restored run's statistics indistinguishable from an
// uninterrupted one.

import (
	"fmt"

	"sst/internal/sim"
)

// SaveState writes the counter's state.
func (c *Counter) SaveState(enc *sim.Encoder) { enc.U64(c.n) }

// LoadState restores the counter's state.
func (c *Counter) LoadState(dec *sim.Decoder) error {
	c.n = dec.U64()
	return dec.Err()
}

// SaveState writes the accumulator's exact running state.
func (a *Accumulator) SaveState(enc *sim.Encoder) {
	enc.U64(a.n)
	enc.F64(a.mean)
	enc.F64(a.m2)
	enc.F64(a.sum)
	enc.F64(a.min)
	enc.F64(a.max)
}

// LoadState restores the accumulator's state.
func (a *Accumulator) LoadState(dec *sim.Decoder) error {
	a.n = dec.U64()
	a.mean = dec.F64()
	a.m2 = dec.F64()
	a.sum = dec.F64()
	a.min = dec.F64()
	a.max = dec.F64()
	return dec.Err()
}

// SaveState writes the histogram's buckets (sparsely: index/count pairs for
// the nonzero ones) and its embedded accumulator.
func (h *Histogram) SaveState(enc *sim.Encoder) {
	nz := 0
	for _, b := range h.buckets {
		if b != 0 {
			nz++
		}
	}
	enc.U64(uint64(nz))
	for i, b := range h.buckets {
		if b != 0 {
			enc.U64(uint64(i))
			enc.U64(b)
		}
	}
	h.acc.SaveState(enc)
}

// LoadState restores the histogram's state.
func (h *Histogram) LoadState(dec *sim.Decoder) error {
	h.buckets = [65]uint64{}
	n := dec.U64()
	for j := uint64(0); j < n; j++ {
		i := dec.U64()
		b := dec.U64()
		if err := dec.Err(); err != nil {
			return err
		}
		if i >= uint64(len(h.buckets)) {
			return fmt.Errorf("stats: snapshot histogram %q bucket %d out of range", h.name, i)
		}
		h.buckets[i] = b
	}
	return h.acc.LoadState(dec)
}

// SaveState writes the gauge's current value and peak watermark.
func (g *Gauge) SaveState(enc *sim.Encoder) {
	enc.I64(g.cur)
	enc.I64(g.peak)
}

// LoadState restores the gauge's state.
func (g *Gauge) LoadState(dec *sim.Decoder) error {
	g.cur = dec.I64()
	g.peak = dec.I64()
	return dec.Err()
}

// SaveState writes every statistic in registration order (the rebuild
// contract: the restored model registers the same stats in the same order).
func (r *Registry) SaveState(enc *sim.Encoder) {
	enc.U64(uint64(len(r.order)))
	for _, name := range r.order {
		enc.String(name)
		r.stats[name].(checkpointable).SaveState(enc)
	}
}

// LoadState restores every statistic, verifying names against registration
// order.
func (r *Registry) LoadState(dec *sim.Decoder) error {
	n := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if int(n) != len(r.order) {
		return fmt.Errorf("stats: snapshot has %d statistics, model registered %d", n, len(r.order))
	}
	for _, want := range r.order {
		name := dec.String()
		if err := dec.Err(); err != nil {
			return err
		}
		if name != want {
			return fmt.Errorf("stats: snapshot statistic %q, model registered %q", name, want)
		}
		if err := r.stats[want].(checkpointable).LoadState(dec); err != nil {
			return err
		}
	}
	return dec.Err()
}

// checkpointable mirrors sim.Checkpointable without widening the Stat
// interface (all four concrete kinds implement it).
type checkpointable interface {
	SaveState(*sim.Encoder)
	LoadState(*sim.Decoder) error
}
