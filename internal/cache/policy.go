package cache

import (
	"container/heap"
	"container/list"
	"fmt"
	"strings"
)

// PolicyType identifies a cache eviction policy.
type PolicyType int

const (
	// FIFO evicts in insertion order, ignoring reuse.
	FIFO PolicyType = iota
	// LRU evicts the least recently used key.
	LRU
	// LFU evicts the least frequently used key (ties broken toward the
	// least recently promoted).
	LFU
	// TinyLFU keeps LRU residency order but guards admission with a
	// doorkeeper + count-min frequency sketch: a new key is only admitted
	// when its estimated access frequency is at least the current
	// victim's, so one-hit wonders cannot wash out a hot working set.
	TinyLFU
)

// String returns the flag spelling of the policy.
func (p PolicyType) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LRU:
		return "lru"
	case LFU:
		return "lfu"
	case TinyLFU:
		return "tinylfu"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses "fifo", "lru", "lfu" or "tinylfu".
func ParsePolicy(s string) (PolicyType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fifo":
		return FIFO, nil
	case "", "lru":
		return LRU, nil
	case "lfu":
		return LFU, nil
	case "tinylfu", "tiny-lfu":
		return TinyLFU, nil
	}
	return LRU, fmt.Errorf("cache: unknown policy %q (want fifo, lru, lfu or tinylfu)", s)
}

// ParsePolicies parses a comma-separated policy list (for shadow sensors).
func ParsePolicies(s string) ([]PolicyType, error) {
	var out []PolicyType
	for _, part := range strings.Split(s, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		p, err := ParsePolicy(part)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// evictor is the metadata half of an eviction policy: it orders keys and
// nominates victims but never sees values. The Cache owns the key→value
// store; shadow sensors run an evictor with no store at all.
type evictor interface {
	has(key string) bool
	// add inserts a new key at the hot end.
	add(key string)
	// addCold inserts a new key at the cold end (used when a gradual
	// policy migration drains a not-recently-used key across).
	addCold(key string)
	// touch records an access to a resident key.
	touch(key string)
	remove(key string)
	// victim peeks the next eviction candidate without removing it.
	victim() (string, bool)
	len() int
	// keys returns every resident key in cold→hot order (used for warm
	// policy migration, which must preserve relative temperature).
	keys() []string
}

// recorder is implemented by policies that learn from every access, hit or
// miss — TinyLFU's frequency sketch sees the full request stream, not just
// the resident subset.
type recorder interface{ record(key string) }

// admitter is implemented by policies that may refuse to cache a new key.
// admit is only consulted when admitting the key would force an eviction.
type admitter interface{ admit(candidate string) bool }

// newEvictor builds the metadata structure for a policy; capacity sizes
// TinyLFU's sketch.
func newEvictor(p PolicyType, capacity int) evictor {
	switch p {
	case FIFO:
		return &listPolicy{order: list.New(), items: map[string]*list.Element{}}
	case LFU:
		return &lfuPolicy{index: map[string]*lfuItem{}}
	case TinyLFU:
		return &tinyLFUPolicy{
			listPolicy: listPolicy{order: list.New(), items: map[string]*list.Element{}, onTouch: true},
			sketch:     newSketch(capacity),
		}
	default: // LRU
		return &listPolicy{order: list.New(), items: map[string]*list.Element{}, onTouch: true}
	}
}

// listPolicy implements FIFO (onTouch=false) and LRU (onTouch=true) over a
// doubly linked list: front is the cold end, back the hot end.
type listPolicy struct {
	order   *list.List
	items   map[string]*list.Element
	onTouch bool
}

func (p *listPolicy) has(key string) bool { _, ok := p.items[key]; return ok }

func (p *listPolicy) add(key string) {
	if _, ok := p.items[key]; ok {
		return
	}
	p.items[key] = p.order.PushBack(key)
}

func (p *listPolicy) addCold(key string) {
	if _, ok := p.items[key]; ok {
		return
	}
	p.items[key] = p.order.PushFront(key)
}

func (p *listPolicy) touch(key string) {
	if e, ok := p.items[key]; ok && p.onTouch {
		p.order.MoveToBack(e)
	}
}

func (p *listPolicy) remove(key string) {
	if e, ok := p.items[key]; ok {
		p.order.Remove(e)
		delete(p.items, key)
	}
}

func (p *listPolicy) victim() (string, bool) {
	if e := p.order.Front(); e != nil {
		return e.Value.(string), true
	}
	return "", false
}

func (p *listPolicy) len() int { return len(p.items) }

func (p *listPolicy) keys() []string {
	out := make([]string, 0, len(p.items))
	for e := p.order.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(string))
	}
	return out
}

// lfuPolicy orders keys by (frequency, promotion sequence) in a min-heap:
// the victim is the least frequently used key, ties broken toward the one
// that reached its count longest ago. Operations are O(log n).
type lfuPolicy struct {
	items []*lfuItem
	index map[string]*lfuItem
	seq   int64 // increases on add/touch: higher = hotter within a count
	cold  int64 // decreases on addCold: colder than everything resident
}

type lfuItem struct {
	key  string
	freq uint64
	seq  int64
	idx  int
}

func (p *lfuPolicy) Len() int { return len(p.items) }
func (p *lfuPolicy) Less(i, j int) bool {
	a, b := p.items[i], p.items[j]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.seq < b.seq
}
func (p *lfuPolicy) Swap(i, j int) {
	p.items[i], p.items[j] = p.items[j], p.items[i]
	p.items[i].idx = i
	p.items[j].idx = j
}
func (p *lfuPolicy) Push(x any) {
	it := x.(*lfuItem)
	it.idx = len(p.items)
	p.items = append(p.items, it)
}
func (p *lfuPolicy) Pop() any {
	it := p.items[len(p.items)-1]
	p.items = p.items[:len(p.items)-1]
	return it
}

func (p *lfuPolicy) init() {
	if p.index == nil {
		p.index = map[string]*lfuItem{}
	}
}

func (p *lfuPolicy) has(key string) bool { p.init(); _, ok := p.index[key]; return ok }

func (p *lfuPolicy) add(key string) {
	p.init()
	if _, ok := p.index[key]; ok {
		return
	}
	p.seq++
	it := &lfuItem{key: key, freq: 1, seq: p.seq}
	p.index[key] = it
	heap.Push(p, it)
}

func (p *lfuPolicy) addCold(key string) {
	p.init()
	if _, ok := p.index[key]; ok {
		return
	}
	p.cold--
	it := &lfuItem{key: key, freq: 1, seq: p.cold}
	p.index[key] = it
	heap.Push(p, it)
}

func (p *lfuPolicy) touch(key string) {
	p.init()
	if it, ok := p.index[key]; ok {
		p.seq++
		it.freq++
		it.seq = p.seq
		heap.Fix(p, it.idx)
	}
}

func (p *lfuPolicy) remove(key string) {
	p.init()
	if it, ok := p.index[key]; ok {
		heap.Remove(p, it.idx)
		delete(p.index, key)
	}
}

func (p *lfuPolicy) victim() (string, bool) {
	if len(p.items) == 0 {
		return "", false
	}
	return p.items[0].key, true
}

func (p *lfuPolicy) len() int { return len(p.items) }

func (p *lfuPolicy) keys() []string {
	// Cold→hot = ascending (freq, seq); sort a copy so the heap's
	// internal order is untouched.
	cp := &lfuPolicy{items: make([]*lfuItem, len(p.items))}
	copy(cp.items, p.items)
	out := make([]string, 0, len(cp.items))
	for cp.Len() > 0 {
		out = append(out, heap.Pop(cp).(*lfuItem).key)
	}
	return out
}

// tinyLFUPolicy is LRU residency plus a frequency sketch and an admission
// filter. record feeds the sketch on every access (hit or miss); admit
// compares the candidate's estimated frequency against the current LRU
// victim's and refuses keys that would displace hotter data.
type tinyLFUPolicy struct {
	listPolicy
	sketch *sketch
}

func (p *tinyLFUPolicy) record(key string) { p.sketch.record(key) }

func (p *tinyLFUPolicy) admit(candidate string) bool {
	v, ok := p.victim()
	if !ok {
		return true
	}
	return p.sketch.estimate(candidate) >= p.sketch.estimate(v)
}

func (p *tinyLFUPolicy) touch(key string) { p.listPolicy.touch(key) }
