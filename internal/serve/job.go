package serve

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"sst/internal/core"
	"sst/internal/iofault"
	"sst/internal/obs"
)

// Job states. Queued and running jobs have no status.json on disk; the
// terminal states (done, failed, cancelled) do. Interrupted is the one
// non-terminal "finished" state: a drain stopped the job mid-sweep, its
// completed points are journaled, and the next server over the same state
// directory resumes it — which is also exactly what happens after a
// kill -9, where the state is simply never written.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted"
)

// terminal reports whether a state ends the job for good: such jobs are
// never resumed by a restart.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// job is the server-side record of one submitted sweep. Mutable fields
// are guarded by the Server's mutex.
type job struct {
	id     string
	tenant string
	spec   core.JobSpec
	// deadline bounds the job's total runtime; zero means none.
	deadline time.Duration
	dir      string

	state     string
	errText   string
	cancelled bool // DELETE requested (distinguishes cancel from drain)
	recovered bool // resumed from a previous process's state dir
	cancel    func()

	points       int
	pointsDone   int
	pointsFailed int
	retries      int
	quarantined  int

	// metrics retains the job's most recent per-point reports in a
	// hard-capped ring (jobReportCap); evictions are counted, not
	// swallowed, and roll up into the service report's reports_dropped.
	// Created when the job first runs; nil for jobs loaded terminal.
	metrics *obs.SweepCollector

	// done is closed when the job reaches any non-queued, non-running
	// state; Drain and the tests wait on it.
	done chan struct{}
}

// JobStatus is the wire (and status.json) form of a job.
type JobStatus struct {
	ID           string `json:"id"`
	Tenant       string `json:"tenant"`
	State        string `json:"state"`
	Points       int    `json:"points"`
	PointsDone   int    `json:"points_done"`
	PointsFailed int    `json:"points_failed"`
	Retries      int    `json:"retries"`
	Quarantined  int    `json:"quarantined"`
	Err          string `json:"err,omitempty"`
	Recovered    bool   `json:"recovered,omitempty"`
}

// status snapshots the job. Caller holds the Server mutex.
func (j *job) status() JobStatus {
	return JobStatus{
		ID: j.id, Tenant: j.tenant, State: j.state,
		Points: j.points, PointsDone: j.pointsDone, PointsFailed: j.pointsFailed,
		Retries: j.retries, Quarantined: j.quarantined,
		Err: j.errText, Recovered: j.recovered,
	}
}

// jobSpecFile is what spec.json holds: everything needed to re-create the
// job after a crash. It is written before the job is admitted to the
// queue, so a job the client saw accepted is never lost.
type jobSpecFile struct {
	ID         string       `json:"id"`
	Tenant     string       `json:"tenant"`
	Spec       core.JobSpec `json:"spec"`
	DeadlineMS int64        `json:"deadline_ms,omitempty"`
}

var jobCounter atomic.Uint64

// newJobID builds a unique, time-sortable job ID.
func newJobID() string {
	return fmt.Sprintf("j%016x-%04x", uint64(time.Now().UnixNano()), jobCounter.Add(1)&0xffff)
}

// journalPath is the job's sweep journal: the crash-safety layer the
// resume path reads.
func (j *job) journalPath() string { return filepath.Join(j.dir, "journal.jsonl") }

// resultPath is the job's rendered CSV, written when the sweep produced a
// (possibly partial) grid.
func (j *job) resultPath() string { return filepath.Join(j.dir, "result.csv") }

// statusPath is the terminal-state marker; its absence after a restart
// means the job is incomplete and must be resumed.
func (j *job) statusPath() string { return filepath.Join(j.dir, "status.json") }

func (j *job) specPath() string { return filepath.Join(j.dir, "spec.json") }

// persistSpec durably writes spec.json via the shared atomic-replace
// helper: temp file, fsync, rename, parent-dir fsync. (The old local
// writer skipped the directory fsync, so a freshly renamed marker could
// vanish in a crash even though its bytes were on disk.)
func (j *job) persistSpec(fsys iofault.FS) error {
	data, err := json.MarshalIndent(jobSpecFile{
		ID: j.id, Tenant: j.tenant, Spec: j.spec,
		DeadlineMS: j.deadline.Milliseconds(),
	}, "", "  ")
	if err != nil {
		return err
	}
	return iofault.WriteFileAtomic(fsys, j.specPath(), data)
}

// persistStatus durably writes the terminal status.json marker.
func (j *job) persistStatus(fsys iofault.FS, st JobStatus) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return iofault.WriteFileAtomic(fsys, j.statusPath(), data)
}

// readStatus loads a status.json marker.
func readStatus(fsys iofault.FS, path string) (JobStatus, error) {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}
