// Execdriven: the front-end/back-end split in action.
//
// One SR1 program (a pointer chase — dependent loads that no prefetcher
// can help) is executed on three different processor back-ends over the
// same memory hierarchy. The architectural result is identical every time
// (the interpreter defines the semantics); only the timing differs — which
// is the whole idea of separating functional front-ends from timing
// back-ends.
//
// Run with: go run ./examples/execdriven
package main

import (
	"fmt"
	"log"

	"sst/internal/cpu"
	"sst/internal/frontend"
	"sst/internal/mem"
	"sst/internal/sim"
	"sst/internal/workload"
)

func main() {
	prog := workload.PointerChaseProgram(2048, 16384)

	type backend struct {
		name  string
		build func(e *sim.Engine, c *sim.Clock, s frontend.Stream, m mem.Device) (cpu.Core, error)
	}
	backends := []backend{
		{"in-order scalar", func(e *sim.Engine, c *sim.Clock, s frontend.Stream, m mem.Device) (cpu.Core, error) {
			return cpu.NewInOrder(e, c, cpu.DefaultConfig("inorder", 1), s, m, nil)
		}},
		{"4-wide superscalar", func(e *sim.Engine, c *sim.Clock, s frontend.Stream, m mem.Device) (cpu.Core, error) {
			return cpu.NewSuperscalar(e, c, cpu.DefaultConfig("wide", 4), s, m, nil)
		}},
		{"8-thread PIM core", func(e *sim.Engine, c *sim.Clock, s frontend.Stream, m mem.Device) (cpu.Core, error) {
			// One real program thread plus synthetic siblings: the
			// threaded core interleaves them to hide the chase's
			// latency.
			streams := []frontend.Stream{s}
			for i := 0; i < 7; i++ {
				cfg, err := frontend.Profile("irregular", 20000, uint64(i))
				if err != nil {
					return nil, err
				}
				cfg.Base = uint64(i+1) << 32
				sib, err := frontend.NewSynthetic(cfg)
				if err != nil {
					return nil, err
				}
				streams = append(streams, sib)
			}
			pc := cpu.Config{Name: "pim", Freq: sim.GHz, Threads: 8}
			return cpu.NewThreaded(e, c, pc, streams, m, nil)
		}},
	}

	fmt.Println("pointer chase (16384 dependent loads) on three back-ends:")
	for _, be := range backends {
		stream, err := prog.Stream(0)
		if err != nil {
			log.Fatal(err)
		}
		engine := sim.NewEngine()
		clock := sim.NewClock(engine, 2*sim.GHz)
		lower := mem.NewSimpleMemory(engine, "mem", 80*sim.Nanosecond, 0, nil)
		l1, err := mem.NewCache(engine, mem.CacheConfig{
			Name: "l1", SizeBytes: 8 << 10, LineBytes: 64, Assoc: 2,
			HitLatency: sim.Nanosecond, MSHRs: 8, WriteBack: true,
		}, lower, nil)
		if err != nil {
			log.Fatal(err)
		}
		core, err := be.build(engine, clock, stream, l1)
		if err != nil {
			log.Fatal(err)
		}
		core.Start(func() {})
		engine.RunAll()
		if err := stream.Err(); err != nil {
			log.Fatal(err)
		}
		if err := prog.Check(stream.Machine()); err != nil {
			log.Fatalf("%s: wrong answer: %v", be.name, err)
		}
		fmt.Printf("  %-20s %8.3f ms simulated, %7d ops retired, aggregate IPC %.3f  (answer verified)\n",
			be.name, engine.Now().Seconds()*1e3, core.Retired(), core.IPC())
	}
	fmt.Println("\nsame program, same answer, three different machines — only time changed.")
	fmt.Println("(the PIM core also retired ~140k ops of sibling-thread work while the")
	fmt.Println("chase was stalled on memory — that is the latency tolerance it sells.)")
}
