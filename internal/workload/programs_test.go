package workload

import (
	"testing"

	"sst/internal/cpu"
	"sst/internal/frontend"
	"sst/internal/isa"
	"sst/internal/mem"
	"sst/internal/sim"
)

func TestProgramsFunctional(t *testing.T) {
	for _, p := range Programs() {
		m, err := p.Build()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if _, err := m.Run(50_000_000); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !m.Halted() {
			t.Fatalf("%s: did not halt", p.Name)
		}
		if p.Check != nil {
			if err := p.Check(m); err != nil {
				t.Errorf("%s: %v", p.Name, err)
			}
		}
	}
}

// TestProgramsExecutionDriven runs each program through the full timing
// stack — superscalar core, L1, DRAM — and cross-checks the architectural
// result against the pure interpreter.
func TestProgramsExecutionDriven(t *testing.T) {
	for _, p := range Programs() {
		stream, err := p.Stream(0)
		if err != nil {
			t.Fatal(err)
		}
		engine := sim.NewEngine()
		clock := sim.NewClock(engine, 2*sim.GHz)
		lower := mem.NewSimpleMemory(engine, "mem", 60*sim.Nanosecond, 20e9, nil)
		l1, err := mem.NewCache(engine, mem.CacheConfig{
			Name: "l1", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4,
			HitLatency: sim.Nanosecond, MSHRs: 8, WriteBack: true,
		}, lower, nil)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cpu.NewSuperscalar(engine, clock, cpu.DefaultConfig("cpu", 2), stream, l1, nil)
		if err != nil {
			t.Fatal(err)
		}
		done := false
		c.Start(func() { done = true })
		engine.RunAll()
		if !done {
			t.Fatalf("%s: timing run never finished", p.Name)
		}
		if stream.Err() != nil {
			t.Fatalf("%s: %v", p.Name, stream.Err())
		}
		if p.Check != nil {
			if err := p.Check(stream.Machine()); err != nil {
				t.Errorf("%s (timed): %v", p.Name, err)
			}
		}
		if c.Retired() == 0 || c.IPC() <= 0 {
			t.Errorf("%s: no timing activity", p.Name)
		}
	}
}

// TestPointerChaseIsLatencyBound contrasts the pointer chase against daxpy
// on identical hardware: the chase's dependent loads must yield a far lower
// IPC (this is the workload signature the PIM study rests on).
func TestPointerChaseIsLatencyBound(t *testing.T) {
	run := func(p *Program) float64 {
		stream, err := p.Stream(0)
		if err != nil {
			t.Fatal(err)
		}
		engine := sim.NewEngine()
		clock := sim.NewClock(engine, 2*sim.GHz)
		lower := mem.NewSimpleMemory(engine, "mem", 80*sim.Nanosecond, 0, nil)
		l1, err := mem.NewCache(engine, mem.CacheConfig{
			Name: "l1", SizeBytes: 4 << 10, LineBytes: 64, Assoc: 2,
			HitLatency: sim.Nanosecond, MSHRs: 8, WriteBack: true,
			// The prefetcher is the discriminator: it rescues the
			// sequential daxpy streams and is useless against
			// dependent pointer chasing.
			PrefetchNextLine: true, PrefetchDegree: 4,
		}, lower, nil)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cpu.NewSuperscalar(engine, clock, cpu.DefaultConfig("cpu", 4), stream, l1, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.Start(func() {})
		engine.RunAll()
		if err := stream.Err(); err != nil {
			t.Fatal(err)
		}
		return c.IPC()
	}
	chase := run(PointerChaseProgram(4096, 8192))
	daxpy := run(DAXPYProgram(2048))
	if chase*1.5 > daxpy {
		t.Errorf("pointer chase IPC %.3f not clearly below daxpy IPC %.3f", chase, daxpy)
	}
}

// TestFibonacciPredictorFriendly checks the loop branch trains the 2-bit
// predictor: mispredicts should be a tiny fraction of branches.
func TestFibonacciPredictorFriendly(t *testing.T) {
	p := FibonacciProgram(500)
	stream, err := p.Stream(0)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine()
	clock := sim.NewClock(engine, sim.GHz)
	lower := mem.NewSimpleMemory(engine, "mem", 50*sim.Nanosecond, 0, nil)
	c, err := cpu.NewSuperscalar(engine, clock, cpu.DefaultConfig("cpu", 2), stream, lower, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(func() {})
	engine.RunAll()
	if c.Mispredicts() > 10 {
		t.Errorf("fib loop mispredicted %d times", c.Mispredicts())
	}
}

// TestProgramStreamClasses sanity-checks the exec front-end's class
// mapping over a real program.
func TestProgramStreamClasses(t *testing.T) {
	stream, err := DAXPYProgram(16).Stream(0)
	if err != nil {
		t.Fatal(err)
	}
	var counts [6]uint64
	var op frontend.Op
	for stream.Next(&op) {
		counts[op.Class]++
	}
	if stream.Err() != nil {
		t.Fatal(stream.Err())
	}
	if counts[frontend.ClassLoad] == 0 || counts[frontend.ClassStore] == 0 ||
		counts[frontend.ClassFloat] == 0 || counts[frontend.ClassBranch] == 0 {
		t.Errorf("class census incomplete: %v", counts)
	}
	m := stream.Machine()
	if !m.Halted() {
		t.Error("stream ended before halt")
	}
}

// TestProgramBadSource surfaces assembler errors through the library.
func TestProgramBadSource(t *testing.T) {
	p := &Program{Name: "bad", Source: "frobnicate r1, r2"}
	if _, err := p.Build(); err == nil {
		t.Fatal("bad source assembled")
	}
	if _, err := p.Stream(0); err == nil {
		t.Fatal("bad source streamed")
	}
}

var _ = isa.NOP // keep the isa import for Check signatures
