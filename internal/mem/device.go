// Package mem implements gosst's on-node memory hierarchy: set-associative
// caches with MSHRs and pluggable replacement, write-back/write-through
// policies, an optional next-line prefetcher, MESI coherence over a snooping
// bus, and adapters that bridge the hierarchy onto the DRAM timing model.
//
// Within a node the hierarchy uses direct-call ports with event-scheduled
// completions (SST's fast "memHierarchy" coupling); only cross-node traffic
// pays for full link events.
package mem

import (
	"fmt"

	"sst/internal/dram"
	"sst/internal/sim"
	"sst/internal/stats"
)

// Op distinguishes access kinds moving down the hierarchy.
type Op uint8

const (
	// Read requests data (load or instruction fetch).
	Read Op = iota
	// Write stores data.
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Device is anything that accepts memory accesses: a cache, a bus, a DRAM
// adapter, or a fixed-latency test memory. done fires when the access
// completes; it may be nil for posted writes. Access must be called from
// within the simulation (i.e. during an event), never from outside.
type Device interface {
	Access(op Op, addr uint64, size int, done func())
}

// SimpleMemory is a fixed-latency, bandwidth-limited memory device used in
// unit tests and as an abstract machine model's "perfect" memory.
type SimpleMemory struct {
	name    string
	engine  *sim.Engine
	latency sim.Time
	// perByte throttles throughput: each byte occupies the device for
	// this long. Zero means infinite bandwidth.
	perByte sim.Time
	freeAt  sim.Time

	reads, writes *stats.Counter
	bytes         *stats.Counter
}

// NewSimpleMemory builds a fixed-latency memory. bytesPerSecond of 0 means
// unlimited bandwidth.
func NewSimpleMemory(engine *sim.Engine, name string, latency sim.Time, bytesPerSecond float64, scope *stats.Scope) *SimpleMemory {
	m := &SimpleMemory{name: name, engine: engine, latency: latency}
	if bytesPerSecond > 0 {
		m.perByte = sim.Time(float64(sim.Second) / bytesPerSecond)
		if m.perByte == 0 {
			m.perByte = 1
		}
	}
	if scope == nil {
		scope = stats.NewRegistry().Scope(name)
	}
	m.reads = scope.Counter("reads")
	m.writes = scope.Counter("writes")
	m.bytes = scope.Counter("bytes")
	return m
}

// Name returns the component name.
func (m *SimpleMemory) Name() string { return m.name }

// Access implements Device.
func (m *SimpleMemory) Access(op Op, addr uint64, size int, done func()) {
	if op == Read {
		m.reads.Inc()
	} else {
		m.writes.Inc()
	}
	m.bytes.Add(uint64(size))
	now := m.engine.Now()
	start := now
	if m.freeAt > start {
		start = m.freeAt
	}
	occupancy := m.perByte * sim.Time(size)
	m.freeAt = start + occupancy
	if done != nil {
		m.engine.ScheduleLabeledAt(start+occupancy+m.latency, sim.PrioLink, m.name, runPayload, done)
	}
}

// DRAMDevice adapts a dram.Memory to the Device interface, splitting
// arbitrary-size accesses into line transfers and completing when the last
// line finishes.
type DRAMDevice struct {
	Mem *dram.Memory
}

// Access implements Device.
func (d *DRAMDevice) Access(op Op, addr uint64, size int, done func()) {
	line := uint64(d.Mem.Config().LineBytes)
	first := addr &^ (line - 1)
	last := (addr + uint64(size) - 1) &^ (line - 1)
	if size <= 0 {
		last = first
	}
	n := int((last-first)/line) + 1
	if done == nil {
		for a := first; ; a += line {
			d.Mem.Access(a, op == Write, nil)
			if a == last {
				break
			}
		}
		return
	}
	if n == 1 {
		// Single-line transfer — the overwhelmingly common case for
		// line-sized fills from the cache above: no countdown closure.
		d.Mem.Access(first, op == Write, done)
		return
	}
	remaining := n
	sub := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	for a := first; ; a += line {
		d.Mem.Access(a, op == Write, sub)
		if a == last {
			break
		}
	}
}

// deviceName returns a diagnostic name for error messages.
func deviceName(d Device) string {
	switch v := d.(type) {
	case interface{ Name() string }:
		return v.Name()
	default:
		return fmt.Sprintf("%T", d)
	}
}
