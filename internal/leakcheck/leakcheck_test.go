package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// fakeTB records Errorf calls and runs cleanups synchronously, so the
// checker can be exercised without failing the real test.
type fakeTB struct {
	cleanups []func()
	errors   []string
}

func (f *fakeTB) Helper()           {}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(s string, a ...any) {
	f.errors = append(f.errors, s)
}
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCleanTestPasses(t *testing.T) {
	ft := &fakeTB{}
	Check(ft)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	ft.runCleanups()
	if len(ft.errors) != 0 {
		t.Fatalf("clean test flagged as leaking: %v", ft.errors)
	}
}

func TestWaitsForLateExit(t *testing.T) {
	// A goroutine that exits shortly after the test body ends is not a
	// leak: the poll loop must absorb it.
	ft := &fakeTB{}
	Check(ft)
	release := make(chan struct{})
	go func() { <-release }()
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	ft.runCleanups()
	if len(ft.errors) != 0 {
		t.Fatalf("late-exiting goroutine flagged as leak: %v", ft.errors)
	}
}

func TestDetectsLeak(t *testing.T) {
	ft := &fakeTB{}
	base := signatures()
	stuck := make(chan struct{})
	go leakyWorker(stuck)
	defer close(stuck)

	// Drive leakedSince directly with a short deadline instead of the full
	// Check cleanup, which would poll for 5s on a genuine leak.
	deadline := time.Now().Add(200 * time.Millisecond)
	var leaked []string
	for time.Now().Before(deadline) {
		leaked = leakedSince(base)
		if len(leaked) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(leaked) == 0 {
		t.Fatal("blocked goroutine not detected as leak")
	}
	if !strings.Contains(strings.Join(leaked, "\n"), "leakyWorker") {
		t.Fatalf("leak report missing culprit stack:\n%s", strings.Join(leaked, "\n"))
	}
	_ = ft
}

// leakyWorker blocks until released; named so the leak report is
// recognizable in TestDetectsLeak.
func leakyWorker(ch chan struct{}) { <-ch }

func TestSignatureStability(t *testing.T) {
	g := `goroutine 42 [chan receive]:
sst/internal/leakcheck.leakyWorker(0xc0000140e0)
	/root/repo/internal/leakcheck/leakcheck_test.go:88 +0x1c
created by sst/internal/leakcheck.TestDetectsLeak in goroutine 7
	/root/repo/internal/leakcheck/leakcheck_test.go:55 +0x9e`
	got := signature(g)
	want := "sst/internal/leakcheck.leakyWorker|sst/internal/leakcheck.TestDetectsLeak"
	if got != want {
		t.Fatalf("signature = %q, want %q", got, want)
	}
}
