package serve

// The soak gate (`make soak`; short mode inside `make check`): a resident
// server fed a long stream of real simulation jobs must hold its heap and
// goroutine counts flat. This is the end-to-end teeth of the memory
// discipline — per-worker arenas reused across jobs, capped report rings,
// trimmed free lists. Before the arenas, every served point retained
// nothing but allocated ~88 MB; a regression anywhere in that stack shows
// up here as monotone heap growth over the job stream.

import (
	"runtime"
	"testing"
	"time"

	"sst/internal/core"
	"sst/internal/leakcheck"
)

// heapAfterGC reports live heap bytes after the collector has settled —
// two cycles so freshly unreachable spans from the last job are swept.
func heapAfterGC() uint64 {
	runtime.GC()
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// soakHeapSlack is the allowed live-heap growth across the whole soak:
// generous against GC noise, tiny against the ~88 MB/point the pre-arena
// sweep path allocated — a single leaked point's worth of state trips it.
const soakHeapSlack = 8 << 20

// TestServerSoak serves >=100 jobs (>=230 in full mode) through one
// in-process Server and asserts the steady state: live heap flat within
// soakHeapSlack of the post-warmup mark, goroutine count flat, every job
// done, and the shared ArenaPool serving every worker session out of a
// handful of arenas instead of growing with the job count.
func TestServerSoak(t *testing.T) {
	leakcheck.Check(t)
	jobs := 250
	spec := core.JobSpec{
		Kind: "dse",
		Apps: []string{"stream"}, Techs: []string{"ddr3-1333"}, Widths: []int{1, 2},
	}
	if testing.Short() {
		// Still >=100 served jobs — the acceptance floor — on a 1-point grid.
		jobs = 100
		spec.Widths = []int{1}
	}
	s := startServer(t, Config{
		StateDir: t.TempDir(), JobWorkers: 2, PointWorkers: 2, QueueCapacity: 8,
	})

	// run serves n jobs keeping at most four in flight (two running, two
	// queued) so the soak measures steady-state churn, not queue depth.
	run := func(n int) {
		t.Helper()
		for done := 0; done < n; {
			batch := min(4, n-done)
			ids := make([]string, 0, batch)
			for k := 0; k < batch; k++ {
				st, err := s.Submit("soak", spec, 0)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, st.ID)
			}
			for _, id := range ids {
				if st := waitState(t, s, id, StateDone); st.PointsFailed != 0 {
					t.Fatalf("job %s failed points: %+v", id, st)
				}
			}
			done += batch
		}
	}

	// Warm up first: the pool builds its arenas, the runtime sizes its
	// spans, the journal path opens its first files. Steady state starts
	// at the post-warmup heap mark.
	warmup := jobs / 10
	run(warmup)
	heap0 := heapAfterGC()
	goroutines0 := runtime.NumGoroutine()

	run(jobs - warmup)

	heap1 := heapAfterGC()
	growth := int64(heap1) - int64(heap0)
	made, served := s.arenas.Stats()
	t.Logf("soak: %d jobs served; heap %d -> %d B (%+d); arenas made=%d served=%d",
		jobs, heap0, heap1, growth, made, served)
	if growth > soakHeapSlack {
		t.Errorf("live heap grew %d bytes across %d jobs, budget %d — the resident server is retaining per-job state",
			growth, jobs-warmup, soakHeapSlack)
	}

	// The workers idle between jobs; give shutdown-asynchronous goroutines
	// a moment before calling the count a leak (leakcheck guards the end
	// state with stacks either way).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= goroutines0+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines grew across the soak: %d -> %d", goroutines0, runtime.NumGoroutine())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Arena discipline: at most JobWorkers x PointWorkers sessions run at
	// once, so the pool must never need more than that (doubled for slack
	// against transient Get/Put races), while serving every session.
	if maxMade := 2 * 2 * 2; made > maxMade {
		t.Errorf("pool made %d arenas for %d jobs, want <= %d — arenas are not being reused",
			made, jobs, maxMade)
	}
	if served < jobs {
		t.Errorf("pool served %d worker sessions across %d jobs — sweeps are bypassing the arena pool",
			served, jobs)
	}

	rep := s.Report()
	if rep.JobsDone != int64(jobs) || rep.JobsFailed != 0 {
		t.Errorf("report counts %d done %d failed, want %d/0", rep.JobsDone, rep.JobsFailed, jobs)
	}
	if want := int64(jobs * len(spec.Widths)); rep.PointsDone != want {
		t.Errorf("report counts %d points done, want %d", rep.PointsDone, want)
	}
}
