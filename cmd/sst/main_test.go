package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sst/internal/core"
	"sst/internal/par"
)

const testMachine = `{
  "name": "cli-test",
  "node": {
    "cpu": {"kind": "superscalar", "freq": "2GHz", "width": 2},
    "l1": {"size": "32KB", "assoc": 4, "hit_lat": 2},
    "memory": {"preset": "ddr3-1333"}
  },
  "workload": {"kind": "stream", "n": 512, "iters": 1}
}`

func TestRunMachineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, []byte(testMachine), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true, obsFlags{}, "", "10us"); err != nil {
		t.Fatal(err)
	}
	tl := filepath.Join(dir, "timeline.csv")
	if err := run(path, true, obsFlags{format: core.FormatCSV}, tl, "1us"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("timeline empty")
	}
}

func TestRunMachineObsOutputs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, []byte(testMachine), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.json")
	ob := obsFlags{traceOut: trace, metricsOut: metrics, format: core.FormatJSON}
	if err := run(path, false, ob, "", "10us"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	labels := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			labels[ev.Name] = true
		}
	}
	// The acceptance bar: spans attributed to the cpu, the memory system
	// and at least one link must all appear.
	for _, want := range []string{"cpu", "dram", "dram.chan"} {
		found := false
		for l := range labels {
			if l == want || len(l) > len(want) && l[:len(want)] == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no trace span labeled %q (have %v)", want, labels)
		}
	}
	data, err = os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Engine struct {
			Events uint64 `json:"events"`
		} `json:"engine"`
		Links []struct {
			Name string `json:"name"`
			Msgs uint64 `json:"msgs"`
		} `json:"links"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if rep.Engine.Events == 0 {
		t.Error("metrics recorded zero events")
	}
	if len(rep.Links) == 0 {
		t.Error("metrics recorded no links")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent.json", false, obsFlags{}, "", "1us"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunBadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte(`{"name":"x"}`), 0o644)
	if err := run(path, false, obsFlags{}, "", "1us"); err == nil {
		t.Fatal("invalid config accepted")
	}
}

const testSystem = `{
  "name": "cli-sys",
  "topology": {"kind": "torus", "x": 2, "y": 2, "z": 2},
  "network": {"link_bw": 3.2e9, "inject_bw": 3.2e9, "link_lat": "100ns", "router_lat": "50ns"},
  "app": "charon",
  "steps": 2
}`

func TestRunSystemFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(testSystem), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSystem(path, obsFlags{}, 1, par.SyncPairwise); err != nil {
		t.Fatal(err)
	}
	metrics := filepath.Join(dir, "m.json")
	if err := runSystem(path, obsFlags{metricsOut: metrics}, 1, par.SyncPairwise); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(metrics); err != nil {
		t.Fatal(err)
	}
}

func TestRunSystemParallel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(testSystem), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []par.SyncMode{par.SyncGlobal, par.SyncPairwise} {
		if err := runSystem(path, obsFlags{}, 4, mode); err != nil {
			t.Fatalf("sync=%v: %v", mode, err)
		}
	}
	// The parallel run's metrics JSON must carry the runner section.
	metrics := filepath.Join(dir, "mp.json")
	if err := runSystem(path, obsFlags{metricsOut: metrics}, 2, par.SyncPairwise); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"par"`, `"mode": "pairwise"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("parallel metrics missing %s:\n%s", want, data)
		}
	}
	// Tracing is single-engine only.
	if err := runSystem(path, obsFlags{traceOut: filepath.Join(dir, "t.json")}, 2, par.SyncPairwise); err == nil {
		t.Fatal("-trace-out with -par accepted")
	}
}

func TestRunSystemMissing(t *testing.T) {
	if err := runSystem("/nonexistent.json", obsFlags{}, 1, par.SyncPairwise); err == nil {
		t.Fatal("missing system accepted")
	}
}
