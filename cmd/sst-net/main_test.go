package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sst/internal/core"
)

func TestNetStudySmall(t *testing.T) {
	if err := run(8, 2, "1,0.5", core.FormatTable, 0, context.Background(), "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(8, 2, "1", core.FormatCSV, 2, context.Background(), "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestNetStudyObsFiles(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.json")
	if err := run(8, 2, "1,0.5", core.FormatJSON, 2, context.Background(), metrics, trace); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{metrics, trace} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s: invalid JSON: %v", path, err)
		}
	}
}

func TestNetScalingStudy(t *testing.T) {
	if err := runScaling(8, "1,2", "100us", core.FormatTable, context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := runScaling(8, "1,x", "100us", core.FormatTable, context.Background()); err == nil {
		t.Error("bad rank count accepted")
	}
	if err := runScaling(8, "1", "soon", core.FormatTable, context.Background()); err == nil {
		t.Error("bad horizon accepted")
	}
}

func TestNetStudyBadFractions(t *testing.T) {
	if err := run(8, 2, "1,zero", core.FormatTable, 0, context.Background(), "", ""); err == nil {
		t.Error("bad fraction accepted")
	}
	if err := run(8, 2, "2.5", core.FormatTable, 0, context.Background(), "", ""); err == nil {
		t.Error("fraction > 1 accepted")
	}
}
