package noc

import (
	"fmt"

	"sst/internal/sim"
	"sst/internal/stats"
)

// DetailedNetwork is the high-fidelity counterpart to Network: the same
// topologies and NIC API, but with credit-based flow control over bounded
// input buffers (virtual cut-through). Packets occupy real buffer space at
// every hop, transmit only when the downstream buffer has room, and block
// upstream when it does not — so congestion spreads backwards through the
// network (tree saturation, head-of-line blocking), which the fast model's
// unbounded queues cannot express. This is SST's multi-fidelity trade: the
// fast model for breadth, the detailed model when flow control matters.
//
// Channel-dependency restriction: bounded buffers introduce routing
// deadlock on topologies whose channel-dependency graph has cycles under
// their routing function. Mesh dimension-order, fat-tree up/down,
// butterfly, hypercube e-cube and crossbar routing are cycle-free; tori
// close dependency cycles on their wraparound links, so torus channels get
// the classic dateline fix: two virtual channels per link, with packets
// promoted from VC0 to VC1 when they cross a wrap link, breaking the cycle
// (Dally & Seitz).
type DetailedNetwork struct {
	name   string
	engine *sim.Engine
	topo   Topology
	cfg    NetConfig
	// bufBytes is each input buffer's capacity.
	bufBytes int

	links map[[2]int]*dchan
	nics  []*DetailedNIC

	packets   *stats.Counter
	messages  *stats.Counter
	bytes     *stats.Counter
	msgLat    *stats.Histogram
	blockedPs *stats.Counter
	peakBuf   *stats.Gauge
}

// dchan is a directed channel from router `from` to router `to`: the wire
// (serialization via busyUntil, shared by both VCs) plus two virtual
// channels' input buffers at `to` and their credit-wait queues. Non-torus
// topologies only ever use VC0.
type dchan struct {
	from, to  int
	busyUntil sim.Time
	bufUsed   [2]int
	waiting   [2][]*dpacket
}

// dpacket is one in-flight packet.
type dpacket struct {
	src, dst int
	size     int
	msgSize  int
	last     bool
	payload  any
	sentAt   sim.Time
	// at is the router whose input buffer currently holds the packet.
	at int
	// hold is the channel whose buffer the packet occupies (nil while in
	// the source NIC's unbounded injection queue) and holdVC which of its
	// virtual channels.
	hold   *dchan
	holdVC int
	// vc is the packet's current virtual channel: 0 until it crosses the
	// current dimension's torus dateline (wrap link), then 1. It resets
	// to 0 on every dimension change (per-dimension datelines), the
	// classic Dally–Seitz construction: dimension-order routing makes
	// cross-dimension dependencies acyclic, and the dateline breaks the
	// cycle within each ring.
	vc        int
	lastDim   int
	blockedAt sim.Time
}

// NewDetailedNetwork builds the detailed model. bufBytes of 0 defaults to
// two max-size packets per input buffer.
func NewDetailedNetwork(engine *sim.Engine, name string, topo Topology, cfg NetConfig, bufBytes int, scope *stats.Scope) (*DetailedNetwork, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if bufBytes == 0 {
		bufBytes = 2 * cfg.MaxPacketBytes
	}
	if bufBytes < cfg.MaxPacketBytes {
		return nil, fmt.Errorf("noc: buffer %dB smaller than a packet (%dB)", bufBytes, cfg.MaxPacketBytes)
	}
	d := &DetailedNetwork{
		name:     name,
		engine:   engine,
		topo:     topo,
		cfg:      cfg,
		bufBytes: bufBytes,
		links:    make(map[[2]int]*dchan),
	}
	for _, l := range topo.Links() {
		d.links[[2]int{l[0], l[1]}] = &dchan{from: l[0], to: l[1]}
		d.links[[2]int{l[1], l[0]}] = &dchan{from: l[1], to: l[0]}
	}
	d.nics = make([]*DetailedNIC, topo.NumNodes())
	for i := range d.nics {
		d.nics[i] = &DetailedNIC{net: d, node: i}
	}
	if scope == nil {
		scope = stats.NewRegistry().Scope(name)
	}
	d.packets = scope.Counter("packets")
	d.messages = scope.Counter("messages")
	d.bytes = scope.Counter("bytes")
	d.msgLat = scope.Histogram("message_latency_ps")
	d.blockedPs = scope.Counter("credit_blocked_ps")
	d.peakBuf = scope.Gauge("buffer_occupancy")
	return d, nil
}

// Name returns the component name.
func (d *DetailedNetwork) Name() string { return d.name }

// Topology returns the simulated topology.
func (d *DetailedNetwork) Topology() Topology { return d.topo }

// NIC returns node i's interface.
func (d *DetailedNetwork) NIC(i int) *DetailedNIC { return d.nics[i] }

// MessageLatencyMean returns the mean end-to-end latency (ps).
func (d *DetailedNetwork) MessageLatencyMean() float64 { return d.msgLat.Mean() }

// BytesDelivered returns delivered payload bytes.
func (d *DetailedNetwork) BytesDelivered() uint64 { return d.bytes.Count() }

// Messages returns delivered message count.
func (d *DetailedNetwork) Messages() uint64 { return d.messages.Count() }

// CreditBlockedTime returns accumulated packet-time spent blocked on
// credits — the congestion signal the fast model cannot produce.
func (d *DetailedNetwork) CreditBlockedTime() sim.Time {
	return sim.Time(d.blockedPs.Count())
}

// PeakBufferOccupancy returns the high-water mark across input buffers.
func (d *DetailedNetwork) PeakBufferOccupancy() int64 { return d.peakBuf.Peak() }

// tryForward moves packet p onward from router p.at. The packet keeps
// holding its current buffer until it acquires space downstream (virtual
// cut-through with backpressure).
func (d *DetailedNetwork) tryForward(p *dpacket) {
	r := p.at
	nxt := d.topo.Route(r, p.dst)
	if nxt < 0 {
		// Ejection is unbounded: free the buffer and deliver.
		d.release(p)
		d.deliver(p)
		return
	}
	ch := d.links[[2]int{r, nxt}]
	if ch == nil {
		panic(fmt.Sprintf("noc: detailed route %d->%d without a link", r, nxt))
	}
	vc := p.vc
	if dim, wrap := d.hopDim(r, nxt); dim >= 0 {
		if dim != p.lastDim {
			// New dimension: fresh dateline, back to VC0.
			p.lastDim = dim
			vc = 0
		}
		if wrap {
			// Crossing this dimension's dateline: escape VC.
			vc = 1
		}
	}
	if ch.bufUsed[vc]+p.size > d.bufBytes {
		if p.blockedAt == 0 {
			p.blockedAt = d.engine.Now()
		}
		ch.waiting[vc] = append(ch.waiting[vc], p)
		return
	}
	d.transmit(p, ch, vc)
}

// hopDim classifies a torus hop: which dimension it moves in (0/1/2, or
// -1 for non-torus topologies) and whether it is that ring's wraparound
// (dateline) link.
func (d *DetailedNetwork) hopDim(r, nxt int) (dim int, wrap bool) {
	t, ok := d.topo.(*Torus3D)
	if !ok {
		return -1, false
	}
	x1, y1, z1 := t.Coords(r)
	x2, y2, z2 := t.Coords(nxt)
	wrap1 := func(a, b, n int) bool {
		if n < 3 {
			return false // rings of size <=2 have no distinct wrap
		}
		return (a == 0 && b == n-1) || (a == n-1 && b == 0)
	}
	switch {
	case x1 != x2:
		return 0, wrap1(x1, x2, t.X)
	case y1 != y2:
		return 1, wrap1(y1, y2, t.Y)
	default:
		return 2, wrap1(z1, z2, t.Z)
	}
}

// transmit claims downstream buffer space on the given VC, frees the
// packet's current buffer, and schedules arrival at ch.to.
func (d *DetailedNetwork) transmit(p *dpacket, ch *dchan, vc int) {
	now := d.engine.Now()
	if p.blockedAt != 0 {
		d.blockedPs.Add(uint64(now - p.blockedAt))
		p.blockedAt = 0
	}
	ch.bufUsed[vc] += p.size
	d.peakBuf.Set(int64(ch.bufUsed[vc]))
	d.release(p) // cut-through: upstream space frees as we claim downstream
	p.hold = ch
	p.holdVC = vc
	p.vc = vc
	start := now
	if ch.busyUntil > start {
		start = ch.busyUntil
	}
	ser := serialize(p.size, d.cfg.LinkBandwidth)
	ch.busyUntil = start + ser
	arrive := start + ser + d.cfg.LinkLatency + d.cfg.RouterLatency
	d.engine.ScheduleAt(arrive, sim.PrioLink, func(any) {
		p.at = ch.to
		d.tryForward(p)
	}, nil)
}

// release frees the buffer p occupies and hands the freed credits to
// waiters of that virtual channel in FIFO order.
func (d *DetailedNetwork) release(p *dpacket) {
	ch := p.hold
	if ch == nil {
		return
	}
	vc := p.holdVC
	p.hold = nil
	ch.bufUsed[vc] -= p.size
	for len(ch.waiting[vc]) > 0 {
		w := ch.waiting[vc][0]
		if ch.bufUsed[vc]+w.size > d.bufBytes {
			break
		}
		ch.waiting[vc] = ch.waiting[vc][1:]
		d.transmit(w, ch, vc)
	}
}

// deliver completes a packet at its destination.
func (d *DetailedNetwork) deliver(p *dpacket) {
	d.packets.Inc()
	if !p.last {
		return
	}
	d.messages.Inc()
	d.bytes.Add(uint64(p.msgSize))
	d.msgLat.Observe(uint64(d.engine.Now() - p.sentAt))
	nic := d.nics[p.dst]
	if nic.recv != nil {
		nic.recv(p.src, p.msgSize, p.payload)
	}
}

// DetailedNIC mirrors the fast model's NIC API.
type DetailedNIC struct {
	net    *DetailedNetwork
	node   int
	freeAt sim.Time
	recv   func(src, size int, payload any)
}

// Node returns the NIC's node id.
func (nc *DetailedNIC) Node() int { return nc.node }

// SetReceiver installs the message-delivery callback.
func (nc *DetailedNIC) SetReceiver(fn func(src, size int, payload any)) { nc.recv = fn }

// Send mirrors noc.NIC.Send: injection-bandwidth-limited segmentation into
// the fabric. The source queue is unbounded (the standard open-loop
// assumption); bounded buffers begin at the first router.
func (nc *DetailedNIC) Send(dst, size int, payload any, onSent func()) {
	d := nc.net
	now := d.engine.Now()
	if size <= 0 {
		size = 1
	}
	remaining := size
	injectAt := now
	if nc.freeAt > injectAt {
		injectAt = nc.freeAt
	}
	srcRouter := d.topo.RouterOf(nc.node)
	for remaining > 0 {
		pk := remaining
		if pk > d.cfg.MaxPacketBytes {
			pk = d.cfg.MaxPacketBytes
		}
		remaining -= pk
		p := &dpacket{
			src: nc.node, dst: dst, size: pk,
			last: remaining == 0, sentAt: now, msgSize: size,
		}
		if p.last {
			p.payload = payload
		}
		injectAt += serialize(pk, d.cfg.InjectionBandwidth)
		at := injectAt + d.cfg.LinkLatency
		if nc.node == dst {
			d.engine.ScheduleAt(at, sim.PrioLink, func(any) { d.deliver(p) }, nil)
			continue
		}
		d.engine.ScheduleAt(at, sim.PrioLink, func(any) {
			p.at = srcRouter
			d.tryForward(p)
		}, nil)
	}
	nc.freeAt = injectAt
	if onSent != nil {
		d.engine.ScheduleAt(injectAt, sim.PrioLink, func(any) { onSent() }, nil)
	}
}
