// PIM: exploring a novel architecture — the SC'06 poster's headline use
// case.
//
// This example compares two node designs on three workloads:
//
//   - conventional: a 4-wide superscalar core with L1/L2 caches and
//     prefetchers over DDR3 — wins whenever SRAM can capture the working
//     set or streams are predictable.
//   - PIM: sixteen fine-grained hardware threads on a lightweight scalar
//     pipeline placed at the memory with no caches — wins when accesses are
//     irregular and latency must be tolerated rather than avoided.
//
// Run with: go run ./examples/pim
package main

import (
	"fmt"
	"log"
	"os"

	"sst/internal/core"
)

func main() {
	res, err := core.PIMStudy([]string{"gups", "stream", "fea"}, core.Small, core.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res.Table().Render(os.Stdout)
	fmt.Println()
	for _, r := range res.Results {
		verdict := "conventional wins"
		if r.PIMSpeedup() > 1 {
			verdict = "PIM wins"
		}
		fmt.Printf("%-7s %s (%.1fx)\n", r.App+":", verdict, max1(r.PIMSpeedup()))
	}
	fmt.Println("\nshape: PIM tolerates GUPS's dependent random accesses with thread-level")
	fmt.Println("parallelism; the conventional machine's caches and prefetchers dominate")
	fmt.Println("on anything with locality. Simulation lets you find that crossover before")
	fmt.Println("building either machine — the point of the toolkit.")
}

func max1(s float64) float64 {
	if s < 1 && s > 0 {
		return 1 / s
	}
	return s
}
