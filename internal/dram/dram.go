package dram

import (
	"fmt"

	"sst/internal/sim"
	"sst/internal/stats"
)

// request is one in-flight line transfer. Requests are recycled through the
// Memory's free list; ch and dataEnd carry what the completion handler
// needs so one shared handler serves every request without a per-issue
// closure.
type request struct {
	addr    uint64
	write   bool
	done    func()
	arrive  sim.Time
	row     uint64
	bank    int
	ch      *channel
	dataEnd sim.Time
}

// bank tracks one DRAM bank's row-buffer and timing state.
type bank struct {
	openRow  int64 // -1 when precharged/closed
	readyAt  sim.Time
	openedAt sim.Time // last activate, for tRAS enforcement
}

// channel is one independent command/data bus with its own scheduler.
type channel struct {
	id        int
	queue     []*request
	inflight  int
	banks     []bank
	busFreeAt sim.Time
	kickArmed bool

	refreshArmed bool
	lastAccess   sim.Time

	// kickFn/refreshFn are the channel's retry and refresh events, bound
	// once at construction so arming them never allocates.
	kickFn    sim.Handler
	refreshFn sim.Handler
}

// Memory is a multi-channel DRAM subsystem driven by the simulation engine.
// Access is the single entry point; completion callbacks fire when the data
// burst finishes.
type Memory struct {
	name   string
	cfg    Config
	engine *sim.Engine
	chans  []*channel

	lineShift   uint
	lineMask    uint64
	linesPerRow int

	transfer sim.Time

	// freeReqs recycles request structs; completeFn is the shared
	// completion handler (payload: the *request), bound once.
	freeReqs   []*request
	completeFn sim.Handler

	// Statistics.
	reads, writes   *stats.Counter
	rowHits         *stats.Counter
	rowMisses       *stats.Counter
	rowConflicts    *stats.Counter
	refreshes       *stats.Counter
	bytes           *stats.Counter
	latency         *stats.Histogram
	queueOcc        *stats.Accumulator
	dynamicJ        float64
	lastEnergyCheck sim.Time
	backgroundJ     float64
}

// New builds a memory subsystem. The scope may be nil to skip statistics.
func New(engine *sim.Engine, name string, cfg Config, scope *stats.Scope) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Memory{
		name:   name,
		cfg:    cfg,
		engine: engine,
	}
	for s := uint(0); ; s++ {
		if 1<<s == cfg.LineBytes {
			m.lineShift = s
			break
		}
		if 1<<s > cfg.LineBytes {
			return nil, fmt.Errorf("dram %s: line size %d not a power of two", name, cfg.LineBytes)
		}
	}
	m.lineMask = ^uint64(cfg.LineBytes - 1)
	m.linesPerRow = cfg.RowBytes / cfg.LineBytes
	m.transfer = cfg.lineTransferTime()
	m.completeFn = func(p any) { m.complete(p.(*request)) }
	m.chans = make([]*channel, cfg.Channels)
	for i := range m.chans {
		ch := &channel{id: i, banks: make([]bank, cfg.BanksPerChannel)}
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		ch.kickFn = func(any) {
			ch.kickArmed = false
			m.kick(ch)
		}
		ch.refreshFn = func(any) { m.refresh(ch) }
		m.chans[i] = ch
	}
	if scope == nil {
		reg := stats.NewRegistry()
		scope = reg.Scope(name)
	}
	m.reads = scope.Counter("reads")
	m.writes = scope.Counter("writes")
	m.rowHits = scope.Counter("row_hits")
	m.rowMisses = scope.Counter("row_misses")
	m.rowConflicts = scope.Counter("row_conflicts")
	m.refreshes = scope.Counter("refreshes")
	m.bytes = scope.Counter("bytes")
	m.latency = scope.Histogram("latency_ps")
	m.queueOcc = scope.Accumulator("queue_occupancy")
	return m, nil
}

// Name returns the component name.
func (m *Memory) Name() string { return m.name }

// Config returns the memory configuration.
func (m *Memory) Config() Config { return m.cfg }

// map splits a line address into (channel, bank, row).
func (m *Memory) mapAddr(addr uint64) (ch, bk int, row uint64) {
	line := addr >> m.lineShift
	nch := uint64(m.cfg.Channels)
	nbk := uint64(m.cfg.BanksPerChannel)
	lpr := uint64(m.linesPerRow)
	switch m.cfg.Mapping {
	case MapSequential:
		// {channel, bank} change only every full row:
		// row-major fill of one bank at a time.
		ch = int(line / (lpr * nbk) % nch)
		bk = int(line / lpr % nbk)
		row = line / (lpr * nbk * nch)
	default: // MapInterleave
		ch = int(line % nch)
		l2 := line / nch
		bk = int(l2 % nbk)
		row = l2 / nbk / lpr
	}
	return ch, bk, row
}

// Access requests a line-sized transfer at addr. done (which may be nil for
// posted writes) fires when the data burst completes. Accesses larger than
// a line must be split by the caller (the cache always does).
func (m *Memory) Access(addr uint64, write bool, done func()) {
	now := m.engine.Now()
	chIdx, bk, row := m.mapAddr(addr)
	var req *request
	if n := len(m.freeReqs) - 1; n >= 0 {
		req, m.freeReqs[n] = m.freeReqs[n], nil
		m.freeReqs = m.freeReqs[:n]
	} else {
		req = new(request)
	}
	req.addr, req.write, req.done, req.arrive, req.row, req.bank = addr&m.lineMask, write, done, now, row, bk
	ch := m.chans[chIdx]
	if write {
		m.writes.Inc()
	} else {
		m.reads.Inc()
	}
	ch.queue = append(ch.queue, req)
	m.queueOcc.Observe(float64(len(ch.queue)))
	ch.lastAccess = now
	m.armRefresh(ch)
	m.kick(ch)
}

// kick issues as many queued requests as the channel window allows.
func (m *Memory) kick(ch *channel) {
	now := m.engine.Now()
	for ch.inflight < m.cfg.WindowPerChannel && len(ch.queue) > 0 {
		idx := m.pick(ch, now)
		if idx < 0 {
			// Nothing issueable yet: arm a kick at the earliest
			// bank-ready time.
			m.armKick(ch, now)
			return
		}
		req := ch.queue[idx]
		ch.queue = append(ch.queue[:idx], ch.queue[idx+1:]...)
		m.issue(ch, req, now)
	}
}

// pick selects the next request index per the scheduling policy, or -1 if
// no queued request's bank is ready at now.
func (m *Memory) pick(ch *channel, now sim.Time) int {
	if m.cfg.Scheduler == FCFS {
		if ch.banks[ch.queue[0].bank].readyAt <= now {
			return 0
		}
		return -1
	}
	// FR-FCFS: oldest ready row hit, else oldest ready request.
	fallback := -1
	for i, r := range ch.queue {
		b := &ch.banks[r.bank]
		if b.readyAt > now {
			continue
		}
		if b.openRow >= 0 && uint64(b.openRow) == r.row {
			return i
		}
		if fallback < 0 {
			fallback = i
		}
	}
	return fallback
}

// issue commits a request to its bank and schedules completion.
func (m *Memory) issue(ch *channel, req *request, now sim.Time) {
	b := &ch.banks[req.bank]
	start := now
	if b.readyAt > start {
		start = b.readyAt
	}
	var cmdLat sim.Time
	switch {
	case b.openRow >= 0 && uint64(b.openRow) == req.row:
		// Row hit: column access only.
		m.rowHits.Inc()
		cmdLat = m.cfg.cycles(m.cfg.TCAS)
	case b.openRow < 0:
		// Row closed: activate then column access.
		m.rowMisses.Inc()
		cmdLat = m.cfg.cycles(m.cfg.TRCD + m.cfg.TCAS)
		b.openedAt = start
		m.dynamicJ += m.cfg.Energy.ActivateJ
	default:
		// Row conflict: precharge (respecting tRAS), activate, column.
		m.rowConflicts.Inc()
		if minOpen := b.openedAt + m.cfg.cycles(m.cfg.TRAS); start < minOpen {
			start = minOpen
		}
		cmdLat = m.cfg.cycles(m.cfg.TRP + m.cfg.TRCD + m.cfg.TCAS)
		b.openedAt = start + m.cfg.cycles(m.cfg.TRP)
		m.dynamicJ += m.cfg.Energy.ActivateJ
	}
	dataStart := start + cmdLat
	if dataStart < ch.busFreeAt {
		dataStart = ch.busFreeAt
	}
	dataEnd := dataStart + m.transfer
	ch.busFreeAt = dataEnd
	b.openRow = int64(req.row)
	b.readyAt = dataEnd
	ch.inflight++
	m.dynamicJ += m.cfg.Energy.PerByteJ * float64(m.cfg.LineBytes)
	m.bytes.Add(uint64(m.cfg.LineBytes))

	req.ch, req.dataEnd = ch, dataEnd
	m.engine.ScheduleLabeledAt(dataEnd, sim.PrioLink, m.name, m.completeFn, req)
}

// complete finishes one transfer: the request is recycled before its done
// callback runs, so a callback that immediately issues a new access reuses
// the same struct.
func (m *Memory) complete(req *request) {
	ch := req.ch
	ch.inflight--
	m.latency.Observe(uint64(req.dataEnd - req.arrive))
	done := req.done
	req.done, req.ch = nil, nil
	m.freeReqs = append(m.freeReqs, req)
	if done != nil {
		done()
	}
	m.kick(ch)
}

// armKick schedules a retry at the earliest time any queued request's bank
// becomes ready.
func (m *Memory) armKick(ch *channel, now sim.Time) {
	if ch.kickArmed {
		return
	}
	earliest := sim.TimeInfinity
	for _, r := range ch.queue {
		if t := ch.banks[r.bank].readyAt; t < earliest {
			earliest = t
		}
	}
	if earliest == sim.TimeInfinity || earliest <= now {
		// Banks are ready but the window is full; the completion
		// callback will kick us.
		return
	}
	ch.kickArmed = true
	m.engine.ScheduleLabeledAt(earliest, sim.PrioLink, m.name, ch.kickFn, nil)
}

// armRefresh starts the periodic refresh machinery for a channel. Refresh
// self-disarms after a full idle interval so an idle memory doesn't keep
// the event queue alive forever; rows are closed at disarm, which is what
// a real controller's idle power-down does too.
func (m *Memory) armRefresh(ch *channel) {
	if ch.refreshArmed || m.cfg.TREFI == 0 {
		return
	}
	ch.refreshArmed = true
	m.engine.ScheduleLabeled(m.cfg.TREFI, sim.PrioLink, m.name, ch.refreshFn, nil)
}

func (m *Memory) refresh(ch *channel) {
	now := m.engine.Now()
	m.refreshes.Inc()
	m.dynamicJ += m.cfg.Energy.RefreshJ
	dur := m.cfg.cycles(m.cfg.TRFC)
	for i := range ch.banks {
		b := &ch.banks[i]
		b.openRow = -1
		if b.readyAt < now+dur {
			b.readyAt = now + dur
		}
	}
	ch.refreshArmed = false
	if now-ch.lastAccess < m.cfg.TREFI {
		m.armRefresh(ch)
	}
}

// QueueDepth returns the number of queued (not yet issued) requests.
func (m *Memory) QueueDepth() int {
	n := 0
	for _, ch := range m.chans {
		n += len(ch.queue) + ch.inflight
	}
	return n
}

// DynamicEnergyJ returns accumulated dynamic (activate/transfer/refresh)
// energy in joules.
func (m *Memory) DynamicEnergyJ() float64 { return m.dynamicJ }

// EnergyJ returns total energy including background power integrated up to
// the current simulation time.
func (m *Memory) EnergyJ() float64 {
	elapsed := m.engine.Now().Seconds()
	return m.dynamicJ + m.cfg.Energy.BackgroundW*elapsed*float64(m.cfg.Channels)
}

// AvgPowerW returns average power over the simulation so far.
func (m *Memory) AvgPowerW() float64 {
	s := m.engine.Now().Seconds()
	if s == 0 {
		return 0
	}
	return m.EnergyJ() / s
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (m *Memory) RowHitRate() float64 {
	total := m.rowHits.Count() + m.rowMisses.Count() + m.rowConflicts.Count()
	if total == 0 {
		return 0
	}
	return float64(m.rowHits.Count()) / float64(total)
}

// BytesTransferred returns the data volume moved so far.
func (m *Memory) BytesTransferred() uint64 { return m.bytes.Count() }

// AchievedBandwidth returns bytes/s averaged over the run so far.
func (m *Memory) AchievedBandwidth() float64 {
	s := m.engine.Now().Seconds()
	if s == 0 {
		return 0
	}
	return float64(m.bytes.Count()) / s
}
