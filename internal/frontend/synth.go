package frontend

import (
	"fmt"

	"sst/internal/sim"
)

// SynthConfig parameterizes the stochastic front-end: an instruction mix,
// a two-level memory locality model, and a dependence-distance model. This
// is the poster's "statistical" front-end: it reproduces a workload's
// aggregate behavior without its code.
type SynthConfig struct {
	// Mix gives the fraction of each class; they are normalized, so any
	// positive weights work. Branch/Nop may be zero.
	IntFrac    float64
	FloatFrac  float64
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64

	// N is the number of operations to produce.
	N uint64

	// Memory model: a fraction HotFrac of accesses fall in a hot working
	// set of HotBytes; the rest are spread over ColdBytes. Within each
	// region, StrideBytes of 0 means uniform random; otherwise accesses
	// stream with the given stride (a typical HPC unit-stride pattern).
	HotFrac     float64
	HotBytes    uint64
	ColdBytes   uint64
	StrideBytes uint64
	// Base offsets the generated addresses (e.g. per-core partitions).
	Base uint64

	// TakenFrac is the probability a branch is taken.
	TakenFrac float64

	// DepDist is the mean distance (in ops) between an op and the
	// producer of its source registers; small values serialize
	// execution, large values expose ILP. Zero disables dependence
	// generation (all sources register 0).
	DepDist float64

	// Seed makes the stream reproducible.
	Seed uint64
}

// Validate checks the configuration.
func (c *SynthConfig) Validate() error {
	sum := c.IntFrac + c.FloatFrac + c.LoadFrac + c.StoreFrac + c.BranchFrac
	if sum <= 0 {
		return fmt.Errorf("frontend: synthetic mix has no positive weights")
	}
	if c.HotFrac < 0 || c.HotFrac > 1 {
		return fmt.Errorf("frontend: HotFrac %v outside [0,1]", c.HotFrac)
	}
	if (c.LoadFrac > 0 || c.StoreFrac > 0) && c.HotBytes == 0 && c.ColdBytes == 0 {
		return fmt.Errorf("frontend: memory ops requested but no address space configured")
	}
	return nil
}

// SyntheticStream generates a random operation stream per a SynthConfig.
type SyntheticStream struct {
	cfg             SynthConfig
	rng             *sim.RNG
	n               uint64
	cum             [5]float64 // cumulative mix: int, float, load, store, branch
	hotPos, coldPos uint64
	regTick         uint8
}

// NewSynthetic builds a synthetic stream. The configuration is validated.
func NewSynthetic(cfg SynthConfig) (*SyntheticStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &SyntheticStream{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
	w := [5]float64{cfg.IntFrac, cfg.FloatFrac, cfg.LoadFrac, cfg.StoreFrac, cfg.BranchFrac}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	acc := 0.0
	for i, v := range w {
		acc += v / sum
		s.cum[i] = acc
	}
	return s, nil
}

// Next implements Stream.
func (s *SyntheticStream) Next(op *Op) bool {
	if s.n >= s.cfg.N {
		return false
	}
	s.n++
	*op = Op{PC: 0x1000 + s.n*4}
	u := s.rng.Float64()
	switch {
	case u < s.cum[0]:
		op.Class = ClassInt
	case u < s.cum[1]:
		op.Class = ClassFloat
	case u < s.cum[2]:
		op.Class = ClassLoad
		op.Addr, op.Size = s.nextAddr(), 8
	case u < s.cum[3]:
		op.Class = ClassStore
		op.Addr, op.Size = s.nextAddr(), 8
	default:
		op.Class = ClassBranch
		op.Taken = s.rng.Bool(s.cfg.TakenFrac)
	}
	s.assignRegs(op)
	return true
}

// nextAddr draws from the two-level locality model.
func (s *SyntheticStream) nextAddr() uint64 {
	hot := s.rng.Bool(s.cfg.HotFrac) && s.cfg.HotBytes > 0
	region, pos := s.cfg.ColdBytes, &s.coldPos
	if hot {
		region, pos = s.cfg.HotBytes, &s.hotPos
	}
	if region == 0 {
		region, pos = s.cfg.HotBytes, &s.hotPos
	}
	var a uint64
	if s.cfg.StrideBytes == 0 {
		a = s.rng.Uint64n(region)
	} else {
		a = *pos % region
		*pos += s.cfg.StrideBytes
	}
	base := s.cfg.Base
	if !hot {
		base += s.cfg.HotBytes // cold region sits above the hot one
	}
	return base + a
}

// assignRegs synthesizes register dependences: each op's destination cycles
// through r1..r30 and sources point back ~DepDist ops.
func (s *SyntheticStream) assignRegs(op *Op) {
	if s.cfg.DepDist <= 0 {
		return
	}
	s.regTick++
	if s.regTick >= 30 {
		s.regTick = 1
	}
	dst := s.regTick
	back := func() uint8 {
		d := uint64(s.rng.Exp(s.cfg.DepDist)) + 1
		if d > 29 {
			d = 29
		}
		r := int(dst) - int(d)
		for r < 1 {
			r += 29
		}
		return uint8(r)
	}
	switch op.Class {
	case ClassStore:
		op.Src1, op.Src2 = back(), back()
	case ClassBranch:
		op.Src1, op.Src2 = back(), back()
	default:
		op.Dst = dst
		op.Src1, op.Src2 = back(), back()
	}
}

// Mixes returns a SynthConfig resembling a named workload profile. These
// profiles correspond to the application classes in the network/memory
// studies: bandwidth-bound streaming, compute-bound, and latency-bound
// irregular.
func Profile(name string, n uint64, seed uint64) (SynthConfig, error) {
	switch name {
	case "stream":
		// STREAM-like: unit-stride loads/stores over a large array.
		return SynthConfig{
			IntFrac: 0.2, FloatFrac: 0.25, LoadFrac: 0.35, StoreFrac: 0.15, BranchFrac: 0.05,
			N: n, HotFrac: 0, ColdBytes: 64 << 20, StrideBytes: 8,
			TakenFrac: 0.95, DepDist: 8, Seed: seed,
		}, nil
	case "compute":
		// Dense compute: mostly FP with a small hot working set.
		return SynthConfig{
			IntFrac: 0.25, FloatFrac: 0.55, LoadFrac: 0.12, StoreFrac: 0.03, BranchFrac: 0.05,
			N: n, HotFrac: 0.95, HotBytes: 16 << 10, ColdBytes: 8 << 20, StrideBytes: 8,
			TakenFrac: 0.9, DepDist: 4, Seed: seed,
		}, nil
	case "irregular":
		// Pointer-chasing/GUPS-like: random accesses over a huge table.
		return SynthConfig{
			IntFrac: 0.35, FloatFrac: 0.05, LoadFrac: 0.45, StoreFrac: 0.1, BranchFrac: 0.05,
			N: n, HotFrac: 0.05, HotBytes: 32 << 10, ColdBytes: 512 << 20, StrideBytes: 0,
			TakenFrac: 0.5, DepDist: 2, Seed: seed,
		}, nil
	default:
		return SynthConfig{}, fmt.Errorf("frontend: unknown profile %q", name)
	}
}
