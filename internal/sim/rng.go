package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**). Every stochastic component owns its own RNG seeded from
// the machine configuration, so simulations are reproducible regardless of
// component evaluation order and independent of the Go runtime's
// math/rand sequence, which is not guaranteed stable across releases.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded via SplitMix64, which guarantees a
// well-mixed nonzero state for any seed, including zero.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

// Split derives an independent generator; the child stream is decorrelated
// from the parent's future output. Used to hand each sub-component its own
// stream from one top-level seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniform random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be positive.
// Uses Lemire's multiply-shift rejection method.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n(0)")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
