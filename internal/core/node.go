// Package core is gosst's public facade: it assembles complete node and
// system models from Abstract Machine Model configurations, runs them, and
// produces the design-space exploration tables of the SST studies —
// memory-technology and issue-width sweeps with power and cost axes, the
// network injection-bandwidth degradation study, the PIM-vs-conventional
// comparison and the memory-speed sensitivity study.
package core

import (
	"fmt"
	"time"

	"sst/internal/config"
	"sst/internal/cpu"
	"sst/internal/dram"
	"sst/internal/mem"
	"sst/internal/power"
	"sst/internal/sim"
	"sst/internal/stats"
)

// cacheAreaMM2PerKB approximates SRAM array area for the chip cost model.
const cacheAreaMM2PerKB = 0.04

// uncoreAreaMM2 covers I/O, memory controllers and interconnect on a die.
const uncoreAreaMM2 = 25

// NodeModel is a fully wired single-node simulation: cores over an optional
// cache hierarchy (MESI bus when multicore) over DRAM, driven by a
// workload.
type NodeModel struct {
	Cfg     *config.MachineConfig
	Sim     *sim.Simulation
	Reg     *stats.Registry
	Cores   []cpu.Core
	L1s     []*mem.Cache
	L2      *mem.Cache
	Bus     *mem.Bus
	Dir     *mem.Directory
	DRAM    *dram.Memory
	Power   power.CoreParams
	Cost    power.CostParams
	Thermal power.ThermalParams
	Rel     power.ReliabilityParams
	closer  []func()

	// arena, when non-nil, is the sweep worker's PointArena this model's
	// storage was drawn from; Close hands the storage back.
	arena *PointArena
}

// NodeResult summarizes one run for the experiment harnesses.
type NodeResult struct {
	Name    string
	Seconds float64
	Retired uint64
	Flops   uint64
	// IPC is aggregate retired ops per core-cycle across cores.
	IPC float64
	// L1HitRate and L2HitRate are 0 when the level is absent.
	L1HitRate float64
	L2HitRate float64
	// DRAM activity.
	MemBytes      uint64
	MemBandwidth  float64 // achieved bytes/s
	MemRowHitRate float64
	// Energy and cost.
	Budget power.NodeBudget
	// AreaMM2 is the whole die.
	AreaMM2 float64
	// Thermal/reliability roll-up: steady-state junction temperature at
	// the run's average power, and the node failure rate / MTBF at that
	// temperature.
	TempC     float64
	NodeFIT   float64
	MTBFHours float64
	// Run mechanics: engine events dispatched, the pending-queue high-water
	// mark and the host wall time the run took.
	Events      uint64
	PeakQueue   int
	HostSeconds float64
}

// PerfPerWatt returns work-rate per watt (work = 1/Seconds).
func (r *NodeResult) PerfPerWatt() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return r.Budget.PerfPerWatt(1 / r.Seconds)
}

// PerfPerDollar returns work-rate per dollar.
func (r *NodeResult) PerfPerDollar() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return r.Budget.PerfPerDollar(1 / r.Seconds)
}

// BuildNode assembles a node model from a validated machine config.
func BuildNode(cfg *config.MachineConfig) (*NodeModel, error) {
	return BuildNodeArena(cfg, nil)
}

// BuildNodeArena is BuildNode drawing the model's bulk storage — the
// engine's event free list, cache backing arrays and kernel batch buffers —
// from a sweep worker's PointArena. A nil arena behaves exactly like
// BuildNode. Close (deferred by Run) hands the storage back scrubbed;
// simulation results are bit-identical either way.
func BuildNodeArena(cfg *config.MachineConfig, arena *PointArena) (*NodeModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &NodeModel{
		Cfg:     cfg,
		Sim:     sim.New(),
		Reg:     stats.NewRegistry(),
		Power:   power.DefaultCoreParams(),
		Cost:    power.DefaultCostParams(),
		Thermal: power.DefaultThermalParams(),
		Rel:     power.DefaultReliabilityParams(),
		arena:   arena,
	}
	engine := n.Sim.Engine()
	if arena != nil {
		// Lend is a move: the arena is empty until the harvest closer runs,
		// so a point that dies mid-build loses buffers, never shares them.
		arena.Events.Lend(engine)
		n.closer = append(n.closer, func() { arena.Events.Harvest(engine) })
	}

	dramCfg, err := cfg.Node.Mem.ToDRAMConfig()
	if err != nil {
		return nil, err
	}
	n.DRAM, err = dram.New(engine, "dram", dramCfg, n.Reg.Scope("dram"))
	if err != nil {
		return nil, err
	}
	var lowest mem.Device = &mem.DRAMDevice{Mem: n.DRAM}
	// The memory channel between the deepest cache level and DRAM is a real
	// (zero-latency, so timing-neutral) link rather than a direct call:
	// channel traffic becomes attributable in traces, countable by the obs
	// link counters and reachable by fault injection.
	chanA, chanB := n.Sim.Connect("dram.chan", 0)
	lowest = mem.NewChannelDevice(chanA, chanB, lowest)

	coreCfg, err := cfg.Node.CPU.ToCoreConfig("cpu")
	if err != nil {
		return nil, err
	}
	freq := coreCfg.Freq
	clock := n.Sim.Clock(freq)

	// L2 (shared) sits directly above DRAM.
	if cfg.Node.L2 != nil {
		l2cfg, err := cfg.Node.L2.ToCacheConfig("l2", freq)
		if err != nil {
			return nil, err
		}
		n.L2, err = n.newCache(l2cfg, lowest, "l2")
		if err != nil {
			return nil, err
		}
		lowest = n.L2
	}

	cores := cfg.Node.Cores
	// A coherence fabric is needed when several L1s share the level
	// below: a snooping bus (default) or a directory.
	needFabric := cores > 1 && cfg.Node.L1 != nil
	useDir := cfg.Node.Coherence == "directory"
	if needFabric {
		if useDir {
			n.Dir = mem.NewDirectory(engine, "dir", 4*sim.Nanosecond, lowest, n.Reg.Scope("dir"))
		} else {
			n.Bus = mem.NewBus(engine, "bus", 2*sim.Nanosecond, 50e9, lowest, n.Reg.Scope("bus"))
		}
	}

	streams, err := n.buildStreams()
	if err != nil {
		return nil, err
	}

	for i := 0; i < cores; i++ {
		var lower mem.Device = lowest
		if cfg.Node.L1 != nil {
			l1cfg, err := cfg.Node.L1.ToCacheConfig(fmt.Sprintf("l1.%d", i), freq)
			if err != nil {
				return nil, err
			}
			var l1Lower mem.Device = lowest
			var busPort *mem.BusPort
			var dirPort *mem.DirPort
			if needFabric {
				if useDir {
					dirPort = n.Dir.Port(nil)
					l1Lower = dirPort
				} else {
					busPort = n.Bus.Port(nil)
					l1Lower = busPort
				}
			}
			l1, err := n.newCache(l1cfg, l1Lower, fmt.Sprintf("l1.%d", i))
			if err != nil {
				return nil, err
			}
			if busPort != nil {
				busPort.AttachCache(l1)
			}
			if dirPort != nil {
				dirPort.AttachCache(l1)
			}
			n.L1s = append(n.L1s, l1)
			lower = l1
		}
		cc := coreCfg
		cc.Name = fmt.Sprintf("cpu.%d", i)
		scope := n.Reg.Scope(cc.Name)
		var core cpu.Core
		switch cfg.Node.CPU.Kind {
		case "inorder":
			core, err = cpu.NewInOrder(engine, clock, cc, streams[i][0], lower, scope)
		case "superscalar":
			core, err = cpu.NewSuperscalar(engine, clock, cc, streams[i][0], lower, scope)
		case "ooo":
			core, err = cpu.NewOoO(engine, clock, cc, streams[i][0], lower, scope)
		case "threaded":
			core, err = cpu.NewThreaded(engine, clock, cc, streams[i], lower, scope)
		default:
			err = fmt.Errorf("core: unknown cpu kind %q", cfg.Node.CPU.Kind)
		}
		if err != nil {
			return nil, err
		}
		n.Cores = append(n.Cores, core)
		n.Sim.Add(core)
	}
	return n, nil
}

// newCache builds one cache level, drawing the backing array from the
// model's arena (when it has one) and scheduling the return at Close.
func (n *NodeModel) newCache(cfg mem.CacheConfig, lower mem.Device, scope string) (*mem.Cache, error) {
	var pool *mem.LinePool
	if n.arena != nil {
		pool = n.arena.Lines
	}
	c, err := mem.NewCachePool(n.Sim.Engine(), cfg, lower, n.Reg.Scope(scope), pool)
	if err != nil {
		return nil, err
	}
	if pool != nil {
		n.closer = append(n.closer, c.ReleaseLines)
	}
	return c, nil
}

// Close releases kernel-stream goroutines; safe to call repeatedly.
func (n *NodeModel) Close() {
	for _, c := range n.closer {
		c()
	}
	n.closer = nil
}

// Run executes the node to workload completion and gathers the result.
func (n *NodeModel) Run() (*NodeResult, error) {
	defer n.Close()
	engine := n.Sim.Engine()
	remaining := len(n.Cores)
	var endAt sim.Time
	for _, c := range n.Cores {
		c.Start(func() {
			remaining--
			if remaining == 0 {
				endAt = engine.Now()
			}
		})
	}
	hostStart := time.Now()
	engine.RunAll()
	hostSecs := time.Since(hostStart).Seconds()
	if remaining != 0 {
		if engine.Interrupted() {
			return nil, fmt.Errorf("core: %s interrupted: %d cores unfinished at %v: %w",
				n.Cfg.Name, remaining, engine.Now(), sim.ErrInterrupted)
		}
		return nil, fmt.Errorf("core: %s deadlocked: %d cores unfinished at %v",
			n.Cfg.Name, remaining, engine.Now())
	}
	n.Sim.Finish()

	res := &NodeResult{
		Name: n.Cfg.Name, Seconds: endAt.Seconds(),
		Events: engine.Handled(), PeakQueue: engine.PeakPending(),
		HostSeconds: hostSecs,
	}
	var cycles sim.Cycle
	for i, c := range n.Cores {
		res.Retired += c.Retired()
		if cy := c.Cycles(); cy > cycles {
			cycles = cy
		}
		if f := n.Reg.Counter(fmt.Sprintf("cpu.%d.flops", i)); f != nil {
			res.Flops += f.Count()
		}
	}
	if cycles > 0 {
		res.IPC = float64(res.Retired) / float64(cycles)
	}
	res.L1HitRate = n.avgHitRate(n.L1s)
	if n.L2 != nil {
		res.L2HitRate = n.L2.HitRate()
	}
	res.MemBytes = n.DRAM.BytesTransferred()
	res.MemBandwidth = n.DRAM.AchievedBandwidth()
	res.MemRowHitRate = n.DRAM.RowHitRate()

	// Power/cost roll-up.
	act := n.activity(res)
	width := n.Cfg.Node.CPU.Width
	if width <= 0 {
		width = 1
	}
	coreE := n.Power.CoreEnergyJ(width, act) * float64(len(n.Cores))
	res.AreaMM2 = n.dieAreaMM2(width)
	res.Budget = power.NodeBudget{
		CoreEnergyJ: coreE,
		MemEnergyJ:  n.DRAM.EnergyJ(),
		Seconds:     res.Seconds,
		ChipCostUSD: n.Cost.DieCostUSD(res.AreaMM2),
		MemCostUSD:  power.MemoryCostUSD(n.DRAM.Config().DollarsPerGB, n.Cfg.Node.Mem.Capacity()),
	}

	// Thermal and reliability: solve the die's leakage-coupled steady
	// state at the run's dynamic power, then convert temperature to a
	// failure rate.
	if res.Seconds > 0 {
		dynOnly := power.CoreActivity{
			IntOps: act.IntOps, FloatOps: act.FloatOps,
			MemOps: act.MemOps, Branches: act.Branches,
		}
		dynW := n.Power.CoreEnergyJ(width, dynOnly) * float64(len(n.Cores)) / res.Seconds
		leakRefW := n.Power.StaticPowerW(width) * float64(len(n.Cores))
		st := n.Thermal.SteadyState(dynW, leakRefW)
		res.TempC = st.TempC
		res.NodeFIT = n.Rel.FIT(res.AreaMM2, st.TempC, 5)
		res.MTBFHours = power.MTBFHours(res.NodeFIT)
	}
	return res, nil
}

func (n *NodeModel) avgHitRate(cs []*mem.Cache) float64 {
	if len(cs) == 0 {
		return 0
	}
	var hits, total uint64
	for _, c := range cs {
		hits += c.Hits()
		total += c.Hits() + c.Misses()
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// activity extracts a per-core-average operation census from statistics.
func (n *NodeModel) activity(res *NodeResult) power.CoreActivity {
	var loads, stores, branches uint64
	for i := range n.Cores {
		p := fmt.Sprintf("cpu.%d.", i)
		if c := n.Reg.Counter(p + "loads"); c != nil {
			loads += c.Count()
		}
		if c := n.Reg.Counter(p + "stores"); c != nil {
			stores += c.Count()
		}
		if c := n.Reg.Counter(p + "branches"); c != nil {
			branches += c.Count()
		}
	}
	memOps := loads + stores
	ints := res.Retired - res.Flops - memOps - branches
	if res.Retired < res.Flops+memOps+branches {
		ints = 0
	}
	k := float64(len(n.Cores))
	if k == 0 {
		k = 1
	}
	return power.CoreActivity{
		IntOps:   uint64(float64(ints) / k),
		FloatOps: uint64(float64(res.Flops) / k),
		MemOps:   uint64(float64(memOps) / k),
		Branches: uint64(float64(branches) / k),
		Seconds:  res.Seconds,
	}
}

// dieAreaMM2 sums core, cache and uncore area for the cost model.
func (n *NodeModel) dieAreaMM2(width int) float64 {
	area := n.Power.AreaMM2(width) * float64(len(n.Cores))
	var cacheKB int
	for _, c := range n.L1s {
		cacheKB += c.Config().SizeBytes >> 10
	}
	if n.L2 != nil {
		cacheKB += n.L2.Config().SizeBytes >> 10
	}
	return area + float64(cacheKB)*cacheAreaMM2PerKB + uncoreAreaMM2
}
