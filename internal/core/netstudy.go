package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"sst/internal/noc"
	"sst/internal/sim"
	"sst/internal/stats"
	"sst/internal/workload"
)

// NetStudyConfig parameterizes the Fig. 9 injection-bandwidth degradation
// study.
type NetStudyConfig struct {
	// Nodes is the machine size (a 3D-torus-shaped system, like the
	// XT5 testbed).
	Nodes int
	// Fractions are the injection-bandwidth operating points (1, 1/2,
	// 1/4, 1/8 in the study).
	Fractions []float64
	// Steps scales the proxies' timestep counts.
	Steps int
}

// DefaultNetStudy mirrors the proof-of-concept study's shape at a
// simulation-friendly size.
func DefaultNetStudy() NetStudyConfig {
	return NetStudyConfig{
		Nodes:     32,
		Fractions: []float64{1, 0.5, 0.25, 0.125},
		Steps:     6,
	}
}

// netStudyProfiles returns the four application proxies.
func netStudyProfiles() []workload.CommProfile {
	return []workload.CommProfile{
		workload.CTHProfile,
		workload.SAGEProfile,
		workload.XNOBELProfile,
		workload.CharonProfile,
	}
}

// torusFor picks a near-cubic 3D torus for n nodes.
func torusFor(n int) (*noc.Torus3D, error) {
	best := [3]int{n, 1, 1}
	for x := 1; x*x*x <= n*4; x++ {
		if n%x != 0 {
			continue
		}
		rest := n / x
		for y := x; y*y <= rest*2; y++ {
			if rest%y != 0 {
				continue
			}
			z := rest / y
			if x*y*z == n {
				best = [3]int{x, y, z}
			}
		}
	}
	return noc.NewTorus3D(best[0], best[1], best[2])
}

// RunNetPoint executes one (profile, bandwidth fraction) cell and returns
// the simulated runtime plus the network (for power/utilization analysis).
func RunNetPoint(p workload.CommProfile, nodes, steps int, fraction float64) (sim.Time, *noc.Network, error) {
	return RunNetPointCtx(context.Background(), p, nodes, steps, fraction)
}

// RunNetPointCtx is RunNetPoint with cooperative cancellation: an expired
// ctx (sweep cancellation, a per-point deadline) interrupts the cell's
// engine and the run returns an error wrapping sim.ErrInterrupted.
func RunNetPointCtx(ctx context.Context, p workload.CommProfile, nodes, steps int, fraction float64) (sim.Time, *noc.Network, error) {
	topo, err := torusFor(nodes)
	if err != nil {
		return 0, nil, err
	}
	engine := sim.NewEngine()
	if arena := arenaFrom(ctx); arena != nil {
		arena.Events.Lend(engine)
		defer arena.Events.Harvest(engine)
	}
	cfg := noc.DefaultConfig()
	cfg.InjectionBandwidth *= fraction
	net, err := noc.NewNetwork(engine, "net", topo, cfg, nil)
	if err != nil {
		return 0, nil, err
	}
	p.Steps = steps
	app, err := workload.NewApp(engine, p.Name, net, p.Scripts(nodes))
	if err != nil {
		return 0, nil, err
	}
	app.Start(nil)
	stop := context.AfterFunc(ctx, engine.Interrupt)
	engine.RunAll()
	stop()
	if !app.Done() {
		if engine.Interrupted() {
			return 0, nil, fmt.Errorf("core: net study %s interrupted at %v: %w",
				p.Name, engine.Now(), sim.ErrInterrupted)
		}
		return 0, nil, fmt.Errorf("core: net study %s deadlocked", p.Name)
	}
	// Same race as RunMachineCtx: a point that finishes between its
	// deadline expiring and the interrupt landing still counts as timed
	// out; completion under plain cancellation stays a success (drain).
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return 0, nil, fmt.Errorf("core: net study %s exceeded its deadline: %w",
			p.Name, context.DeadlineExceeded)
	}
	return app.Elapsed(), net, nil
}

// runNetGrid fans the profile × fraction cells of the study across the
// sweep worker pool, returning elapsed[profile index][fraction index]. Each
// cell owns a fresh engine, torus and application, so the cells are
// independent; writing by index keeps the grid identical to a sequential
// run at any worker count. With opts.Journal set, finished cells are
// durably journaled (keyed "profile/fraction") and opts.Resume restores
// them instead of re-running; a grid with failed cells returns an error
// wrapping ErrPointFailed.
func runNetGrid(cfg NetStudyConfig, opts SweepOptions) ([][]sim.Time, error) {
	profiles := netStudyProfiles()
	nf := len(cfg.Fractions)
	elapsed := make([][]sim.Time, len(profiles))
	for i := range elapsed {
		elapsed[i] = make([]sim.Time, nf)
	}
	pio := pointIO{
		key: func(i int) string {
			return fmt.Sprintf("%s/%g", profiles[i/nf].Name, cfg.Fractions[i%nf])
		},
		save: func(i int) (json.RawMessage, error) { return json.Marshal(elapsed[i/nf][i%nf]) },
		load: func(i int, raw json.RawMessage) error { return json.Unmarshal(raw, &elapsed[i/nf][i%nf]) },
	}
	errs, err := runPointsJournaled(opts, len(profiles)*nf, pio, func(ctx context.Context, i int) error {
		pi, fi := i/nf, i%nf
		key := netPointKey(profiles[pi].Name, cfg.Nodes, cfg.Steps, cfg.Fractions[fi])
		e, err := cachedTime(opts.Cache, key, func() (sim.Time, error) {
			t, _, err := RunNetPointCtx(ctx, profiles[pi], cfg.Nodes, cfg.Steps, cfg.Fractions[fi])
			return t, err
		})
		if err != nil {
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				// Timed out, not interrupted: see MemTechWidthSweep.
				return fmt.Errorf("core: net study %s/%g timed out after %v: %w (%v)",
					profiles[pi].Name, cfg.Fractions[fi], opts.PointTimeout, context.DeadlineExceeded, err)
			}
			return err
		}
		elapsed[pi][fi] = e
		return nil
	})
	for _, perr := range errs {
		if perr != nil {
			err = fmt.Errorf("%w: %w", ErrPointFailed, err)
			break
		}
	}
	// The partial grid is returned even on error; failed or skipped cells
	// stay zero and the table builders leave those rows out.
	return elapsed, err
}

// NetDegradationResult is the Fig. 9 study's Result: the rendered table
// plus Slowdown[app] = slowdowns in fraction order (completed cells only).
type NetDegradationResult struct {
	TableResult
	Slowdown map[string][]float64
}

// NetDegradationStudy reproduces Fig. 9: for each application proxy,
// runtime at each injection-bandwidth fraction relative to full bandwidth.
// On error the result still carries every completed cell.
func NetDegradationStudy(cfg NetStudyConfig, opts SweepOptions) (*NetDegradationResult, error) {
	t := stats.NewTable(
		fmt.Sprintf("Fig 9: application slowdown vs injection bandwidth (%d-node torus)", cfg.Nodes),
		"app", "bw_fraction", "runtime_ms", "slowdown_vs_full")
	elapsedGrid, err := runNetGrid(cfg, opts)
	slow := map[string][]float64{}
	for pi, p := range netStudyProfiles() {
		full := elapsedGrid[pi][0]
		if full == 0 {
			continue // baseline cell failed: ratios are meaningless
		}
		for i, f := range cfg.Fractions {
			elapsed := elapsedGrid[pi][i]
			if elapsed == 0 {
				continue
			}
			s := float64(elapsed) / float64(full)
			slow[p.Name] = append(slow[p.Name], s)
			t.AddRow(p.Name, f, elapsed.Seconds()*1e3, s)
		}
	}
	// On error the table and map still carry every completed cell.
	return &NetDegradationResult{TableResult: TableResult{Tab: t}, Slowdown: slow}, err
}

// NetPowerResult is the network power study's Result: the rendered table
// plus Best[app] = index into cfg.Fractions of the lowest-energy point.
type NetPowerResult struct {
	TableResult
	Best map[string]int
}

// NetPowerStudy extends the degradation study with the power trade the
// paper draws from it: assuming a system with an equal power split between
// CPU, memory and network at full bandwidth, how does total system ENERGY
// move when the network is down-provisioned? Latency-bound apps save
// energy (same runtime, cheaper network); bandwidth-bound apps lose (the
// runtime increase outweighs the network saving) — "the most energy
// efficient configuration would in fact be the one with full bandwidth."
func NetPowerStudy(cfg NetStudyConfig, opts SweepOptions) (*NetPowerResult, error) {
	t := stats.NewTable(
		"Network power trade-off: system energy vs injection bandwidth (equal CPU/mem/net split at full bw)",
		"app", "bw_fraction", "slowdown", "net_power_frac", "system_power_frac", "system_energy_frac")
	best := map[string]int{}
	elapsedGrid, err := runNetGrid(cfg, opts)
	for pi, p := range netStudyProfiles() {
		full := elapsedGrid[pi][0]
		if full == 0 {
			continue // baseline cell failed or was skipped
		}
		bestEnergy := 0.0
		for i, f := range cfg.Fractions {
			if elapsedGrid[pi][i] == 0 {
				continue
			}
			slowdown := float64(elapsedGrid[pi][i]) / float64(full)
			// Network static power scales with provisioned
			// bandwidth; CPU and memory power are unchanged.
			sysPower := 2.0/3 + f/3
			sysEnergy := sysPower * slowdown
			if _, seen := best[p.Name]; !seen || sysEnergy < bestEnergy {
				bestEnergy = sysEnergy
				best[p.Name] = i
			}
			t.AddRow(p.Name, f, slowdown, f, sysPower, sysEnergy)
		}
	}
	// On error the table and map still carry every completed cell.
	return &NetPowerResult{TableResult: TableResult{Tab: t}, Best: best}, err
}
