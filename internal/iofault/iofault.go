// Package iofault is the host-storage seam under every durable artifact
// the toolkit writes — sweep journals, cache warm-start files, engine
// snapshots and the sweep service's per-job state directory — plus a
// deterministic fault layer and a crash-point exploration harness over
// that seam (in memfs.go and explore.go).
//
// All persistence code writes through the FS interface instead of the os
// package. In production the seam is Disk, a thin veneer over os with one
// addition the os package makes easy to forget: SyncDir, the parent-
// directory fsync without which a rename (or a freshly created file) is
// not guaranteed to survive a crash. In tests the seam is a MemFS, an
// in-memory filesystem that models exactly which bytes and which
// directory entries are durable at every instant, counts every mutating
// operation, and can inject short writes, ENOSPC, fsync errors and
// "crash after operation N" — turning "does this code survive a crash?"
// from a hand-picked scenario into an exhaustive enumeration.
//
// The durability rules the model (and therefore the toolkit) assumes:
//
//   - Bytes reach the disk only at File.Sync. A crash keeps some prefix
//     of each file's written bytes that is at least the fsync'd prefix —
//     anything past the last Sync may vanish.
//   - A created, renamed or removed directory entry reaches the disk
//     only at SyncDir on its parent. A crash may revert any entry change
//     made since the parent's last SyncDir.
//   - Rename is atomic: a crash yields the old binding or the new one,
//     never a mix, never a torn file under the destination name.
//
// WriteFileAtomic is the one blessed way to replace a file under those
// rules: temp file, write, fsync, close, rename, parent-dir fsync.
package iofault

import (
	"io"
	"os"
	"path/filepath"
)

// File is the open-file surface persistence code needs: append/stream
// writes, durability, release. Reads go through FS.ReadFile — every
// artifact in this codebase is small enough to load whole, and keeping
// reads out of File keeps the fault model's write accounting exact.
type File interface {
	io.Writer
	// Sync flushes written bytes to durable storage. After a successful
	// Sync, a crash cannot lose anything written so far (though the file's
	// directory entry still needs its parent's SyncDir to be findable).
	Sync() error
	Close() error
}

// FS is the host-storage seam. Implementations: Disk (the real
// filesystem) and *MemFS (the deterministic in-memory fault model).
type FS interface {
	// Create opens path for writing, truncating any existing file —
	// os.Create semantics.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent —
	// the journal/warm-start tier open mode.
	OpenAppend(path string) (File, error)
	// ReadFile returns the whole file, os.ReadFile semantics (a missing
	// file satisfies errors.Is(err, fs.ErrNotExist)).
	ReadFile(path string) ([]byte, error)
	// ReadDir lists the directory, os.ReadDir semantics.
	ReadDir(path string) ([]os.DirEntry, error)
	// Truncate cuts the named file to size — the torn-tail repair op.
	Truncate(path string, size int64) error
	// Rename atomically rebinds newpath to oldpath's file. Durable only
	// after SyncDir on the parent.
	Rename(oldpath, newpath string) error
	// Remove unlinks a file (not a directory).
	Remove(path string) error
	// RemoveAll removes path and everything under it.
	RemoveAll(path string) error
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string) error
	// SyncDir fsyncs a directory, making its current entries — creations,
	// renames, removals — durable.
	SyncDir(path string) error
}

// Disk is the production FS: the os package plus real directory fsyncs.
var Disk FS = diskFS{}

type diskFS struct{}

func (diskFS) Create(path string) (File, error) { return os.Create(path) }

func (diskFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (diskFS) ReadFile(path string) ([]byte, error)        { return os.ReadFile(path) }
func (diskFS) ReadDir(path string) ([]os.DirEntry, error)  { return os.ReadDir(path) }
func (diskFS) Truncate(path string, size int64) error      { return os.Truncate(path, size) }
func (diskFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (diskFS) Remove(path string) error                    { return os.Remove(path) }
func (diskFS) RemoveAll(path string) error                 { return os.RemoveAll(path) }
func (diskFS) MkdirAll(path string) error                  { return os.MkdirAll(path, 0o755) }

// SyncDir opens the directory and fsyncs it. Platforms whose directory
// handles reject fsync (some network filesystems) report the error; the
// caller decides whether durability is load-bearing there.
func (diskFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic durably replaces path with data: temp file in the same
// directory, write, fsync, close, rename over path, fsync the parent
// directory. A crash at any instant leaves either the old file or the
// complete new one — never a torn file, and (after the final SyncDir)
// never a rename that quietly evaporates. This is the shared writer the
// sweep service's spec/status/result markers and cmd/sst's snapshots
// fold into; the parent-directory fsync is the step their previous
// hand-rolled copies skipped.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	return WriteFileAtomicFunc(fsys, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteFileAtomicFunc is WriteFileAtomic for streamed payloads (snapshot
// codecs write directly): write is handed the temp file's writer.
func WriteFileAtomicFunc(fsys FS, path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
