package core

import (
	"strings"
	"testing"

	"sst/internal/config"
	"sst/internal/frontend"
	"sst/internal/sim"
)

func TestBuildAndRunMinimalNode(t *testing.T) {
	cfg := SweepMachine("stream", "ddr3-1333", 2, Small)
	res, err := RunMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Retired == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.IPC <= 0 || res.IPC > 2.05 {
		t.Errorf("IPC = %v out of range", res.IPC)
	}
	if res.L1HitRate <= 0 {
		t.Error("L1 never hit")
	}
	if res.MemBytes == 0 {
		t.Error("DRAM never touched")
	}
	if res.Budget.AvgPowerW() <= 0 || res.Budget.TotalCostUSD() <= 0 {
		t.Error("power/cost roll-up empty")
	}
	if res.AreaMM2 <= uncoreAreaMM2 {
		t.Error("die area missing cores/caches")
	}
}

func TestNodeWithoutCaches(t *testing.T) {
	cfg := &config.MachineConfig{
		Name: "nocache",
		Node: config.NodeSpec{
			CPU: config.CPUSpec{Kind: "inorder", Freq: "1GHz"},
			Mem: config.MemSpec{Preset: "ddr3-1333"},
		},
		Workload: config.WorkloadSpec{Kind: "stream", N: 256, Iters: 1},
	}
	res, err := RunMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.L1HitRate != 0 {
		t.Error("phantom L1")
	}
	if res.MemBytes == 0 {
		t.Error("no DRAM traffic")
	}
}

func TestNodeMulticoreCoherent(t *testing.T) {
	cfg := SweepMachine("stream", "ddr3-1333", 1, Small)
	cfg.Node.Cores = 4
	n, err := BuildNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.Bus == nil || len(n.L1s) != 4 {
		t.Fatal("multicore hierarchy not built")
	}
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired == 0 {
		t.Fatal("no work retired")
	}
}

func TestThreadedNode(t *testing.T) {
	cfg := PIMMachine("gups", Small)
	res, err := RunMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired == 0 {
		t.Fatal("threaded node retired nothing")
	}
}

func TestWorkloadPartitioning(t *testing.T) {
	if splitDim(16, 8) != 8 {
		t.Errorf("splitDim(16,8) = %d", splitDim(16, 8))
	}
	if splitDim(4, 64) != 2 {
		t.Errorf("splitDim floor broken: %d", splitDim(4, 64))
	}
	if splitCount(100, 8) != 12 {
		t.Errorf("splitCount = %d", splitCount(100, 8))
	}
	if splitCount(2, 8) != 1 {
		t.Errorf("splitCount floor broken: %d", splitCount(2, 8))
	}
}

func TestFig10ShapeSmall(t *testing.T) {
	// The headline Fig. 10 shape at smoke-test size: GDDR5 beats DDR3
	// beats DDR2 on the bandwidth-bound miniapps at width 4.
	grid, err := MemTechWidthSweep(
		[]string{"lulesh"},
		[]string{"ddr2-800", "ddr3-1333", "gddr5-4000"},
		[]int{4}, Small, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ddr2 := grid.Find("lulesh", "ddr2-800", 4).Result.Seconds
	ddr3 := grid.Find("lulesh", "ddr3-1333", 4).Result.Seconds
	gddr5 := grid.Find("lulesh", "gddr5-4000", 4).Result.Seconds
	if !(gddr5 < ddr3 && ddr3 < ddr2) {
		t.Errorf("Fig10 ordering broken: ddr2=%.4g ddr3=%.4g gddr5=%.4g s", ddr2, ddr3, gddr5)
	}
	tab := Fig10Table(grid, []string{"lulesh"}, []string{"ddr2-800", "ddr3-1333", "gddr5-4000"}, []int{4}, "ddr3-1333")
	if tab.NumRows() != 3 {
		t.Errorf("Fig10 table rows = %d", tab.NumRows())
	}
	if !strings.Contains(tab.String(), "gddr5-4000") {
		t.Error("table missing tech column")
	}
}

func TestFig12ShapeSmall(t *testing.T) {
	grid, err := MemTechWidthSweep([]string{"lulesh"}, []string{"ddr3-1333"}, []int{1, 4}, Small, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w1 := grid.Find("lulesh", "ddr3-1333", 1).Result
	w4 := grid.Find("lulesh", "ddr3-1333", 4).Result
	if w4.Seconds >= w1.Seconds {
		t.Errorf("wider core not faster: w1=%.4g w4=%.4g", w1.Seconds, w4.Seconds)
	}
	speedup := w1.Seconds / w4.Seconds
	powerRatio := w4.Budget.AvgPowerW() / w1.Budget.AvgPowerW()
	if powerRatio <= 1 {
		t.Errorf("wider core not hungrier: power ratio %.2f", powerRatio)
	}
	if w4.PerfPerWatt() >= w1.PerfPerWatt() {
		t.Errorf("narrow core should win perf/W: w1=%.4g w4=%.4g (speedup %.2f, power %.2f)",
			w1.PerfPerWatt(), w4.PerfPerWatt(), speedup, powerRatio)
	}
	tab := Fig12Table(grid, []string{"lulesh"}, "ddr3-1333", []int{1, 4})
	if tab.NumRows() != 2 {
		t.Errorf("Fig12 table rows = %d", tab.NumRows())
	}
	_ = Fig11Table(grid, []string{"lulesh"}, []string{"ddr3-1333"}, []int{1, 4})
}

func TestMemSpeedStudySmall(t *testing.T) {
	res, err := MemSpeedStudy([]string{"ddr3-800", "ddr3-1333"}, Small, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rel := res.Rel
	// The solver must slow on slow memory; the FEA phase must barely
	// move.
	if rel["hpccg"]["ddr3-800"] < 1.1 {
		t.Errorf("solver insensitive to memory speed: %.3f", rel["hpccg"]["ddr3-800"])
	}
	if rel["fea"]["ddr3-800"] > 1.05 {
		t.Errorf("FEA phase sensitive to memory speed: %.3f", rel["fea"]["ddr3-800"])
	}
}

func TestPIMStudySmall(t *testing.T) {
	res, err := PIMStudy([]string{"gups", "fea"}, Small, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]PIMStudyResult{}
	for _, r := range res.Results {
		byApp[r.App] = r
	}
	if s := byApp["gups"].PIMSpeedup(); s < 1.2 {
		t.Errorf("PIM speedup on GUPS = %.2f, want > 1.2", s)
	}
	if s := byApp["fea"].PIMSpeedup(); s > 1 {
		t.Errorf("PIM should lose on cache-friendly FEA, got speedup %.2f", s)
	}
}

func TestNetDegradationSmall(t *testing.T) {
	cfg := NetStudyConfig{Nodes: 8, Fractions: []float64{1, 0.125}, Steps: 3}
	res, err := NetDegradationStudy(cfg, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slow := res.Slowdown
	if s := slow["cth"][1]; s < 1.4 {
		t.Errorf("CTH slowdown at 1/8 bw = %.2f, want > 1.4", s)
	}
	if s := slow["charon"][1]; s > 1.15 {
		t.Errorf("Charon slowdown at 1/8 bw = %.2f, want ~1", s)
	}
}

func TestParallelScalingStudyRuns(t *testing.T) {
	// 4 ranks so the chatty pair's tight link pins only ranks 0-1 and the
	// periphery ranks 2-3 see slow-link-only inbound paths; at 2 ranks the
	// tight link couples the only rank pair and pairwise == global by
	// construction.
	res, err := ParallelScalingStudy([]int{1, 4}, 8, 200*sim.Microsecond, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WallSeconds) != 2 || res.Table().NumRows() != 2 {
		t.Fatalf("study incomplete: %v", res.WallSeconds)
	}
	if len(res.WallSecondsGlobal) != 2 || len(res.Windows) != 2 || len(res.WindowsGlobal) != 2 {
		t.Fatalf("sync-mode comparison incomplete: global=%v windows=%v/%v",
			res.WallSecondsGlobal, res.Windows, res.WindowsGlobal)
	}
	// The study itself errors if pairwise dispatches more windows than
	// global; here pin that the counts are non-trivial and that the
	// slow-link periphery lets pairwise run strictly fewer, larger windows.
	if res.Windows[4] == 0 || res.WindowsGlobal[4] == 0 {
		t.Fatalf("no windows dispatched: pairwise=%d global=%d", res.Windows[4], res.WindowsGlobal[4])
	}
	if res.Windows[4] >= res.WindowsGlobal[4] {
		t.Errorf("pairwise dispatched %d windows vs global %d; topology-aware horizons are not engaging",
			res.Windows[4], res.WindowsGlobal[4])
	}
	// The per-mode maps must cover all four sync modes at every rank count
	// (the study errors internally if any mode's event count diverges), and
	// the legacy fields must alias the pairwise/global entries exactly.
	for _, mode := range []string{"global", "pairwise", "speculative", "adaptive"} {
		if len(res.WallSecondsMode[mode]) != 2 || len(res.WindowsMode[mode]) != 2 {
			t.Fatalf("mode %q missing from per-mode maps: %v", mode, res.WallSecondsMode[mode])
		}
	}
	if res.Windows[4] != res.WindowsMode["pairwise"][4] || res.WindowsGlobal[4] != res.WindowsMode["global"][4] {
		t.Errorf("legacy window fields diverge from per-mode maps")
	}
	if res.WindowsMode["speculative"][4] == 0 {
		t.Errorf("speculative cells dispatched no windows")
	}
}

func TestRunMachineErrors(t *testing.T) {
	bad := SweepMachine("lulesh", "ddr3-1333", 2, Small)
	bad.Workload.Kind = "quantum"
	if _, err := RunMachine(bad); err == nil {
		t.Fatal("bogus workload accepted")
	}
	bad2 := SweepMachine("lulesh", "sdram-66", 2, Small)
	if _, err := RunMachine(bad2); err == nil {
		t.Fatal("bogus memory preset accepted")
	}
}

func TestGridFind(t *testing.T) {
	g := &DSEGrid{Points: []DSEPoint{{App: "a", Tech: "t", Width: 2}}}
	if g.Find("a", "t", 2) == nil || g.Find("a", "t", 4) != nil {
		t.Fatal("Find broken")
	}
}

func TestNetPowerStudySmall(t *testing.T) {
	cfg := NetStudyConfig{Nodes: 8, Fractions: []float64{1, 0.5, 0.125}, Steps: 3}
	res, err := NetPowerStudy(cfg, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best
	if res.Table().NumRows() != 12 {
		t.Fatalf("rows = %d", res.Table().NumRows())
	}
	// Latency-bound Charon saves energy by down-provisioning; the
	// bandwidth-bound CTH proxy must prefer full (or near-full) bandwidth.
	if best["charon"] == 0 {
		t.Error("Charon's best energy point should be a reduced-bandwidth one")
	}
	if best["cth"] == len(cfg.Fractions)-1 {
		t.Error("CTH's best energy point should not be the slowest network")
	}
}

func TestDirectoryNodeRuns(t *testing.T) {
	cfg := SweepMachine("stream", "ddr3-1333", 1, Small)
	cfg.Node.Cores = 4
	cfg.Node.Coherence = "directory"
	n, err := BuildNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.Dir == nil || n.Bus != nil {
		t.Fatal("directory fabric not selected")
	}
	res, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired == 0 {
		t.Fatal("no work retired over the directory")
	}
	bad := SweepMachine("stream", "ddr3-1333", 1, Small)
	bad.Node.Coherence = "telepathy"
	if _, err := RunMachine(bad); err == nil {
		t.Fatal("bogus coherence fabric accepted")
	}
}

func TestWeakScalingStudySmall(t *testing.T) {
	res, err := WeakScalingStudy([]int{4, 16}, 3, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eff := res.Efficiency
	// Both lose efficiency at scale; ML (heavier communication) must
	// lose more.
	if eff["cg"][1] >= 1 {
		t.Errorf("CG efficiency at 16 ranks = %.3f, want < 1", eff["cg"][1])
	}
	if eff["ml"][1] >= eff["cg"][1] {
		t.Errorf("ML efficiency (%.3f) should fall below CG (%.3f)", eff["ml"][1], eff["cg"][1])
	}
}

func TestOffsetStreamRelocatesMemoryOnly(t *testing.T) {
	src := &frontend.SliceStream{Ops: []frontend.Op{
		{Class: frontend.ClassLoad, Addr: 100, Size: 8},
		{Class: frontend.ClassInt},
		{Class: frontend.ClassStore, Addr: 200, Size: 8},
	}}
	o := &offsetStream{inner: src, off: 1 << 20}
	var op frontend.Op
	o.Next(&op)
	if op.Addr != 100+1<<20 {
		t.Fatalf("load addr = %d", op.Addr)
	}
	o.Next(&op)
	if op.Addr != 0 {
		t.Fatalf("int op got an address: %d", op.Addr)
	}
	o.Next(&op)
	if op.Addr != 200+1<<20 {
		t.Fatalf("store addr = %d", op.Addr)
	}
	if o.Next(&op) {
		t.Fatal("stream should be dry")
	}
}

func TestMaxOpsTruncatesWorkload(t *testing.T) {
	cfg := SweepMachine("stream", "ddr3-1333", 2, Small)
	full, err := RunMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := SweepMachine("stream", "ddr3-1333", 2, Small)
	cfg2.MaxOps = full.Retired / 4
	short, err := RunMachine(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if short.Retired >= full.Retired/2 {
		t.Fatalf("MaxOps had no effect: %d vs %d", short.Retired, full.Retired)
	}
	if short.Seconds >= full.Seconds {
		t.Fatal("truncated run not shorter")
	}
}
