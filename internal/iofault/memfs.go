package iofault

// MemFS: the deterministic host-storage fault model. It is a small
// in-memory filesystem that tracks, separately, what the process sees
// (the live namespace: every write, rename and mkdir immediately) and
// what the disk guarantees (the durable view: only fsync'd bytes, only
// dir-fsync'd entries). Every mutating operation is numbered, and a
// fault schedule can make operation N fail — a short write followed by
// ENOSPC, an fsync error — or declare a crash after operation N, after
// which every call fails with ErrCrashed and CrashImage materializes
// the filesystem a restarted process would find.

import (
	"fmt"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"sst/internal/fault"
	"sst/internal/sim"
)

// ErrCrashed is returned by every MemFS operation past the scheduled
// crash point: the modeled process is dead, nothing more reaches disk.
var ErrCrashed = fmt.Errorf("iofault: crashed")

// ErrNoSpace is the canned ENOSPC tests schedule with FailOp.
var ErrNoSpace = fmt.Errorf("iofault: no space left on device")

// ErrSyncFailed is the canned fsync failure tests schedule with FailOp.
var ErrSyncFailed = fmt.Errorf("iofault: fsync failed")

// CrashRetention selects which of the legal post-crash states CrashImage
// materializes. The durability rules (package comment) define a space of
// outcomes; these are its corners plus one torn midpoint.
type CrashRetention int

const (
	// DropUnsynced is the adversarial corner: only fsync'd bytes and
	// dir-fsync'd entries survive. Code that recovers from this state
	// recovers from any legal state weaker than "everything flushed".
	DropUnsynced CrashRetention = iota
	// TornTail keeps every live entry but tears each file mid-way through
	// its un-fsync'd tail — the classic kill-mid-append shape.
	TornTail
	// RetainAll is the lucky corner: every write and every entry made it.
	RetainAll
)

// Retentions lists every variant, in the order harnesses iterate them.
var Retentions = []CrashRetention{DropUnsynced, TornTail, RetainAll}

func (r CrashRetention) String() string {
	switch r {
	case DropUnsynced:
		return "drop-unsynced"
	case TornTail:
		return "torn-tail"
	default:
		return "retain-all"
	}
}

// memFile is one inode: open handles and namespace entries share it.
type memFile struct {
	data   []byte
	synced int // durable prefix length (bytes guaranteed after a crash)
}

// MemFS implements FS in memory with explicit durability modeling. Safe
// for concurrent use; the fault schedule is deterministic because op
// numbering is serialized under the same lock as the operations.
type MemFS struct {
	mu   sync.Mutex
	dirs map[string]bool     // live directories ("." is the ever-present root)
	live map[string]*memFile // live namespace: path → inode
	dur  map[string]*memFile // durable namespace: entries whose parent was SyncDir'd
	ddir map[string]bool     // durable directories

	ops        int // mutating operations performed so far
	crashAt    int // crash after this many ops; -1 = never
	failures   map[int]error
	shortWrite *sim.RNG // lengths of the partial write landed before a scheduled write error
}

// NewMemFS returns an empty filesystem with no faults scheduled. seed
// feeds the deterministic short-write stream (how much of a failing
// write still lands); the same seed reproduces the same torn prefixes.
func NewMemFS(seed uint64) *MemFS {
	return &MemFS{
		dirs:       map[string]bool{".": true},
		live:       map[string]*memFile{},
		dur:        map[string]*memFile{},
		ddir:       map[string]bool{".": true},
		crashAt:    -1,
		failures:   map[int]error{},
		shortWrite: sim.NewRNG(fault.StreamSeed(seed, "iofault/short-write")),
	}
}

// CrashAfter schedules a crash: the first n mutating operations succeed,
// every operation after them fails with ErrCrashed. n = 0 crashes before
// anything reaches the filesystem.
func (m *MemFS) CrashAfter(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashAt = n
}

// FailOp schedules mutating operation n (1-based) to fail with err. A
// failing write first lands a seeded prefix of its buffer — a short
// write — so the torn state ENOSPC leaves behind is part of the test. A
// failing sync leaves durability exactly where it was.
func (m *MemFS) FailOp(n int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failures[n] = err
}

// Ops reports how many mutating operations have been performed — the
// domain a crash-point exploration enumerates.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// op accounts one mutating operation and resolves its scheduled fate:
// crashed, failing with a scheduled error, or proceeding. Caller holds mu.
func (m *MemFS) op() error {
	if m.crashAt >= 0 && m.ops >= m.crashAt {
		return ErrCrashed
	}
	m.ops++
	if err, ok := m.failures[m.ops]; ok {
		return err
	}
	return nil
}

// crashed reports whether the modeled process is past its crash point —
// read operations refuse too, the process is gone. Caller holds mu.
func (m *MemFS) crashed() bool { return m.crashAt >= 0 && m.ops >= m.crashAt }

func clean(p string) string {
	p = path.Clean(strings.ReplaceAll(p, "\\", "/"))
	if p == "/" || p == "" {
		return "."
	}
	return strings.TrimPrefix(p, "/")
}

func parent(p string) string { return path.Dir(p) }

func notExist(op, p string) error {
	return &fs.PathError{Op: op, Path: p, Err: fs.ErrNotExist}
}

// Create opens path for writing, truncating any existing file. The new
// (empty) inode replaces the old in the live namespace only; until the
// parent directory is fsync'd, a crash still shows the old binding.
func (m *MemFS) Create(p string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return nil, err
	}
	p = clean(p)
	if !m.dirs[parent(p)] {
		return nil, notExist("create", p)
	}
	f := &memFile{}
	m.live[p] = f
	return &memHandle{fs: m, f: f}, nil
}

// OpenAppend opens path for appending, creating it if absent.
func (m *MemFS) OpenAppend(p string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return nil, err
	}
	p = clean(p)
	if !m.dirs[parent(p)] {
		return nil, notExist("open", p)
	}
	f, ok := m.live[p]
	if !ok {
		f = &memFile{}
		m.live[p] = f
	}
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) ReadFile(p string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed() {
		return nil, ErrCrashed
	}
	f, ok := m.live[clean(p)]
	if !ok {
		return nil, notExist("read", p)
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) ReadDir(p string) ([]os.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed() {
		return nil, ErrCrashed
	}
	p = clean(p)
	if !m.dirs[p] {
		return nil, notExist("readdir", p)
	}
	var out []os.DirEntry
	for d := range m.dirs {
		if d != "." && parent(d) == p {
			out = append(out, memDirEntry{name: path.Base(d), dir: true})
		}
	}
	for f := range m.live {
		if parent(f) == p {
			out = append(out, memDirEntry{name: path.Base(f)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func (m *MemFS) Truncate(p string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return err
	}
	f, ok := m.live[clean(p)]
	if !ok {
		return notExist("truncate", p)
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
	}
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// Rename atomically rebinds newpath. Like the real thing, the new
// binding is volatile until the parent directory is fsync'd: a crash
// before SyncDir may show the old names.
func (m *MemFS) Rename(oldp, newp string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return err
	}
	oldp, newp = clean(oldp), clean(newp)
	f, ok := m.live[oldp]
	if !ok {
		return notExist("rename", oldp)
	}
	if !m.dirs[parent(newp)] {
		return notExist("rename", newp)
	}
	delete(m.live, oldp)
	m.live[newp] = f
	return nil
}

func (m *MemFS) Remove(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return err
	}
	p = clean(p)
	if _, ok := m.live[p]; !ok {
		return notExist("remove", p)
	}
	delete(m.live, p)
	return nil
}

func (m *MemFS) RemoveAll(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return err
	}
	p = clean(p)
	under := func(q string) bool { return q == p || strings.HasPrefix(q, p+"/") }
	for f := range m.live {
		if under(f) {
			delete(m.live, f)
		}
	}
	for d := range m.dirs {
		if d != "." && under(d) {
			delete(m.dirs, d)
		}
	}
	return nil
}

func (m *MemFS) MkdirAll(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return err
	}
	p = clean(p)
	for p != "." && p != "/" {
		m.dirs[p] = true
		p = parent(p)
	}
	return nil
}

// SyncDir makes the directory's current entries durable: files and
// subdirectories gain (or lose, if removed) their crash-surviving
// bindings. File *contents* still obey their own fsync marks.
func (m *MemFS) SyncDir(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.op(); err != nil {
		return err
	}
	p = clean(p)
	if !m.dirs[p] {
		return notExist("syncdir", p)
	}
	for q := range m.dur {
		if parent(q) == p {
			if _, ok := m.live[q]; !ok {
				delete(m.dur, q)
			}
		}
	}
	for q, f := range m.live {
		if parent(q) == p {
			m.dur[q] = f
		}
	}
	for d := range m.ddir {
		if d != "." && parent(d) == p && !m.dirs[d] {
			delete(m.ddir, d)
		}
	}
	for d := range m.dirs {
		if d != "." && parent(d) == p {
			m.ddir[d] = true
		}
	}
	return nil
}

// CrashImage materializes the filesystem a process restarted after the
// crash would find, under the given retention. The image is a fresh,
// fault-free MemFS (deep copies; op counter at zero) so recovery code
// can run against it directly.
func (m *MemFS) CrashImage(r CrashRetention) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := NewMemFS(1)
	dirs, files := m.ddir, m.dur
	if r != DropUnsynced {
		dirs, files = m.dirs, m.live
	}
	for d := range dirs {
		img.dirs[d] = true
		img.ddir[d] = true
	}
	// An entry survives only if every ancestor directory did.
	reachable := func(p string) bool {
		for q := parent(p); q != "."; q = parent(q) {
			if !img.dirs[q] {
				return false
			}
		}
		return true
	}
	for p, f := range files {
		if !reachable(p) {
			continue
		}
		keep := len(f.data)
		switch r {
		case DropUnsynced:
			keep = f.synced
		case TornTail:
			// Tear halfway through the un-fsync'd tail.
			keep = f.synced + (len(f.data)-f.synced+1)/2
		}
		g := &memFile{data: append([]byte(nil), f.data[:keep]...), synced: keep}
		img.live[p] = g
		img.dur[p] = g
	}
	return img
}

// Dump renders every live file for test diagnostics: path, size, durable
// prefix.
func (m *MemFS) Dump() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var paths []string
	for p := range m.live {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		f := m.live[p]
		fmt.Fprintf(&b, "%s: %d bytes (%d durable)\n", p, len(f.data), f.synced)
	}
	return b.String()
}

// memHandle is an open File over one inode.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if err := h.fs.op(); err != nil {
		if err != ErrCrashed && len(p) > 0 {
			// A failing write is a short write: a seeded prefix lands first,
			// so ENOSPC mid-record leaves exactly the torn shape recovery
			// must tolerate. A crash lands nothing — the op never started.
			n := h.fs.shortWrite.Intn(len(p))
			h.f.data = append(h.f.data, p[:n]...)
			return n, err
		}
		return 0, err
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	if err := h.fs.op(); err != nil {
		return err
	}
	h.f.synced = len(h.f.data)
	return nil
}

// Close releases the handle. It is not a durability point: bytes not
// fsync'd stay volatile.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}

// memDirEntry implements os.DirEntry for ReadDir.
type memDirEntry struct {
	name string
	dir  bool
}

func (e memDirEntry) Name() string { return e.name }
func (e memDirEntry) IsDir() bool  { return e.dir }
func (e memDirEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return fs.FileMode(0)
}
func (e memDirEntry) Info() (fs.FileInfo, error) {
	return memFileInfo{name: e.name, dir: e.dir}, nil
}

type memFileInfo struct {
	name string
	dir  bool
}

func (i memFileInfo) Name() string       { return i.name }
func (i memFileInfo) Size() int64        { return 0 }
func (i memFileInfo) Mode() fs.FileMode  { return fs.FileMode(0o644) }
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return i.dir }
func (i memFileInfo) Sys() any           { return nil }
