// Package par is gosst's parallel discrete-event runtime: conservative,
// barrier-synchronized PDES in the Structural Simulation Toolkit mold.
//
// The model graph is partitioned into ranks, each with its own sequential
// sim.Engine running in its own goroutine. Ranks only interact over links,
// and every cross-rank link has a declared nonzero latency, so the minimum
// cross-rank latency is a safe conservative lookahead: all ranks may
// advance through a window of that width without seeing each other's
// events. At each window barrier the runtime exchanges mailboxes, merging
// remote events in (time, source rank, sequence) order so a parallel run is
// bit-for-bit deterministic and independent of goroutine scheduling.
package par

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"sst/internal/sim"
)

// ErrStalled reports that the progress watchdog fired: no rank completed a
// synchronization window within the watchdog period. The wrapping error
// carries per-rank diagnostics (clock, pending events, outbox depth).
var ErrStalled = errors.New("par: runner stalled")

// DefaultWatchdog is the default zero-progress limit. A synchronization
// window that takes longer than this without any rank finishing is treated
// as a stall — a zero-delay event loop, a handler blocked on host I/O, or a
// mis-partitioned model — and Run returns a diagnostic error instead of
// hanging. Models whose windows legitimately run longer should raise it via
// SetWatchdog; SetWatchdog(0) disables the check entirely.
const DefaultWatchdog = 30 * time.Second

// remoteEvent is one payload crossing a rank boundary.
type remoteEvent struct {
	time    sim.Time
	srcRank int
	seq     uint64
	dst     *sim.Port
	payload any
}

// rank is one partition: an engine plus per-destination outboxes.
type rank struct {
	id       int
	sim      *sim.Simulation
	outboxes [][]remoteEvent // indexed by destination rank
	sendSeq  uint64
	handled  uint64
	// Cumulative run metrics, updated only by the coordinator goroutine
	// between windows (never by the rank goroutine), so reading them after
	// Run returns is race-free.
	events      uint64
	idleWindows uint64
	// err captures a panic raised by this rank's event handlers during a
	// window; the coordinator surfaces it after the barrier.
	err error

	// Snapshot fields published by the rank goroutine at each barrier
	// arrival and read by the watchdog for stall diagnostics. Atomics so
	// the coordinator may read them while other ranks still run.
	pubClock   atomic.Int64
	pubPending atomic.Int64
	pubOutbox  atomic.Int64
	pubWindows atomic.Uint64
}

// publish records the rank's post-window state for the stall watchdog.
func (rk *rank) publish() {
	eng := rk.sim.Engine()
	rk.pubClock.Store(int64(eng.Now()))
	rk.pubPending.Store(int64(eng.Pending()))
	depth := 0
	for _, ob := range rk.outboxes {
		depth += len(ob)
	}
	rk.pubOutbox.Store(int64(depth))
	rk.pubWindows.Add(1)
}

// runWindow advances the rank's engine to the horizon, converting handler
// panics into rank errors so one broken component reports instead of
// killing the process.
func (rk *rank) runWindow(horizon sim.Time) {
	defer func() {
		if r := recover(); r != nil {
			rk.err = rankPanicError(rk.id, rk.sim.Engine().Now(), r)
		}
	}()
	if horizon == sim.TimeInfinity {
		rk.handled = rk.sim.Engine().Run(horizon)
	} else {
		rk.handled = rk.sim.Engine().Run(horizon - 1)
	}
}

// rankPanicError formats a recovered handler panic. Handlers wrapped with
// sim.Guard arrive as *sim.PanicError and the message names the component;
// bare panics fall back to the panic value plus the recovery-site stack.
func rankPanicError(id int, now sim.Time, r any) error {
	if pe, ok := r.(*sim.PanicError); ok {
		return fmt.Errorf("par: rank %d at %v: %w\n%s", id, now, pe, pe.Stack)
	}
	return fmt.Errorf("par: rank %d at %v: panic: %v\n%s", id, now, r, debug.Stack())
}

// Runner coordinates the ranks.
type Runner struct {
	ranks       []*rank
	lookahead   sim.Time
	crossLinks  int
	now         sim.Time
	running     bool
	watchdog    time.Duration
	interrupted atomic.Bool
	windows     uint64
}

// NewRunner creates nranks empty partitions.
func NewRunner(nranks int) (*Runner, error) {
	if nranks <= 0 {
		return nil, fmt.Errorf("par: need at least one rank")
	}
	r := &Runner{lookahead: sim.TimeInfinity, watchdog: DefaultWatchdog}
	for i := 0; i < nranks; i++ {
		rk := &rank{id: i, sim: sim.New(), outboxes: make([][]remoteEvent, nranks)}
		r.ranks = append(r.ranks, rk)
	}
	return r, nil
}

// NumRanks returns the partition count.
func (r *Runner) NumRanks() int { return len(r.ranks) }

// Rank returns partition i's simulation container; build that rank's
// components against it.
func (r *Runner) Rank(i int) *sim.Simulation { return r.ranks[i].sim }

// Now returns the global window base time.
func (r *Runner) Now() sim.Time { return r.now }

// SetWatchdog sets the zero-progress limit: if no rank completes a
// synchronization window within d, Run interrupts the rank engines and
// returns an ErrStalled diagnostic instead of hanging. d = 0 disables the
// watchdog. The default is DefaultWatchdog.
func (r *Runner) SetWatchdog(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.watchdog = d
}

// Interrupt asks a running simulation to stop at the next opportunity:
// every rank engine is interrupted and the coordinator returns
// sim.ErrInterrupted after the current window's barrier. Safe to call from
// any goroutine (signal handlers in the CLIs use it).
func (r *Runner) Interrupt() {
	r.interrupted.Store(true)
	for _, rk := range r.ranks {
		rk.sim.Engine().Interrupt()
	}
}

// Lookahead returns the synchronization window (min cross-rank latency).
func (r *Runner) Lookahead() sim.Time {
	if r.crossLinks == 0 {
		return 0
	}
	return r.lookahead
}

// Connect creates a link of the given latency between rankA and rankB,
// returning the port on each side. Same-rank connections are ordinary
// local links; cross-rank connections must have nonzero latency, which
// feeds the runner's lookahead.
func (r *Runner) Connect(name string, latency sim.Time, rankA, rankB int) (*sim.Port, *sim.Port, error) {
	if rankA < 0 || rankA >= len(r.ranks) || rankB < 0 || rankB >= len(r.ranks) {
		return nil, nil, fmt.Errorf("par: link %q connects invalid ranks %d,%d", name, rankA, rankB)
	}
	if rankA == rankB {
		a, b := r.ranks[rankA].sim.Connect(name, latency)
		return a, b, nil
	}
	if latency == 0 {
		return nil, nil, fmt.Errorf("par: cross-rank link %q needs nonzero latency (it is the lookahead)", name)
	}
	// The link object nominally lives on rankA's engine, but delivery is
	// fully intercepted, so the home engine is never used for sends.
	a, b := sim.Connect(r.ranks[rankA].sim.Engine(), name, latency)
	r.crossLinks++
	if latency < r.lookahead {
		r.lookahead = latency
	}
	ra, rb := r.ranks[rankA], r.ranks[rankB]
	a.Link().SetDeliver(func(from *sim.Port, delay sim.Time, payload any) {
		src, dstRank, dstPort := ra, rb.id, b
		if from == b {
			src, dstRank, dstPort = rb, ra.id, a
		}
		src.sendSeq++
		src.outboxes[dstRank] = append(src.outboxes[dstRank], remoteEvent{
			time:    src.sim.Engine().Now() + delay,
			srcRank: src.id,
			seq:     src.sendSeq,
			dst:     dstPort,
			payload: payload,
		})
	})
	return a, b, nil
}

// Run advances the whole model until the given time (or until globally
// idle), returning total events handled. Events scheduled exactly at
// `until` are not processed (windows are half-open), so event counts match
// across rank counts. With one rank Run degenerates to a sequential run
// with no synchronization overhead.
func (r *Runner) Run(until sim.Time) (uint64, error) {
	if len(r.ranks) == 1 && r.crossLinks == 0 {
		rk := r.ranks[0]
		rk.err = nil
		rk.runWindow(until) // half-open: finite horizons run to until-1
		rk.publish()
		n := rk.handled
		rk.events += n
		if n == 0 {
			rk.idleWindows++
		}
		r.windows++
		if rk.err != nil {
			return n, rk.err
		}
		if rk.sim.Engine().Interrupted() || r.interrupted.Load() {
			r.now = rk.sim.Engine().Now()
			return n, fmt.Errorf("par: run interrupted at %v: %w", r.now, sim.ErrInterrupted)
		}
		r.now = until
		if until == sim.TimeInfinity {
			r.now = rk.sim.Engine().Now()
		}
		return n, nil
	}
	if r.crossLinks > 0 && (r.lookahead == 0 || r.lookahead == sim.TimeInfinity) {
		return 0, fmt.Errorf("par: no usable lookahead")
	}
	window := r.lookahead
	if r.crossLinks == 0 {
		// Independent ranks: run each to completion in parallel.
		window = until - r.now
		if until == sim.TimeInfinity {
			window = sim.TimeInfinity - 1 - r.now
		}
	}
	// Persistent workers for this Run call: one goroutine per rank,
	// handed a horizon per window. This keeps per-window cost to a pair
	// of channel operations instead of goroutine churn. Workers publish a
	// state snapshot and announce themselves on the barrier channel after
	// each window; the coordinator counts arrivals (with a watchdog)
	// instead of blocking on an uninterruptible WaitGroup.
	work := make([]chan sim.Time, len(r.ranks))
	barrier := make(chan int, len(r.ranks))
	for i, rk := range r.ranks {
		rk.err = nil
		work[i] = make(chan sim.Time)
		go func(rk *rank, ch <-chan sim.Time) {
			for horizon := range ch {
				rk.runWindow(horizon)
				rk.publish()
				barrier <- rk.id
			}
		}(rk, work[i])
	}
	closed := false
	closeWorkers := func() {
		if !closed {
			closed = true
			for _, ch := range work {
				close(ch)
			}
		}
	}
	defer closeWorkers()

	var total uint64
	for {
		horizon := r.now + window
		if horizon > until || horizon < r.now {
			horizon = until
		}
		// Parallel phase: each rank runs its events strictly below
		// the horizon.
		for i := range r.ranks {
			work[i] <- horizon
		}
		if err := r.waitWindow(barrier, horizon); err != nil {
			return total, err
		}
		// A rank whose handlers panicked has reported via rk.err; stop
		// with every rank's failure rather than continuing a corrupted
		// simulation.
		var rankErrs []error
		for _, rk := range r.ranks {
			if rk.err != nil {
				rankErrs = append(rankErrs, rk.err)
			}
		}
		if len(rankErrs) > 0 {
			return total, errors.Join(rankErrs...)
		}
		if r.interrupted.Load() {
			return total, fmt.Errorf("par: run interrupted at window %v: %w", r.now, sim.ErrInterrupted)
		}
		// Exchange phase: merge mailboxes deterministically.
		moved := 0
		for dst := range r.ranks {
			var in []remoteEvent
			for _, src := range r.ranks {
				if len(src.outboxes[dst]) > 0 {
					in = append(in, src.outboxes[dst]...)
					src.outboxes[dst] = src.outboxes[dst][:0]
				}
			}
			if len(in) == 0 {
				continue
			}
			moved += len(in)
			sort.Slice(in, func(i, j int) bool {
				a, b := in[i], in[j]
				if a.time != b.time {
					return a.time < b.time
				}
				if a.srcRank != b.srcRank {
					return a.srcRank < b.srcRank
				}
				return a.seq < b.seq
			})
			eng := r.ranks[dst].sim.Engine()
			for _, ev := range in {
				ev := ev
				eng.ScheduleAt(ev.time, sim.PrioLink, func(any) { ev.dst.Deliver(ev.payload) }, nil)
			}
		}
		for _, rk := range r.ranks {
			total += rk.handled
			rk.events += rk.handled
			if rk.handled == 0 {
				rk.idleWindows++
			}
		}
		r.windows++
		r.now = horizon
		// Termination: global idle (no pending events anywhere, nothing
		// exchanged) or the requested time reached.
		if r.now >= until {
			break
		}
		if moved == 0 {
			// Nothing in flight: either globally idle (stop) or
			// fast-forward to the next pending event so sparse
			// models don't crawl window by window.
			next := sim.TimeInfinity
			for _, rk := range r.ranks {
				if t := rk.sim.Engine().NextEventTime(); t < next {
					next = t
				}
			}
			if next == sim.TimeInfinity {
				break
			}
			if next > r.now {
				r.now = next
			}
		}
	}
	return total, nil
}

// waitWindow collects one barrier arrival per rank. With a watchdog set, a
// period with no arrivals counts as zero progress: the rank engines are
// interrupted (which unsticks even zero-delay event loops — the engine
// polls its interrupt flag every few events) and, once the surviving ranks
// check in or a grace period expires, a diagnostic ErrStalled is returned.
func (r *Runner) waitWindow(barrier <-chan int, horizon sim.Time) error {
	n := len(r.ranks)
	arrived := make([]bool, n)
	got := 0
	if r.watchdog <= 0 {
		for got < n {
			arrived[<-barrier] = true
			got++
		}
		return nil
	}
	timer := time.NewTimer(r.watchdog)
	defer timer.Stop()
	stalled := false
	for got < n {
		select {
		case id := <-barrier:
			arrived[id] = true
			got++
			if !stalled {
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(r.watchdog)
			}
		case <-timer.C:
			if stalled {
				// Grace period expired: some rank is blocked outside
				// the event loop (host I/O, a channel) and cannot be
				// interrupted. Report with what the ranks last
				// published; the stuck goroutines are abandoned.
				return r.stallError(horizon, arrived)
			}
			stalled = true
			for _, rk := range r.ranks {
				rk.sim.Engine().Interrupt()
			}
			timer.Reset(r.watchdog)
		}
	}
	if stalled {
		// Every rank checked in only after being interrupted: the window
		// made no progress for a full watchdog period — a stall, but one
		// with fully consistent diagnostics.
		return r.stallError(horizon, arrived)
	}
	return nil
}

// stallError builds the zero-progress diagnostic: the window that hung and
// each rank's last-published clock, pending-event count and outbox depth.
func (r *Runner) stallError(horizon sim.Time, arrived []bool) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "no rank completed the window [%v, %v) within %v (lookahead %v)",
		r.now, horizon, r.watchdog, r.Lookahead())
	for _, rk := range r.ranks {
		fmt.Fprintf(&sb, "\n  rank %d: clock=%v pending=%d outbox=%d windows=%d",
			rk.id, sim.Time(rk.pubClock.Load()), rk.pubPending.Load(),
			rk.pubOutbox.Load(), rk.pubWindows.Load())
		if !arrived[rk.id] {
			sb.WriteString(" (did not respond to interrupt; state is from its last barrier)")
		}
	}
	return fmt.Errorf("%w: %s", ErrStalled, sb.String())
}

// RankMetrics is one rank's cumulative view of a parallel run.
type RankMetrics struct {
	// Rank is the partition index.
	Rank int
	// Events is the number of events this rank dispatched across all
	// windows of all Run calls.
	Events uint64
	// Windows counts the synchronization windows the rank completed.
	Windows uint64
	// IdleWindows counts windows in which the rank dispatched nothing —
	// lookahead-limited stalls where the rank spun at a barrier while
	// other ranks had work.
	IdleWindows uint64
	// Clock is the rank engine's clock at its last barrier arrival.
	Clock sim.Time
}

// RunnerMetrics summarizes a parallel run for the observability layer.
type RunnerMetrics struct {
	// Windows is the number of synchronization rounds the coordinator ran.
	Windows uint64
	// Lookahead is the conservative window width (0 with no cross links).
	Lookahead sim.Time
	// Imbalance is max/mean of per-rank event counts: 1.0 is a perfectly
	// balanced partition, larger means some rank dominates the critical
	// path. Zero when no events ran.
	Imbalance float64
	// Ranks holds the per-rank breakdown, indexed by rank.
	Ranks []RankMetrics
}

// Metrics returns the run's synchronization and balance counters. Call it
// after Run returns; it reads coordinator-owned state and must not race a
// running simulation.
func (r *Runner) Metrics() RunnerMetrics {
	m := RunnerMetrics{
		Windows:   r.windows,
		Lookahead: r.Lookahead(),
		Ranks:     make([]RankMetrics, len(r.ranks)),
	}
	var total, max uint64
	for i, rk := range r.ranks {
		m.Ranks[i] = RankMetrics{
			Rank:        rk.id,
			Events:      rk.events,
			Windows:     rk.pubWindows.Load(),
			IdleWindows: rk.idleWindows,
			Clock:       sim.Time(rk.pubClock.Load()),
		}
		total += rk.events
		if rk.events > max {
			max = rk.events
		}
	}
	if total > 0 {
		mean := float64(total) / float64(len(r.ranks))
		m.Imbalance = float64(max) / mean
	}
	return m
}

// RunAll advances until the model is globally idle.
func (r *Runner) RunAll() (uint64, error) { return r.Run(sim.TimeInfinity) }

// Finish runs every rank's component Finish hooks.
func (r *Runner) Finish() {
	for _, rk := range r.ranks {
		rk.sim.Finish()
	}
}
