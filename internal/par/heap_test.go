package par

import (
	"math/rand"
	"sort"
	"testing"

	"sst/internal/sim"
)

// TestRemoteHeapOrder pins the staging heap's one job: popping in exact
// canonical (time, sent, srcRank, seq) order no matter the push order or
// push/pop interleaving. The whole cross-rank determinism story reduces to
// this invariant, so it gets its own randomized check (seeded — failures
// reproduce).
func TestRemoteHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		evs := make([]remoteEvent, n)
		for i := range evs {
			evs[i] = remoteEvent{
				time:    sim.Time(rng.Intn(10)),
				sent:    sim.Time(rng.Intn(10)),
				srcRank: rng.Intn(4),
				seq:     uint64(rng.Intn(100)),
			}
		}
		var h remoteHeap
		for _, ev := range evs {
			h.push(ev)
			if h.minTime() != h[0].time {
				t.Fatal("minTime disagrees with heap root")
			}
		}
		var out []remoteEvent
		for len(h) > 0 {
			out = append(out, h.pop())
		}
		sorted := append([]remoteEvent(nil), evs...)
		sort.SliceStable(sorted, func(i, j int) bool { return remoteLess(&sorted[i], &sorted[j]) })
		for i := range out {
			if out[i] != sorted[i] {
				t.Fatalf("trial %d: pop order diverges at %d: got %+v want %+v",
					trial, i, out[i], sorted[i])
			}
		}
	}
	var empty remoteHeap
	if empty.minTime() != sim.TimeInfinity {
		t.Fatal("empty heap minTime must be TimeInfinity")
	}
}

// TestRemoteHeapInterleaved mixes pushes and pops: every pop must still
// return the minimum of what is currently in the heap.
func TestRemoteHeapInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var h remoteHeap
	live := map[remoteEvent]int{}
	for step := 0; step < 2000; step++ {
		if len(h) == 0 || rng.Intn(3) != 0 {
			ev := remoteEvent{
				time:    sim.Time(rng.Intn(8)),
				sent:    sim.Time(rng.Intn(8)),
				srcRank: rng.Intn(3),
				seq:     uint64(rng.Intn(50)),
			}
			h.push(ev)
			live[ev]++
			continue
		}
		got := h.pop()
		for ev := range live {
			if remoteLess(&ev, &got) {
				t.Fatalf("step %d: popped %+v but %+v is smaller and still staged", step, got, ev)
			}
		}
		if live[got] == 0 {
			t.Fatalf("step %d: popped %+v which was never pushed", step, got)
		}
		live[got]--
		if live[got] == 0 {
			delete(live, got)
		}
	}
}
