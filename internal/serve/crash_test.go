package serve

// Crash consistency for the whole job lifecycle, and the front-door
// hardening that keeps a half-submitted job from ever existing. The
// iofault harness crashes a server after every single storage operation
// — state-dir creation, spec.json's atomic write, every journal append,
// result.csv, status.json — and a fresh server over the wreckage must
// recover to the exact same result bytes an uninterrupted run produces.
// The admission contract under test: a 202 (Submit returning nil) means
// the job survives any crash; a storage failure means nothing was
// admitted at all.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sst/internal/core"
	"sst/internal/iofault"
)

// crashSpec is the 2-point grid the lifecycle exploration runs; one
// worker everywhere keeps the storage-op sequence deterministic.
func crashSpec() core.JobSpec {
	return core.JobSpec{
		Kind: "dse",
		Apps: []string{"stream"}, Techs: []string{"ddr3-1333"},
		Widths: []int{1, 2},
	}
}

func memConfig(m *iofault.MemFS) Config {
	return Config{StateDir: "state", JobWorkers: 1, PointWorkers: 1, FS: m}
}

// runLifecycle is the workload: bring a server up, submit one job, wait
// for it to finish, drain. Returns whether the submission was accepted —
// the moment the durability promise attaches.
func runLifecycle(m *iofault.MemFS) (accepted bool, err error) {
	s, err := New(memConfig(m))
	if err != nil {
		return false, err
	}
	s.Start()
	defer s.Drain(10 * time.Second)
	st, err := s.Submit("t", crashSpec(), 0)
	if err != nil {
		return false, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err = s.Wait(ctx, st.ID)
	return true, err
}

func TestCrashPointsJobLifecycle(t *testing.T) {
	refCSV := directCSV(t, crashSpec())
	var accepted bool
	n, err := iofault.Explore(
		func() (*iofault.MemFS, error) { return iofault.NewMemFS(21), nil },
		func(m *iofault.MemFS) error {
			var err error
			accepted, err = runLifecycle(m)
			return err
		},
		func(cp iofault.CrashPoint) error {
			if cp.WorkloadErr != nil && !errors.Is(cp.WorkloadErr, iofault.ErrCrashed) {
				return fmt.Errorf("crashed lifecycle error is untyped: %v", cp.WorkloadErr)
			}
			// Recovery: a fresh server over the post-crash state directory.
			s, err := New(memConfig(cp.Image))
			if err != nil {
				return fmt.Errorf("recovery server failed to start: %v\n%s", err, cp.Image.Dump())
			}
			s.Start()
			defer s.Drain(10 * time.Second)
			jobs := s.Jobs()
			if accepted && len(jobs) == 0 {
				return fmt.Errorf("accepted job lost in crash (202 was a lie)\n%s", cp.Image.Dump())
			}
			// Whatever survived — the accepted job, or one from a submission
			// the client saw fail (at-least-once is fine; silent loss is
			// not) — must converge to the uninterrupted run's exact bytes.
			for _, j := range jobs {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				st, err := s.Wait(ctx, j.ID)
				cancel()
				if err != nil {
					return fmt.Errorf("recovered job %s never finished: %v", j.ID, err)
				}
				if st.State != StateDone {
					return fmt.Errorf("recovered job %s ended %s: %s\n%s", j.ID, st.State, st.Err, cp.Image.Dump())
				}
				got, err := cp.Image.ReadFile(filepath.Join("state", "jobs", j.ID, "result.csv"))
				if err != nil {
					return fmt.Errorf("recovered job %s has no result.csv: %v", j.ID, err)
				}
				if !bytes.Equal(got, refCSV) {
					return fmt.Errorf("job %s result differs from uninterrupted run\n got: %s\nwant: %s", j.ID, got, refCSV)
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// State tree + spec chain + journal open + 2 records + result.csv +
	// status.json is well over 20 storage ops; fewer means the seam leaks.
	if n < 20 {
		t.Fatalf("explored only %d storage ops for a full job lifecycle", n)
	}
}

// TestSubmitStorageFailureAdmitsNothing: every op of the admission chain
// failing in turn must yield a typed ErrStorage, an empty server, and —
// where the filesystem still allows it — no debris under jobs/.
func TestSubmitStorageFailureAdmitsNothing(t *testing.T) {
	clean := iofault.NewMemFS(23)
	s0, err := New(memConfig(clean))
	if err != nil {
		t.Fatal(err)
	}
	base := clean.Ops()
	if _, err := s0.Submit("t", crashSpec(), 0); err != nil {
		t.Fatal(err)
	}
	chain := clean.Ops() - base // ops Submit's durability chain performs

	for op := 1; op <= chain; op++ {
		m := iofault.NewMemFS(23)
		s, err := New(memConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		m.FailOp(m.Ops()+op, iofault.ErrNoSpace)
		_, err = s.Submit("t", crashSpec(), 0)
		if err == nil {
			// The faulted op was absorbed (e.g. it hit the temp-file
			// cleanup of an already-failed write); an accepted submission
			// must then be fully durable — covered by the harness above.
			continue
		}
		if !errors.Is(err, ErrStorage) {
			t.Fatalf("op %d: submit error is not ErrStorage: %v", op, err)
		}
		if got := s.Jobs(); len(got) != 0 {
			t.Fatalf("op %d: failed submit left a job: %+v", op, got)
		}
		if ents, rerr := m.ReadDir(filepath.Join("state", "jobs")); rerr == nil && len(ents) != 0 {
			var names []string
			for _, e := range ents {
				names = append(names, e.Name())
			}
			t.Fatalf("op %d: failed submit left debris: %v", op, names)
		}
	}
	if chain < 5 {
		t.Fatalf("admission chain is only %d ops; the durability chain is missing steps", chain)
	}
}

// TestHTTPSubmitStorageFailure500: the HTTP face of the same contract —
// a storage failure during admission is a 500, and the job list stays
// empty.
func TestHTTPSubmitStorageFailure500(t *testing.T) {
	m := iofault.NewMemFS(29)
	s, err := New(memConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	m.FailOp(m.Ops()+1, iofault.ErrNoSpace) // first op of the admission chain
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"tenant":"t","spec":{"kind":"dse","apps":["stream"],"techs":["ddr3-1333"],"widths":[1]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if got := s.Jobs(); len(got) != 0 {
		t.Fatalf("500'd submit admitted a job: %+v", got)
	}
}

// TestHTTPSubmitOversizedBody413: a body over the submission cap is cut
// off with 413 and admits nothing.
func TestHTTPSubmitOversizedBody413(t *testing.T) {
	m := iofault.NewMemFS(31)
	s, err := New(memConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	huge := `{"tenant":"` + strings.Repeat("x", maxSubmitBytes+1024) + `"}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	if got := s.Jobs(); len(got) != 0 {
		t.Fatalf("oversized submit admitted a job: %+v", got)
	}
}

// TestHTTPSlowLorisCut: a client that dribbles headers and never finishes
// them is disconnected by ReadHeaderTimeout without tying up the server
// or admitting anything.
func TestHTTPSlowLorisCut(t *testing.T) {
	m := iofault.NewMemFS(37)
	s, err := New(memConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := NewHTTPServer(s.Handler(), 150*time.Millisecond)
	go hs.Serve(ln)
	defer hs.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Headers started, never finished: no terminating blank line.
	if _, err := conn.Write([]byte("POST /v1/jobs HTTP/1.1\r\nHost: sst\r\nContent-Length: 100\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a request whose headers never completed")
	}
	if waited := time.Since(start); waited > 4*time.Second {
		t.Fatalf("connection survived %v; ReadHeaderTimeout did not cut it", waited)
	}
	if got := s.Jobs(); len(got) != 0 {
		t.Fatalf("slow-loris admitted a job: %+v", got)
	}
}
