package core

// Crash-consistency for the resumable-sweep surface, driven by the
// internal/iofault harness: a journaled sweep is crashed after every
// write/sync the journal performs (under every retention the fault model
// distinguishes), then resumed off the post-crash filesystem — and the
// resumed grid must render byte-identical to an uninterrupted run. The
// crashed run itself must fail loudly with ErrJournal, never wedge or
// pretend its records are durable.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sst/internal/iofault"
)

// crashSweepAxes is the small journaled grid every crash-point test
// drives: two design points, single worker, so the journal's operation
// sequence is deterministic.
var crashSweepAxes = struct {
	apps, techs []string
	widths      []int
}{[]string{"stream"}, []string{"ddr3-1333"}, []int{1, 2}}

func crashSweepCSV(t *testing.T, opts SweepOptions) ([]byte, error) {
	t.Helper()
	a := crashSweepAxes
	g, err := MemTechWidthSweep(a.apps, a.techs, a.widths, Small, opts)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if werr := g.WriteCSV(&buf); werr != nil {
		t.Fatal(werr)
	}
	return buf.Bytes(), nil
}

// TestCrashPointsJournaledSweep enumerates every crash point of a
// journaled sweep and requires resume-from-the-wreckage to converge.
func TestCrashPointsJournaledSweep(t *testing.T) {
	ref, err := crashSweepCSV(t, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := iofault.Explore(
		func() (*iofault.MemFS, error) { return iofault.NewMemFS(5), nil },
		func(m *iofault.MemFS) error {
			_, err := crashSweepCSV(t, SweepOptions{Workers: 1, Journal: "sweep.jsonl", FS: m})
			return err
		},
		func(cp iofault.CrashPoint) error {
			// The crashed run must have failed loudly and typed: every
			// journal I/O failure wraps ErrJournal.
			if cp.WorkloadErr == nil {
				return errors.New("crashed sweep reported success")
			}
			if !errors.Is(cp.WorkloadErr, ErrJournal) {
				return errors.New("crashed sweep error does not wrap ErrJournal: " + cp.WorkloadErr.Error())
			}
			// Recovery: resume off the post-crash filesystem. Whatever
			// subset of records survived — none, some, a torn tail — the
			// resumed grid must be byte-identical to the uninterrupted run.
			got, err := crashSweepCSV(t, SweepOptions{
				Workers: 1, Journal: "sweep.jsonl", Resume: true, FS: cp.Image,
			})
			if err != nil {
				return errors.New("resume after crash failed: " + err.Error())
			}
			if !bytes.Equal(got, ref) {
				return errors.New("resumed grid differs from uninterrupted run\n got: " +
					string(got) + "\nwant: " + string(ref) + "\nsurviving files:\n" + cp.Image.Dump())
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// One create + (write, fsync) per record: the two-point sweep must
	// expose at least five crash points, or the harness missed the surface.
	if n < 5 {
		t.Fatalf("explored only %d journal ops, want >= 5", n)
	}
}

// TestCrashPointsJournaledSweepInjectedFaults: non-crash I/O failures —
// a short write followed by ENOSPC, and an fsync error — at every
// journal operation in turn. Each must surface as a typed ErrJournal
// sweep failure (the operator has to fix the disk), and a subsequent
// resume on the same filesystem must still converge byte-identically.
func TestCrashPointsJournaledSweepInjectedFaults(t *testing.T) {
	ref, err := crashSweepCSV(t, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Count the ops of a clean journaled run first.
	clean := iofault.NewMemFS(5)
	if _, err := crashSweepCSV(t, SweepOptions{Workers: 1, Journal: "sweep.jsonl", FS: clean}); err != nil {
		t.Fatal(err)
	}
	for _, inject := range []error{iofault.ErrNoSpace, iofault.ErrSyncFailed} {
		for op := 1; op <= clean.Ops(); op++ {
			m := iofault.NewMemFS(5)
			m.FailOp(op, inject)
			_, err := crashSweepCSV(t, SweepOptions{Workers: 1, Journal: "sweep.jsonl", FS: m})
			if err == nil {
				t.Fatalf("%v at op %d: sweep reported success", inject, op)
			}
			if !errors.Is(err, ErrJournal) {
				t.Fatalf("%v at op %d: sweep error does not wrap ErrJournal: %v", inject, op, err)
			}
			got, err := crashSweepCSV(t, SweepOptions{Workers: 1, Journal: "sweep.jsonl", Resume: true, FS: m})
			if err != nil {
				t.Fatalf("%v at op %d: resume failed: %v", inject, op, err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("%v at op %d: resumed grid differs from reference", inject, op)
			}
		}
	}
}

// TestJournalTornTailEveryByteOffset is the exhaustive version of the
// hand-written torn-tail cases: a real journaled sweep's file is
// truncated at *every* byte offset inside its final record — every
// possible kill-mid-append — and each truncation must resume to a grid
// CSV byte-identical to an uninterrupted run.
func TestJournalTornTailEveryByteOffset(t *testing.T) {
	ref, err := crashSweepCSV(t, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	if _, err := crashSweepCSV(t, SweepOptions{Workers: 1, Journal: full}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.TrimSuffix(string(raw), "\n")
	lastStart := strings.LastIndexByte(body, '\n') + 1 // 0 when single-record
	stride := 1
	if testing.Short() {
		stride = 7
	}
	resumed := 0
	for off := lastStart; off < len(raw); off += stride {
		torn := filepath.Join(dir, "torn.jsonl")
		if err := os.WriteFile(torn, raw[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := crashSweepCSV(t, SweepOptions{Workers: 1, Journal: torn, Resume: true})
		if err != nil {
			t.Fatalf("resume with tail torn at byte %d/%d failed: %v", off, len(raw), err)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("grid resumed from tail torn at byte %d/%d differs from uninterrupted run", off, len(raw))
		}
		resumed++
	}
	if resumed < 10 {
		t.Fatalf("only %d truncation offsets exercised — the final record should be hundreds of bytes", resumed)
	}
}
