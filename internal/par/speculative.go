package par

// Optimistic (Time Warp-style) synchronization over the snapshot codec.
//
// In speculative mode every rank keeps executing past its conservative
// pairwise horizon, and the coordinator checkpoints its engine through the
// existing snapshot codec at each leg boundary. What makes this cheap to
// reason about — and what removes anti-messages entirely — is a held-release
// discipline for cross-rank traffic:
//
//   - Sends stay HELD in the sender's outbox while they are speculative.
//     Only the committed prefix (send time < the sender's base) is ever
//     released into the destination's staging heap, so no other rank can
//     observe state that might be rolled back. There is nothing to cancel,
//     hence no anti-messages.
//   - The commit frontier is conservative in the Chandy–Misra sense: rank
//     j's earliest possible *new* committed effect is bounded by
//     min(live next event, earliest staged arrival, earliest held send),
//     and rank i's horizon is the usual shortest-path reduction over those
//     bounds. Speculation helps precisely because draining local events
//     pushes the live next-event time far ahead, which widens everyone
//     else's horizon; conservative pairwise mode can only crawl one event
//     spacing plus one lookahead per round.
//   - A straggler is a staged arrival below a rank's speculative frontier
//     (it is never below its base — that would break conservation and is
//     checked as an internal invariant). The rank restores the newest
//     checkpoint at or below its base, re-stages everything delivered
//     since that checkpoint, clears its held outboxes, and replays. The
//     staging heap re-delivers the straggler merged with the re-staged
//     events in canonical (time, sent, srcRank, seq) order, so the
//     replayed timeline is exactly what a conservative run would have
//     produced.
//   - Replay regenerates sends the committed prefix already released; the
//     cross-rank intercept drops a send when the engine clock is below the
//     rank's base. The committed prefix replays deterministically — same
//     events, same sends, same sequence numbers (the send counter is
//     restored from the checkpoint) — so the dropped sends are precisely
//     the duplicates.
//
// Checkpoint storage is bounded like the arena caps elsewhere in the tree:
// at most specDepth checkpoints are retained per rank (a rank at the cap
// simply stops speculating past its conservative horizon until commits
// drain a slot), snapshot buffers are pooled and reused, and the
// delivered-event log is pruned whenever the rollback target advances.
//
// Adaptive mode adds a per-rank governor: a rank whose rollback count
// within a policy window crosses a threshold is demoted to its pairwise
// horizon for a cooldown, then re-promoted. Rollbacks depend only on
// simulation content — never on host timing — so demotion decisions, and
// therefore results, stay bit-identical run to run.

import (
	"errors"
	"fmt"

	"sst/internal/sim"
)

const (
	// DefaultSpecLeap is how many multiples of a rank's inbound lookahead
	// one speculative leg may run past its frontier.
	DefaultSpecLeap = 8
	// DefaultSpecDepth is how many engine checkpoints a rank retains; at
	// the cap the rank falls back to conservative legs until commits free
	// a slot, which is what bounds speculative memory.
	DefaultSpecDepth = 4

	// Adaptive-mode demotion policy: adaptThreshold rollbacks within a
	// adaptWindow-round window demote the rank to conservative legs for
	// adaptCooldown rounds. All three count coordinator rounds, which are
	// a pure function of simulation content.
	adaptWindow    = 16
	adaptThreshold = 4
	adaptCooldown  = 64
)

// SetSpecLeap sets how many inbound-lookahead multiples a speculative leg
// may run past the rank's frontier (default DefaultSpecLeap). Larger legs
// amortize more barrier rounds but risk longer replays on a rollback.
func (r *Runner) SetSpecLeap(n int) {
	if n < 1 {
		n = 1
	}
	r.specLeap = n
}

// SetSpecDepth sets how many checkpoints each rank may retain (default
// DefaultSpecDepth). This is the speculative memory cap: a rank at the
// cap executes conservatively until commits drain a slot.
func (r *Runner) SetSpecDepth(n int) {
	if n < 1 {
		n = 1
	}
	r.specDepth = n
}

// specCkpt is one rollback checkpoint: the engine snapshot taken at a leg
// boundary, plus the send counter and handled count needed to replay from
// it. at is the leg target (logical time); the engine clock inside the
// blob rests at the last event at or below it.
type specCkpt struct {
	at      sim.Time
	blob    []byte
	sendSeq uint64
	handled uint64
}

// specState is one rank's per-Run optimistic bookkeeping. Coordinator-owned;
// created at runSpeculative entry and dropped at exit.
type specState struct {
	// frontier is how far the engine has executed, speculatively or not.
	// Invariant: base <= frontier (base = min(horizon, frontier) clamped
	// monotone), and ckpts[0].at <= base, so the rollback target always
	// covers any straggler (arrivals are never below base).
	frontier sim.Time
	// ckpts is the time-ordered checkpoint list; ckpts[0] is the rollback
	// target. Length is capped at Runner.specDepth.
	ckpts []specCkpt
	// log holds every remote event delivered into the engine since
	// ckpts[0].at, in delivery order. A checkpoint at time T contains
	// exactly the deliveries below T (legs deliver strictly below their
	// target), so when the target advances to T the entries below T are
	// pruned, and on a rollback the remainder is pushed back into staging.
	log []remoteEvent
	// pool recycles checkpoint blobs; enc is the reusable snapshot encoder.
	pool [][]byte
	enc  *sim.Encoder
	// Adaptive-governor state, in coordinator rounds.
	winStart     uint64
	winRollbacks int
	demotedUntil uint64
}

// specNextCommit bounds the earliest time this rank could still produce a
// new committed effect: its live engine queue, its staged arrivals, and
// its held (unreleased) sends. Everything else another rank could ever
// receive from it is causally downstream of one of these, at least one
// shortest-path latency away — including replays after a rollback, whose
// divergence starts at a straggler that is itself bounded through its
// sender's own specNextCommit (the standard transitive lookahead argument).
func (rk *rank) specNextCommit() sim.Time {
	next := rk.sim.Engine().NextEventTime()
	if t := rk.staging.minTime(); t < next {
		next = t
	}
	for _, ob := range rk.outboxes {
		// Outboxes are send-time ordered: sends are appended in engine
		// order and cleared on rollback.
		if len(ob) > 0 && ob[0].sent < next {
			next = ob[0].sent
		}
	}
	return next
}

// specCheckpoint snapshots the rank's engine as a rollback point at
// logical time at. The encoder and blob buffers are reused across legs so
// the steady state allocates nothing.
func (r *Runner) specCheckpoint(rk *rank, at sim.Time) error {
	sp := rk.spec
	if sp.enc == nil {
		sp.enc = sim.NewEncoder()
	}
	sp.enc.Reset()
	if err := rk.sim.Engine().Snapshot(sp.enc); err != nil {
		return fmt.Errorf("par: rank %d speculative checkpoint at %v: %w (speculative sync needs a fully checkpointable model)", rk.id, at, err)
	}
	var buf []byte
	if n := len(sp.pool); n > 0 {
		buf, sp.pool[n-1], sp.pool = sp.pool[n-1], nil, sp.pool[:n-1]
	}
	sp.ckpts = append(sp.ckpts, specCkpt{
		at:      at,
		blob:    append(buf[:0], sp.enc.Bytes()...),
		sendSeq: rk.sendSeq,
		handled: rk.sim.Engine().Handled(),
	})
	if n := len(sp.ckpts); n > rk.specPeakCkpts {
		rk.specPeakCkpts = n
	}
	bytes := 0
	for i := range sp.ckpts {
		bytes += len(sp.ckpts[i].blob)
	}
	if bytes > rk.specPeakBytes {
		rk.specPeakBytes = bytes
	}
	return nil
}

// specRecycle returns a checkpoint blob to the buffer pool, which is
// trimmed to the depth cap like the simulation arenas.
func (r *Runner) specRecycle(sp *specState, blob []byte) {
	if blob == nil || len(sp.pool) >= r.specDepth {
		return
	}
	sp.pool = append(sp.pool, blob[:0])
}

// specRelease moves the committed prefix of every outbox — sends with
// sent < base — into the destinations' staging heaps. Only these are ever
// visible to other ranks; speculative sends stay held.
func (r *Runner) specRelease(rk *rank) {
	for dst, ob := range rk.outboxes {
		n := 0
		for n < len(ob) && ob[n].sent < rk.base {
			n++
		}
		if n == 0 {
			continue
		}
		st := &r.ranks[dst].staging
		for i := 0; i < n; i++ {
			st.push(ob[i])
		}
		m := copy(ob, ob[n:])
		for i := m; i < len(ob); i++ {
			ob[i] = remoteEvent{} // release payload/port references
		}
		rk.outboxes[dst] = ob[:m]
	}
}

// specAdvanceCkpts moves the rollback target to the newest checkpoint at
// or below base, recycling the blobs it passes and pruning the
// delivered-event log below the new target (the target's snapshot already
// contains those deliveries). Pruning is tied to target advancement, never
// to base: a rollback may rewind below base, and the log must still cover
// everything delivered since the target.
func (r *Runner) specAdvanceCkpts(rk *rank) {
	sp := rk.spec
	advanced := false
	for len(sp.ckpts) > 1 && sp.ckpts[1].at <= rk.base {
		r.specRecycle(sp, sp.ckpts[0].blob)
		copy(sp.ckpts, sp.ckpts[1:])
		sp.ckpts[len(sp.ckpts)-1] = specCkpt{}
		sp.ckpts = sp.ckpts[:len(sp.ckpts)-1]
		advanced = true
	}
	if !advanced {
		return
	}
	cut := sp.ckpts[0].at
	n := 0
	for _, ev := range sp.log {
		if ev.time >= cut {
			sp.log[n] = ev
			n++
		}
	}
	for i := n; i < len(sp.log); i++ {
		sp.log[i] = remoteEvent{}
	}
	sp.log = sp.log[:n]
}

// specRollback restores the rank to its rollback target after a straggler
// arrival: engine state and send counter come from the checkpoint, held
// outboxes are discarded (replay regenerates them; the intercept drops the
// prefix the committed timeline already released), and everything
// delivered since the checkpoint goes back into staging, where the heap
// merges it with the straggler in canonical order.
func (r *Runner) specRollback(rk *rank) error {
	sp := rk.spec
	c0 := &sp.ckpts[0]
	eng := rk.sim.Engine()
	replayed := eng.Handled() - c0.handled
	if err := eng.Restore(sim.NewDecoder(c0.blob)); err != nil {
		return fmt.Errorf("par: rank %d rollback to %v: %w", rk.id, c0.at, err)
	}
	rk.sendSeq = c0.sendSeq
	for dst, ob := range rk.outboxes {
		for i := range ob {
			ob[i] = remoteEvent{}
		}
		rk.outboxes[dst] = ob[:0]
	}
	for _, ev := range sp.log {
		rk.staging.push(ev)
	}
	for i := range sp.log {
		sp.log[i] = remoteEvent{}
	}
	sp.log = sp.log[:0]
	for i := 1; i < len(sp.ckpts); i++ {
		r.specRecycle(sp, sp.ckpts[i].blob)
		sp.ckpts[i] = specCkpt{}
	}
	sp.ckpts = sp.ckpts[:1]
	sp.frontier = c0.at
	sp.winRollbacks++
	rk.rollbacks++
	rk.replayed += replayed
	return nil
}

// specDeliver schedules every staged arrival below the rank's leg target,
// recording each in the delivered log so a rollback can re-stage it. After
// the rollback phase every remaining staged event is at or above the
// frontier, and the engine clock is strictly below it, so ScheduleAt can
// never be asked to schedule into the past.
func (rk *rank) specDeliver() {
	eng := rk.sim.Engine()
	sp := rk.spec
	for len(rk.staging) > 0 && rk.staging[0].time < rk.target {
		ev := rk.staging.pop()
		sp.log = append(sp.log, ev)
		if len(sp.log) > rk.specPeakLog {
			rk.specPeakLog = len(sp.log)
		}
		eng.ScheduleAt(ev.time, sim.PrioLink, func(any) { ev.dst.Deliver(ev.payload) }, nil)
	}
}

// specTarget picks rank i's leg target for this round: the conservative
// horizon when the rank is demoted (adaptive governor) or at its
// checkpoint cap, otherwise up to specLeap inbound lookaheads past its
// frontier. Always clamped to until so Run(until) ends with every frontier
// committed (which is what lets Runner.Snapshot between Run calls work
// unchanged in speculative mode).
func (r *Runner) specTarget(rk *rank, la [][]sim.Time, round uint64, until sim.Time) sim.Time {
	sp := rk.spec
	h := rk.horizon
	if r.mode == SyncAdaptive {
		if round >= sp.demotedUntil && sp.demotedUntil != 0 {
			sp.demotedUntil = 0
			sp.winStart, sp.winRollbacks = round, 0
			rk.promotions++
		}
		if sp.demotedUntil != 0 {
			return h
		}
		if round-sp.winStart >= adaptWindow {
			sp.winStart, sp.winRollbacks = round, 0
		}
		if sp.winRollbacks >= adaptThreshold {
			sp.demotedUntil = round + adaptCooldown
			rk.fallbacks++
			return h
		}
	}
	if len(sp.ckpts) >= r.specDepth {
		return h
	}
	lain := r.rankLookahead(la, rk.id)
	if lain == sim.TimeInfinity {
		// Nothing can reach this rank; its horizon is already unconstrained.
		return h
	}
	t := sp.frontier + sim.Time(r.specLeap)*lain
	if t < sp.frontier { // overflow
		t = sim.TimeInfinity
	}
	if t < h {
		t = h
	}
	if t > until {
		t = until
	}
	return t
}

// runSpeculative is the optimistic counterpart of the conservative loop in
// Run. Round structure:
//
//  1. consistent cut: per-rank commit bounds (specNextCommit) and pairwise
//     horizons derived from them;
//  2. commit: advance each base to min(horizon, frontier), release the
//     held send prefix below it, advance rollback targets, prune logs;
//  3. rollback: any rank with a staged arrival below its frontier restores
//     its target checkpoint and re-stages its delivered log;
//  4. classify and dispatch: ranks with work below their leg target run a
//     leg on the worker goroutines (delivering covered staged arrivals
//     first); idle ranks extend their frontier to the conservative horizon
//     for free;
//  5. checkpoint: each dispatched rank snapshots at its new frontier if a
//     slot is free.
//
// The loop ends when every base reaches until.
func (r *Runner) runSpeculative(until sim.Time) (uint64, error) {
	if !r.SnapshotsEnabled() {
		return 0, fmt.Errorf("par: %s sync requires EnableSnapshots before the model is built (rollback needs a checkpointable model)", r.mode)
	}
	la := r.lookaheadMatrix()
	evStart := make([]uint64, len(r.ranks))
	total := func() uint64 {
		var n uint64
		for i, rk := range r.ranks {
			n += rk.sim.Engine().Handled() - evStart[i]
		}
		return n
	}
	for i, rk := range r.ranks {
		rk.err = nil
		rk.specOn = true
		evStart[i] = rk.sim.Engine().Handled()
		rk.spec = &specState{frontier: rk.base}
	}
	defer func() {
		for _, rk := range r.ranks {
			rk.spec = nil
			rk.specOn = false
		}
	}()
	// The initial checkpoint doubles as the model-checkpointability probe:
	// a model with untracked pending events fails here, before any
	// speculation, with a clear error.
	for _, rk := range r.ranks {
		if err := r.specCheckpoint(rk, rk.base); err != nil {
			return 0, err
		}
	}

	work := make([]chan sim.Time, len(r.ranks))
	barrier := make(chan int, len(r.ranks))
	for i, rk := range r.ranks {
		work[i] = make(chan sim.Time)
		go func(rk *rank, ch <-chan sim.Time) {
			for horizon := range ch {
				rk.runWindow(horizon)
				rk.publish()
				barrier <- rk.id
			}
		}(rk, work[i])
	}
	closed := false
	closeWorkers := func() {
		if !closed {
			closed = true
			for _, ch := range work {
				close(ch)
			}
		}
	}
	defer closeWorkers()

	active := make([]*rank, 0, len(r.ranks))
	nw := make([]sim.Time, len(r.ranks))
	var round uint64
	for {
		round++
		if r.interrupted.Load() {
			return total(), fmt.Errorf("par: run interrupted at window %v: %w", r.now, sim.ErrInterrupted)
		}
		// Phase 1: consistent cut (all workers parked between rounds).
		for i, rk := range r.ranks {
			nw[i] = rk.specNextCommit()
		}
		for i := range r.ranks {
			r.ranks[i].horizon = r.horizonFor(i, la, nw, until)
		}
		// Phase 2: commit.
		progress := false
		for _, rk := range r.ranks {
			nb := rk.spec.frontier
			if rk.horizon < nb {
				nb = rk.horizon
			}
			if nb > rk.base {
				rk.base = nb
				progress = true
				r.specRelease(rk)
				r.specAdvanceCkpts(rk)
			}
		}
		done := true
		min := sim.TimeInfinity
		for _, rk := range r.ranks {
			if rk.base < until {
				done = false
			}
			if rk.base < min {
				min = rk.base
			}
		}
		if min > r.now && min != sim.TimeInfinity {
			r.now = min
		}
		if done {
			if until == sim.TimeInfinity {
				// Globally idle: rest the clock at the furthest rank.
				for _, rk := range r.ranks {
					if c := rk.sim.Engine().Now(); c > r.now {
						r.now = c
					}
				}
			} else if r.now < until {
				r.now = until
			}
			break
		}
		// Phase 3: rollbacks. A staged arrival below the frontier means
		// speculation overshot; below base would mean conservation itself
		// broke, which is an internal invariant violation.
		for _, rk := range r.ranks {
			if t := rk.staging.minTime(); t < rk.spec.frontier {
				if t < rk.base {
					return total(), fmt.Errorf("par: internal: rank %d arrival at %v below committed base %v", rk.id, t, rk.base)
				}
				if err := r.specRollback(rk); err != nil {
					return total(), err
				}
				progress = true
			}
		}
		// Phase 4: classify and dispatch.
		active = active[:0]
		for _, rk := range r.ranks {
			if rk.base >= until {
				continue
			}
			t := r.specTarget(rk, la, round, until)
			if rk.nextWork() < t {
				rk.target = t
				active = append(active, rk)
				continue
			}
			if rk.horizon > rk.spec.frontier {
				rk.spec.frontier = rk.horizon
				rk.idleWindows++
				rk.skipped++
				progress = true
			}
		}
		if len(active) == 0 {
			if !progress {
				return total(), fmt.Errorf("par: internal: speculative coordinator made no progress at %v", r.now)
			}
			r.fastForwards++
			continue
		}
		for _, rk := range active {
			rk.specDeliver()
			rk.err = nil
		}
		for _, rk := range active {
			work[rk.id] <- rk.target
		}
		if err := r.waitWindow(barrier, active); err != nil {
			return total(), err
		}
		var rankErrs []error
		for _, rk := range active {
			if rk.err != nil {
				rankErrs = append(rankErrs, rk.err)
			}
		}
		if len(rankErrs) > 0 {
			return total(), errors.Join(rankErrs...)
		}
		if r.interrupted.Load() {
			return total(), fmt.Errorf("par: run interrupted at window %v: %w", r.now, sim.ErrInterrupted)
		}
		// Phase 5: frontier + checkpoint.
		for _, rk := range active {
			rk.spec.frontier = rk.target
			if rk.handled == 0 {
				rk.idleWindows++
			}
			if rk.target != sim.TimeInfinity && len(rk.spec.ckpts) < r.specDepth {
				if err := r.specCheckpoint(rk, rk.target); err != nil {
					return total(), err
				}
			}
		}
		r.windows++
	}
	n := total()
	for i, rk := range r.ranks {
		rk.events += rk.sim.Engine().Handled() - evStart[i]
	}
	return n, nil
}
