package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sst/internal/core"
	"sst/internal/obs"
)

func TestDSESmallSweep(t *testing.T) {
	if err := run("stream", "ddr3-1333,gddr5-4000", "1,2", "small", "all", core.FormatTable, core.SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := run("stream", "ddr3-1333", "1", "small", "fig10", core.FormatCSV, core.SweepOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	// Explicit parallel sweep: more workers than points is fine.
	if err := run("stream", "ddr3-1333", "1,2", "small", "fig12", core.FormatCSV, core.SweepOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	// The flat grid view is a Result too.
	if err := run("stream", "ddr3-1333", "1", "small", "grid", core.FormatJSON, core.SweepOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestDSESweepObs(t *testing.T) {
	col := &obs.SweepCollector{}
	opts := core.SweepOptions{Workers: 2, Metrics: col}
	if err := run("stream", "ddr3-1333", "1,2", "small", "fig10", core.FormatTable, opts); err != nil {
		t.Fatal(err)
	}
	if got := len(col.Points()); got != 2 {
		t.Fatalf("collector saw %d points, want 2", got)
	}
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.json")
	if err := writeSweepObs(col, metrics, trace); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{metrics, trace} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s: invalid JSON: %v", path, err)
		}
	}
}

func TestDSEResilienceMode(t *testing.T) {
	if err := runResilience("1,4", 60, 120, 2, 3, 7, core.FormatTable, core.SweepOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := runResilience("zero", 60, 120, 2, 3, 7, core.FormatTable, core.SweepOptions{}); err == nil {
		t.Error("bad mtbf accepted")
	}
	if err := runResilience("1", 60, 120, -2, 3, 7, core.FormatCSV, core.SweepOptions{}); err == nil {
		t.Error("negative work accepted")
	}
}

func TestDSEBadArgs(t *testing.T) {
	if err := run("stream", "ddr3-1333", "zero", "small", "all", core.FormatTable, core.SweepOptions{}); err == nil {
		t.Error("bad width accepted")
	}
	if err := run("stream", "ddr3-1333", "1", "jumbo", "all", core.FormatTable, core.SweepOptions{}); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run("stream", "ddr3-1333", "1", "small", "fig99", core.FormatTable, core.SweepOptions{}); err == nil {
		t.Error("bad table accepted")
	}
	if err := run("stream", "sdram", "1", "small", "all", core.FormatTable, core.SweepOptions{}); err == nil {
		t.Error("bad tech accepted")
	}
}
