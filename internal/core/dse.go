package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"sst/internal/config"
	"sst/internal/stats"
)

// Scale sets experiment problem sizes; Small keeps unit tests fast, Full is
// used by the benchmark harness.
type Scale int

const (
	// Small shrinks problems to smoke-test size.
	Small Scale = iota
	// Full runs the benchmark-harness sizes.
	Full
)

// SweepMachine builds the standard design-space-exploration node used by
// the Fig. 10–12 studies: a superscalar core of the given width over
// 32 KiB L1 and 512 KiB L2 caches and two channels of the given memory
// technology, running the given miniapp.
func SweepMachine(app, tech string, width int, scale Scale) *config.MachineConfig {
	wl := config.WorkloadSpec{Kind: app, Iters: 1}
	switch app {
	case "hpccg":
		if scale == Full {
			wl.N = 18
		} else {
			wl.N = 6
		}
	case "lulesh":
		if scale == Full {
			wl.N = 16384
		} else {
			wl.N = 768
		}
	case "stencil":
		if scale == Full {
			wl.N = 16
			wl.Iters = 2
		} else {
			wl.N = 8
		}
	case "stream", "fea":
		if scale == Full {
			wl.N = 8192
			wl.Iters = 2
		} else {
			wl.N = 1024
		}
	case "gups":
		if scale == Full {
			wl.N = 30000
		} else {
			wl.N = 4000
		}
	case "minimd":
		if scale == Full {
			wl.N = 4096
		} else {
			wl.N = 512
		}
	}
	return &config.MachineConfig{
		Name: fmt.Sprintf("%s-%s-w%d", app, tech, width),
		Node: config.NodeSpec{
			Cores: 1,
			CPU: config.CPUSpec{
				Kind: "superscalar", Freq: "3.2GHz", Width: width,
				Predictor: 1024, LoadQ: 8 * width, StoreQ: 8 * width,
			},
			L1:  &config.CacheSpec{Size: "32KB", Assoc: 4, HitLat: 2, MSHRs: 16, Prefetch: true, PrefetchDeg: 2},
			L2:  &config.CacheSpec{Size: "256KB", Assoc: 8, HitLat: 10, MSHRs: 32, Prefetch: true, PrefetchDeg: 8},
			Mem: config.MemSpec{Preset: tech, Channels: 1, CapacityGB: 4},
		},
		Workload: wl,
	}
}

// RunMachine builds and runs one machine config.
func RunMachine(cfg *config.MachineConfig) (*NodeResult, error) {
	return RunMachineCtx(context.Background(), cfg)
}

// RunMachineCtx is RunMachine with cooperative cancellation: when ctx
// expires (sweep cancellation, a per-point deadline) the node's engine is
// interrupted at its next event and the run returns an error wrapping
// sim.ErrInterrupted instead of running to completion.
func RunMachineCtx(ctx context.Context, cfg *config.MachineConfig) (*NodeResult, error) {
	// Inside a sweep the worker's arena rides the context (see
	// runPointsHooked); outside one arenaFrom returns nil and the build
	// allocates fresh.
	n, err := BuildNodeArena(cfg, arenaFrom(ctx))
	if err != nil {
		return nil, err
	}
	stop := context.AfterFunc(ctx, n.Sim.Engine().Interrupt)
	defer stop()
	res, err := n.Run()
	// The interrupt lands on a separate goroutine, so a run can finish in
	// the gap between its deadline expiring and the interrupt arriving.
	// The deadline is the contract: a run that crossed it counts as timed
	// out either way. Plain cancellation keeps its drain semantics — a
	// run that completes before the interrupt lands stays a success.
	if err == nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return nil, fmt.Errorf("core: machine run exceeded its deadline: %w", context.DeadlineExceeded)
	}
	return res, err
}

// DSEPoint is one (app, tech, width) sample of the design space.
type DSEPoint struct {
	App    string
	Tech   string
	Width  int
	Result *NodeResult
	// Err is set when this point's simulation failed (or panicked, or was
	// skipped by sweep cancellation); Result is then nil and the table
	// renderers skip the cell.
	Err error
}

// DSEGrid is the full sweep result.
type DSEGrid struct {
	Points []DSEPoint

	// index maps (app, tech, width) to the point's position in Points.
	// The table renderers call Find inside triple loops, so the linear
	// scan it replaces was O(points) per lookup. Built lazily and rebuilt
	// whenever Points has grown since; points must not be relabeled in
	// place between Find calls.
	index map[dseKey]int
}

// dseKey identifies one design point in the grid index.
type dseKey struct {
	app, tech string
	width     int
}

func (g *DSEGrid) buildIndex() {
	g.index = make(map[dseKey]int, len(g.Points))
	for i := range g.Points {
		p := &g.Points[i]
		g.index[dseKey{p.App, p.Tech, p.Width}] = i
	}
}

// Find returns the point for (app, tech, width), or nil.
func (g *DSEGrid) Find(app, tech string, width int) *DSEPoint {
	if len(g.index) != len(g.Points) {
		g.buildIndex()
	}
	if i, ok := g.index[dseKey{app, tech, width}]; ok {
		return &g.Points[i]
	}
	return nil
}

// Failed returns the points whose simulations did not produce a result, in
// grid order. Empty on a fully successful sweep.
func (g *DSEGrid) Failed() []*DSEPoint {
	var out []*DSEPoint
	for i := range g.Points {
		if g.Points[i].Err != nil {
			out = append(out, &g.Points[i])
		}
	}
	return out
}

// Table implements Result: the full grid as one flat table, one row per
// point. Failed points render their first error line in the err column.
func (g *DSEGrid) Table() *stats.Table {
	t := stats.NewTable("Design-space sweep: app x memory technology x issue width",
		"app", "tech", "width", "runtime_ms", "ipc", "mem_gbs", "node_watts", "err")
	for i := range g.Points {
		p := &g.Points[i]
		if p.Result == nil {
			msg := "no result"
			if p.Err != nil {
				msg = p.Err.Error()
				if j := strings.IndexByte(msg, '\n'); j >= 0 {
					msg = msg[:j]
				}
			}
			t.AddRow(p.App, p.Tech, p.Width, "", "", "", "", msg)
			continue
		}
		r := p.Result
		t.AddRow(p.App, p.Tech, p.Width, r.Seconds*1e3, r.IPC,
			r.MemBandwidth/1e9, r.Budget.AvgPowerW(), "")
	}
	return t
}

// WriteJSON implements Result.
func (g *DSEGrid) WriteJSON(w io.Writer) error { return g.Table().WriteJSON(w) }

// WriteCSV implements Result.
func (g *DSEGrid) WriteCSV(w io.Writer) error { return g.Table().WriteCSV(w) }

// MemTechWidthSweep runs the cross product of apps × technologies × widths
// — the single sweep behind Figs. 10, 11 and 12. Points are independent
// single-node simulations, so they execute across the sweep worker pool;
// grid order is the cross-product order regardless of worker count. With
// opts.Journal set, finished points are durably journaled (keyed
// "app/tech/wN") and opts.Resume restores them instead of re-running;
// opts.PointTimeout bounds each point's wall-clock time. A sweep with
// failed points returns the partial grid plus an error wrapping
// ErrPointFailed.
func MemTechWidthSweep(apps, techs []string, widths []int, scale Scale, opts SweepOptions) (*DSEGrid, error) {
	g := &DSEGrid{Points: make([]DSEPoint, 0, len(apps)*len(techs)*len(widths))}
	for _, app := range apps {
		for _, tech := range techs {
			for _, w := range widths {
				g.Points = append(g.Points, DSEPoint{App: app, Tech: tech, Width: w})
			}
		}
	}
	pio := pointIO{
		key: func(i int) string {
			p := &g.Points[i]
			return fmt.Sprintf("%s/%s/w%d", p.App, p.Tech, p.Width)
		},
		save: func(i int) (json.RawMessage, error) { return json.Marshal(g.Points[i].Result) },
		load: func(i int, raw json.RawMessage) error {
			res := new(NodeResult)
			if err := json.Unmarshal(raw, res); err != nil {
				return err
			}
			g.Points[i].Result = res
			return nil
		},
	}
	errs, err := runPointsJournaled(opts, len(g.Points), pio, func(ctx context.Context, i int) error {
		p := &g.Points[i]
		res, rerr := runMachinePoint(ctx, opts, SweepMachine(p.App, p.Tech, p.Width, scale))
		if rerr != nil {
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				// A hung point cut off by PointTimeout is a point
				// failure, not an interruption: carry the deadline
				// error, not the engine's interrupt sentinel.
				return fmt.Errorf("core: sweep %s/%s/w%d timed out after %v: %w (%v)",
					p.App, p.Tech, p.Width, opts.PointTimeout, context.DeadlineExceeded, rerr)
			}
			return fmt.Errorf("core: sweep %s/%s/w%d: %w", p.App, p.Tech, p.Width, rerr)
		}
		p.Result = res
		return nil
	})
	pointFailed := false
	for i := range errs {
		g.Points[i].Err = errs[i]
		pointFailed = pointFailed || errs[i] != nil
	}
	g.buildIndex()
	if pointFailed {
		// Distinct from a sweep that could not run at all (e.g. an
		// unreadable journal): that error passes through unwrapped.
		err = fmt.Errorf("%w: %w", ErrPointFailed, err)
	}
	// The grid is returned even on error: completed points keep their
	// results so callers can render the partial sweep next to the
	// per-point failures.
	return g, err
}

// Fig10Table renders application performance by memory technology: runtime
// and speedup relative to the DDR3 baseline at each width.
func Fig10Table(g *DSEGrid, apps, techs []string, widths []int, baseline string) *stats.Table {
	t := stats.NewTable("Fig 10: application performance with different memory systems",
		"app", "width", "tech", "runtime_ms", "speedup_vs_"+baseline)
	for _, app := range apps {
		for _, w := range widths {
			base := g.Find(app, baseline, w)
			for _, tech := range techs {
				p := g.Find(app, tech, w)
				if p == nil || p.Result == nil || base == nil || base.Result == nil {
					continue
				}
				t.AddRow(app, w, tech, p.Result.Seconds*1e3,
					base.Result.Seconds/p.Result.Seconds)
			}
		}
	}
	return t
}

// Fig11Table renders power and cost efficiency by memory technology.
func Fig11Table(g *DSEGrid, apps, techs []string, widths []int) *stats.Table {
	t := stats.NewTable("Fig 11: power and cost with different memory systems",
		"app", "width", "tech", "node_watts", "perf_per_watt", "node_cost_usd", "perf_per_dollar")
	for _, app := range apps {
		for _, w := range widths {
			for _, tech := range techs {
				p := g.Find(app, tech, w)
				if p == nil || p.Result == nil {
					continue
				}
				r := p.Result
				t.AddRow(app, w, tech, r.Budget.AvgPowerW(),
					r.PerfPerWatt(), r.Budget.TotalCostUSD(), r.PerfPerDollar())
			}
		}
	}
	return t
}

// Fig12Table renders issue-width scaling on a fixed memory technology:
// speedup, power and the efficiency metrics, all relative to width 1.
func Fig12Table(g *DSEGrid, apps []string, tech string, widths []int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Fig 12: cost and power efficiency vs issue width (%s)", tech),
		"app", "width", "speedup", "power_ratio", "perf_per_watt", "perf_per_dollar", "area_mm2")
	for _, app := range apps {
		base := g.Find(app, tech, widths[0])
		if base == nil || base.Result == nil {
			continue
		}
		for _, w := range widths {
			p := g.Find(app, tech, w)
			if p == nil || p.Result == nil {
				continue
			}
			r := p.Result
			t.AddRow(app, w,
				base.Result.Seconds/r.Seconds,
				r.Budget.AvgPowerW()/base.Result.Budget.AvgPowerW(),
				r.PerfPerWatt(), r.PerfPerDollar(), r.AreaMM2)
		}
	}
	return t
}

// MemSpeedResult is the memory-speed study's Result: the rendered table
// plus Rel[app][grade] = runtime relative to the fastest grade.
type MemSpeedResult struct {
	TableResult
	Rel map[string]map[string]float64
}

// MemSpeedStudy runs the Fig. 3 analogue: FEA-like (compute-bound) and
// CG-solver (bandwidth-bound) phases across DDR3 speed grades, reporting
// runtime relative to the fastest grade. The expected shape: the solver
// slows as memory slows, the assembly phase barely moves.
func MemSpeedStudy(grades []string, scale Scale, opts SweepOptions) (*MemSpeedResult, error) {
	apps := []string{"fea", "hpccg"}
	t := stats.NewTable("Fig 3: effect of memory speed on FEA and solver phases",
		"phase", "memory", "runtime_ms", "relative_to_fastest")
	rel := map[string]map[string]float64{}
	// The app × grade cells are independent node runs: fan them out, then
	// derive the relative columns in the original row order.
	flat := make([]*NodeResult, len(apps)*len(grades))
	_, err := runPointsDetailed(opts, len(flat), func(ctx context.Context, i int) error {
		app, gr := apps[i/len(grades)], grades[i%len(grades)]
		res, err := runMachinePoint(ctx, opts, SweepMachine(app, gr, 4, scale))
		if err != nil {
			return err
		}
		flat[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ai, app := range apps {
		rel[app] = map[string]float64{}
		fastest := flat[ai*len(grades)+len(grades)-1].Seconds
		for gi, gr := range grades {
			r := flat[ai*len(grades)+gi]
			rel[app][gr] = r.Seconds / fastest
			t.AddRow(app, gr, r.Seconds*1e3, r.Seconds/fastest)
		}
	}
	return &MemSpeedResult{TableResult: TableResult{Tab: t}, Rel: rel}, nil
}
