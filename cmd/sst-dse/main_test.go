package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sst/internal/cli"
	"sst/internal/core"
	"sst/internal/obs"
	"syscall"
)

func TestDSESmallSweep(t *testing.T) {
	if err := run("stream", "ddr3-1333,gddr5-4000", "1,2", "small", "all", core.FormatTable, core.SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := run("stream", "ddr3-1333", "1", "small", "fig10", core.FormatCSV, core.SweepOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	// Explicit parallel sweep: more workers than points is fine.
	if err := run("stream", "ddr3-1333", "1,2", "small", "fig12", core.FormatCSV, core.SweepOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	// The flat grid view is a Result too.
	if err := run("stream", "ddr3-1333", "1", "small", "grid", core.FormatJSON, core.SweepOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestDSESweepObs(t *testing.T) {
	col := &obs.SweepCollector{}
	opts := core.SweepOptions{Workers: 2, Metrics: col}
	if err := run("stream", "ddr3-1333", "1,2", "small", "fig10", core.FormatTable, opts); err != nil {
		t.Fatal(err)
	}
	if got := len(col.Points()); got != 2 {
		t.Fatalf("collector saw %d points, want 2", got)
	}
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.json")
	if err := writeSweepObs(col, nil, metrics, trace); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{metrics, trace} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s: invalid JSON: %v", path, err)
		}
	}
}

func TestDSEResilienceMode(t *testing.T) {
	if err := runResilience("1,4", 60, 120, 2, 3, 7, core.FormatTable, core.SweepOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := runResilience("zero", 60, 120, 2, 3, 7, core.FormatTable, core.SweepOptions{}); err == nil {
		t.Error("bad mtbf accepted")
	}
	if err := runResilience("1", 60, 120, -2, 3, 7, core.FormatCSV, core.SweepOptions{}); err == nil {
		t.Error("negative work accepted")
	}
}

func TestDSEBadArgs(t *testing.T) {
	err := run("stream", "ddr3-1333", "zero", "small", "all", core.FormatTable, core.SweepOptions{})
	if err == nil {
		t.Error("bad width accepted")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("bad width maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
	err = run("stream", "ddr3-1333", "1", "jumbo", "all", core.FormatTable, core.SweepOptions{})
	if err == nil {
		t.Error("bad scale accepted")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("bad scale maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
	err = run("stream", "ddr3-1333", "1", "small", "fig99", core.FormatTable, core.SweepOptions{})
	if err == nil {
		t.Error("bad table accepted")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("bad table maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
	if err := run("stream", "sdram", "1", "small", "all", core.FormatTable, core.SweepOptions{}); err == nil {
		t.Error("bad tech accepted")
	}
}

// TestDSEExitCodes pins the sweep outcomes callers script against: a
// timed-out point means "completed with failures" (3), a Ctrl-C cancel
// means "interrupted" (130).
func TestDSEExitCodes(t *testing.T) {
	// An unsatisfiable per-point deadline fails every point.
	err := run("stream", "ddr3-1333", "1", "small", "grid", core.FormatCSV,
		core.SweepOptions{Workers: 1, PointTimeout: time.Nanosecond})
	if err == nil {
		t.Fatal("timed-out sweep reported success")
	}
	if cli.Code(err) != cli.ExitPointFailed {
		t.Errorf("timed-out sweep maps to exit %d, want %d (err: %v)", cli.Code(err), cli.ExitPointFailed, err)
	}
	// A pre-cancelled context is an interrupted sweep, not a failed one.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = run("stream", "ddr3-1333", "1", "small", "grid", core.FormatCSV,
		core.SweepOptions{Workers: 1, Context: ctx})
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	if cli.Code(err) != cli.ExitInterrupted {
		t.Errorf("cancelled sweep maps to exit %d, want %d (err: %v)", cli.Code(err), cli.ExitInterrupted, err)
	}
}

// TestDSEJournalResume: a sweep interrupted after journaling some points
// resumes to the same grid an uninterrupted sweep produces.
func TestDSEJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	opts := core.SweepOptions{Workers: 2, Journal: journal}
	if err := run("stream", "ddr3-1333", "1,2", "small", "grid", core.FormatCSV, opts); err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	if err := run("stream", "ddr3-1333", "1,2", "small", "grid", core.FormatCSV, opts); err != nil {
		t.Fatalf("resume: %v", err)
	}
}

// TestDSECacheFlags pins the flag-to-cache wiring: parsing, the
// -cache-file-implies--cache rule, and bad policy rejection.
func TestDSECacheFlags(t *testing.T) {
	if c, err := newSweepCache(false, 0, "lru", "", ""); err != nil || c != nil {
		t.Fatalf("disabled cache = %v, %v; want nil, nil", c, err)
	}
	c, err := newSweepCache(true, 16, "tinylfu", "lru,lfu", "")
	if err != nil || c == nil {
		t.Fatalf("newSweepCache: %v", err)
	}
	st := c.Stats()
	if st.Policy != "tinylfu" || st.Capacity != 16 || len(st.Shadows) != 2 {
		t.Fatalf("cache built wrong: %+v", st)
	}
	c.Close()
	// -cache-file implies -cache.
	fc, err := newSweepCache(false, 8, "lru", "", filepath.Join(t.TempDir(), "c.jsonl"))
	if err != nil || fc == nil {
		t.Fatalf("cache-file without -cache: %v, %v", fc, err)
	}
	fc.Close()
	if _, err := newSweepCache(true, 8, "arc", "", ""); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := newSweepCache(true, 8, "lru", "lfu,arc", ""); err == nil {
		t.Error("bad shadow policy accepted")
	}
}

// TestDSECachedSweep runs the same grid twice through one cache and
// requires the second pass to be all hits; the cache stats also land in
// the -metrics-out JSON.
func TestDSECachedSweep(t *testing.T) {
	sc, err := newSweepCache(true, 64, "lru", "lfu,tinylfu", "")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	opts := core.SweepOptions{Workers: 2, Cache: sc}
	if err := run("stream", "ddr3-1333", "1,2", "small", "grid", core.FormatCSV, opts); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("cold pass stats %+v", st)
	}
	col := &obs.SweepCollector{}
	opts.Metrics = col
	if err := run("stream", "ddr3-1333", "1,2", "small", "grid", core.FormatCSV, opts); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("warm pass stats %+v, want 2 hits 2 misses", st)
	}

	metrics := filepath.Join(t.TempDir(), "m.json")
	if err := writeSweepObs(col, sc, metrics, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var points any
	if err := dec.Decode(&points); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	var rep struct {
		Cache *struct {
			Policy  string `json:"policy"`
			Hits    int64  `json:"hits"`
			Shadows []struct {
				Policy string `json:"policy"`
			} `json:"shadows"`
		} `json:"cache"`
	}
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("metrics JSON cache report: %v", err)
	}
	if rep.Cache == nil || rep.Cache.Policy != "lru" || rep.Cache.Hits != 2 || len(rep.Cache.Shadows) != 2 {
		t.Fatalf("cache report in metrics JSON = %+v", rep.Cache)
	}
}

// TestDSECacheFileWarmStart simulates two separate CLI invocations sharing
// a -cache-file: the second builds a fresh cache from the file and serves
// every point without re-simulating.
func TestDSECacheFileWarmStart(t *testing.T) {
	file := filepath.Join(t.TempDir(), "results.jsonl")
	sc1, err := newSweepCache(false, 64, "lru", "", file)
	if err != nil {
		t.Fatal(err)
	}
	if err := run("stream", "ddr3-1333", "1,2", "small", "grid", core.FormatCSV,
		core.SweepOptions{Workers: 2, Cache: sc1}); err != nil {
		t.Fatal(err)
	}
	if st := sc1.Stats(); st.Misses != 2 {
		t.Fatalf("first invocation stats %+v", st)
	}
	if err := sc1.Close(); err != nil {
		t.Fatal(err)
	}

	sc2, err := newSweepCache(false, 64, "lru", "", file)
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	if st := sc2.Stats(); st.WarmStarts != 2 {
		t.Fatalf("second invocation warm-started %d points, want 2", st.WarmStarts)
	}
	if err := run("stream", "ddr3-1333", "1,2", "small", "grid", core.FormatCSV,
		core.SweepOptions{Workers: 2, Cache: sc2}); err != nil {
		t.Fatal(err)
	}
	st := sc2.Stats()
	if st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("second invocation stats %+v, want 2 hits 0 misses (no re-simulation)", st)
	}
}

// TestDSESIGTERMDrains: a supervisor's SIGTERM behaves exactly like
// Ctrl-C — the signal context cancels, the sweep drains, and the error
// maps to the interrupted exit code.
func TestDSESIGTERMDrains(t *testing.T) {
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the signal context")
	}
	err := run("stream", "ddr3-1333", "1,2", "small", "grid", core.FormatCSV,
		core.SweepOptions{Workers: 1, Context: ctx})
	if err == nil {
		t.Fatal("sweep under SIGTERM reported success")
	}
	if cli.Code(err) != cli.ExitInterrupted {
		t.Fatalf("SIGTERM maps to exit %d, want %d (err: %v)", cli.Code(err), cli.ExitInterrupted, err)
	}
}
