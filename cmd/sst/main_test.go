package main

import (
	"os"
	"path/filepath"
	"testing"
)

const testMachine = `{
  "name": "cli-test",
  "node": {
    "cpu": {"kind": "superscalar", "freq": "2GHz", "width": 2},
    "l1": {"size": "32KB", "assoc": 4, "hit_lat": 2},
    "memory": {"preset": "ddr3-1333"}
  },
  "workload": {"kind": "stream", "n": 512, "iters": 1}
}`

func TestRunMachineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, []byte(testMachine), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true, false, "", "10us"); err != nil {
		t.Fatal(err)
	}
	tl := filepath.Join(dir, "timeline.csv")
	if err := run(path, true, true, tl, "1us"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("timeline empty")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent.json", false, false, "", "1us"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunBadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte(`{"name":"x"}`), 0o644)
	if err := run(path, false, false, "", "1us"); err == nil {
		t.Fatal("invalid config accepted")
	}
}

const testSystem = `{
  "name": "cli-sys",
  "topology": {"kind": "torus", "x": 2, "y": 2, "z": 2},
  "network": {"link_bw": 3.2e9, "inject_bw": 3.2e9, "link_lat": "100ns", "router_lat": "50ns"},
  "app": "charon",
  "steps": 2
}`

func TestRunSystemFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(testSystem), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSystem(path); err != nil {
		t.Fatal(err)
	}
}

func TestRunSystemMissing(t *testing.T) {
	if err := runSystem("/nonexistent.json"); err == nil {
		t.Fatal("missing system accepted")
	}
}
