package mem

import (
	"testing"
	"testing/quick"

	"sst/internal/dram"
	"sst/internal/sim"
	"sst/internal/stats"
)

// coherentPair builds two L1 caches over a snooping bus over a simple
// memory.
func coherentPair(t testing.TB) (*sim.Engine, *Cache, *Cache, *Bus, *SimpleMemory) {
	t.Helper()
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	lower := NewSimpleMemory(e, "mem", 50*sim.Nanosecond, 0, reg.Scope("mem"))
	bus := NewBus(e, "bus", 5*sim.Nanosecond, 0, lower, reg.Scope("bus"))
	mk := func(name string) *Cache {
		cfg := testCfg(name)
		port := bus.Port(nil)
		c, err := NewCache(e, cfg, port, reg.Scope(name))
		if err != nil {
			t.Fatal(err)
		}
		port.AttachCache(c)
		return c
	}
	return e, mk("c0"), mk("c1"), bus, lower
}

func lineState(c *Cache, addr uint64) state {
	ln := c.findLine(addr >> c.lineShift)
	if ln == nil {
		return invalid
	}
	return ln.st
}

func TestMESIExclusiveFill(t *testing.T) {
	e, c0, c1, _, _ := coherentPair(t)
	c0.Access(Read, 0, 8, nil)
	e.RunAll()
	if st := lineState(c0, 0); st != exclusive {
		t.Fatalf("lone reader state = %d, want exclusive", st)
	}
	_ = c1
}

func TestMESISharedFill(t *testing.T) {
	e, c0, c1, _, _ := coherentPair(t)
	c0.Access(Read, 0, 8, nil)
	e.RunAll()
	c1.Access(Read, 0, 8, nil)
	e.RunAll()
	if st := lineState(c0, 0); st != shared {
		t.Fatalf("first reader downgraded to %d, want shared", st)
	}
	if st := lineState(c1, 0); st != shared {
		t.Fatalf("second reader state = %d, want shared", st)
	}
}

func TestMESIWriteInvalidatesPeer(t *testing.T) {
	e, c0, c1, bus, _ := coherentPair(t)
	c0.Access(Read, 0, 8, nil)
	c1.Access(Read, 0, 8, nil)
	e.RunAll()
	c0.Access(Write, 0, 8, nil)
	e.RunAll()
	if st := lineState(c0, 0); st != modified {
		t.Fatalf("writer state = %d, want modified", st)
	}
	if st := lineState(c1, 0); st != invalid {
		t.Fatalf("peer state = %d, want invalid", st)
	}
	if bus.invals.Count() == 0 {
		t.Error("no invalidations recorded")
	}
	if c0.upgrades.Count() != 1 {
		t.Errorf("upgrades = %d, want 1 (S→M)", c0.upgrades.Count())
	}
}

func TestMESIDirtyPeerSuppliesData(t *testing.T) {
	e, c0, c1, bus, lower := coherentPair(t)
	c0.Access(Write, 0, 8, nil)
	e.RunAll()
	reads := lower.reads.Count()
	var lat sim.Time
	start := e.Now()
	c1.Access(Read, 0, 8, func() { lat = e.Now() - start })
	e.RunAll()
	if bus.c2cTransfers.Count() != 1 {
		t.Fatalf("cache-to-cache transfers = %d, want 1", bus.c2cTransfers.Count())
	}
	if lower.reads.Count() != reads {
		t.Error("memory read issued despite dirty peer supply")
	}
	if lower.writes.Count() == 0 {
		t.Error("dirty data never written back to memory")
	}
	// c2c supply must beat the 50ns memory path.
	if lat > 40*sim.Nanosecond {
		t.Errorf("c2c latency = %v, expected well under memory latency", lat)
	}
	if st := lineState(c0, 0); st != shared {
		t.Errorf("previous owner state = %d, want shared", st)
	}
}

func TestMESIRFOOnWriteMissWithDirtyPeer(t *testing.T) {
	e, c0, c1, bus, _ := coherentPair(t)
	c0.Access(Write, 0, 8, nil)
	e.RunAll()
	c1.Access(Write, 0, 8, nil)
	e.RunAll()
	if st := lineState(c1, 0); st != modified {
		t.Fatalf("new writer state = %d, want modified", st)
	}
	if st := lineState(c0, 0); st != invalid {
		t.Fatalf("old writer state = %d, want invalid", st)
	}
	if bus.c2cTransfers.Count() != 1 {
		t.Errorf("c2c transfers = %d, want 1 for dirty RFO", bus.c2cTransfers.Count())
	}
}

func TestMESISilentEToM(t *testing.T) {
	e, c0, _, bus, _ := coherentPair(t)
	c0.Access(Read, 0, 8, nil)
	e.RunAll()
	txns := bus.transactions.Count()
	c0.Access(Write, 0, 8, nil)
	e.RunAll()
	if bus.transactions.Count() != txns {
		t.Error("E→M transition generated bus traffic")
	}
	if st := lineState(c0, 0); st != modified {
		t.Fatalf("state = %d, want modified", st)
	}
}

// TestMESIInvariantProperty drives random reads/writes from two caches and
// checks the single-writer invariant afterwards for every touched line.
func TestMESIInvariantProperty(t *testing.T) {
	fn := func(ops []uint8) bool {
		e, c0, c1, _, _ := coherentPair(t)
		caches := [2]*Cache{c0, c1}
		touched := map[uint64]bool{}
		for _, op := range ops {
			who := int(op>>0) & 1
			isWrite := op&2 != 0
			addr := uint64(op>>2) * 64 // 64 distinct lines
			touched[addr] = true
			if isWrite {
				caches[who].Access(Write, addr, 8, nil)
			} else {
				caches[who].Access(Read, addr, 8, nil)
			}
			e.RunAll()
		}
		for addr := range touched {
			s0, s1 := lineState(c0, addr), lineState(c1, addr)
			// Single-writer: if either is M or E, the other must
			// be invalid.
			if (s0 == modified || s0 == exclusive) && s1 != invalid {
				return false
			}
			if (s1 == modified || s1 == exclusive) && s0 != invalid {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBusBandwidthSerializes(t *testing.T) {
	e := sim.NewEngine()
	lower := NewSimpleMemory(e, "mem", 0, 0, nil)
	// 64 bytes at 1 GB/s = 64ns occupancy per line.
	bus := NewBus(e, "bus", 0, 1e9, lower, nil)
	p := bus.Port(nil)
	var last sim.Time
	for i := 0; i < 4; i++ {
		p.Access(Read, uint64(i*64), 64, func() { last = e.Now() })
	}
	e.RunAll()
	if last < 250*sim.Nanosecond {
		t.Errorf("4 x 64B at 1GB/s finished at %v, want >= 256ns", last)
	}
	if bus.busyTime.Count() == 0 {
		t.Error("bus busy time not recorded")
	}
}

func TestBusCachelessMasterWrite(t *testing.T) {
	e, c0, _, bus, lower := coherentPair(t)
	c0.Access(Read, 0, 8, nil)
	e.RunAll()
	// A cache-less master (e.g. NIC DMA) writes the same line: the cache
	// copy must be invalidated and the write must reach memory.
	dma := bus.Port(nil)
	done := false
	dma.Access(Write, 0, 64, func() { done = true })
	e.RunAll()
	if !done {
		t.Fatal("DMA write never completed")
	}
	if st := lineState(c0, 0); st != invalid {
		t.Errorf("cached copy survived DMA write: state %d", st)
	}
	if lower.writes.Count() == 0 {
		t.Error("DMA write never reached memory")
	}
}

func TestDRAMDeviceAdapterSplit(t *testing.T) {
	e := sim.NewEngine()
	dmem := newDRAMForTest(t, e)
	dev := &DRAMDevice{Mem: dmem}
	done := false
	dev.Access(Read, 0x10, 256, func() { done = true })
	e.RunAll()
	if !done {
		t.Fatal("adapter access never completed")
	}
	// 0x10..0x10f spans 5 lines.
	if got := dmem.BytesTransferred(); got != 5*64 {
		t.Errorf("bytes = %d, want %d", got, 5*64)
	}
	// Posted write path.
	dev.Access(Write, 0, 64, nil)
	e.RunAll()
	if got := dmem.BytesTransferred(); got != 6*64 {
		t.Errorf("bytes after posted write = %d, want %d", got, 6*64)
	}
}

func TestCacheOverDRAMIntegration(t *testing.T) {
	// Full stack: cache -> bus -> DRAM. Streaming read twice: second
	// pass hits in cache, DRAM sees each line once.
	e := sim.NewEngine()
	dmem := newDRAMForTest(t, e)
	bus := NewBus(e, "bus", 2*sim.Nanosecond, 0, &DRAMDevice{Mem: dmem}, nil)
	cfg := testCfg("l2")
	cfg.SizeBytes = 8 << 10
	port := bus.Port(nil)
	c, err := NewCache(e, cfg, port, nil)
	if err != nil {
		t.Fatal(err)
	}
	port.cache = c
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4096; a += 64 {
			c.Access(Read, a, 8, nil)
		}
		e.RunAll()
	}
	if c.Misses() != 64 {
		t.Errorf("misses = %d, want 64", c.Misses())
	}
	if c.Hits() != 64 {
		t.Errorf("hits = %d, want 64", c.Hits())
	}
	if dmem.BytesTransferred() != 64*64 {
		t.Errorf("DRAM bytes = %d, want %d", dmem.BytesTransferred(), 64*64)
	}
}

// newDRAMForTest builds a DDR3-1333 dram.Memory for integration tests.
func newDRAMForTest(t testing.TB, e *sim.Engine) *dram.Memory {
	t.Helper()
	m, err := dram.New(e, "dram", dram.DDR3_1333, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
