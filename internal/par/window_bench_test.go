package par

import (
	"testing"

	"sst/internal/sim"
)

// BenchmarkParallelWindow measures the per-window synchronization cost of
// the runner — barrier, horizon computation, and mailbox exchange — under
// both sync modes. Four ranks in a ring, each with one local event and one
// remote send per 100ns window, so b.N iterations is b.N windows and ns/op
// is the steady-state cost of one conservative window. Gated against
// BENCH_baseline.json by `make bench`.
func BenchmarkParallelWindow(b *testing.B) {
	for _, mode := range []SyncMode{SyncGlobal, SyncPairwise} {
		b.Run("sync="+mode.String(), func(b *testing.B) {
			r, err := NewRunner(4)
			if err != nil {
				b.Fatal(err)
			}
			r.SetSyncMode(mode)
			outs := make([]*sim.Port, 4)
			for i := 0; i < 4; i++ {
				a, pb, err := r.Connect("ring"+itoa(i), 100*sim.Nanosecond, i, (i+1)%4)
				if err != nil {
					b.Fatal(err)
				}
				a.SetHandler(func(any) {})
				pb.SetHandler(func(any) {})
				outs[i] = a
			}
			for i := 0; i < 4; i++ {
				eng := r.Rank(i).Engine()
				out := outs[i]
				var tick func(any)
				tick = func(any) {
					out.Send(0)
					eng.Schedule(100*sim.Nanosecond, tick, nil)
				}
				eng.Schedule(100*sim.Nanosecond, tick, nil)
			}
			b.ResetTimer()
			b.ReportAllocs()
			if _, err := r.Run(sim.Time(b.N) * 100 * sim.Nanosecond); err != nil {
				b.Fatal(err)
			}
		})
	}
}
