#!/bin/sh
# serve-smoke: end-to-end crash-tolerance gate for the sweep service.
#
# Three scenarios against real sst-serve processes over HTTP:
#
#   1. reference — submit the 16-point DSE grid, wait for completion,
#      fetch the result CSV, then SIGTERM the server and require a clean
#      exit 0 (graceful drain).
#   2. crash — submit the same grid to a fresh server, kill -9 it
#      mid-sweep, restart over the same state directory, and require the
#      recovered job's CSV to be byte-identical to the reference.
#   3. shed — a server with -jobs 1 -queue 1 under a submission burst
#      must answer at least one 429 with a Retry-After header.
#
# Usage: tools/serve_smoke.sh [path-to-sst-serve]
set -eu

BIN=${1:-bin/sst-serve}
TMP=$(mktemp -d)
PID=
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null
    rm -rf "$TMP"
}
trap cleanup 0

SPEC='{"tenant":"smoke","spec":{"kind":"dse","apps":["stream","gups"],"techs":["ddr3-1333","gddr5-4000"],"widths":[1,2,4,8],"scale":"small"}}'

die() { echo "serve-smoke: $*" >&2; exit 1; }

# wait_addr STATE — poll for the published listen address.
wait_addr() {
    i=0
    while [ $i -lt 200 ]; do
        if [ -s "$1/addr" ]; then head -n1 "$1/addr"; return 0; fi
        i=$((i + 1)); sleep 0.05
    done
    die "server over $1 never published its address"
}

# submit URL — POST the reference spec, print the job ID.
submit() {
    curl -s -X POST -H 'Content-Type: application/json' -d "$SPEC" "$1/v1/jobs" |
        sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'
}

# wait_done URL ID — poll until the job is done (fail on failed/cancelled).
wait_done() {
    i=0
    while [ $i -lt 600 ]; do
        st=$(curl -s "$1/v1/jobs/$2")
        case "$st" in
        *'"state": "done"'*) return 0 ;;
        *'"state": "failed"'* | *'"state": "cancelled"'*) die "job $2 ended badly: $st" ;;
        esac
        i=$((i + 1)); sleep 0.1
    done
    die "job $2 never completed"
}

# --- 1. reference run + graceful drain --------------------------------
mkdir -p "$TMP/ref"
"$BIN" -state "$TMP/ref" -addr 127.0.0.1:0 -drain 30s &
PID=$!
URL="http://$(wait_addr "$TMP/ref")"
ID=$(submit "$URL")
[ -n "$ID" ] || die "reference submit returned no job ID"
wait_done "$URL" "$ID"
curl -s "$URL/v1/jobs/$ID/result" >"$TMP/ref.csv"
[ -s "$TMP/ref.csv" ] || die "empty reference result"
kill -TERM "$PID"
rc=0; wait "$PID" || rc=$?
PID=
[ "$rc" -eq 0 ] || die "SIGTERM drain exited $rc, want 0"
echo "serve-smoke: graceful drain exited 0"

# --- 2. kill -9 mid-sweep, restart, byte-identical result -------------
mkdir -p "$TMP/crash"
"$BIN" -state "$TMP/crash" -addr 127.0.0.1:0 -j 1 -drain 30s &
PID=$!
URL="http://$(wait_addr "$TMP/crash")"
ID=$(submit "$URL")
[ -n "$ID" ] || die "crash-run submit returned no job ID"
sleep 0.35
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=
rm -f "$TMP/crash/addr"
"$BIN" -state "$TMP/crash" -addr 127.0.0.1:0 -j 1 -drain 30s &
PID=$!
URL="http://$(wait_addr "$TMP/crash")"
wait_done "$URL" "$ID"
curl -s "$URL/v1/jobs/$ID/result" >"$TMP/crash.csv"
cmp "$TMP/ref.csv" "$TMP/crash.csv" ||
    die "recovered result differs from uninterrupted run"
kill -TERM "$PID"
rc=0; wait "$PID" || rc=$?
PID=
[ "$rc" -eq 0 ] || die "post-recovery drain exited $rc, want 0"
echo "serve-smoke: kill -9 recovery converged on byte-identical results"

# --- 3. load shedding: full queue answers 429 + Retry-After -----------
mkdir -p "$TMP/shed"
"$BIN" -state "$TMP/shed" -addr 127.0.0.1:0 -jobs 1 -queue 1 -drain 60s &
PID=$!
URL="http://$(wait_addr "$TMP/shed")"
shed=0
i=0
while [ $i -lt 8 ]; do
    code=$(curl -s -o "$TMP/shed/resp.$i" -w '%{http_code}' \
        -D "$TMP/shed/hdr.$i" \
        -X POST -H 'Content-Type: application/json' -d "$SPEC" "$URL/v1/jobs")
    if [ "$code" = "429" ]; then
        shed=$((shed + 1))
        grep -qi '^Retry-After:' "$TMP/shed/hdr.$i" ||
            die "429 response missing Retry-After header"
    fi
    i=$((i + 1))
done
[ "$shed" -ge 1 ] || die "burst of 8 submits onto -jobs 1 -queue 1 shed nothing"
kill -TERM "$PID"
rc=0; wait "$PID" || rc=$?
PID=
[ "$rc" -eq 0 ] || die "shed-scenario drain exited $rc, want 0"
echo "serve-smoke: backpressure shed $shed/8 submissions with 429 + Retry-After"

echo "serve-smoke: OK"
