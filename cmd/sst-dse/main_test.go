package main

import "testing"

func TestDSESmallSweep(t *testing.T) {
	if err := run("stream", "ddr3-1333,gddr5-4000", "1,2", "small", "all", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("stream", "ddr3-1333", "1", "small", "fig10", true, 1); err != nil {
		t.Fatal(err)
	}
	// Explicit parallel sweep: more workers than points is fine.
	if err := run("stream", "ddr3-1333", "1,2", "small", "fig12", true, 4); err != nil {
		t.Fatal(err)
	}
}

func TestDSEResilienceMode(t *testing.T) {
	if err := runResilience("1,4", 60, 120, 2, 3, 7, false, 2); err != nil {
		t.Fatal(err)
	}
	if err := runResilience("zero", 60, 120, 2, 3, 7, false, 0); err == nil {
		t.Error("bad mtbf accepted")
	}
	if err := runResilience("1", 60, 120, -2, 3, 7, true, 0); err == nil {
		t.Error("negative work accepted")
	}
}

func TestDSEBadArgs(t *testing.T) {
	if err := run("stream", "ddr3-1333", "zero", "small", "all", false, 0); err == nil {
		t.Error("bad width accepted")
	}
	if err := run("stream", "ddr3-1333", "1", "jumbo", "all", false, 0); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run("stream", "ddr3-1333", "1", "small", "fig99", false, 0); err == nil {
		t.Error("bad table accepted")
	}
	if err := run("stream", "sdram", "1", "small", "all", false, 0); err == nil {
		t.Error("bad tech accepted")
	}
}
