// Command sst runs a simulation described by an Abstract Machine Model
// (AMM) JSON file and reports results. Machine files (a node architecture
// plus a workload) and system files (a topology, network parameters and a
// communication profile) are both accepted; the file's shape selects the
// mode.
//
// Usage:
//
//	sst -config machine.json [-stats] [-format table|json|csv]
//	    [-trace-out run.json] [-trace-cap N] [-metrics-out m.json]
//	sst -system system.json [-par N] [-sync global|pairwise|speculative|adaptive]
//	    [-snapshot-every 100us] [-snapshot-out run.snap] [-restore run.snap]
//	    [-trace-out run.json] [-metrics-out m.json]
//
// -trace-out records per-event spans (simulated time, component label,
// host handler time) into a bounded ring and writes a Chrome trace_event
// file loadable in Perfetto (or CSV when the path ends in .csv).
// -metrics-out writes the run's engine/link metrics as JSON. -format json
// emits the result and metrics as one JSON object instead of the human
// summary.
//
// -par N partitions a -system run over N parallel ranks (the network
// fabric becomes internal/dnoc, bit-identical to the sequential run);
// -sync selects the synchronization mode: the conservative pairwise
// (topology-aware lookahead, the default) and global (single minimum
// window) modes, the optimistic speculative mode (ranks run past their
// conservative horizon, checkpoint through the snapshot codec, and roll
// back and replay when a straggler arrives), or adaptive (speculative
// with a governor that falls back to conservative windows per rank while
// its rollback rate spikes). All modes produce bit-identical results.
// With -par, -trace-out writes one file per rank: the path gains a
// ".rankN" suffix before its extension (run.json -> run.rank0.json ...).
//
// -snapshot-every T writes a consistent snapshot of the whole -system
// simulation to -snapshot-out every T of simulated time (atomic
// write-then-rename, so a crash never leaves a torn file); -restore
// resumes a run from such a snapshot and produces results bit-identical
// to the uninterrupted run. Both imply the partitioned execution path and
// work at any -par count, including 1.
//
// Exit codes: 0 success, 1 failure, 2 configuration error, 130
// interrupted (Ctrl-C).
//
// See configs/ for examples of both formats and internal/config for the
// full schema.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sst/internal/cli"
	"sst/internal/config"
	"sst/internal/core"
	"sst/internal/dnoc"
	"sst/internal/iofault"
	"sst/internal/noc"
	"sst/internal/obs"
	"sst/internal/par"
	"sst/internal/sim"
	"sst/internal/stats"
	"sst/internal/workload"
)

// obsFlags bundles the observability options shared by both modes.
type obsFlags struct {
	traceOut   string
	traceCap   int
	metricsOut string
	format     core.Format
}

func main() {
	var (
		cfgPath    = flag.String("config", "", "machine config JSON")
		sysPath    = flag.String("system", "", "system config JSON")
		dumpStats  = flag.Bool("stats", false, "dump every component statistic")
		asCSV      = flag.Bool("csv", false, "deprecated: same as -format csv")
		formatFlag = flag.String("format", "table", "output format: table, json or csv")
		timeline   = flag.String("timeline", "", "write a DRAM-traffic time series CSV to this file")
		samplePd   = flag.String("sample-period", "10us", "timeline sampling period")
		traceOut   = flag.String("trace-out", "", "write an event trace to this file (Chrome JSON; CSV if path ends in .csv)")
		traceCap   = flag.Int("trace-cap", 0, "trace ring capacity in spans (0 = default 65536; keeps the run's tail)")
		metricsOut = flag.String("metrics-out", "", "write run metrics JSON to this file")
		parFlag    = flag.Int("par", 1, "partition a -system run over N parallel ranks")
		syncFlag   = flag.String("sync", "pairwise", "parallel sync mode: "+strings.Join(par.SyncModeNames(), ", "))
		snapEvery  = flag.String("snapshot-every", "", "write a snapshot every this much simulated time (e.g. 100us; -system only)")
		snapOut    = flag.String("snapshot-out", "sst.snap", "snapshot file for -snapshot-every")
		restore    = flag.String("restore", "", "resume a -system run from this snapshot file")
	)
	flag.Parse()
	format, err := core.ParseFormat(*formatFlag)
	if err != nil {
		cli.Exit("sst", cli.Configf("%v", err))
	}
	if *asCSV {
		format = core.FormatCSV
	}
	syncMode, err := par.ParseSyncMode(*syncFlag)
	if err != nil {
		cli.Exit("sst", cli.Configf("%v", err))
	}
	snap := snapCfg{out: *snapOut, restore: *restore}
	if *snapEvery != "" {
		if snap.every, err = sim.ParseTime(*snapEvery); err != nil || snap.every <= 0 {
			cli.Exit("sst", cli.Configf("bad -snapshot-every %q", *snapEvery))
		}
	}
	ob := obsFlags{traceOut: *traceOut, traceCap: *traceCap, metricsOut: *metricsOut, format: format}
	switch {
	case *cfgPath != "":
		if snap.active() {
			cli.Exit("sst", cli.Configf("-snapshot-every/-restore apply to -system runs"))
		}
		err = run(*cfgPath, *dumpStats, ob, *timeline, *samplePd)
	case *sysPath != "":
		err = runSystem(*sysPath, ob, *parFlag, syncMode, snap)
	default:
		flag.Usage()
		os.Exit(cli.ExitConfig)
	}
	cli.Exit("sst", err)
}

// snapCfg carries the crash-safety options of a -system run.
type snapCfg struct {
	every   sim.Time   // snapshot interval in simulated time (0 = off)
	out     string     // snapshot file written at each interval
	restore string     // snapshot file to resume from ("" = fresh run)
	fs      iofault.FS // host-storage seam; nil = the real disk
}

// active reports whether the run needs the snapshot-capable execution
// path.
func (s snapCfg) active() bool { return s.every > 0 || s.restore != "" }

// fsys resolves the snapshot storage seam: the crash-point harness
// substitutes an iofault.MemFS, production runs use the disk.
func (s snapCfg) fsys() iofault.FS {
	if s.fs != nil {
		return s.fs
	}
	return iofault.Disk
}

// attachTracer installs a ring tracer on the engine when requested.
func (ob obsFlags) attachTracer(engine *sim.Engine) *obs.Tracer {
	if ob.traceOut == "" {
		return nil
	}
	t := obs.NewTracer(ob.traceCap)
	engine.SetTracer(t)
	return t
}

// flush writes the trace and metrics files.
func (ob obsFlags) flush(tracer *obs.Tracer, rep *obs.RunReport) error {
	if tracer != nil {
		write := tracer.WriteChromeJSON
		if strings.HasSuffix(ob.traceOut, ".csv") {
			write = tracer.WriteCSV
		}
		if err := writeFile(ob.traceOut, write); err != nil {
			return err
		}
	}
	if ob.metricsOut != "" && rep != nil {
		if err := writeFile(ob.metricsOut, rep.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSystem executes a multi-node communication-profile simulation,
// sequentially or (nranks > 1, or when snapshotting) partitioned over
// parallel ranks.
func runSystem(path string, ob obsFlags, nranks int, mode par.SyncMode, snap snapCfg) error {
	sys, err := config.LoadSystemFile(path)
	if err != nil {
		return cli.Configf("%v", err)
	}
	topo, err := sys.Topo.Build()
	if err != nil {
		return cli.Configf("%v", err)
	}
	netCfg, err := sys.Net.ToNetConfig()
	if err != nil {
		return cli.Configf("%v", err)
	}
	var profile workload.CommProfile
	switch sys.App {
	case "cth":
		profile = workload.CTHProfile
	case "sage":
		profile = workload.SAGEProfile
	case "charon":
		profile = workload.CharonProfile
	case "xnobel":
		profile = workload.XNOBELProfile
	default:
		return cli.Configf("unknown app %q", sys.App)
	}
	if sys.Steps > 0 {
		profile.Steps = sys.Steps
	}
	ranks := sys.Ranks
	if ranks == 0 {
		ranks = topo.NumNodes()
	}
	// Snapshot/restore rides on the partitioned path (its runner owns the
	// quiescent barriers snapshots are taken at); it works at -par 1 too.
	if nranks > 1 || snap.active() {
		return runSystemPar(sys.Name, topo, netCfg, profile, ranks, ob, nranks, mode, snap)
	}
	engine := sim.NewEngine()
	net, err := noc.NewNetwork(engine, "net", topo, netCfg, nil)
	if err != nil {
		return err
	}
	app, err := workload.NewApp(engine, profile.Name, net, profile.Scripts(ranks))
	if err != nil {
		return err
	}
	tracer := ob.attachTracer(engine)
	col := obs.NewCollector()
	col.Attach(engine)
	if tracer != nil {
		col.AttachTracer(tracer)
	}
	app.Start(nil)
	defer cli.OnInterrupt(engine.Interrupt)()
	engine.RunAll()
	if !app.Done() {
		if engine.Interrupted() {
			return fmt.Errorf("interrupted at %v: %w", engine.Now(), sim.ErrInterrupted)
		}
		return fmt.Errorf("application deadlocked at %v", engine.Now())
	}
	if err := ob.flush(tracer, col.Report()); err != nil {
		return err
	}
	energy := net.Energy(noc.DefaultPowerParams())
	fmt.Printf("system:          %s (%s, %d ranks)\n", sys.Name, topo.Name(), ranks)
	fmt.Printf("app:             %s, %d steps\n", profile.Name, profile.Steps)
	fmt.Printf("simulated time:  %.3f ms\n", app.Elapsed().Seconds()*1e3)
	fmt.Printf("messages:        %d (%.2f MB)\n", ranks*profile.Steps, float64(net.BytesDelivered())/1e6)
	fmt.Printf("mean msg latency: %.2f us\n", net.MessageLatencyMean()/1e6)
	fmt.Printf("max recv wait:   %.3f ms\n", app.MaxWaitTime().Seconds()*1e3)
	fmt.Printf("link utilization: mean %.3f, hottest %.3f\n", net.LinkUtilization(), net.HottestLinkUtilization())
	fmt.Printf("network energy:  %.3f J (%.2f W provisioned static)\n", energy.TotalJ(), energy.StaticW)
	return nil
}

// runSystemPar is the distributed variant of runSystem: the network fabric
// is internal/dnoc partitioned over the runner, and the application's rank
// scripts are grouped by home rank into one workload.App per partition.
// Results are bit-identical to the sequential run (asserted by
// internal/dnoc's and internal/par's tests). With tracing on, each rank's
// engine gets its own tracer and file; with snap active, the run is sliced
// into snapshot intervals and/or resumed from a prior snapshot.
func runSystemPar(name string, topo noc.Topology, netCfg noc.NetConfig,
	profile workload.CommProfile, ranks int, ob obsFlags, nranks int, mode par.SyncMode, snap snapCfg) error {
	runner, err := par.NewRunner(nranks)
	if err != nil {
		return err
	}
	runner.SetSyncMode(mode)
	if snap.active() || mode.Speculative() {
		// Must precede model construction: components register their
		// checkpoint state as they are built. The optimistic sync modes
		// need it even without -snapshot-every: rollback restores engine
		// checkpoints taken through the same codec.
		runner.EnableSnapshots()
	}
	d, err := dnoc.New(runner, topo, netCfg, nil)
	if err != nil {
		return err
	}
	scripts := profile.Scripts(ranks)
	// Group the app ranks by the partition that owns their node: one
	// workload.App per par-rank, each driving only its local NICs.
	// Script send/recv peers are global node ids, so the grouping is
	// invisible to the protocol.
	ports := make([][]workload.MessagePort, nranks)
	local := make([][]*workload.Script, nranks)
	for i, s := range scripts {
		home := d.RankOfNode(i)
		ports[home] = append(ports[home], d.NIC(i))
		local[home] = append(local[home], s)
	}
	apps := make([]*workload.App, 0, nranks)
	for p := 0; p < nranks; p++ {
		if len(local[p]) == 0 {
			continue
		}
		app, err := workload.NewAppOnPorts(runner.Rank(p).Engine(), fmt.Sprintf("%s.rank%d", profile.Name, p), ports[p], local[p])
		if err != nil {
			return err
		}
		apps = append(apps, app)
	}
	// One tracer per rank engine; each flushes to its own ".rankN" file.
	var tracers []*obs.Tracer
	if ob.traceOut != "" {
		tracers = make([]*obs.Tracer, nranks)
		for i := range tracers {
			tracers[i] = obs.NewTracer(ob.traceCap)
			runner.Rank(i).Engine().SetTracer(tracers[i])
		}
	}
	col := obs.NewCollector()
	col.Attach(runner.Rank(0).Engine())
	col.AttachRunner(runner)
	if tracers != nil {
		// The report's trace counters follow rank 0, like the engine row.
		col.AttachTracer(tracers[0])
	}
	if snap.restore != "" {
		raw, err := snap.fsys().ReadFile(snap.restore)
		if err != nil {
			return err
		}
		if err := runner.LoadFrom(bytes.NewReader(raw)); err != nil {
			return fmt.Errorf("restoring %s: %w", snap.restore, err)
		}
		// Restored apps resume mid-script; Start would re-launch them.
	} else {
		for _, app := range apps {
			app.Start(nil)
		}
	}
	defer cli.OnInterrupt(runner.Interrupt)()
	if snap.every > 0 {
		err = runSliced(runner, snap)
	} else {
		_, err = runner.RunAll()
	}
	if err != nil {
		return err
	}
	var elapsed sim.Time
	for _, app := range apps {
		if !app.Done() {
			return fmt.Errorf("application deadlocked (rank group %s)", app.Name())
		}
		if e := app.Elapsed(); e > elapsed {
			elapsed = e
		}
	}
	rep := col.Report()
	for i, tr := range tracers {
		write := tr.WriteChromeJSON
		if strings.HasSuffix(ob.traceOut, ".csv") {
			write = tr.WriteCSV
		}
		if err := writeFile(rankPath(ob.traceOut, i), write); err != nil {
			return err
		}
	}
	mOnly := obsFlags{metricsOut: ob.metricsOut}
	if err := mOnly.flush(nil, rep); err != nil {
		return err
	}
	m := runner.Metrics()
	fmt.Printf("system:          %s (%s, %d ranks over %d partitions, %s sync)\n",
		name, topo.Name(), ranks, nranks, m.Mode)
	fmt.Printf("app:             %s, %d steps\n", profile.Name, profile.Steps)
	fmt.Printf("simulated time:  %.3f ms\n", elapsed.Seconds()*1e3)
	fmt.Printf("messages:        %d (%.2f MB)\n", d.Messages(), float64(d.BytesDelivered())/1e6)
	fmt.Printf("mean msg latency: %.2f us\n", d.MeanLatencyPs()/1e6)
	fmt.Printf("sync windows:    %d (%d fast-forwards, lookahead %v, imbalance %.2f)\n",
		m.Windows, m.FastForwards, m.Lookahead, m.Imbalance)
	if mode.Speculative() {
		fmt.Printf("rollbacks:       %d (%d events replayed, %d fallbacks, %d promotions)\n",
			m.Rollbacks, m.Replayed, m.Fallbacks, m.Promotions)
	}
	return nil
}

// rankPath inserts a ".rankN" tag before path's extension, so a parallel
// run's per-rank trace files sit next to the name the user asked for:
// run.json -> run.rank0.json, run -> run.rank0.
func rankPath(path string, rank int) string {
	ext := ""
	if i := strings.LastIndexByte(path, '.'); i > strings.LastIndexByte(path, '/') {
		path, ext = path[:i], path[i:]
	}
	return fmt.Sprintf("%s.rank%d%s", path, rank, ext)
}

// runSliced advances the run one snapshot interval at a time, writing a
// consistent snapshot at each barrier. The write is atomic and durable
// (temp file, fsync, rename, parent-dir fsync — the shared iofault
// discipline), so a kill at any instant leaves either the previous
// complete snapshot or the new one, never a torn file and never a
// snapshot that evaporates with the page cache.
func runSliced(runner *par.Runner, snap snapCfg) error {
	for runner.NextEventTime() != sim.TimeInfinity {
		if _, err := runner.Run(runner.Now() + snap.every); err != nil {
			return err
		}
		if err := writeSnapshot(runner, snap); err != nil {
			return err
		}
	}
	return nil
}

// writeSnapshot saves the runner's state to snap.out via the shared
// atomic-replace helper. The encoder's many small writes are batched
// through one buffer so the storage sees a handful of large writes —
// which is also what keeps the crash-point count of a snapshot save
// independent of model size.
func writeSnapshot(runner *par.Runner, snap snapCfg) error {
	return iofault.WriteFileAtomicFunc(snap.fsys(), snap.out, func(w io.Writer) error {
		bw := bufio.NewWriterSize(w, 1<<20)
		if err := runner.SaveTo(bw); err != nil {
			return err
		}
		return bw.Flush()
	})
}

// resultTable renders a NodeResult as a metric/value table (the csv/table
// machine-readable form of the human summary).
func resultTable(res *core.NodeResult) *stats.Table {
	t := stats.NewTable("Run result: "+res.Name, "metric", "value")
	t.AddRow("machine", res.Name)
	t.AddRow("sim_seconds", res.Seconds)
	t.AddRow("retired", res.Retired)
	t.AddRow("flops", res.Flops)
	t.AddRow("ipc", res.IPC)
	t.AddRow("l1_hit_rate", res.L1HitRate)
	t.AddRow("l2_hit_rate", res.L2HitRate)
	t.AddRow("mem_bytes", res.MemBytes)
	t.AddRow("mem_gbs", res.MemBandwidth/1e9)
	t.AddRow("mem_row_hit_rate", res.MemRowHitRate)
	t.AddRow("node_watts", res.Budget.AvgPowerW())
	t.AddRow("node_cost_usd", res.Budget.TotalCostUSD())
	t.AddRow("area_mm2", res.AreaMM2)
	t.AddRow("temp_c", res.TempC)
	t.AddRow("mtbf_hours", res.MTBFHours)
	t.AddRow("events", res.Events)
	t.AddRow("peak_queue", res.PeakQueue)
	t.AddRow("host_seconds", res.HostSeconds)
	return t
}

func run(cfgPath string, dumpStats bool, ob obsFlags, timeline, samplePd string) error {
	cfg, err := config.LoadMachineFile(cfgPath)
	if err != nil {
		return cli.Configf("%v", err)
	}
	node, err := core.BuildNode(cfg)
	if err != nil {
		return cli.Configf("%v", err)
	}
	engine := node.Sim.Engine()
	defer cli.OnInterrupt(engine.Interrupt)()
	var sampler *stats.Sampler
	if timeline != "" {
		period, err := sim.ParseTime(samplePd)
		if err != nil {
			return err
		}
		sampler = stats.NewSampler(node.Reg, "dram.bytes", "dram.row_hits", "cpu.0.retired")
		sampler.Every(engine, period, 100_000)
	}
	tracer := ob.attachTracer(engine)
	col := obs.NewCollector()
	col.Attach(engine, node.Sim.Links()...)
	if tracer != nil {
		col.AttachTracer(tracer)
	}
	res, err := node.Run()
	if err != nil {
		return err
	}
	rep := col.Report()
	if err := ob.flush(tracer, rep); err != nil {
		return err
	}
	if sampler != nil {
		f, err := os.Create(timeline)
		if err != nil {
			return err
		}
		sampler.WriteCSV(f)
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("timeline:       %d samples -> %s\n", sampler.N(), timeline)
	}
	switch ob.format {
	case core.FormatJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Result  *core.NodeResult `json:"result"`
			Metrics *obs.RunReport   `json:"metrics"`
		}{res, rep}); err != nil {
			return err
		}
	case core.FormatCSV:
		if err := resultTable(res).WriteCSV(os.Stdout); err != nil {
			return err
		}
	default:
		fmt.Printf("machine:        %s\n", res.Name)
		fmt.Printf("simulated time: %.6f ms\n", res.Seconds*1e3)
		fmt.Printf("retired ops:    %d (%d flops)\n", res.Retired, res.Flops)
		fmt.Printf("aggregate IPC:  %.3f\n", res.IPC)
		if res.L1HitRate > 0 {
			fmt.Printf("L1 hit rate:    %.4f\n", res.L1HitRate)
		}
		if res.L2HitRate > 0 {
			fmt.Printf("L2 hit rate:    %.4f\n", res.L2HitRate)
		}
		fmt.Printf("DRAM traffic:   %.2f MB at %.2f GB/s (row hit %.3f)\n",
			float64(res.MemBytes)/1e6, res.MemBandwidth/1e9, res.MemRowHitRate)
		fmt.Printf("node power:     %.2f W (core %.3f J, mem %.3f J)\n",
			res.Budget.AvgPowerW(), res.Budget.CoreEnergyJ, res.Budget.MemEnergyJ)
		fmt.Printf("node cost:      $%.0f (die %.1f mm²)\n", res.Budget.TotalCostUSD(), res.AreaMM2)
		if res.TempC > 0 {
			fmt.Printf("die temperature: %.1f C (node MTBF %.2g h)\n", res.TempC, res.MTBFHours)
		}
		fmt.Printf("events:         %d (peak queue %d, %.3fs host, %.3g ev/s)\n",
			res.Events, res.PeakQueue, res.HostSeconds, rep.Engine.EventsPerSec)
	}
	if dumpStats {
		fmt.Println()
		if ob.format == core.FormatCSV {
			node.Reg.WriteCSV(os.Stdout)
		} else {
			node.Reg.Dump(os.Stdout)
		}
	}
	return nil
}
