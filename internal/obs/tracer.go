// Package obs is gosst's observability layer: an event tracer for
// sim.Engine, per-link traffic counters, run-level metrics reports and
// sweep-level collection. Everything here is opt-in — a simulation that
// never attaches a tracer or collector pays nothing beyond a nil check in
// the engine's dispatch loop.
package obs

import (
	"fmt"
	"io"
	"strings"
	"time"

	"sst/internal/sim"
	"sst/internal/stats"
)

// DefaultTraceCap is the ring capacity used when NewTracer is given a
// non-positive capacity: 64k spans, a few MB, enough for the tail of any
// run while bounding memory on long ones.
const DefaultTraceCap = 1 << 16

// Span is one traced event dispatch: where the simulation clock stood, the
// attributed component label, and how long the handler took on the host.
type Span struct {
	// At is the simulated time of the dispatch.
	At sim.Time
	// Label attributes the event to a component (via the engine's label
	// inheritance); empty means unattributed engine work.
	Label string
	// Dur is host wall time spent inside the handler.
	Dur time.Duration
}

// Tracer records dispatch spans into a bounded ring buffer; it implements
// sim.Tracer. Attach with engine.SetTracer(t). When the ring fills, the
// oldest spans are overwritten — the trace keeps the end of the run, where
// post-mortems usually look — and every overwrite is counted in Dropped,
// so a capped trace is never mistaken for a complete one.
//
// A Tracer belongs to one engine goroutine; it is not safe for concurrent
// use (neither is the engine).
type Tracer struct {
	spans   []Span
	next    int
	total   uint64
	dropped uint64
}

// NewTracer creates a tracer holding up to capacity spans; capacity <= 0
// selects DefaultTraceCap.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{spans: make([]Span, 0, capacity)}
}

// Event implements sim.Tracer.
func (t *Tracer) Event(at sim.Time, label string, dur time.Duration) {
	s := Span{At: at, Label: label, Dur: dur}
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, s)
	} else {
		t.spans[t.next] = s
		t.next = (t.next + 1) % len(t.spans)
		t.dropped++
	}
	t.total++
}

// Total returns the number of spans recorded over the tracer's lifetime,
// including spans already overwritten in the ring.
func (t *Tracer) Total() uint64 { return t.total }

// Dropped returns how many spans the ring cap overwrote: Total - Dropped
// spans are retained. A non-zero Dropped means Spans, Summary and the
// trace files describe only the tail of the run.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Spans returns the retained spans in recording order (oldest first). The
// slice is freshly allocated; the ring is unchanged.
func (t *Tracer) Spans() []Span {
	out := make([]Span, 0, len(t.spans))
	out = append(out, t.spans[t.next:]...)
	out = append(out, t.spans[:t.next]...)
	return out
}

// label returns the span's display label, naming unattributed spans.
func (s Span) label() string {
	if s.Label == "" {
		return "engine"
	}
	return s.Label
}

// WriteChromeJSON emits the trace in Chrome trace_event format (loadable
// in Perfetto and chrome://tracing). Spans are complete ("X") events:
// timestamps are the simulated clock in microseconds, durations are host
// time in microseconds — the horizontal axis is the simulation, the span
// width is what each handler cost to compute. Each label gets its own
// thread row, named via metadata events.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	tids := map[string]int{}
	first := true
	emit := func(s string) {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString(s)
	}
	for _, s := range t.Spans() {
		lb := s.label()
		tid, ok := tids[lb]
		if !ok {
			tid = len(tids) + 1
			tids[lb] = tid
			emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":1,"tid":%d,"args":{"name":%q}}`, tid, lb))
		}
		emit(fmt.Sprintf(`{"ph":"X","name":%q,"pid":1,"tid":%d,"ts":%.6f,"dur":%.3f}`,
			lb, tid, float64(s.At)/1e6, float64(s.Dur.Nanoseconds())/1e3))
	}
	sb.WriteString("\n]}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV emits the retained spans as time_ps,label,host_ns rows.
func (t *Tracer) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("time_ps,label,host_ns\n")
	for _, s := range t.Spans() {
		fmt.Fprintf(&sb, "%d,%s,%d\n", uint64(s.At), s.label(), s.Dur.Nanoseconds())
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Summary aggregates the retained spans per label: event count and total
// host time, ordered by first appearance. A capped trace says so in the
// title rather than passing the tail off as the whole run.
func (t *Tracer) Summary() *stats.Table {
	title := "Trace summary (retained spans)"
	if t.dropped > 0 {
		title = fmt.Sprintf("Trace summary (retained spans; %d oldest dropped by ring cap)", t.dropped)
	}
	tab := stats.NewTable(title,
		"label", "events", "host_ms")
	type agg struct {
		n   uint64
		dur time.Duration
	}
	order := []string{}
	byLabel := map[string]*agg{}
	for _, s := range t.Spans() {
		lb := s.label()
		a := byLabel[lb]
		if a == nil {
			a = &agg{}
			byLabel[lb] = a
			order = append(order, lb)
		}
		a.n++
		a.dur += s.Dur
	}
	for _, lb := range order {
		a := byLabel[lb]
		tab.AddRow(lb, a.n, a.dur.Seconds()*1e3)
	}
	return tab
}
