package par

// Coordinated parallel snapshots: between Run calls every rank is parked at
// a window barrier — no handler is executing, outboxes have been exchanged,
// and every staged remote event a window covered has been dispatched — so
// the runner's whole state is the per-rank engine states plus the staging
// heaps. That is exactly what Snapshot captures. Restore works against a
// freshly rebuilt runner (same partition, same build order) and reproduces
// the continuation bit-for-bit in either sync mode: the staging heaps carry
// their original (time, sent, srcRank, seq) keys, and each engine's
// sequence counter is restored, so the canonical merge order is unchanged.

import (
	"fmt"
	"io"
	"sort"

	"sst/internal/sim"
)

// snapVersion guards the runner-level body layout inside the sim container.
// v2 added the speculative-mode counters (rollbacks, replayed events,
// fallbacks, promotions), which must survive a kill-and-restore so a
// resumed run's summary matches an uninterrupted one byte for byte.
const snapVersion = 2

// EnableSnapshots opts every rank engine into checkpoint tracking and
// begins recording cross-rank port names (staged events are serialized by
// destination port name). It must be called before the model is built —
// before any Connect or component construction — and panics if links
// already exist.
func (r *Runner) EnableSnapshots() {
	if r.crossLinks > 0 {
		panic("par: EnableSnapshots after cross-rank links were connected")
	}
	if r.snapPorts == nil {
		r.snapPorts = make(map[string]*sim.Port)
		r.snapDups = make(map[string]bool)
	}
	for _, rk := range r.ranks {
		rk.sim.Engine().EnableSnapshots()
	}
}

// SnapshotsEnabled reports whether EnableSnapshots has been called.
func (r *Runner) SnapshotsEnabled() bool { return r.snapPorts != nil }

// recordSnapPort indexes a cross-rank port by name for staged-event
// serialization. Duplicate names are only an error if a staged event ever
// references one.
func (r *Runner) recordSnapPort(p *sim.Port) {
	name := p.Name()
	if _, dup := r.snapPorts[name]; dup {
		r.snapDups[name] = true
		return
	}
	r.snapPorts[name] = p
}

// NextEventTime returns the earliest pending work on any rank (engine queue
// or staged remote event), or TimeInfinity when the model is globally idle.
func (r *Runner) NextEventTime() sim.Time {
	next := sim.TimeInfinity
	for _, rk := range r.ranks {
		if t := rk.nextWork(); t < next {
			next = t
		}
	}
	return next
}

// Snapshot writes the runner's full state into enc. It must be called
// between Run calls (all ranks parked at a barrier) on a runner that was
// not interrupted: an interrupted runner returns before the exchange phase,
// leaving outboxes non-empty, and its ranks sit mid-window rather than at a
// consistent cut.
func (r *Runner) Snapshot(enc *sim.Encoder) error {
	if r.snapPorts == nil {
		return fmt.Errorf("par: snapshot on a runner without EnableSnapshots")
	}
	if r.interrupted.Load() {
		return fmt.Errorf("par: snapshot of an interrupted runner (ranks are mid-window; resume or rerun first)")
	}
	for _, rk := range r.ranks {
		if rk.sim.Engine().Interrupted() {
			return fmt.Errorf("par: snapshot with rank %d interrupted", rk.id)
		}
		if rk.err != nil {
			return fmt.Errorf("par: snapshot with rank %d in error state: %w", rk.id, rk.err)
		}
		for dst, ob := range rk.outboxes {
			if len(ob) != 0 {
				return fmt.Errorf("par: snapshot with rank %d outbox to %d non-empty (not at a window barrier)", rk.id, dst)
			}
		}
	}
	enc.U64(snapVersion)
	enc.U64(uint64(len(r.ranks)))
	enc.String(r.mode.String()) // informational: restore accepts either mode
	enc.Time(r.now)
	enc.U64(r.windows)
	enc.U64(r.fastForwards)
	for _, rk := range r.ranks {
		enc.U64(rk.sendSeq)
		enc.Time(rk.base)
		enc.U64(rk.events)
		enc.U64(rk.idleWindows)
		enc.U64(rk.skipped)
		enc.U64(rk.rollbacks)
		enc.U64(rk.replayed)
		enc.U64(rk.fallbacks)
		enc.U64(rk.promotions)
		// Staging heap, serialized in canonical order (the heap's own pop
		// order) so identical states write identical bytes.
		staged := append(remoteHeap(nil), rk.staging...)
		sort.Slice(staged, func(i, j int) bool { return remoteLess(&staged[i], &staged[j]) })
		enc.U64(uint64(len(staged)))
		for _, ev := range staged {
			name := ev.dst.Name()
			if r.snapDups[name] {
				return fmt.Errorf("par: staged event targets ambiguous port name %q (cross-rank link names must be unique for snapshots)", name)
			}
			if r.snapPorts[name] == nil {
				return fmt.Errorf("par: staged event targets unregistered port %q", name)
			}
			enc.String(name)
			enc.Time(ev.time)
			enc.Time(ev.sent)
			enc.U64(uint64(ev.srcRank))
			enc.U64(ev.seq)
			sim.EncodePayload(enc, ev.payload)
		}
		sub := sim.NewEncoder()
		if err := rk.sim.Engine().Snapshot(sub); err != nil {
			return fmt.Errorf("par: rank %d: %w", rk.id, err)
		}
		enc.Blob(sub.Bytes())
	}
	return nil
}

// Restore rebuilds the runner's state from a snapshot. The caller must
// first rebuild the identical model on a fresh runner (same rank count,
// same partition, same construction order) with EnableSnapshots on; the
// sync mode need not match the snapshotting runner's — continuations are
// bit-identical in either mode.
func (r *Runner) Restore(dec *sim.Decoder) error {
	if r.snapPorts == nil {
		return fmt.Errorf("par: restore on a runner without EnableSnapshots")
	}
	if v := dec.U64(); v != snapVersion {
		return fmt.Errorf("par: snapshot runner-state version %d, this build reads %d", v, snapVersion)
	}
	if n := dec.U64(); int(n) != len(r.ranks) {
		return fmt.Errorf("par: snapshot has %d ranks, runner has %d", n, len(r.ranks))
	}
	_ = dec.String() // mode at snapshot time; informational only
	r.now = dec.Time()
	r.windows = dec.U64()
	r.fastForwards = dec.U64()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("par: restore header: %w", err)
	}
	r.interrupted.Store(false)
	for _, rk := range r.ranks {
		rk.sendSeq = dec.U64()
		rk.base = dec.Time()
		rk.events = dec.U64()
		rk.idleWindows = dec.U64()
		rk.skipped = dec.U64()
		rk.rollbacks = dec.U64()
		rk.replayed = dec.U64()
		rk.fallbacks = dec.U64()
		rk.promotions = dec.U64()
		rk.err = nil
		rk.handled = 0
		rk.spec = nil
		rk.specOn = false
		for dst := range rk.outboxes {
			rk.outboxes[dst] = rk.outboxes[dst][:0]
		}
		rk.staging = rk.staging[:0]
		n := dec.U64()
		for i := uint64(0); i < n; i++ {
			name := dec.String()
			ev := remoteEvent{
				time:    dec.Time(),
				sent:    dec.Time(),
				srcRank: int(dec.U64()),
				seq:     dec.U64(),
			}
			payload, err := sim.DecodePayload(dec)
			if err != nil {
				return fmt.Errorf("par: restore rank %d staging: %w", rk.id, err)
			}
			if r.snapDups[name] {
				return fmt.Errorf("par: staged event targets ambiguous port name %q", name)
			}
			ev.dst = r.snapPorts[name]
			if ev.dst == nil {
				return fmt.Errorf("par: staged event targets port %q, which the rebuilt model does not have", name)
			}
			ev.payload = payload
			rk.staging.push(ev)
		}
		blob := dec.Blob()
		if err := dec.Err(); err != nil {
			return fmt.Errorf("par: restore rank %d: %w", rk.id, err)
		}
		if err := rk.sim.Engine().Restore(sim.NewDecoder(blob)); err != nil {
			return fmt.Errorf("par: restore rank %d: %w", rk.id, err)
		}
		rk.publish()
	}
	return dec.Err()
}

// SaveTo snapshots the runner into w using the sim package's versioned,
// checksummed file container.
func (r *Runner) SaveTo(w io.Writer) error {
	enc := sim.NewEncoder()
	if err := r.Snapshot(enc); err != nil {
		return err
	}
	return sim.WriteSnapshot(w, enc.Bytes())
}

// LoadFrom restores the runner from a container written by SaveTo.
func (r *Runner) LoadFrom(rd io.Reader) error {
	body, err := sim.ReadSnapshot(rd)
	if err != nil {
		return err
	}
	return r.Restore(sim.NewDecoder(body))
}
