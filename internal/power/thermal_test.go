package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThermalValidate(t *testing.T) {
	p := ThermalParams{}
	if err := p.Validate(); err == nil {
		t.Error("zero resistance accepted")
	}
	d := DefaultThermalParams()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLeakageDoubling(t *testing.T) {
	p := DefaultThermalParams()
	base := p.LeakageAt(2, p.RefC)
	if base != 2 {
		t.Fatalf("leakage at ref = %v", base)
	}
	hot := p.LeakageAt(2, p.RefC+p.LeakDoubleC)
	if math.Abs(hot-4) > 1e-12 {
		t.Fatalf("leakage one doubling up = %v, want 4", hot)
	}
	cold := p.LeakageAt(2, p.RefC-p.LeakDoubleC)
	if math.Abs(cold-1) > 1e-12 {
		t.Fatalf("leakage one doubling down = %v, want 1", cold)
	}
}

func TestSteadyStateFixedPoint(t *testing.T) {
	p := DefaultThermalParams()
	st := p.SteadyState(20, 1)
	if st.Throttled {
		t.Fatal("modest power throttled")
	}
	// Verify it is a genuine fixed point.
	want := p.AmbientC + p.ResistanceCPerW*st.TotalW
	if math.Abs(st.TempC-want) > 1e-3 {
		t.Fatalf("not a fixed point: T=%.3f, recomputed %.3f", st.TempC, want)
	}
	// Leakage must make the die hotter than dynamic power alone would
	// (the leakage magnitude itself depends on where T lands relative to
	// the RefC specification point).
	noLeak := p.AmbientC + p.ResistanceCPerW*20
	if st.TempC <= noLeak {
		t.Fatalf("leakage contribution missing: T=%.2f <= %.2f", st.TempC, noLeak)
	}
}

func TestSteadyStateMonotonicInPower(t *testing.T) {
	p := DefaultThermalParams()
	fn := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw) / 4
		b := a + float64(bRaw)/4 + 0.1
		ta := p.SteadyState(a, 0.5).TempC
		tb := p.SteadyState(b, 0.5).TempC
		return tb >= ta
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSteadyStateRunaway(t *testing.T) {
	p := DefaultThermalParams()
	st := p.SteadyState(200, 50)
	if !st.Throttled {
		t.Fatal("200 W through 0.6 C/W should exceed the limit")
	}
	if st.TempC > p.MaxC+1e-9 {
		t.Fatalf("throttled temperature %v above limit", st.TempC)
	}
}

func TestTransientApproachesSteadyState(t *testing.T) {
	p := DefaultThermalParams()
	tInf := p.AmbientC + p.ResistanceCPerW*30
	// After one time constant, ~63% of the way.
	tau := p.ResistanceCPerW * p.CapacitanceJPerC
	got := p.Transient(p.AmbientC, 30, tau)
	way := (got - p.AmbientC) / (tInf - p.AmbientC)
	if way < 0.60 || way > 0.66 {
		t.Fatalf("one-tau progress = %.3f, want ~0.632", way)
	}
	// After many time constants, at steady state.
	if far := p.Transient(p.AmbientC, 30, 50*tau); math.Abs(far-tInf) > 0.01 {
		t.Fatalf("long transient = %v, want %v", far, tInf)
	}
	// Cooling works too.
	if cool := p.Transient(100, 0, 50*tau); math.Abs(cool-p.AmbientC) > 0.01 {
		t.Fatalf("cooldown = %v, want ambient", cool)
	}
}

func TestFITArrhenius(t *testing.T) {
	r := DefaultReliabilityParams()
	base := r.FIT(100, r.RefC, 0)
	if math.Abs(base-50) > 1e-9 {
		t.Fatalf("FIT at ref = %v, want 50", base)
	}
	hot := r.FIT(100, r.RefC+30, 0)
	if hot <= base*2 {
		t.Fatalf("30C hotter should much more than double FIT: %v vs %v", hot, base)
	}
	cold := r.FIT(100, r.RefC-20, 0)
	if cold >= base {
		t.Fatal("cooler silicon should fail less")
	}
	withCycles := r.FIT(100, r.RefC, 20)
	if withCycles <= base {
		t.Fatal("thermal cycling should add failures")
	}
}

func TestMTBF(t *testing.T) {
	if MTBFHours(1e9) != 1 {
		t.Fatal("1e9 FIT should be 1 hour MTBF")
	}
	if !math.IsInf(MTBFHours(0), 1) {
		t.Fatal("zero FIT should be infinite MTBF")
	}
	// 10,000 nodes at 100 FIT each: 1e6 FIT system => 1000 h.
	if got := SystemMTBFHours(100, 10_000); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("system MTBF = %v, want 1000", got)
	}
	// System MTBF shrinks linearly with node count.
	if SystemMTBFHours(100, 1000) <= SystemMTBFHours(100, 10_000) {
		t.Fatal("MTBF should shrink with scale")
	}
}

// TestThermalRealisticNode sanity-checks the coupled models over the DSE
// node's operating range: a ~15-40 W node lands at plausible temperatures
// (55-90 C) with plausible MTBF.
func TestThermalRealisticNode(t *testing.T) {
	th := DefaultThermalParams()
	rel := DefaultReliabilityParams()
	for _, dynW := range []float64{10, 20, 40} {
		st := th.SteadyState(dynW, 1.5)
		if st.Throttled {
			t.Fatalf("%v W node throttled", dynW)
		}
		if st.TempC < 50 || st.TempC > 95 {
			t.Errorf("%v W node at %.1f C: outside plausible range", dynW, st.TempC)
		}
		fit := rel.FIT(130, st.TempC, 10)
		mtbf := MTBFHours(fit)
		if mtbf < 1e5 || mtbf > 1e8 {
			t.Errorf("node MTBF %.3g h implausible at %.1f C", mtbf, st.TempC)
		}
	}
}
