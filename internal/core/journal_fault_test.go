package core

// Fault injection for the journal's durability promise: a write or fsync
// failure is a first-class sweep failure (wrapping ErrJournal), never a
// silently skipped record — a sweep whose crash-safety layer is broken
// must fail loudly.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"sst/internal/iofault"
	"sst/internal/leakcheck"
)

// faultFile is a journalFile whose write or fsync fails on command.
type faultFile struct {
	failWrite bool
	failSync  bool
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.failWrite {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func (f *faultFile) Sync() error {
	if f.failSync {
		return errors.New("device ejected")
	}
	return nil
}

func (f *faultFile) Close() error { return nil }

// withFaultyJournal swaps the journalOpen seam for one whose file is ff,
// restoring it at cleanup.
func withFaultyJournal(t *testing.T, ff *faultFile) {
	t.Helper()
	orig := journalOpen
	journalOpen = func(iofault.FS, string, bool) (*Journal, error) {
		return &Journal{f: ff, done: make(map[string]journalEntry)}, nil
	}
	t.Cleanup(func() { journalOpen = orig })
}

func testPointIO() pointIO {
	return pointIO{
		key:  func(i int) string { return fmt.Sprintf("pt/%d", i) },
		save: func(i int) (json.RawMessage, error) { return json.RawMessage("1"), nil },
		load: func(int, json.RawMessage) error { return nil },
	}
}

func TestJournalWriteFailureFailsSweep(t *testing.T) {
	leakcheck.Check(t)
	withFaultyJournal(t, &faultFile{failWrite: true})
	opts := SweepOptions{Workers: 1, Journal: "ignored.jsonl"}
	errs, err := runPointsJournaled(opts, 2, testPointIO(), func(context.Context, int) error {
		return nil // the simulation is fine; only the journal is broken
	})
	if err == nil {
		t.Fatal("sweep with failing journal writes reported success")
	}
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("sweep error does not wrap ErrJournal: %v", err)
	}
	for i, e := range errs {
		if !errors.Is(e, ErrJournal) {
			t.Errorf("point %d error does not wrap ErrJournal: %v", i, e)
		}
	}
}

func TestJournalFsyncFailureFailsSweep(t *testing.T) {
	leakcheck.Check(t)
	withFaultyJournal(t, &faultFile{failSync: true})
	opts := SweepOptions{Workers: 1, Journal: "ignored.jsonl"}
	_, err := runPointsJournaled(opts, 1, testPointIO(), func(context.Context, int) error {
		return nil
	})
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("fsync failure does not wrap ErrJournal: %v", err)
	}
}

// TestJournalFailureJoinsPointFailure: when the point failed AND its
// failure record could not be written, neither error may be lost.
func TestJournalFailureJoinsPointFailure(t *testing.T) {
	leakcheck.Check(t)
	withFaultyJournal(t, &faultFile{failWrite: true})
	boom := errors.New("model diverged")
	opts := SweepOptions{Workers: 1, Journal: "ignored.jsonl"}
	errs, err := runPointsJournaled(opts, 1, testPointIO(), func(context.Context, int) error {
		return boom
	})
	if err == nil {
		t.Fatal("sweep reported success")
	}
	if !errors.Is(errs[0], boom) || !errors.Is(errs[0], ErrJournal) {
		t.Fatalf("point error must join the point failure and the journal failure, got: %v", errs[0])
	}
}

func TestOpenJournalUnwritablePath(t *testing.T) {
	if runtime.GOOS == "windows" || os.Getuid() == 0 {
		t.Skip("permission bits not enforced for this user")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })
	_, err := OpenJournal(filepath.Join(dir, "j.jsonl"), false)
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("unwritable journal path error does not wrap ErrJournal: %v", err)
	}
}

// TestJournalFailureDistinctFromPointFailure pins the exit-code contract
// at the core layer: a pure journal failure wraps ErrJournal but NOT the
// point-failure sentinel path callers map to exit 3 via errs — the cli
// layer then maps ErrJournal to exit 1 ahead of ErrPointFailed.
func TestJournalFailureDistinctFromPointFailure(t *testing.T) {
	withFaultyJournal(t, &faultFile{failWrite: true})
	opts := SweepOptions{Workers: 1, Journal: "ignored.jsonl"}
	_, err := runPointsJournaled(opts, 1, testPointIO(), func(context.Context, int) error {
		return nil
	})
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("want ErrJournal, got %v", err)
	}
	if errors.Is(err, ErrPanicked) || errors.Is(err, ErrQuarantined) {
		t.Fatalf("journal failure misclassified as a point pathology: %v", err)
	}
}
