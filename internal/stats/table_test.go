package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"sst/internal/sim"
)

// TestSamplerEveryUnknownStatPanics: a periodic sampler over a statistic
// that never gets registered fails loudly at its first tick — inside the
// run, where the bad name is still known — rather than silently recording
// zeros.
func TestSamplerEveryUnknownStatPanics(t *testing.T) {
	reg := NewRegistry()
	engine := sim.NewEngine()
	s := NewSampler(reg, "ghost.stat")
	s.Every(engine, sim.Nanosecond, 3)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unknown stat sampled without panic")
		}
		err, ok := r.(error)
		if !ok || !strings.Contains(err.Error(), "ghost.stat") {
			t.Fatalf("panic %v does not name the missing statistic", r)
		}
	}()
	engine.RunAll()
}

// TestSamplerEveryExhaustion: the sample budget is a hard stop — a workload
// that keeps running past it gains no extra rows, and the sampler's last
// row lands exactly at period*maxSamples.
func TestSamplerEveryExhaustion(t *testing.T) {
	reg := NewRegistry()
	c := reg.Scope("m").Counter("n")
	engine := sim.NewEngine()
	var work sim.Handler
	ticks := 0
	work = func(any) {
		c.Inc()
		ticks++
		if ticks < 1000 {
			engine.Schedule(sim.Nanosecond, work, nil)
		}
	}
	engine.Schedule(0, work, nil)
	s := NewSampler(reg, "m.n")
	s.Every(engine, 5*sim.Nanosecond, 4)
	engine.RunAll()
	if ticks != 1000 {
		t.Fatalf("workload stopped early: %d ticks", ticks)
	}
	if s.N() != 4 {
		t.Fatalf("samples = %d, want exactly 4", s.N())
	}
	last, _ := s.Row(3)
	if last != 20*sim.Nanosecond {
		t.Fatalf("last sample at %v, want 20ns", last)
	}
}

// TestTableNaNInfCells: failed sweep points leave NaN/Inf in derived
// metrics; the table must render them and still serialize as valid JSON
// (encoding/json rejects non-finite numbers, so cells go through as their
// rendered strings).
func TestTableNaNInfCells(t *testing.T) {
	tab := NewTable("edge cells", "name", "value")
	tab.AddRow("nan", math.NaN())
	tab.AddRow("posinf", math.Inf(1))
	tab.AddRow("neginf", math.Inf(-1))
	tab.AddRow("finite", 1.5)

	text := tab.String()
	for _, want := range []string{"NaN", "+Inf", "-Inf", "1.5"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}

	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON failed on non-finite cells: %v", err)
	}
	var doc struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON does not re-parse: %v", err)
	}
	if doc.Title != "edge cells" || len(doc.Rows) != 4 {
		t.Fatalf("round-trip lost shape: %+v", doc)
	}
	if doc.Rows[0][1] != "NaN" || doc.Rows[1][1] != "+Inf" || doc.Rows[2][1] != "-Inf" {
		t.Fatalf("non-finite cells mangled: %v", doc.Rows)
	}

	// CSV keeps them too.
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nan,NaN") {
		t.Fatalf("csv:\n%s", buf.String())
	}
}

// TestTableEmptyJSON: an empty table serializes to empty arrays, not null,
// so downstream parsers can index unconditionally.
func TestTableEmptyJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTable("empty").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Contains(s, "null") {
		t.Fatalf("empty table serialized nulls:\n%s", s)
	}
}
