package core

// Job-shaped entry points over the studies. A JobSpec is a study call as
// data: serializable, validatable, and re-runnable, which is exactly what
// a long-running sweep service needs — it persists the spec at admission,
// runs it through the normal SweepOptions machinery (journal, resume,
// retry, cache, arena, timeout), and after a crash re-runs the same spec
// with Resume set to converge on the same result. The CLIs and the
// service resolve specs through the study registry (see study.go);
// JobSpec's methods are thin delegations to it, so the registry is the
// single source of truth for which kinds exist and what they mean.

// JobSpec describes one sweep job. Kind selects the study from the
// registry (StudyKinds lists the valid values); the remaining fields
// parameterize it and unused ones are ignored. The zero values of
// optional fields resolve to the study defaults, so a minimal spec is a
// valid job.
type JobSpec struct {
	// Kind is the study family: "dse" (the memory-technology × issue-width
	// grid behind Figs. 10–12), "net" (the Fig. 9 injection-bandwidth
	// degradation study) or "net-power" (its energy roll-up).
	Kind string `json:"kind"`

	// dse: the grid axes and problem scale ("small" or "full"; default
	// "small" — a service should opt in to the expensive sizes).
	Apps   []string `json:"apps,omitempty"`
	Techs  []string `json:"techs,omitempty"`
	Widths []int    `json:"widths,omitempty"`
	Scale  string   `json:"scale,omitempty"`

	// net: machine size, timestep count and injection-bandwidth operating
	// points; zero values take DefaultNetStudy's shape.
	Nodes     int       `json:"nodes,omitempty"`
	Steps     int       `json:"steps,omitempty"`
	Fractions []float64 `json:"fractions,omitempty"`
}

// Validate checks the spec structurally — unknown kind, empty axes, bad
// scale — so admission can reject a job before persisting it. Semantic
// failures (an app name no frontend implements) surface later as point
// failures, like they do for the CLIs.
func (s JobSpec) Validate() error {
	def, err := studyFor(s.Kind)
	if err != nil {
		return err
	}
	return def.validate(s)
}

// Points reports how many design points the job will run, for progress
// and admission accounting. Zero for specs whose kind is unknown.
func (s JobSpec) Points() int {
	def, err := studyFor(s.Kind)
	if err != nil {
		return 0
	}
	return def.points(def.defaults(s))
}

// Run executes the job under opts — journal, resume, retry, cache, arena
// and cancellation all compose exactly as they do for the CLIs. The
// returned Result is non-nil whenever a partial grid exists, even on
// error, so a scheduler can persist what completed next to the failure.
func (s JobSpec) Run(opts SweepOptions) (Result, error) {
	study, err := NewStudy(s)
	if err != nil {
		return nil, err
	}
	return study.Run(opts)
}
