// Command sst-serve is the crash-tolerant sweep service: an HTTP/JSON
// daemon that accepts sweep jobs (the dse and net studies as data), runs
// them on a bounded worker pool with per-tenant fair queuing, and keeps
// every completed design point durable in a per-job fsync'd journal.
//
// Usage:
//
//	sst-serve -state DIR [-addr 127.0.0.1:8080] [-jobs 2] [-j N] [-queue 16]
//	          [-point-timeout 0] [-retries 1] [-retry-base 100ms]
//	          [-retry-max 5s] [-retry-jitter 0.5] [-retry-seed 1]
//	          [-retry-timeouts] [-drain 30s]
//	          [-cache] [-cache-size 4096] [-cache-policy lru|lfu|fifo|tinylfu]
//	          [-cache-shadow lfu,tinylfu] [-cache-file results.jsonl]
//
// API (see DESIGN.md §10 and the README quick-start):
//
//	POST   /v1/jobs              submit {tenant, spec, deadline_ms} → 202
//	GET    /v1/jobs[/{id}]       job status; /result for the CSV
//	GET    /v1/jobs/{id}/events  journal lines streamed as NDJSON
//	GET    /v1/jobs/{id}/metrics per-point host timings (capped ring)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/metrics           service metrics (?format=json|csv|table)
//	GET    /healthz, /readyz     liveness; readiness (503 while draining)
//
// A full queue sheds submissions with 429 + Retry-After. SIGINT/SIGTERM
// start a graceful drain: admission stops, in-flight points finish and
// are journaled, queued jobs stay durably queued, and the process exits
// 0 within -drain (130 if the budget expires first). After kill -9, a
// restart over the same -state directory resumes every incomplete job
// from its journal; at most the points in flight are re-run, and the
// final results are byte-identical to an uninterrupted run.
//
// The actual listen address is written to $state/addr once the socket is
// bound, so harnesses can use -addr 127.0.0.1:0.
//
// Exit codes: 0 clean shutdown, 1 failure, 2 configuration error, 130
// drain budget exceeded.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"sst/internal/cache"
	"sst/internal/cli"
	"sst/internal/core"
	"sst/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		state   = flag.String("state", "", "state directory for specs, journals and results (required)")
		jobs    = flag.Int("jobs", 2, "jobs running concurrently")
		jFlag   = flag.Int("j", 0, "sweep workers per job (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 16, "admission queue capacity across all tenants")
		ptimo   = flag.Duration("point-timeout", 0, "per-point wall-clock budget (0 = none)")
		retries = flag.Int("retries", 1, "attempt budget per point (1 = no retry of panics)")
		rbase   = flag.Duration("retry-base", 100*time.Millisecond, "backoff before the first retry")
		rmax    = flag.Duration("retry-max", 5*time.Second, "backoff cap")
		rjit    = flag.Float64("retry-jitter", 0.5, "backoff jitter spread (0..1)")
		rseed   = flag.Uint64("retry-seed", 1, "root seed of the deterministic backoff streams")
		rtimo   = flag.Bool("retry-timeouts", false, "retry a timed-out point once at a stretched deadline")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM")

		cacheFlag   = flag.Bool("cache", false, "share a result cache across jobs (overlapping grids hit)")
		cacheSize   = flag.Int("cache-size", 4096, "result cache capacity in design points")
		cachePolicy = flag.String("cache-policy", "lru", "eviction policy: fifo, lru, lfu or tinylfu")
		cacheShadow = flag.String("cache-shadow", "", "comma-separated policies to run as metadata-only hit-rate sensors")
		cacheFile   = flag.String("cache-file", "", "persist cached results to this JSONL file and warm-start from it (implies -cache)")
	)
	flag.Parse()
	if *state == "" {
		cli.Exit("sst-serve", cli.Configf("-state is required"))
	}
	sc, err := newSweepCache(*cacheFlag, *cacheSize, *cachePolicy, *cacheShadow, *cacheFile)
	if err != nil {
		cli.Exit("sst-serve", cli.Configf("%v", err))
	}
	cfg := serve.Config{
		StateDir: *state, JobWorkers: *jobs, PointWorkers: *jFlag,
		QueueCapacity: *queue, PointTimeout: *ptimo,
		Retry: core.RetryPolicy{
			MaxAttempts: *retries, BaseBackoff: *rbase, MaxBackoff: *rmax,
			Jitter: *rjit, Seed: *rseed, RetryTimeouts: *rtimo,
		},
		Cache: sc,
	}
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	err = run(ctx, *addr, cfg, *drain)
	if sc != nil {
		if cerr := sc.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	cli.Exit("sst-serve", err)
}

// newSweepCache builds the shared result cache from the -cache* flags;
// nil when caching is off. A -cache-file implies -cache.
func newSweepCache(enabled bool, size int, policy, shadow, file string) (*cache.Cache, error) {
	if !enabled && file == "" {
		return nil, nil
	}
	pol, err := cache.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	shadows, err := cache.ParsePolicies(shadow)
	if err != nil {
		return nil, err
	}
	return core.NewSweepCache(size, pol, shadows, file)
}

// run serves until ctx is cancelled (SIGINT/SIGTERM), then drains: the
// listener closes, in-flight jobs finish their running points and
// journal them, queued jobs stay durably queued. A nil return is the
// clean-exit contract supervisors rely on; exceeding the drain budget
// returns an error mapping to exit 130.
func run(ctx context.Context, addr string, cfg serve.Config, drainBudget time.Duration) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return cli.Configf("%v", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return cli.Configf("listen %s: %v", addr, err)
	}
	// Publish the bound address for harnesses that passed port 0.
	if err := os.WriteFile(filepath.Join(cfg.StateDir, "addr"), []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		ln.Close()
		return err
	}
	srv.Start()
	hs := serve.NewHTTPServer(srv.Handler(), 0)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "sst-serve: listening on %s (state %s)\n", ln.Addr(), cfg.StateDir)

	select {
	case err := <-errc:
		srv.Drain(drainBudget)
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "sst-serve: draining (budget %v)\n", drainBudget)
	// Drain jobs first: that closes every job's done channel, which ends
	// the long-lived /events streams Shutdown would otherwise wait on.
	derr := srv.Drain(drainBudget)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if serr := hs.Shutdown(shutCtx); serr != nil {
		hs.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	return derr
}
