package cpu

import (
	"testing"

	"sst/internal/frontend"
	"sst/internal/isa"
	"sst/internal/mem"
	"sst/internal/sim"
)

func TestOoOIntThroughput(t *testing.T) {
	r := newRig(t, 0)
	c, err := NewOoO(r.engine, r.clock, DefaultConfig("c", 4), intStream(4000), r.mem, r.reg.Scope("c"))
	if err != nil {
		t.Fatal(err)
	}
	runCore(t, r, c)
	if c.Retired() != 4000 {
		t.Fatalf("retired = %d", c.Retired())
	}
	if ipc := c.IPC(); ipc < 3.5 || ipc > 4.1 {
		t.Errorf("4-wide OoO int IPC = %.2f, want ~4", ipc)
	}
	if c.ROBSize() != 128 {
		t.Errorf("ROB size = %d, want 32*width", c.ROBSize())
	}
}

// TestOoOMLPAtWidthOne is the defining behavior: a 1-wide OoO core with a
// deep load queue overlaps independent misses that serialize a blocking
// in-order core — even when each load's value is consumed immediately.
func TestOoOMLPAtWidthOne(t *testing.T) {
	mkOps := func() []frontend.Op {
		ops := make([]frontend.Op, 0, 512)
		for i := 0; i < 256; i++ {
			dst := uint8(1 + i%16)
			ops = append(ops,
				frontend.Op{Class: frontend.ClassLoad, Addr: uint64(i * 4096), Size: 8, Dst: dst},
				frontend.Op{Class: frontend.ClassInt, Src1: dst, Dst: 31},
			)
		}
		return ops
	}
	lat := 200 * sim.Nanosecond
	cfg := DefaultConfig("c", 1)
	cfg.LoadQ = 16

	rIn := newRig(t, lat)
	inorder, _ := NewInOrder(rIn.engine, rIn.clock, cfg, &frontend.SliceStream{Ops: mkOps()}, rIn.mem, rIn.reg.Scope("c"))
	runCore(t, rIn, inorder)
	tIn := rIn.engine.Now()

	rOoO := newRig(t, lat)
	ooo, err := NewOoO(rOoO.engine, rOoO.clock, cfg, &frontend.SliceStream{Ops: mkOps()}, rOoO.mem, rOoO.reg.Scope("c"))
	if err != nil {
		t.Fatal(err)
	}
	runCore(t, rOoO, ooo)
	tOoO := rOoO.engine.Now()

	if tOoO*3 > tIn {
		t.Errorf("1-wide OoO (%v) should be >=3x faster than blocking in-order (%v) on consumed loads", tOoO, tIn)
	}
}

func TestOoODependenceChainSerializes(t *testing.T) {
	r := newRig(t, 0)
	ops := make([]frontend.Op, 2000)
	for i := range ops {
		dst := uint8(1 + i%2)
		src := uint8(1 + (i+1)%2)
		ops[i] = frontend.Op{Class: frontend.ClassInt, Dst: dst, Src1: src}
	}
	c, _ := NewOoO(r.engine, r.clock, DefaultConfig("c", 8), &frontend.SliceStream{Ops: ops}, r.mem, r.reg.Scope("c"))
	runCore(t, r, c)
	if ipc := c.IPC(); ipc > 1.2 {
		t.Errorf("dependence-chain IPC = %.2f on 8-wide OoO, want ~1", ipc)
	}
}

func TestOoOROBSizeBoundsMLP(t *testing.T) {
	// Independent loads against slow memory: runtime should scale down
	// with the window (ROB/LQ), the classic window-MLP result.
	lat := 400 * sim.Nanosecond
	run := func(width, lq int) sim.Time {
		r := newRig(t, lat)
		ops := make([]frontend.Op, 256)
		for i := range ops {
			ops[i] = frontend.Op{Class: frontend.ClassLoad, Addr: uint64(i * 4096), Size: 8, Dst: uint8(1 + i%30)}
		}
		cfg := DefaultConfig("c", width)
		cfg.LoadQ = lq
		c, err := NewOoO(r.engine, r.clock, cfg, &frontend.SliceStream{Ops: ops}, r.mem, nil)
		if err != nil {
			t.Fatal(err)
		}
		runCore(t, r, c)
		return r.engine.Now()
	}
	small := run(1, 2)
	big := run(1, 8) // same width, deeper queue: window effect only
	if big*3 > small {
		t.Errorf("deep window (%v) should be >=3x faster than shallow (%v)", big, small)
	}
}

func TestOoOMispredictStallsFetch(t *testing.T) {
	r := newRig(t, 0)
	ops := make([]frontend.Op, 2000)
	for i := range ops {
		ops[i] = frontend.Op{Class: frontend.ClassBranch, PC: 0x40, Taken: i%2 == 0}
	}
	c, _ := NewOoO(r.engine, r.clock, DefaultConfig("c", 4), &frontend.SliceStream{Ops: ops}, r.mem, nil)
	runCore(t, r, c)
	if c.Mispredicts() < 500 {
		t.Errorf("mispredicts = %d", c.Mispredicts())
	}
	if ipc := c.IPC(); ipc > 0.6 {
		t.Errorf("IPC = %.2f despite alternating branches", ipc)
	}
}

func TestOoOStoresDrain(t *testing.T) {
	r := newRig(t, 300*sim.Nanosecond)
	ops := []frontend.Op{{Class: frontend.ClassStore, Addr: 64, Size: 8}}
	c, _ := NewOoO(r.engine, r.clock, DefaultConfig("c", 2), &frontend.SliceStream{Ops: ops}, r.mem, nil)
	runCore(t, r, c)
	if r.engine.Now() < 300*sim.Nanosecond {
		t.Errorf("finished at %v before the posted store drained", r.engine.Now())
	}
}

func TestOoOExecutionDrivenCorrectness(t *testing.T) {
	// Run a real program: architectural results must be exact even
	// though timing reorders execution (the interpreter is the oracle).
	src := `
		addi r1, r0, 0
		addi r2, r0, 1
		li   r3, 2001
	loop:
		add  r1, r1, r2
		addi r2, r2, 1
		blt  r2, r3, loop
		halt
	`
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	stream := frontend.NewExecStream(isa.NewMachine(p), 0)
	r := newRig(t, 50*sim.Nanosecond)
	l1, err := mem.NewCache(r.engine, mem.CacheConfig{
		Name: "l1", SizeBytes: 16 << 10, LineBytes: 64, Assoc: 4,
		HitLatency: sim.Nanosecond, MSHRs: 8, WriteBack: true,
	}, r.mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewOoO(r.engine, r.clock, DefaultConfig("cpu", 4), stream, l1, nil)
	if err != nil {
		t.Fatal(err)
	}
	runCore(t, r, c)
	if stream.Err() != nil {
		t.Fatal(stream.Err())
	}
	if got := stream.Machine().Reg(1); got != 2000*2001/2 {
		t.Fatalf("sum = %d", got)
	}
}

func TestOoOIsCore(t *testing.T) {
	var _ Core = (*OoO)(nil)
}
