// Package config implements gosst's machine-description layer — the
// Abstract Machine Model (AMM) files that SST-style simulators are driven
// by. A MachineConfig names a node architecture (cores, caches, memory) and
// a workload; a SystemConfig names a multi-node machine (topology, network
// parameters) and a communication profile. Both load from JSON with full
// validation, and convert into the concrete component configurations of the
// cpu, mem, dram and noc packages.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"sst/internal/cpu"
	"sst/internal/dram"
	"sst/internal/mem"
	"sst/internal/noc"
	"sst/internal/sim"
)

// ParseSize parses "32KB", "4MB", "64" (bytes), "2GB" into a byte count.
// Units are binary (KB = 1024).
func ParseSize(s string) (int, error) {
	s = strings.TrimSpace(s)
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if c >= '0' && c <= '9' {
			break
		}
		i--
	}
	num, unit := s[:i], strings.ToUpper(strings.TrimSpace(s[i:]))
	v, err := strconv.Atoi(num)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("config: bad size %q", s)
	}
	var shift uint
	switch unit {
	case "", "B":
		return v, nil
	case "KB", "K", "KIB":
		shift = 10
	case "MB", "M", "MIB":
		shift = 20
	case "GB", "G", "GIB":
		shift = 30
	default:
		return 0, fmt.Errorf("config: bad size unit in %q", s)
	}
	out := v << shift
	if out>>shift != v {
		return 0, fmt.Errorf("config: size %q overflows", s)
	}
	return out, nil
}

// CPUSpec describes a core in AMM form.
type CPUSpec struct {
	// Kind is "inorder", "superscalar", "ooo" or "threaded".
	Kind string `json:"kind"`
	// Freq is e.g. "2GHz".
	Freq string `json:"freq"`
	// Width is the issue width (superscalar).
	Width int `json:"width,omitempty"`
	// Threads is the hardware thread count (threaded).
	Threads int `json:"threads,omitempty"`
	// FloatLat, IntLat and BranchPenalty in cycles (0 = defaults).
	IntLat        uint64 `json:"int_lat,omitempty"`
	FloatLat      uint64 `json:"float_lat,omitempty"`
	BranchPenalty uint64 `json:"branch_penalty,omitempty"`
	LoadQ         int    `json:"loadq,omitempty"`
	StoreQ        int    `json:"storeq,omitempty"`
	// Predictor sizes the 2-bit table; 0 means a perfect predictor.
	Predictor int `json:"predictor,omitempty"`
	// ROB sizes the out-of-order window ("ooo" kind only).
	ROB int `json:"rob,omitempty"`
}

// ToCoreConfig converts to the cpu package's configuration.
func (s CPUSpec) ToCoreConfig(name string) (cpu.Config, error) {
	freq, err := sim.ParseHz(s.Freq)
	if err != nil {
		return cpu.Config{}, fmt.Errorf("config: cpu freq: %w", err)
	}
	cfg := cpu.Config{
		Name: name, Freq: freq, Width: s.Width, Threads: s.Threads,
		IntLat: sim.Cycle(s.IntLat), FloatLat: sim.Cycle(s.FloatLat),
		BranchPenalty:    sim.Cycle(s.BranchPenalty),
		LoadQ:            s.LoadQ,
		StoreQ:           s.StoreQ,
		PredictorEntries: s.Predictor,
		ROB:              s.ROB,
	}
	switch s.Kind {
	case "inorder", "superscalar", "ooo", "threaded":
	case "":
		return cpu.Config{}, fmt.Errorf("config: cpu kind missing")
	default:
		return cpu.Config{}, fmt.Errorf("config: unknown cpu kind %q", s.Kind)
	}
	if err := cfg.Validate(); err != nil {
		return cpu.Config{}, err
	}
	return cfg, nil
}

// CacheSpec describes one cache level in AMM form.
type CacheSpec struct {
	Size  string `json:"size"`
	Line  int    `json:"line,omitempty"` // default 64
	Assoc int    `json:"assoc"`
	// HitLat in core-clock cycles.
	HitLat uint64 `json:"hit_lat"`
	MSHRs  int    `json:"mshrs,omitempty"`
	// Policy is "writeback" (default) or "writethrough".
	Policy string `json:"policy,omitempty"`
	// Repl is "lru" (default), "fifo" or "random".
	Repl     string `json:"repl,omitempty"`
	Prefetch bool   `json:"prefetch,omitempty"`
	// PrefetchDeg is how many lines ahead the prefetcher runs (default 1).
	PrefetchDeg int `json:"prefetch_degree,omitempty"`
}

// ToCacheConfig converts to the mem package's configuration; hit latency is
// converted from cycles at the core frequency.
func (s CacheSpec) ToCacheConfig(name string, coreFreq sim.Hz) (mem.CacheConfig, error) {
	size, err := ParseSize(s.Size)
	if err != nil {
		return mem.CacheConfig{}, err
	}
	line := s.Line
	if line == 0 {
		line = 64
	}
	var repl mem.ReplKind
	switch s.Repl {
	case "", "lru":
		repl = mem.LRU
	case "fifo":
		repl = mem.FIFO
	case "random":
		repl = mem.RandomRepl
	default:
		return mem.CacheConfig{}, fmt.Errorf("config: cache %s: unknown replacement %q", name, s.Repl)
	}
	wb := true
	switch s.Policy {
	case "", "writeback":
	case "writethrough":
		wb = false
	default:
		return mem.CacheConfig{}, fmt.Errorf("config: cache %s: unknown policy %q", name, s.Policy)
	}
	cfg := mem.CacheConfig{
		Name:             name,
		SizeBytes:        size,
		LineBytes:        line,
		Assoc:            s.Assoc,
		HitLatency:       coreFreq.CycleTime(sim.Cycle(s.HitLat)),
		MSHRs:            s.MSHRs,
		WriteBack:        wb,
		Repl:             repl,
		PrefetchNextLine: s.Prefetch,
		PrefetchDegree:   s.PrefetchDeg,
	}
	if err := cfg.Validate(); err != nil {
		return mem.CacheConfig{}, err
	}
	return cfg, nil
}

// MemSpec selects a DRAM technology.
type MemSpec struct {
	// Preset names a dram technology ("ddr3-1333", "gddr5-4000", ...).
	Preset   string `json:"preset"`
	Channels int    `json:"channels,omitempty"`
	// Scheduler overrides: "fcfs" or "fr-fcfs".
	Scheduler string `json:"scheduler,omitempty"`
	// Mapping overrides: "interleave" or "sequential".
	Mapping string `json:"mapping,omitempty"`
	// CapacityGB prices the memory for cost studies (default 16).
	CapacityGB float64 `json:"capacity_gb,omitempty"`
}

// ToDRAMConfig converts to the dram package's configuration.
func (s MemSpec) ToDRAMConfig() (dram.Config, error) {
	cfg, err := dram.Preset(s.Preset)
	if err != nil {
		return dram.Config{}, err
	}
	if s.Channels > 0 {
		cfg = cfg.WithChannels(s.Channels)
	}
	switch s.Scheduler {
	case "":
	case "fcfs":
		cfg = cfg.WithScheduler(dram.FCFS)
	case "fr-fcfs", "frfcfs":
		cfg = cfg.WithScheduler(dram.FRFCFS)
	default:
		return dram.Config{}, fmt.Errorf("config: unknown scheduler %q", s.Scheduler)
	}
	switch s.Mapping {
	case "":
	case "interleave":
		cfg = cfg.WithMapping(dram.MapInterleave)
	case "sequential":
		cfg = cfg.WithMapping(dram.MapSequential)
	default:
		return dram.Config{}, fmt.Errorf("config: unknown mapping %q", s.Mapping)
	}
	return cfg, nil
}

// Capacity returns the priced capacity in GB.
func (s MemSpec) Capacity() float64 {
	if s.CapacityGB <= 0 {
		return 16
	}
	return s.CapacityGB
}

// WorkloadSpec names a node workload.
type WorkloadSpec struct {
	// Kind: "hpccg", "lulesh", "stencil", "stream", "gups", "fea",
	// "minimd", or "synthetic".
	Kind string `json:"kind"`
	// N is the problem dimension (grid size / element count / updates).
	N int `json:"n,omitempty"`
	// Iters is the iteration count.
	Iters int `json:"iters,omitempty"`
	// Profile names a synthetic mix ("stream", "compute", "irregular").
	Profile string `json:"profile,omitempty"`
	// Ops bounds synthetic streams.
	Ops  uint64 `json:"ops,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
}

// Validate checks the workload shape and fills defaults.
func (s *WorkloadSpec) Validate() error {
	switch s.Kind {
	case "hpccg", "stencil":
		if s.N == 0 {
			s.N = 16
		}
	case "lulesh", "stream", "fea":
		if s.N == 0 {
			s.N = 4096
		}
	case "gups":
		if s.N == 0 {
			s.N = 100_000
		}
	case "minimd":
		if s.N == 0 {
			s.N = 2048
		}
	case "synthetic":
		if s.Profile == "" {
			return fmt.Errorf("config: synthetic workload needs a profile")
		}
		if s.Ops == 0 {
			s.Ops = 1_000_000
		}
	default:
		return fmt.Errorf("config: unknown workload kind %q", s.Kind)
	}
	if s.Iters == 0 {
		s.Iters = 1
	}
	return nil
}

// NodeSpec is one node's architecture.
type NodeSpec struct {
	Cores int        `json:"cores,omitempty"` // default 1
	CPU   CPUSpec    `json:"cpu"`
	L1    *CacheSpec `json:"l1,omitempty"`
	L2    *CacheSpec `json:"l2,omitempty"`
	Mem   MemSpec    `json:"memory"`
	// Coherence selects the multicore protocol fabric: "bus" (snooping,
	// default) or "directory" (point-to-point, scalable).
	Coherence string `json:"coherence,omitempty"`
}

// MachineConfig is a full single-node experiment description.
type MachineConfig struct {
	Name     string       `json:"name"`
	Node     NodeSpec     `json:"node"`
	Workload WorkloadSpec `json:"workload"`
	// MaxOps optionally truncates the workload stream.
	MaxOps uint64 `json:"max_ops,omitempty"`
}

// Validate checks the whole machine description.
func (m *MachineConfig) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("config: machine needs a name")
	}
	if m.Node.Cores == 0 {
		m.Node.Cores = 1
	}
	if m.Node.Cores < 0 || m.Node.Cores > 1024 {
		return fmt.Errorf("config: core count %d out of range", m.Node.Cores)
	}
	switch m.Node.Coherence {
	case "", "bus", "directory":
	default:
		return fmt.Errorf("config: unknown coherence fabric %q", m.Node.Coherence)
	}
	if m.Node.Coherence == "directory" && m.Node.Cores > 64 {
		return fmt.Errorf("config: directory supports at most 64 cores")
	}
	if _, err := m.Node.CPU.ToCoreConfig("cpu"); err != nil {
		return err
	}
	freq, _ := sim.ParseHz(m.Node.CPU.Freq)
	if m.Node.L1 != nil {
		if _, err := m.Node.L1.ToCacheConfig("l1", freq); err != nil {
			return err
		}
	}
	if m.Node.L2 != nil {
		if m.Node.L1 == nil {
			return fmt.Errorf("config: L2 without L1")
		}
		if _, err := m.Node.L2.ToCacheConfig("l2", freq); err != nil {
			return err
		}
	}
	if _, err := m.Node.Mem.ToDRAMConfig(); err != nil {
		return err
	}
	if c := m.Node.Mem.CapacityGB; math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
		return fmt.Errorf("config: node.memory.capacity_gb: %v must be finite and non-negative", c)
	}
	return m.Workload.Validate()
}

// TopoSpec names a network topology.
type TopoSpec struct {
	// Kind: "mesh2d", "torus", "fattree", "crossbar", "hypercube",
	// "butterfly".
	Kind string `json:"kind"`
	X    int    `json:"x,omitempty"`
	Y    int    `json:"y,omitempty"`
	Z    int    `json:"z,omitempty"`
	// Fat tree shape.
	Edges        int `json:"edges,omitempty"`
	NodesPerEdge int `json:"nodes_per_edge,omitempty"`
	Cores        int `json:"cores,omitempty"`
	// Crossbar size / hypercube dimension.
	N int `json:"n,omitempty"`
	// Butterfly shape.
	Switches int `json:"switches,omitempty"`
	Radix    int `json:"radix,omitempty"`
}

// Build constructs the topology.
func (s TopoSpec) Build() (noc.Topology, error) {
	switch s.Kind {
	case "mesh2d":
		return noc.NewMesh2D(s.X, s.Y)
	case "torus":
		z := s.Z
		if z == 0 {
			z = 1
		}
		return noc.NewTorus3D(s.X, s.Y, z)
	case "fattree":
		return noc.NewFatTree(s.Edges, s.NodesPerEdge, s.Cores)
	case "crossbar":
		return noc.NewCrossbar(s.N)
	case "hypercube":
		return noc.NewHypercube(s.N)
	case "butterfly":
		return noc.NewButterfly(s.Switches, s.Radix)
	default:
		return nil, fmt.Errorf("config: unknown topology %q", s.Kind)
	}
}

// NetSpec is the physical network description.
type NetSpec struct {
	// LinkBW and InjectBW are bytes/s.
	LinkBW   float64 `json:"link_bw"`
	InjectBW float64 `json:"inject_bw"`
	// LinkLat and RouterLat are time strings ("100ns").
	LinkLat   string `json:"link_lat"`
	RouterLat string `json:"router_lat,omitempty"`
	PacketB   int    `json:"packet_bytes,omitempty"`
}

// ToNetConfig converts to the noc package's configuration. Latencies and
// bandwidths are validated here, with the offending JSON field named in
// the error: a zero or negative link latency in particular would silently
// destroy the parallel runtime's lookahead (cross-partition links
// synchronize at the minimum link latency), so it is rejected at load time
// rather than surfacing later as a deadlocked or crawling simulation.
func (s NetSpec) ToNetConfig() (noc.NetConfig, error) {
	ll, err := sim.ParseTime(s.LinkLat)
	if err != nil {
		return noc.NetConfig{}, fmt.Errorf("config: network.link_lat: %w", err)
	}
	if ll <= 0 {
		return noc.NetConfig{}, fmt.Errorf(
			"config: network.link_lat: %q must be positive (it is the cross-partition lookahead)", s.LinkLat)
	}
	var rl sim.Time
	if s.RouterLat != "" {
		if rl, err = sim.ParseTime(s.RouterLat); err != nil {
			return noc.NetConfig{}, fmt.Errorf("config: network.router_lat: %w", err)
		}
	}
	for _, bw := range []struct {
		field string
		v     float64
	}{{"network.link_bw", s.LinkBW}, {"network.inject_bw", s.InjectBW}} {
		if math.IsNaN(bw.v) || math.IsInf(bw.v, 0) || bw.v <= 0 {
			return noc.NetConfig{}, fmt.Errorf("config: %s: %v must be positive and finite", bw.field, bw.v)
		}
	}
	cfg := noc.NetConfig{
		LinkBandwidth:      s.LinkBW,
		InjectionBandwidth: s.InjectBW,
		LinkLatency:        ll,
		RouterLatency:      rl,
		MaxPacketBytes:     s.PacketB,
	}
	if err := cfg.Validate(); err != nil {
		return noc.NetConfig{}, err
	}
	return cfg, nil
}

// SystemConfig is a multi-node experiment description.
type SystemConfig struct {
	Name string   `json:"name"`
	Topo TopoSpec `json:"topology"`
	Net  NetSpec  `json:"network"`
	// App names a communication profile: "cth", "sage", "charon",
	// "xnobel".
	App string `json:"app"`
	// Ranks defaults to the node count.
	Ranks int `json:"ranks,omitempty"`
	Steps int `json:"steps,omitempty"`
}

// Validate checks the system description.
func (s *SystemConfig) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("config: system needs a name")
	}
	if _, err := s.Topo.Build(); err != nil {
		return err
	}
	if _, err := s.Net.ToNetConfig(); err != nil {
		return err
	}
	switch s.App {
	case "cth", "sage", "charon", "xnobel":
	default:
		return fmt.Errorf("config: unknown app profile %q", s.App)
	}
	return nil
}

// LoadMachine reads and validates a machine config from JSON.
func LoadMachine(r io.Reader) (*MachineConfig, error) {
	var m MachineConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadMachineFile reads a machine config from a file path.
func LoadMachineFile(path string) (*MachineConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadMachine(f)
}

// LoadSystem reads and validates a system config from JSON.
func LoadSystem(r io.Reader) (*SystemConfig, error) {
	var s SystemConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSystemFile reads a system config from a file path.
func LoadSystemFile(path string) (*SystemConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSystem(f)
}
