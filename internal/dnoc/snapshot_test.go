package dnoc

// End-to-end crash safety for the distributed system stack: skeleton apps
// over the distributed fabric (the cmd/sst -system -par composition) are
// killed at a barrier, restored into a freshly built twin, and continued —
// and elapsed times, wait times, message counts and latency statistics must
// be bit-identical to the uninterrupted run.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"sst/internal/noc"
	"sst/internal/par"
	"sst/internal/sim"
	"sst/internal/workload"
)

var snapProfile = workload.CommProfile{
	Name: "mini", Steps: 3, ComputePerStep: 2 * sim.Microsecond,
	HaloBytes: 8 << 10, Neighbors: 1, AllReduces: 1,
}

// sysSig is one run's full observable outcome.
type sysSig struct {
	Elapsed []sim.Time
	Waits   []sim.Time
	Msgs    uint64
	Bytes   uint64
	Lat     float64
}

// buildSystem mirrors cmd/sst's runSystemPar: a snapshot-enabled runner, the
// distributed fabric, and one app per rank group.
func buildSystem(t *testing.T, nranks int, mode par.SyncMode) (*par.Runner, *Network, []*workload.App) {
	t.Helper()
	runner, err := par.NewRunner(nranks)
	if err != nil {
		t.Fatal(err)
	}
	runner.SetSyncMode(mode)
	runner.EnableSnapshots()
	topo, err := noc.NewTorus3D(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(runner, topo, noc.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	scripts := snapProfile.Scripts(topo.NumNodes())
	ports := make([][]workload.MessagePort, nranks)
	local := make([][]*workload.Script, nranks)
	for i, s := range scripts {
		home := d.RankOfNode(i)
		ports[home] = append(ports[home], d.NIC(i))
		local[home] = append(local[home], s)
	}
	var apps []*workload.App
	for p := 0; p < nranks; p++ {
		if len(local[p]) == 0 {
			continue
		}
		app, err := workload.NewAppOnPorts(runner.Rank(p).Engine(),
			fmt.Sprintf("%s.rank%d", snapProfile.Name, p), ports[p], local[p])
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
	}
	return runner, d, apps
}

func systemSig(t *testing.T, d *Network, apps []*workload.App) sysSig {
	t.Helper()
	sig := sysSig{Msgs: d.Messages(), Bytes: d.BytesDelivered(), Lat: d.MeanLatencyPs()}
	for _, app := range apps {
		if !app.Done() {
			t.Fatalf("app %s did not complete", app.Name())
		}
		sig.Elapsed = append(sig.Elapsed, app.Elapsed())
		sig.Waits = append(sig.Waits, app.MaxWaitTime())
	}
	return sig
}

// runSystemRef runs the system uninterrupted and returns its signature plus
// the latest app completion time (for deriving mid-run barriers).
func runSystemRef(t *testing.T, nranks int, mode par.SyncMode) (sysSig, sim.Time) {
	t.Helper()
	runner, d, apps := buildSystem(t, nranks, mode)
	for _, app := range apps {
		app.Start(nil)
	}
	if _, err := runner.RunAll(); err != nil {
		t.Fatal(err)
	}
	var end sim.Time
	for _, app := range apps {
		if e := app.Elapsed(); e > end {
			end = e
		}
	}
	return systemSig(t, d, apps), end
}

// runSystemKillRestore cuts the run at the barrier, snapshots, rebuilds the
// whole stack, restores (without Starting the apps), and finishes.
func runSystemKillRestore(t *testing.T, nranks int, mode par.SyncMode, barrier sim.Time) sysSig {
	t.Helper()
	r1, _, apps1 := buildSystem(t, nranks, mode)
	for _, app := range apps1 {
		app.Start(nil)
	}
	if _, err := r1.Run(barrier); err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if err := r1.SaveTo(&file); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	r2, d2, apps2 := buildSystem(t, nranks, mode)
	if err := r2.LoadFrom(bytes.NewReader(file.Bytes())); err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if _, err := r2.RunAll(); err != nil {
		t.Fatal(err)
	}
	return systemSig(t, d2, apps2)
}

// TestSystemKillRestore is the CLI composition's crash-safety property at
// every rank count under both sync modes, with barriers in the early and
// late thirds of the run.
func TestSystemKillRestore(t *testing.T) {
	rankCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		rankCounts = []int{1, 4}
	}
	for _, nranks := range rankCounts {
		for _, mode := range []par.SyncMode{par.SyncGlobal, par.SyncPairwise} {
			ref, end := runSystemRef(t, nranks, mode)
			if ref.Msgs == 0 || end == 0 {
				t.Fatal("reference system run did nothing; test is vacuous")
			}
			for _, barrier := range []sim.Time{end / 3, 2 * end / 3} {
				got := runSystemKillRestore(t, nranks, mode, barrier)
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("nranks=%d sync=%v barrier=%v: restored run diverged\n got %+v\nwant %+v",
						nranks, mode, barrier, got, ref)
				}
			}
		}
	}
}

// TestSnapshotBuilderMatchesPlain proves the snapshot-enabled fabric does
// not perturb results: the event-set scheduling path must deliver at the
// same times as both the plain distributed and the sequential noc runs.
func TestSnapshotBuilderMatchesPlain(t *testing.T) {
	topo, err := noc.NewTorus3D(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noc.DefaultConfig()
	sends := plan(topo.NumNodes(), 3)
	seq := runSequential(t, topo, cfg, sends)
	runner, err := par.NewRunner(4)
	if err != nil {
		t.Fatal(err)
	}
	runner.EnableSnapshots()
	d, err := New(runner, topo, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]sim.Time, len(sends))
	for i := 0; i < topo.NumNodes(); i++ {
		eng := runner.Rank(d.RankOfNode(i)).Engine()
		d.NIC(i).SetReceiver(func(src, size int, payload any) {
			out[payload.(int)] = eng.Now()
		})
	}
	for _, s := range sends {
		s := s
		eng := runner.Rank(d.RankOfNode(s.src)).Engine()
		eng.ScheduleAt(s.at, sim.PrioLink, func(any) {
			d.NIC(s.src).SendTimed(s.dst, s.size, s.id)
		}, nil)
	}
	if _, err := runner.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if out[i] != seq[i] {
			t.Fatalf("message %d delivered at %v with snapshots on vs %v sequential", i, out[i], seq[i])
		}
	}
}
