// Package dnoc runs an interconnection-network model distributed over the
// parallel runtime: routers are partitioned across par ranks, packets
// crossing a partition boundary travel through the runner's deterministic
// mailboxes, and per-hop timing is computed identically to the sequential
// noc.Network — so a distributed simulation produces the same per-message
// latencies as a single-engine one. This is the Structural Simulation
// Toolkit's headline parallel use case: the network is both the simulated
// system and the natural partitioning dimension.
//
// The conservative lookahead is the per-hop latency (link + router): a
// packet leaving rank A can never affect rank B sooner than that, exactly
// the property SST's conservative core exploits.
package dnoc

import (
	"fmt"

	"sst/internal/noc"
	"sst/internal/par"
	"sst/internal/sim"
	"sst/internal/stats"
)

// packet mirrors noc's wormhole-approximated transfer unit.
type packet struct {
	src, dst int
	size     int
	msgSize  int
	last     bool
	payload  any
	sentAt   sim.Time
	hops     int
}

// xfer is the cross-rank payload: a packet plus the router to continue at.
type xfer struct {
	p      *packet
	router int
}

// dlink is one directed link's serialization state, owned by the source
// router's rank.
type dlink struct {
	freeAt sim.Time
	bytes  uint64
}

// Network is the distributed interconnect.
type Network struct {
	runner *par.Runner
	topo   noc.Topology
	cfg    noc.NetConfig
	part   []int // router -> rank

	links map[[2]int]*dlink
	// xmit[a][b] is the sending port of the a→b rank channel.
	xmit map[int]map[int]*sim.Port
	nics []*NIC

	// Per-rank stats registries keep rank goroutines from sharing
	// counters; Totals() merges after the run.
	regs     []*stats.Registry
	messages []*stats.Counter
	bytes    []*stats.Counter
	msgLat   []*stats.Histogram
}

// New builds the distributed network on the runner. partition maps each
// router to a rank; nil partitions round-robin.
func New(runner *par.Runner, topo noc.Topology, cfg noc.NetConfig, partition func(router int) int) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LinkLatency+cfg.RouterLatency == 0 {
		return nil, fmt.Errorf("dnoc: zero per-hop latency leaves no lookahead")
	}
	if partition == nil {
		partition = func(r int) int { return r % runner.NumRanks() }
	}
	d := &Network{
		runner: runner,
		topo:   topo,
		cfg:    cfg,
		links:  make(map[[2]int]*dlink),
		xmit:   make(map[int]map[int]*sim.Port),
	}
	d.part = make([]int, topo.NumRouters())
	for r := range d.part {
		rank := partition(r)
		if rank < 0 || rank >= runner.NumRanks() {
			return nil, fmt.Errorf("dnoc: router %d partitioned to invalid rank %d", r, rank)
		}
		d.part[r] = rank
	}
	for _, l := range topo.Links() {
		d.links[[2]int{l[0], l[1]}] = &dlink{}
		d.links[[2]int{l[1], l[0]}] = &dlink{}
	}
	// One mailbox channel per ordered rank pair that any link crosses.
	hopLat := cfg.LinkLatency + cfg.RouterLatency
	ensure := func(a, b int) error {
		if a == b {
			return nil
		}
		if d.xmit[a] == nil {
			d.xmit[a] = make(map[int]*sim.Port)
		}
		if d.xmit[a][b] != nil {
			return nil
		}
		pa, pb, err := runner.Connect(fmt.Sprintf("dnoc-%d-%d", a, b), hopLat, a, b)
		if err != nil {
			return err
		}
		// Only a→b traffic uses this channel; the reverse direction
		// has its own.
		pb.SetHandler(func(payload any) {
			x := payload.(xfer)
			d.arrive(x.p, x.router)
		})
		pa.SetHandler(func(any) {})
		d.xmit[a][b] = pa
		return nil
	}
	for _, l := range topo.Links() {
		ra, rb := d.part[l[0]], d.part[l[1]]
		if err := ensure(ra, rb); err != nil {
			return nil, err
		}
		if err := ensure(rb, ra); err != nil {
			return nil, err
		}
	}
	// NIC→router is local (node attaches on its router's rank), but the
	// first hop may cross; packets enter at the source router, so no
	// extra channels are needed beyond router links.
	d.nics = make([]*NIC, topo.NumNodes())
	for i := range d.nics {
		d.nics[i] = &NIC{net: d, node: i, rank: d.part[topo.RouterOf(i)]}
	}
	d.regs = make([]*stats.Registry, runner.NumRanks())
	d.messages = make([]*stats.Counter, runner.NumRanks())
	d.bytes = make([]*stats.Counter, runner.NumRanks())
	d.msgLat = make([]*stats.Histogram, runner.NumRanks())
	for i := range d.regs {
		d.regs[i] = stats.NewRegistry()
		sc := d.regs[i].Scope(fmt.Sprintf("dnoc.%d", i))
		d.messages[i] = sc.Counter("messages")
		d.bytes[i] = sc.Counter("bytes")
		d.msgLat[i] = sc.Histogram("latency_ps")
	}
	return d, nil
}

// Topology returns the simulated topology.
func (d *Network) Topology() noc.Topology { return d.topo }

// RankOfNode returns the rank a node's NIC lives on; traffic generators
// must schedule that node's sends on that rank's engine.
func (d *Network) RankOfNode(node int) int { return d.part[d.topo.RouterOf(node)] }

// NIC returns node i's interface.
func (d *Network) NIC(i int) *NIC { return d.nics[i] }

// Messages returns total delivered messages across ranks (call after the
// run completes).
func (d *Network) Messages() uint64 {
	var n uint64
	for _, c := range d.messages {
		n += c.Count()
	}
	return n
}

// BytesDelivered returns total payload bytes delivered.
func (d *Network) BytesDelivered() uint64 {
	var n uint64
	for _, c := range d.bytes {
		n += c.Count()
	}
	return n
}

// MeanLatencyPs returns the byte-weighted mean message latency.
func (d *Network) MeanLatencyPs() float64 {
	var sum float64
	var n uint64
	for _, h := range d.msgLat {
		sum += h.Mean() * float64(h.N())
		n += h.N()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func serialize(size int, bw float64) sim.Time {
	t := sim.Time(float64(size) / bw * float64(sim.Second))
	if t == 0 {
		t = 1
	}
	return t
}

// engineOf returns the engine owning router r.
func (d *Network) engineOf(r int) *sim.Engine {
	return d.runner.Rank(d.part[r]).Engine()
}

// hop forwards the packet from router r on r's own rank.
func (d *Network) hop(p *packet, r int) {
	nxt := d.topo.Route(r, p.dst)
	if nxt < 0 {
		d.deliver(p)
		return
	}
	l := d.links[[2]int{r, nxt}]
	if l == nil {
		panic(fmt.Sprintf("dnoc: route %d->%d without a link", r, nxt))
	}
	eng := d.engineOf(r)
	now := eng.Now()
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	ser := serialize(p.size, d.cfg.LinkBandwidth)
	l.freeAt = start + ser
	l.bytes += uint64(p.size)
	p.hops++
	arrive := start + ser + d.cfg.LinkLatency + d.cfg.RouterLatency
	if d.part[nxt] == d.part[r] {
		eng.ScheduleAt(arrive, sim.PrioLink, func(any) { d.hop(p, nxt) }, nil)
		return
	}
	// Cross-rank: channel latency covers link+router; any queueing and
	// serialization ride as extra delay.
	port := d.xmit[d.part[r]][d.part[nxt]]
	port.SendDelayed(arrive-now-(d.cfg.LinkLatency+d.cfg.RouterLatency), xfer{p: p, router: nxt})
}

// arrive continues a packet on its new rank.
func (d *Network) arrive(p *packet, router int) {
	d.hop(p, router)
}

// deliver completes a packet at its destination NIC (on the local rank).
func (d *Network) deliver(p *packet) {
	nic := d.nics[p.dst]
	if !p.last {
		return
	}
	rank := nic.rank
	d.messages[rank].Inc()
	d.bytes[rank].Add(uint64(p.msgSize))
	d.msgLat[rank].Observe(uint64(d.engineOf(d.topo.RouterOf(p.dst)).Now() - p.sentAt))
	if nic.recv != nil {
		nic.recv(p.src, p.msgSize, p.payload)
	}
}

// NIC is a node's interface on its home rank. Send must be invoked from an
// event executing on that rank (the runner's partitioning rule).
type NIC struct {
	net    *Network
	node   int
	rank   int
	freeAt sim.Time
	recv   func(src, size int, payload any)
}

// Node returns the NIC's node id; Rank its home partition.
func (nc *NIC) Node() int { return nc.node }
func (nc *NIC) Rank() int { return nc.rank }

// SetReceiver installs the delivery callback (runs on the destination
// node's rank).
func (nc *NIC) SetReceiver(fn func(src, size int, payload any)) { nc.recv = fn }

// Send mirrors noc.NIC.Send: injection-bandwidth-limited segmentation into
// the fabric at the node's source router.
func (nc *NIC) Send(dst, size int, payload any, onSent func()) {
	d := nc.net
	eng := d.runner.Rank(nc.rank).Engine()
	now := eng.Now()
	if size <= 0 {
		size = 1
	}
	remaining := size
	injectAt := now
	if nc.freeAt > injectAt {
		injectAt = nc.freeAt
	}
	srcRouter := d.topo.RouterOf(nc.node)
	for remaining > 0 {
		pk := remaining
		if pk > d.cfg.MaxPacketBytes {
			pk = d.cfg.MaxPacketBytes
		}
		remaining -= pk
		p := &packet{
			src: nc.node, dst: dst, size: pk,
			last: remaining == 0, sentAt: now, msgSize: size,
		}
		if p.last {
			p.payload = payload
		}
		injectAt += serialize(pk, d.cfg.InjectionBandwidth)
		at := injectAt + d.cfg.LinkLatency
		if nc.node == dst {
			eng.ScheduleAt(at, sim.PrioLink, func(any) { d.deliver(p) }, nil)
			continue
		}
		eng.ScheduleAt(at, sim.PrioLink, func(any) { d.hop(p, srcRouter) }, nil)
	}
	nc.freeAt = injectAt
	if onSent != nil {
		eng.ScheduleAt(injectAt, sim.PrioLink, func(any) { onSent() }, nil)
	}
}
