package core

// Transient-failure retry for sweep points. A design point can fail for
// two reasons that say nothing about the design: a model bug that panics
// under a rare event interleaving, or a wedged simulation cut off by
// PointTimeout. Both are worth one more try before the point is written
// off — but retries must not cost determinism. The backoff schedule is
// therefore derived from the sweep seed and the point's index through the
// same named-stream construction the fault injectors use
// (fault.StreamSeed), so two runs of the same flaky sweep produce the same
// delays, the same journal bytes and the same tables. A point that keeps
// failing is quarantined: it is marked Failed after its attempt budget and
// never wedges a pool worker again, which is what lets a long-running
// sweep service survive a pathological design point.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"sst/internal/fault"
)

// ErrPanicked marks a per-point error that came from a recovered panic.
// Panics are the transient class the retry policy re-attempts: a model
// that panics under one event interleaving may complete under the next,
// and a model that panics deterministically exhausts its budget and is
// quarantined.
var ErrPanicked = errors.New("point panicked")

// ErrQuarantined marks a point that failed every attempt its retry policy
// allowed. The point is Failed in the grid like any other failure; the
// distinct sentinel lets schedulers (internal/serve) keep a quarantine
// list and report it.
var ErrQuarantined = errors.New("point quarantined")

// RetryPolicy configures per-point retry. The zero value disables retry
// entirely (one attempt, no quarantine wrapping), which keeps existing
// sweeps byte-identical to previous releases.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per point, including the
	// first run; <= 1 means panics are not retried.
	MaxAttempts int

	// BaseBackoff is the delay before the second attempt; each further
	// retry doubles it. Zero means retry immediately.
	BaseBackoff time.Duration

	// MaxBackoff caps the exponential growth when > 0.
	MaxBackoff time.Duration

	// Jitter spreads each backoff uniformly over
	// [1-Jitter/2, 1+Jitter/2) × the exponential delay. The spread is
	// drawn from a stream seeded by (Seed, point index), so it is
	// identical across runs of the same sweep.
	Jitter float64

	// Seed is the root seed of the backoff jitter streams.
	Seed uint64

	// RetryTimeouts grants a point that exceeded PointTimeout exactly one
	// extra attempt, run at TimeoutScale × the original deadline. One —
	// not MaxAttempts — because a wedged point usually stays wedged, and
	// the longer deadline is what distinguishes "slow" from "stuck".
	RetryTimeouts bool

	// TimeoutScale stretches the retried attempt's deadline; values <= 1
	// default to 2.
	TimeoutScale float64
}

// enabled reports whether the policy can ever re-run a point.
func (p RetryPolicy) enabled() bool {
	return p.MaxAttempts > 1 || p.RetryTimeouts
}

// backoff returns the delay before the retry that follows failed attempt a
// (1-based), jittered from the point's deterministic stream.
func (p RetryPolicy) backoff(a int, rng interface{ Float64() float64 }) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < a && d < 1<<40; i++ {
		d *= 2
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if d > 0 && p.Jitter > 0 {
		f := 1 + p.Jitter*(rng.Float64()-0.5)
		if f < 0 {
			f = 0
		}
		d = time.Duration(float64(d) * f)
	}
	return d
}

// RetryRecord describes one failed attempt of a design point: which
// attempt failed, how long the scheduler backed off before the next one,
// and the failure's first line. Records land in the sweep journal, so
// they must be deterministic: the backoff is seeded and the error text is
// truncated before any stack trace.
type RetryRecord struct {
	// Attempt is the 1-based attempt that failed.
	Attempt int `json:"attempt"`
	// BackoffUS is the delay before the next attempt, microseconds.
	BackoffUS int64 `json:"backoff_us"`
	// Err is the first line of the attempt's error.
	Err string `json:"err"`
}

// firstLine truncates s at its first newline — retry records and table
// cells keep the message, not the stack trace behind it.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// sleepCtx waits d, abandoning the wait (and returning false) when ctx is
// cancelled; a sweep being drained must not sit out a backoff.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runPointRetry runs one design point under the sweep's retry policy,
// returning the final error plus one RetryRecord per failed-then-retried
// attempt. Deterministic failures return after one attempt, untouched;
// transient ones (panics, and — once — PointTimeout expiry when the
// policy allows it) are re-run after a seeded backoff until they succeed
// or the budget runs out, at which point the final error additionally
// wraps ErrQuarantined.
func runPointRetry(ctx context.Context, i int, opts SweepOptions, fn func(ctx context.Context, i int) error) ([]RetryRecord, error) {
	pol := opts.Retry
	err := runPoint(ctx, i, opts.PointTimeout, fn)
	if err == nil || !pol.enabled() {
		return nil, err
	}
	maxAttempts := pol.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	rng := fault.NewStream(pol.Seed, fmt.Sprintf("retry/point/%d", i))
	var recs []RetryRecord
	attempt := 1
	timeoutRetried := false
	for {
		if ctx.Err() != nil {
			// The sweep itself is cancelled or out of time; the failure
			// stands and resume (or the next job run) will retry it.
			return recs, err
		}
		timeout := opts.PointTimeout
		isTimeout := opts.PointTimeout > 0 && errors.Is(err, context.DeadlineExceeded)
		switch {
		case isTimeout && pol.RetryTimeouts && !timeoutRetried:
			// One cheaper retry at a longer deadline: a point that is
			// merely slow completes, a wedged one fails again and is done.
			timeoutRetried = true
			scale := pol.TimeoutScale
			if scale <= 1 {
				scale = 2
			}
			timeout = time.Duration(float64(timeout) * scale)
		case errors.Is(err, ErrPanicked) && attempt < maxAttempts:
			// Plain transient retry.
		default:
			if attempt > 1 {
				err = fmt.Errorf("%w after %d attempts: %w", ErrQuarantined, attempt, err)
			}
			return recs, err
		}
		d := pol.backoff(attempt, rng)
		recs = append(recs, RetryRecord{Attempt: attempt, BackoffUS: d.Microseconds(), Err: firstLine(err.Error())})
		if !sleepCtx(ctx, d) {
			return recs, err
		}
		attempt++
		err = runPoint(ctx, i, timeout, fn)
		if err == nil {
			return recs, nil
		}
	}
}
