package config

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustMachine(t *testing.T, js string) *MachineConfig {
	t.Helper()
	m, err := LoadMachine(strings.NewReader(js))
	if err != nil {
		t.Fatalf("LoadMachine: %v", err)
	}
	return m
}

func mustHash(t *testing.T, m *MachineConfig) string {
	t.Helper()
	h, err := m.CanonicalHash()
	if err != nil {
		t.Fatalf("CanonicalHash: %v", err)
	}
	return h
}

func TestCanonicalHashStable(t *testing.T) {
	m := mustMachine(t, fuzzMachineSeed)
	h1 := mustHash(t, m)
	h2 := mustHash(t, m)
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if !strings.HasPrefix(h1, "m1:") || len(h1) != 3+64 {
		t.Errorf("unexpected hash shape %q", h1)
	}
}

func TestCanonicalHashFieldOrderInvariant(t *testing.T) {
	// Same machine with JSON keys in a different order.
	reordered := `{
  "workload": {"iters": 1, "n": 8192, "kind": "lulesh"},
  "node": {
    "memory": {"capacity_gb": 4, "channels": 1, "preset": "ddr3-1333"},
    "l2": {"prefetch_degree": 8, "prefetch": true, "mshrs": 32, "hit_lat": 10, "assoc": 8, "size": "256KB"},
    "l1": {"prefetch_degree": 2, "prefetch": true, "mshrs": 16, "hit_lat": 2, "assoc": 4, "size": "32KB"},
    "cpu": {"predictor": 1024, "storeq": 32, "loadq": 32, "width": 4, "freq": "3.2GHz", "kind": "superscalar"},
    "cores": 1
  },
  "name": "node-ddr3-w4"
}`
	a := mustHash(t, mustMachine(t, fuzzMachineSeed))
	b := mustHash(t, mustMachine(t, reordered))
	if a != b {
		t.Errorf("field order changed the hash: %s vs %s", a, b)
	}
}

func TestCanonicalHashDefaultedVsExplicit(t *testing.T) {
	// Defaults left implicit vs spelled out: cores=1, line=64, mshrs=8,
	// iters=1, coherence=bus, scheduler fr-fcfs is ddr3-1333's preset
	// default, capacity_gb=16.
	implicit := `{
  "name": "d",
  "node": {
    "cpu": {"kind": "inorder", "freq": "1GHz"},
    "l1": {"size": "32KB", "assoc": 4, "hit_lat": 2},
    "memory": {"preset": "ddr3-1333"}
  },
  "workload": {"kind": "stream"}
}`
	explicit := `{
  "name": "d",
  "node": {
    "cores": 1,
    "coherence": "bus",
    "cpu": {"kind": "inorder", "freq": "1GHz", "width": 1, "int_lat": 1, "float_lat": 4, "branch_penalty": 8, "loadq": 8, "storeq": 8, "threads": 1},
    "l1": {"size": "32KB", "line": 64, "assoc": 4, "hit_lat": 2, "mshrs": 8, "policy": "writeback", "repl": "lru"},
    "memory": {"preset": "ddr3-1333", "capacity_gb": 16}
  },
  "workload": {"kind": "stream", "n": 4096, "iters": 1}
}`
	a := mustHash(t, mustMachine(t, implicit))
	b := mustHash(t, mustMachine(t, explicit))
	if a != b {
		t.Errorf("defaulted vs explicit configs hash differently: %s vs %s", a, b)
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := mustHash(t, mustMachine(t, fuzzMachineSeed))
	mutate := func(name string, f func(m *MachineConfig)) {
		m := mustMachine(t, fuzzMachineSeed)
		f(m)
		if got := mustHash(t, m); got == base {
			t.Errorf("%s: mutation did not change the hash", name)
		}
	}
	mutate("name", func(m *MachineConfig) { m.Name = "other" })
	mutate("cores", func(m *MachineConfig) { m.Node.Cores = 2 })
	mutate("cpu width", func(m *MachineConfig) { m.Node.CPU.Width = 2 })
	mutate("cpu kind", func(m *MachineConfig) { m.Node.CPU.Kind = "ooo" })
	mutate("freq", func(m *MachineConfig) { m.Node.CPU.Freq = "2GHz" })
	mutate("l1 size", func(m *MachineConfig) { m.Node.L1.Size = "64KB" })
	mutate("l1 dropped", func(m *MachineConfig) { m.Node.L1, m.Node.L2 = nil, nil })
	mutate("l2 dropped", func(m *MachineConfig) { m.Node.L2 = nil })
	mutate("mem preset", func(m *MachineConfig) { m.Node.Mem.Preset = "ddr3-1600" })
	mutate("mem channels", func(m *MachineConfig) { m.Node.Mem.Channels = 2 })
	mutate("workload kind", func(m *MachineConfig) { m.Workload.Kind = "stream" })
	mutate("workload n", func(m *MachineConfig) { m.Workload.N = 16384 })
	mutate("workload seed", func(m *MachineConfig) { m.Workload.Seed = 7 })
	mutate("max ops", func(m *MachineConfig) { m.MaxOps = 1000 })
	mutate("coherence", func(m *MachineConfig) {
		m.Node.Cores = 4
		m.Node.Coherence = "directory"
	})
}

func TestCanonicalHashInvalidConfig(t *testing.T) {
	var m MachineConfig // no name, no cpu kind
	if _, err := m.CanonicalHash(); err == nil {
		t.Error("want error hashing an invalid config")
	}
	// Hashing must not mutate the caller's config.
	m2 := *mustMachine(t, `{"name":"d","node":{"cpu":{"kind":"inorder","freq":"1GHz"},"memory":{"preset":"ddr3-1333"}},"workload":{"kind":"stream"}}`)
	m2.Node.Cores = 0 // pretend pre-validation state
	_, _ = m2.CanonicalHash()
	if m2.Node.Cores != 0 {
		t.Error("CanonicalHash mutated its receiver")
	}
}

func TestCanonicalHashSystem(t *testing.T) {
	s, err := LoadSystem(strings.NewReader(fuzzSystemSeed))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(h1, "s1:") {
		t.Errorf("unexpected system hash shape %q", h1)
	}
	// Ranks defaulted vs explicit node count hash identically.
	s2 := *s
	s2.Ranks = 32 // 4×4×2 torus has 32 nodes
	h2, err := s2.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("defaulted vs explicit ranks hash differently")
	}
	s3 := *s
	s3.App = "sage"
	h3, err := s3.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("app change did not change the system hash")
	}
}

// FuzzConfigHash asserts canonical-hash stability under re-serialization:
// any config that loads must (a) hash deterministically, (b) hash the same
// after a marshal→unmarshal round trip (which re-orders nothing
// semantically but rewrites all JSON syntax), and (c) hash differently
// when a load-bearing field is changed.
func FuzzConfigHash(f *testing.F) {
	f.Add(fuzzMachineSeed)
	f.Add(`{"name":"x","node":{"cpu":{"kind":"inorder","freq":"1GHz"},"memory":{"preset":"ddr3-1333"}},"workload":{"kind":"stream"}}`)
	f.Add(`{"name":"x","node":{"cores":4,"coherence":"directory","cpu":{"kind":"ooo","freq":"2GHz","rob":64},"l1":{"size":"16KB","assoc":2,"hit_lat":1},"memory":{"preset":"gddr5-4000"}},"workload":{"kind":"gups"}}`)
	f.Add(`{"name":"x","node":{"cpu":{"kind":"threaded","freq":"1GHz","threads":4},"memory":{"preset":"ddr3-1066"}},"workload":{"kind":"synthetic","profile":"stream"}}`)
	f.Fuzz(func(t *testing.T, data string) {
		m, err := LoadMachine(strings.NewReader(data))
		if err != nil {
			return
		}
		h1, err := m.CanonicalHash()
		if err != nil {
			t.Fatalf("validated config fails CanonicalHash: %v", err)
		}
		if h2, _ := m.CanonicalHash(); h2 != h1 {
			t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
		}

		// Round trip through JSON: syntax normalizes, semantics identical.
		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		m2, err := LoadMachine(strings.NewReader(string(blob)))
		if err != nil {
			t.Fatalf("reload of marshaled config failed: %v", err)
		}
		if h2, err := m2.CanonicalHash(); err != nil || h2 != h1 {
			t.Fatalf("round-tripped config hashes %s (err %v), want %s", h2, err, h1)
		}

		// Changed fields change the hash.
		m3 := *m
		m3.Workload.Seed = m.Workload.Seed + 1
		if h3, err := m3.CanonicalHash(); err == nil && h3 == h1 {
			t.Fatal("seed change did not change the hash")
		}
		m4 := *m
		m4.Name = m.Name + "x"
		if h4, err := m4.CanonicalHash(); err == nil && h4 == h1 {
			t.Fatal("name change did not change the hash")
		}
	})
}
