module sst

go 1.22
