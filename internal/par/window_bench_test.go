package par

import (
	"testing"

	"sst/internal/sim"
)

// BenchmarkParallelWindow measures the per-window synchronization cost of
// the runner — barrier, horizon computation, and mailbox exchange — under
// both sync modes. Four ranks in a ring, each with one local event and one
// remote send per 100ns window, so b.N iterations is b.N windows and ns/op
// is the steady-state cost of one conservative window. Gated against
// BENCH_baseline.json by `make bench`.
func BenchmarkParallelWindow(b *testing.B) {
	for _, mode := range []SyncMode{SyncGlobal, SyncPairwise} {
		b.Run("sync="+mode.String(), func(b *testing.B) {
			r, err := NewRunner(4)
			if err != nil {
				b.Fatal(err)
			}
			r.SetSyncMode(mode)
			outs := make([]*sim.Port, 4)
			for i := 0; i < 4; i++ {
				a, pb, err := r.Connect("ring"+itoa(i), 100*sim.Nanosecond, i, (i+1)%4)
				if err != nil {
					b.Fatal(err)
				}
				a.SetHandler(func(any) {})
				pb.SetHandler(func(any) {})
				outs[i] = a
			}
			for i := 0; i < 4; i++ {
				eng := r.Rank(i).Engine()
				out := outs[i]
				var tick func(any)
				tick = func(any) {
					out.Send(0)
					eng.Schedule(100*sim.Nanosecond, tick, nil)
				}
				eng.Schedule(100*sim.Nanosecond, tick, nil)
			}
			b.ResetTimer()
			b.ReportAllocs()
			if _, err := r.Run(sim.Time(b.N) * 100 * sim.Nanosecond); err != nil {
				b.Fatal(err)
			}
		})
	}
	for _, mode := range []SyncMode{SyncPairwise, SyncSpeculative} {
		mode := mode
		b.Run("topo=lowlat/sync="+mode.String(), func(b *testing.B) {
			benchLowLat(b, mode)
		})
	}
}

// lowlatTick is the workload for the low-lookahead variant: a dense local
// tick (one event per nanosecond, checkpoint-owned so the speculative mode
// can snapshot it) with a sparse cross-rank send every 64 ticks.
type lowlatTick struct {
	name string
	set  *sim.EventSet
	out  *sim.Port
	n    uint64
}

func (lt *lowlatTick) Name() string                     { return lt.name }
func (lt *lowlatTick) SaveState(enc *sim.Encoder)       { enc.U64(lt.n); lt.set.Save(enc) }
func (lt *lowlatTick) LoadState(dec *sim.Decoder) error { lt.n = dec.U64(); return lt.set.Load(dec) }
func (lt *lowlatTick) PendingOwned() int                { return lt.set.PendingOwned() }

// benchLowLat measures the case conservative windowing is worst at: a
// 4-rank ring with 1ns cross latency (so a pairwise window advances about
// one event spacing per barrier) where each rank's work is dominated by
// local events and cross traffic is sparse. One op is 100ns of simulated
// time — roughly 100 barrier rounds conservatively, but only a handful of
// speculative legs at the default leap, which is exactly the gap the
// optimistic mode exists to close. The committed baseline must show
// sync=speculative beating sync=pairwise here.
func benchLowLat(b *testing.B, mode SyncMode) {
	r, err := NewRunner(4)
	if err != nil {
		b.Fatal(err)
	}
	r.SetSyncMode(mode)
	if mode.Speculative() {
		r.EnableSnapshots()
	}
	outs := make([]*sim.Port, 4)
	for i := 0; i < 4; i++ {
		a, pb, err := r.Connect("lowlat"+itoa(i), 1*sim.Nanosecond, i, (i+1)%4)
		if err != nil {
			b.Fatal(err)
		}
		a.SetHandler(func(any) {})
		pb.SetHandler(func(any) {})
		outs[i] = a
	}
	for i := 0; i < 4; i++ {
		eng := r.Rank(i).Engine()
		lt := &lowlatTick{name: "tick" + itoa(i), out: outs[i]}
		lt.set = sim.NewEventSet(eng, lt.name, func(any) {
			lt.n++
			if lt.n%64 == 0 {
				lt.out.Send(0)
			}
			lt.set.ScheduleAt(eng.Now()+1*sim.Nanosecond, sim.PrioLink, 0)
		})
		r.Rank(i).Add(lt)
		lt.set.ScheduleAt(1*sim.Nanosecond, sim.PrioLink, 0)
	}
	b.ResetTimer()
	b.ReportAllocs()
	if _, err := r.Run(sim.Time(b.N) * 100 * sim.Nanosecond); err != nil {
		b.Fatal(err)
	}
}
