package mem

import (
	"fmt"

	"sst/internal/sim"
	"sst/internal/stats"
)

// ReplKind selects the cache replacement policy.
type ReplKind uint8

const (
	// LRU evicts the least-recently-used way.
	LRU ReplKind = iota
	// FIFO evicts the oldest-filled way.
	FIFO
	// RandomRepl evicts a uniformly random way.
	RandomRepl
)

func (r ReplKind) String() string {
	switch r {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case RandomRepl:
		return "random"
	default:
		return fmt.Sprintf("repl(%d)", uint8(r))
	}
}

// Line coherence states (MESI).
type state uint8

const (
	invalid state = iota
	shared
	exclusive
	modified
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
	// HitLatency is the lookup/response time.
	HitLatency sim.Time
	// Occupancy is how long each access holds a port (throughput limit);
	// zero means unlimited throughput.
	Occupancy sim.Time
	// MSHRs bounds outstanding misses; further misses stall.
	MSHRs int
	// WriteBack selects write-back + write-allocate when true,
	// write-through + no-allocate when false.
	WriteBack bool
	Repl      ReplKind
	// PrefetchNextLine enables a tagged next-line prefetcher: misses
	// prefetch the following PrefetchDegree lines, and the first demand
	// hit on a prefetched line prefetches further ahead, so steady
	// streams keep the prefetcher running at full depth.
	PrefetchNextLine bool
	// PrefetchDegree is how many lines ahead to fetch (default 1).
	PrefetchDegree int
	// Seed feeds the random replacement policy.
	Seed uint64
}

// Validate checks structural invariants and fills defaults.
func (c *CacheConfig) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache %s: associativity must be positive", c.Name)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %dB lines",
			c.Name, c.SizeBytes, c.Assoc, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if c.MSHRs == 0 {
		c.MSHRs = 8
	}
	if c.PrefetchNextLine && c.PrefetchDegree <= 0 {
		c.PrefetchDegree = 1
	}
	return nil
}

// line is one cache line's tag state.
type line struct {
	tag   uint64 // line address (addr >> lineShift)
	st    state
	used  uint64 // LRU stamp
	fill  uint64 // FIFO stamp
	valid bool
	// pref marks a line brought in by the prefetcher and not yet
	// demand-referenced; the first demand hit triggers further
	// prefetching (tagged prefetch).
	pref bool
}

// mshr tracks one outstanding miss and its waiters. MSHRs are recycled
// through the cache's free list, so each carries closures bound once at
// first allocation (fillFn/fillTrueFn/fetchFn/upgradeFn) instead of
// allocating fresh ones per miss — the miss path is the cache's hottest
// allocation site and the closure set is identical every time.
type mshr struct {
	cache    *Cache
	op       Op
	tag      uint64
	lineAddr uint64
	start    sim.Time // miss issue time, for the latency histogram
	write    bool     // fill target state is modified
	upgrade  bool     // line present in S, waiting for exclusivity
	prefetch bool     // fill initiated by the prefetcher, no demand waiter yet
	waiters  []func()

	fillFn     func(excl bool) // lower fill completion (Fetcher path)
	fillTrueFn func()          // lower fill completion (plain Device path)
	fetchFn    sim.Handler     // deferred lowerFetch after lookup latency
	upgradeFn  func()          // upgrade completion
}

// stalled is an access waiting for a free MSHR.
type stalled struct {
	op       Op
	lineAddr uint64
	done     func()
}

// Fetcher is the extended lower-level interface that communicates the fill
// state. When the cache's lower device implements it (the coherence bus
// does), read fills learn whether they may be Exclusive.
type Fetcher interface {
	Fetch(op Op, addr uint64, size int, done func(excl bool))
}

// Upgrader invalidates other sharers so an S line can become M.
type Upgrader interface {
	Upgrade(addr uint64, size int, done func())
}

// WritebackSink accepts evicted dirty lines (posted).
type WritebackSink interface {
	WriteBack(addr uint64, size int)
}

// LinePool recycles cache line backing arrays across cache constructions —
// the sweep arena hands one to consecutive design points so each point's
// caches reuse the previous point's tag arrays instead of allocating a few
// hundred kilobytes per build. Slabs are keyed by exact length and zeroed
// on reuse, so a recycled cache starts cold exactly like a fresh one. Not
// safe for concurrent use; a pool belongs to one sweep worker.
type LinePool struct {
	slabs map[int][][]line
}

// get returns a zeroed slab of exactly n lines.
func (p *LinePool) get(n int) []line {
	if p != nil && p.slabs != nil {
		if list := p.slabs[n]; len(list) > 0 {
			s := list[len(list)-1]
			list[len(list)-1] = nil
			p.slabs[n] = list[:len(list)-1]
			clear(s)
			return s
		}
	}
	return make([]line, n)
}

// put accepts a retired slab.
func (p *LinePool) put(s []line) {
	if p == nil || len(s) == 0 {
		return
	}
	if p.slabs == nil {
		p.slabs = make(map[int][][]line)
	}
	p.slabs[len(s)] = append(p.slabs[len(s)], s)
}

// Len reports how many slabs the pool holds across all sizes.
func (p *LinePool) Len() int {
	n := 0
	for _, list := range p.slabs {
		n += len(list)
	}
	return n
}

// DefaultLinePoolSlabs bounds how many slabs Trim keeps per size class:
// enough for the deepest node the sweeps build (per-core L1s plus a shared
// L2), small enough that a long-lived pool tracks the current sweep's
// shapes instead of accumulating every size it has ever seen.
const DefaultLinePoolSlabs = 12

// Trim drops slabs beyond max per size class, releasing them to the
// garbage collector. Long-lived pools (a sweep worker's arena between
// points) call it so one unusually wide design point cannot make every
// later point carry its backing arrays.
func (p *LinePool) Trim(max int) {
	if p == nil {
		return
	}
	if max < 0 {
		max = 0
	}
	for n, list := range p.slabs {
		if len(list) <= max {
			continue
		}
		for i := max; i < len(list); i++ {
			list[i] = nil
		}
		p.slabs[n] = list[:max]
	}
}

// Cache is a set-associative, non-blocking (MSHR-based) cache with MESI
// states. It implements Device for its upper level and drives a lower
// Device (another cache, a bus port, or a memory adapter).
type Cache struct {
	cfg       CacheConfig
	engine    *sim.Engine
	lower     Device
	sets      [][]line
	lineShift uint
	setMask   uint64
	stamp     uint64
	rng       *sim.RNG

	mshrs    map[uint64]*mshr
	mshrFree []*mshr
	stalls   []stalled
	portFree sim.Time

	// backing is the contiguous line array behind sets; linePool, when
	// non-nil, is where ReleaseLines returns it at teardown.
	backing  []line
	linePool *LinePool

	// hooks used by the coherence bus.
	busPort *BusPort

	// Statistics.
	hits, misses    *stats.Counter
	readHits        *stats.Counter
	readMisses      *stats.Counter
	writeHits       *stats.Counter
	writeMisses     *stats.Counter
	evictions       *stats.Counter
	writebacks      *stats.Counter
	upgrades        *stats.Counter
	prefetches      *stats.Counter
	secondaryMisses *stats.Counter
	mshrStalls      *stats.Counter
	snoopInvals     *stats.Counter
	missLatency     *stats.Histogram
}

// NewCache builds a cache above the given lower device. scope may be nil.
func NewCache(engine *sim.Engine, cfg CacheConfig, lower Device, scope *stats.Scope) (*Cache, error) {
	return NewCachePool(engine, cfg, lower, scope, nil)
}

// NewCachePool is NewCache drawing its line backing array from pool (nil
// behaves like NewCache). Call ReleaseLines at teardown to hand the array
// back for the next construction.
func NewCachePool(engine *sim.Engine, cfg CacheConfig, lower Device, scope *stats.Scope, pool *LinePool) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lower == nil {
		return nil, fmt.Errorf("cache %s: nil lower device", cfg.Name)
	}
	c := &Cache{
		cfg:      cfg,
		engine:   engine,
		lower:    lower,
		mshrs:    make(map[uint64]*mshr),
		rng:      sim.NewRNG(cfg.Seed ^ 0xcafe),
		linePool: pool,
	}
	for s := uint(0); ; s++ {
		if 1<<s == cfg.LineBytes {
			c.lineShift = s
			break
		}
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	c.setMask = uint64(nsets - 1)
	c.sets = make([][]line, nsets)
	c.backing = pool.get(nsets * cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = c.backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	if scope == nil {
		scope = stats.NewRegistry().Scope(cfg.Name)
	}
	c.hits = scope.Counter("hits")
	c.misses = scope.Counter("misses")
	c.readHits = scope.Counter("read_hits")
	c.readMisses = scope.Counter("read_misses")
	c.writeHits = scope.Counter("write_hits")
	c.writeMisses = scope.Counter("write_misses")
	c.evictions = scope.Counter("evictions")
	c.writebacks = scope.Counter("writebacks")
	c.upgrades = scope.Counter("upgrades")
	c.prefetches = scope.Counter("prefetches")
	c.secondaryMisses = scope.Counter("secondary_misses")
	c.mshrStalls = scope.Counter("mshr_stalls")
	c.snoopInvals = scope.Counter("snoop_invalidations")
	c.missLatency = scope.Histogram("miss_latency_ps")
	return c, nil
}

// Name returns the cache's instance name.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits.Count() + c.misses.Count()
	if total == 0 {
		return 0
	}
	return float64(c.hits.Count()) / float64(total)
}

// Hits and Misses expose raw counts for harnesses.
func (c *Cache) Hits() uint64   { return c.hits.Count() }
func (c *Cache) Misses() uint64 { return c.misses.Count() }

// Access implements Device: it splits the access into lines and completes
// when the last line completes.
func (c *Cache) Access(op Op, addr uint64, size int, done func()) {
	lineSize := uint64(c.cfg.LineBytes)
	first := addr &^ (lineSize - 1)
	last := addr
	if size > 0 {
		last = addr + uint64(size) - 1
	}
	last &^= lineSize - 1
	n := int((last-first)/lineSize) + 1
	if n == 1 {
		c.accessLine(op, first, done)
		return
	}
	var sub func()
	if done != nil {
		remaining := n
		sub = func() {
			remaining--
			if remaining == 0 {
				done()
			}
		}
	}
	for a := first; ; a += lineSize {
		c.accessLine(op, a, sub)
		if a == last {
			break
		}
	}
}

// portDelay models limited access throughput: each access occupies the
// cache's port for cfg.Occupancy.
func (c *Cache) portDelay() sim.Time {
	now := c.engine.Now()
	start := now
	if c.portFree > start {
		start = c.portFree
	}
	c.portFree = start + c.cfg.Occupancy
	return start - now
}

// runPayload invokes its payload, a func(). Scheduling (runPayload, done)
// instead of wrapping done in a fresh closure keeps the response path
// allocation-free: func values are pointer-shaped, so storing one in the
// event's `any` payload does not box.
func runPayload(p any) { p.(func())() }

// respond schedules done after the hit latency plus port queuing.
func (c *Cache) respond(extra sim.Time, done func()) {
	if done == nil {
		return
	}
	c.engine.ScheduleLabeled(c.cfg.HitLatency+extra, sim.PrioLink, c.cfg.Name, runPayload, done)
}

// newMSHR takes an MSHR from the free list (or allocates one) and binds
// its identity fields. The completion closures are created once per object
// and survive recycling; they read the miss's current fields at call time.
func (c *Cache) newMSHR(op Op, tag, lineAddr uint64) *mshr {
	var m *mshr
	if n := len(c.mshrFree) - 1; n >= 0 {
		m = c.mshrFree[n]
		c.mshrFree[n] = nil
		c.mshrFree = c.mshrFree[:n]
	} else {
		m = &mshr{cache: c}
		m.fillFn = func(excl bool) { m.cache.finishFill(m, excl) }
		m.fillTrueFn = func() { m.cache.finishFill(m, true) }
		m.fetchFn = func(any) { m.cache.lowerFetch(m) }
		m.upgradeFn = func() { m.cache.finishUpgrade(m) }
	}
	m.op, m.tag, m.lineAddr, m.start = op, tag, lineAddr, c.engine.Now()
	return m
}

// freeMSHR recycles a retired MSHR. The waiters backing array is kept so
// steady-state misses append into existing capacity.
func (c *Cache) freeMSHR(m *mshr) {
	for i := range m.waiters {
		m.waiters[i] = nil
	}
	m.waiters = m.waiters[:0]
	m.write, m.upgrade, m.prefetch = false, false, false
	c.mshrFree = append(c.mshrFree, m)
}

func (c *Cache) accessLine(op Op, lineAddr uint64, done func()) {
	qd := c.portDelay()
	tag := lineAddr >> c.lineShift
	set := c.sets[tag&c.setMask]
	c.stamp++

	// Hit path.
	for i := range set {
		ln := &set[i]
		if !ln.valid || ln.tag != tag {
			continue
		}
		if ln.pref {
			ln.pref = false
			c.prefetchAhead(lineAddr)
		}
		if op == Read {
			c.hits.Inc()
			c.readHits.Inc()
			ln.used = c.stamp
			c.respond(qd, done)
			return
		}
		// Write hit.
		if !c.cfg.WriteBack {
			// Write-through: forward posted write, line stays clean.
			c.hits.Inc()
			c.writeHits.Inc()
			ln.used = c.stamp
			c.lowerWrite(lineAddr)
			c.respond(qd, done)
			return
		}
		switch ln.st {
		case modified, exclusive:
			c.hits.Inc()
			c.writeHits.Inc()
			ln.st = modified
			ln.used = c.stamp
			c.respond(qd, done)
		case shared:
			// Upgrade: needs exclusivity before completing.
			c.hits.Inc()
			c.writeHits.Inc()
			ln.used = c.stamp
			c.startUpgrade(tag, lineAddr, done)
		}
		return
	}

	// Miss path.
	if pending, ok := c.mshrs[tag]; ok {
		// Secondary miss: piggyback on the outstanding fill. A demand
		// access promotes a prefetch fill and keeps the stream going.
		if pending.prefetch {
			pending.prefetch = false
			c.prefetchAhead(lineAddr)
		}
		c.secondaryMisses.Inc()
		if op == Write && c.cfg.WriteBack && !pending.write {
			// A read fill can't satisfy a write's need for M;
			// approximate by promoting the fill to exclusive intent.
			pending.write = true
		}
		if done != nil {
			pending.waiters = append(pending.waiters, done)
		}
		return
	}
	if op == Write && !c.cfg.WriteBack {
		// Write-through, no allocate: posted write below, done after
		// lookup.
		c.misses.Inc()
		c.writeMisses.Inc()
		c.lowerWrite(lineAddr)
		c.respond(qd, done)
		return
	}
	c.startMiss(op, tag, lineAddr, done)
	if c.cfg.PrefetchNextLine {
		c.prefetchAhead(lineAddr)
	}
}

// prefetchAhead issues tagged next-line prefetches for the configured
// degree beyond lineAddr.
func (c *Cache) prefetchAhead(lineAddr uint64) {
	for k := 1; k <= c.cfg.PrefetchDegree; k++ {
		c.maybePrefetch(lineAddr + uint64(k*c.cfg.LineBytes))
	}
}

// startMiss allocates an MSHR (stalling when none are free) and fetches the
// line from below. Statistics are counted here, after the capacity check,
// so a stalled access is counted once when it finally proceeds — the retry
// re-enters accessLine, which may even turn it into a hit if a concurrent
// fill brought the line in.
func (c *Cache) startMiss(op Op, tag, lineAddr uint64, done func()) {
	if len(c.mshrs) >= c.cfg.MSHRs {
		c.mshrStalls.Inc()
		c.stalls = append(c.stalls, stalled{op: op, lineAddr: lineAddr, done: done})
		return
	}
	c.misses.Inc()
	if op == Read {
		c.readMisses.Inc()
	} else {
		c.writeMisses.Inc()
	}
	m := c.newMSHR(op, tag, lineAddr)
	m.write = op == Write && c.cfg.WriteBack
	if done != nil {
		m.waiters = append(m.waiters, done)
	}
	c.mshrs[tag] = m
	// Charge the lookup latency before the fetch leaves this level.
	c.engine.ScheduleLabeled(c.cfg.HitLatency, sim.PrioLink, c.cfg.Name, m.fetchFn, nil)
}

// startUpgrade requests exclusivity for a Shared line.
func (c *Cache) startUpgrade(tag, lineAddr uint64, done func()) {
	if pending, ok := c.mshrs[tag]; ok {
		pending.write = true
		if done != nil {
			pending.waiters = append(pending.waiters, done)
		}
		return
	}
	c.upgrades.Inc()
	up, ok := c.lower.(Upgrader)
	if !ok {
		// No coherence domain below: exclusivity is free.
		if ln := c.findLine(tag); ln != nil {
			ln.st = modified
		}
		c.respond(0, done)
		return
	}
	m := c.newMSHR(Write, tag, lineAddr)
	m.write, m.upgrade = true, true
	if done != nil {
		m.waiters = append(m.waiters, done)
	}
	c.mshrs[tag] = m
	up.Upgrade(lineAddr, c.cfg.LineBytes, m.upgradeFn)
}

// finishUpgrade completes an exclusivity request: the Shared line becomes
// Modified and the waiters run.
func (c *Cache) finishUpgrade(m *mshr) {
	delete(c.mshrs, m.tag)
	if ln := c.findLine(m.tag); ln != nil {
		ln.st = modified
	}
	for _, w := range m.waiters {
		w()
	}
	c.retryStalls()
	c.freeMSHR(m)
}

// finishFill installs the fetched line, responds to all waiters, and
// retries stalled accesses.
func (c *Cache) finishFill(m *mshr, excl bool) {
	tag := m.tag
	delete(c.mshrs, tag)
	c.missLatency.Observe(uint64(c.engine.Now() - m.start))
	ln := c.victim(tag)
	ln.valid = true
	ln.tag = tag
	ln.used = c.stamp
	ln.fill = c.stamp
	ln.pref = m.prefetch
	switch {
	case m.write:
		ln.st = modified
	case excl:
		ln.st = exclusive
	default:
		ln.st = shared
	}
	for _, w := range m.waiters {
		w()
	}
	c.retryStalls()
	c.freeMSHR(m)
}

// retryStalls re-runs accesses that were blocked on a full MSHR file.
func (c *Cache) retryStalls() {
	for len(c.stalls) > 0 && len(c.mshrs) < c.cfg.MSHRs {
		s := c.stalls[0]
		c.stalls = c.stalls[1:]
		c.accessLine(s.op, s.lineAddr, s.done)
	}
}

// victim selects and evicts a way in tag's set, issuing a writeback if the
// victim is dirty.
func (c *Cache) victim(tag uint64) *line {
	set := c.sets[tag&c.setMask]
	// Prefer an invalid way.
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
	}
	var v *line
	switch c.cfg.Repl {
	case FIFO:
		v = &set[0]
		for i := range set {
			if set[i].fill < v.fill {
				v = &set[i]
			}
		}
	case RandomRepl:
		v = &set[c.rng.Intn(len(set))]
	default: // LRU
		v = &set[0]
		for i := range set {
			if set[i].used < v.used {
				v = &set[i]
			}
		}
	}
	c.evictions.Inc()
	if v.st == modified {
		c.writebacks.Inc()
		c.lowerWriteBack(v.tag << c.lineShift)
	}
	v.valid = false
	v.st = invalid
	return v
}

// maybePrefetch issues a next-line read fill if the line is absent and an
// MSHR is free.
func (c *Cache) maybePrefetch(lineAddr uint64) {
	tag := lineAddr >> c.lineShift
	if c.findLine(tag) != nil {
		return
	}
	if _, pending := c.mshrs[tag]; pending || len(c.mshrs) >= c.cfg.MSHRs {
		return
	}
	c.prefetches.Inc()
	m := c.newMSHR(Read, tag, lineAddr)
	m.prefetch = true
	c.mshrs[tag] = m
	c.lowerFetch(m)
}

func (c *Cache) findLine(tag uint64) *line {
	set := c.sets[tag&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// lowerFetch fetches the miss's line from the lower device, adapting plain
// Devices (which cannot have other sharers, so fills are exclusive).
func (c *Cache) lowerFetch(m *mshr) {
	if f, ok := c.lower.(Fetcher); ok {
		f.Fetch(m.op, m.lineAddr, c.cfg.LineBytes, m.fillFn)
		return
	}
	c.lower.Access(Read, m.lineAddr, c.cfg.LineBytes, m.fillTrueFn)
}

// lowerWrite forwards a posted write-through write.
func (c *Cache) lowerWrite(lineAddr uint64) {
	c.lower.Access(Write, lineAddr, c.cfg.LineBytes, nil)
}

// lowerWriteBack forwards an evicted dirty line.
func (c *Cache) lowerWriteBack(addr uint64) {
	if ws, ok := c.lower.(WritebackSink); ok {
		ws.WriteBack(addr, c.cfg.LineBytes)
		return
	}
	c.lower.Access(Write, addr, c.cfg.LineBytes, nil)
}

// --- snooping (called by the coherence bus) ---

// snoopRead downgrades a local copy to Shared; reports presence and whether
// the copy was dirty (in which case the bus writes it back).
func (c *Cache) snoopRead(lineAddr uint64) (had, dirty bool) {
	tag := lineAddr >> c.lineShift
	ln := c.findLine(tag)
	if ln == nil {
		return false, false
	}
	dirty = ln.st == modified
	ln.st = shared
	return true, dirty
}

// snoopInvalidate drops a local copy; reports presence and dirtiness.
func (c *Cache) snoopInvalidate(lineAddr uint64) (had, dirty bool) {
	tag := lineAddr >> c.lineShift
	ln := c.findLine(tag)
	if ln == nil {
		return false, false
	}
	c.snoopInvals.Inc()
	dirty = ln.st == modified
	ln.valid = false
	ln.st = invalid
	return true, dirty
}

// ReleaseLines returns the cache's line backing array to its LinePool and
// detaches the sets, so a torn-down model cannot alias the next point's
// tags. Only call when the cache will no longer be accessed; no-op without
// a pool, idempotent.
func (c *Cache) ReleaseLines() {
	if c.linePool == nil || c.backing == nil {
		return
	}
	c.linePool.put(c.backing)
	c.backing = nil
	c.sets = nil
}

// Contents returns (valid lines, dirty lines) for invariant checks in tests.
func (c *Cache) Contents() (valid, dirty int) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				valid++
				if set[i].st == modified {
					dirty++
				}
			}
		}
	}
	return valid, dirty
}
