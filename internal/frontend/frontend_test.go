package frontend

import (
	"bytes"
	"testing"
	"testing/quick"

	"sst/internal/isa"
)

func TestExecStreamBasic(t *testing.T) {
	p, err := isa.Assemble(`
		addi r1, r0, 3
		li   r2, 0x4000
		ld   r3, 0(r2)
		sd   r1, 8(r2)
		beq  r0, r0, end
		nop
	end:
		fadd r4, r1, r1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	s := NewExecStream(isa.NewMachine(p), 0)
	var ops []Op
	var op Op
	for s.Next(&op) {
		ops = append(ops, op)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	// addi, addi(li), ld, sd, beq, fadd — halt not emitted, nop skipped
	// by the taken branch.
	classes := []Class{ClassInt, ClassInt, ClassLoad, ClassStore, ClassBranch, ClassFloat}
	if len(ops) != len(classes) {
		t.Fatalf("got %d ops, want %d: %+v", len(ops), len(classes), ops)
	}
	for i, c := range classes {
		if ops[i].Class != c {
			t.Fatalf("op %d class %v, want %v", i, ops[i].Class, c)
		}
	}
	if ops[2].Addr != 0x4000 || ops[2].Size != 8 {
		t.Errorf("load addr/size = %#x/%d", ops[2].Addr, ops[2].Size)
	}
	if ops[3].Addr != 0x4008 {
		t.Errorf("store addr = %#x", ops[3].Addr)
	}
	if !ops[4].Taken {
		t.Error("taken branch not flagged")
	}
	if ops[3].Dst != 0 {
		t.Error("store must not have a destination register")
	}
}

func TestExecStreamLimit(t *testing.T) {
	p, _ := isa.Assemble("loop: addi r1, r1, 1\nb loop")
	s := NewExecStream(isa.NewMachine(p), 10)
	var op Op
	n := 0
	for s.Next(&op) {
		n++
	}
	if n != 10 {
		t.Fatalf("limited stream produced %d ops", n)
	}
}

func TestExecStreamError(t *testing.T) {
	p, _ := isa.Assemble("jalr r0, r0, 4096")
	s := NewExecStream(isa.NewMachine(p), 0)
	var op Op
	for s.Next(&op) {
	}
	if s.Err() == nil {
		t.Fatal("jump into data space produced no error")
	}
}

func TestSyntheticMixProportions(t *testing.T) {
	cfg := SynthConfig{
		IntFrac: 0.4, FloatFrac: 0.2, LoadFrac: 0.2, StoreFrac: 0.1, BranchFrac: 0.1,
		N: 100_000, HotFrac: 0.5, HotBytes: 1 << 16, ColdBytes: 1 << 24,
		TakenFrac: 0.7, Seed: 1,
	}
	s, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs := &CountingStream{Inner: s}
	var op Op
	for cs.Next(&op) {
	}
	if cs.Total() != cfg.N {
		t.Fatalf("total = %d", cs.Total())
	}
	frac := func(c Class) float64 { return float64(cs.Counts[c]) / float64(cfg.N) }
	for _, tc := range []struct {
		c    Class
		want float64
	}{
		{ClassInt, 0.4}, {ClassFloat, 0.2}, {ClassLoad, 0.2}, {ClassStore, 0.1}, {ClassBranch, 0.1},
	} {
		if got := frac(tc.c); got < tc.want-0.02 || got > tc.want+0.02 {
			t.Errorf("class %v fraction = %.3f, want ~%.2f", tc.c, got, tc.want)
		}
	}
}

func TestSyntheticLocality(t *testing.T) {
	cfg := SynthConfig{
		LoadFrac: 1, N: 50_000,
		HotFrac: 0.9, HotBytes: 4 << 10, ColdBytes: 1 << 26,
		Seed: 2,
	}
	s, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	var op Op
	for s.Next(&op) {
		if op.Addr < cfg.HotBytes {
			hot++
		}
	}
	frac := float64(hot) / float64(cfg.N)
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("hot fraction = %.3f, want ~0.9", frac)
	}
}

func TestSyntheticStride(t *testing.T) {
	cfg := SynthConfig{
		LoadFrac: 1, N: 1000,
		HotFrac: 1, HotBytes: 1 << 20, StrideBytes: 64,
		Seed: 3,
	}
	s, _ := NewSynthetic(cfg)
	var prev uint64
	var op Op
	first := true
	for s.Next(&op) {
		if !first && op.Addr != prev+64 {
			t.Fatalf("stride broken: %#x after %#x", op.Addr, prev)
		}
		prev, first = op.Addr, false
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg, err := Profile("stream", 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	collect := func() []Op {
		s, _ := NewSynthetic(cfg)
		var ops []Op
		var op Op
		for s.Next(&op) {
			ops = append(ops, op)
		}
		return ops
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := NewSynthetic(SynthConfig{}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := NewSynthetic(SynthConfig{LoadFrac: 1, N: 10}); err == nil {
		t.Error("memory ops with no address space accepted")
	}
	if _, err := NewSynthetic(SynthConfig{IntFrac: 1, N: 10, HotFrac: 2}); err == nil {
		t.Error("HotFrac > 1 accepted")
	}
}

func TestProfiles(t *testing.T) {
	for _, name := range []string{"stream", "compute", "irregular"} {
		cfg, err := Profile(name, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewSynthetic(cfg); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
	if _, err := Profile("nope", 1, 1); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	fn := func(raw []uint32) bool {
		var ops []Op
		for _, r := range raw {
			op := Op{Class: Class(r % uint32(numClasses))}
			switch op.Class {
			case ClassLoad, ClassStore:
				op.Addr = uint64(r) * 977
				op.Size = 8
			case ClassBranch:
				op.Taken = r&1 == 0
			}
			op.Dst = uint8(r>>8) & 31
			op.Src1 = uint8(r>>16) & 31
			op.Src2 = uint8(r>>24) & 31
			ops = append(ops, op)
		}
		var buf bytes.Buffer
		w := NewTraceWriter(&buf)
		for i := range ops {
			if err := w.Write(&ops[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewTraceStream(&buf)
		var got Op
		for i := range ops {
			if !r.Next(&got) {
				return false
			}
			want := ops[i]
			if got.Class != want.Class || got.Addr != want.Addr ||
				got.Size != want.Size || got.Taken != want.Taken ||
				got.Dst != want.Dst || got.Src1 != want.Src1 || got.Src2 != want.Src2 {
				return false
			}
		}
		return !r.Next(&got) && r.Err() == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTraceBadMagic(t *testing.T) {
	r := NewTraceStream(bytes.NewBufferString("NOTATRACE"))
	var op Op
	if r.Next(&op) || r.Err() == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	w.Write(&Op{Class: ClassLoad, Addr: 0x1234, Size: 8})
	w.Flush()
	full := buf.Bytes()
	r := NewTraceStream(bytes.NewReader(full[:len(full)-3]))
	var op Op
	if r.Next(&op) || r.Err() == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestTeeStream(t *testing.T) {
	src := &SliceStream{Ops: []Op{
		{Class: ClassInt, Dst: 1},
		{Class: ClassLoad, Addr: 64, Size: 8, Dst: 2},
	}}
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	tee := &TeeStream{Inner: src, W: w}
	var op Op
	n := 0
	for tee.Next(&op) {
		n++
	}
	if n != 2 || tee.Err() != nil {
		t.Fatalf("tee passed %d ops, err=%v", n, tee.Err())
	}
	w.Flush()
	r := NewTraceStream(&buf)
	n = 0
	for r.Next(&op) {
		n++
	}
	if n != 2 {
		t.Fatalf("replayed %d ops", n)
	}
}

func TestKernelStream(t *testing.T) {
	k := NewKernelStream(func(e *Emitter) {
		for i := 0; i < 10000; i++ {
			if !e.Load(uint64(i * 8)) {
				return
			}
			if !e.Flops(2) {
				return
			}
		}
	})
	defer k.Close()
	var op Op
	var loads, flops int
	for k.Next(&op) {
		switch op.Class {
		case ClassLoad:
			loads++
		case ClassFloat:
			flops++
		}
	}
	if loads != 10000 || flops != 20000 {
		t.Fatalf("loads=%d flops=%d", loads, flops)
	}
}

func TestKernelStreamEarlyClose(t *testing.T) {
	emitted := make(chan int, 1)
	k := NewKernelStream(func(e *Emitter) {
		n := 0
		for {
			if !e.Ints(1) {
				emitted <- n
				return
			}
			n++
		}
	})
	var op Op
	for i := 0; i < 100; i++ {
		if !k.Next(&op) {
			t.Fatal("stream ended early")
		}
	}
	k.Close()
	n := <-emitted
	if n < 100 {
		t.Fatalf("producer emitted only %d before close", n)
	}
	// Idempotent close, and Next after close returns false.
	k.Close()
	if k.Next(&op) {
		t.Fatal("Next succeeded after Close")
	}
}

func TestKernelEmitterHelpers(t *testing.T) {
	k := NewKernelStream(func(e *Emitter) {
		e.Store(128)
		e.Branch(true)
		e.Ints(1)
	})
	defer k.Close()
	var ops []Op
	var op Op
	for k.Next(&op) {
		ops = append(ops, op)
	}
	if len(ops) != 3 || ops[0].Class != ClassStore || !ops[1].Taken || ops[2].Class != ClassInt {
		t.Fatalf("ops = %+v", ops)
	}
	// PCs are auto-assigned and increasing.
	if ops[1].PC <= ops[0].PC {
		t.Error("PCs not increasing")
	}
}

func TestLimitAndSliceStreams(t *testing.T) {
	src := &SliceStream{Ops: make([]Op, 10)}
	l := &LimitStream{Inner: src, N: 4}
	var op Op
	n := 0
	for l.Next(&op) {
		n++
	}
	if n != 4 {
		t.Fatalf("limit produced %d", n)
	}
	src.Reset()
	n = 0
	for src.Next(&op) {
		n++
	}
	if n != 10 {
		t.Fatalf("reset slice produced %d", n)
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassInt: "int", ClassFloat: "float", ClassLoad: "load",
		ClassStore: "store", ClassBranch: "branch", ClassNop: "nop",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d -> %q", c, c.String())
		}
	}
	if Class(99).String() == "" {
		t.Error("unknown class empty")
	}
	if NumClasses() != 6 {
		t.Errorf("NumClasses = %d", NumClasses())
	}
}
