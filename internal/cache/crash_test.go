package cache

// Crash consistency and graceful degradation of the persistent tier,
// driven by internal/iofault. The file tier is an accelerator: every
// host-storage failure under it must leave the in-memory cache fully
// functional (visible only in Stats), and a crash at any point during a
// run of appends must leave a file the next New() warm-starts from —
// some prefix of the appended entries, each decoding to exactly the
// value that was put.

import (
	"errors"
	"fmt"
	"testing"

	"sst/internal/iofault"
)

// memOpts is the standard persistent-tier config on a fault model.
func memOpts(m *iofault.MemFS) Options {
	return Options{Capacity: 16, Path: "cache.jsonl", Codec: jsonCodec, FS: m}
}

// TestCacheDegradesOnAppendFailure: ENOSPC (with a short write) and fsync
// failure on the append path must not fail the Put — the entry stays
// resident, later Puts keep working, and Stats reports the degradation.
func TestCacheDegradesOnAppendFailure(t *testing.T) {
	for _, inject := range []error{iofault.ErrNoSpace, iofault.ErrSyncFailed} {
		t.Run(inject.Error(), func(t *testing.T) {
			m := iofault.NewMemFS(3)
			c := mustCache(t, memOpts(m))
			put(t, c, "a") // survives to the file tier

			// Fault every op from here on: the next append must fail
			// whichever of its ops (write, fsync) runs first.
			for op := m.Ops() + 1; op < m.Ops()+10; op++ {
				m.FailOp(op, inject)
			}
			if err := c.Put("b", "v:b", 8); err != nil {
				t.Fatalf("Put over failing storage returned error: %v", err)
			}
			if v, ok := c.Get("b"); !ok || v != "v:b" {
				t.Fatalf("entry lost on degradation: %v, %v", v, ok)
			}
			st := c.Stats()
			if !st.Degraded || st.AppendFailures == 0 {
				t.Fatalf("degradation invisible in stats: %+v", st)
			}
			// The tier is dropped: further Puts are memory-only and silent.
			before := m.Ops()
			put(t, c, "c")
			if m.Ops() != before {
				t.Fatal("degraded cache still touches the filesystem")
			}
			if v, ok := c.Get("c"); !ok || v != "v:c" {
				t.Fatalf("post-degradation entry lost: %v, %v", v, ok)
			}
		})
	}
}

// TestCacheWarmStartAfterDegradation: entries appended before the fault
// warm-start the next cache; the file holds no trace of the failed append
// beyond at most a torn tail, which the loader cuts.
func TestCacheWarmStartAfterDegradation(t *testing.T) {
	m := iofault.NewMemFS(9)
	c := mustCache(t, memOpts(m))
	put(t, c, "a")
	put(t, c, "b")
	m.FailOp(m.Ops()+1, iofault.ErrNoSpace) // tear the next append's write
	put(t, c, "torn")
	c.Close()

	c2 := mustCache(t, memOpts(m))
	for _, k := range []string{"a", "b"} {
		if v, ok := c2.Get(k); !ok || v != "v:"+k {
			t.Fatalf("warm start lost %q: %v, %v", k, v, ok)
		}
	}
	if _, ok := c2.Get("torn"); ok {
		t.Fatal("torn append warm-started as a complete entry")
	}
	if st := c2.Stats(); st.WarmStarts != 2 {
		t.Fatalf("warm_starts = %d, want 2", st.WarmStarts)
	}
}

// TestCrashPointsCacheWarmStart crashes a run of fsync'd appends after
// every storage operation and requires the surviving file to warm-start
// cleanly: New() must succeed, and every recovered entry must decode to
// the exact value that was put — a prefix of the append order, never a
// torn or corrupt record.
func TestCrashPointsCacheWarmStart(t *testing.T) {
	const puts = 3
	n, err := iofault.Explore(
		func() (*iofault.MemFS, error) { return iofault.NewMemFS(13), nil },
		func(m *iofault.MemFS) error {
			c, err := New(memOpts(m))
			if err != nil {
				return err
			}
			for i := 0; i < puts; i++ {
				if err := c.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i), 8); err != nil {
					return err
				}
			}
			return c.Close()
		},
		func(cp iofault.CrashPoint) error {
			if cp.WorkloadErr != nil && !errors.Is(cp.WorkloadErr, iofault.ErrCrashed) {
				return fmt.Errorf("crashed workload error is untyped: %v", cp.WorkloadErr)
			}
			c, err := New(memOpts(cp.Image))
			if err != nil {
				return fmt.Errorf("warm start on crash image failed: %v\n%s", err, cp.Image.Dump())
			}
			defer c.Close()
			recovered := 0
			for i := 0; i < puts; i++ {
				v, ok := c.Get(fmt.Sprintf("k%d", i))
				if !ok {
					continue
				}
				if want := fmt.Sprintf("v%d", i); v != want {
					return fmt.Errorf("recovered k%d = %q, want %q", i, v, want)
				}
				recovered++
			}
			if recovered > puts {
				return fmt.Errorf("recovered %d entries from %d puts", recovered, puts)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// open (create+syncdir) + per put (write+fsync): at least 8 ops.
	if n < 8 {
		t.Fatalf("explored only %d ops for %d appends", n, puts)
	}
}
