package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sst/internal/cli"
	"sst/internal/core"
)

func TestNetStudySmall(t *testing.T) {
	if err := run(8, 2, "1,0.5", core.FormatTable, 0, context.Background(), "", "", "", false); err != nil {
		t.Fatal(err)
	}
	if err := run(8, 2, "1", core.FormatCSV, 2, context.Background(), "", "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestNetStudyObsFiles(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.json")
	if err := run(8, 2, "1,0.5", core.FormatJSON, 2, context.Background(), metrics, trace, "", false); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{metrics, trace} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s: invalid JSON: %v", path, err)
		}
	}
}

func TestNetScalingStudy(t *testing.T) {
	if err := runScaling(8, "1,2", "100us", core.FormatTable, context.Background()); err != nil {
		t.Fatal(err)
	}
	err := runScaling(8, "1,x", "100us", core.FormatTable, context.Background())
	if err == nil {
		t.Error("bad rank count accepted")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("bad rank count maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
	err = runScaling(8, "1", "soon", core.FormatTable, context.Background())
	if err == nil {
		t.Error("bad horizon accepted")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("bad horizon maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
}

func TestNetStudyBadFractions(t *testing.T) {
	err := run(8, 2, "1,zero", core.FormatTable, 0, context.Background(), "", "", "", false)
	if err == nil {
		t.Error("bad fraction accepted")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("bad fraction maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
	if err := run(8, 2, "2.5", core.FormatTable, 0, context.Background(), "", "", "", false); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

// TestNetStudyJournalResume: a journaled study writes one record per cell;
// a resumed run restores them (both studies share the grid, so the journal
// holds each cell once) and reproduces the same tables.
func TestNetStudyJournalResume(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "net.jsonl")
	if err := run(8, 2, "1,0.5", core.FormatCSV, 2, context.Background(), "", "", journal, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("journal empty after journaled study")
	}
	// Resume against the complete journal: every cell restores, no
	// simulation re-runs, and the study still succeeds.
	if err := run(8, 2, "1,0.5", core.FormatCSV, 2, context.Background(), "", "", journal, true); err != nil {
		t.Fatalf("resume: %v", err)
	}
}

// TestNetStudyInterruptedExitCode: a pre-cancelled context maps to the
// interrupted exit code, not a generic failure.
func TestNetStudyInterruptedExitCode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(8, 2, "1,0.5", core.FormatTable, 1, ctx, "", "", "", false)
	if err == nil {
		t.Fatal("cancelled study reported success")
	}
	if cli.Code(err) != cli.ExitInterrupted {
		t.Fatalf("cancelled study maps to exit %d, want %d (err: %v)", cli.Code(err), cli.ExitInterrupted, err)
	}
}
