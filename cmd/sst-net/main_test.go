package main

import "testing"

func TestNetStudySmall(t *testing.T) {
	if err := run(8, 2, "1,0.5", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(8, 2, "1", true, 2); err != nil {
		t.Fatal(err)
	}
}

func TestNetStudyBadFractions(t *testing.T) {
	if err := run(8, 2, "1,zero", false, 0); err == nil {
		t.Error("bad fraction accepted")
	}
	if err := run(8, 2, "2.5", false, 0); err == nil {
		t.Error("fraction > 1 accepted")
	}
}
