package sim

// Engine checkpoint/restore: crash safety for long runs.
//
// A snapshot is taken at a quiescent barrier — between Run calls, when no
// handler is executing. The engine does not serialize its event queue
// (events hold closures, which have no stable encoding); instead every
// pending event must be *owned* by a registered Checkpointable component
// that re-creates it on restore, carrying its original insertion sequence
// number so that same-timestamp tie-breaking — and therefore the entire
// continuation — is bit-identical to a run that was never snapshotted.
// Snapshot verifies the ownership accounting (sum of PendingOwned over the
// registered components must equal the queue length) so a model that
// schedules an untracked closure fails loudly at snapshot time instead of
// silently dropping the event at restore time.
//
// Restore works against a freshly *rebuilt* model: the caller constructs
// the identical component graph (model construction is deterministic), then
// Restore discards the build-time event queue, resets the clock and
// counters from the snapshot, and replays each component's LoadState in
// registration order. Components re-create their pending events through
// ScheduleRestoredAt.
//
// Everything here is opt-in: until EnableSnapshots is called (before the
// model is built), registration is a no-op and the only cost on any hot
// path is a nil-map check in Port.SendDelayed.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"reflect"
	"sort"
	"sync"
)

// Checkpointable is implemented by components that carry simulation state
// across a snapshot. SaveState writes the component's state with the
// deterministic binary Encoder; LoadState reads it back in the same order.
// A component whose state includes pending engine events must also
// implement PendingOwner and re-create those events in LoadState with
// Engine.ScheduleRestoredAt.
type Checkpointable interface {
	SaveState(enc *Encoder)
	LoadState(dec *Decoder) error
}

// PendingOwner reports how many of the engine's pending events a component
// owns (and will re-create on restore). Engine.Snapshot sums PendingOwned
// over all registered components and refuses to snapshot unless the sum
// equals the queue length — the accounting that makes "no closure
// serialization" safe.
type PendingOwner interface {
	PendingOwned() int
}

// engineSnap is the engine's checkpoint registry, allocated only by
// EnableSnapshots.
type engineSnap struct {
	order     []string
	comps     map[string]Checkpointable
	restoring bool
}

// EnableSnapshots opts the engine into checkpoint tracking. It must be
// called before the model is built: components and links register (and
// begin tracking their in-flight events) at construction time only.
// Disabled engines pay nothing on the event hot path.
func (e *Engine) EnableSnapshots() {
	if e.snap == nil {
		e.snap = &engineSnap{comps: make(map[string]Checkpointable)}
	}
}

// SnapshotsEnabled reports whether EnableSnapshots has been called.
func (e *Engine) SnapshotsEnabled() bool { return e.snap != nil }

// Restoring reports whether a Restore is in progress (the only time
// ScheduleRestoredAt is legal).
func (e *Engine) Restoring() bool { return e.snap != nil && e.snap.restoring }

// RegisterCheckpoint adds a named component to the snapshot registry. The
// registration order is the save/load order and must be identical between
// the snapshotted build and the restoring rebuild, which it is for any
// deterministic model constructor. No-op when snapshots are disabled;
// duplicate names are a wiring bug and panic.
func (e *Engine) RegisterCheckpoint(name string, c Checkpointable) {
	if e.snap == nil {
		return
	}
	if _, dup := e.snap.comps[name]; dup {
		panic(fmt.Sprintf("sim: duplicate checkpoint registration %q", name))
	}
	e.snap.comps[name] = c
	e.snap.order = append(e.snap.order, name)
}

// NextSeq returns the sequence number the next scheduled event will be
// assigned. Components that own pending events read it immediately before
// scheduling so they can re-create the event with the same sequence on
// restore.
func (e *Engine) NextSeq() uint64 { return e.seq }

// pushAt enqueues an event with an explicit, previously assigned sequence
// number, without advancing the counter. Restore-path only.
func (e *Engine) pushAt(t Time, prio Priority, seq uint64, label string, fn Handler, payload any) {
	var ev *event
	if n := len(e.free) - 1; n >= 0 {
		ev = e.free[n]
		e.free[n] = nil
		e.free = e.free[:n]
	} else {
		ev = new(event)
	}
	ev.time, ev.prio, ev.seq, ev.fn, ev.payload = t, prio, seq, fn, payload
	if label != "" {
		ev.label = label
	}
	e.q.Push(ev)
}

// ScheduleRestoredAt re-creates a pending event from a snapshot: fn runs at
// absolute time t with the event's original insertion sequence, so ties
// against other restored events break exactly as they would have in the
// uninterrupted run. Only legal from a LoadState call during Restore.
func (e *Engine) ScheduleRestoredAt(t Time, prio Priority, seq uint64, label string, fn Handler, payload any) {
	if !e.Restoring() {
		panic("sim: ScheduleRestoredAt outside Restore")
	}
	if fn == nil {
		panic("sim: ScheduleRestoredAt with nil handler")
	}
	if seq >= e.seq {
		panic(fmt.Sprintf("sim: restored event seq %d not below restored counter %d", seq, e.seq))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: restored event at %v, before now %v", t, e.now))
	}
	e.pushAt(t, prio, seq, label, fn, payload)
}

// ownedPending sums PendingOwned over the registered components.
func (e *Engine) ownedPending() int {
	owned := 0
	for _, name := range e.snap.order {
		if po, ok := e.snap.comps[name].(PendingOwner); ok {
			owned += po.PendingOwned()
		}
	}
	return owned
}

// Snapshot writes the engine's state — clock, counters, and every
// registered component's SaveState blob — into enc. It must be called at a
// quiescent barrier (between Run calls) and fails if any pending event is
// not owned by a registered component.
func (e *Engine) Snapshot(enc *Encoder) (err error) {
	if e.snap == nil {
		return fmt.Errorf("sim: snapshot on an engine without EnableSnapshots")
	}
	if owned, pending := e.ownedPending(), e.q.Len(); owned != pending {
		return fmt.Errorf("sim: snapshot accounting: components own %d of %d pending events (an unowned closure was scheduled; route it through an EventSet or a Checkpointable owner)", owned, pending)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: snapshot failed: %v", r)
		}
	}()
	enc.Time(e.now)
	enc.U64(e.seq)
	enc.U64(e.handled)
	enc.U64(uint64(e.PeakPending()))
	enc.U64(uint64(len(e.snap.order)))
	for _, name := range e.snap.order {
		enc.String(name)
		sub := NewEncoder()
		e.snap.comps[name].SaveState(sub)
		enc.Blob(sub.Bytes())
	}
	return nil
}

// Restore rebuilds the engine's state from a snapshot taken by Snapshot.
// The caller must first rebuild the identical model (same components, same
// registration order) on this engine; Restore discards the build-time event
// queue, resets time and counters, and replays every component's LoadState,
// during which components re-create their pending events.
func (e *Engine) Restore(dec *Decoder) error {
	if e.snap == nil {
		return fmt.Errorf("sim: restore on an engine without EnableSnapshots")
	}
	// Drop the build-time queue: every pending event is re-created by its
	// owning component from the snapshot.
	for {
		ev := e.q.Pop()
		if ev == nil {
			break
		}
		ev.fn, ev.payload, ev.label = nil, nil, ""
		e.free = append(e.free, ev)
	}
	e.now = dec.Time()
	e.seq = dec.U64()
	e.handled = dec.U64()
	e.peak = int(dec.U64())
	e.stopped = false
	e.ClearInterrupt()
	n := dec.U64()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("sim: restore header: %w", err)
	}
	if int(n) != len(e.snap.order) {
		return fmt.Errorf("sim: snapshot has %d components, model has %d (model shape differs from snapshot)", n, len(e.snap.order))
	}
	e.snap.restoring = true
	defer func() { e.snap.restoring = false }()
	for i, want := range e.snap.order {
		name := dec.String()
		blob := dec.Blob()
		if err := dec.Err(); err != nil {
			return fmt.Errorf("sim: restore component %d: %w", i, err)
		}
		if name != want {
			return fmt.Errorf("sim: snapshot component %d is %q, model registered %q (model shape differs from snapshot)", i, name, want)
		}
		sub := NewDecoder(blob)
		if err := e.snap.comps[want].LoadState(sub); err != nil {
			return fmt.Errorf("sim: restore %q: %w", want, err)
		}
		if err := sub.Err(); err != nil {
			return fmt.Errorf("sim: restore %q: %w", want, err)
		}
		if rest := sub.Remaining(); rest != 0 {
			return fmt.Errorf("sim: restore %q left %d bytes unread", want, rest)
		}
	}
	if owned, pending := e.ownedPending(), e.q.Len(); owned != pending {
		return fmt.Errorf("sim: restore accounting: components own %d of %d pending events", owned, pending)
	}
	return nil
}

// --- Snapshot file container ---

// snapMagic identifies a gosst snapshot file.
var snapMagic = [8]byte{'G', 'O', 'S', 'S', 'T', 'S', 'N', 'P'}

// SnapshotVersion is the current snapshot container format version.
const SnapshotVersion uint16 = 1

// WriteSnapshot frames a snapshot body into w: magic, version, length,
// body, CRC32 (IEEE) of the body.
func WriteSnapshot(w io.Writer, body []byte) error {
	hdr := make([]byte, 8+2+8)
	copy(hdr, snapMagic[:])
	binary.LittleEndian.PutUint16(hdr[8:], SnapshotVersion)
	binary.LittleEndian.PutUint64(hdr[10:], uint64(len(body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(body))
	_, err := w.Write(sum[:])
	return err
}

// ReadSnapshot reads and verifies a snapshot container, returning the body.
func ReadSnapshot(r io.Reader) ([]byte, error) {
	hdr := make([]byte, 8+2+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("sim: snapshot header: %w", err)
	}
	if [8]byte(hdr[:8]) != snapMagic {
		return nil, fmt.Errorf("sim: not a snapshot file (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != SnapshotVersion {
		return nil, fmt.Errorf("sim: snapshot version %d, this build reads %d", v, SnapshotVersion)
	}
	n := binary.LittleEndian.Uint64(hdr[10:])
	const maxSnapshot = 1 << 32
	if n > maxSnapshot {
		return nil, fmt.Errorf("sim: snapshot body length %d exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("sim: snapshot body: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("sim: snapshot checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("sim: snapshot checksum mismatch (file corrupt): %08x != %08x", got, want)
	}
	return body, nil
}

// SaveTo snapshots the engine into w using the versioned, checksummed file
// container.
func (e *Engine) SaveTo(w io.Writer) error {
	enc := NewEncoder()
	if err := e.Snapshot(enc); err != nil {
		return err
	}
	return WriteSnapshot(w, enc.Bytes())
}

// LoadFrom restores the engine from a container written by SaveTo.
func (e *Engine) LoadFrom(r io.Reader) error {
	body, err := ReadSnapshot(r)
	if err != nil {
		return err
	}
	return e.Restore(NewDecoder(body))
}

// --- Deterministic binary encoding ---

// Encoder writes the snapshot wire format: unsigned varints (zigzag for
// signed), length-prefixed strings and blobs. The encoding has no
// map-order, pointer or host dependence, so the same state always produces
// the same bytes.
type Encoder struct{ buf []byte }

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset truncates the encoder for reuse, keeping its backing buffer. The
// speculative runner checkpoints every rank at each leg boundary through
// one persistent encoder per rank; resetting instead of reallocating keeps
// that hot path allocation-free once the buffer has grown to steady state.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// U64 appends an unsigned varint.
func (e *Encoder) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// I64 appends a zigzag-encoded signed varint.
func (e *Encoder) I64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Time appends a simulated timestamp.
func (e *Encoder) Time(t Time) { e.U64(uint64(t)) }

// Bool appends a boolean.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends a float64 by its exact IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads the Encoder's format with a sticky error: after the first
// malformed read every subsequent read returns a zero value, and Err
// reports the failure.
type Decoder struct {
	b   []byte
	err error
}

// NewDecoder reads from b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("sim: snapshot decode: truncated or malformed %s", what)
	}
}

// U64 reads an unsigned varint.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// I64 reads a zigzag-encoded signed varint.
func (d *Decoder) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Time reads a simulated timestamp.
func (d *Decoder) Time() Time { return Time(d.U64()) }

// Bool reads a boolean.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) == 0 {
		d.fail("bool")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v != 0
}

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Blob()) }

// Blob reads a length-prefixed byte slice (aliasing the decoder's buffer).
func (d *Decoder) Blob() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail("blob")
		return nil
	}
	b := d.b[:n]
	d.b = d.b[n:]
	return b
}

// --- Payload codecs ---

// Payloads of tracked events (link messages, EventSet payloads) are
// serialized through a registry keyed by concrete type on encode and by
// codec name on decode. The builtin scalar types are pre-registered;
// component packages register their own message types in init.

type payloadCodec struct {
	name string
	enc  func(*Encoder, any)
	dec  func(*Decoder) (any, error)
}

var (
	payloadMu     sync.RWMutex
	payloadByType = map[reflect.Type]*payloadCodec{}
	payloadByName = map[string]*payloadCodec{}
)

// payloadNil names the nil payload in the wire format.
const payloadNil = "_nil"

// RegisterPayload adds a snapshot codec for the concrete type of sample
// under the given stable name. Duplicate names or types panic: both sides
// of the registry must stay unambiguous for restore to be well-defined.
func RegisterPayload(name string, sample any, enc func(*Encoder, any), dec func(*Decoder) (any, error)) {
	t := reflect.TypeOf(sample)
	if t == nil || name == "" || name == payloadNil {
		panic("sim: RegisterPayload needs a non-nil sample and a nonempty name")
	}
	payloadMu.Lock()
	defer payloadMu.Unlock()
	if _, dup := payloadByName[name]; dup {
		panic(fmt.Sprintf("sim: duplicate payload codec name %q", name))
	}
	if _, dup := payloadByType[t]; dup {
		panic(fmt.Sprintf("sim: duplicate payload codec for type %v", t))
	}
	c := &payloadCodec{name: name, enc: enc, dec: dec}
	payloadByType[t] = c
	payloadByName[name] = c
}

// EncodePayload writes a payload with its codec name. Unregistered payload
// types panic (recovered into an error by Engine.Snapshot) naming the type.
func EncodePayload(e *Encoder, v any) {
	if v == nil {
		e.String(payloadNil)
		return
	}
	payloadMu.RLock()
	c := payloadByType[reflect.TypeOf(v)]
	payloadMu.RUnlock()
	if c == nil {
		panic(fmt.Sprintf("sim: payload type %T has no snapshot codec (register one with sim.RegisterPayload)", v))
	}
	e.String(c.name)
	c.enc(e, v)
}

// DecodePayload reads a payload written by EncodePayload.
func DecodePayload(d *Decoder) (any, error) {
	name := d.String()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if name == payloadNil {
		return nil, nil
	}
	payloadMu.RLock()
	c := payloadByName[name]
	payloadMu.RUnlock()
	if c == nil {
		return nil, fmt.Errorf("sim: snapshot payload codec %q not registered in this build", name)
	}
	return c.dec(d)
}

func init() {
	RegisterPayload("int", int(0),
		func(e *Encoder, v any) { e.I64(int64(v.(int))) },
		func(d *Decoder) (any, error) { return int(d.I64()), d.Err() })
	RegisterPayload("i64", int64(0),
		func(e *Encoder, v any) { e.I64(v.(int64)) },
		func(d *Decoder) (any, error) { return d.I64(), d.Err() })
	RegisterPayload("u64", uint64(0),
		func(e *Encoder, v any) { e.U64(v.(uint64)) },
		func(d *Decoder) (any, error) { return d.U64(), d.Err() })
	RegisterPayload("u32", uint32(0),
		func(e *Encoder, v any) { e.U64(uint64(v.(uint32))) },
		func(d *Decoder) (any, error) { return uint32(d.U64()), d.Err() })
	RegisterPayload("str", "",
		func(e *Encoder, v any) { e.String(v.(string)) },
		func(d *Decoder) (any, error) { return d.String(), d.Err() })
	RegisterPayload("bool", false,
		func(e *Encoder, v any) { e.Bool(v.(bool)) },
		func(d *Decoder) (any, error) { return d.Bool(), d.Err() })
	RegisterPayload("f64", float64(0),
		func(e *Encoder, v any) { e.F64(v.(float64)) },
		func(d *Decoder) (any, error) { return d.F64(), d.Err() })
	RegisterPayload("time", Time(0),
		func(e *Encoder, v any) { e.Time(v.(Time)) },
		func(d *Decoder) (any, error) { return d.Time(), d.Err() })
}

// --- EventSet: tracked closure scheduling ---

// setEvent is one tracked pending event.
type setEvent struct {
	at      Time
	prio    Priority
	payload any
}

// EventSet gives closure-heavy components checkpointable scheduling: all
// events in a set share one dispatch function, the payload identifies the
// work, and the set tracks which events are pending so Save/Load can carry
// them across a snapshot. With snapshots disabled the set is a passthrough
// to the engine (one nil-map check per schedule).
type EventSet struct {
	eng   *Engine
	label string
	fn    Handler
	pend  map[uint64]setEvent // nil when snapshots are disabled
}

// NewEventSet creates a set dispatching through fn with the given trace
// label. Tracking activates only if the engine's snapshots are enabled at
// creation time.
func NewEventSet(e *Engine, label string, fn Handler) *EventSet {
	if fn == nil {
		panic("sim: NewEventSet with nil dispatch")
	}
	s := &EventSet{eng: e, label: label, fn: fn}
	if e.SnapshotsEnabled() {
		s.pend = make(map[uint64]setEvent)
	}
	return s
}

// ScheduleAt schedules fn(payload) at absolute time t. The payload must
// have a registered snapshot codec when tracking is active.
func (s *EventSet) ScheduleAt(t Time, prio Priority, payload any) {
	if s.pend == nil {
		s.eng.ScheduleLabeledAt(t, prio, s.label, s.fn, payload)
		return
	}
	seq := s.eng.NextSeq()
	s.pend[seq] = setEvent{at: t, prio: prio, payload: payload}
	s.eng.ScheduleLabeledAt(t, prio, s.label, func(p any) {
		delete(s.pend, seq)
		s.fn(p)
	}, payload)
}

// PendingOwned implements PendingOwner for the set's owner.
func (s *EventSet) PendingOwned() int { return len(s.pend) }

// Save writes the set's pending events in sequence order.
func (s *EventSet) Save(enc *Encoder) {
	seqs := make([]uint64, 0, len(s.pend))
	for seq := range s.pend {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	enc.U64(uint64(len(seqs)))
	for _, seq := range seqs {
		ev := s.pend[seq]
		enc.U64(seq)
		enc.Time(ev.at)
		enc.I64(int64(ev.prio))
		EncodePayload(enc, ev.payload)
	}
}

// Load re-creates the set's pending events from a snapshot. Restore-path
// only (the owning component's LoadState). Events the rebuilt model
// scheduled at construction time are forgotten first: Engine.Restore has
// already discarded them from the queue.
func (s *EventSet) Load(dec *Decoder) error {
	if s.pend == nil {
		return fmt.Errorf("sim: EventSet %q restore without snapshot tracking", s.label)
	}
	clear(s.pend)
	n := dec.U64()
	for i := uint64(0); i < n; i++ {
		seq := dec.U64()
		at := dec.Time()
		prio := Priority(dec.I64())
		payload, err := DecodePayload(dec)
		if err != nil {
			return err
		}
		s.pend[seq] = setEvent{at: at, prio: prio, payload: payload}
		s.eng.ScheduleRestoredAt(at, prio, seq, s.label, func(p any) {
			delete(s.pend, seq)
			s.fn(p)
		}, payload)
	}
	return dec.Err()
}

// --- Link in-flight tracking ---

// linkEvent is one tracked in-flight delivery on a local link.
type linkEvent struct {
	at      Time
	toB     bool
	payload any
}

// trackForSnapshots turns on in-flight delivery tracking; called by
// Simulation.Connect when the engine has snapshots enabled.
func (l *Link) trackForSnapshots() {
	if l.inflight == nil {
		l.inflight = make(map[uint64]linkEvent)
	}
}

// trackSend schedules a tracked local delivery: the in-flight record is
// dropped when the delivery dispatches, so at any quiescent barrier the map
// holds exactly the deliveries still pending.
func (l *Link) trackSend(p *Port, delay Time, payload any) {
	e := l.engine
	peer := p.peer
	at := e.now + delay
	if at < e.now {
		at = TimeInfinity
	}
	seq := e.seq
	l.inflight[seq] = linkEvent{at: at, toB: peer == &l.b, payload: payload}
	e.ScheduleLabeled(delay, peer.prio, l.name, func(pl any) {
		delete(l.inflight, seq)
		peer.handler(pl)
	}, payload)
}

// PendingOwned implements PendingOwner: the number of in-flight deliveries.
func (l *Link) PendingOwned() int { return len(l.inflight) }

// SaveState writes the link's in-flight deliveries in sequence order.
// Payloads go through the codec registry; the fault interceptor has already
// run (interception happens at send time), so what is saved is what will be
// delivered.
func (l *Link) SaveState(enc *Encoder) {
	seqs := make([]uint64, 0, len(l.inflight))
	for seq := range l.inflight {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	enc.U64(uint64(len(seqs)))
	for _, seq := range seqs {
		ev := l.inflight[seq]
		enc.U64(seq)
		enc.Time(ev.at)
		enc.Bool(ev.toB)
		EncodePayload(enc, ev.payload)
	}
}

// LoadState re-creates the link's in-flight deliveries, forgetting any the
// rebuilt model put in flight at construction time (Engine.Restore has
// already discarded those from the queue).
func (l *Link) LoadState(dec *Decoder) error {
	if l.inflight == nil {
		return fmt.Errorf("sim: link %q restore without snapshot tracking", l.name)
	}
	clear(l.inflight)
	n := dec.U64()
	for i := uint64(0); i < n; i++ {
		seq := dec.U64()
		at := dec.Time()
		toB := dec.Bool()
		payload, err := DecodePayload(dec)
		if err != nil {
			return err
		}
		dst := &l.a
		if toB {
			dst = &l.b
		}
		l.inflight[seq] = linkEvent{at: at, toB: toB, payload: payload}
		l.engine.ScheduleRestoredAt(at, dst.prio, seq, l.name, func(pl any) {
			delete(l.inflight, seq)
			dst.handler(pl)
		}, payload)
	}
	return dec.Err()
}

// --- Clock checkpointing ---

// PendingOwned implements PendingOwner: an armed clock owns its tick event.
func (c *Clock) PendingOwned() int {
	if c.armed {
		return 1
	}
	return 0
}

// SaveState writes the clock's cycle position and pending-tick identity.
// The handler list itself is not serialized: the rebuilt model re-registers
// the same handlers in the same order; the count is saved as a consistency
// check.
func (c *Clock) SaveState(enc *Encoder) {
	enc.U64(uint64(c.cycle))
	enc.Bool(c.armed)
	enc.U64(c.tickSeq)
	enc.U64(uint64(len(c.handlers)))
}

// LoadState restores the cycle position and, if the clock was armed,
// re-creates the tick event with its original sequence (the build-time arm
// event was discarded by Engine.Restore).
func (c *Clock) LoadState(dec *Decoder) error {
	cycle := Cycle(dec.U64())
	armed := dec.Bool()
	tickSeq := dec.U64()
	nh := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if int(nh) != len(c.handlers) {
		return fmt.Errorf("sim: clock %s has %d handlers, snapshot had %d (handler registration diverged)", c.label, len(c.handlers), nh)
	}
	c.cycle = cycle
	c.armed = armed
	c.tickSeq = tickSeq
	if armed {
		c.engine.ScheduleRestoredAt(c.freq.CycleTime(c.cycle), c.prio, tickSeq, c.label, c.tickFn, nil)
	}
	return nil
}

// --- RNG checkpointing ---

// SaveState writes the generator's exact 256-bit state.
func (r *RNG) SaveState(enc *Encoder) {
	for _, s := range r.s {
		enc.U64(s)
	}
}

// LoadState restores the generator state.
func (r *RNG) LoadState(dec *Decoder) error {
	for i := range r.s {
		r.s[i] = dec.U64()
	}
	return dec.Err()
}
