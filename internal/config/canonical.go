package config

import (
	"crypto/sha256"
	"fmt"
	"io"

	"sst/internal/sim"
)

// Canonical content hashing. A sweep point is a pure function of its
// fully-resolved configuration, so a stable hash of that configuration is a
// content address for the point's result: two configs that resolve to the
// same machine hash identically (JSON field order, whitespace, and
// defaulted-vs-explicit spellings all wash out), and any semantic change
// produces a different hash. The serialization is Go struct field order via
// %#v over the *converted* component configurations — which are pure value
// types (no maps, pointers or slices), so the rendering is deterministic —
// never map-order-dependent JSON.
//
// The "amm/v1" / "sys/v1" prefixes version the key space: a future change
// to simulation semantics that is not visible in the config (a bug fix in a
// core model, say) bumps the version and orphans every stale cache entry by
// construction.

// canonVersionMachine tags the machine-config key space.
const canonVersionMachine = "amm/v1"

// canonVersionSystem tags the system-config key space.
const canonVersionSystem = "sys/v1"

// CanonicalHash returns a stable content address for the machine
// description, or an error if the config does not validate.
func (m MachineConfig) CanonicalHash() (string, error) {
	cp := m // Validate fills defaults on the copy, not the caller's value
	if err := cp.Validate(); err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\nname=%q\ncores=%d\n", canonVersionMachine, cp.Name, cp.Node.Cores)
	coherence := cp.Node.Coherence
	if coherence == "" {
		coherence = "bus"
	}
	fmt.Fprintf(h, "coherence=%s\nmax_ops=%d\n", coherence, cp.MaxOps)

	// cpu.Config has no Kind field (the kind selects which core type is
	// built), so it rides alongside the resolved struct.
	core, err := cp.Node.CPU.ToCoreConfig("cpu")
	if err != nil {
		return "", err
	}
	fmt.Fprintf(h, "cpu.kind=%s\ncpu=%#v\n", cp.Node.CPU.Kind, core)

	freq := core.Freq
	if err := hashCacheLevel(h, "l1", cp.Node.L1, freq); err != nil {
		return "", err
	}
	if err := hashCacheLevel(h, "l2", cp.Node.L2, freq); err != nil {
		return "", err
	}

	dcfg, err := cp.Node.Mem.ToDRAMConfig()
	if err != nil {
		return "", err
	}
	if err := dcfg.Validate(); err != nil { // fills WindowPerChannel etc.
		return "", err
	}
	fmt.Fprintf(h, "dram=%#v\ndram.capacity_gb=%v\n", dcfg, cp.Node.Mem.Capacity())

	// Workload: cp.Validate already filled N/Iters/Ops defaults.
	fmt.Fprintf(h, "workload=%#v\n", cp.Workload)
	return fmt.Sprintf("m1:%x", h.Sum(nil)), nil
}

// hashCacheLevel writes one resolved cache level (or its absence) into the
// hash stream. A nil spec hashes as an explicit absence marker so "no L2"
// can never collide with any real L2.
func hashCacheLevel(w io.Writer, name string, spec *CacheSpec, freq sim.Hz) error {
	if spec == nil {
		fmt.Fprintf(w, "%s=none\n", name)
		return nil
	}
	cfg, err := spec.ToCacheConfig(name, freq)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s=%#v\n", name, cfg)
	return nil
}

// CanonicalHash returns a stable content address for the system
// description, or an error if the config does not validate.
func (s SystemConfig) CanonicalHash() (string, error) {
	cp := s
	if err := cp.Validate(); err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\nname=%q\napp=%s\n", canonVersionSystem, cp.Name, cp.App)

	// Hash the built topology's identity, not the spec: defaulted spec
	// fields (torus z=0 → 1) wash out, and Name() encodes the shape.
	topo, err := cp.Topo.Build()
	if err != nil {
		return "", err
	}
	ranks := cp.Ranks
	if ranks == 0 {
		ranks = topo.NumNodes()
	}
	fmt.Fprintf(h, "topo=%s routers=%d nodes=%d\nranks=%d\nsteps=%d\n",
		topo.Name(), topo.NumRouters(), topo.NumNodes(), ranks, cp.Steps)

	net, err := cp.Net.ToNetConfig()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(h, "net=%#v\n", net)
	return fmt.Sprintf("s1:%x", h.Sum(nil)), nil
}
