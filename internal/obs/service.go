package obs

import (
	"encoding/json"
	"io"

	"sst/internal/cache"
	"sst/internal/stats"
)

// ServiceReport is the sweep service's metrics roll-up: scheduler state
// (queue depth, per-tenant backlog, jobs by state), admission-control
// counters, the retry/quarantine tallies aggregated from per-point
// reports, and — when the server shares a result cache across jobs — the
// cache counters. It satisfies core.Result structurally so /v1/metrics
// can serve it through the same table/json/csv machinery as study
// results.
type ServiceReport struct {
	// UptimeSeconds is host time since the server started.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Draining reports whether the server has stopped admitting jobs and
	// is finishing in-flight work.
	Draining bool `json:"draining"`

	// QueueDepth and QueueCapacity describe the admission queue; Shed
	// counts submissions rejected with 429 because the queue was full.
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	Shed          int64 `json:"shed"`

	// Tenants is the number of tenants with queued or running jobs.
	Tenants int `json:"tenants"`

	// Jobs by state.
	JobsQueued      int   `json:"jobs_queued"`
	JobsRunning     int   `json:"jobs_running"`
	JobsDone        int64 `json:"jobs_done"`
	JobsFailed      int64 `json:"jobs_failed"`
	JobsCancelled   int64 `json:"jobs_cancelled"`
	JobsInterrupted int64 `json:"jobs_interrupted"`
	JobsRecovered   int64 `json:"jobs_recovered"`

	// Point-level tallies across all jobs: completions, failures, retried
	// attempts and quarantined points.
	PointsDone   int64 `json:"points_done"`
	PointsFailed int64 `json:"points_failed"`
	Retries      int64 `json:"retries"`
	Quarantined  int64 `json:"quarantined"`

	// ReportsDropped counts per-point reports evicted from the jobs'
	// hard-capped report rings (each job retains only its most recent
	// reports; see SweepCollector). Non-zero means the per-job metrics
	// endpoints describe tails, not whole sweeps — the drop is counted
	// here instead of being silently swallowed.
	ReportsDropped int64 `json:"reports_dropped"`

	// Cache is the shared result cache's counter snapshot, nil when the
	// server runs without one.
	Cache *cache.Stats `json:"cache,omitempty"`
}

// Table renders the report as one metric/value table.
func (r *ServiceReport) Table() *stats.Table {
	t := stats.NewTable("Sweep service", "metric", "value")
	t.AddRow("uptime_seconds", r.UptimeSeconds)
	t.AddRow("draining", r.Draining)
	t.AddRow("queue_depth", r.QueueDepth)
	t.AddRow("queue_capacity", r.QueueCapacity)
	t.AddRow("shed", r.Shed)
	t.AddRow("tenants", r.Tenants)
	t.AddRow("jobs.queued", r.JobsQueued)
	t.AddRow("jobs.running", r.JobsRunning)
	t.AddRow("jobs.done", r.JobsDone)
	t.AddRow("jobs.failed", r.JobsFailed)
	t.AddRow("jobs.cancelled", r.JobsCancelled)
	t.AddRow("jobs.interrupted", r.JobsInterrupted)
	t.AddRow("jobs.recovered", r.JobsRecovered)
	t.AddRow("points.done", r.PointsDone)
	t.AddRow("points.failed", r.PointsFailed)
	t.AddRow("points.retries", r.Retries)
	t.AddRow("points.quarantined", r.Quarantined)
	t.AddRow("points.reports_dropped", r.ReportsDropped)
	if cs := r.Cache; cs != nil {
		t.AddRow("cache.policy", cs.Policy)
		t.AddRow("cache.entries", cs.Entries)
		t.AddRow("cache.hits", cs.Hits)
		t.AddRow("cache.misses", cs.Misses)
		t.AddRow("cache.hit_rate", cs.HitRate)
		t.AddRow("cache.evictions", cs.Evictions)
		if cs.Degraded {
			t.AddRow("cache.degraded", true)
			t.AddRow("cache.append_failures", cs.AppendFailures)
		}
	}
	return t
}

// WriteJSON emits the report as one indented JSON object.
func (r *ServiceReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits the metric/value table as CSV.
func (r *ServiceReport) WriteCSV(w io.Writer) error {
	return r.Table().WriteCSV(w)
}
