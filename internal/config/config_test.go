package config

import (
	"strings"
	"testing"

	"os"

	"sst/internal/dram"
	"sst/internal/mem"
	"sst/internal/sim"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"64", 64}, {"64B", 64}, {"32KB", 32 << 10}, {"4MB", 4 << 20},
		{"2GB", 2 << 30}, {"8K", 8 << 10}, {" 1 MB ", 1 << 20},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "KB", "-4KB", "3TB", "x"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) succeeded", bad)
		}
	}
}

func TestCPUSpecConversion(t *testing.T) {
	s := CPUSpec{Kind: "superscalar", Freq: "2.5GHz", Width: 4, Predictor: 512}
	cfg, err := s.ToCoreConfig("c0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Freq != 2_500_000_000 || cfg.Width != 4 || cfg.PredictorEntries != 512 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := (CPUSpec{Kind: "quantum", Freq: "1GHz"}).ToCoreConfig("c"); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := (CPUSpec{Kind: "inorder"}).ToCoreConfig("c"); err == nil {
		t.Error("missing freq accepted")
	}
	if _, err := (CPUSpec{Freq: "1GHz"}).ToCoreConfig("c"); err == nil {
		t.Error("missing kind accepted")
	}
}

func TestCacheSpecConversion(t *testing.T) {
	s := CacheSpec{Size: "32KB", Assoc: 4, HitLat: 2, MSHRs: 8, Repl: "fifo", Policy: "writethrough"}
	cfg, err := s.ToCacheConfig("l1", 2*sim.GHz)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SizeBytes != 32<<10 || cfg.LineBytes != 64 || cfg.Repl != mem.FIFO || cfg.WriteBack {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.HitLatency != sim.Nanosecond {
		t.Fatalf("hit latency = %v, want 1ns (2 cycles at 2GHz)", cfg.HitLatency)
	}
	if _, err := (CacheSpec{Size: "32KB", Assoc: 4, Repl: "clairvoyant"}).ToCacheConfig("l1", sim.GHz); err == nil {
		t.Error("bad replacement accepted")
	}
	if _, err := (CacheSpec{Size: "x", Assoc: 4}).ToCacheConfig("l1", sim.GHz); err == nil {
		t.Error("bad size accepted")
	}
}

func TestMemSpecConversion(t *testing.T) {
	s := MemSpec{Preset: "gddr5-4000", Channels: 4, Scheduler: "fcfs"}
	cfg, err := s.ToDRAMConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Channels != 4 || cfg.Scheduler != dram.FCFS {
		t.Fatalf("cfg = %+v", cfg)
	}
	if s.Capacity() != 16 {
		t.Fatal("default capacity")
	}
	if (MemSpec{CapacityGB: 8}).Capacity() != 8 {
		t.Fatal("explicit capacity")
	}
	if _, err := (MemSpec{Preset: "rambus"}).ToDRAMConfig(); err == nil {
		t.Error("bad preset accepted")
	}
	if _, err := (MemSpec{Preset: "ddr3-1333", Scheduler: "magic"}).ToDRAMConfig(); err == nil {
		t.Error("bad scheduler accepted")
	}
}

const sampleMachine = `{
  "name": "test-node",
  "node": {
    "cores": 2,
    "cpu": {"kind": "superscalar", "freq": "2GHz", "width": 4},
    "l1": {"size": "32KB", "assoc": 4, "hit_lat": 2},
    "l2": {"size": "512KB", "assoc": 8, "hit_lat": 10},
    "memory": {"preset": "ddr3-1333", "channels": 2}
  },
  "workload": {"kind": "hpccg", "n": 8, "iters": 1}
}`

func TestLoadMachine(t *testing.T) {
	m, err := LoadMachine(strings.NewReader(sampleMachine))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "test-node" || m.Node.Cores != 2 || m.Workload.N != 8 {
		t.Fatalf("m = %+v", m)
	}
}

func TestLoadMachineRejectsUnknownFields(t *testing.T) {
	src := strings.Replace(sampleMachine, `"name"`, `"nmae"`, 1)
	if _, err := LoadMachine(strings.NewReader(src)); err == nil {
		t.Fatal("typoed field accepted")
	}
}

func TestMachineValidate(t *testing.T) {
	m, _ := LoadMachine(strings.NewReader(sampleMachine))
	m.Node.L1 = nil // L2 without L1
	if err := m.Validate(); err == nil {
		t.Error("L2 without L1 accepted")
	}
	m, _ = LoadMachine(strings.NewReader(sampleMachine))
	m.Workload.Kind = "nope"
	if err := m.Validate(); err == nil {
		t.Error("bad workload accepted")
	}
	m, _ = LoadMachine(strings.NewReader(sampleMachine))
	m.Name = ""
	if err := m.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	m, _ = LoadMachine(strings.NewReader(sampleMachine))
	m.Node.Cores = -1
	if err := m.Validate(); err == nil {
		t.Error("negative cores accepted")
	}
}

func TestWorkloadDefaults(t *testing.T) {
	w := WorkloadSpec{Kind: "hpccg"}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.N != 16 || w.Iters != 1 {
		t.Fatalf("defaults: %+v", w)
	}
	w = WorkloadSpec{Kind: "synthetic"}
	if err := w.Validate(); err == nil {
		t.Error("synthetic without profile accepted")
	}
	w = WorkloadSpec{Kind: "synthetic", Profile: "stream"}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Ops == 0 {
		t.Error("synthetic ops default missing")
	}
}

func TestTopoSpecBuild(t *testing.T) {
	cases := []TopoSpec{
		{Kind: "mesh2d", X: 4, Y: 4},
		{Kind: "torus", X: 4, Y: 4, Z: 2},
		{Kind: "torus", X: 4, Y: 4}, // z defaults to 1
		{Kind: "fattree", Edges: 4, NodesPerEdge: 4, Cores: 4},
		{Kind: "crossbar", N: 16},
		{Kind: "hypercube", N: 4},
		{Kind: "butterfly", Switches: 4, Radix: 4},
	}
	for _, c := range cases {
		if _, err := c.Build(); err != nil {
			t.Errorf("%+v: %v", c, err)
		}
	}
	if _, err := (TopoSpec{Kind: "hypercube"}).Build(); err == nil {
		t.Error("bad topology accepted")
	}
}

const sampleSystem = `{
  "name": "test-sys",
  "topology": {"kind": "torus", "x": 4, "y": 4, "z": 2},
  "network": {"link_bw": 3.2e9, "inject_bw": 3.2e9, "link_lat": "100ns", "router_lat": "50ns"},
  "app": "cth",
  "steps": 4
}`

func TestLoadSystem(t *testing.T) {
	s, err := LoadSystem(strings.NewReader(sampleSystem))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "test-sys" || s.App != "cth" {
		t.Fatalf("s = %+v", s)
	}
	net, err := s.Net.ToNetConfig()
	if err != nil {
		t.Fatal(err)
	}
	if net.LinkLatency != 100*sim.Nanosecond || net.RouterLatency != 50*sim.Nanosecond {
		t.Fatalf("net = %+v", net)
	}
	topo, err := s.Topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 32 {
		t.Fatalf("nodes = %d", topo.NumNodes())
	}
}

func TestSystemValidate(t *testing.T) {
	s, _ := LoadSystem(strings.NewReader(sampleSystem))
	s.App = "doom"
	if err := s.Validate(); err == nil {
		t.Error("bad app accepted")
	}
	s, _ = LoadSystem(strings.NewReader(sampleSystem))
	s.Net.LinkLat = "soon"
	if err := s.Validate(); err == nil {
		t.Error("bad latency accepted")
	}
	if _, err := LoadSystem(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
}

func TestLoadFiles(t *testing.T) {
	dir := t.TempDir()
	mp := dir + "/m.json"
	if err := writeFile(mp, sampleMachine); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMachineFile(mp); err != nil {
		t.Fatal(err)
	}
	sp := dir + "/s.json"
	if err := writeFile(sp, sampleSystem); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSystemFile(sp); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMachineFile(dir + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
