// Command sst runs a simulation described by an Abstract Machine Model
// (AMM) JSON file and reports results. Machine files (a node architecture
// plus a workload) and system files (a topology, network parameters and a
// communication profile) are both accepted; the file's shape selects the
// mode.
//
// Usage:
//
//	sst -config machine.json [-stats] [-format table|json|csv]
//	    [-trace-out run.json] [-trace-cap N] [-metrics-out m.json]
//	sst -system system.json [-par N] [-sync global|pairwise]
//	    [-trace-out run.json] [-metrics-out m.json]
//
// -trace-out records per-event spans (simulated time, component label,
// host handler time) into a bounded ring and writes a Chrome trace_event
// file loadable in Perfetto (or CSV when the path ends in .csv).
// -metrics-out writes the run's engine/link metrics as JSON. -format json
// emits the result and metrics as one JSON object instead of the human
// summary.
//
// -par N partitions a -system run over N parallel ranks (the network
// fabric becomes internal/dnoc, bit-identical to the sequential run);
// -sync selects the conservative synchronization mode, pairwise
// (topology-aware lookahead, the default) or global (single minimum
// window). -trace-out is single-engine only and is rejected with -par.
//
// See configs/ for examples of both formats and internal/config for the
// full schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"sst/internal/config"
	"sst/internal/core"
	"sst/internal/dnoc"
	"sst/internal/noc"
	"sst/internal/obs"
	"sst/internal/par"
	"sst/internal/sim"
	"sst/internal/stats"
	"sst/internal/workload"
)

// interruptEngine makes Ctrl-C stop the engine at its next poll point, so
// an interrupted simulation reports where it was instead of dying mid-run.
// The returned func detaches the handler.
func interruptEngine(eng *sim.Engine) func() {
	return onInterrupt(eng.Interrupt)
}

// interruptRunner is interruptEngine for a parallel run: Ctrl-C interrupts
// every rank through the runner.
func interruptRunner(r *par.Runner) func() {
	return onInterrupt(r.Interrupt)
}

func onInterrupt(stop func()) func() {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	done := make(chan struct{})
	go func() {
		select {
		case <-sigc:
			stop()
		case <-done:
		}
	}()
	return func() {
		signal.Stop(sigc)
		close(done)
	}
}

// obsFlags bundles the observability options shared by both modes.
type obsFlags struct {
	traceOut   string
	traceCap   int
	metricsOut string
	format     core.Format
}

func main() {
	var (
		cfgPath    = flag.String("config", "", "machine config JSON")
		sysPath    = flag.String("system", "", "system config JSON")
		dumpStats  = flag.Bool("stats", false, "dump every component statistic")
		asCSV      = flag.Bool("csv", false, "deprecated: same as -format csv")
		formatFlag = flag.String("format", "table", "output format: table, json or csv")
		timeline   = flag.String("timeline", "", "write a DRAM-traffic time series CSV to this file")
		samplePd   = flag.String("sample-period", "10us", "timeline sampling period")
		traceOut   = flag.String("trace-out", "", "write an event trace to this file (Chrome JSON; CSV if path ends in .csv)")
		traceCap   = flag.Int("trace-cap", 0, "trace ring capacity in spans (0 = default 65536; keeps the run's tail)")
		metricsOut = flag.String("metrics-out", "", "write run metrics JSON to this file")
		parFlag    = flag.Int("par", 1, "partition a -system run over N parallel ranks")
		syncFlag   = flag.String("sync", "pairwise", "parallel sync mode: global or pairwise")
	)
	flag.Parse()
	format, err := core.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sst:", err)
		os.Exit(2)
	}
	if *asCSV {
		format = core.FormatCSV
	}
	syncMode, err := par.ParseSyncMode(*syncFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sst:", err)
		os.Exit(2)
	}
	ob := obsFlags{traceOut: *traceOut, traceCap: *traceCap, metricsOut: *metricsOut, format: format}
	switch {
	case *cfgPath != "":
		err = run(*cfgPath, *dumpStats, ob, *timeline, *samplePd)
	case *sysPath != "":
		err = runSystem(*sysPath, ob, *parFlag, syncMode)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sst:", err)
		os.Exit(1)
	}
}

// attachTracer installs a ring tracer on the engine when requested.
func (ob obsFlags) attachTracer(engine *sim.Engine) *obs.Tracer {
	if ob.traceOut == "" {
		return nil
	}
	t := obs.NewTracer(ob.traceCap)
	engine.SetTracer(t)
	return t
}

// flush writes the trace and metrics files.
func (ob obsFlags) flush(tracer *obs.Tracer, rep *obs.RunReport) error {
	if tracer != nil {
		write := tracer.WriteChromeJSON
		if strings.HasSuffix(ob.traceOut, ".csv") {
			write = tracer.WriteCSV
		}
		if err := writeFile(ob.traceOut, write); err != nil {
			return err
		}
	}
	if ob.metricsOut != "" && rep != nil {
		if err := writeFile(ob.metricsOut, rep.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSystem executes a multi-node communication-profile simulation,
// sequentially or (nranks > 1) partitioned over parallel ranks.
func runSystem(path string, ob obsFlags, nranks int, mode par.SyncMode) error {
	sys, err := config.LoadSystemFile(path)
	if err != nil {
		return err
	}
	topo, err := sys.Topo.Build()
	if err != nil {
		return err
	}
	netCfg, err := sys.Net.ToNetConfig()
	if err != nil {
		return err
	}
	var profile workload.CommProfile
	switch sys.App {
	case "cth":
		profile = workload.CTHProfile
	case "sage":
		profile = workload.SAGEProfile
	case "charon":
		profile = workload.CharonProfile
	case "xnobel":
		profile = workload.XNOBELProfile
	default:
		return fmt.Errorf("unknown app %q", sys.App)
	}
	if sys.Steps > 0 {
		profile.Steps = sys.Steps
	}
	ranks := sys.Ranks
	if ranks == 0 {
		ranks = topo.NumNodes()
	}
	if nranks > 1 {
		return runSystemPar(sys.Name, topo, netCfg, profile, ranks, ob, nranks, mode)
	}
	engine := sim.NewEngine()
	net, err := noc.NewNetwork(engine, "net", topo, netCfg, nil)
	if err != nil {
		return err
	}
	app, err := workload.NewApp(engine, profile.Name, net, profile.Scripts(ranks))
	if err != nil {
		return err
	}
	tracer := ob.attachTracer(engine)
	col := obs.NewCollector()
	col.Attach(engine)
	app.Start(nil)
	defer interruptEngine(engine)()
	engine.RunAll()
	if !app.Done() {
		if engine.Interrupted() {
			return fmt.Errorf("interrupted at %v: %w", engine.Now(), sim.ErrInterrupted)
		}
		return fmt.Errorf("application deadlocked at %v", engine.Now())
	}
	if err := ob.flush(tracer, col.Report()); err != nil {
		return err
	}
	energy := net.Energy(noc.DefaultPowerParams())
	fmt.Printf("system:          %s (%s, %d ranks)\n", sys.Name, topo.Name(), ranks)
	fmt.Printf("app:             %s, %d steps\n", profile.Name, profile.Steps)
	fmt.Printf("simulated time:  %.3f ms\n", app.Elapsed().Seconds()*1e3)
	fmt.Printf("messages:        %d (%.2f MB)\n", ranks*profile.Steps, float64(net.BytesDelivered())/1e6)
	fmt.Printf("mean msg latency: %.2f us\n", net.MessageLatencyMean()/1e6)
	fmt.Printf("max recv wait:   %.3f ms\n", app.MaxWaitTime().Seconds()*1e3)
	fmt.Printf("link utilization: mean %.3f, hottest %.3f\n", net.LinkUtilization(), net.HottestLinkUtilization())
	fmt.Printf("network energy:  %.3f J (%.2f W provisioned static)\n", energy.TotalJ(), energy.StaticW)
	return nil
}

// runSystemPar is the distributed variant of runSystem: the network fabric
// is internal/dnoc partitioned over the runner, and the application's rank
// scripts are grouped by home rank into one workload.App per partition.
// Results are bit-identical to the sequential run (asserted by
// internal/dnoc's and internal/par's tests).
func runSystemPar(name string, topo noc.Topology, netCfg noc.NetConfig,
	profile workload.CommProfile, ranks int, ob obsFlags, nranks int, mode par.SyncMode) error {
	if ob.traceOut != "" {
		return fmt.Errorf("-trace-out traces a single engine; it is not available with -par (remove one of the two)")
	}
	runner, err := par.NewRunner(nranks)
	if err != nil {
		return err
	}
	runner.SetSyncMode(mode)
	d, err := dnoc.New(runner, topo, netCfg, nil)
	if err != nil {
		return err
	}
	scripts := profile.Scripts(ranks)
	// Group the app ranks by the partition that owns their node: one
	// workload.App per par-rank, each driving only its local NICs.
	// Script send/recv peers are global node ids, so the grouping is
	// invisible to the protocol.
	ports := make([][]workload.MessagePort, nranks)
	local := make([][]*workload.Script, nranks)
	for i, s := range scripts {
		home := d.RankOfNode(i)
		ports[home] = append(ports[home], d.NIC(i))
		local[home] = append(local[home], s)
	}
	apps := make([]*workload.App, 0, nranks)
	for p := 0; p < nranks; p++ {
		if len(local[p]) == 0 {
			continue
		}
		app, err := workload.NewAppOnPorts(runner.Rank(p).Engine(), fmt.Sprintf("%s.rank%d", profile.Name, p), ports[p], local[p])
		if err != nil {
			return err
		}
		apps = append(apps, app)
	}
	col := obs.NewCollector()
	col.Attach(runner.Rank(0).Engine())
	col.AttachRunner(runner)
	for _, app := range apps {
		app.Start(nil)
	}
	defer interruptRunner(runner)()
	if _, err := runner.RunAll(); err != nil {
		return err
	}
	var elapsed sim.Time
	for _, app := range apps {
		if !app.Done() {
			return fmt.Errorf("application deadlocked (rank group %s)", app.Name())
		}
		if e := app.Elapsed(); e > elapsed {
			elapsed = e
		}
	}
	rep := col.Report()
	if err := ob.flush(nil, rep); err != nil {
		return err
	}
	m := runner.Metrics()
	fmt.Printf("system:          %s (%s, %d ranks over %d partitions, %s sync)\n",
		name, topo.Name(), ranks, nranks, m.Mode)
	fmt.Printf("app:             %s, %d steps\n", profile.Name, profile.Steps)
	fmt.Printf("simulated time:  %.3f ms\n", elapsed.Seconds()*1e3)
	fmt.Printf("messages:        %d (%.2f MB)\n", d.Messages(), float64(d.BytesDelivered())/1e6)
	fmt.Printf("mean msg latency: %.2f us\n", d.MeanLatencyPs()/1e6)
	fmt.Printf("sync windows:    %d (%d fast-forwards, lookahead %v, imbalance %.2f)\n",
		m.Windows, m.FastForwards, m.Lookahead, m.Imbalance)
	return nil
}

// resultTable renders a NodeResult as a metric/value table (the csv/table
// machine-readable form of the human summary).
func resultTable(res *core.NodeResult) *stats.Table {
	t := stats.NewTable("Run result: "+res.Name, "metric", "value")
	t.AddRow("machine", res.Name)
	t.AddRow("sim_seconds", res.Seconds)
	t.AddRow("retired", res.Retired)
	t.AddRow("flops", res.Flops)
	t.AddRow("ipc", res.IPC)
	t.AddRow("l1_hit_rate", res.L1HitRate)
	t.AddRow("l2_hit_rate", res.L2HitRate)
	t.AddRow("mem_bytes", res.MemBytes)
	t.AddRow("mem_gbs", res.MemBandwidth/1e9)
	t.AddRow("mem_row_hit_rate", res.MemRowHitRate)
	t.AddRow("node_watts", res.Budget.AvgPowerW())
	t.AddRow("node_cost_usd", res.Budget.TotalCostUSD())
	t.AddRow("area_mm2", res.AreaMM2)
	t.AddRow("temp_c", res.TempC)
	t.AddRow("mtbf_hours", res.MTBFHours)
	t.AddRow("events", res.Events)
	t.AddRow("peak_queue", res.PeakQueue)
	t.AddRow("host_seconds", res.HostSeconds)
	return t
}

func run(cfgPath string, dumpStats bool, ob obsFlags, timeline, samplePd string) error {
	cfg, err := config.LoadMachineFile(cfgPath)
	if err != nil {
		return err
	}
	node, err := core.BuildNode(cfg)
	if err != nil {
		return err
	}
	engine := node.Sim.Engine()
	defer interruptEngine(engine)()
	var sampler *stats.Sampler
	if timeline != "" {
		period, err := sim.ParseTime(samplePd)
		if err != nil {
			return err
		}
		sampler = stats.NewSampler(node.Reg, "dram.bytes", "dram.row_hits", "cpu.0.retired")
		sampler.Every(engine, period, 100_000)
	}
	tracer := ob.attachTracer(engine)
	col := obs.NewCollector()
	col.Attach(engine, node.Sim.Links()...)
	res, err := node.Run()
	if err != nil {
		return err
	}
	rep := col.Report()
	if err := ob.flush(tracer, rep); err != nil {
		return err
	}
	if sampler != nil {
		f, err := os.Create(timeline)
		if err != nil {
			return err
		}
		sampler.WriteCSV(f)
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("timeline:       %d samples -> %s\n", sampler.N(), timeline)
	}
	switch ob.format {
	case core.FormatJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Result  *core.NodeResult `json:"result"`
			Metrics *obs.RunReport   `json:"metrics"`
		}{res, rep}); err != nil {
			return err
		}
	case core.FormatCSV:
		if err := resultTable(res).WriteCSV(os.Stdout); err != nil {
			return err
		}
	default:
		fmt.Printf("machine:        %s\n", res.Name)
		fmt.Printf("simulated time: %.6f ms\n", res.Seconds*1e3)
		fmt.Printf("retired ops:    %d (%d flops)\n", res.Retired, res.Flops)
		fmt.Printf("aggregate IPC:  %.3f\n", res.IPC)
		if res.L1HitRate > 0 {
			fmt.Printf("L1 hit rate:    %.4f\n", res.L1HitRate)
		}
		if res.L2HitRate > 0 {
			fmt.Printf("L2 hit rate:    %.4f\n", res.L2HitRate)
		}
		fmt.Printf("DRAM traffic:   %.2f MB at %.2f GB/s (row hit %.3f)\n",
			float64(res.MemBytes)/1e6, res.MemBandwidth/1e9, res.MemRowHitRate)
		fmt.Printf("node power:     %.2f W (core %.3f J, mem %.3f J)\n",
			res.Budget.AvgPowerW(), res.Budget.CoreEnergyJ, res.Budget.MemEnergyJ)
		fmt.Printf("node cost:      $%.0f (die %.1f mm²)\n", res.Budget.TotalCostUSD(), res.AreaMM2)
		if res.TempC > 0 {
			fmt.Printf("die temperature: %.1f C (node MTBF %.2g h)\n", res.TempC, res.MTBFHours)
		}
		fmt.Printf("events:         %d (peak queue %d, %.3fs host, %.3g ev/s)\n",
			res.Events, res.PeakQueue, res.HostSeconds, rep.Engine.EventsPerSec)
	}
	if dumpStats {
		fmt.Println()
		if ob.format == core.FormatCSV {
			node.Reg.WriteCSV(os.Stdout)
		} else {
			node.Reg.Dump(os.Stdout)
		}
	}
	return nil
}
