package mem

import (
	"sst/internal/sim"
	"sst/internal/stats"
)

// Bus is a snooping coherence bus: several caches (and optionally cache-less
// masters) share one path to a lower device. Every transaction snoops the
// other attached caches, implementing MESI:
//
//   - read with a dirty peer   → peer writes back, supplies cache-to-cache
//   - read with any clean peer → fill Shared from below
//   - read with no peer        → fill Exclusive from below
//   - read-for-ownership/upgrade → invalidate peers (writing back dirty data)
//
// Transactions to the same line are serialized, exactly as a physical bus
// serializes them: without this, two concurrent misses to one line would
// each snoop before the other's fill and both install Exclusive.
//
// Bandwidth is modelled by per-byte occupancy of the shared bus; latency by
// a fixed per-transaction delay.
type Bus struct {
	name    string
	engine  *sim.Engine
	lower   Device
	latency sim.Time
	perByte sim.Time
	freeAt  sim.Time
	ports   []*BusPort

	// pending serializes same-line transactions: key present means a
	// transaction owns the line; the slice holds queued transaction
	// bodies.
	pending map[uint64][]func()

	transactions  *stats.Counter
	c2cTransfers  *stats.Counter
	invals        *stats.Counter
	writebacks    *stats.Counter
	busyTime      *stats.Counter
	lineConflicts *stats.Counter
}

// NewBus builds a bus in front of lower. bytesPerSecond of 0 means
// unlimited bandwidth. scope may be nil.
func NewBus(engine *sim.Engine, name string, latency sim.Time, bytesPerSecond float64, lower Device, scope *stats.Scope) *Bus {
	b := &Bus{
		name:    name,
		engine:  engine,
		lower:   lower,
		latency: latency,
		pending: make(map[uint64][]func()),
	}
	if bytesPerSecond > 0 {
		b.perByte = sim.Time(float64(sim.Second) / bytesPerSecond)
		if b.perByte == 0 {
			b.perByte = 1
		}
	}
	if scope == nil {
		scope = stats.NewRegistry().Scope(name)
	}
	b.transactions = scope.Counter("transactions")
	b.c2cTransfers = scope.Counter("cache_to_cache")
	b.invals = scope.Counter("invalidations")
	b.writebacks = scope.Counter("writebacks")
	b.busyTime = scope.Counter("busy_ps")
	b.lineConflicts = scope.Counter("line_conflicts")
	return b
}

// Name returns the bus's instance name.
func (b *Bus) Name() string { return b.name }

// Port attaches a master to the bus. Pass the cache for snooped masters,
// or nil for cache-less masters (then optionally AttachCache later).
func (b *Bus) Port(c *Cache) *BusPort {
	p := &BusPort{bus: b, cache: c}
	if c != nil {
		c.busPort = p
	}
	b.ports = append(b.ports, p)
	return p
}

// acquire runs body now if no transaction owns line addr, else queues it.
// Every body must call release(addr) exactly once when its transaction is
// globally visible.
func (b *Bus) acquire(addr uint64, body func()) {
	if q, busy := b.pending[addr]; busy {
		b.lineConflicts.Inc()
		b.pending[addr] = append(q, body)
		return
	}
	b.pending[addr] = nil
	body()
}

// release ends the current transaction on addr and starts the next queued
// one, if any.
func (b *Bus) release(addr uint64) {
	q, ok := b.pending[addr]
	if !ok {
		return
	}
	if len(q) == 0 {
		delete(b.pending, addr)
		return
	}
	next := q[0]
	b.pending[addr] = q[1:]
	next()
}

// occupy claims the shared bus for size bytes; it returns the queuing delay
// before the transaction begins and the transfer (hold) time.
func (b *Bus) occupy(size int) (delay, hold sim.Time) {
	b.transactions.Inc()
	now := b.engine.Now()
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	hold = b.perByte * sim.Time(size)
	b.freeAt = start + hold
	b.busyTime.Add(uint64(hold))
	return start - now, hold
}

// snoopOthers visits every attached cache except skip.
func (b *Bus) snoopOthers(skip *BusPort, visit func(c *Cache)) {
	for _, p := range b.ports {
		if p == skip || p.cache == nil {
			continue
		}
		visit(p.cache)
	}
}

// AttachCache binds a cache to a port created with Port(nil). This resolves
// the construction cycle: the port must exist to build the cache (it is the
// cache's lower device), and the cache must exist to be snooped.
func (p *BusPort) AttachCache(c *Cache) {
	p.cache = c
	c.busPort = p
}

// BusPort is one master's connection to the bus. It implements Device,
// Fetcher, Upgrader and WritebackSink, so a Cache can use it directly as
// its lower level.
type BusPort struct {
	bus   *Bus
	cache *Cache
}

var (
	_ Device        = (*BusPort)(nil)
	_ Fetcher       = (*BusPort)(nil)
	_ Upgrader      = (*BusPort)(nil)
	_ WritebackSink = (*BusPort)(nil)
)

// Fetch implements Fetcher: a coherent line fill.
func (p *BusPort) Fetch(op Op, addr uint64, size int, done func(excl bool)) {
	b := p.bus
	b.acquire(addr, func() {
		qd, hold := b.occupy(size)
		// done runs before release: the requester must install its
		// line before the next queued transaction snoops.
		finish := func(excl bool) {
			done(excl)
			b.release(addr)
		}
		if op == Write {
			// Read-for-ownership: invalidate peers.
			dirtyPeer := false
			b.snoopOthers(p, func(c *Cache) {
				had, dirty := c.snoopInvalidate(addr)
				if had {
					b.invals.Inc()
				}
				if dirty {
					dirtyPeer = true
				}
			})
			if dirtyPeer {
				// Peer supplies the data cache-to-cache while
				// its writeback drains below.
				b.c2cTransfers.Inc()
				b.writebacks.Inc()
				b.lower.Access(Write, addr, size, nil)
				b.engine.Schedule(qd+hold+b.latency, func(any) { finish(true) }, nil)
				return
			}
			b.engine.Schedule(qd+b.latency, func(any) {
				b.lower.Access(Read, addr, size, func() {
					b.engine.Schedule(hold, func(any) { finish(true) }, nil)
				})
			}, nil)
			return
		}
		// Shared read.
		anyPeer, dirtyPeer := false, false
		b.snoopOthers(p, func(c *Cache) {
			had, dirty := c.snoopRead(addr)
			anyPeer = anyPeer || had
			dirtyPeer = dirtyPeer || dirty
		})
		if dirtyPeer {
			b.c2cTransfers.Inc()
			b.writebacks.Inc()
			b.lower.Access(Write, addr, size, nil)
			b.engine.Schedule(qd+hold+b.latency, func(any) { finish(false) }, nil)
			return
		}
		excl := !anyPeer
		b.engine.Schedule(qd+b.latency, func(any) {
			b.lower.Access(Read, addr, size, func() {
				b.engine.Schedule(hold, func(any) { finish(excl) }, nil)
			})
		}, nil)
	})
}

// Upgrade implements Upgrader: invalidate all other sharers.
func (p *BusPort) Upgrade(addr uint64, size int, done func()) {
	b := p.bus
	b.acquire(addr, func() {
		qd, hold := b.occupy(8) // command-only transaction
		b.snoopOthers(p, func(c *Cache) {
			if had, _ := c.snoopInvalidate(addr); had {
				b.invals.Inc()
			}
		})
		b.engine.Schedule(qd+hold+b.latency, func(any) {
			done()
			b.release(addr)
		}, nil)
	})
}

// WriteBack implements WritebackSink: posted dirty eviction to memory.
func (p *BusPort) WriteBack(addr uint64, size int) {
	b := p.bus
	b.acquire(addr, func() {
		qd, hold := b.occupy(size)
		b.writebacks.Inc()
		b.engine.Schedule(qd+hold+b.latency, func(any) {
			b.lower.Access(Write, addr, size, nil)
			b.release(addr)
		}, nil)
	})
}

// Access implements Device for cache-less masters (PIM cores, NICs): reads
// are coherent fetches, writes invalidate sharers and go to memory.
func (p *BusPort) Access(op Op, addr uint64, size int, done func()) {
	if op == Read {
		p.Fetch(Read, addr, size, func(bool) {
			if done != nil {
				done()
			}
		})
		return
	}
	b := p.bus
	b.acquire(addr, func() {
		qd, hold := b.occupy(size)
		b.snoopOthers(p, func(c *Cache) {
			if had, _ := c.snoopInvalidate(addr); had {
				b.invals.Inc()
			}
		})
		b.engine.Schedule(qd+hold+b.latency, func(any) {
			b.lower.Access(Write, addr, size, func() {
				if done != nil {
					done()
				}
				b.release(addr)
			})
		}, nil)
	})
}
