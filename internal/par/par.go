// Package par is gosst's parallel discrete-event runtime: conservative and
// optimistic barrier-synchronized PDES in the Structural Simulation Toolkit
// mold.
//
// The model graph is partitioned into ranks, each with its own sequential
// sim.Engine running in its own goroutine. Ranks only interact over links,
// and every cross-rank link has a declared nonzero latency, so link
// latencies bound how soon one rank can affect another (the lookahead).
// The coordinator advances each rank through half-open windows bounded by
// a conservative horizon; the conservative synchronization modes derive
// that horizon (see SyncMode): the classic global window equal to the
// single minimum cross-rank latency, and the default topology-aware
// pairwise mode where each rank's horizon is computed from the other
// ranks' next-event-time snapshots plus a per-rank-pair lookahead matrix
// (all-pairs shortest latency paths over the partitioned link graph).
// Ranks with no work below their horizon are skipped without a dispatch,
// and when no rank has work the coordinator fast-forwards every rank
// straight to the globally earliest pending event. The speculative and
// adaptive modes (see speculative.go) let ranks execute optimistically
// past the pairwise horizon, checkpointing through the snapshot codec and
// rolling back on straggler arrivals; cross-rank sends are held until
// committed, so no anti-messages are needed. Remote events are staged per
// destination in canonical (time, send time, source rank, sequence) order
// and only scheduled once the destination's window covers them, so a
// parallel run is bit-for-bit deterministic — independent of goroutine
// scheduling, rank count, and sync mode, conservative or speculative.
package par

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"sst/internal/sim"
)

// ErrStalled reports that the progress watchdog fired: no rank completed a
// synchronization window within the watchdog period. The wrapping error
// carries per-rank diagnostics (clock, pending events, outbox depth).
var ErrStalled = errors.New("par: runner stalled")

// DefaultWatchdog is the default zero-progress limit. A synchronization
// window that takes longer than this without any rank finishing is treated
// as a stall — a zero-delay event loop, a handler blocked on host I/O, or a
// mis-partitioned model — and Run returns a diagnostic error instead of
// hanging. Models whose windows legitimately run longer should raise it via
// SetWatchdog; SetWatchdog(0) disables the check entirely.
const DefaultWatchdog = 30 * time.Second

// remoteEvent is one payload crossing a rank boundary. sent (the sender's
// clock at the Send call) participates in the canonical merge order: a
// sequential run inserts a delivery into the queue at send time, so
// same-arrival-time deliveries tie-break chronologically by send — the
// staging heap reproduces that regardless of which barrier round carried
// each event across.
type remoteEvent struct {
	time    sim.Time
	sent    sim.Time
	srcRank int
	seq     uint64
	dst     *sim.Port
	payload any
}

// rank is one partition: an engine plus per-destination outboxes.
type rank struct {
	id       int
	sim      *sim.Simulation
	outboxes [][]remoteEvent // indexed by destination rank
	sendSeq  uint64
	handled  uint64
	// base is how far this rank has conservatively advanced: every event
	// below base has been processed, and no future remote event can arrive
	// below it. horizon is the upper bound of the window being considered
	// this round. Both are coordinator-owned.
	base    sim.Time
	horizon sim.Time
	// staging holds remote events addressed to this rank that its window
	// has not yet reached, in canonical (time, sent, srcRank, seq) heap order.
	staging remoteHeap
	// Cumulative run metrics, updated only by the coordinator goroutine
	// between windows (never by the rank goroutine), so reading them after
	// Run returns is race-free.
	events      uint64
	idleWindows uint64
	skipped     uint64
	// err captures a panic raised by this rank's event handlers during a
	// window; the coordinator surfaces it after the barrier.
	err error

	// Speculative-mode state (see speculative.go). target is the leg bound
	// for the current round; spec is the per-Run rollback bookkeeping;
	// specOn arms the replay-dedupe guard in the cross-rank intercept.
	// rollbacks/replayed/fallbacks/promotions are cumulative counters
	// surfaced through Metrics and persisted by Snapshot; the specPeak*
	// fields record high-water marks for the memory-discipline tests.
	target        sim.Time
	spec          *specState
	specOn        bool
	rollbacks     uint64
	replayed      uint64
	fallbacks     uint64
	promotions    uint64
	specPeakCkpts int
	specPeakBytes int
	specPeakLog   int

	// Snapshot fields published by the rank goroutine at each barrier
	// arrival and read by the watchdog for stall diagnostics. Atomics so
	// the coordinator may read them while other ranks still run.
	pubClock   atomic.Int64
	pubPending atomic.Int64
	pubOutbox  atomic.Int64
	pubWindows atomic.Uint64
}

// publish records the rank's post-window state for the stall watchdog.
func (rk *rank) publish() {
	eng := rk.sim.Engine()
	rk.pubClock.Store(int64(eng.Now()))
	rk.pubPending.Store(int64(eng.Pending()))
	depth := 0
	for _, ob := range rk.outboxes {
		depth += len(ob)
	}
	rk.pubOutbox.Store(int64(depth))
	rk.pubWindows.Add(1)
}

// runWindow advances the rank's engine to the horizon, converting handler
// panics into rank errors so one broken component reports instead of
// killing the process.
func (rk *rank) runWindow(horizon sim.Time) {
	defer func() {
		if r := recover(); r != nil {
			rk.err = rankPanicError(rk.id, rk.sim.Engine().Now(), r)
		}
	}()
	if horizon == sim.TimeInfinity {
		rk.handled = rk.sim.Engine().Run(horizon)
	} else {
		rk.handled = rk.sim.Engine().Run(horizon - 1)
	}
}

// deliverStaged schedules every staged remote event the rank's current
// window covers into its engine, in canonical (time, sent, srcRank, seq) order.
// Deferring delivery to the covering window — rather than scheduling at
// whichever barrier carried the event across — makes the engine insertion
// order, and therefore same-timestamp tie-breaking, independent of window
// boundaries. That is what keeps global and pairwise sync bit-identical.
func (rk *rank) deliverStaged() {
	eng := rk.sim.Engine()
	for len(rk.staging) > 0 && rk.staging[0].time < rk.horizon {
		ev := rk.staging.pop()
		eng.ScheduleAt(ev.time, sim.PrioLink, func(any) { ev.dst.Deliver(ev.payload) }, nil)
	}
}

// nextWork returns the earliest thing this rank could possibly do: its
// engine's next pending event or its earliest staged remote event.
func (rk *rank) nextWork() sim.Time {
	next := rk.sim.Engine().NextEventTime()
	if t := rk.staging.minTime(); t < next {
		next = t
	}
	return next
}

// rankPanicError formats a recovered handler panic. Handlers wrapped with
// sim.Guard arrive as *sim.PanicError and the message names the component;
// bare panics fall back to the panic value plus the recovery-site stack.
func rankPanicError(id int, now sim.Time, r any) error {
	if pe, ok := r.(*sim.PanicError); ok {
		return fmt.Errorf("par: rank %d at %v: %w\n%s", id, now, pe, pe.Stack)
	}
	return fmt.Errorf("par: rank %d at %v: panic: %v\n%s", id, now, r, debug.Stack())
}

// Runner coordinates the ranks.
type Runner struct {
	ranks      []*rank
	mode       SyncMode
	lookahead  sim.Time
	crossLinks int
	// minLat is the direct cross-rank adjacency (min latency per pair);
	// la is the derived all-pairs lookahead matrix, rebuilt when laDirty.
	minLat       [][]sim.Time
	la           [][]sim.Time
	laDirty      bool
	now          sim.Time
	watchdog     time.Duration
	interrupted  atomic.Bool
	windows      uint64
	fastForwards uint64
	// Speculative-mode knobs (see SetSpecLeap / SetSpecDepth).
	specLeap  int
	specDepth int

	// snapPorts indexes cross-rank ports by name for coordinated snapshots
	// (staged remote events serialize their destination by port name);
	// snapDups flags names that appeared more than once. Nil unless
	// EnableSnapshots was called. See snapshot.go.
	snapPorts map[string]*sim.Port
	snapDups  map[string]bool
}

// NewRunner creates nranks empty partitions.
func NewRunner(nranks int) (*Runner, error) {
	if nranks <= 0 {
		return nil, fmt.Errorf("par: need at least one rank")
	}
	r := &Runner{
		lookahead: sim.TimeInfinity,
		watchdog:  DefaultWatchdog,
		specLeap:  DefaultSpecLeap,
		specDepth: DefaultSpecDepth,
	}
	r.minLat = make([][]sim.Time, nranks)
	for i := range r.minLat {
		r.minLat[i] = make([]sim.Time, nranks)
		for j := range r.minLat[i] {
			r.minLat[i][j] = sim.TimeInfinity
		}
		r.minLat[i][i] = 0
	}
	for i := 0; i < nranks; i++ {
		rk := &rank{id: i, sim: sim.New(), outboxes: make([][]remoteEvent, nranks)}
		r.ranks = append(r.ranks, rk)
	}
	return r, nil
}

// NumRanks returns the partition count.
func (r *Runner) NumRanks() int { return len(r.ranks) }

// Rank returns partition i's simulation container; build that rank's
// components against it.
func (r *Runner) Rank(i int) *sim.Simulation { return r.ranks[i].sim }

// Now returns the global base time: every event below it has been
// processed on every rank.
func (r *Runner) Now() sim.Time { return r.now }

// SetWatchdog sets the zero-progress limit: if no rank completes a
// synchronization window within d, Run interrupts the rank engines and
// returns an ErrStalled diagnostic instead of hanging. d = 0 disables the
// watchdog. The default is DefaultWatchdog.
func (r *Runner) SetWatchdog(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.watchdog = d
}

// Interrupt asks a running simulation to stop at the next opportunity:
// every rank engine is interrupted and the coordinator returns
// sim.ErrInterrupted after the current window's barrier. Safe to call from
// any goroutine (signal handlers in the CLIs use it).
func (r *Runner) Interrupt() {
	r.interrupted.Store(true)
	for _, rk := range r.ranks {
		rk.sim.Engine().Interrupt()
	}
}

// Lookahead returns the global synchronization floor (min cross-rank
// latency; 0 with no cross links). Pairwise mode may run individual ranks
// through far wider windows — see PairLookahead.
func (r *Runner) Lookahead() sim.Time {
	if r.crossLinks == 0 {
		return 0
	}
	return r.lookahead
}

// Connect creates a link of the given latency between rankA and rankB,
// returning the port on each side. Same-rank connections are ordinary
// local links; cross-rank connections must have nonzero latency, which
// feeds the runner's lookahead matrix.
func (r *Runner) Connect(name string, latency sim.Time, rankA, rankB int) (*sim.Port, *sim.Port, error) {
	if rankA < 0 || rankA >= len(r.ranks) || rankB < 0 || rankB >= len(r.ranks) {
		return nil, nil, fmt.Errorf("par: link %q connects invalid ranks %d,%d", name, rankA, rankB)
	}
	if rankA == rankB {
		a, b := r.ranks[rankA].sim.Connect(name, latency)
		return a, b, nil
	}
	if latency == 0 {
		return nil, nil, fmt.Errorf("par: cross-rank link %q needs nonzero latency (it is the lookahead)", name)
	}
	// The link object nominally lives on rankA's engine, but delivery is
	// fully intercepted, so the home engine is never used for sends.
	a, b := sim.Connect(r.ranks[rankA].sim.Engine(), name, latency)
	if r.snapPorts != nil {
		r.recordSnapPort(a)
		r.recordSnapPort(b)
	}
	r.crossLinks++
	if latency < r.lookahead {
		r.lookahead = latency
	}
	r.recordLink(rankA, rankB, latency)
	ra, rb := r.ranks[rankA], r.ranks[rankB]
	a.Link().SetDeliver(func(from *sim.Port, delay sim.Time, payload any) {
		src, dstRank, dstPort := ra, rb.id, b
		if from == b {
			src, dstRank, dstPort = rb, ra.id, a
		}
		src.sendSeq++
		now := src.sim.Engine().Now()
		if src.specOn && now < src.base {
			// Replay below the committed base regenerates sends the
			// committed timeline already released. The prefix replays
			// deterministically — same events, same sends, and the send
			// counter was restored from the rollback checkpoint — so
			// dropping here (after consuming the sequence number) discards
			// exactly the duplicates. Conservative legs never execute
			// below base, so the guard is speculative-only by construction.
			return
		}
		src.outboxes[dstRank] = append(src.outboxes[dstRank], remoteEvent{
			time:    now + delay,
			sent:    now,
			srcRank: src.id,
			seq:     src.sendSeq,
			dst:     dstPort,
			payload: payload,
		})
	})
	return a, b, nil
}

// horizonFor computes how far rank i may safely advance this round. In
// global mode it is the shared window base plus the single minimum
// cross-rank latency. In pairwise mode it is derived from the snapshot of
// every rank's next-event time nw[j] (engine queue or staged remote, taken
// while all workers are parked): any event that can still reach rank i
// starts from some currently scheduled event at some rank j and travels at
// least the shortest-path latency la[j][i], so nothing can arrive before
//
//	min over j != i of  nw[j] + la[j][i]
//
// Traffic rank i itself originates can come back no sooner than a round
// trip, nw[i] + 2*min_j la[i][j], which is the i == j term. Using
// next-event times instead of rank clocks is what makes the horizon
// topology-aware in practice: a tightly-coupled cluster with nothing
// scheduled stops pacing everyone else, and loosely-coupled ranks get
// windows sized by their slow inbound links rather than by the busiest
// pair's tight one. Both variants are clamped to [rank base, until].
func (r *Runner) horizonFor(i int, la [][]sim.Time, nw []sim.Time, until sim.Time) sim.Time {
	rk := r.ranks[i]
	var h sim.Time
	if r.mode == SyncGlobal {
		h = r.now + r.lookahead
		if h < r.now { // overflow: effectively unconstrained
			h = sim.TimeInfinity
		}
	} else {
		h = sim.TimeInfinity
		minIn := sim.TimeInfinity
		for j := range r.ranks {
			if j == i {
				continue
			}
			l := la[j][i]
			if l == sim.TimeInfinity {
				continue
			}
			if l < minIn {
				minIn = l
			}
			c := nw[j] + l
			if c < nw[j] { // overflow: that rank is unconstraining
				continue
			}
			if c < h {
				h = c
			}
		}
		// Round trip for traffic rank i itself originates (la is
		// symmetric, so min inbound == min outbound).
		if rt := 2 * minIn; minIn != sim.TimeInfinity && rt > minIn {
			if c := nw[i] + rt; c >= nw[i] && c < h {
				h = c
			}
		}
	}
	if h > until {
		h = until
	}
	if h < rk.base {
		h = rk.base
	}
	return h
}

// Run advances the whole model until the given time (or until globally
// idle), returning total events handled. Events scheduled exactly at
// `until` are not processed (windows are half-open), so event counts match
// across rank counts. With one rank Run degenerates to a sequential run
// with no synchronization overhead.
func (r *Runner) Run(until sim.Time) (uint64, error) {
	if len(r.ranks) == 1 && r.crossLinks == 0 {
		rk := r.ranks[0]
		rk.err = nil
		rk.runWindow(until) // half-open: finite horizons run to until-1
		rk.publish()
		n := rk.handled
		rk.events += n
		if n == 0 {
			rk.idleWindows++
		}
		r.windows++
		if rk.err != nil {
			return n, rk.err
		}
		if rk.sim.Engine().Interrupted() || r.interrupted.Load() {
			r.now = rk.sim.Engine().Now()
			return n, fmt.Errorf("par: run interrupted at %v: %w", r.now, sim.ErrInterrupted)
		}
		r.now = until
		if until == sim.TimeInfinity {
			r.now = rk.sim.Engine().Now()
		}
		return n, nil
	}
	if r.crossLinks > 0 && (r.lookahead == 0 || r.lookahead == sim.TimeInfinity) {
		return 0, fmt.Errorf("par: no usable lookahead")
	}
	if r.mode.Speculative() && r.crossLinks > 0 {
		return r.runSpeculative(until)
	}
	la := r.lookaheadMatrix()
	// Persistent workers for this Run call: one goroutine per rank,
	// handed a horizon per window. This keeps per-window cost to a pair
	// of channel operations instead of goroutine churn. Workers publish a
	// state snapshot and announce themselves on the barrier channel after
	// each window; the coordinator counts arrivals (with a watchdog)
	// instead of blocking on an uninterruptible WaitGroup.
	work := make([]chan sim.Time, len(r.ranks))
	barrier := make(chan int, len(r.ranks))
	for i, rk := range r.ranks {
		rk.err = nil
		work[i] = make(chan sim.Time)
		go func(rk *rank, ch <-chan sim.Time) {
			for horizon := range ch {
				rk.runWindow(horizon)
				rk.publish()
				barrier <- rk.id
			}
		}(rk, work[i])
	}
	closed := false
	closeWorkers := func() {
		if !closed {
			closed = true
			for _, ch := range work {
				close(ch)
			}
		}
	}
	defer closeWorkers()

	var total uint64
	active := make([]*rank, 0, len(r.ranks))
	nw := make([]sim.Time, len(r.ranks))
	for {
		// Horizon phase: snapshot every rank's next-event time (all
		// workers are parked between rounds, so this is a consistent
		// cut), compute every rank's conservative horizon from the
		// snapshot, then classify. A rank is dispatched only if it has
		// work below its horizon (local pending or staged remote);
		// otherwise its base advances for free (skip-idle).
		for i, rk := range r.ranks {
			nw[i] = rk.nextWork()
		}
		for i := range r.ranks {
			r.ranks[i].horizon = r.horizonFor(i, la, nw, until)
		}
		active = active[:0]
		for i, rk := range r.ranks {
			if rk.base >= until {
				continue
			}
			if nw[i] < rk.horizon {
				active = append(active, rk)
				continue
			}
			if rk.horizon > rk.base {
				rk.base = rk.horizon
				rk.idleWindows++
				rk.skipped++
			}
		}
		if len(active) == 0 {
			// Idle fast-forward: no rank has work below its horizon. A
			// min-reduction over next-event times lets the coordinator
			// jump every base straight to the earliest pending event —
			// or finish — instead of crawling there window by window.
			next := sim.TimeInfinity
			for _, rk := range r.ranks {
				if t := rk.nextWork(); t < next {
					next = t
				}
			}
			if next >= until {
				for _, rk := range r.ranks {
					if rk.base < until {
						rk.base = until
					}
				}
				if until == sim.TimeInfinity {
					// Globally idle: rest the clock at the furthest rank.
					for _, rk := range r.ranks {
						if c := rk.sim.Engine().Now(); c > r.now {
							r.now = c
						}
					}
				} else if r.now < until {
					r.now = until
				}
				break
			}
			for _, rk := range r.ranks {
				if rk.base < next {
					rk.base = next
				}
			}
			r.fastForwards++
			if next > r.now {
				r.now = next
			}
			continue
		}
		// Delivery phase: schedule staged remote events now covered by
		// each active rank's window, in canonical heap order.
		for _, rk := range active {
			rk.deliverStaged()
		}
		// Parallel phase: each active rank runs its events strictly below
		// its horizon.
		for _, rk := range active {
			rk.err = nil
			work[rk.id] <- rk.horizon
		}
		if err := r.waitWindow(barrier, active); err != nil {
			return total, err
		}
		// A rank whose handlers panicked has reported via rk.err; stop
		// with every rank's failure rather than continuing a corrupted
		// simulation.
		var rankErrs []error
		for _, rk := range active {
			if rk.err != nil {
				rankErrs = append(rankErrs, rk.err)
			}
		}
		if len(rankErrs) > 0 {
			return total, errors.Join(rankErrs...)
		}
		if r.interrupted.Load() {
			return total, fmt.Errorf("par: run interrupted at window %v: %w", r.now, sim.ErrInterrupted)
		}
		// Exchange phase: sharded — only ranks that ran produced mail,
		// and each nonempty outbox batch goes straight into its
		// destination's staging heap. Heap pop order is the canonical
		// (time, sent, srcRank, seq) order regardless of which barrier round a
		// batch arrived in, so the drain order here need not be sorted.
		for _, src := range active {
			for dst, ob := range src.outboxes {
				if len(ob) == 0 {
					continue
				}
				st := &r.ranks[dst].staging
				for _, ev := range ob {
					st.push(ev)
				}
				src.outboxes[dst] = ob[:0]
			}
		}
		// Advance: only dispatched ranks move here (skipped ranks already
		// advanced in the horizon phase), then settle the global base.
		for _, rk := range active {
			total += rk.handled
			rk.events += rk.handled
			if rk.handled == 0 {
				rk.idleWindows++
			}
			if rk.horizon > rk.base {
				rk.base = rk.horizon
			}
		}
		r.windows++
		min := sim.TimeInfinity
		for _, rk := range r.ranks {
			if rk.base < min {
				min = rk.base
			}
		}
		if min > r.now {
			r.now = min
		}
		if r.now >= until {
			break
		}
	}
	return total, nil
}

// waitWindow collects one barrier arrival per dispatched rank. With a
// watchdog set, a period with no arrivals counts as zero progress: the
// rank engines are interrupted (which unsticks even zero-delay event loops
// — the engine polls its interrupt flag every few events) and, once the
// surviving ranks check in or a grace period expires, a diagnostic
// ErrStalled is returned.
func (r *Runner) waitWindow(barrier <-chan int, active []*rank) error {
	need := len(active)
	arrived := make([]bool, len(r.ranks))
	got := 0
	if r.watchdog <= 0 {
		for got < need {
			arrived[<-barrier] = true
			got++
		}
		return nil
	}
	timer := time.NewTimer(r.watchdog)
	defer timer.Stop()
	stalled := false
	for got < need {
		select {
		case id := <-barrier:
			arrived[id] = true
			got++
			if !stalled {
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(r.watchdog)
			}
		case <-timer.C:
			if stalled {
				// Grace period expired: some rank is blocked outside
				// the event loop (host I/O, a channel) and cannot be
				// interrupted. Report with what the ranks last
				// published; the stuck goroutines are abandoned.
				return r.stallError(active, arrived)
			}
			stalled = true
			for _, rk := range r.ranks {
				rk.sim.Engine().Interrupt()
			}
			timer.Reset(r.watchdog)
		}
	}
	if stalled {
		// Every rank checked in only after being interrupted: the window
		// made no progress for a full watchdog period — a stall, but one
		// with fully consistent diagnostics.
		return r.stallError(active, arrived)
	}
	return nil
}

// stallError builds the zero-progress diagnostic: the window round that
// hung and each rank's last-published clock, pending-event count, outbox
// depth, and this round's base/horizon.
func (r *Runner) stallError(active []*rank, arrived []bool) error {
	dispatched := make([]bool, len(r.ranks))
	for _, rk := range active {
		dispatched[rk.id] = true
	}
	hi := r.now
	for _, rk := range r.ranks {
		if rk.horizon != sim.TimeInfinity && rk.horizon > hi {
			hi = rk.horizon
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "no rank completed the window [%v, %v) within %v (%s sync, lookahead %v)",
		r.now, hi, r.watchdog, r.mode, r.Lookahead())
	for _, rk := range r.ranks {
		fmt.Fprintf(&sb, "\n  rank %d: clock=%v pending=%d outbox=%d windows=%d base=%v horizon=%v",
			rk.id, sim.Time(rk.pubClock.Load()), rk.pubPending.Load(),
			rk.pubOutbox.Load(), rk.pubWindows.Load(), rk.base, rk.horizon)
		if !dispatched[rk.id] {
			sb.WriteString(" (skipped: no work below horizon)")
		} else if !arrived[rk.id] {
			sb.WriteString(" (did not respond to interrupt; state is from its last barrier)")
		}
	}
	return fmt.Errorf("%w: %s", ErrStalled, sb.String())
}

// RankMetrics is one rank's cumulative view of a parallel run.
type RankMetrics struct {
	// Rank is the partition index.
	Rank int `json:"rank"`
	// Events is the number of events this rank dispatched across all
	// windows of all Run calls.
	Events uint64 `json:"events"`
	// Windows counts the synchronization windows the rank actually ran
	// (skipped windows are not dispatched and do not count here).
	Windows uint64 `json:"windows"`
	// IdleWindows counts window rounds in which the rank dispatched
	// nothing — lookahead-limited stalls where the rank had no work while
	// other ranks had some, whether it was dispatched or skipped.
	IdleWindows uint64 `json:"idle_windows"`
	// SkippedWindows is the subset of IdleWindows where the coordinator
	// never dispatched the rank at all: with nothing below its horizon its
	// base time advanced for free instead of paying a barrier round trip.
	SkippedWindows uint64 `json:"skipped_windows"`
	// Lookahead is the rank's inbound synchronization slack: the minimum
	// pairwise lookahead over ranks that can reach it. Zero when no rank
	// can (then nothing ever constrains its horizon).
	Lookahead sim.Time `json:"lookahead_ps"`
	// Clock is the rank engine's clock at its last barrier arrival.
	Clock sim.Time `json:"clock_ps"`
	// Rollbacks counts speculative-mode rollbacks: straggler arrivals that
	// forced this rank back to its last committed checkpoint.
	Rollbacks uint64 `json:"rollbacks"`
	// Replayed counts events this rank re-executed during rollback
	// recovery (already-committed prefix replays plus discarded
	// speculation). Zero in conservative modes.
	Replayed uint64 `json:"replayed_events"`
	// Fallbacks counts adaptive-mode demotions: episodes where the rank's
	// rollback rate crossed the governor threshold and it was pinned to
	// its pairwise-conservative horizon for a cooldown.
	Fallbacks uint64 `json:"fallbacks"`
	// Promotions counts adaptive-mode re-promotions after a cooldown.
	Promotions uint64 `json:"promotions"`
}

// RunnerMetrics summarizes a parallel run for the observability layer.
type RunnerMetrics struct {
	// Mode is the synchronization mode the runner used ("global" or
	// "pairwise").
	Mode string `json:"mode"`
	// Windows is the number of synchronization rounds the coordinator ran
	// (rounds resolved purely by fast-forward are counted separately).
	Windows uint64 `json:"windows"`
	// FastForwards counts idle fast-forwards: rounds at which no rank had
	// work below its horizon and the coordinator jumped every base
	// straight to the globally earliest pending event.
	FastForwards uint64 `json:"fast_forwards"`
	// Lookahead is the global conservative floor (min cross-rank link
	// latency; 0 with no cross links).
	Lookahead sim.Time `json:"lookahead_ps"`
	// Imbalance is max/mean of per-rank event counts: 1.0 is a perfectly
	// balanced partition, larger means some rank dominates the critical
	// path. Zero when no events ran.
	Imbalance float64 `json:"imbalance"`
	// Rollbacks / Replayed / Fallbacks / Promotions are the speculative-
	// mode totals over all ranks (see RankMetrics for the per-rank
	// meaning). All zero in conservative modes.
	Rollbacks  uint64 `json:"rollbacks"`
	Replayed   uint64 `json:"replayed_events"`
	Fallbacks  uint64 `json:"fallbacks"`
	Promotions uint64 `json:"promotions"`
	// Ranks holds the per-rank breakdown, indexed by rank.
	Ranks []RankMetrics `json:"ranks"`
}

// Metrics returns the run's synchronization and balance counters. Call it
// after Run returns; it reads coordinator-owned state and must not race a
// running simulation.
func (r *Runner) Metrics() RunnerMetrics {
	m := RunnerMetrics{
		Mode:         r.mode.String(),
		Windows:      r.windows,
		FastForwards: r.fastForwards,
		Lookahead:    r.Lookahead(),
		Ranks:        make([]RankMetrics, len(r.ranks)),
	}
	la := r.lookaheadMatrix()
	var total, max uint64
	for i, rk := range r.ranks {
		inbound := r.rankLookahead(la, i)
		if inbound == sim.TimeInfinity {
			inbound = 0
		}
		m.Ranks[i] = RankMetrics{
			Rank:           rk.id,
			Events:         rk.events,
			Windows:        rk.pubWindows.Load(),
			IdleWindows:    rk.idleWindows,
			SkippedWindows: rk.skipped,
			Lookahead:      inbound,
			Clock:          sim.Time(rk.pubClock.Load()),
			Rollbacks:      rk.rollbacks,
			Replayed:       rk.replayed,
			Fallbacks:      rk.fallbacks,
			Promotions:     rk.promotions,
		}
		m.Rollbacks += rk.rollbacks
		m.Replayed += rk.replayed
		m.Fallbacks += rk.fallbacks
		m.Promotions += rk.promotions
		total += rk.events
		if rk.events > max {
			max = rk.events
		}
	}
	if total > 0 {
		mean := float64(total) / float64(len(r.ranks))
		m.Imbalance = float64(max) / mean
	}
	return m
}

// RunAll advances until the model is globally idle.
func (r *Runner) RunAll() (uint64, error) { return r.Run(sim.TimeInfinity) }

// Finish runs every rank's component Finish hooks.
func (r *Runner) Finish() {
	for _, rk := range r.ranks {
		rk.sim.Finish()
	}
}
