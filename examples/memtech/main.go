// Memtech: the design-space exploration workflow — which memory technology
// should a node use, and how wide should its core be?
//
// This example runs the SST study's sweep (DDR2/DDR3/GDDR5 × issue widths)
// on the HPCCG and Lulesh miniapps at a reduced problem size, then prints
// the three views the study drew conclusions from: raw performance,
// power/cost efficiency, and the width-scaling frontier. The full-size
// version of this experiment is `go test -bench 'Fig10|Fig11|Fig12'` or
// the sst-dse command.
//
// Run with: go run ./examples/memtech
package main

import (
	"fmt"
	"log"
	"os"

	"sst/internal/core"
)

func main() {
	apps := []string{"hpccg", "lulesh"}
	techs := []string{"ddr2-800", "ddr3-1333", "gddr5-4000"}
	widths := []int{1, 4}

	fmt.Println("sweeping", len(apps)*len(techs)*len(widths), "design points (reduced size)...")
	grid, err := core.MemTechWidthSweep(apps, techs, widths, core.Small, core.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}

	core.Fig10Table(grid, apps, techs, widths, "ddr3-1333").Render(os.Stdout)
	fmt.Println()
	core.Fig11Table(grid, apps, techs, widths).Render(os.Stdout)
	fmt.Println()
	core.Fig12Table(grid, apps, "gddr5-4000", widths).Render(os.Stdout)

	// Draw the study's conclusion programmatically: best perf, best
	// perf/W and best perf/$ can be three different designs.
	for _, app := range apps {
		var fastest, efficient, cheapest *core.DSEPoint
		for i := range grid.Points {
			p := &grid.Points[i]
			if p.App != app {
				continue
			}
			if fastest == nil || p.Result.Seconds < fastest.Result.Seconds {
				fastest = p
			}
			if efficient == nil || p.Result.PerfPerWatt() > efficient.Result.PerfPerWatt() {
				efficient = p
			}
			if cheapest == nil || p.Result.PerfPerDollar() > cheapest.Result.PerfPerDollar() {
				cheapest = p
			}
		}
		fmt.Printf("\n%s: fastest = %s/w%d, best perf/W = %s/w%d, best perf/$ = %s/w%d\n",
			app, fastest.Tech, fastest.Width,
			efficient.Tech, efficient.Width,
			cheapest.Tech, cheapest.Width)
	}
}
