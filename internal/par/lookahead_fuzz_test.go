package par

import (
	"fmt"
	"strings"
	"testing"

	"sst/internal/sim"
)

// FuzzPartitionLookahead feeds arbitrary byte strings through the
// rank-partitioning path (decoded as a rank count plus a list of links) and
// checks the invariants the conservative sync algorithm's safety rests on:
//
//   - a zero-latency cross-rank link is rejected with an error naming the
//     offending link (it would make the pairwise lookahead zero and the
//     window size degenerate);
//   - the derived lookahead matrix has a zero diagonal, is symmetric
//     (links are bidirectional), and every entry equals the true shortest
//     path over the accepted links — in particular it never exceeds any
//     single path's latency, because a lookahead larger than a real path
//     would let a rank run past an event that path can still deliver;
//   - entries are infinite exactly for disconnected rank pairs, and
//     strictly positive off the diagonal otherwise.
//
// The reference shortest paths are computed with per-source Bellman-Ford
// edge relaxation, deliberately a different algorithm from the runtime's
// Floyd-Warshall so the two cannot share a bug.
func FuzzPartitionLookahead(f *testing.F) {
	f.Add([]byte{})                               // no ranks decoded
	f.Add([]byte{0})                              // 2 ranks, no links
	f.Add([]byte{0, 0, 1, 10})                    // one 10ns cross link
	f.Add([]byte{0, 0, 1, 0})                     // zero-latency cross link: rejected
	f.Add([]byte{6, 0, 1, 5, 1, 2, 7, 3, 4, 9})   // 8 ranks, partly disconnected
	f.Add([]byte{2, 0, 0, 0, 1, 1, 3})            // self link with zero latency: fine
	f.Add([]byte{5, 0, 1, 1, 1, 2, 1, 2, 3, 255}) // chain with extreme latencies
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		nranks := 2 + int(data[0])%7
		r, err := NewRunner(nranks)
		if err != nil {
			t.Fatal(err)
		}
		type edge struct {
			u, v int
			w    sim.Time
		}
		var edges []edge
		for i, rec := 1, 0; i+2 < len(data) && rec < 64; i, rec = i+3, rec+1 {
			a := int(data[i]) % nranks
			b := int(data[i+1]) % nranks
			lat := sim.Time(data[i+2]) * sim.Nanosecond
			name := fmt.Sprintf("fz%d", rec)
			_, _, err := r.Connect(name, lat, a, b)
			if a != b && lat == 0 {
				if err == nil {
					t.Fatalf("zero-latency cross-rank link %q (%d->%d) was accepted", name, a, b)
				}
				if !strings.Contains(err.Error(), fmt.Sprintf("%q", name)) {
					t.Fatalf("rejection does not name the offending link %q: %v", name, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("valid link %q (%d->%d, %v) rejected: %v", name, a, b, lat, err)
			}
			if a != b {
				edges = append(edges, edge{a, b, lat})
			}
		}

		// Reference all-pairs shortest paths by Bellman-Ford relaxation.
		ref := make([][]sim.Time, nranks)
		for src := range ref {
			dist := make([]sim.Time, nranks)
			for i := range dist {
				dist[i] = sim.TimeInfinity
			}
			dist[src] = 0
			for round := 0; round < nranks; round++ {
				for _, e := range edges {
					if dist[e.u] != sim.TimeInfinity && dist[e.u]+e.w < dist[e.v] {
						dist[e.v] = dist[e.u] + e.w
					}
					if dist[e.v] != sim.TimeInfinity && dist[e.v]+e.w < dist[e.u] {
						dist[e.u] = dist[e.v] + e.w
					}
				}
			}
			ref[src] = dist
		}

		la := r.LookaheadMatrix()
		if len(la) != nranks {
			t.Fatalf("matrix has %d rows, want %d", len(la), nranks)
		}
		for i := 0; i < nranks; i++ {
			for j := 0; j < nranks; j++ {
				switch {
				case la[i][j] != ref[i][j]:
					t.Fatalf("la[%d][%d] = %v, shortest path over links is %v", i, j, la[i][j], ref[i][j])
				case la[i][j] != la[j][i]:
					t.Fatalf("asymmetric: la[%d][%d]=%v la[%d][%d]=%v", i, j, la[i][j], j, i, la[j][i])
				case i == j && la[i][j] != 0:
					t.Fatalf("nonzero diagonal la[%d][%d] = %v", i, j, la[i][j])
				case i != j && la[i][j] == 0:
					t.Fatalf("zero off-diagonal lookahead la[%d][%d]", i, j)
				}
				if got := r.PairLookahead(i, j); got != la[i][j] {
					t.Fatalf("PairLookahead(%d,%d) = %v, matrix says %v", i, j, got, la[i][j])
				}
			}
		}
		if r.PairLookahead(-1, 0) != sim.TimeInfinity || r.PairLookahead(0, nranks) != sim.TimeInfinity {
			t.Fatal("out-of-range PairLookahead must be TimeInfinity")
		}
	})
}
