# gosst build/verify entry points.
#
#   make check      — the CI gate: vet + full tests + race on the packages
#                     with concurrency (sim kernel, parallel runtime,
#                     sweeps, fault injection) + a short fuzz pass over the
#                     config parsers and the rank-partitioning lookahead
#   make bench      — the perf gate: the event-kernel hot loop, the parallel
#                     window barrier (conservative sync modes plus the
#                     low-lookahead lattice where speculative sync must
#                     beat pairwise), the sweep scheduler
#                     at 1/2/4/8 workers and the result cache's hit and miss
#                     paths, with -benchmem, checked against the committed
#                     BENCH_baseline.json (alloc counts must not grow;
#                     ns/op within tolerance; a baseline benchmark missing
#                     from the run fails). `make check bench` is the full
#                     pre-merge gate.
#   make bench-baseline — rerun the perf benchmarks and rewrite the baseline
#   make tables     — regenerate every experiment table ("reproduce the paper")
#   make fuzz-short — a few seconds of coverage-guided fuzzing per config
#                     loader; crashes fail the target
#   make resume-smoke — the crash-safety gate: SIGINT a journaled sweep
#                     mid-flight, resume it, and require the resumed grid to
#                     be byte-identical to an uninterrupted run
#   make spec-smoke — the optimistic-sync crash gate: SIGKILL a speculative
#                     multi-rank system run mid-flight, restore from its
#                     last snapshot, and require the finished summary
#                     (including rollback counters) to be byte-identical to
#                     an uninterrupted run. Runs inside `make check`
#   make cache-smoke — the warm-start gate: run a sweep twice sharing a
#                     -cache-file; the second invocation must serve every
#                     point from the cache (misses=0) and print an
#                     identical grid
#   make crash-smoke — the crash-point gate: enumerate every host-storage
#                     operation (write, fsync, rename, dir-fsync) of the
#                     four persistence surfaces — journaled sweep, cache
#                     warm-start file, serve job lifecycle, snapshot save —
#                     crash after each under every retention the iofault
#                     model distinguishes, and require recovery to converge
#                     byte-identically (or fail typed). Runs inside
#                     `make check`
#   make serve-smoke — the service gate: against real sst-serve processes,
#                     require a SIGTERM drain to exit 0, a kill -9 restart
#                     to converge on byte-identical results, and a full
#                     queue to shed submissions with 429 + Retry-After
#   make soak       — the memory-discipline gate: serve 250 journaled jobs
#                     through one resident server and require flat heap and
#                     goroutine counts plus full arena reuse, with a heap
#                     profile left in bin/soak.mprof for pprof. The short
#                     mode (100 jobs, `make soak-short`) runs inside
#                     `make check`

GO ?= go
FUZZTIME ?= 5s

# The perf-gate benchmarks: the steady-state event kernel (internal/sim) and
# the concurrent sweep scheduler (root package). -count and the regexes are
# shared between `bench` and `bench-baseline` so the two always measure the
# same thing.
BENCHES = $(GO) test -run='^$$' -bench='^BenchmarkEngineHotLoop$$' -benchmem ./internal/sim && \
          $(GO) test -run='^$$' -bench='^BenchmarkParallelWindow$$' -benchmem ./internal/par && \
          $(GO) test -run='^$$' -bench='^BenchmarkSweep(Workers|CacheHit|CacheMiss)$$' -benchmem .

# The memory-discipline contract, committed into BENCH_baseline.json as
# absolute hard ceilings by bench-baseline and enforced by every `make
# bench`: the warm-arena sweep stays ~10-60x below the pre-arena numbers
# (88,572,996 B/op and 1,869,553 allocs/op) however the baseline is
# regenerated, and the cold cache-miss path cannot quietly bloat either.
BENCH_CEILINGS = -max-bytes 'BenchmarkSweepWorkers/workers=1=9000000,BenchmarkSweepWorkers/workers=2=9000000,BenchmarkSweepWorkers/workers=4=9000000,BenchmarkSweepWorkers/workers=8=9000000,BenchmarkSweepCacheMiss=60000000' \
                 -max-allocs 'BenchmarkSweepWorkers/workers=1=32000,BenchmarkSweepWorkers/workers=2=32000,BenchmarkSweepWorkers/workers=4=32000,BenchmarkSweepWorkers/workers=8=32000,BenchmarkSweepCacheMiss=36000'

.PHONY: build test vet race check bench bench-baseline tables fuzz-short resume-smoke cache-smoke serve-smoke spec-smoke crash-smoke soak soak-short

build:
	$(GO) build ./...

# -shuffle=on randomizes test order within each package so accidental
# inter-test state dependencies surface in CI instead of in the field.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# The sweep scheduler (internal/core), the PDES runtime (internal/par), the
# event kernel they drive (internal/sim), the fault injectors that hook
# all three (internal/fault), the shared result cache the sweep workers
# probe concurrently (internal/cache), the sweep service's worker pool
# and admission queue (internal/serve) and the storage fault model every
# sweep worker writes its journal through (internal/iofault) are the only
# places goroutines touch shared structures; the race detector must stay
# clean there.
race:
	$(GO) test -race ./internal/sim/... ./internal/par/... ./internal/core/... ./internal/fault/... ./internal/cache/... ./internal/serve/... ./internal/iofault/...

# Coverage-guided fuzzing of the AMM JSON loaders (arbitrary input must
# produce a validated config or an error, never a panic or a NaN/Inf/zero
# value the simulator would choke on later) and of the rank-partitioning
# path (the derived lookahead matrix must equal true shortest paths and
# zero-latency cross-rank links must be rejected by name).
fuzz-short:
	$(GO) test ./internal/config -run='^$$' -fuzz=FuzzLoadMachine -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/config -run='^$$' -fuzz=FuzzLoadSystem -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/par -run='^$$' -fuzz=FuzzPartitionLookahead -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/par -run='^$$' -fuzz=FuzzSpeculativeReplay -fuzztime=$(FUZZTIME)

check: build vet test race fuzz-short crash-smoke soak-short serve-smoke spec-smoke

# The crash-point gate: every test named TestCrashPoints* drives the
# internal/iofault exploration harness over one persistence surface —
# the atomic-replace helper itself, the journaled sweep, the cache
# warm-start file, the serve job lifecycle and the snapshot save — and
# asserts recovery converges at every enumerated crash, under every
# retention variant.
crash-smoke:
	$(GO) test -run='^TestCrashPoints' -count=1 ./internal/iofault/ ./internal/core/ ./internal/cache/ ./internal/serve/ ./cmd/sst/

# End-to-end crash-safety check of the resumable sweep path: run the grid
# once clean for reference, kill a journaled single-worker run mid-flight
# with SIGINT (exit 130; 0 if it won the race and finished), then resume
# from the journal and require the grid CSV to be byte-identical to the
# reference. The grid table carries only simulated quantities, so identical
# means field-for-field equal, not merely close.
RESUME_ARGS = -scale small -apps stream,gups -techs ddr3-1333,gddr5-4000 \
              -widths 1,2,4,8 -table grid -format csv

resume-smoke:
	$(GO) build -o bin/sst-dse ./cmd/sst-dse
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' 0 && \
	./bin/sst-dse $(RESUME_ARGS) >"$$tmp/ref.csv" && \
	{ timeout --preserve-status -s INT -k 5 0.4 ./bin/sst-dse -j 1 -journal "$$tmp/sweep.jsonl" $(RESUME_ARGS) \
	    >/dev/null 2>&1; rc=$$?; [ $$rc -eq 130 ] || [ $$rc -eq 0 ] || \
	    { echo "resume-smoke: interrupted run exited $$rc, want 130 (or 0)"; exit 1; }; } && \
	./bin/sst-dse -j 1 -journal "$$tmp/sweep.jsonl" -resume $(RESUME_ARGS) >"$$tmp/resumed.csv" && \
	cmp "$$tmp/ref.csv" "$$tmp/resumed.csv" && \
	echo "resume-smoke: resumed grid identical to uninterrupted run"

# The perf gate runs vet and the concurrency race subset first so a data
# race can never hide behind a good-looking number.
# End-to-end warm-start check of the persistent result cache: run the grid
# once with a -cache-file (all misses), then again from a fresh process
# sharing the file. The second run must re-simulate nothing — its stderr
# summary shows misses=0 and one hit per design point — and its grid CSV
# must be byte-identical to the first run's.
cache-smoke:
	$(GO) build -o bin/sst-dse ./cmd/sst-dse
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' 0 && \
	./bin/sst-dse -cache-file "$$tmp/results.jsonl" $(RESUME_ARGS) \
	    >"$$tmp/cold.csv" 2>"$$tmp/cold.err" && \
	grep -q 'cache policy=.* hits=0 misses=16 ' "$$tmp/cold.err" || \
	    { echo "cache-smoke: first run summary wrong:"; cat "$$tmp/cold.err"; exit 1; } && \
	./bin/sst-dse -cache-file "$$tmp/results.jsonl" $(RESUME_ARGS) \
	    >"$$tmp/warm.csv" 2>"$$tmp/warm.err" && \
	grep -q 'cache policy=.* hits=16 misses=0 ' "$$tmp/warm.err" || \
	    { echo "cache-smoke: warm run re-simulated:"; cat "$$tmp/warm.err"; exit 1; } && \
	cmp "$$tmp/cold.csv" "$$tmp/warm.csv" && \
	echo "cache-smoke: warm-started grid identical, zero re-simulation"

# End-to-end crash check of the optimistic (Time Warp) sync path: run a
# speculative 2-rank system simulation sliced into periodic snapshots for
# reference, SIGKILL an identical run mid-flight (exit 137; 0 if it won
# the race and finished), restore from the snapshot it left behind, and
# require the finished summary — simulated time, message totals, window
# and rollback counters — to be byte-identical to the uninterrupted run.
# The reference is sliced with the same -snapshot-every so both runs
# commit speculation at the same barriers.
SPEC_SMOKE_ARGS = -system configs/system-torus-small.json -par 2 -sync speculative -snapshot-every 500us

spec-smoke:
	$(GO) build -o bin/sst ./cmd/sst
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' 0 && \
	./bin/sst $(SPEC_SMOKE_ARGS) -snapshot-out "$$tmp/ref.snap" >"$$tmp/ref.out" && \
	{ timeout --preserve-status -s KILL -k 5 0.8 ./bin/sst $(SPEC_SMOKE_ARGS) -snapshot-out "$$tmp/run.snap" \
	    >/dev/null 2>&1; rc=$$?; [ $$rc -eq 137 ] || [ $$rc -eq 0 ] || \
	    { echo "spec-smoke: killed run exited $$rc, want 137 (or 0)"; exit 1; }; } && \
	./bin/sst $(SPEC_SMOKE_ARGS) -restore "$$tmp/run.snap" -snapshot-out "$$tmp/run.snap" >"$$tmp/restored.out" && \
	cmp "$$tmp/ref.out" "$$tmp/restored.out" && \
	echo "spec-smoke: restored speculative run identical to uninterrupted run"

# End-to-end crash-tolerance check of the sweep service; the three
# scenarios live in tools/serve_smoke.sh (graceful drain, kill -9
# recovery with byte-identical results, 429 load shedding).
serve-smoke:
	$(GO) build -o bin/sst-serve ./cmd/sst-serve
	@sh tools/serve_smoke.sh bin/sst-serve

# The soak gate: TestServerSoak streams real simulation jobs through one
# resident Server and asserts flat heap/goroutines and full arena reuse.
# The full run leaves a heap profile for `go tool pprof bin/soak.mprof`.
soak:
	@mkdir -p bin
	$(GO) test -run='^TestServerSoak$$' -count=1 -v -memprofile=soak.mprof -outputdir=bin ./internal/serve

soak-short:
	$(GO) test -run='^TestServerSoak$$' -short -count=1 ./internal/serve

bench: vet race
	{ $(BENCHES); } | $(GO) run ./tools/benchcheck -baseline BENCH_baseline.json

bench-baseline:
	{ $(BENCHES); } | $(GO) run ./tools/benchcheck -baseline BENCH_baseline.json -update $(BENCH_CEILINGS)

tables:
	$(GO) test -bench=. -benchtime=1x
