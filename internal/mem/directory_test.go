package mem

import (
	"testing"
	"testing/quick"

	"sst/internal/sim"
	"sst/internal/stats"
)

// dirPair builds two L1 caches over a directory over a simple memory.
func dirPair(t testing.TB, n int) (*sim.Engine, []*Cache, *Directory, *SimpleMemory) {
	t.Helper()
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	lower := NewSimpleMemory(e, "mem", 50*sim.Nanosecond, 0, reg.Scope("mem"))
	dir := NewDirectory(e, "dir", 5*sim.Nanosecond, lower, reg.Scope("dir"))
	caches := make([]*Cache, n)
	for i := 0; i < n; i++ {
		port := dir.Port(nil)
		c, err := NewCache(e, testCfg(scName(i)), port, reg.Scope(scName(i)))
		if err != nil {
			t.Fatal(err)
		}
		port.AttachCache(c)
		caches[i] = c
	}
	return e, caches, dir, lower
}

func scName(i int) string {
	return "c" + string(rune('0'+i))
}

func TestDirectoryExclusiveFill(t *testing.T) {
	e, cs, _, _ := dirPair(t, 2)
	cs[0].Access(Read, 0, 8, nil)
	e.RunAll()
	if st := lineState(cs[0], 0); st != exclusive {
		t.Fatalf("lone reader state = %d, want exclusive", st)
	}
}

func TestDirectorySharedFillAndDowngrade(t *testing.T) {
	e, cs, dir, _ := dirPair(t, 2)
	cs[0].Access(Read, 0, 8, nil)
	e.RunAll()
	cs[1].Access(Read, 0, 8, nil)
	e.RunAll()
	if st := lineState(cs[0], 0); st != shared {
		t.Fatalf("owner not downgraded: %d", st)
	}
	if st := lineState(cs[1], 0); st != shared {
		t.Fatalf("second reader state = %d", st)
	}
	if dir.forwards.Count() != 1 {
		t.Errorf("forwards = %d, want 1 (owner supplied)", dir.forwards.Count())
	}
}

func TestDirectoryWriteInvalidatesExactSharers(t *testing.T) {
	e, cs, dir, _ := dirPair(t, 4)
	// Caches 0 and 1 share; 2 and 3 never touch the line.
	cs[0].Access(Read, 0, 8, nil)
	e.RunAll()
	cs[1].Access(Read, 0, 8, nil)
	e.RunAll()
	snoops := dir.SnoopsSent()
	cs[0].Access(Write, 0, 8, nil)
	e.RunAll()
	if st := lineState(cs[0], 0); st != modified {
		t.Fatalf("writer state = %d", st)
	}
	if st := lineState(cs[1], 0); st != invalid {
		t.Fatalf("sharer not invalidated: %d", st)
	}
	// Exactly one snoop (to cache 1); caches 2/3 must not be bothered.
	if got := dir.SnoopsSent() - snoops; got != 1 {
		t.Errorf("upgrade sent %d snoops, want 1 (exact sharer set)", got)
	}
}

func TestDirectoryDirtyForward(t *testing.T) {
	e, cs, dir, lower := dirPair(t, 2)
	cs[0].Access(Write, 0, 8, nil)
	e.RunAll()
	reads := lower.reads.Count()
	cs[1].Access(Read, 0, 8, nil)
	e.RunAll()
	if lower.reads.Count() != reads {
		t.Error("memory read despite dirty owner forward")
	}
	if lower.writes.Count() == 0 {
		t.Error("dirty data never written back")
	}
	if st := lineState(cs[0], 0); st != shared {
		t.Errorf("old owner state = %d, want shared", st)
	}
	if dir.forwards.Count() == 0 {
		t.Error("no forward recorded")
	}
}

func TestDirectoryRFOWithDirtyOwner(t *testing.T) {
	e, cs, _, _ := dirPair(t, 2)
	cs[0].Access(Write, 0, 8, nil)
	e.RunAll()
	cs[1].Access(Write, 0, 8, nil)
	e.RunAll()
	if st := lineState(cs[1], 0); st != modified {
		t.Fatalf("new writer state = %d", st)
	}
	if st := lineState(cs[0], 0); st != invalid {
		t.Fatalf("old owner state = %d", st)
	}
}

func TestDirectorySilentEvictionTolerated(t *testing.T) {
	e, cs, _, _ := dirPair(t, 2)
	// Fill, then force a clean eviction via conflicting sets (stride 512
	// on the 8-set test cache), then have the peer write: the directory
	// still lists cache 0 as owner and snoops it; snoopInvalidate finds
	// nothing, which must be harmless.
	cs[0].Access(Read, 0, 8, nil)
	e.RunAll()
	cs[0].Access(Read, 512, 8, nil)
	cs[0].Access(Read, 1024, 8, nil) // evicts line 0 (2-way set)
	e.RunAll()
	cs[1].Access(Write, 0, 8, nil)
	e.RunAll()
	if st := lineState(cs[1], 0); st != modified {
		t.Fatalf("writer state = %d after silent eviction", st)
	}
}

// TestDirectoryInvariantProperty mirrors the bus MESI property test.
func TestDirectoryInvariantProperty(t *testing.T) {
	fn := func(ops []uint8) bool {
		e, cs, _, _ := dirPair(t, 3)
		touched := map[uint64]bool{}
		for _, op := range ops {
			who := int(op) % 3
			isWrite := op&4 != 0
			addr := uint64(op>>3) * 64
			touched[addr] = true
			if isWrite {
				cs[who].Access(Write, addr, 8, nil)
			} else {
				cs[who].Access(Read, addr, 8, nil)
			}
			e.RunAll()
		}
		for addr := range touched {
			excl, sh := 0, 0
			for _, c := range cs {
				switch lineState(c, addr) {
				case modified, exclusive:
					excl++
				case shared:
					sh++
				}
			}
			if excl > 1 || (excl == 1 && sh > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDirectoryScalesSnoops is the headline contrast with the bus: with
// private (unshared) working sets, the bus snoops every peer on every miss
// while the directory snoops nobody.
func TestDirectoryScalesSnoops(t *testing.T) {
	const cores = 8
	// Directory version.
	e, cs, dir, _ := dirPair(t, cores)
	for i, c := range cs {
		base := uint64(i) << 20 // disjoint regions
		for a := uint64(0); a < 4096; a += 64 {
			c.Access(Read, base+a, 8, nil)
		}
	}
	e.RunAll()
	if got := dir.SnoopsSent(); got != 0 {
		t.Errorf("directory sent %d snoops on private data, want 0", got)
	}

	// Bus version of the same traffic for comparison.
	e2 := sim.NewEngine()
	lower := NewSimpleMemory(e2, "mem", 50*sim.Nanosecond, 0, nil)
	bus := NewBus(e2, "bus", 5*sim.Nanosecond, 0, lower, nil)
	var busCaches []*Cache
	for i := 0; i < cores; i++ {
		port := bus.Port(nil)
		c, err := NewCache(e2, testCfg(scName(i)), port, nil)
		if err != nil {
			t.Fatal(err)
		}
		port.AttachCache(c)
		busCaches = append(busCaches, c)
	}
	for i, c := range busCaches {
		base := uint64(i) << 20
		for a := uint64(0); a < 4096; a += 64 {
			c.Access(Read, base+a, 8, nil)
		}
	}
	e2.RunAll()
	// The bus has no snoop counter per se; its transactions each visit
	// all peers. The contrast metric: every bus fill was a broadcast.
	if bus.transactions.Count() == 0 {
		t.Fatal("bus saw no traffic")
	}
}

func TestDirectoryCachelessMaster(t *testing.T) {
	e, cs, dir, lower := dirPair(t, 2)
	cs[0].Access(Read, 0, 8, nil)
	e.RunAll()
	dma := dir.Port(nil)
	done := false
	dma.Access(Write, 0, 64, func() { done = true })
	e.RunAll()
	if !done {
		t.Fatal("DMA write never completed")
	}
	if st := lineState(cs[0], 0); st != invalid {
		t.Errorf("cached copy survived DMA write: %d", st)
	}
	if lower.writes.Count() == 0 {
		t.Error("DMA write never reached memory")
	}
	// DMA read path.
	ok := false
	dma.Access(Read, 128, 64, func() { ok = true })
	e.RunAll()
	if !ok {
		t.Fatal("DMA read never completed")
	}
}

func TestDirectoryConcurrentSameLineSerialized(t *testing.T) {
	e, cs, _, _ := dirPair(t, 2)
	cs[0].Access(Read, 0, 8, nil)
	cs[1].Access(Read, 0, 8, nil)
	e.RunAll()
	s0, s1 := lineState(cs[0], 0), lineState(cs[1], 0)
	if (s0 == exclusive || s0 == modified) && s1 != invalid {
		t.Fatalf("concurrent fills broke single-writer: %d/%d", s0, s1)
	}
	if (s1 == exclusive || s1 == modified) && s0 != invalid {
		t.Fatalf("concurrent fills broke single-writer: %d/%d", s0, s1)
	}
}
