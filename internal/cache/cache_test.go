package cache

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// jsonCodec round-trips string values; enough for metadata-level tests.
var jsonCodec = Codec{
	Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
	Decode: func(data []byte) (any, error) {
		var s string
		err := json.Unmarshal(data, &s)
		return s, err
	},
}

func mustCache(t *testing.T, opts Options) *Cache {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func put(t *testing.T, c *Cache, key string) {
	t.Helper()
	if err := c.Put(key, "v:"+key, 8); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want PolicyType
	}{
		{"fifo", FIFO}, {"lru", LRU}, {"", LRU}, {"LFU", LFU}, {"tinylfu", TinyLFU}, {"tiny-lfu", TinyLFU},
	} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePolicy("arc"); err == nil {
		t.Error("ParsePolicy(arc): want error")
	}
	ps, err := ParsePolicies("lru, lfu,tinylfu")
	if err != nil || len(ps) != 3 || ps[0] != LRU || ps[1] != LFU || ps[2] != TinyLFU {
		t.Errorf("ParsePolicies = %v, %v", ps, err)
	}
}

func TestFIFOEvictsInsertionOrder(t *testing.T) {
	c := mustCache(t, Options{Capacity: 3, Policy: FIFO})
	put(t, c, "a")
	put(t, c, "b")
	put(t, c, "c")
	// Touching "a" must not save it under FIFO.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	put(t, c, "d")
	if _, ok := c.Get("a"); ok {
		t.Error("FIFO kept touched oldest entry a")
	}
	for _, k := range []string{"b", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("FIFO evicted %s", k)
		}
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := mustCache(t, Options{Capacity: 3, Policy: LRU})
	put(t, c, "a")
	put(t, c, "b")
	put(t, c, "c")
	c.Get("a") // a becomes hottest; b is now coldest
	put(t, c, "d")
	if _, ok := c.Get("b"); ok {
		t.Error("LRU kept least recently used entry b")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("LRU evicted %s", k)
		}
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := mustCache(t, Options{Capacity: 3, Policy: LFU})
	put(t, c, "a")
	put(t, c, "b")
	put(t, c, "c")
	c.Get("a")
	c.Get("a")
	c.Get("c")
	// Frequencies: a=3, c=2, b=1 → b is the victim.
	put(t, c, "d")
	if _, ok := c.Get("b"); ok {
		t.Error("LFU kept least frequent entry b")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("LFU evicted %s", k)
		}
	}
}

func TestTinyLFUAdmissionRejectsColdCandidate(t *testing.T) {
	c := mustCache(t, Options{Capacity: 2, Policy: TinyLFU})
	put(t, c, "hot1")
	put(t, c, "hot2")
	for i := 0; i < 5; i++ {
		c.Get("hot1")
		c.Get("hot2")
	}
	// A never-seen key cannot displace a hot resident.
	put(t, c, "cold")
	if _, ok := c.Get("cold"); ok {
		t.Error("TinyLFU admitted a cold candidate over hot residents")
	}
	st := c.Stats()
	if st.Rejected == 0 {
		t.Error("no admission rejections counted")
	}
	// But a key that keeps coming back builds frequency and gets in: its
	// doorkeeper bit is set by the first Get above, so further accesses
	// reach the sketch counters.
	for i := 0; i < 8; i++ {
		c.Get("comeback")
	}
	put(t, c, "comeback")
	if _, ok := c.Get("comeback"); !ok {
		t.Error("TinyLFU rejected a frequently requested candidate")
	}
}

func TestPutSameKeyRefreshes(t *testing.T) {
	c := mustCache(t, Options{Capacity: 4, Policy: LRU})
	if err := c.Put("k", "v1", 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", "v1", 30); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 30 {
		t.Errorf("entries=%d bytes=%d, want 1/30", st.Entries, st.Bytes)
	}
}

func TestShadowSensors(t *testing.T) {
	c := mustCache(t, Options{Capacity: 2, Policy: FIFO, Shadows: []PolicyType{LRU, LFU}})
	put(t, c, "a")
	put(t, c, "b")
	c.Get("a")
	c.Get("a")
	put(t, c, "c") // FIFO evicts a; LRU shadow would evict b
	c.Get("a")     // real miss, LRU shadow hit
	st := c.Stats()
	if len(st.Shadows) != 2 {
		t.Fatalf("want 2 shadow stats, got %d", len(st.Shadows))
	}
	if st.Shadows[0].Policy != "lru" || st.Shadows[1].Policy != "lfu" {
		t.Errorf("shadow order: %+v", st.Shadows)
	}
	if st.Shadows[0].Hits <= st.Hits {
		t.Errorf("LRU shadow hits=%d should exceed real FIFO hits=%d on this stream",
			st.Shadows[0].Hits, st.Hits)
	}
	for _, ss := range st.Shadows {
		if ss.Hits+ss.Misses != st.Hits+st.Misses {
			t.Errorf("shadow %s saw %d accesses, cache saw %d",
				ss.Policy, ss.Hits+ss.Misses, st.Hits+st.Misses)
		}
	}
}

func TestMigrationCold(t *testing.T) {
	c := mustCache(t, Options{Capacity: 4, Policy: LRU})
	put(t, c, "a")
	put(t, c, "b")
	c.Migrate(LFU, MigrationCold)
	if c.Len() != 0 {
		t.Errorf("cold migration kept %d entries", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("cold migration kept value a")
	}
	if got := c.Stats().Policy; got != "lfu" {
		t.Errorf("policy after migration = %s", got)
	}
}

func TestMigrationWarmKeepsValuesAndOrder(t *testing.T) {
	c := mustCache(t, Options{Capacity: 3, Policy: LRU})
	put(t, c, "a")
	put(t, c, "b")
	put(t, c, "c")
	c.Get("a") // order cold→hot: b, c, a
	c.Migrate(FIFO, MigrationWarm)
	if c.Len() != 3 {
		t.Fatalf("warm migration dropped values: len=%d", c.Len())
	}
	put(t, c, "d") // FIFO evicts the coldest carried-over key: b
	if _, ok := c.Get("b"); ok {
		t.Error("warm migration lost the LRU temperature order")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("warm migration evicted the hottest key")
	}
}

func TestMigrationGradualNoMissSpike(t *testing.T) {
	c := mustCache(t, Options{Capacity: 8, Policy: LRU})
	for _, k := range []string{"a", "b", "c", "d"} {
		put(t, c, k)
	}
	c.Migrate(LFU, MigrationGradual)
	if !c.Migrating() {
		t.Fatal("gradual migration not in progress")
	}
	// Every key is still a hit mid-migration.
	for _, k := range []string{"a", "b", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("gradual migration missed %s", k)
		}
	}
	if got := c.Stats().Migrating; got != "" && got != "lru" {
		t.Errorf("Stats.Migrating = %q", got)
	}
	// Gets promote + drain; a few stores finish the drain.
	for i := 0; c.Migrating() && i < 16; i++ {
		put(t, c, fmt.Sprintf("fill%d", i))
	}
	if c.Migrating() {
		t.Error("gradual migration never completed")
	}
	for _, k := range []string{"a", "b", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("key %s lost across gradual migration", k)
		}
	}
}

func TestFileWarmStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c1, err := New(Options{Capacity: 8, Policy: LRU, Path: path, Codec: jsonCodec})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := c1.Put(k, "v:"+k, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Capacity: 8, Policy: LRU, Path: path, Codec: jsonCodec})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st := c2.Stats()
	if st.WarmStarts != 3 || st.Entries != 3 {
		t.Fatalf("warm start loaded %d/%d entries, want 3/3", st.WarmStarts, st.Entries)
	}
	v, ok := c2.Get("b")
	if !ok || v != "v:b" {
		t.Errorf("Get(b) after warm start = %v, %v", v, ok)
	}
}

func TestFileTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c1, err := New(Options{Capacity: 8, Policy: LRU, Path: path, Codec: jsonCodec})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("a", "v:a", 0); err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("b", "v:b", 0); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Simulate a crash mid-append: a torn, unterminated final record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"key":"torn","si`)
	f.Close()

	c2, err := New(Options{Capacity: 8, Policy: LRU, Path: path, Codec: jsonCodec})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if st := c2.Stats(); st.WarmStarts != 2 {
		t.Fatalf("warm starts after torn tail = %d, want 2", st.WarmStarts)
	}
	// The torn bytes must be gone so the next append starts clean.
	if err := c2.Put("c", "v:c", 0); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	c3, err := New(Options{Capacity: 8, Policy: LRU, Path: path, Codec: jsonCodec})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if st := c3.Stats(); st.WarmStarts != 3 {
		t.Errorf("after truncate+append reload got %d entries, want 3", st.WarmStarts)
	}
	if _, ok := c3.Get("torn"); ok {
		t.Error("torn record survived")
	}
}

func TestFileNeedsCodec(t *testing.T) {
	_, err := New(Options{Path: filepath.Join(t.TempDir(), "c.jsonl")})
	if err == nil {
		t.Fatal("want error for Path without Codec")
	}
}

// TestZipfShadowOrdering drives a Zipf-skewed repeated-grid key stream (the
// EXPERIMENTS.md E16 workload) through a small cache and checks that (a)
// the skew produces a substantial hit rate despite the key space exceeding
// capacity, and (b) every shadow sensor sees the identical access count so
// their hit rates are directly comparable.
func TestZipfShadowOrdering(t *testing.T) {
	c := mustCache(t, Options{Capacity: 64, Policy: LRU, Shadows: []PolicyType{FIFO, LFU, TinyLFU}})
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1, 511) // 512-point grid, capacity 64
	const accesses = 8192
	for i := 0; i < accesses; i++ {
		key := fmt.Sprintf("point-%d", zipf.Uint64())
		if _, ok := c.Get(key); !ok {
			if err := c.Put(key, key, 8); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != accesses {
		t.Fatalf("accesses=%d, want %d", st.Hits+st.Misses, accesses)
	}
	if st.HitRate < 0.5 {
		t.Errorf("Zipf(1.2) hit rate = %.2f, want > 0.5", st.HitRate)
	}
	if len(st.Shadows) != 3 {
		t.Fatalf("want 3 shadows, got %d", len(st.Shadows))
	}
	for _, ss := range st.Shadows {
		if ss.Hits+ss.Misses != accesses {
			t.Errorf("shadow %s saw %d accesses, want %d", ss.Policy, ss.Hits+ss.Misses, accesses)
		}
		if ss.HitRate <= 0 {
			t.Errorf("shadow %s hit rate = %v, want > 0", ss.Policy, ss.HitRate)
		}
	}
	if st.Evictions == 0 {
		t.Error("no evictions on a 512-key stream through a 64-entry cache")
	}
}

// TestConcurrentAccess exercises the mutex under the race detector.
func TestConcurrentAccess(t *testing.T) {
	c := mustCache(t, Options{Capacity: 32, Policy: TinyLFU, Shadows: []PolicyType{LRU}})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w*7+i)%48)
				if _, ok := c.Get(key); !ok {
					_ = c.Put(key, key, 4)
				}
				if i%50 == 0 {
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Errorf("len=%d exceeds capacity", c.Len())
	}
}

func TestEvictionAccounting(t *testing.T) {
	c := mustCache(t, Options{Capacity: 2, Policy: LRU})
	put(t, c, "a")
	put(t, c, "b")
	put(t, c, "c")
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 16 {
		t.Errorf("evictions=%d entries=%d bytes=%d, want 1/2/16", st.Evictions, st.Entries, st.Bytes)
	}
}
