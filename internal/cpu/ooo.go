package cpu

import (
	"sst/internal/frontend"
	"sst/internal/mem"
	"sst/internal/sim"
	"sst/internal/stats"
)

// OoO is a reorder-buffer-based out-of-order core: W-wide fetch/dispatch,
// register renaming over ROB entries, age-ordered dynamic issue, W-wide
// in-order retire. Its distinguishing behavior over the Superscalar
// scoreboard model is memory-level parallelism at narrow widths: a 1-wide
// OoO machine still fills its load queue past a stalled consumer, which is
// how the design-space study's narrow cores kept DRAM busy.
//
// Wrong-path execution is not modelled (the front-end stream is the
// correct path, as in trace-driven OoO simulation); a mispredicted branch
// stalls fetch until it resolves plus the flush penalty.
type OoO struct {
	cfg    Config
	clock  *sim.Clock
	engine *sim.Engine
	stream frontend.Stream
	memory mem.Device
	pred   *predictor
	st     coreStats

	rob      []robEntry
	head     int // oldest
	tail     int // next free
	occupied int

	// Rename table: architectural register -> producing ROB slot, or -1
	// when the committed value is current.
	renamed [32]int

	loadsOut   int
	storesOut  int
	fetchStall sim.Cycle // fetch blocked until this cycle (mispredict)
	streamDry  bool
	running    bool
	done       bool
	onDone     func()
	startCycle sim.Cycle
	endCycle   sim.Cycle

	robOcc *stats.Accumulator
}

// robEntry states.
type robState uint8

const (
	robWaiting robState = iota // operands not ready
	robReady                   // may issue
	robExec                    // issued, executing
	robDone                    // complete, awaiting retire
)

type robEntry struct {
	op    frontend.Op
	state robState
	// dep1/dep2 are ROB slots this entry waits on (-1 when none), with
	// the producer's sequence number captured at dispatch: if the slot's
	// sequence has moved on, the producer retired and the value is
	// architecturally available.
	dep1, dep2       int
	depSeq1, depSeq2 uint64
	// readyAt is the completion cycle for fixed-latency execution.
	readyAt sim.Cycle
	// seq disambiguates wrapped slots.
	seq uint64
}

// NewOoO builds the core. cfg.LoadQ bounds in-flight loads; cfg.Width sets
// fetch/issue/retire width; cfg.ROB sizes the window. scope may be nil.
func NewOoO(engine *sim.Engine, clock *sim.Clock, cfg Config, stream frontend.Stream, memory mem.Device, scope *stats.Scope) (*OoO, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc := ensureScope(scope, cfg.Name)
	c := &OoO{
		cfg:    cfg,
		clock:  clock,
		engine: engine,
		stream: stream,
		memory: memory,
		pred:   newPredictor(cfg.PredictorEntries),
		st:     newCoreStats(sc),
		rob:    make([]robEntry, cfg.ROB),
		robOcc: sc.Accumulator("rob_occupancy"),
	}
	for i := range c.renamed {
		c.renamed[i] = -1
	}
	return c, nil
}

// Name implements sim.Component.
func (c *OoO) Name() string { return c.cfg.Name }

// ROBSize returns the reorder-buffer capacity.
func (c *OoO) ROBSize() int { return len(c.rob) }

// Start arms the core.
func (c *OoO) Start(onDone func()) {
	c.onDone = onDone
	c.startCycle = c.clock.NextCycle()
	c.wake()
}

func (c *OoO) wake() {
	if c.running || c.done {
		return
	}
	c.running = true
	c.clock.RegisterNamed(c.cfg.Name, c.tick)
}

func (c *OoO) sleep() bool {
	c.running = false
	c.st.sleeps.Inc()
	return false
}

// depReady reports whether the dependency on slot d (with sequence s) has
// resolved: either cleared, overwritten by a younger op (impossible for a
// true dependence), or completed.
func (c *OoO) depReady(d int, seq uint64) bool {
	if d < 0 {
		return true
	}
	e := &c.rob[d]
	return e.seq != seq || e.state == robDone
}

func (c *OoO) tick(cycle sim.Cycle) bool {
	c.st.cycles.Inc()
	c.robOcc.Observe(float64(c.occupied))

	// Retire (in order, up to Width).
	retired := 0
	for retired < c.cfg.Width && c.occupied > 0 {
		e := &c.rob[c.head]
		if e.state != robDone {
			break
		}
		c.st.retired.Inc()
		// Release the rename mapping if this entry still owns it.
		if dst := e.op.Dst; dst != 0 && c.renamed[dst] == c.head {
			c.renamed[dst] = -1
		}
		c.head = (c.head + 1) % len(c.rob)
		c.occupied--
		retired++
	}

	// Issue (age order, up to Width): promote waiting entries whose
	// dependencies resolved, then start execution.
	issued := 0
	for i, idx := 0, c.head; i < c.occupied && issued < c.cfg.Width; i, idx = i+1, (idx+1)%len(c.rob) {
		e := &c.rob[idx]
		if e.state == robWaiting && c.depReady(e.dep1, e.depSeq1) && c.depReady(e.dep2, e.depSeq2) {
			e.state = robReady
		}
		if e.state == robReady {
			if c.issue(idx, cycle) {
				issued++
			}
		} else if e.state == robExec && e.op.Class != frontend.ClassLoad && e.readyAt <= cycle {
			e.state = robDone
		}
	}
	// Also complete any executing fixed-latency entries we skipped.
	for i, idx := 0, c.head; i < c.occupied; i, idx = i+1, (idx+1)%len(c.rob) {
		e := &c.rob[idx]
		if e.state == robExec && e.op.Class != frontend.ClassLoad && e.readyAt <= cycle {
			e.state = robDone
		}
	}

	// Fetch/dispatch (up to Width) unless stalled on a mispredict.
	if cycle >= c.fetchStall {
		for f := 0; f < c.cfg.Width && c.occupied < len(c.rob) && !c.streamDry; f++ {
			var op frontend.Op
			if !c.stream.Next(&op) {
				c.streamDry = true
				break
			}
			c.dispatch(op, cycle)
			if cycle < c.fetchStall {
				break // the dispatched branch mispredicted
			}
		}
	} else {
		c.st.stallBubble.Inc()
	}

	if c.streamDry && c.occupied == 0 {
		return c.finish(cycle)
	}
	// Sleep when only loads are in flight and nothing else can move.
	if retired == 0 && issued == 0 && c.occupied > 0 && c.allBlockedOnLoads(cycle) {
		c.st.stallMem.Inc()
		return c.sleep()
	}
	return true
}

// allBlockedOnLoads reports whether every in-flight entry is an executing
// load or waits (transitively) on one, and fetch cannot add work.
func (c *OoO) allBlockedOnLoads(cycle sim.Cycle) bool {
	if !c.streamDry && c.occupied < len(c.rob) && cycle >= c.fetchStall {
		return false
	}
	sawMemOp := false
	for i, idx := 0, c.head; i < c.occupied; i, idx = i+1, (idx+1)%len(c.rob) {
		e := &c.rob[idx]
		switch e.state {
		case robExec:
			if e.op.Class != frontend.ClassLoad && e.op.Class != frontend.ClassStore {
				return false // fixed-latency op will complete by ticking
			}
			sawMemOp = true
		case robReady:
			return false
		case robWaiting:
			if c.depReady(e.dep1, e.depSeq1) && c.depReady(e.dep2, e.depSeq2) {
				return false // promotable next tick
			}
		case robDone:
			if idx == c.head {
				return false // retire can proceed
			}
		}
	}
	// Only sleep when a memory completion is guaranteed to wake us.
	return sawMemOp || c.loadsOut > 0 || c.storesOut > 0
}

// dispatch renames and inserts one op at the ROB tail.
func (c *OoO) dispatch(op frontend.Op, cycle sim.Cycle) {
	idx := c.tail
	c.tail = (c.tail + 1) % len(c.rob)
	c.occupied++
	e := &c.rob[idx]
	e.op = op
	e.seq++
	e.state = robWaiting
	e.dep1, e.dep2 = -1, -1
	if op.Src1 != 0 {
		if d := c.renamed[op.Src1]; d >= 0 {
			e.dep1, e.depSeq1 = d, c.rob[d].seq
		}
	}
	if op.Src2 != 0 {
		if d := c.renamed[op.Src2]; d >= 0 {
			e.dep2, e.depSeq2 = d, c.rob[d].seq
		}
	}
	if op.Dst != 0 {
		c.renamed[op.Dst] = idx
	}
	if op.Class == frontend.ClassBranch {
		c.st.branches.Inc()
		if c.pred.mispredicted(op.PC, op.Taken) {
			c.st.mispredicts.Inc()
			// Fetch resumes after the branch resolves (approximated
			// by the flush penalty from now).
			c.fetchStall = cycle + c.cfg.BranchPenalty
		}
	}
}

// issue starts execution of a ready entry; returns false on a structural
// hazard (queues full).
func (c *OoO) issue(idx int, cycle sim.Cycle) bool {
	e := &c.rob[idx]
	switch e.op.Class {
	case frontend.ClassLoad:
		if c.loadsOut >= c.cfg.LoadQ {
			c.st.stallMem.Inc()
			return false
		}
		c.st.loads.Inc()
		c.loadsOut++
		e.state = robExec
		seq := e.seq
		c.memory.Access(mem.Read, e.op.Addr, int(e.op.Size), func() {
			c.loadsOut--
			if e.seq == seq {
				e.state = robDone
			}
			c.wake()
		})
	case frontend.ClassStore:
		if c.storesOut >= c.cfg.StoreQ {
			c.st.stallMem.Inc()
			return false
		}
		c.st.stores.Inc()
		c.storesOut++
		e.state = robExec
		e.readyAt = cycle + 1
		c.memory.Access(mem.Write, e.op.Addr, int(e.op.Size), func() {
			c.storesOut--
			c.wake()
		})
		e.state = robDone
	case frontend.ClassFloat:
		c.st.flops.Inc()
		e.state = robExec
		e.readyAt = cycle + c.cfg.FloatLat
	case frontend.ClassBranch:
		e.state = robDone
	default:
		e.state = robExec
		e.readyAt = cycle + c.cfg.IntLat
	}
	return true
}

func (c *OoO) finish(cycle sim.Cycle) bool {
	if c.loadsOut > 0 || c.storesOut > 0 {
		return c.sleep()
	}
	c.done = true
	c.running = false
	c.endCycle = cycle
	if c.onDone != nil {
		done := c.onDone
		c.onDone = nil
		done()
	}
	return false
}

// Done reports completion.
func (c *OoO) Done() bool { return c.done }

// Retired returns committed operations.
func (c *OoO) Retired() uint64 { return c.st.retired.Count() }

// Cycles returns core cycles from Start to completion.
func (c *OoO) Cycles() sim.Cycle {
	if c.done {
		return c.endCycle - c.startCycle
	}
	return c.clock.Cycle() - c.startCycle
}

// IPC returns retired operations per cycle.
func (c *OoO) IPC() float64 {
	cy := c.Cycles()
	if cy == 0 {
		return 0
	}
	return float64(c.Retired()) / float64(cy)
}

// Mispredicts exposes the mispredict count.
func (c *OoO) Mispredicts() uint64 { return c.st.mispredicts.Count() }
