// Package cpu implements gosst's processor timing back-ends. Each back-end
// consumes any frontend.Stream and issues memory operations into a
// mem.Device, so front-ends (execution-driven, trace, synthetic, kernel)
// and memory hierarchies compose freely — the Structural Simulation
// Toolkit's central modularity claim.
//
// Three fidelity points are provided:
//
//   - InOrder:      scalar, blocking; the baseline embedded-class core
//   - Superscalar:  configurable issue width with register scoreboarding,
//     non-blocking loads and a branch predictor — the knob the design-space
//     exploration studies sweep
//   - Threaded:     a PIM-style fine-grained multithreaded lightweight core
//     that tolerates memory latency with thread-level parallelism instead
//     of caches (the poster's "novel architecture" class)
package cpu

import (
	"fmt"

	"sst/internal/sim"
	"sst/internal/stats"
)

// Config parameterizes a core back-end.
type Config struct {
	Name string
	Freq sim.Hz
	// Width is the issue width (Superscalar only; others are scalar).
	Width int
	// IntLat and FloatLat are execution latencies in cycles.
	IntLat   sim.Cycle
	FloatLat sim.Cycle
	// BranchPenalty is the flush bubble on a mispredict.
	BranchPenalty sim.Cycle
	// LoadQ and StoreQ bound outstanding memory operations.
	LoadQ  int
	StoreQ int
	// PredictorEntries sizes the 2-bit branch predictor table; 0 means
	// perfect prediction.
	PredictorEntries int
	// ROB sizes the out-of-order window (OoO only); 0 defaults to
	// 32*Width, a typical window-to-width ratio.
	ROB int
	// Threads is the hardware thread count (Threaded only).
	Threads int
}

// Validate fills defaults and checks invariants.
func (c *Config) Validate() error {
	if c.Freq == 0 {
		return fmt.Errorf("cpu %s: zero frequency", c.Name)
	}
	if c.Width <= 0 {
		c.Width = 1
	}
	if c.IntLat == 0 {
		c.IntLat = 1
	}
	if c.FloatLat == 0 {
		c.FloatLat = 4
	}
	if c.BranchPenalty == 0 {
		c.BranchPenalty = 8
	}
	if c.LoadQ <= 0 {
		c.LoadQ = 8
	}
	if c.StoreQ <= 0 {
		c.StoreQ = 8
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.ROB <= 0 {
		c.ROB = 32 * c.Width
	}
	if c.PredictorEntries < 0 || c.PredictorEntries&(c.PredictorEntries-1) != 0 {
		return fmt.Errorf("cpu %s: predictor entries %d not a power of two", c.Name, c.PredictorEntries)
	}
	return nil
}

// DefaultConfig returns a sensible 2 GHz core of the given issue width.
func DefaultConfig(name string, width int) Config {
	return Config{
		Name: name, Freq: 2 * sim.GHz, Width: width,
		IntLat: 1, FloatLat: 4, BranchPenalty: 10,
		LoadQ: 4 * width, StoreQ: 4 * width,
		PredictorEntries: 1024,
	}
}

// Core is the interface harnesses drive: Start arms the core on its clock;
// onDone fires (once) when the stream is exhausted and all memory
// operations have drained.
type Core interface {
	sim.Component
	Start(onDone func())
	Done() bool
	// Retired returns committed operation count; Cycles the core-clock
	// cycles elapsed while running.
	Retired() uint64
	Cycles() sim.Cycle
	// IPC is Retired()/Cycles().
	IPC() float64
}

// coreStats bundles the statistics every back-end keeps.
type coreStats struct {
	retired     *stats.Counter
	cycles      *stats.Counter
	stallDep    *stats.Counter
	stallMem    *stats.Counter
	stallBubble *stats.Counter
	mispredicts *stats.Counter
	branches    *stats.Counter
	loads       *stats.Counter
	stores      *stats.Counter
	flops       *stats.Counter
	sleeps      *stats.Counter
}

func newCoreStats(scope *stats.Scope) coreStats {
	return coreStats{
		retired:     scope.Counter("retired"),
		cycles:      scope.Counter("cycles"),
		stallDep:    scope.Counter("stall_dep"),
		stallMem:    scope.Counter("stall_mem"),
		stallBubble: scope.Counter("stall_bubble"),
		mispredicts: scope.Counter("mispredicts"),
		branches:    scope.Counter("branches"),
		loads:       scope.Counter("loads"),
		stores:      scope.Counter("stores"),
		flops:       scope.Counter("flops"),
		sleeps:      scope.Counter("sleeps"),
	}
}

// predictor is a classic table of 2-bit saturating counters, indexed by
// word PC. A nil predictor predicts perfectly.
type predictor struct {
	table []uint8
	mask  uint64
}

func newPredictor(entries int) *predictor {
	if entries == 0 {
		return nil
	}
	p := &predictor{table: make([]uint8, entries), mask: uint64(entries - 1)}
	for i := range p.table {
		p.table[i] = 1 // weakly not-taken
	}
	return p
}

// predict returns the predicted direction and updates state with the actual
// outcome, reporting whether the prediction was wrong.
func (p *predictor) mispredicted(pc uint64, taken bool) bool {
	if p == nil {
		return false
	}
	idx := (pc >> 2) & p.mask
	ctr := p.table[idx]
	pred := ctr >= 2
	if taken && ctr < 3 {
		p.table[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		p.table[idx] = ctr - 1
	}
	return pred != taken
}

// scope returns a stats scope, inventing a private registry when nil.
func ensureScope(scope *stats.Scope, name string) *stats.Scope {
	if scope != nil {
		return scope
	}
	return stats.NewRegistry().Scope(name)
}
