// Command sst runs a simulation described by an Abstract Machine Model
// (AMM) JSON file and reports results. Machine files (a node architecture
// plus a workload) and system files (a topology, network parameters and a
// communication profile) are both accepted; the file's shape selects the
// mode.
//
// Usage:
//
//	sst -config machine.json [-stats] [-csv]
//	sst -system system.json
//
// See configs/ for examples of both formats and internal/config for the
// full schema.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"sst/internal/config"
	"sst/internal/core"
	"sst/internal/noc"
	"sst/internal/sim"
	"sst/internal/stats"
	"sst/internal/workload"
)

// interruptEngine makes Ctrl-C stop the engine at its next poll point, so
// an interrupted simulation reports where it was instead of dying mid-run.
// The returned func detaches the handler.
func interruptEngine(eng *sim.Engine) func() {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	done := make(chan struct{})
	go func() {
		select {
		case <-sigc:
			eng.Interrupt()
		case <-done:
		}
	}()
	return func() {
		signal.Stop(sigc)
		close(done)
	}
}

func main() {
	var (
		cfgPath   = flag.String("config", "", "machine config JSON")
		sysPath   = flag.String("system", "", "system config JSON")
		dumpStats = flag.Bool("stats", false, "dump every component statistic")
		asCSV     = flag.Bool("csv", false, "emit statistics as CSV")
		timeline  = flag.String("timeline", "", "write a DRAM-traffic time series CSV to this file")
		samplePd  = flag.String("sample-period", "10us", "timeline sampling period")
	)
	flag.Parse()
	var err error
	switch {
	case *cfgPath != "":
		err = run(*cfgPath, *dumpStats, *asCSV, *timeline, *samplePd)
	case *sysPath != "":
		err = runSystem(*sysPath)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sst:", err)
		os.Exit(1)
	}
}

// runSystem executes a multi-node communication-profile simulation.
func runSystem(path string) error {
	sys, err := config.LoadSystemFile(path)
	if err != nil {
		return err
	}
	topo, err := sys.Topo.Build()
	if err != nil {
		return err
	}
	netCfg, err := sys.Net.ToNetConfig()
	if err != nil {
		return err
	}
	engine := sim.NewEngine()
	net, err := noc.NewNetwork(engine, "net", topo, netCfg, nil)
	if err != nil {
		return err
	}
	var profile workload.CommProfile
	switch sys.App {
	case "cth":
		profile = workload.CTHProfile
	case "sage":
		profile = workload.SAGEProfile
	case "charon":
		profile = workload.CharonProfile
	case "xnobel":
		profile = workload.XNOBELProfile
	default:
		return fmt.Errorf("unknown app %q", sys.App)
	}
	if sys.Steps > 0 {
		profile.Steps = sys.Steps
	}
	ranks := sys.Ranks
	if ranks == 0 {
		ranks = topo.NumNodes()
	}
	app, err := workload.NewApp(engine, profile.Name, net, profile.Scripts(ranks))
	if err != nil {
		return err
	}
	app.Start(nil)
	defer interruptEngine(engine)()
	engine.RunAll()
	if !app.Done() {
		if engine.Interrupted() {
			return fmt.Errorf("interrupted at %v: %w", engine.Now(), sim.ErrInterrupted)
		}
		return fmt.Errorf("application deadlocked at %v", engine.Now())
	}
	energy := net.Energy(noc.DefaultPowerParams())
	fmt.Printf("system:          %s (%s, %d ranks)\n", sys.Name, topo.Name(), ranks)
	fmt.Printf("app:             %s, %d steps\n", profile.Name, profile.Steps)
	fmt.Printf("simulated time:  %.3f ms\n", app.Elapsed().Seconds()*1e3)
	fmt.Printf("messages:        %d (%.2f MB)\n", ranks*profile.Steps, float64(net.BytesDelivered())/1e6)
	fmt.Printf("mean msg latency: %.2f us\n", net.MessageLatencyMean()/1e6)
	fmt.Printf("max recv wait:   %.3f ms\n", app.MaxWaitTime().Seconds()*1e3)
	fmt.Printf("link utilization: mean %.3f, hottest %.3f\n", net.LinkUtilization(), net.HottestLinkUtilization())
	fmt.Printf("network energy:  %.3f J (%.2f W provisioned static)\n", energy.TotalJ(), energy.StaticW)
	return nil
}

func run(cfgPath string, dumpStats, asCSV bool, timeline, samplePd string) error {
	cfg, err := config.LoadMachineFile(cfgPath)
	if err != nil {
		return err
	}
	node, err := core.BuildNode(cfg)
	if err != nil {
		return err
	}
	defer interruptEngine(node.Sim.Engine())()
	var sampler *stats.Sampler
	if timeline != "" {
		period, err := sim.ParseTime(samplePd)
		if err != nil {
			return err
		}
		sampler = stats.NewSampler(node.Reg, "dram.bytes", "dram.row_hits", "cpu.0.retired")
		sampler.Every(node.Sim.Engine(), period, 100_000)
	}
	res, err := node.Run()
	if err != nil {
		return err
	}
	if sampler != nil {
		f, err := os.Create(timeline)
		if err != nil {
			return err
		}
		sampler.WriteCSV(f)
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("timeline:       %d samples -> %s\\n", sampler.N(), timeline)
	}
	fmt.Printf("machine:        %s\n", res.Name)
	fmt.Printf("simulated time: %.6f ms\n", res.Seconds*1e3)
	fmt.Printf("retired ops:    %d (%d flops)\n", res.Retired, res.Flops)
	fmt.Printf("aggregate IPC:  %.3f\n", res.IPC)
	if res.L1HitRate > 0 {
		fmt.Printf("L1 hit rate:    %.4f\n", res.L1HitRate)
	}
	if res.L2HitRate > 0 {
		fmt.Printf("L2 hit rate:    %.4f\n", res.L2HitRate)
	}
	fmt.Printf("DRAM traffic:   %.2f MB at %.2f GB/s (row hit %.3f)\n",
		float64(res.MemBytes)/1e6, res.MemBandwidth/1e9, res.MemRowHitRate)
	fmt.Printf("node power:     %.2f W (core %.3f J, mem %.3f J)\n",
		res.Budget.AvgPowerW(), res.Budget.CoreEnergyJ, res.Budget.MemEnergyJ)
	fmt.Printf("node cost:      $%.0f (die %.1f mm²)\n", res.Budget.TotalCostUSD(), res.AreaMM2)
	if res.TempC > 0 {
		fmt.Printf("die temperature: %.1f C (node MTBF %.2g h)\n", res.TempC, res.MTBFHours)
	}
	if dumpStats {
		fmt.Println()
		if asCSV {
			node.Reg.WriteCSV(os.Stdout)
		} else {
			node.Reg.Dump(os.Stdout)
		}
	}
	return nil
}
