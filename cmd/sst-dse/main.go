// Command sst-dse runs the design-space exploration sweeps of the SST
// studies — memory technology × issue width with power and cost axes — and
// prints the Fig. 10/11/12 tables. With -resilience it instead sweeps
// checkpoint intervals against machine MTBF and reports the optimal
// interval next to the Young/Daly closed forms.
//
// Usage:
//
//	sst-dse [-apps hpccg,lulesh] [-techs ddr2-800,ddr3-1333,gddr5-4000]
//	        [-widths 1,2,4,8] [-scale full|small] [-table all|fig10|fig11|fig12]
//	        [-format table|json|csv] [-j N] [-metrics-out m.json] [-trace-out t.json]
//	        [-journal sweep.jsonl] [-resume] [-point-timeout 5m]
//	        [-cache] [-cache-size 4096] [-cache-policy lru|lfu|fifo|tinylfu]
//	        [-cache-shadow lfu,tinylfu] [-cache-file results.jsonl]
//	sst-dse -resilience [-mtbf 1,4,24] [-ckpt-cost 60] [-restart-cost 120]
//	        [-work 24] [-trials 5] [-fault-seed 1] [-format json] [-j N]
//
// The sweep's design points are independent simulations; -j sets how many
// run concurrently (default: GOMAXPROCS). Tables are identical at any -j,
// and the resilience study is deterministic in -fault-seed. -metrics-out
// writes per-point host timings as JSON; -trace-out writes the sweep as a
// host-timeline Chrome trace (one row per worker, loadable in Perfetto).
// Ctrl-C drains the points already running, prints the partial tables, and
// exits 130; points that failed or were skipped are listed on stderr.
//
// -journal appends every completed design point to an fsync'd JSONL file;
// -resume restores the journal's completed points instead of re-running
// them, so a killed sweep continues where it stopped and converges to the
// same tables. -point-timeout bounds each point's wall-clock time; a point
// that exceeds it is marked failed instead of wedging a worker.
//
// -cache memoizes design points content-addressed by their fully-resolved
// configuration, so repeated or overlapping grids re-simulate only what is
// new; a hit is field-for-field identical to a fresh simulation.
// -cache-policy picks the eviction policy, -cache-size the capacity in
// points, -cache-shadow runs extra policies as metadata-only hit-rate
// sensors, and -cache-file persists results to an fsync'd JSONL file so a
// later invocation warm-starts from them (-cache-file implies -cache). A
// one-line hit/miss summary prints to stderr; -metrics-out includes the
// full cache and shadow counters.
//
// Exit codes: 0 success, 1 failure, 2 configuration error, 3 sweep
// completed with failed points, 130 interrupted (Ctrl-C).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sst/internal/cache"
	"sst/internal/cli"
	"sst/internal/core"
	"sst/internal/obs"
)

func main() {
	var (
		appsFlag   = flag.String("apps", "hpccg,lulesh", "comma-separated miniapps")
		techsFlag  = flag.String("techs", "ddr2-800,ddr3-1333,gddr5-4000", "memory technologies")
		widthsFlag = flag.String("widths", "1,2,4,8", "issue widths")
		scaleFlag  = flag.String("scale", "full", "problem scale: full or small")
		tableFlag  = flag.String("table", "all", "which table: all, fig10, fig11, fig12")
		formatFlag = flag.String("format", "table", "output format: table, json or csv")
		csvFlag    = flag.Bool("csv", false, "deprecated: same as -format csv")
		jFlag      = flag.Int("j", 0, "concurrent sweep workers (0 = GOMAXPROCS)")
		metricsOut = flag.String("metrics-out", "", "write per-point sweep metrics JSON to this file")
		traceOut   = flag.String("trace-out", "", "write a host-timeline Chrome trace of the sweep to this file")
		journal    = flag.String("journal", "", "journal completed design points to this JSONL file (fsync'd per point)")
		resume     = flag.Bool("resume", false, "with -journal: restore completed points instead of re-running them")
		pointTO    = flag.Duration("point-timeout", 0, "per-point wall-clock deadline (0 = none); timed-out points are marked failed")

		cacheFlag   = flag.Bool("cache", false, "memoize design points by config hash (repeated grids re-simulate only what is new)")
		cacheSize   = flag.Int("cache-size", 4096, "result cache capacity in design points")
		cachePolicy = flag.String("cache-policy", "lru", "eviction policy: fifo, lru, lfu or tinylfu")
		cacheShadow = flag.String("cache-shadow", "", "comma-separated policies to run as metadata-only hit-rate sensors")
		cacheFile   = flag.String("cache-file", "", "persist cached results to this JSONL file and warm-start from it (implies -cache)")

		resFlag     = flag.Bool("resilience", false, "run the checkpoint/MTBF resilience study instead of the DSE sweep")
		mtbfFlag    = flag.String("mtbf", "1,4,24", "machine MTBF values to study, hours")
		ckptFlag    = flag.Float64("ckpt-cost", 60, "checkpoint write cost, seconds")
		restartFlag = flag.Float64("restart-cost", 120, "restart cost after a failure, seconds")
		workFlag    = flag.Float64("work", 24, "job useful work, hours")
		trialsFlag  = flag.Int("trials", 5, "seeded runs averaged per study cell")
		seedFlag    = flag.Uint64("fault-seed", 1, "root fault seed (same seed, same tables)")
	)
	flag.Parse()

	format, err := core.ParseFormat(*formatFlag)
	if err == nil && *csvFlag {
		format = core.FormatCSV
	}
	if err != nil {
		cli.Exit("sst-dse", cli.Configf("%v", err))
	}
	if *resume && *journal == "" {
		cli.Exit("sst-dse", cli.Configf("-resume needs -journal"))
	}

	// Ctrl-C or a supervisor's SIGTERM cancels the sweep context: running
	// design points finish and keep their results (journaled, when -journal
	// is set), everything not yet started is skipped, and the partial
	// tables are still printed before the 130 exit.
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	opts := core.SweepOptions{
		Workers: *jFlag, Context: ctx,
		Journal: *journal, Resume: *resume, PointTimeout: *pointTO,
	}
	sc, cerr := newSweepCache(*cacheFlag, *cacheSize, *cachePolicy, *cacheShadow, *cacheFile)
	if cerr != nil {
		cli.Exit("sst-dse", cli.Configf("%v", cerr))
	}
	if sc != nil {
		defer sc.Close()
		opts.Cache = sc
	}
	var col *obs.SweepCollector
	if *metricsOut != "" || *traceOut != "" {
		col = &obs.SweepCollector{}
		opts.Metrics = col
	}

	if *resFlag {
		err = runResilience(*mtbfFlag, *ckptFlag, *restartFlag, *workFlag, *trialsFlag, *seedFlag, format, opts)
	} else {
		err = run(*appsFlag, *techsFlag, *widthsFlag, *scaleFlag, *tableFlag, format, opts)
	}
	if sc != nil {
		printCacheSummary("sst-dse", sc)
	}
	if werr := writeSweepObs(col, sc, *metricsOut, *traceOut); werr != nil && err == nil {
		err = werr
	}
	cli.Exit("sst-dse", err)
}

// newSweepCache builds the result cache from the -cache* flags; nil when
// caching is off. A -cache-file implies -cache.
func newSweepCache(enabled bool, size int, policy, shadow, file string) (*cache.Cache, error) {
	if !enabled && file == "" {
		return nil, nil
	}
	pol, err := cache.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	shadows, err := cache.ParsePolicies(shadow)
	if err != nil {
		return nil, err
	}
	return core.NewSweepCache(size, pol, shadows, file)
}

// printCacheSummary emits the one-line greppable hit/miss roll-up (plus
// one line per shadow sensor) to stderr.
func printCacheSummary(prog string, sc *cache.Cache) {
	st := sc.Stats()
	fmt.Fprintf(os.Stderr,
		"%s: cache policy=%s entries=%d hits=%d misses=%d hit_rate=%.3f evictions=%d rejected=%d bytes=%d warm_starts=%d\n",
		prog, st.Policy, st.Entries, st.Hits, st.Misses, st.HitRate, st.Evictions, st.Rejected, st.Bytes, st.WarmStarts)
	for _, sh := range st.Shadows {
		fmt.Fprintf(os.Stderr, "%s: cache shadow policy=%s hits=%d misses=%d hit_rate=%.3f\n",
			prog, sh.Policy, sh.Hits, sh.Misses, sh.HitRate)
	}
}

// writeSweepObs flushes the sweep collector to the requested files. With a
// cache attached, the metrics JSON carries the cache's RunReport snapshot
// (hits/misses/evictions/bytes and per-shadow-policy stats) after the
// per-point metrics.
func writeSweepObs(col *obs.SweepCollector, sc *cache.Cache, metricsOut, traceOut string) error {
	if col == nil {
		return nil
	}
	if metricsOut != "" {
		if err := writeFile(metricsOut, func(w io.Writer) error {
			if err := col.WriteJSON(w); err != nil {
				return err
			}
			if sc == nil {
				return nil
			}
			rcol := obs.NewCollector()
			rcol.AttachCache(sc)
			return rcol.Report().WriteJSON(w)
		}); err != nil {
			return err
		}
	}
	if traceOut != "" {
		if err := writeFile(traceOut, col.WriteChromeJSON); err != nil {
			return err
		}
	}
	return nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(appsFlag, techsFlag, widthsFlag, scaleFlag, tableFlag string, format core.Format, opts core.SweepOptions) error {
	apps := strings.Split(appsFlag, ",")
	techs := strings.Split(techsFlag, ",")
	var widths []int
	for _, w := range strings.Split(widthsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || v <= 0 {
			return cli.Configf("bad width %q", w)
		}
		widths = append(widths, v)
	}
	// Dispatch through the study registry: the same JobSpec surface the
	// sweep service admits, so the CLI and the service cannot drift on
	// what a "dse" study means or accepts.
	study, err := core.NewStudy(core.JobSpec{
		Kind: "dse", Apps: apps, Techs: techs, Widths: widths, Scale: scaleFlag,
	})
	if err != nil {
		return cli.Configf("%v", err)
	}
	res, err := study.Run(opts)
	grid, _ := res.(*core.DSEGrid)
	if grid == nil {
		return err
	}
	baseline := techs[0]
	for _, t := range techs {
		if strings.HasPrefix(t, "ddr3") {
			baseline = t
			break
		}
	}
	var results []core.Result
	add := func(r core.Result) { results = append(results, r) }
	switch tableFlag {
	case "all":
		add(core.TableResult{Tab: core.Fig10Table(grid, apps, techs, widths, baseline)})
		add(core.TableResult{Tab: core.Fig11Table(grid, apps, techs, widths)})
		add(core.TableResult{Tab: core.Fig12Table(grid, apps, techs[len(techs)-1], widths)})
	case "fig10":
		add(core.TableResult{Tab: core.Fig10Table(grid, apps, techs, widths, baseline)})
	case "fig11":
		add(core.TableResult{Tab: core.Fig11Table(grid, apps, techs, widths)})
	case "fig12":
		add(core.TableResult{Tab: core.Fig12Table(grid, apps, techs[len(techs)-1], widths)})
	case "grid":
		add(grid)
	default:
		return cli.Configf("bad table %q", tableFlag)
	}
	if werr := core.WriteResults(os.Stdout, format, results...); werr != nil {
		return werr
	}
	if err != nil {
		failed := grid.Failed()
		for _, p := range failed {
			msg := p.Err.Error()
			if i := strings.IndexByte(msg, '\n'); i >= 0 {
				msg = msg[:i]
			}
			fmt.Fprintf(os.Stderr, "sst-dse: point %s/%s/w%d: %s\n", p.App, p.Tech, p.Width, msg)
		}
		// Keep the outcome sentinels (failed-point, cancellation) for the
		// exit code without repeating every point's full error text.
		cause := error(core.ErrPointFailed)
		if errors.Is(err, context.Canceled) {
			cause = fmt.Errorf("%w: %w", core.ErrPointFailed, context.Canceled)
		} else if !errors.Is(err, core.ErrPointFailed) {
			cause = err
		}
		return fmt.Errorf("sweep incomplete: %d of %d points failed (tables above show the rest): %w",
			len(failed), len(grid.Points), cause)
	}
	return nil
}

func runResilience(mtbfFlag string, ckptS, restartS, workHours float64, trials int, seed uint64, format core.Format, opts core.SweepOptions) error {
	var mtbfs []float64
	for _, m := range strings.Split(mtbfFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(m), 64)
		if err != nil || v <= 0 {
			return cli.Configf("bad mtbf %q (hours)", m)
		}
		mtbfs = append(mtbfs, v)
	}
	res, err := core.ResilienceStudy(core.ResilienceConfig{
		MTBFHours:   mtbfs,
		CheckpointS: ckptS,
		RestartS:    restartS,
		WorkHours:   workHours,
		Trials:      trials,
		Seed:        seed,
	}, opts)
	if err != nil {
		return err
	}
	return core.WriteResults(os.Stdout, format, res)
}
